package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hpsockets/internal/runner"
	"hpsockets/internal/scenario"
)

// Subcommand exit codes. Parse and semantic failures are distinct so
// tooling can tell "the file is gibberish" from "the file describes an
// impossible scenario" without grepping messages.
const (
	exitOK       = 0
	exitFailures = 1
	exitUsage    = 2
	exitParse    = 3
	exitSemantic = 4
)

// loadFile reads and parses one scenario file, mapping the error
// class to an exit code.
func loadFile(path string) (*scenario.File, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, exitUsage, err
	}
	f, err := scenario.Parse(path, data)
	if err != nil {
		var pe *scenario.ParseError
		if errors.As(err, &pe) {
			return nil, exitParse, err
		}
		var se *scenario.SemanticError
		if errors.As(err, &se) {
			return nil, exitSemantic, err
		}
		return nil, exitUsage, err
	}
	return f, exitOK, nil
}

// validateCmd implements `chaos validate <file>...`: parse and
// semantically check every file, reporting position-annotated errors.
// The exit code is the worst error class seen (semantic > parse).
func validateCmd(args []string) int {
	fs := flag.NewFlagSet("chaos validate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: chaos validate <scenario-file>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}
	worst := exitOK
	for _, path := range fs.Args() {
		f, code, err := loadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code > worst {
				worst = code
			}
			continue
		}
		s := f.Scenario()
		fmt.Printf("%s: ok (scenario %s, %d nodes, %d events, %d assertions)\n",
			path, f.Name, 1+s.Copies, len(f.Events), len(f.Assertions))
	}
	return worst
}

// runCmd implements `chaos run <file>...`: compile each scenario,
// run it through the replay-checked harness, evaluate its assertions,
// and print results in argument order whatever the worker count.
func runCmd(args []string) int {
	fs := flag.NewFlagSet("chaos run", flag.ExitOnError)
	var (
		workers   = fs.Int("workers", runtime.NumCPU(), "parallel workers (1 = sequential)")
		shrink    = fs.Int("shrink", 0, "shrink budget in runs per failing scenario (0 = no shrinking)")
		telemetry = fs.String("telemetry", "", "directory for per-scenario telemetry exports")
		repro     = fs.String("repro", "", "directory for shrunk minimal reproducer files")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: chaos run [flags] <scenario-file>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}

	paths := fs.Args()
	files := make([]*scenario.File, len(paths))
	for i, path := range paths {
		f, code, err := loadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return code
		}
		files[i] = f
	}

	// Every scenario run is hermetic (its own kernel, cluster, fabric),
	// so the fleet parallelizes freely; results print in argument order.
	results := make([]scenario.Result, len(files))
	runner.Map(*workers, len(files), func(i int) {
		results[i] = scenario.RunFile(files[i])
	})

	failed := 0
	for i, r := range results {
		fmt.Print(r.Render())
		if *telemetry != "" {
			path := filepath.Join(*telemetry, r.File.Name+".telemetry.txt")
			if err := os.WriteFile(path, []byte(r.Report.Telemetry), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return exitUsage
			}
		}
		if r.OK() {
			continue
		}
		failed++
		if *shrink > 0 {
			min, runs := scenario.ShrinkFile(files[i], *shrink)
			out := min.Marshal()
			fmt.Printf("minimal reproducer (%d shrink runs):\n%s", runs, out)
			if *repro != "" {
				path := filepath.Join(*repro, min.Name+".yaml")
				if err := os.WriteFile(path, out, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return exitUsage
				}
				fmt.Printf("reproducer written to %s\n", path)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("chaos: %d/%d scenarios failed\n", failed, len(files))
		return exitFailures
	}
	fmt.Printf("chaos: %d scenarios ok (%s)\n", len(files),
		strings.Join(names(results), ", "))
	return exitOK
}

func names(results []scenario.Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.File.Name
	}
	return out
}
