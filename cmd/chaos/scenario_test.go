package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedGoldens: every malformed scenario under
// testdata/malformed produces exactly the golden position-annotated
// error and exit code — parse errors map to exit 3, semantic errors
// to exit 4 — so tooling scripting `chaos validate` can rely on both.
func TestMalformedGoldens(t *testing.T) {
	dir := filepath.Join("testdata", "malformed")
	files, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
	if err != nil || len(files) < 3 {
		t.Fatalf("want at least 3 malformed fixtures, got %v (%v)", files, err)
	}
	wd, _ := os.Getwd()
	defer os.Chdir(wd)
	// loadFile errors embed the path as given; goldens are recorded
	// relative to the malformed directory.
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			golden, err := os.ReadFile(strings.TrimSuffix(name, ".yaml") + ".err")
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			_, code, lerr := loadFile(name)
			if lerr == nil {
				t.Fatalf("%s parsed cleanly; want an error", name)
			}
			got := fmt.Sprintf("exit %d\n%s\n", code, lerr.Error())
			if got != string(golden) {
				t.Fatalf("golden mismatch for %s:\n--- got:\n%s--- want:\n%s",
					name, got, golden)
			}
		})
	}
}

// TestScenarioLibraryValidates: every checked-in scenario under
// scenarios/ parses, binds and compiles.
func TestScenarioLibraryValidates(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(files) < 6 {
		t.Fatalf("want at least 6 checked-in scenarios, got %v (%v)", files, err)
	}
	if code := validateCmd(files); code != exitOK {
		t.Fatalf("validate exited %d", code)
	}
}
