// Command chaos sweeps seeded fault-and-overload scenarios over the
// simulated DataCutter pipeline and checks the harness invariants on
// each: full buffer accounting, no virtual-time deadlock, credit
// conservation at quiesce, byte-identical replay, and telemetry
// agreement. Any violation is reported with a shrunk minimal
// reproducer and the command exits nonzero, so CI can run it as a
// smoke job.
//
// Seeds are hermetic cells: each builds its own kernel, cluster and
// fabric, so the sweep parallelizes across workers with byte-identical
// output at any worker count.
//
// Besides the seed sweep, two subcommands drive the declarative
// scenario DSL (see internal/scenario and scenarios/): `chaos run`
// executes scenario files through the same invariant checker plus
// their own assertions, and `chaos validate` checks files without
// running them, with distinct exit codes for parse (3) and semantic
// (4) errors.
//
//	chaos -seeds 100            # check seeds 0..99
//	chaos -from 500 -seeds 250  # check seeds 500..749
//	chaos -seed 117 -v          # one scenario, full report
//	chaos run scenarios/*.yaml  # run the checked-in scenario library
//	chaos run -shrink 400 -repro /tmp bad.yaml
//	chaos validate scenarios/wan.yaml
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hpsockets/internal/chaos"
	"hpsockets/internal/runner"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(runCmd(os.Args[2:]))
		case "validate":
			os.Exit(validateCmd(os.Args[2:]))
		}
	}
	var (
		from    = flag.Int64("from", 0, "first seed of the sweep")
		seeds   = flag.Int64("seeds", 100, "number of seeds to check")
		one     = flag.Int64("seed", -1, "check a single seed (overrides -from/-seeds)")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel workers (1 = sequential)")
		shrink  = flag.Int("shrink", 400, "shrink budget in runs per failing seed (0 = no shrinking)")
		verbose = flag.Bool("v", false, "print every report, not just failures")
	)
	flag.Parse()

	lo, n := *from, *seeds
	if *one >= 0 {
		lo, n = *one, 1
	}
	if n <= 0 {
		fmt.Fprintln(os.Stderr, "chaos: -seeds must be positive")
		os.Exit(2)
	}

	reports := make([]chaos.Report, n)
	runner.Map(*workers, int(n), func(i int) {
		reports[i] = chaos.Check(chaos.Generate(lo + int64(i)))
	})

	// Reports print in canonical seed order whatever the worker count;
	// shrinking runs only now, sequentially, so the sweep output stays
	// deterministic and the run budget is spent on failures alone.
	failed := 0
	for i, r := range reports {
		seed := lo + int64(i)
		if r.OK() {
			if *verbose {
				fmt.Printf("%s\n", r.Canonical())
			}
			continue
		}
		failed++
		fmt.Printf("FAIL seed %d\n%s\n", seed, r.Canonical())
		if *shrink > 0 {
			min, runs := chaos.Shrink(r.Scenario, *shrink)
			rr := chaos.Run(min)
			fmt.Printf("  minimal reproducer (%d shrink runs):\n%s\n", runs, rr.Canonical())
		}
	}

	if failed > 0 {
		fmt.Printf("chaos: %d/%d seeds failed\n", failed, n)
		os.Exit(1)
	}
	fmt.Printf("chaos: %d seeds ok (%d..%d)\n", n, lo, lo+n-1)
}
