// Command hpslint is the repository's custom static-analysis suite: a
// multichecker over the analyzers in internal/analysis that enforce
// the invariants the simulation's reproducibility depends on.
//
// Usage:
//
//	go run ./cmd/hpslint ./...
//	go run ./cmd/hpslint -determinism=false ./internal/sim
//	go run ./cmd/hpslint -json ./... > findings.json
//
// A finding can be suppressed at its line (or the line above) with
//
//	//hpslint:ignore <analyzer> <reason>
//
// and suppressions that no longer match anything are themselves
// reported. Exit status is 0 when no diagnostics were reported, 1 when
// any analyzer reported a finding, and 2 on a loading or internal
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hpsockets/internal/analysis/bufalias"
	"hpsockets/internal/analysis/closecheck"
	"hpsockets/internal/analysis/determinism"
	"hpsockets/internal/analysis/framework"
	"hpsockets/internal/analysis/litname"
	"hpsockets/internal/analysis/offpath"
	"hpsockets/internal/analysis/poolsafe"
	"hpsockets/internal/analysis/procdiscipline"
	"hpsockets/internal/analysis/seamcheck"
	"hpsockets/internal/analysis/shedcheck"
)

var all = []*framework.Analyzer{
	determinism.Analyzer,
	procdiscipline.Analyzer,
	bufalias.Analyzer,
	closecheck.Analyzer,
	shedcheck.Analyzer,
	poolsafe.Analyzer,
	litname.Analyzer,
	offpath.Analyzer,
	seamcheck.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	showErrors := flag.Bool("typeerrors", false, "also print type-check errors for analyzed packages")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (byte-stable ordering)")
	allowFile := flag.String("seamcheck.allow", seamcheck.AllowFile, "path of the seam allowlist")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hpslint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	seamcheck.AllowFile = *allowFile

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var analyzers []*framework.Analyzer
	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name] = true
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := framework.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpslint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "hpslint: no packages match %v\n", patterns)
		return 2
	}
	if *showErrors {
		for _, p := range pkgs {
			for _, e := range p.Errors {
				fmt.Fprintf(os.Stderr, "hpslint: %s: %v\n", p.Path, e)
			}
		}
	}

	diags, errs := framework.RunAnalyzers(pkgs, analyzers)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "hpslint:", e)
	}
	diags = framework.ApplyDirectives(pkgs[0].Fset, diags, framework.CollectDirectives(pkgs), known)

	if *jsonOut {
		if err := printJSON(diags); err != nil {
			fmt.Fprintln(os.Stderr, "hpslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case len(errs) > 0:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON emits the findings as an indented JSON array in byte-stable
// order: file, line, analyzer (column and message as tiebreaks).
func printJSON(diags []framework.AnalyzerDiagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := d.Fset.Position(d.Pos)
		out = append(out, jsonDiagnostic{
			File:     relPath(pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// relPath reports name relative to the working directory when it lies
// under it, so output is stable across machines.
func relPath(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
