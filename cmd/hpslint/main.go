// Command hpslint is the repository's custom static-analysis suite: a
// multichecker over the analyzers in internal/analysis that enforce
// the invariants the simulation's reproducibility depends on.
//
// Usage:
//
//	go run ./cmd/hpslint ./...
//	go run ./cmd/hpslint -determinism=false ./internal/sim
//
// Exit status is 0 when no diagnostics were reported, 1 when any
// analyzer reported a finding, and 2 on a loading or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpsockets/internal/analysis/bufalias"
	"hpsockets/internal/analysis/closecheck"
	"hpsockets/internal/analysis/determinism"
	"hpsockets/internal/analysis/framework"
	"hpsockets/internal/analysis/litname"
	"hpsockets/internal/analysis/poolsafe"
	"hpsockets/internal/analysis/procdiscipline"
	"hpsockets/internal/analysis/shedcheck"
)

var all = []*framework.Analyzer{
	determinism.Analyzer,
	procdiscipline.Analyzer,
	bufalias.Analyzer,
	closecheck.Analyzer,
	shedcheck.Analyzer,
	poolsafe.Analyzer,
	litname.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	showErrors := flag.Bool("typeerrors", false, "also print type-check errors for analyzed packages")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hpslint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var analyzers []*framework.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := framework.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpslint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "hpslint: no packages match %v\n", patterns)
		return 2
	}
	if *showErrors {
		for _, p := range pkgs {
			for _, e := range p.Errors {
				fmt.Fprintf(os.Stderr, "hpslint: %s: %v\n", p.Path, e)
			}
		}
	}

	diags, errs := framework.RunAnalyzers(pkgs, analyzers)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "hpslint:", e)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	switch {
	case len(errs) > 0:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
