// Command trace runs one visualization-pipeline experiment cell with
// full hpsmon telemetry — metrics, causal spans, and cross-stream flow
// edges — and exports the result as Chrome trace-event JSON (loadable
// in chrome://tracing or https://ui.perfetto.dev), plus a text flame
// summary and the metrics table on stdout.
//
// Usage:
//
//	trace -out pipeline.json                     # defaults: socketvia, 32 KB blocks
//	trace -kind tcp -block 8192 -mode latency -out tcp.json
//
// The run is deterministic: the same flags always produce a
// byte-identical export.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/profile"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

func main() {
	kind := flag.String("kind", "socketvia", "transport: tcp or socketvia")
	block := flag.Int("block", 32<<10, "distribution block size in bytes")
	mode := flag.String("mode", "rate", "rate (pipelined complete updates) or latency (sequential partial updates)")
	queries := flag.Int("queries", 2, "number of queries to run")
	image := flag.Int("image", 4<<20, "image bytes per complete update")
	compute := flag.Bool("compute", false, "apply the linear computation cost")
	out := flag.String("out", "", "write Chrome trace-event JSON to this file (required)")
	flame := flag.Bool("flame", true, "print the flame summary on stdout")
	metrics := flag.Bool("metrics", true, "print the metrics table on stdout")
	prof := flag.Bool("profile", true, "print the park ledger and virtual-time critical path on stdout")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "trace: -out is required")
		os.Exit(2)
	}
	var k core.Kind
	switch *kind {
	case "tcp":
		k = core.KindTCP
	case "socketvia":
		k = core.KindSocketVIA
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	cfg := vizapp.DefaultPipelineConfig(k, *block)
	cfg.ImageBytes = *image
	if *compute {
		cfg.ComputePerByte = 18 // ns/byte, the paper's linear cost
	}
	var qs []vizapp.Query
	switch *mode {
	case "rate":
		for i := 0; i < *queries; i++ {
			qs = append(qs, cfg.CompleteQuery())
		}
	case "latency":
		cfg.Sequential = true
		for i := 0; i < *queries; i++ {
			qs = append(qs, vizapp.PartialQuery())
		}
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cellName := fmt.Sprintf("trace/%s/%s/b%d", *kind, *mode, *block)
	col := hpsmon.NewCollector(cellName, hpsmon.Options{Spans: true})
	led := profile.NewLedger()
	cfg.Hook = func(k *sim.Kernel) {
		col.Attach(k)
		led.Attach(k)
	}

	res := vizapp.RunPipeline(cfg, qs)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "trace: run failed: %v\n", res.Err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	werr := col.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "trace: write %s: %v\n", *out, werr)
		os.Exit(1)
	}
	fmt.Printf("%s: %d queries, finished at %v; trace written to %s\n",
		cellName, len(qs), res.End, *out)

	if *flame {
		fmt.Println()
		if err := col.FlameSummary(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trace: flame: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		fmt.Println()
		if err := col.Registry().Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trace: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *prof {
		fmt.Println()
		cell := &profile.Cell{Name: cellName, Ledger: led, Source: col}
		if err := cell.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trace: profile: %v\n", err)
			os.Exit(1)
		}
	}
}
