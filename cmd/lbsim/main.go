// Command lbsim runs the Figure 6 load-balancing experiments: a data
// repository/load balancer feeding compute filters under round-robin
// or demand-driven scheduling, with optional heterogeneity.
//
// Usage:
//
//	lbsim -sched rr -factor 4                 # Figure 10 style point
//	lbsim -sched dd -factor 8 -prob 0.5       # Figure 11 style point
//	lbsim -sweep                              # perfect-pipelining sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/experiments"
	"hpsockets/internal/vizapp"
)

func main() {
	sched := flag.String("sched", "dd", "rr or dd")
	transport := flag.String("transport", "", "tcp, socketvia, or empty for both")
	factor := flag.Float64("factor", 1, "heterogeneity factor of the slow node")
	prob := flag.Float64("prob", 0, "probability the slow node is slow per block (0 = static)")
	block := flag.Int("block", 0, "block size (0 = paper's perfect-pipelining size)")
	total := flag.Int("total", 16<<20, "workload bytes")
	local := flag.Bool("local", true, "declustered data: ship directives, process locally")
	sweep := flag.Bool("sweep", false, "run the perfect-pipelining block-size sweep instead")
	flag.Parse()

	o := experiments.DefaultOptions()
	o.LBBytes = *total

	if *sweep {
		fmt.Println(experiments.PerfectPipelining(o).Render())
		for _, kind := range kinds(*transport) {
			if b, ok := experiments.PerfectPipeliningBlock(o, kind, 0.9); ok {
				fmt.Printf("%s: knee of the efficiency curve (90%% of plateau): %d bytes (paper: %d)\n",
					kind, b, experiments.PipeliningBlock(kind))
			}
		}
		return
	}

	for _, kind := range kinds(*transport) {
		b := *block
		if b == 0 {
			b = experiments.PipeliningBlock(kind)
		}
		cfg := vizapp.DefaultLBConfig(kind, b)
		cfg.TotalBytes = *total
		cfg.DataLocal = *local
		cfg.RecordAcks = true
		if *sched == "rr" {
			cfg.Policy = datacutter.RoundRobin
		}
		if *factor > 1 {
			cfg.SlowNode = 1
			cfg.SlowFactor = *factor
			cfg.SlowProb = *prob
		}
		res := vizapp.RunLoadBalancer(cfg)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", kind, res.Err)
			os.Exit(1)
		}
		fmt.Printf("%s sched=%s block=%d factor=%g prob=%g:\n", kind, *sched, b, *factor, *prob)
		fmt.Printf("  makespan %v, blocks per node %v\n", res.Makespan, res.BlocksPerNode)
		if *factor > 1 {
			fmt.Printf("  reaction time to slow node: %v\n", res.ReactionTime(1))
		}
	}
}

func kinds(transport string) []core.Kind {
	switch transport {
	case "tcp":
		return []core.Kind{core.KindTCP}
	case "socketvia":
		return []core.Kind{core.KindSocketVIA}
	default:
		return []core.Kind{core.KindSocketVIA, core.KindTCP}
	}
}
