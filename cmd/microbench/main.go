// Command microbench runs the Section 5.1 micro-benchmarks (Figure 4)
// on the simulated testbed: ping-pong latency and streaming bandwidth
// for raw VIA, SocketVIA and kernel TCP.
//
// Usage:
//
//	microbench            # latency and bandwidth tables
//	microbench -table     # headline numbers only
//	microbench -size 4096 # one size, all transports
package main

import (
	"flag"
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/experiments"
)

func main() {
	table := flag.Bool("table", false, "print only the headline summary")
	size := flag.Int("size", 0, "measure a single message size")
	quick := flag.Bool("quick", false, "reduced repetition counts")
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}

	if *size > 0 {
		fmt.Printf("message size %d bytes:\n", *size)
		fmt.Printf("  VIA       %10v  %8.0f Mbps\n",
			experiments.VIALatency(*size, o.MicroIters), experiments.VIABandwidth(*size, o.MicroMsgs))
		fmt.Printf("  SocketVIA %10v  %8.0f Mbps\n",
			experiments.SocketsLatency(core.KindSocketVIA, *size, o.MicroIters),
			experiments.SocketsBandwidth(core.KindSocketVIA, *size, o.MicroMsgs))
		fmt.Printf("  TCP       %10v  %8.0f Mbps\n",
			experiments.SocketsLatency(core.KindTCP, *size, o.MicroIters),
			experiments.SocketsBandwidth(core.KindTCP, *size, o.MicroMsgs))
		return
	}

	m := experiments.Micro(o)
	fmt.Println("Section 5.1 headline numbers (paper values in parens):")
	fmt.Printf("  VIA       latency %6.1f us (<9.5)      peak %5.0f Mbps (795)\n", m.VIALatency.Micros(), m.VIAPeak)
	fmt.Printf("  SocketVIA latency %6.1f us (9.5)       peak %5.0f Mbps (763)\n", m.SocketVIALatency.Micros(), m.SocketVIAPeak)
	fmt.Printf("  TCP       latency %6.1f us (~5x SV)    peak %5.0f Mbps (510)\n", m.TCPLatency.Micros(), m.TCPPeak)
	fmt.Printf("  improvements: latency %.1fx, bandwidth %.0f%%\n",
		float64(m.TCPLatency)/float64(m.SocketVIALatency), (m.SocketVIAPeak/m.TCPPeak-1)*100)
	if *table {
		return
	}
	fmt.Println()
	fmt.Println(experiments.Fig4aLatency(o).Render())
	fmt.Println(experiments.Fig4bBandwidth(o).Render())
}
