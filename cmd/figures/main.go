// Command figures regenerates the paper's evaluation figures on the
// simulated testbed and prints each as an aligned table.
//
// Usage:
//
//	figures              # every figure (full parameters; minutes)
//	figures -quick       # every figure at reduced repetition counts
//	figures -fig 7a      # one figure: 4a 4b 7a 7b 8a 8b 9a 9b 10 11 pp micro fault
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hpsockets/internal/experiments"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/profile"
	"hpsockets/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,4a,4b,7a,7b,8a,8b,9a,9b,10,11,pp,micro,fault,overload,recovery or all")
	quick := flag.Bool("quick", false, "reduced repetition counts")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"experiment cells run concurrently; any value emits byte-identical figures")
	telemetry := flag.String("telemetry", "",
		"write per-cell hpsmon metrics for the pipeline figures to this file (CSV with a .csv suffix, aligned tables otherwise)")
	prof := flag.String("profile", "",
		"write per-cell park ledgers and virtual-time critical paths for the pipeline figures to this file")
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	o.Workers = *workers
	if *telemetry != "" {
		o.Telemetry = hpsmon.NewSet()
	}
	if *prof != "" {
		o.Profile = profile.NewSet()
	}
	render := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	runners := []struct {
		name string
		run  func()
	}{
		{"micro", func() { printMicro(o) }},
		{"2", func() { render(experiments.Fig2Crossover(o)) }},
		{"4a", func() { render(experiments.Fig4aLatency(o)) }},
		{"4b", func() { render(experiments.Fig4bBandwidth(o)) }},
		{"7a", func() { render(experiments.Fig7(o, false)) }},
		{"7b", func() { render(experiments.Fig7(o, true)) }},
		{"8a", func() { render(experiments.Fig8(o, false)) }},
		{"8b", func() { render(experiments.Fig8(o, true)) }},
		{"9a", func() { render(experiments.Fig9(o, false)) }},
		{"9b", func() { render(experiments.Fig9(o, true)) }},
		{"10", func() { render(experiments.Fig10(o)) }},
		{"11", func() { render(experiments.Fig11(o)) }},
		{"pp", func() { render(experiments.PerfectPipelining(o)) }},
		{"fault", func() {
			render(experiments.FigFaultTransfer(o))
			render(experiments.FigFaultFailover(o))
		}},
		{"overload", func() { render(experiments.FigOverload(o)) }},
		{"recovery", func() {
			render(experiments.FigRecoveryTiming(o))
			render(experiments.FigRecoveryCheckpoint(o))
		}},
	}

	want := strings.ToLower(*fig)
	ran := false
	for _, r := range runners {
		// The fault, overload and recovery families run only when asked
		// for by name: they are not among the paper's figures, and
		// keeping them out of "all" leaves the headline output identical
		// to the fault-free tree.
		if want == r.name || (want == "all" && r.name != "fault" && r.name != "overload" && r.name != "recovery") {
			r.run()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if o.Telemetry != nil {
		if err := writeTelemetry(o.Telemetry, *telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	if o.Profile != nil {
		if err := writeProfile(o.Profile, *prof); err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeProfile renders the collected cell profiles (park ledger +
// critical path per cell) to path.
func writeProfile(set *profile.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = set.Render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTelemetry renders the collected cell metrics to path, as CSV
// when the name asks for it and as aligned tables otherwise.
func writeTelemetry(set *hpsmon.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = set.CSV(f)
	} else {
		err = set.Render(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func printMicro(o experiments.Options) {
	m := experiments.Micro(o)
	fmt.Println("Section 5.1 micro-benchmark headline numbers (paper in parens):")
	fmt.Printf("  VIA       latency %8.1f us  (paper: <9.5)    peak %6.0f Mbps (paper: 795)\n",
		m.VIALatency.Micros(), m.VIAPeak)
	fmt.Printf("  SocketVIA latency %8.1f us  (paper: 9.5)     peak %6.0f Mbps (paper: 763)\n",
		m.SocketVIALatency.Micros(), m.SocketVIAPeak)
	fmt.Printf("  TCP       latency %8.1f us  (paper: ~5x SV)  peak %6.0f Mbps (paper: 510)\n",
		m.TCPLatency.Micros(), m.TCPPeak)
	fmt.Printf("  latency improvement: %.1fx   bandwidth improvement: %.0f%%\n\n",
		float64(m.TCPLatency)/float64(m.SocketVIALatency),
		(m.SocketVIAPeak/m.TCPPeak-1)*100)
}
