// Command bench records a performance snapshot of the simulator in a
// BENCH_<date>.json file: ns/op, B/op and allocs/op of the figure
// micro-benchmarks (via testing.Benchmark, in process), plus the
// wall-clock time of the full quick figure set sequentially and at
// GOMAXPROCS workers, plus the wall-clock time of a whole-repo
// hpslint run (build excluded) so the analysis cost stays visible as
// the interprocedural engine grows. Each snapshot embeds the
// pre-optimization baseline so allocation regressions are visible
// without digging through git history.
//
// Usage:
//
//	bench                    # full snapshot, writes BENCH_<date>.json
//	bench -skip-figures      # benchmarks only (seconds instead of minutes)
//	bench -skip-lint         # skip the timed hpslint run
//	bench -out path.json     # explicit output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/experiments"
	"hpsockets/internal/fault"
	"hpsockets/internal/netsim"
	"hpsockets/internal/profile"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// FigureRun is one timed quick-figure-set run.
type FigureRun struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// LintRun is one timed whole-repo hpslint run (the binary is built
// first, outside the timer — the number is analysis cost, not
// compile cost).
type LintRun struct {
	Seconds  float64 `json:"seconds"`
	Findings int     `json:"findings"`
}

// Anchor is a fixed-size, deterministic, allocation-light kernel
// workload timed once per snapshot. Figure wall-clock times swing with
// the machine the snapshot ran on (BENCH_2026-08-06 and the first
// BENCH_2026-08-08 differ 1.9x on identical code — same allocs/op,
// different hardware class); the anchor pins the machine's single-core
// speed so snapshot-to-snapshot comparisons can separate "the code got
// slower" from "the machine got slower".
type Anchor struct {
	Events    int     `json:"events"`
	Seconds   float64 `json:"seconds"`
	MeventsPS float64 `json:"mevents_per_sec"`
}

// ProfileEdge is one park-ledger line of a profile workload: exact
// deterministic counters, so any drift between snapshots of the same
// code is a real behavior change, not noise.
type ProfileEdge struct {
	Edge        string  `json:"edge"`
	Parks       uint64  `json:"parks"`
	SameInstant uint64  `json:"same_instant"`
	Handoffs    uint64  `json:"handoffs"`
	ParkedUS    float64 `json:"parked_us"`
}

// ProfileRecord is the park-ledger totals of one fixed, deterministic
// profile workload (see runProfileWorkloads). Unlike the timed
// sections these are virtual-time/event counts: byte-identical
// across machines, exact across runs.
type ProfileRecord struct {
	Workload    string        `json:"workload"`
	Parks       uint64        `json:"parks"`
	Wakes       uint64        `json:"wakes"`
	SameInstant uint64        `json:"same_instant"`
	Handoffs    uint64        `json:"handoffs"`
	RingHits    uint64        `json:"ring_hits"`
	Edges       []ProfileEdge `json:"edges"`
}

// Snapshot is the whole file. The schema is documented in
// EXPERIMENTS.md ("BENCH snapshot schema").
type Snapshot struct {
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	CPUModel   string          `json:"cpu_model,omitempty"`
	NumCPU     int             `json:"num_cpu"`
	Anchor     *Anchor         `json:"sanity_anchor,omitempty"`
	Benchmarks []Result        `json:"benchmarks"`
	Figures    []FigureRun     `json:"figures_quick,omitempty"`
	Hpslint    *LintRun        `json:"hpslint,omitempty"`
	Profile    []ProfileRecord `json:"profile,omitempty"`
	Baseline   Baseline        `json:"baseline"`
}

// Baseline pins the pre-optimization numbers (sequential kernel, no
// event/frame/segment pooling) measured on the same class of machine,
// so every snapshot carries its own point of comparison.
type Baseline struct {
	Description         string   `json:"description"`
	Benchmarks          []Result `json:"benchmarks"`
	FiguresQuickSeconds float64  `json:"figures_quick_seconds"`
}

var baseline = Baseline{
	Description: "before event/frame/segment pooling and the parallel runner (sequential, single worker)",
	Benchmarks: []Result{
		{Name: "Fig4aLatency", NsPerOp: 37120382, BytesPerOp: 7336304, AllocsPerOp: 147609},
		{Name: "Fig4bBandwidth", NsPerOp: 233678487, BytesPerOp: 38613720, AllocsPerOp: 1182100},
	},
	FiguresQuickSeconds: 225.4,
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	skipFigures := flag.Bool("skip-figures", false, "skip the timed quick figure set (minutes)")
	skipLint := flag.Bool("skip-lint", false, "skip the timed whole-repo hpslint run")
	flag.Parse()

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		Baseline:   baseline,
	}
	if *out == "" {
		*out = "BENCH_" + snap.Date + ".json"
	}

	fmt.Fprintln(os.Stderr, "bench: sanity anchor...")
	snap.Anchor = runAnchor()

	// The micro-benchmarks mirror the root package's BenchmarkFig4a/4b:
	// quick options, sequential, so the numbers are directly comparable
	// with the embedded baseline.
	benches := []struct {
		name string
		run  func(o experiments.Options)
	}{
		{"Fig4aLatency", func(o experiments.Options) { experiments.Fig4aLatency(o) }},
		{"Fig4bBandwidth", func(o experiments.Options) { experiments.Fig4bBandwidth(o) }},
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(func(b *testing.B) {
			o := experiments.QuickOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bm.run(o)
			}
		})
		snap.Benchmarks = append(snap.Benchmarks, Result{
			Name:        bm.name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// Kernel-level micro-benchmarks: the event queue alone (ladder
	// push/pop churn across every time regime), and the doorbell path
	// (queue hand-off park/dispatch round trip), the two mechanisms the
	// figure workloads spend most of their host CPU in.
	micro := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"EventQueueChurn", benchEventQueueChurn},
		{"QueueDoorbell", benchQueueDoorbell},
		{"SerializerUse", benchSerializerUse},
	}
	for _, bm := range micro {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(bm.run)
		snap.Benchmarks = append(snap.Benchmarks, Result{
			Name:        bm.name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	fmt.Fprintln(os.Stderr, "bench: profile workloads...")
	snap.Profile = runProfileWorkloads()

	if !*skipLint {
		fmt.Fprintln(os.Stderr, "bench: hpslint ./...")
		lint, err := timeHpslint()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.Hpslint = lint
	}

	if !*skipFigures {
		for _, workers := range figureWorkerCounts() {
			fmt.Fprintf(os.Stderr, "bench: quick figure set, %d worker(s)...\n", workers)
			o := experiments.QuickOptions()
			o.Workers = workers
			start := time.Now()
			runQuickFigures(o)
			snap.Figures = append(snap.Figures, FigureRun{
				Workers: workers,
				Seconds: time.Since(start).Seconds(),
			})
		}
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(*out)
}

// timeHpslint builds cmd/hpslint to a scratch binary, then times one
// whole-repo -json run. Findings (exit 1) are measured, not fatal;
// only a load failure (exit 2) aborts the snapshot.
func timeHpslint() (*LintRun, error) {
	tmp, err := os.MkdirTemp("", "bench-hpslint-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "hpslint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hpslint")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building hpslint: %w", err)
	}

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Stderr = os.Stderr
	start := time.Now()
	raw, err := cmd.Output()
	seconds := time.Since(start).Seconds()
	if ee, ok := err.(*exec.ExitError); err != nil && (!ok || ee.ExitCode() != 1) {
		return nil, fmt.Errorf("running hpslint: %w", err)
	}
	var findings []json.RawMessage
	if err := json.Unmarshal(raw, &findings); err != nil {
		return nil, fmt.Errorf("parsing hpslint -json output: %w", err)
	}
	return &LintRun{Seconds: seconds, Findings: len(findings)}, nil
}

// figureWorkerCounts picks the timed worker counts: sequential always,
// and the machine's parallelism when it has any.
func figureWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// cpuModel reads the processor model from /proc/cpuinfo (Linux); an
// empty string on other platforms or read failure is recorded as an
// absent field, never an error.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// anchorEvents is the fixed size of the sanity-anchor workload: large
// enough to dominate timer noise, small enough to finish in well under
// a second on any machine class the snapshots have seen.
const anchorEvents = 2_000_000

// runAnchor times the fixed event-churn workload once.
func runAnchor() *Anchor {
	start := time.Now()
	eventChurn(anchorEvents)
	secs := time.Since(start).Seconds()
	return &Anchor{
		Events:    anchorEvents,
		Seconds:   secs,
		MeventsPS: float64(anchorEvents) / secs / 1e6,
	}
}

// eventChurn schedules and fires n events with a deterministic
// xorshift spread covering every ladder regime: same-instant ring
// hits, near-future bottom inserts, mid-range rung traffic and far
// top overflow, with a slice of timers armed-and-stopped to exercise
// cancellation absorption.
func eventChurn(n int) {
	k := sim.NewKernel()
	var rng uint64 = 0x9e3779b97f4a7c15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	scheduled := 0
	var reschedule func()
	reschedule = func() {
		for burst := 0; burst < 8 && scheduled < n; burst++ {
			var d sim.Time
			switch next() % 4 {
			case 0:
				d = 0
			case 1:
				d = sim.Time(next() % 1000)
			case 2:
				d = sim.Time(next() % 1_000_000)
			default:
				d = sim.Time(next() % 1_000_000_000)
			}
			scheduled++
			t := k.After(d, reschedule)
			if next()%8 == 0 {
				t.Stop()
			}
		}
	}
	reschedule()
	k.RunAll()
}

// benchEventQueueChurn measures the event queue alone: ladder and
// ring push/pop with mixed horizons, no process machinery.
func benchEventQueueChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eventChurn(100_000)
	}
}

// benchQueueDoorbell measures the doorbell path: a producer posting
// into a queue with a parked consumer, one park/dispatch round trip
// per item — the shape of every CQ post, NIC work queue ring and
// softnet hand-off in the stacks.
func benchQueueDoorbell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		q := sim.NewQueue[int](k, 0)
		const items = 10_000
		k.Go("consumer", func(p *sim.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
			}
		})
		k.Go("producer", func(p *sim.Proc) {
			for j := 0; j < items; j++ {
				q.Put(p, j)
				p.Sleep(1) // re-park the consumer so every put rings the doorbell
			}
			q.Close()
		})
		k.RunAll()
	}
}

// benchSerializerUse measures the collapsed FIFO-resource protocol
// under contention: four processes sharing one serializer, one sleep
// per use.
func benchSerializerUse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		s := sim.NewSerializer(k)
		const uses = 10_000
		for pn := 0; pn < 4; pn++ {
			k.Go("user", func(p *sim.Proc) {
				for j := 0; j < uses/4; j++ {
					s.Use(p, 3, 2)
				}
			})
		}
		k.RunAll()
	}
}

// runProfileWorkloads runs one small fixed pipeline per transport
// with a park ledger attached and records the exact per-edge
// scheduler counters. The workloads are deterministic and
// machine-independent, so `bench compare` can hold them to exact
// equality: an unexplained park-count increase is a scheduler-traffic
// regression no timer could see.
func runProfileWorkloads() []ProfileRecord {
	workloads := []struct {
		name string
		kind core.Kind
	}{
		{"pipeline/tcp/b32768", core.KindTCP},
		{"pipeline/socketvia/b32768", core.KindSocketVIA},
	}
	var out []ProfileRecord
	for _, wl := range workloads {
		cfg := vizapp.DefaultPipelineConfig(wl.kind, 32<<10)
		cfg.ImageBytes = 4 << 20
		led := profile.NewLedger()
		cfg.Hook = led.Attach
		queries := []vizapp.Query{cfg.CompleteQuery(), cfg.CompleteQuery()}
		res := vizapp.RunPipeline(cfg, queries)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "bench: profile workload %s failed: %v\n", wl.name, res.Err)
			os.Exit(1)
		}
		out = append(out, ledgerRecord(wl.name, led))
	}
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		out = append(out, runRecoveryProfile(kind))
	}
	return out
}

// ledgerRecord folds one workload's park ledger into a ProfileRecord.
func ledgerRecord(name string, led *profile.Ledger) ProfileRecord {
	parks, wakes, same, hand := led.Totals()
	rec := ProfileRecord{
		Workload:    name,
		Parks:       parks,
		Wakes:       wakes,
		SameInstant: same,
		Handoffs:    hand,
		RingHits:    led.RingHits(),
	}
	for _, e := range led.Edges() {
		rec.Edges = append(rec.Edges, ProfileEdge{
			Edge:        e.Edge,
			Parks:       e.Parks,
			SameInstant: e.SameInstant,
			Handoffs:    e.Handoffs,
			ParkedUS:    e.Parked.Micros(),
		})
	}
	return rec
}

// runRecoveryProfile runs the fixed crash-restart recovery workload
// with a park ledger attached: one producer feeding a checkpointed,
// exactly-once consumer whose node crashes mid-run and restarts 1 ms
// later. The counters pin the scheduler traffic of the whole recovery
// arc — crash unwind, rejoin redial, resync fast-forward and ledger
// suppression — so `bench compare` catches any drift in the recovery
// path's behavior, not just its timing.
func runRecoveryProfile(kind core.Kind) ProfileRecord {
	const (
		uows    = 8
		perUOW  = 8
		block   = 16 << 10
		crashAt = 6 * sim.Millisecond
	)
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	led := profile.NewLedger()
	led.Attach(k)
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("n0", cluster.DefaultConfig())
	cl.AddNode("n1", cluster.DefaultConfig())
	fault.Install(cl, fault.Plan{
		Seed:     42,
		Crashes:  []fault.NodeCrash{{Node: "n1", At: crashAt}},
		Restarts: []fault.NodeRestart{{Node: "n1", At: crashAt + sim.Millisecond}},
	})
	fab := core.NewFabric(cl, kind, prof)
	g := datacutter.NewRuntime(cl, fab).Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "src", Placement: []string{"n0"},
				New: func(int) datacutter.Filter { return benchRecoverySource{} }},
			{Name: "dst", Placement: []string{"n1"}, CheckpointEvery: 500 * sim.Microsecond,
				New: func(int) datacutter.Filter { return benchRecoverySink{} }},
		},
		Streams: []datacutter.StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:         datacutter.DemandDriven,
			MaxUnacked:     4,
			OpTimeout:      2 * sim.Millisecond,
			RedialAttempts: 8,
			RedialSeed:     59,
			ExactlyOnce:    true,
		}},
	})
	g.Start(uows)
	k.RunAll()
	if err := g.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: recovery profile workload (%s) failed: %v\n", kind, err)
		os.Exit(1)
	}
	if restartedAt, recoveredAt := g.RecoveryOf("dst", 0); recoveredAt <= restartedAt {
		fmt.Fprintf(os.Stderr, "bench: recovery profile workload (%s): consumer never recovered\n", kind)
		os.Exit(1)
	}
	return ledgerRecord(fmt.Sprintf("recovery/%s/crash-restart", kind), led)
}

// benchRecoverySource emits the fixed recovery workload: 8 blocks of
// 16 KB per unit of work.
type benchRecoverySource struct{}

func (benchRecoverySource) Init(*datacutter.Context) error { return nil }
func (benchRecoverySource) Process(ctx *datacutter.Context) error {
	out := ctx.Output("s")
	for i := 0; i < 8; i++ {
		if err := out.Write(ctx.Proc(), &datacutter.Buffer{Size: 16 << 10}); err != nil {
			return err
		}
	}
	return out.EndOfWork(ctx.Proc())
}
func (benchRecoverySource) Finalize(*datacutter.Context) error { return nil }

// benchRecoverySink drains its input.
type benchRecoverySink struct{}

func (benchRecoverySink) Init(*datacutter.Context) error { return nil }
func (benchRecoverySink) Process(ctx *datacutter.Context) error {
	in := ctx.Input("s")
	for {
		if _, ok := in.Read(ctx.Proc()); !ok {
			return nil
		}
	}
}
func (benchRecoverySink) Finalize(*datacutter.Context) error { return nil }

// runQuickFigures regenerates the same figure set as `figures -quick`
// (every paper figure; the fault family is opt-in there and timed
// figure runs match that default), discarding the tables. The memo
// shared by the Figure 7/8 searches is cleared first so every timed
// run starts cold, as a fresh `figures` process would.
func runQuickFigures(o experiments.Options) {
	experiments.ResetPipelineMemo()
	experiments.Micro(o)
	experiments.Fig2Crossover(o)
	experiments.Fig4aLatency(o)
	experiments.Fig4bBandwidth(o)
	experiments.Fig7(o, false)
	experiments.Fig7(o, true)
	experiments.Fig8(o, false)
	experiments.Fig8(o, true)
	experiments.Fig9(o, false)
	experiments.Fig9(o, true)
	experiments.Fig10(o)
	experiments.Fig11(o)
	experiments.PerfectPipelining(o)
}
