package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// compareOpts holds the noise thresholds of one comparison. Timed
// quantities (ns/op, figure seconds) swing with machine load and are
// normalized by the sanity-anchor ratio before the threshold applies;
// allocation and byte counts are near-exact per op; profile counters
// are exact virtual-time quantities and tolerate no drift at all.
type compareOpts struct {
	time   float64 // relative threshold for anchor-normalized timings
	allocs float64 // relative threshold for allocs/op
	bytes  float64 // relative threshold for B/op
}

// runCompare implements `bench compare [flags] old.json new.json`: it
// diffs two BENCH snapshots and reports every regression beyond the
// noise thresholds. Exit status: 0 clean, 1 regressions found, 2
// usage or load error. The report depends only on the two files and
// the flags, so it is byte-identical run-to-run.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	opts := compareOpts{}
	fs.Float64Var(&opts.time, "time", 0.30,
		"relative regression threshold for anchor-normalized timed sections")
	fs.Float64Var(&opts.allocs, "allocs", 0.01,
		"relative regression threshold for allocs/op")
	fs.Float64Var(&opts.bytes, "bytes", 0.05,
		"relative regression threshold for B/op")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench compare [flags] old.json new.json")
		return 2
	}
	oldSnap, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench compare:", err)
		return 2
	}
	newSnap, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench compare:", err)
		return 2
	}
	c := &comparison{opts: opts, out: os.Stdout}
	c.run(oldSnap, newSnap)
	if c.regressions > 0 {
		fmt.Fprintf(c.out, "FAIL: %d regression(s)\n", c.regressions)
		return 1
	}
	fmt.Fprintf(c.out, "OK: %d check(s), no regressions\n", c.checks)
	return 0
}

func loadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

type comparison struct {
	opts        compareOpts
	out         *os.File
	checks      int
	regressions int
	// speed is the machine-speed ratio new/old from the sanity
	// anchors: >1 means the new machine ran the fixed anchor workload
	// slower, and timed sections are scaled down accordingly.
	speed float64
}

// check records one compared quantity. Timed quantities pass
// normalize=true to divide the new value by the anchor speed ratio
// before the threshold applies.
func (c *comparison) check(name string, oldV, newV, threshold float64, normalize bool) {
	c.checks++
	adj := newV
	note := ""
	if normalize && c.speed > 0 && c.speed != 1 {
		adj = newV / c.speed
		note = fmt.Sprintf(" [anchor-normalized %.4g]", adj)
	}
	var rel float64
	switch {
	case oldV == 0 && adj == 0:
		rel = 0
	case oldV == 0:
		rel = math.Inf(1)
	default:
		rel = adj/oldV - 1
	}
	verdict := "ok        "
	if rel > threshold {
		verdict = "REGRESSION"
		c.regressions++
	}
	fmt.Fprintf(c.out, "%s %-44s %14.6g -> %-14.6g %+7.2f%% (limit %+.2f%%)%s\n",
		verdict, name, oldV, newV, 100*rel, 100*threshold, note)
}

func (c *comparison) note(format string, args ...any) {
	fmt.Fprintf(c.out, "note       "+format+"\n", args...)
}

func (c *comparison) run(oldSnap, newSnap *Snapshot) {
	c.speed = 1
	if oldSnap.Anchor != nil && newSnap.Anchor != nil &&
		oldSnap.Anchor.Seconds > 0 && oldSnap.Anchor.Events == newSnap.Anchor.Events {
		c.speed = newSnap.Anchor.Seconds / oldSnap.Anchor.Seconds
		fmt.Fprintf(c.out, "anchor: %.2f -> %.2f Mevents/s (machine speed ratio %.3f; timed limits scale)\n",
			oldSnap.Anchor.MeventsPS, newSnap.Anchor.MeventsPS, c.speed)
	} else {
		c.note("no comparable sanity anchor; timed sections compared raw")
	}

	newBench := make(map[string]Result, len(newSnap.Benchmarks))
	for _, r := range newSnap.Benchmarks {
		newBench[r.Name] = r
	}
	for _, o := range oldSnap.Benchmarks {
		n, ok := newBench[o.Name]
		if !ok {
			c.note("benchmark %s missing from new snapshot", o.Name)
			continue
		}
		c.check("bench/"+o.Name+" ns/op", float64(o.NsPerOp), float64(n.NsPerOp), c.opts.time, true)
		c.check("bench/"+o.Name+" B/op", float64(o.BytesPerOp), float64(n.BytesPerOp), c.opts.bytes, false)
		c.check("bench/"+o.Name+" allocs/op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), c.opts.allocs, false)
	}

	newFig := make(map[int]FigureRun, len(newSnap.Figures))
	for _, f := range newSnap.Figures {
		newFig[f.Workers] = f
	}
	for _, o := range oldSnap.Figures {
		n, ok := newFig[o.Workers]
		if !ok {
			c.note("figures_quick workers=%d missing from new snapshot", o.Workers)
			continue
		}
		c.check(fmt.Sprintf("figures_quick/workers=%d seconds", o.Workers),
			o.Seconds, n.Seconds, c.opts.time, true)
	}

	if oldSnap.Hpslint != nil && newSnap.Hpslint != nil {
		c.check("hpslint findings",
			float64(oldSnap.Hpslint.Findings), float64(newSnap.Hpslint.Findings), 0, false)
	}

	newProf := make(map[string]ProfileRecord, len(newSnap.Profile))
	for _, p := range newSnap.Profile {
		newProf[p.Workload] = p
	}
	for _, o := range oldSnap.Profile {
		n, ok := newProf[o.Workload]
		if !ok {
			c.note("profile workload %s missing from new snapshot", o.Workload)
			continue
		}
		// Profile counters are exact deterministic quantities: any
		// increase in scheduler traffic is a regression (threshold 0);
		// decreases are the improvements the continuation-passing work
		// is after.
		c.check("profile/"+o.Workload+" parks", float64(o.Parks), float64(n.Parks), 0, false)
		c.check("profile/"+o.Workload+" same-instant", float64(o.SameInstant), float64(n.SameInstant), 0, false)
		c.check("profile/"+o.Workload+" handoffs", float64(o.Handoffs), float64(n.Handoffs), 0, false)
		c.check("profile/"+o.Workload+" ring-hits", float64(o.RingHits), float64(n.RingHits), 0, false)
		newEdges := make(map[string]ProfileEdge, len(n.Edges))
		for _, e := range n.Edges {
			newEdges[e.Edge] = e
		}
		for _, oe := range o.Edges {
			ne, ok := newEdges[oe.Edge]
			if !ok {
				c.note("profile/%s edge %s gone (had %d parks)", o.Workload, oe.Edge, oe.Parks)
				continue
			}
			if ne.Parks != oe.Parks {
				c.note("profile/%s edge %s parks %d -> %d", o.Workload, oe.Edge, oe.Parks, ne.Parks)
			}
		}
	}
	if len(oldSnap.Profile) == 0 {
		c.note("old snapshot has no profile section; profile checks skipped")
	}
}
