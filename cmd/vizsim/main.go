// Command vizsim runs one visualization-server pipeline experiment
// (the Figure 5 setup) with explicit parameters and reports per-query
// response times and the steady-state update rate.
//
// Usage:
//
//	vizsim -transport socketvia -block 2048 -queries 5 -qtype complete
//	vizsim -transport tcp -block 65536 -qtype partial -compute
package main

import (
	"flag"
	"fmt"
	"os"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
	"hpsockets/internal/trace"
	"hpsockets/internal/vizapp"
)

func main() {
	transport := flag.String("transport", "socketvia", "tcp or socketvia")
	block := flag.Int("block", 64*1024, "distribution block size in bytes")
	image := flag.Int("image", 16<<20, "bytes per complete image")
	chains := flag.Int("chains", 3, "transparent copies per pipeline stage")
	queries := flag.Int("queries", 5, "number of queries")
	qtype := flag.String("qtype", "complete", "complete, partial or zoom")
	compute := flag.Bool("compute", false, "apply the 18 ns/byte computation at each stage")
	sequential := flag.Bool("sequential", false, "gate each query on the previous completion")
	traceN := flag.Int("trace", 0, "record protocol events and print the last N")
	flag.Parse()

	kind := core.KindSocketVIA
	switch *transport {
	case "socketvia":
	case "tcp":
		kind = core.KindTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	cfg := vizapp.DefaultPipelineConfig(kind, *block)
	cfg.ImageBytes = *image
	cfg.Chains = *chains
	cfg.Sequential = *sequential
	if *compute {
		cfg.ComputePerByte = 18 * sim.Nanosecond
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.New()
		rec.Max = *traceN
		cfg.Hook = rec.Attach
	}

	var q vizapp.Query
	switch *qtype {
	case "complete":
		q = cfg.CompleteQuery()
	case "partial":
		q = vizapp.PartialQuery()
		cfg.Sequential = true
	case "zoom":
		q = cfg.ZoomQuery(4)
		cfg.Sequential = true
	default:
		fmt.Fprintf(os.Stderr, "unknown query type %q\n", *qtype)
		os.Exit(2)
	}
	qs := make([]vizapp.Query, *queries)
	for i := range qs {
		qs[i] = q
	}

	res := vizapp.RunPipeline(cfg, qs)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "pipeline failed: %v\n", res.Err)
		os.Exit(1)
	}
	fmt.Printf("transport=%s block=%d image=%dMB chains=%d qtype=%s (%d blocks/query) compute=%v\n",
		kind, *block, *image>>20, *chains, *qtype, q.Blocks, *compute)
	for i, rt := range res.ResponseTimes() {
		fmt.Printf("  query %2d: response %v\n", i, rt)
	}
	fmt.Printf("mean response (excl. first): %v\n", res.MeanResponse())
	if *qtype == "complete" && *queries >= 3 {
		fmt.Printf("steady-state rate: %.2f full updates/sec\n", res.UpdatesPerSec())
	}
	fmt.Println("node CPU utilization:")
	for _, node := range []string{"repo0", "f1n0", "f2n0", "viz"} {
		if u, ok := res.Utilization[node]; ok {
			fmt.Printf("  %-6s %5.1f%%\n", node, u*100)
		}
	}
	if rec != nil {
		fmt.Printf("\nprotocol event counts:\n%s\nlast %d events:\n", rec.Summary(), rec.Len())
		rec.Render(os.Stdout)
	}
}
