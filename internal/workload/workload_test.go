package workload

import (
	"testing"
	"testing/quick"
)

func TestMixExactFraction(t *testing.T) {
	for _, tc := range []struct {
		n        int
		frac     float64
		complete int
	}{
		{10, 0.5, 5},
		{10, 0, 0},
		{10, 1, 10},
		{100, 0.3, 30},
		{3, 0.5, 2}, // rounds half up
	} {
		mix := Mix(1, tc.n, tc.frac, Zoom)
		got := 0
		for _, q := range mix {
			if q == Complete {
				got++
			}
		}
		if got != tc.complete {
			t.Errorf("Mix(n=%d, f=%v): %d complete, want %d", tc.n, tc.frac, got, tc.complete)
		}
	}
}

func TestMixDeterministicPerSeed(t *testing.T) {
	a := Mix(7, 50, 0.4, Partial)
	b := Mix(7, 50, 0.4, Partial)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := Mix(8, 50, 0.4, Partial)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestMixEmptyAndBadInput(t *testing.T) {
	if got := Mix(1, 0, 0.5, Zoom); got != nil {
		t.Fatalf("Mix(0) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("fraction > 1 did not panic")
		}
	}()
	Mix(1, 10, 1.5, Zoom)
}

func TestGenMatchesOneShotMix(t *testing.T) {
	a := NewGen(7).Mix(50, 0.4, Partial)
	b := Mix(7, 50, 0.4, Partial)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Gen and one-shot Mix diverged at %d", i)
		}
	}
}

func TestGenStreamAdvances(t *testing.T) {
	g := NewGen(7)
	a := g.Mix(50, 0.4, Partial)
	b := g.Mix(50, 0.4, Partial)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive draws from one generator produced identical shuffles")
	}
}

func TestRepeat(t *testing.T) {
	qs := Repeat(Partial, 4)
	if len(qs) != 4 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q != Partial {
			t.Fatalf("qs = %v", qs)
		}
	}
}

func TestQueryTypeStrings(t *testing.T) {
	for q, want := range map[QueryType]string{
		Complete: "complete", Partial: "partial", Zoom: "zoom", QueryType(99): "unknown",
	} {
		if q.String() != want {
			t.Errorf("%d.String() = %q, want %q", q, q.String(), want)
		}
	}
}

func TestPropertyMixCountInvariant(t *testing.T) {
	f := func(seed int64, n uint8, fracByte uint8) bool {
		size := int(n%100) + 1
		frac := float64(fracByte) / 255
		mix := Mix(seed, size, frac, Zoom)
		if len(mix) != size {
			return false
		}
		complete := 0
		for _, q := range mix {
			if q == Complete {
				complete++
			} else if q != Zoom {
				return false
			}
		}
		want := int(frac*float64(size) + 0.5)
		return complete == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
