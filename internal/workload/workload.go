// Package workload generates the deterministic query workloads of the
// paper's evaluation: complete updates, partial updates, zoom queries
// and mixes thereof.
package workload

import "math/rand"

// QueryType classifies a visualization-server query.
type QueryType int

const (
	// Complete requests a whole new image: every block is fetched.
	Complete QueryType = iota
	// Partial moves the viewing window slightly: only the excess
	// blocks (one, in the paper's latency experiments) are fetched.
	Partial
	// Zoom magnifies a small region: four data chunks in the paper's
	// multi-query experiment.
	Zoom
)

func (q QueryType) String() string {
	switch q {
	case Complete:
		return "complete"
	case Partial:
		return "partial"
	case Zoom:
		return "zoom"
	}
	return "unknown"
}

// Gen generates workloads from an explicitly seeded random stream, so
// every random choice in an experiment flows from one recorded seed.
// The zero value is not usable; construct with NewGen.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator whose entire random stream derives from
// seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Mix generates a deterministic sequence of n queries in which
// fraction frac (0..1) are Complete and the rest are the given other
// type, shuffled with the generator's stream. The realized fraction is
// exact up to rounding, so experiment points are reproducible.
func (g *Gen) Mix(n int, frac float64, other QueryType) []QueryType {
	if n <= 0 {
		return nil
	}
	if frac < 0 || frac > 1 {
		panic("workload: fraction outside [0,1]")
	}
	complete := int(frac*float64(n) + 0.5)
	out := make([]QueryType, n)
	for i := range out {
		if i < complete {
			out[i] = Complete
		} else {
			out[i] = other
		}
	}
	g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Mix is the one-shot form of Gen.Mix, seeding a fresh generator per
// call. The shuffle for a given seed is identical to
// NewGen(seed).Mix(...).
func Mix(seed int64, n int, frac float64, other QueryType) []QueryType {
	return NewGen(seed).Mix(n, frac, other)
}

// Repeat returns n copies of one query type.
func Repeat(q QueryType, n int) []QueryType {
	out := make([]QueryType, n)
	for i := range out {
		out[i] = q
	}
	return out
}
