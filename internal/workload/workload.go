// Package workload generates the deterministic query workloads of the
// paper's evaluation: complete updates, partial updates, zoom queries
// and mixes thereof.
package workload

import "math/rand"

// QueryType classifies a visualization-server query.
type QueryType int

const (
	// Complete requests a whole new image: every block is fetched.
	Complete QueryType = iota
	// Partial moves the viewing window slightly: only the excess
	// blocks (one, in the paper's latency experiments) are fetched.
	Partial
	// Zoom magnifies a small region: four data chunks in the paper's
	// multi-query experiment.
	Zoom
)

func (q QueryType) String() string {
	switch q {
	case Complete:
		return "complete"
	case Partial:
		return "partial"
	case Zoom:
		return "zoom"
	}
	return "unknown"
}

// Mix generates a deterministic sequence of n queries in which
// fraction frac (0..1) are Complete and the rest are the given other
// type, shuffled with the seed. The realized fraction is exact up to
// rounding, so experiment points are reproducible.
func Mix(seed int64, n int, frac float64, other QueryType) []QueryType {
	if n <= 0 {
		return nil
	}
	if frac < 0 || frac > 1 {
		panic("workload: fraction outside [0,1]")
	}
	complete := int(frac*float64(n) + 0.5)
	out := make([]QueryType, n)
	for i := range out {
		if i < complete {
			out[i] = Complete
		} else {
			out[i] = other
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Repeat returns n copies of one query type.
func Repeat(q QueryType, n int) []QueryType {
	out := make([]QueryType, n)
	for i := range out {
		out[i] = q
	}
	return out
}
