package ktcp

import (
	"errors"
	"io"

	"hpsockets/internal/bytebuf"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// ErrClosed reports an operation on a locally closed connection.
var ErrClosed = errors.New("ktcp: connection closed")

// Conn is one endpoint of an established TCP connection: an in-order
// reliable byte stream with kernel-path costs.
type Conn struct {
	st       *Stack
	id       uint32
	peerPort string
	peerConn uint32

	established bool
	connSig     *sim.Signal
	closeDone   *sim.Signal
	closing     bool

	// Send side. sent/acked are cumulative stream offsets; sndLimit is
	// the highest offset the peer's advertised window permits.
	sndBuf   bytebuf.Buffer
	sent     int64
	acked    int64
	sndLimit int64
	sndCond  *sim.Cond

	// Receive side.
	rcvBuf       bytebuf.Buffer
	rcvd         int64
	read         int64
	rcvEOF       bool
	rcvCond      *sim.Cond
	ackPending   int
	ackTimer     *sim.Timer
	lastAdvLimit int64
}

// ID reports the connection id on its stack.
func (c *Conn) ID() uint32 { return c.id }

// PeerPort reports the remote node's port name.
func (c *Conn) PeerPort() string { return c.peerPort }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.established }

// rwndAvail is the window the receive buffer can still absorb.
func (c *Conn) rwndAvail() int {
	avail := c.st.cfg.RcvBuf - c.rcvBuf.Len()
	if avail < 0 {
		avail = 0
	}
	return avail
}

// inflight reports unacknowledged bytes in the network.
func (c *Conn) inflight() int { return int(c.sent - c.acked) }

// applyAckInfo absorbs the cumulative ack and advertised window
// carried by any established-state segment.
func (c *Conn) applyAckInfo(seg *segment) {
	if limit := seg.cumAck + int64(seg.rwnd); limit > c.sndLimit {
		c.sndLimit = limit
	}
	if seg.cumAck > c.acked {
		c.acked = seg.cumAck
	}
	c.sndCond.Broadcast()
}

// Send writes real bytes to the stream. It returns once the data is
// copied into the send buffer (blocking while the buffer is full), not
// when it is acknowledged, so pipelined producers behave like real
// sockets. The connection keeps a reference to data; callers must not
// mutate it until it has drained.
func (c *Conn) Send(p *sim.Proc, data []byte) error {
	return c.send(p, bytebuf.Chunk{Size: len(data), Data: data})
}

// SendSize writes n size-only bytes: the stream accounts for them at
// full cost but carries no real payload.
func (c *Conn) SendSize(p *sim.Proc, n int) error {
	return c.send(p, bytebuf.Chunk{Size: n})
}

func (c *Conn) send(p *sim.Proc, ch bytebuf.Chunk) error {
	if c.closing {
		return ErrClosed
	}
	if ch.Size == 0 {
		return nil
	}
	if !c.established {
		p.Wait(c.connSig)
	}
	cfg := c.st.cfg
	c.st.node.Overhead(p, cfg.SendSyscall)
	offset := 0
	for offset < ch.Size {
		if c.closing {
			return ErrClosed
		}
		space := cfg.SndBuf - c.sndBuf.Len() - c.inflight()
		if space <= 0 {
			c.sndCond.Wait(p)
			continue
		}
		n := ch.Size - offset
		if n > space {
			n = space
		}
		// The user->kernel copy of this portion.
		c.st.node.Overhead(p, sim.Time(float64(n)*cfg.CopyPerByteSend+0.5))
		part := bytebuf.Chunk{Size: n}
		if ch.Data != nil {
			part.Data = ch.Data[offset : offset+n]
		}
		c.sndBuf.Append(part)
		offset += n
		c.sndCond.Broadcast()
	}
	return nil
}

// Recv reads up to len(buf) bytes from the stream, blocking while it
// is empty. At end of stream it returns 0, io.EOF.
func (c *Conn) Recv(p *sim.Proc, buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	cfg := c.st.cfg
	c.st.node.Overhead(p, cfg.RecvSyscall)
	blocked := false
	for c.rcvBuf.Len() == 0 {
		if c.rcvEOF {
			return 0, io.EOF
		}
		blocked = true
		c.rcvCond.Wait(p)
	}
	if blocked {
		c.st.node.Overhead(p, cfg.WakeupCost)
	}
	n := c.rcvBuf.CopyOut(buf)
	c.read += int64(n)
	// Window update: if the last advertised limit has fallen half a
	// buffer behind what we could now advertise, push a fresh ack so a
	// window-blocked sender resumes.
	if c.read+int64(cfg.RcvBuf)-c.lastAdvLimit >= int64(cfg.RcvBuf)/2 {
		c.st.softQ.TryPut(softItem{flush: &ackFlush{conn: c, force: true}})
	}
	return n, nil
}

// RecvFull reads exactly len(buf) bytes unless the stream ends first,
// in which case it returns the count read and io.EOF.
func (c *Conn) RecvFull(p *sim.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Recv(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close drains the send buffer, emits a FIN and returns once the FIN
// is on the wire. Reads of data the peer already sent still succeed.
func (c *Conn) Close(p *sim.Proc) error {
	if c.closing {
		p.Wait(c.closeDone)
		return nil
	}
	c.closing = true
	c.sndCond.Broadcast()
	p.Wait(c.closeDone)
	return nil
}

// Buffered reports bytes waiting in the receive buffer.
func (c *Conn) Buffered() int { return c.rcvBuf.Len() }

// txLoop is the per-connection transmit engine: it segments the send
// buffer at the MSS, honours the peer's advertised window, charges
// per-segment protocol processing under the stack lock, and hands
// segments to the DMA engine and wire.
func (c *Conn) txLoop(p *sim.Proc) {
	st := c.st
	cfg := st.cfg
	p.Wait(c.connSig)
	for {
		var n int
		for {
			avail := c.sndBuf.Len()
			if c.closing && avail == 0 {
				c.transmitFIN(p)
				return
			}
			wnd := int(c.sndLimit - c.sent)
			if avail > 0 && wnd > 0 {
				n = cfg.MSS
				if avail < n {
					n = avail
				}
				if wnd < n {
					n = wnd
				}
				// Nagle: hold back a sub-MSS segment while earlier
				// data is unacknowledged and more may be coming.
				if !(cfg.Nagle && n < cfg.MSS && c.inflight() > 0 && !c.closing) {
					break
				}
			}
			c.sndCond.Wait(p)
		}
		chunks := c.sndBuf.Take(n)
		c.sndCond.Broadcast() // send-buffer space freed
		st.stackLock.Acquire(p, 1)
		p.Sleep(cfg.TxPerSegment)
		st.stackLock.Release(1)
		seg := &segment{
			kind: segData, srcPort: st.node.Name(), srcConn: c.id, dstConn: c.peerConn,
			seq: c.sent, length: n, data: chunks,
			cumAck: c.rcvd, rwnd: c.rwndAvail(),
		}
		c.sent += int64(n)
		st.segsOut++
		st.node.Kernel().Trace("ktcp", "segment-out", int64(n), c.peerPort)
		st.nicQ.Put(p, &netsim.Frame{
			Src: st.node.Name(), Dst: c.peerPort, Proto: netsim.ProtoIP,
			Size: cfg.HeaderSize + n, Payload: seg,
		})
	}
}

func (c *Conn) transmitFIN(p *sim.Proc) {
	st := c.st
	cfg := st.cfg
	st.stackLock.Acquire(p, 1)
	p.Sleep(cfg.TxPerSegment)
	st.stackLock.Release(1)
	seg := &segment{
		kind: segFIN, srcPort: st.node.Name(), srcConn: c.id, dstConn: c.peerConn,
		seq: c.sent, cumAck: c.rcvd, rwnd: c.rwndAvail(),
	}
	st.nicQ.Put(p, &netsim.Frame{
		Src: st.node.Name(), Dst: c.peerPort, Proto: netsim.ProtoIP,
		Size: cfg.HeaderSize, Payload: seg,
	})
	c.closeDone.Fire(nil)
}
