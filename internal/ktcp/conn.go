package ktcp

import (
	"errors"
	"io"

	"hpsockets/internal/bytebuf"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// ErrClosed reports an operation on a locally closed connection.
var ErrClosed = errors.New("ktcp: connection closed")

// ErrTimeout reports that a retransmission budget was exhausted (the
// peer stopped acknowledging) or that a blocking operation exceeded
// the connection's SetTimeout bound.
var ErrTimeout = errors.New("ktcp: operation timed out")

// Conn is one endpoint of an established TCP connection: an in-order
// reliable byte stream with kernel-path costs.
type Conn struct {
	st       *Stack
	id       uint32
	peerPort string
	peerConn uint32

	established bool
	connSig     *sim.Signal
	closeDone   *sim.Signal
	closing     bool

	// Send side. sent/acked are cumulative stream offsets; sndLimit is
	// the highest offset the peer's advertised window permits.
	sndBuf   bytebuf.Buffer
	sent     int64
	acked    int64
	sndLimit int64
	sndCond  *sim.Cond

	// Receive side.
	rcvBuf       bytebuf.Buffer
	rcvd         int64
	read         int64
	rcvEOF       bool
	rcvCond      *sim.Cond
	ackPending   int
	ackTimer     sim.Timer
	lastAdvLimit int64

	// Retransmission state, active only when cfg.RTO > 0. retransQ
	// holds transmitted-but-unacked segments in sequence order
	// (go-back-N); retries counts consecutive timeouts since the last
	// ack progress; failErr is set once the retry budget is exhausted.
	retransQ []*segment
	rtoTimer sim.Timer
	retries  int
	failErr  error

	// opTimeout bounds blocking waits in Send and Recv; zero (the
	// default) waits forever, as the fault-free model always did.
	opTimeout sim.Time
}

// SetTimeout bounds every subsequent blocking wait inside Send and
// Recv to d of virtual time; the operation fails with ErrTimeout when
// the bound expires. Zero restores unbounded waits.
func (c *Conn) SetTimeout(d sim.Time) { c.opTimeout = d }

// fail marks the connection dead with err, wakes every blocked
// operation, and releases closers. It is idempotent.
func (c *Conn) fail(err error) {
	if c.failErr != nil {
		return
	}
	c.failErr = err
	c.stopRTO()
	c.retransQ = nil
	c.sndCond.Broadcast()
	c.rcvCond.Broadcast()
	if !c.closeDone.Fired() {
		c.closeDone.Fire(nil)
	}
	c.st.node.Kernel().Trace("ktcp", "conn-fail", 0, c.peerPort+": "+err.Error())
	hpsmon.InstantK(c.st.node.Kernel(), "ktcp", "conn-fail", c.peerPort)
}

// ID reports the connection id on its stack.
func (c *Conn) ID() uint32 { return c.id }

// PeerPort reports the remote node's port name.
func (c *Conn) PeerPort() string { return c.peerPort }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.established }

// rwndAvail is the window the receive buffer can still absorb.
func (c *Conn) rwndAvail() int {
	avail := c.st.cfg.RcvBuf - c.rcvBuf.Len()
	if avail < 0 {
		avail = 0
	}
	return avail
}

// inflight reports unacknowledged bytes in the network.
func (c *Conn) inflight() int { return int(c.sent - c.acked) }

// applyAckInfo absorbs the cumulative ack and advertised window
// carried by any established-state segment.
func (c *Conn) applyAckInfo(seg *segment) {
	if limit := seg.cumAck + int64(seg.rwnd); limit > c.sndLimit {
		c.sndLimit = limit
	}
	if seg.cumAck > c.acked {
		c.acked = seg.cumAck
		c.pruneRetrans()
	}
	c.sndCond.Broadcast()
}

// segEnd reports the stream offset one past the segment's payload; a
// FIN occupies one sequence number so its retransmission can be
// acknowledged distinctly.
func segEnd(seg *segment) int64 {
	if seg.kind == segFIN {
		return seg.seq + 1
	}
	return seg.seq + int64(seg.length)
}

// trackRetrans records a transmitted segment for go-back-N recovery.
// A no-op when retransmission is disabled (RTO zero), keeping the
// fault-free path untouched.
func (c *Conn) trackRetrans(seg *segment) {
	if c.st.cfg.RTO <= 0 || c.failErr != nil {
		return
	}
	c.retransQ = append(c.retransQ, seg)
	c.armRTO()
}

// pruneRetrans drops fully acknowledged segments from the head of the
// retransmit queue; ack progress resets the backoff and restarts the
// timer for whatever remains in flight.
func (c *Conn) pruneRetrans() {
	if c.st.cfg.RTO <= 0 || len(c.retransQ) == 0 {
		return
	}
	n := 0
	for _, seg := range c.retransQ {
		if segEnd(seg) > c.acked {
			break
		}
		n++
	}
	if n == 0 {
		return
	}
	c.retransQ = c.retransQ[n:]
	c.retries = 0
	c.stopRTO()
	if len(c.retransQ) > 0 {
		c.armRTO()
	}
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

// rtoDelay is the current timeout with exponential backoff, capped at
// 64x the base RTO.
func (c *Conn) rtoDelay() sim.Time {
	d := c.st.cfg.RTO
	for i := 0; i < c.retries && d < 64*c.st.cfg.RTO; i++ {
		d *= 2
	}
	return d
}

func (c *Conn) armRTO() {
	if c.st.cfg.RTO <= 0 || c.rtoTimer.Pending() || c.failErr != nil {
		return
	}
	c.rtoTimer = c.st.node.Kernel().After(c.rtoDelay(), c.onRTO)
}

// onRTO fires in event context, so it cannot block: retransmission
// re-queues the in-flight segments with TryPut, and a full NIC queue
// simply waits for the next timeout. Go-back-N resends everything
// unacknowledged; the receiver's sequence check discards duplicates.
func (c *Conn) onRTO() {
	if c.failErr != nil || len(c.retransQ) == 0 {
		return
	}
	if c.retries >= c.st.cfg.MaxRetries {
		c.fail(ErrTimeout)
		return
	}
	c.retries++
	st := c.st
	hpsmon.InstantK(st.node.Kernel(), "ktcp", "rto-fire", c.peerPort)
	for _, seg := range c.retransQ {
		f := st.net.NewFrame(st.node.Name(), c.peerPort, netsim.ProtoIP,
			st.cfg.HeaderSize+seg.length, seg)
		if !st.nicQ.TryPut(f) {
			st.net.FreeFrame(f)
			break
		}
		st.node.Kernel().Trace("ktcp", "retransmit", int64(seg.length), c.peerPort)
		hpsmon.Count(st.node.Kernel(), "ktcp", "rto.segments", 1)
	}
	c.armRTO()
}

// Send writes real bytes to the stream. It returns once the data is
// copied into the send buffer (blocking while the buffer is full), not
// when it is acknowledged, so pipelined producers behave like real
// sockets. The connection keeps a reference to data; callers must not
// mutate it until it has drained.
func (c *Conn) Send(p *sim.Proc, data []byte) error {
	return c.send(p, bytebuf.Chunk{Size: len(data), Data: data})
}

// SendSize writes n size-only bytes: the stream accounts for them at
// full cost but carries no real payload.
func (c *Conn) SendSize(p *sim.Proc, n int) error {
	return c.send(p, bytebuf.Chunk{Size: n})
}

func (c *Conn) send(p *sim.Proc, ch bytebuf.Chunk) error {
	if c.closing {
		return ErrClosed
	}
	if ch.Size == 0 {
		return nil
	}
	if !c.established {
		p.Wait(c.connSig)
	}
	cfg := c.st.cfg
	c.st.node.Overhead(p, cfg.SendSyscall)
	offset := 0
	for offset < ch.Size {
		if c.closing {
			return ErrClosed
		}
		if c.failErr != nil {
			return c.failErr
		}
		space := cfg.SndBuf - c.sndBuf.Len() - c.inflight()
		if space <= 0 {
			k := c.st.node.Kernel()
			t0 := k.Now()
			sc := hpsmon.Begin(p, "ktcp", "snd-stall", c.peerPort)
			timedOut := false
			if c.opTimeout > 0 {
				timedOut = !c.sndCond.WaitTimeout(p, c.opTimeout)
			} else {
				c.sndCond.Wait(p)
			}
			sc.End()
			hpsmon.Observe(k, "ktcp", "snd-stall", k.Now()-t0)
			if timedOut {
				return ErrTimeout
			}
			continue
		}
		n := ch.Size - offset
		if n > space {
			n = space
		}
		// The user->kernel copy of this portion.
		c.st.node.Overhead(p, sim.Time(float64(n)*cfg.CopyPerByteSend+0.5))
		part := bytebuf.Chunk{Size: n}
		if ch.Data != nil {
			part.Data = ch.Data[offset : offset+n]
		}
		c.sndBuf.Append(part)
		offset += n
		c.sndCond.Broadcast()
	}
	return nil
}

// Recv reads up to len(buf) bytes from the stream, blocking while it
// is empty. At end of stream it returns 0, io.EOF.
func (c *Conn) Recv(p *sim.Proc, buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	cfg := c.st.cfg
	c.st.node.Overhead(p, cfg.RecvSyscall)
	blocked := false
	for c.rcvBuf.Len() == 0 {
		if c.rcvEOF {
			return 0, io.EOF
		}
		if c.failErr != nil {
			return 0, c.failErr
		}
		blocked = true
		k := c.st.node.Kernel()
		t0 := k.Now()
		sc := hpsmon.Begin(p, "ktcp", "rcv-wait", c.peerPort)
		timedOut := false
		if c.opTimeout > 0 {
			timedOut = !c.rcvCond.WaitTimeout(p, c.opTimeout)
		} else {
			c.rcvCond.Wait(p)
		}
		sc.End()
		hpsmon.Observe(k, "ktcp", "rcv-wait", k.Now()-t0)
		if timedOut {
			return 0, ErrTimeout
		}
	}
	if blocked {
		c.st.node.Overhead(p, cfg.WakeupCost)
	}
	n := c.rcvBuf.CopyOut(buf)
	c.read += int64(n)
	// Window update: if the last advertised limit has fallen half a
	// buffer behind what we could now advertise, push a fresh ack so a
	// window-blocked sender resumes.
	if c.read+int64(cfg.RcvBuf)-c.lastAdvLimit >= int64(cfg.RcvBuf)/2 {
		_ = c.st.softQ.TryPut(softItem{flushConn: c, flushForce: true})
	}
	return n, nil
}

// RecvFull reads exactly len(buf) bytes unless the stream ends first,
// in which case it returns the count read and io.EOF.
func (c *Conn) RecvFull(p *sim.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Recv(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close drains the send buffer, emits a FIN and returns once the FIN
// is on the wire. Reads of data the peer already sent still succeed.
func (c *Conn) Close(p *sim.Proc) error {
	if c.closing {
		p.Wait(c.closeDone)
		return nil
	}
	c.closing = true
	c.sndCond.Broadcast()
	p.Wait(c.closeDone)
	return nil
}

// Buffered reports bytes waiting in the receive buffer.
func (c *Conn) Buffered() int { return c.rcvBuf.Len() }

// txLoop is the per-connection transmit engine: it segments the send
// buffer at the MSS, honours the peer's advertised window, charges
// per-segment protocol processing under the stack lock, and hands
// segments to the DMA engine and wire.
func (c *Conn) txLoop(p *sim.Proc) {
	st := c.st
	cfg := st.cfg
	p.Wait(c.connSig)
	for {
		var n int
		for {
			if c.failErr != nil {
				return
			}
			avail := c.sndBuf.Len()
			if c.closing && avail == 0 {
				c.transmitFIN(p)
				return
			}
			wnd := int(c.sndLimit - c.sent)
			if avail > 0 && wnd > 0 {
				n = cfg.MSS
				if avail < n {
					n = avail
				}
				if wnd < n {
					n = wnd
				}
				// Nagle: hold back a sub-MSS segment while earlier
				// data is unacknowledged and more may be coming.
				if !(cfg.Nagle && n < cfg.MSS && c.inflight() > 0 && !c.closing) {
					break
				}
			}
			sc := hpsmon.Begin(p, "ktcp", "tx-stall", c.peerPort)
			c.sndCond.Wait(p)
			sc.End()
		}
		seg := st.allocSeg(cfg.RTO <= 0)
		seg.data = c.sndBuf.TakeInto(seg.data[:0], n)
		c.sndCond.Broadcast() // send-buffer space freed
		st.stackLock.Use(p, cfg.TxPerSegment, 0)
		seg.kind, seg.srcPort, seg.srcConn, seg.dstConn = segData, st.node.Name(), c.id, c.peerConn
		seg.seq, seg.length = c.sent, n
		seg.cumAck, seg.rwnd = c.rcvd, c.rwndAvail()
		c.sent += int64(n)
		c.trackRetrans(seg)
		st.segsOut++
		st.node.Kernel().Trace("ktcp", "segment-out", int64(n), c.peerPort)
		hpsmon.Count(st.node.Kernel(), "ktcp", "segments.out", 1)
		hpsmon.Count(st.node.Kernel(), "ktcp", "bytes.out", int64(n))
		st.nicQ.Put(p, st.net.NewFrame(st.node.Name(), c.peerPort, netsim.ProtoIP,
			cfg.HeaderSize+n, seg))
	}
}

func (c *Conn) transmitFIN(p *sim.Proc) {
	st := c.st
	cfg := st.cfg
	st.stackLock.Use(p, cfg.TxPerSegment, 0)
	seg := st.allocSeg(cfg.RTO <= 0)
	seg.kind, seg.srcPort, seg.srcConn, seg.dstConn = segFIN, st.node.Name(), c.id, c.peerConn
	seg.seq, seg.cumAck, seg.rwnd = c.sent, c.rcvd, c.rwndAvail()
	c.trackRetrans(seg)
	st.nicQ.Put(p, st.net.NewFrame(st.node.Name(), c.peerPort, netsim.ProtoIP,
		cfg.HeaderSize, seg))
	if !c.closeDone.Fired() {
		c.closeDone.Fire(nil)
	}
}
