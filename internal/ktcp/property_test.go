package ktcp

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"hpsockets/internal/sim"
)

// TestPropertyStreamIntegrityRandomSizes drives a random interleaving
// of real and size-only sends through the stack and reads with random
// buffer sizes, checking that every real byte arrives at its exact
// stream offset.
func TestPropertyStreamIntegrityRandomSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(2, LinuxCLANConfig())
		l := r.stacks[1].Listen(1)

		type region struct {
			off  int
			data []byte
		}
		var regions []region
		total := 0
		nOps := rng.Intn(8) + 2
		ops := make([]func(p *sim.Proc, c *Conn), 0, nOps)
		for i := 0; i < nOps; i++ {
			if rng.Intn(2) == 0 {
				data := make([]byte, rng.Intn(5000)+1)
				rng.Read(data)
				regions = append(regions, region{off: total, data: data})
				total += len(data)
				ops = append(ops, func(p *sim.Proc, c *Conn) { c.Send(p, data) })
			} else {
				n := rng.Intn(20000) + 1
				total += n
				ops = append(ops, func(p *sim.Proc, c *Conn) { c.SendSize(p, n) })
			}
		}

		got := make([]byte, total)
		ok := true
		r.k.Go("srv", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				ok = false
				return
			}
			off := 0
			for off < total {
				n := rng.Intn(8000) + 1
				if n > total-off {
					n = total - off
				}
				m, err := c.Recv(p, got[off:off+n])
				off += m
				if err == io.EOF {
					break
				}
			}
			if off != total {
				ok = false
			}
		})
		r.k.Go("cli", func(p *sim.Proc) {
			c, err := r.stacks[0].Connect(p, "b", 1)
			if err != nil {
				ok = false
				return
			}
			for _, op := range ops {
				op(p, c)
			}
			c.Close(p)
		})
		r.k.RunAll()
		if !ok {
			return false
		}
		for _, reg := range regions {
			for i, b := range reg.data {
				if got[reg.off+i] != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWindowStillDelivers(t *testing.T) {
	cfg := LinuxCLANConfig()
	cfg.SndBuf = 4 * cfg.MSS
	cfg.RcvBuf = 4 * cfg.MSS
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	const total = 500_000
	var got int
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 3000)
		for {
			n, err := c.Recv(p, buf)
			got += n
			if err == io.EOF {
				return
			}
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		c.SendSize(p, total)
		c.Close(p)
	})
	r.k.RunAll()
	if got != total {
		t.Fatalf("got %d, want %d", got, total)
	}
}

func TestBidirectionalSimultaneousBulk(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	l := r.stacks[1].Listen(1)
	const each = 1 << 20
	counts := [2]int{}
	run := func(idx int, c *Conn) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			done := make(chan struct{}) // unused; keep sequential
			_ = done
			buf := make([]byte, 32*1024)
			for {
				n, err := c.Recv(p, buf)
				counts[idx] += n
				if err == io.EOF {
					return
				}
			}
		}
	}
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		r.k.Go("srv-rx", run(0, c))
		c.SendSize(p, each)
		c.Close(p)
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		r.k.Go("cli-rx", run(1, c))
		c.SendSize(p, each)
		c.Close(p)
	})
	r.k.RunAll()
	if counts[0] != each || counts[1] != each {
		t.Fatalf("received %v, want %d each way", counts, each)
	}
}

func TestWindowNeverOverrunsReceiveBuffer(t *testing.T) {
	// Instrumented invariant: buffered bytes at the receiver never
	// exceed RcvBuf even when the reader stalls arbitrarily.
	cfg := LinuxCLANConfig()
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	maxBuffered := 0
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for i := 0; i < 50; i++ {
			p.Sleep(500 * sim.Microsecond)
			if b := c.Buffered(); b > maxBuffered {
				maxBuffered = b
			}
		}
		buf := make([]byte, 64*1024)
		for {
			if _, err := c.Recv(p, buf); err == io.EOF {
				return
			}
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		c.SendSize(p, 2<<20)
		c.Close(p)
	})
	r.k.RunAll()
	if maxBuffered > cfg.RcvBuf {
		t.Fatalf("receive buffer grew to %d, advertised window was %d", maxBuffered, cfg.RcvBuf)
	}
	if maxBuffered == 0 {
		t.Fatal("no buffering observed; probe broken")
	}
}

func TestSegmentCountMatchesMSS(t *testing.T) {
	cfg := LinuxCLANConfig()
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	const total = 100 * 1460 // exactly 100 MSS
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64*1024)
		for {
			if _, err := c.Recv(p, buf); err == io.EOF {
				return
			}
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		c.SendSize(p, total)
		c.Close(p)
	})
	r.k.RunAll()
	// The advertised window may split a segment at a non-MSS boundary
	// once or twice during the run, so allow a little slack above the
	// minimum of exactly total/MSS segments.
	if got := r.stacks[0].SegmentsOut(); got < 100 || got > 105 {
		t.Fatalf("segments out = %d, want 100..105", got)
	}
}
