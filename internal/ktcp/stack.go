package ktcp

import (
	"errors"
	"fmt"

	"hpsockets/internal/bytebuf"
	"hpsockets/internal/cluster"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// segment kinds.
type segKind uint8

const (
	segSYN segKind = iota
	segSYNACK
	segData
	segAck
	segFIN
)

// segment is the TCP/IP wire unit carried in netsim frames. Every
// segment from an established connection piggybacks the current
// cumulative ack and advertised window.
type segment struct {
	kind    segKind
	srcPort string
	srcConn uint32
	dstConn uint32
	svc     int

	seq    int64
	length int
	data   []bytebuf.Chunk

	cumAck int64
	rwnd   int

	// pooled marks a segment owned by a stack free list; it is set
	// only for segments the receive path fully consumes (acks,
	// SYNACKs, and — when retransmission is off — data and FIN).
	// Segments the sender must retain for go-back-N, and SYNs parked
	// in a listener queue, are never pooled.
	pooled bool
}

// softItem is one unit of softnet work: an inbound segment, or (with
// flushConn set) an ack-flush request queued by the delayed-ack timer
// — flushForce marks a reader that opened the advertised window. The
// flush request is inlined rather than boxed behind a pointer: softnet
// consumes one softItem per received segment, so the item must not
// drag an allocation along.
type softItem struct {
	seg        *segment
	flushConn  *Conn
	flushForce bool
}

// synKey identifies one connect attempt across SYN retransmissions.
type synKey struct {
	port string
	conn uint32
}

// Listener accepts inbound connections on a service number.
type Listener struct {
	st  *Stack
	svc int
	q   *sim.Queue[*segment]
}

// Stack is the kernel network stack of one node.
type Stack struct {
	node *cluster.Node
	net  *netsim.Network
	cfg  Config

	dma *sim.Serializer
	// stackLock serializes per-segment transmit processing, modelling
	// the coarse kernel locking of Linux 2.2.
	stackLock *sim.Serializer

	softQ     *sim.Queue[softItem]
	ackQ      *sim.Queue[*segment]
	nicQ      *sim.Queue[*netsim.Frame]
	wireFIFO  *sim.Queue[*netsim.Frame]
	conns     map[uint32]*Conn
	nextConn  uint32
	listeners map[int]*Listener

	// SYN dedup: retransmitted SYNs must not spawn ghost connections.
	// synSeen marks handshakes queued for accept; synConns maps
	// accepted handshakes to their connection so a lost SYNACK can be
	// repeated. Lookup only — never iterated.
	synSeen  map[synKey]bool
	synConns map[synKey]*Conn

	segsIn  uint64
	segsOut uint64
	acksOut uint64

	// segPool recycles consumed segments. Segments may be freed into
	// a different stack's pool than they were taken from (the
	// receiver frees what the sender allocated); both stacks live on
	// one kernel, so this is race-free and merely migrates capacity.
	segPool []*segment
}

// allocSeg returns a segment, recycled when poolable. Data and FIN
// segments are poolable only when retransmission is off; callers pass
// st.cfg.RTO <= 0 for those and true for acks and SYNACKs.
func (st *Stack) allocSeg(poolable bool) *segment {
	if !poolable {
		return &segment{}
	}
	if n := len(st.segPool); n > 0 {
		s := st.segPool[n-1]
		st.segPool[n-1] = nil
		st.segPool = st.segPool[:n-1]
		return s
	}
	return &segment{pooled: true}
}

// freeSeg recycles a consumed pooled segment (no-op otherwise). The
// chunk slice keeps its capacity for the next TakeInto, but every
// element is cleared so no payload reference outlives the segment.
func (st *Stack) freeSeg(s *segment) {
	if s == nil || !s.pooled {
		return
	}
	for i := range s.data {
		s.data[i] = bytebuf.Chunk{}
	}
	data := s.data[:0]
	*s = segment{pooled: true, data: data}
	st.segPool = append(st.segPool, s)
}

// NewStack attaches a kernel TCP stack to the node and starts its
// softnet and ack-transmit processes.
func NewStack(node *cluster.Node, net *netsim.Network, cfg Config) *Stack {
	if cfg.MSS <= 0 || cfg.SndBuf < cfg.MSS || cfg.RcvBuf < cfg.MSS {
		panic("ktcp: invalid config")
	}
	k := node.Kernel()
	st := &Stack{
		node:      node,
		net:       net,
		cfg:       cfg,
		dma:       sim.NewSerializer(k),
		stackLock: sim.NewSerializer(k),
		softQ:     sim.NewQueue[softItem](k, 0),
		ackQ:      sim.NewQueue[*segment](k, 0),
		nicQ:      sim.NewQueue[*netsim.Frame](k, 32),
		wireFIFO:  sim.NewQueue[*netsim.Frame](k, 2),
		conns:     make(map[uint32]*Conn),
		nextConn:  1,
		listeners: make(map[int]*Listener),
		synSeen:   make(map[synKey]bool),
		synConns:  make(map[synKey]*Conn),
	}
	st.dma.SetLabel("ktcp/dma")
	st.stackLock.SetLabel("ktcp/stack-lock")
	st.softQ.SetLabel("ktcp/softnet")
	st.ackQ.SetLabel("ktcp/ack-queue")
	st.nicQ.SetLabel("ktcp/nic-queue")
	st.wireFIFO.SetLabel("ktcp/wire-fifo")
	node.Port().Handle(netsim.ProtoIP, func(f *netsim.Frame) {
		if f.Corrupt {
			// Checksum failure: the segment is discarded as if lost;
			// retransmission (when enabled) recovers it.
			k.Trace("ktcp", "checksum-drop", int64(f.Size), f.Src)
			hpsmon.Count(k, "ktcp", "checksum.drops", 1)
			st.freeSeg(f.Payload.(*segment))
			return
		}
		_ = st.softQ.TryPut(softItem{seg: f.Payload.(*segment)})
	})
	k.Go("ktcp-softnet/"+node.Name(), st.softnetLoop)
	k.Go("ktcp-acktx/"+node.Name(), st.ackTxLoop)
	k.Go("ktcp-nicdma/"+node.Name(), st.nicDMALoop)
	k.Go("ktcp-wiretx/"+node.Name(), st.wireTxLoop)
	return st
}

// Node reports the stack's host.
func (st *Stack) Node() *cluster.Node { return st.node }

// Config reports the stack configuration.
func (st *Stack) Config() Config { return st.cfg }

// SegmentsIn and SegmentsOut report wire segment counters.
func (st *Stack) SegmentsIn() uint64 { return st.segsIn }

// SegmentsOut reports transmitted data segment count.
func (st *Stack) SegmentsOut() uint64 { return st.segsOut }

// Listen binds a service number.
func (st *Stack) Listen(svc int) *Listener {
	if _, ok := st.listeners[svc]; ok {
		panic(fmt.Sprintf("ktcp: service %d already bound on %s", svc, st.node.Name()))
	}
	l := &Listener{st: st, svc: svc, q: sim.NewQueue[*segment](st.node.Kernel(), 0)}
	l.q.SetLabel("ktcp/accept")
	st.listeners[svc] = l
	return l
}

// Close unbinds the listener; blocked Accepts fail.
func (l *Listener) Close() {
	l.q.Close()
	delete(l.st.listeners, l.svc)
}

// Accept blocks for an inbound connection and completes the handshake.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	syn, ok := l.q.Get(p)
	if !ok {
		return nil, errors.New("ktcp: listener closed")
	}
	st := l.st
	st.node.Overhead(p, st.cfg.ConnSetupCPU)
	c := st.newConn()
	c.peerPort = syn.srcPort
	c.peerConn = syn.srcConn
	c.established = true
	c.sndLimit = int64(st.cfg.RcvBuf) // peer buffer, symmetric config
	st.synConns[synKey{syn.srcPort, syn.srcConn}] = c
	c.connSig.Fire(nil)
	synack := st.allocSeg(true)
	synack.kind, synack.srcPort, synack.srcConn, synack.dstConn =
		segSYNACK, st.node.Name(), c.id, syn.srcConn
	st.transmitControl(p, syn.srcPort, synack)
	return c, nil
}

// Connect opens a connection to a service on a remote node, blocking
// for the handshake round trip. With RTO configured, a lost SYN or
// SYNACK is retransmitted with capped exponential backoff until
// MaxRetries is exhausted, then Connect fails with ErrTimeout.
func (st *Stack) Connect(p *sim.Proc, remote string, svc int) (*Conn, error) {
	st.node.Overhead(p, st.cfg.ConnSetupCPU)
	c := st.newConn()
	c.peerPort = remote
	syn := &segment{
		kind: segSYN, srcPort: st.node.Name(), srcConn: c.id, svc: svc,
	}
	st.transmitControl(p, remote, syn)
	if st.cfg.RTO > 0 {
		for attempt := 0; ; attempt++ {
			if _, ok := p.WaitTimeout(c.connSig, c.rtoDelay()); ok {
				break
			}
			if attempt >= st.cfg.MaxRetries {
				delete(st.conns, c.id)
				c.fail(ErrTimeout)
				return nil, ErrTimeout
			}
			c.retries++ // reuse the RTO backoff schedule for the SYN
			st.node.Kernel().Trace("ktcp", "syn-retransmit", 0, remote)
			hpsmon.Count(st.node.Kernel(), "ktcp", "syn.retransmits", 1)
			st.transmitControl(p, remote, syn)
		}
		c.retries = 0
	} else {
		p.Wait(c.connSig)
	}
	if !c.established {
		return nil, errors.New("ktcp: connect failed")
	}
	return c, nil
}

func (st *Stack) newConn() *Conn {
	k := st.node.Kernel()
	c := &Conn{
		st:        st,
		id:        st.nextConn,
		connSig:   sim.NewSignal(k),
		closeDone: sim.NewSignal(k),
		sndCond:   sim.NewCond(k),
		rcvCond:   sim.NewCond(k),
	}
	c.connSig.SetLabel("ktcp/handshake")
	c.closeDone.SetLabel("ktcp/close")
	c.sndCond.SetLabel("ktcp/snd-buf")
	c.rcvCond.SetLabel("ktcp/rcv-buf")
	st.nextConn++
	st.conns[c.id] = c
	k.Go(fmt.Sprintf("ktcp-tx/%s/%d", st.node.Name(), c.id), c.txLoop)
	return c
}

// transmitControl queues a handshake segment to the NIC.
func (st *Stack) transmitControl(p *sim.Proc, dst string, seg *segment) {
	st.nicQ.Put(p, st.net.NewFrame(st.node.Name(), dst, netsim.ProtoIP, st.cfg.HeaderSize, seg))
}

// nicDMALoop is the adapter's host-memory DMA stage: it fetches each
// queued frame's payload across the PCI bus and hands it to the wire
// stage; the bounded wireFIFO pipelines the two.
func (st *Stack) nicDMALoop(p *sim.Proc) {
	for {
		f, ok := st.nicQ.Get(p)
		if !ok {
			return
		}
		seg := f.Payload.(*segment)
		st.dma.Use(p, st.cfg.DMAPerOp+sim.Time(float64(seg.length)*st.cfg.DMAPerByte+0.5), 0)
		st.wireFIFO.Put(p, f)
	}
}

// wireTxLoop drains DMA-complete frames onto the wire.
func (st *Stack) wireTxLoop(p *sim.Proc) {
	for {
		f, ok := st.wireFIFO.Get(p)
		if !ok {
			return
		}
		st.net.Transmit(p, f)
	}
}
