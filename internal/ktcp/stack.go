package ktcp

import (
	"errors"
	"fmt"

	"hpsockets/internal/bytebuf"
	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// segment kinds.
type segKind uint8

const (
	segSYN segKind = iota
	segSYNACK
	segData
	segAck
	segFIN
)

// segment is the TCP/IP wire unit carried in netsim frames. Every
// segment from an established connection piggybacks the current
// cumulative ack and advertised window.
type segment struct {
	kind    segKind
	srcPort string
	srcConn uint32
	dstConn uint32
	svc     int

	seq    int64
	length int
	data   []bytebuf.Chunk

	cumAck int64
	rwnd   int
}

// ackFlush is queued into softnet by the delayed-ack timer, or with
// force set by a reader that opened the advertised window.
type ackFlush struct {
	conn  *Conn
	force bool
}

// softItem is one unit of softnet work.
type softItem struct {
	seg   *segment
	flush *ackFlush
}

// synKey identifies one connect attempt across SYN retransmissions.
type synKey struct {
	port string
	conn uint32
}

// Listener accepts inbound connections on a service number.
type Listener struct {
	st  *Stack
	svc int
	q   *sim.Queue[*segment]
}

// Stack is the kernel network stack of one node.
type Stack struct {
	node *cluster.Node
	net  *netsim.Network
	cfg  Config

	dma *sim.Resource
	// stackLock serializes per-segment transmit processing, modelling
	// the coarse kernel locking of Linux 2.2.
	stackLock *sim.Resource

	softQ     *sim.Queue[softItem]
	ackQ      *sim.Queue[*segment]
	nicQ      *sim.Queue[*netsim.Frame]
	wireFIFO  *sim.Queue[*netsim.Frame]
	conns     map[uint32]*Conn
	nextConn  uint32
	listeners map[int]*Listener

	// SYN dedup: retransmitted SYNs must not spawn ghost connections.
	// synSeen marks handshakes queued for accept; synConns maps
	// accepted handshakes to their connection so a lost SYNACK can be
	// repeated. Lookup only — never iterated.
	synSeen  map[synKey]bool
	synConns map[synKey]*Conn

	segsIn  uint64
	segsOut uint64
	acksOut uint64
}

// NewStack attaches a kernel TCP stack to the node and starts its
// softnet and ack-transmit processes.
func NewStack(node *cluster.Node, net *netsim.Network, cfg Config) *Stack {
	if cfg.MSS <= 0 || cfg.SndBuf < cfg.MSS || cfg.RcvBuf < cfg.MSS {
		panic("ktcp: invalid config")
	}
	k := node.Kernel()
	st := &Stack{
		node:      node,
		net:       net,
		cfg:       cfg,
		dma:       sim.NewResource(k, 1),
		stackLock: sim.NewResource(k, 1),
		softQ:     sim.NewQueue[softItem](k, 0),
		ackQ:      sim.NewQueue[*segment](k, 0),
		nicQ:      sim.NewQueue[*netsim.Frame](k, 32),
		wireFIFO:  sim.NewQueue[*netsim.Frame](k, 2),
		conns:     make(map[uint32]*Conn),
		nextConn:  1,
		listeners: make(map[int]*Listener),
		synSeen:   make(map[synKey]bool),
		synConns:  make(map[synKey]*Conn),
	}
	node.Port().Handle(netsim.ProtoIP, func(f *netsim.Frame) {
		if f.Corrupt {
			// Checksum failure: the segment is discarded as if lost;
			// retransmission (when enabled) recovers it.
			k.Trace("ktcp", "checksum-drop", int64(f.Size), f.Src)
			return
		}
		st.softQ.TryPut(softItem{seg: f.Payload.(*segment)})
	})
	k.Go("ktcp-softnet/"+node.Name(), st.softnetLoop)
	k.Go("ktcp-acktx/"+node.Name(), st.ackTxLoop)
	k.Go("ktcp-nicdma/"+node.Name(), st.nicDMALoop)
	k.Go("ktcp-wiretx/"+node.Name(), st.wireTxLoop)
	return st
}

// Node reports the stack's host.
func (st *Stack) Node() *cluster.Node { return st.node }

// Config reports the stack configuration.
func (st *Stack) Config() Config { return st.cfg }

// SegmentsIn and SegmentsOut report wire segment counters.
func (st *Stack) SegmentsIn() uint64 { return st.segsIn }

// SegmentsOut reports transmitted data segment count.
func (st *Stack) SegmentsOut() uint64 { return st.segsOut }

// Listen binds a service number.
func (st *Stack) Listen(svc int) *Listener {
	if _, ok := st.listeners[svc]; ok {
		panic(fmt.Sprintf("ktcp: service %d already bound on %s", svc, st.node.Name()))
	}
	l := &Listener{st: st, svc: svc, q: sim.NewQueue[*segment](st.node.Kernel(), 0)}
	st.listeners[svc] = l
	return l
}

// Close unbinds the listener; blocked Accepts fail.
func (l *Listener) Close() {
	l.q.Close()
	delete(l.st.listeners, l.svc)
}

// Accept blocks for an inbound connection and completes the handshake.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	syn, ok := l.q.Get(p)
	if !ok {
		return nil, errors.New("ktcp: listener closed")
	}
	st := l.st
	st.node.Overhead(p, st.cfg.ConnSetupCPU)
	c := st.newConn()
	c.peerPort = syn.srcPort
	c.peerConn = syn.srcConn
	c.established = true
	c.sndLimit = int64(st.cfg.RcvBuf) // peer buffer, symmetric config
	st.synConns[synKey{syn.srcPort, syn.srcConn}] = c
	c.connSig.Fire(nil)
	st.transmitControl(p, syn.srcPort, &segment{
		kind: segSYNACK, srcPort: st.node.Name(), srcConn: c.id, dstConn: syn.srcConn,
	})
	return c, nil
}

// Connect opens a connection to a service on a remote node, blocking
// for the handshake round trip. With RTO configured, a lost SYN or
// SYNACK is retransmitted with capped exponential backoff until
// MaxRetries is exhausted, then Connect fails with ErrTimeout.
func (st *Stack) Connect(p *sim.Proc, remote string, svc int) (*Conn, error) {
	st.node.Overhead(p, st.cfg.ConnSetupCPU)
	c := st.newConn()
	c.peerPort = remote
	syn := &segment{
		kind: segSYN, srcPort: st.node.Name(), srcConn: c.id, svc: svc,
	}
	st.transmitControl(p, remote, syn)
	if st.cfg.RTO > 0 {
		for attempt := 0; ; attempt++ {
			if _, ok := p.WaitTimeout(c.connSig, c.rtoDelay()); ok {
				break
			}
			if attempt >= st.cfg.MaxRetries {
				delete(st.conns, c.id)
				c.fail(ErrTimeout)
				return nil, ErrTimeout
			}
			c.retries++ // reuse the RTO backoff schedule for the SYN
			st.node.Kernel().Trace("ktcp", "syn-retransmit", 0, remote)
			st.transmitControl(p, remote, syn)
		}
		c.retries = 0
	} else {
		p.Wait(c.connSig)
	}
	if !c.established {
		return nil, errors.New("ktcp: connect failed")
	}
	return c, nil
}

func (st *Stack) newConn() *Conn {
	k := st.node.Kernel()
	c := &Conn{
		st:        st,
		id:        st.nextConn,
		connSig:   sim.NewSignal(k),
		closeDone: sim.NewSignal(k),
		sndCond:   sim.NewCond(k),
		rcvCond:   sim.NewCond(k),
	}
	st.nextConn++
	st.conns[c.id] = c
	k.Go(fmt.Sprintf("ktcp-tx/%s/%d", st.node.Name(), c.id), c.txLoop)
	return c
}

// transmitControl queues a handshake segment to the NIC.
func (st *Stack) transmitControl(p *sim.Proc, dst string, seg *segment) {
	st.nicQ.Put(p, &netsim.Frame{
		Src: st.node.Name(), Dst: dst, Proto: netsim.ProtoIP,
		Size: st.cfg.HeaderSize, Payload: seg,
	})
}

// nicDMALoop is the adapter's host-memory DMA stage: it fetches each
// queued frame's payload across the PCI bus and hands it to the wire
// stage; the bounded wireFIFO pipelines the two.
func (st *Stack) nicDMALoop(p *sim.Proc) {
	for {
		f, ok := st.nicQ.Get(p)
		if !ok {
			return
		}
		seg := f.Payload.(*segment)
		st.dma.Use(p, 1, st.cfg.DMAPerOp+sim.Time(float64(seg.length)*st.cfg.DMAPerByte+0.5))
		st.wireFIFO.Put(p, f)
	}
}

// wireTxLoop drains DMA-complete frames onto the wire.
func (st *Stack) wireTxLoop(p *sim.Proc) {
	for {
		f, ok := st.wireFIFO.Get(p)
		if !ok {
			return
		}
		st.net.Transmit(p, f)
	}
}
