package ktcp

import (
	"io"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// rig builds an n-node cluster with a TCP stack on each node.
type rig struct {
	k      *sim.Kernel
	cl     *cluster.Cluster
	stacks []*Stack
}

func newRig(n int, cfg Config) *rig {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.CLANConfig())
	cl := cluster.New(k, net)
	r := &rig{k: k, cl: cl}
	for i := 0; i < n; i++ {
		node := cl.AddNode(string(rune('a'+i)), cluster.DefaultConfig())
		r.stacks = append(r.stacks, NewStack(node, net, cfg))
	}
	return r
}

// pair runs a client/server pair between stacks 0 and 1 on service 1.
func (r *rig) pair(t *testing.T, client, server func(p *sim.Proc, c *Conn)) {
	t.Helper()
	l := r.stacks[1].Listen(1)
	r.k.Go("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server(p, c)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c, err := r.stacks[0].Connect(p, "b", 1)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		client(p, c)
	})
	r.k.RunAll()
}

func TestConnectAccept(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	var cliOK, srvOK bool
	r.pair(t,
		func(p *sim.Proc, c *Conn) { cliOK = c.Established() },
		func(p *sim.Proc, c *Conn) { srvOK = c.Established() },
	)
	if !cliOK || !srvOK {
		t.Fatal("handshake incomplete")
	}
}

func TestStreamDeliversBytesInOrder(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	msg := make([]byte, 10_000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	var got []byte
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			if err := c.Send(p, msg); err != nil {
				t.Errorf("send: %v", err)
			}
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, len(msg))
			n, err := c.RecvFull(p, buf)
			if n != len(msg) || err != nil {
				t.Errorf("recv %d, %v", n, err)
			}
			got = buf
		},
	)
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("stream corrupted at %d", i)
		}
	}
}

func TestRecvSeesEOFAfterClose(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	var err2 error
	var n1 int
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c.Send(p, []byte("bye"))
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, 16)
			n1, _ = c.Recv(p, buf)
			_, err2 = c.Recv(p, buf)
		},
	)
	if n1 != 3 {
		t.Fatalf("first recv = %d, want 3", n1)
	}
	if err2 != io.EOF {
		t.Fatalf("second recv err = %v, want EOF", err2)
	}
}

func TestSendOnClosedConnFails(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c.Close(p)
			if err := c.Send(p, []byte("x")); err != ErrClosed {
				t.Errorf("send after close = %v, want ErrClosed", err)
			}
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, 4)
			c.Recv(p, buf)
		},
	)
}

func TestSizeOnlyStreamAccounting(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	const n = 100_000
	var got int
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			if err := c.SendSize(p, n); err != nil {
				t.Errorf("send: %v", err)
			}
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, 8192)
			for {
				m, err := c.Recv(p, buf)
				got += m
				if err == io.EOF {
					return
				}
			}
		},
	)
	if got != n {
		t.Fatalf("received %d bytes, want %d", got, n)
	}
}

func TestMixedRealAndSizeOnlyOrdering(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	var header [4]byte
	var trailer [4]byte
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c.Send(p, []byte("HEAD"))
			c.SendSize(p, 5000)
			c.Send(p, []byte("TAIL"))
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			c.RecvFull(p, header[:])
			skip := make([]byte, 5000)
			c.RecvFull(p, skip)
			c.RecvFull(p, trailer[:])
		},
	)
	if string(header[:]) != "HEAD" || string(trailer[:]) != "TAIL" {
		t.Fatalf("framing lost: %q %q", header, trailer)
	}
}

func TestSlowConsumerBackpressure(t *testing.T) {
	cfg := LinuxCLANConfig()
	r := newRig(2, cfg)
	const total = 1 << 20
	var sendDone, recvStart sim.Time
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c.SendSize(p, total)
			sendDone = p.Now()
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			// Do not read for a long time: the sender must stall on
			// the advertised window, not buffer a megabyte remotely.
			p.Sleep(50 * sim.Millisecond)
			recvStart = p.Now()
			buf := make([]byte, 64*1024)
			for {
				if _, err := c.Recv(p, buf); err == io.EOF {
					return
				}
			}
		},
	)
	if sendDone < recvStart {
		t.Fatalf("send finished at %v before reader started at %v: no backpressure", sendDone, recvStart)
	}
}

func TestWindowStallRecovers(t *testing.T) {
	// A sender fills the whole advertised window while the reader
	// sleeps; the reader's window update must un-stall it.
	cfg := LinuxCLANConfig()
	r := newRig(2, cfg)
	total := cfg.RcvBuf * 4
	var received int
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c.SendSize(p, total)
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			p.Sleep(20 * sim.Millisecond)
			buf := make([]byte, 4096)
			for {
				n, err := c.Recv(p, buf)
				received += n
				if err == io.EOF {
					return
				}
			}
		},
	)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestManySmallMessagesArrive(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	const count = 200
	var got int
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			for i := 0; i < count; i++ {
				c.Send(p, []byte{byte(i)})
			}
			c.Close(p)
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, 64)
			for {
				n, err := c.Recv(p, buf)
				got += n
				if err == io.EOF {
					return
				}
			}
		},
	)
	if got != count {
		t.Fatalf("got %d bytes, want %d", got, count)
	}
}

func TestTwoConnectionsBetweenSameNodes(t *testing.T) {
	r := newRig(2, LinuxCLANConfig())
	l2 := r.stacks[1].Listen(2)
	results := map[int]string{}
	r.k.Go("srv2", func(p *sim.Proc) {
		c, err := l2.Accept(p)
		if err != nil {
			t.Errorf("accept2: %v", err)
			return
		}
		buf := make([]byte, 3)
		c.RecvFull(p, buf)
		results[2] = string(buf)
	})
	r.pair(t,
		func(p *sim.Proc, c *Conn) {
			c2, err := r.stacks[0].Connect(p, "b", 2)
			if err != nil {
				t.Errorf("connect2: %v", err)
				return
			}
			c.Send(p, []byte("one"))
			c2.Send(p, []byte("two"))
		},
		func(p *sim.Proc, c *Conn) {
			buf := make([]byte, 3)
			c.RecvFull(p, buf)
			results[1] = string(buf)
		},
	)
	if results[1] != "one" || results[2] != "two" {
		t.Fatalf("results = %v", results)
	}
}

func TestKTCPDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		r := newRig(3, LinuxCLANConfig())
		l := r.stacks[2].Listen(1)
		for i := 0; i < 2; i++ {
			i := i
			r.k.Go("cli", func(p *sim.Proc) {
				c, _ := r.stacks[i].Connect(p, "c", 1)
				c.SendSize(p, 300_000)
				c.Close(p)
			})
		}
		for i := 0; i < 2; i++ {
			r.k.Go("srv", func(p *sim.Proc) {
				c, _ := l.Accept(p)
				buf := make([]byte, 32*1024)
				for {
					if _, err := c.Recv(p, buf); err == io.EOF {
						return
					}
				}
			})
		}
		return r.k.RunAll()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}

// measureTCPLatency returns one-way small-message latency via
// ping-pong.
func measureTCPLatency(size, iters int, cfg Config) sim.Time {
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	var oneWay sim.Time
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			c.RecvFull(p, buf)
			c.SendSize(p, size)
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		p.Sleep(sim.Millisecond)
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			c.SendSize(p, size)
			c.RecvFull(p, buf)
		}
		oneWay = (p.Now() - start) / sim.Time(2*iters)
	})
	r.k.RunAll()
	return oneWay
}

// measureTCPBandwidth returns streaming throughput in Mbps for
// back-to-back messages of the given size.
func measureTCPBandwidth(size, count int, cfg Config) float64 {
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	var mbps float64
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64*1024)
		total := 0
		start := sim.Time(-1)
		for {
			n, err := c.Recv(p, buf)
			if start < 0 && n > 0 {
				start = p.Now()
			}
			total += n
			if err == io.EOF {
				break
			}
		}
		mbps = sim.BitsPerSec(int64(total), p.Now()-start)
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		p.Sleep(sim.Millisecond)
		for i := 0; i < count; i++ {
			c.SendSize(p, size)
		}
		c.Close(p)
	})
	r.k.RunAll()
	return mbps
}

func TestCalibrationTCPLatency(t *testing.T) {
	got := measureTCPLatency(4, 50, LinuxCLANConfig())
	// Paper: traditional sockets over TCP ~5x SocketVIA's 9.5 us.
	if got < 42*sim.Microsecond || got > 55*sim.Microsecond {
		t.Fatalf("TCP 4-byte latency = %v, want ~47 us", got)
	}
}

func TestCalibrationTCPBandwidth(t *testing.T) {
	got := measureTCPBandwidth(64*1024, 100, LinuxCLANConfig())
	// Paper: 510 Mbps peak for TCP.
	if got < 480 || got > 540 {
		t.Fatalf("TCP 64K bandwidth = %.1f Mbps, want ~510", got)
	}
}

func TestNagleDelaysSubMSSSegments(t *testing.T) {
	on := LinuxCLANConfig()
	on.Nagle = true
	off := LinuxCLANConfig()
	// With Nagle, a burst of tiny writes coalesces into fewer
	// segments than without.
	segs := func(cfg Config) uint64 {
		r := newRig(2, cfg)
		l := r.stacks[1].Listen(1)
		r.k.Go("srv", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			buf := make([]byte, 4096)
			total := 0
			for total < 400 {
				n, err := c.Recv(p, buf)
				total += n
				if err == io.EOF {
					break
				}
			}
		})
		r.k.Go("cli", func(p *sim.Proc) {
			c, _ := r.stacks[0].Connect(p, "b", 1)
			p.Sleep(sim.Millisecond)
			for i := 0; i < 100; i++ {
				c.SendSize(p, 4)
			}
		})
		r.k.RunAll()
		return r.stacks[0].SegmentsOut()
	}
	withNagle, without := segs(on), segs(off)
	if withNagle >= without {
		t.Fatalf("Nagle segments %d !< no-Nagle segments %d", withNagle, without)
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	// One lone segment (AckEvery=2) must still get acked via the
	// delayed-ack timer so the sender's window state converges.
	cfg := LinuxCLANConfig()
	r := newRig(2, cfg)
	l := r.stacks[1].Listen(1)
	var acked bool
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64)
		c.Recv(p, buf)
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.stacks[0].Connect(p, "b", 1)
		p.Sleep(sim.Millisecond)
		c.Send(p, []byte("x"))
		p.Sleep(5 * cfg.AckTimeout)
		acked = c.acked >= 1
	})
	r.k.RunAll()
	if !acked {
		t.Fatal("lone segment never acknowledged")
	}
}
