// Package ktcp models the kernel-based sockets path of the testbed:
// TCP/IP through the Linux 2.2 kernel onto the cLAN adapter via the
// LANE (LAN emulation) driver.
//
// The model charges the costs the paper attributes to this path:
// system calls (kernel transition, cache/TLB effects folded into a
// per-call constant), data copies between user and kernel space on
// both sides, per-segment protocol processing, and ack traffic. All
// receive-side protocol processing for a node runs in one "softnet"
// process, reproducing the effectively serialized network stack of
// Linux 2.2 SMP (big kernel lock): aggregate receive throughput of a
// node does not scale with its second CPU, which is the mechanism
// behind the paper's observation that TCP cannot sustain more than
// ~3.25 full updates per second into the visualization node.
//
// Semantics are stream sockets: in-order reliable byte streams with a
// sliding send window bounded by the receiver's advertised window, so
// a slow consumer exerts backpressure on the producer exactly as real
// TCP does.
package ktcp

import "hpsockets/internal/sim"

// Config is the cost model and protocol parameters of the kernel path.
type Config struct {
	// MSS is the maximum segment payload (1460 for the 1500-byte LANE
	// MTU); HeaderSize covers Ethernet+IP+TCP framing on the wire.
	MSS        int
	HeaderSize int

	// SndBuf and RcvBuf are the socket buffer sizes. Send returns once
	// the data is buffered; it blocks while the send buffer is full.
	SndBuf int
	RcvBuf int

	// SendSyscall and RecvSyscall are per-call kernel transition
	// costs; CopyPerByteSend/Recv are the user<->kernel copy costs.
	SendSyscall     sim.Time
	RecvSyscall     sim.Time
	CopyPerByteSend float64
	CopyPerByteRecv float64

	// TxPerSegment is protocol processing per outgoing segment
	// (charged under the stack lock); RxPerSegment per incoming
	// segment (charged in the softnet process).
	TxPerSegment sim.Time
	RxPerSegment sim.Time

	// AckEvery generates one ack per N data segments (delayed ack);
	// AckTimeout flushes a pending ack when the stream goes quiet.
	// AckGen is the receiver-side cost of generating an ack;
	// AckProcessing the sender-side cost of absorbing one. AckSize is
	// its wire size.
	AckEvery      int
	AckTimeout    sim.Time
	AckGen        sim.Time
	AckProcessing sim.Time
	AckSize       int

	// WakeupCost is charged when a process blocked in recv (or a
	// full-buffer send) is woken by the stack.
	WakeupCost sim.Time

	// DMAPerByte and DMAPerOp model the adapter DMA for the LANE path.
	DMAPerByte float64
	DMAPerOp   sim.Time

	// ConnSetupCPU is charged on each side during connection setup.
	ConnSetupCPU sim.Time

	// Nagle enables sender-side coalescing of sub-MSS segments while
	// unacknowledged data is outstanding. DataCutter-style runtimes
	// set TCP_NODELAY, so the default profile disables it; it exists
	// for the ablation benches.
	Nagle bool

	// RTO is the retransmission timeout. Zero (the default profile)
	// disables retransmission entirely, preserving the flawless-fabric
	// behaviour bit for bit; fault scenarios set it to recover from
	// injected loss. Consecutive timeouts back off exponentially,
	// capped at 64x.
	RTO sim.Time
	// MaxRetries bounds consecutive retransmissions of the same data
	// (and of a SYN during connect) before the connection fails with
	// ErrTimeout. Only meaningful when RTO > 0.
	MaxRetries int
}

// LinuxCLANConfig returns the kernel path calibrated against the
// paper's Figure 4: ~47 us one-way small-message latency (about five
// times SocketVIA's 9.5 us) and ~510 Mbps peak bandwidth.
func LinuxCLANConfig() Config {
	return Config{
		MSS:             1460,
		HeaderSize:      58,
		SndBuf:          64 * 1024,
		RcvBuf:          64 * 1024,
		SendSyscall:     11 * sim.Microsecond,
		RecvSyscall:     7 * sim.Microsecond,
		CopyPerByteSend: 4.0,
		CopyPerByteRecv: 4.5,
		TxPerSegment:    6 * sim.Microsecond,
		RxPerSegment:    15 * sim.Microsecond,
		AckEvery:        2,
		AckTimeout:      500 * sim.Microsecond,
		AckGen:          3 * sim.Microsecond,
		AckProcessing:   5 * sim.Microsecond,
		AckSize:         58,
		WakeupCost:      14 * sim.Microsecond,
		DMAPerByte:      9.9,
		DMAPerOp:        400 * sim.Nanosecond,
		ConnSetupCPU:    30 * sim.Microsecond,
		Nagle:           false,
	}
}
