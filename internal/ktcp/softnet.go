package ktcp

import (
	"fmt"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// softnetLoop is the single protocol-processing process of a node's
// receive path. All inbound segments of all connections funnel through
// it, so a node's aggregate TCP receive throughput is bounded by one
// CPU's worth of protocol work regardless of its second processor —
// the Linux 2.2 big-kernel-lock behaviour the paper's numbers reflect.
func (st *Stack) softnetLoop(p *sim.Proc) {
	for {
		item, ok := st.softQ.Get(p)
		if !ok {
			return
		}
		if item.flushConn != nil {
			c := item.flushConn
			if c.ackPending > 0 || item.flushForce {
				st.emitAck(p, c)
			}
			continue
		}
		seg := item.seg
		st.segsIn++
		st.handleSeg(p, seg)
		// Every path through handleSeg has fully consumed the segment
		// except a SYN parked in a listener queue — and SYNs are never
		// pooled, so the free below is a no-op for them.
		st.freeSeg(seg)
	}
}

// handleSeg demultiplexes one inbound segment. It must not retain a
// poolable segment past its return.
func (st *Stack) handleSeg(p *sim.Proc, seg *segment) {
	cfg := st.cfg
	switch seg.kind {
	case segSYN:
		key := synKey{seg.srcPort, seg.srcConn}
		if c := st.synConns[key]; c != nil {
			// Retransmitted SYN for a connection we already
			// accepted: the SYNACK was lost. Repeat it.
			synack := st.allocSeg(true)
			synack.kind, synack.srcPort, synack.srcConn, synack.dstConn =
				segSYNACK, st.node.Name(), c.id, seg.srcConn
			st.transmitControl(p, seg.srcPort, synack)
			return
		}
		if st.synSeen[key] {
			return // duplicate SYN still queued for accept
		}
		l := st.listeners[seg.svc]
		if l == nil {
			panic(fmt.Sprintf("ktcp: connect to unbound service %d on %s", seg.svc, st.node.Name()))
		}
		st.synSeen[key] = true
		_ = l.q.TryPut(seg)
	case segSYNACK:
		c := st.conns[seg.dstConn]
		if c == nil || c.established {
			return // duplicate SYNACK after a retransmitted SYN
		}
		c.peerConn = seg.srcConn
		c.established = true
		c.sndLimit = int64(cfg.RcvBuf) // peer buffer, symmetric config
		c.connSig.Fire(nil)
	case segData:
		c := st.conns[seg.dstConn]
		if c == nil {
			return
		}
		st.node.Kernel().Trace("ktcp", "segment-in", int64(seg.length), seg.srcPort)
		hpsmon.Count(st.node.Kernel(), "ktcp", "segments.in", 1)
		cost := cfg.RxPerSegment + sim.Time(float64(seg.length)*cfg.CopyPerByteRecv+0.5)
		st.node.Overhead(p, cost)
		c.applyAckInfo(seg)
		if seg.seq != c.rcvd {
			// A gap (a dropped segment) or a go-back-N duplicate.
			// Discard and force a duplicate ack so the sender
			// resynchronises. Never taken on a flawless fabric:
			// per-pair delivery there is FIFO and gapless.
			st.node.Kernel().Trace("ktcp", "ooo-drop", int64(seg.length), seg.srcPort)
			st.emitAck(p, c)
			return
		}
		c.rcvBuf.AppendChunks(seg.data)
		c.rcvd += int64(seg.length)
		c.rcvCond.Broadcast()
		c.ackPending++
		if c.ackPending >= cfg.AckEvery {
			st.emitAck(p, c)
		} else {
			st.armAckTimer(c)
		}
	case segAck:
		c := st.conns[seg.dstConn]
		if c == nil {
			return
		}
		st.node.Overhead(p, cfg.AckProcessing)
		c.applyAckInfo(seg)
	case segFIN:
		c := st.conns[seg.dstConn]
		if c == nil {
			return
		}
		c.applyAckInfo(seg)
		if seg.seq != c.rcvd {
			// Duplicate FIN (already consumed) or FIN beyond a
			// loss gap; either way re-ack and wait for the sender
			// to close the gap.
			st.emitAck(p, c)
			return
		}
		c.rcvd = seg.seq + 1 // FIN consumes one sequence number
		c.rcvEOF = true
		c.rcvCond.Broadcast()
		st.emitAck(p, c)
	}
}

// armAckTimer starts the delayed-ack timer if it is not running. A
// fired or stopped timer handle reports not-Pending on its own, so no
// explicit disarm bookkeeping is needed.
func (st *Stack) armAckTimer(c *Conn) {
	if c.ackTimer.Pending() {
		return
	}
	c.ackTimer = st.node.Kernel().After(st.cfg.AckTimeout, c.onAckTimer)
}

func (c *Conn) onAckTimer() {
	_ = c.st.softQ.TryPut(softItem{flushConn: c})
}

// emitAck generates a cumulative ack for the connection and queues it
// for transmission.
func (st *Stack) emitAck(p *sim.Proc, c *Conn) {
	c.ackPending = 0
	c.ackTimer.Stop()
	st.node.Overhead(p, st.cfg.AckGen)
	st.node.Kernel().Trace("ktcp", "ack-out", c.rcvd, c.peerPort)
	rwnd := c.rwndAvail()
	c.lastAdvLimit = c.rcvd + int64(rwnd)
	ack := st.allocSeg(true)
	ack.kind, ack.srcPort, ack.srcConn, ack.dstConn = segAck, st.node.Name(), c.id, c.peerConn
	ack.cumAck, ack.rwnd = c.rcvd, rwnd
	_ = st.ackQ.TryPut(ack)
	st.acksOut++
}

// ackTxLoop drains generated acks onto the wire so softnet itself
// never blocks on the uplink.
func (st *Stack) ackTxLoop(p *sim.Proc) {
	for {
		seg, ok := st.ackQ.Get(p)
		if !ok {
			return
		}
		c := st.conns[seg.srcConn]
		if c == nil || c.peerConn == 0 {
			st.freeSeg(seg)
			continue
		}
		seg.dstConn = c.peerConn
		st.nicQ.Put(p, st.net.NewFrame(st.node.Name(), c.peerPort, netsim.ProtoIP,
			st.cfg.AckSize, seg))
	}
}
