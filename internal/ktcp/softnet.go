package ktcp

import (
	"fmt"

	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// softnetLoop is the single protocol-processing process of a node's
// receive path. All inbound segments of all connections funnel through
// it, so a node's aggregate TCP receive throughput is bounded by one
// CPU's worth of protocol work regardless of its second processor —
// the Linux 2.2 big-kernel-lock behaviour the paper's numbers reflect.
func (st *Stack) softnetLoop(p *sim.Proc) {
	cfg := st.cfg
	for {
		item, ok := st.softQ.Get(p)
		if !ok {
			return
		}
		if item.flush != nil {
			c := item.flush.conn
			if c.ackPending > 0 || item.flush.force {
				st.emitAck(p, c)
			}
			continue
		}
		seg := item.seg
		st.segsIn++
		switch seg.kind {
		case segSYN:
			key := synKey{seg.srcPort, seg.srcConn}
			if c := st.synConns[key]; c != nil {
				// Retransmitted SYN for a connection we already
				// accepted: the SYNACK was lost. Repeat it.
				st.transmitControl(p, seg.srcPort, &segment{
					kind: segSYNACK, srcPort: st.node.Name(), srcConn: c.id, dstConn: seg.srcConn,
				})
				continue
			}
			if st.synSeen[key] {
				continue // duplicate SYN still queued for accept
			}
			l := st.listeners[seg.svc]
			if l == nil {
				panic(fmt.Sprintf("ktcp: connect to unbound service %d on %s", seg.svc, st.node.Name()))
			}
			st.synSeen[key] = true
			l.q.TryPut(seg)
		case segSYNACK:
			c := st.conns[seg.dstConn]
			if c == nil || c.established {
				continue // duplicate SYNACK after a retransmitted SYN
			}
			c.peerConn = seg.srcConn
			c.established = true
			c.sndLimit = int64(cfg.RcvBuf) // peer buffer, symmetric config
			c.connSig.Fire(nil)
		case segData:
			c := st.conns[seg.dstConn]
			if c == nil {
				continue
			}
			st.node.Kernel().Trace("ktcp", "segment-in", int64(seg.length), seg.srcPort)
			cost := cfg.RxPerSegment + sim.Time(float64(seg.length)*cfg.CopyPerByteRecv+0.5)
			st.node.Overhead(p, cost)
			c.applyAckInfo(seg)
			if seg.seq != c.rcvd {
				// A gap (a dropped segment) or a go-back-N duplicate.
				// Discard and force a duplicate ack so the sender
				// resynchronises. Never taken on a flawless fabric:
				// per-pair delivery there is FIFO and gapless.
				st.node.Kernel().Trace("ktcp", "ooo-drop", int64(seg.length), seg.srcPort)
				st.emitAck(p, c)
				continue
			}
			c.rcvBuf.AppendChunks(seg.data)
			c.rcvd += int64(seg.length)
			c.rcvCond.Broadcast()
			c.ackPending++
			if c.ackPending >= cfg.AckEvery {
				st.emitAck(p, c)
			} else {
				st.armAckTimer(c)
			}
		case segAck:
			c := st.conns[seg.dstConn]
			if c == nil {
				continue
			}
			st.node.Overhead(p, cfg.AckProcessing)
			c.applyAckInfo(seg)
		case segFIN:
			c := st.conns[seg.dstConn]
			if c == nil {
				continue
			}
			c.applyAckInfo(seg)
			if seg.seq != c.rcvd {
				// Duplicate FIN (already consumed) or FIN beyond a
				// loss gap; either way re-ack and wait for the sender
				// to close the gap.
				st.emitAck(p, c)
				continue
			}
			c.rcvd = seg.seq + 1 // FIN consumes one sequence number
			c.rcvEOF = true
			c.rcvCond.Broadcast()
			st.emitAck(p, c)
		}
	}
}

// armAckTimer starts the delayed-ack timer if it is not running.
func (st *Stack) armAckTimer(c *Conn) {
	if c.ackTimer != nil {
		return
	}
	c.ackTimer = st.node.Kernel().After(st.cfg.AckTimeout, func() {
		c.ackTimer = nil
		st.softQ.TryPut(softItem{flush: &ackFlush{conn: c}})
	})
}

// emitAck generates a cumulative ack for the connection and queues it
// for transmission.
func (st *Stack) emitAck(p *sim.Proc, c *Conn) {
	c.ackPending = 0
	if c.ackTimer != nil {
		c.ackTimer.Stop()
		c.ackTimer = nil
	}
	st.node.Overhead(p, st.cfg.AckGen)
	st.node.Kernel().Trace("ktcp", "ack-out", c.rcvd, c.peerPort)
	rwnd := c.rwndAvail()
	c.lastAdvLimit = c.rcvd + int64(rwnd)
	st.ackQ.TryPut(&segment{
		kind: segAck, srcPort: st.node.Name(), srcConn: c.id, dstConn: c.peerConn,
		cumAck: c.rcvd, rwnd: rwnd,
	})
	st.acksOut++
}

// ackTxLoop drains generated acks onto the wire so softnet itself
// never blocks on the uplink.
func (st *Stack) ackTxLoop(p *sim.Proc) {
	for {
		seg, ok := st.ackQ.Get(p)
		if !ok {
			return
		}
		c := st.conns[seg.srcConn]
		if c == nil || c.peerConn == 0 {
			continue
		}
		seg.dstConn = c.peerConn
		st.nicQ.Put(p, &netsim.Frame{
			Src: st.node.Name(), Dst: c.peerPort, Proto: netsim.ProtoIP,
			Size: st.cfg.AckSize, Payload: seg,
		})
	}
}
