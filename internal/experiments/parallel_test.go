package experiments

import (
	"testing"
)

// The parallel runner's whole contract is that worker count is
// invisible in the output: every cell is a hermetic simulation world
// and results are reassembled in canonical order. These tests render
// the same figures sequentially and with several workers and require
// the emitted tables to match byte for byte. Run under -race (CI
// does), they also double as the data-race check on the fan-out.

// parTestOptions shrinks the workloads so the double runs stay fast.
func parTestOptions() Options {
	o := QuickOptions()
	o.MicroIters = 5
	o.MicroMsgs = 15
	o.LBBytes = 1 << 20
	o.MixQueries = 3
	return o
}

func TestFig4aParallelByteIdentical(t *testing.T) {
	seq, par := parTestOptions(), parTestOptions()
	seq.Workers, par.Workers = 1, 4
	want := Fig4aLatency(seq).Render()
	got := Fig4aLatency(par).Render()
	if got != want {
		t.Errorf("Fig4a differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", want, got)
	}
}

func TestFig10ParallelByteIdentical(t *testing.T) {
	seq, par := parTestOptions(), parTestOptions()
	seq.Workers, par.Workers = 1, 4
	want := Fig10(seq).Render()
	got := Fig10(par).Render()
	if got != want {
		t.Errorf("Fig10 differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", want, got)
	}
}

// TestFaultTransferParallelByteIdentical exercises the seeded-RNG
// cells: each transfer derives its fault plan from Options.Seed alone,
// so concurrency must not leak into the drop pattern.
func TestFaultTransferParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fault transfer grid is slow")
	}
	seq, par := parTestOptions(), parTestOptions()
	seq.Workers, par.Workers = 1, 4
	want := FigFaultTransfer(seq).Render()
	got := FigFaultTransfer(par).Render()
	if got != want {
		t.Errorf("FigFaultTransfer differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", want, got)
	}
}

func TestMicroParallelByteIdentical(t *testing.T) {
	seq, par := parTestOptions(), parTestOptions()
	seq.Workers, par.Workers = 1, 4
	want := Micro(seq)
	got := Micro(par)
	if got != want {
		t.Errorf("Micro differs between workers=1 and workers=4:\nseq %+v\npar %+v", want, got)
	}
}
