package experiments

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/fault"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
)

// Experiment family E17: crash-restart recovery of a checkpointed,
// exactly-once consumer. Where E15b measures failover (the work moves
// to a survivor and the crashed copy stays dead), E17 crashes the only
// consumer and brings its node back: the producer must ride out the
// outage, redial the restarted copy, resync it to the checkpoint
// watermark, and the delivery ledger must suppress every redelivered
// buffer. The figures chart what the paper's transports pay for that
// round trip — time to recover, total completion stretch, units of
// work replayed from the checkpoint, and duplicates suppressed.

// e17CrashFractions place the crash at fractions of the fault-free
// runtime (the goodput-dip axis of E17a).
var e17CrashFractions = []float64{0.25, 0.5, 0.75}

// e17CheckpointIntervals is the checkpoint-interval axis of E17b:
// coarser checkpoints lose more progress at the crash and replay more
// units of work after the rejoin.
var e17CheckpointIntervals = []sim.Time{
	250 * sim.Microsecond,
	1 * sim.Millisecond,
	2 * sim.Millisecond,
	4 * sim.Millisecond,
}

const (
	// e17UOWs slices the load into units of work short enough that the
	// E17b checkpoint-interval axis bites: with coarse intervals the
	// watermark lags whole completed units and the restarted copy
	// replays them.
	e17UOWs = 64
	// e17RestartDelay is the outage width: the node restarts this long
	// after its crash.
	e17RestartDelay = 1 * sim.Millisecond
	// e17Checkpoint is the fixed checkpoint interval of the E17a sweep.
	e17Checkpoint = 500 * sim.Microsecond
)

// e17SinkFilter logs every unit of work it is driven through (replays
// included) and timestamps its finish.
type e17SinkFilter struct {
	uowLog *[]int
	finish *sim.Time
}

func (f *e17SinkFilter) Init(*datacutter.Context) error { return nil }
func (f *e17SinkFilter) Process(ctx *datacutter.Context) error {
	*f.uowLog = append(*f.uowLog, ctx.UOW())
	in := ctx.Input("s")
	for {
		if _, ok := in.Read(ctx.Proc()); !ok {
			*f.finish = ctx.Now()
			return nil
		}
	}
}
func (f *e17SinkFilter) Finalize(*datacutter.Context) error { return nil }

// recoveryResult is one E17 run.
type recoveryResult struct {
	// Completion is when the (possibly restarted) consumer finished the
	// last unit of work.
	Completion sim.Time
	// MTTR is restart-to-first-redelivery: how long the rejoin protocol
	// took to put recovered work back in front of the filter.
	MTTR sim.Time
	// Replayed counts units of work the restarted incarnation re-drove
	// from the checkpoint watermark.
	Replayed int
	// Duplicates counts redeliveries the exactly-once ledger suppressed.
	Duplicates uint64
}

// runCrashRecovery runs one producer feeding a single recovery-armed
// consumer copy, crashing the consumer's node at crashAt and
// restarting it e17RestartDelay later (crashAt zero: fault-free
// baseline).
func runCrashRecovery(o Options, kind core.Kind, ckptEvery, crashAt sim.Time) recoveryResult {
	plan := fault.Plan{Seed: o.Seed}
	if crashAt > 0 {
		plan.Crashes = []fault.NodeCrash{{Node: "n1", At: crashAt}}
		plan.Restarts = []fault.NodeRestart{{Node: "n1", At: crashAt + e17RestartDelay}}
	}
	r := newFaultRig(2, kind, plan)
	const block = 16 << 10
	perUOW := o.LBBytes / (e17UOWs * block)
	var uowLog []int
	var finish sim.Time
	g := datacutter.NewRuntime(r.cl, r.fab).Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "src", Placement: []string{"n0"},
				New: func(int) datacutter.Filter { return &e15SourceFilter{perUOW: perUOW, block: block} }},
			{Name: "dst", Placement: []string{"n1"}, CheckpointEvery: ckptEvery,
				New: func(int) datacutter.Filter { return &e17SinkFilter{uowLog: &uowLog, finish: &finish} }},
		},
		Streams: []datacutter.StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:         datacutter.DemandDriven,
			MaxUnacked:     4,
			OpTimeout:      2 * sim.Millisecond,
			RedialAttempts: 8,
			RedialSeed:     o.Seed + 17,
			ExactlyOnce:    true,
		}},
	})
	g.Start(e17UOWs)
	r.k.RunAll()
	if err := g.Err(); err != nil {
		panic("experiments: e17 group failed: " + err.Error())
	}
	if finish == 0 {
		panic(fmt.Sprintf("experiments: e17 consumer never finished (%s ckpt %s crash %s)",
			kind, ckptEvery, crashAt))
	}
	res := recoveryResult{
		Completion: finish,
		Replayed:   len(uowLog) - e17UOWs,
		Duplicates: g.ReaderOf("dst", 0, "s").Duplicates(),
	}
	if restartedAt, recoveredAt := g.RecoveryOf("dst", 0); recoveredAt > restartedAt {
		res.MTTR = recoveredAt - restartedAt
	}
	return res
}

// FigRecoveryTiming reproduces E17a: completion time, time to recover
// and suppressed duplicates of a crash-restarted consumer versus the
// crash point as a fraction of the fault-free runtime, per transport.
func FigRecoveryTiming(o Options) *stats.Table {
	xs := make([]float64, len(e17CrashFractions))
	for i, f := range e17CrashFractions {
		xs[i] = f * 100
	}
	t := &stats.Table{
		Title:  "E17a: Crash-restart recovery vs crash point",
		XLabel: "crash_at_pct_of_baseline",
		YLabel: "completion (us) / mttr (us) / duplicates",
		X:      xs,
	}
	// Two phases, like E15b: crash points depend on each transport's
	// fault-free baseline, so the baselines run first.
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	bases := make([]recoveryResult, len(kinds))
	o.parMap(len(kinds), func(i int) {
		bases[i] = runCrashRecovery(o, kinds[i], e17Checkpoint, 0)
	})
	nf := len(e17CrashFractions)
	cells := make([]recoveryResult, len(kinds)*nf)
	o.parMap(len(cells), func(i int) {
		ki, fi := i/nf, i%nf
		crashAt := sim.Time(float64(bases[ki].Completion) * e17CrashFractions[fi])
		cells[i] = runCrashRecovery(o, kinds[ki], e17Checkpoint, crashAt)
	})
	for ki, kind := range kinds {
		us := make([]float64, nf)
		mttr := make([]float64, nf)
		dups := make([]float64, nf)
		for fi := 0; fi < nf; fi++ {
			res := cells[ki*nf+fi]
			us[fi] = res.Completion.Micros()
			mttr[fi] = res.MTTR.Micros()
			dups[fi] = float64(res.Duplicates)
		}
		t.AddSeries(fmt.Sprintf("%s_us", kind), us)
		t.AddSeries(fmt.Sprintf("%s_mttr_us", kind), mttr)
		t.AddSeries(fmt.Sprintf("%s_dups", kind), dups)
	}
	return t
}

// FigRecoveryCheckpoint reproduces E17b: completion time and replayed
// units of work versus the checkpoint interval, with the crash fixed
// at half the fault-free runtime, per transport. Coarser checkpoints
// replay more; the completion stretch charts what that redone work
// costs end to end.
func FigRecoveryCheckpoint(o Options) *stats.Table {
	xs := make([]float64, len(e17CheckpointIntervals))
	for i, ck := range e17CheckpointIntervals {
		xs[i] = ck.Micros()
	}
	t := &stats.Table{
		Title:  "E17b: Crash-restart recovery vs checkpoint interval",
		XLabel: "checkpoint_interval_us",
		YLabel: "completion (us) / replayed uows",
		X:      xs,
	}
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	bases := make([]recoveryResult, len(kinds))
	o.parMap(len(kinds), func(i int) {
		bases[i] = runCrashRecovery(o, kinds[i], e17Checkpoint, 0)
	})
	nc := len(e17CheckpointIntervals)
	cells := make([]recoveryResult, len(kinds)*nc)
	o.parMap(len(cells), func(i int) {
		ki, ci := i/nc, i%nc
		crashAt := sim.Time(float64(bases[ki].Completion) * 0.5)
		cells[i] = runCrashRecovery(o, kinds[ki], e17CheckpointIntervals[ci], crashAt)
	})
	for ki, kind := range kinds {
		us := make([]float64, nc)
		replayed := make([]float64, nc)
		for ci := 0; ci < nc; ci++ {
			res := cells[ki*nc+ci]
			us[ci] = res.Completion.Micros()
			replayed[ci] = float64(res.Replayed)
		}
		t.AddSeries(fmt.Sprintf("%s_us", kind), us)
		t.AddSeries(fmt.Sprintf("%s_replayed", kind), replayed)
	}
	return t
}
