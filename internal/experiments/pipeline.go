package experiments

import (
	"fmt"
	"math"
	"sync"

	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/profile"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
	"hpsockets/internal/vizapp"
)

// pipeKey memoizes pipeline measurements: the rate and latency tables
// are shared between the Figure 7 and Figure 8 searches.
type pipeKey struct {
	kind    core.Kind
	compute bool
	block   int
	image   int
}

var (
	memoMu   sync.Mutex
	rateMemo = map[pipeKey]float64{}
	latMemo  = map[pipeKey]sim.Time{}
)

func (o Options) pipeConfig(kind core.Kind, block int, compute, sequential bool) vizapp.PipelineConfig {
	cfg := vizapp.DefaultPipelineConfig(kind, block)
	cfg.ImageBytes = o.ImageBytes
	cfg.Chains = o.Chains
	cfg.Sequential = sequential
	if compute {
		cfg.ComputePerByte = o.ComputePerByte
	}
	return cfg
}

// UpdateRate measures the steady-state complete-update rate (full
// updates per second) of the pipeline at one distribution block size.
func UpdateRate(o Options, kind core.Kind, compute bool, block int) float64 {
	key := pipeKey{kind, compute, block, o.ImageBytes}
	memoMu.Lock()
	if v, ok := rateMemo[key]; ok {
		memoMu.Unlock()
		return v
	}
	memoMu.Unlock()
	cfg := o.pipeConfig(kind, block, compute, false)
	col, cell := o.instrumentCell("rate", kind, compute, block, &cfg)
	queries := make([]vizapp.Query, o.ThroughputQueries)
	for i := range queries {
		queries[i] = cfg.CompleteQuery()
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: rate run failed: " + res.Err.Error())
	}
	o.adoptCell(col, cell)
	v := res.UpdatesPerSec()
	memoMu.Lock()
	rateMemo[key] = v
	memoMu.Unlock()
	return v
}

// PartialLatency measures the mean response time of a sequential
// stream of one-block partial updates at one block size.
func PartialLatency(o Options, kind core.Kind, compute bool, block int) sim.Time {
	key := pipeKey{kind, compute, block, o.ImageBytes}
	memoMu.Lock()
	if v, ok := latMemo[key]; ok {
		memoMu.Unlock()
		return v
	}
	memoMu.Unlock()
	cfg := o.pipeConfig(kind, block, compute, true)
	col, cell := o.instrumentCell("lat", kind, compute, block, &cfg)
	queries := make([]vizapp.Query, o.LatencyQueries)
	for i := range queries {
		queries[i] = vizapp.PartialQuery()
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: latency run failed: " + res.Err.Error())
	}
	o.adoptCell(col, cell)
	v := res.MeanResponse()
	memoMu.Lock()
	latMemo[key] = v
	memoMu.Unlock()
	return v
}

// instrumentCell builds the observability state for one measurement
// cell and hooks it into the cell's pipeline config: a telemetry
// collector when Telemetry is on, a profile cell (park ledger + span
// DAG) when Profile is on, both nil (and no hook) when both are off.
// The cell name encodes the full memo key, so every computed grid
// point lands in a distinct, canonically named slot of its set. With
// both enabled the views share one collector: span collection only
// appends to the span/flow logs, so the rendered metrics tables are
// byte-identical with or without -profile.
func (o Options) instrumentCell(measure string, kind core.Kind, compute bool, block int, cfg *vizapp.PipelineConfig) (*hpsmon.Collector, *profile.Cell) {
	if o.Telemetry == nil && o.Profile == nil {
		return nil, nil
	}
	c := "nc"
	if compute {
		c = "lc"
	}
	name := fmt.Sprintf("pipe/%s/%s/%s/b%d", measure, kind, c, block)
	col := hpsmon.NewCollector(name, hpsmon.Options{Spans: o.Profile != nil})
	if o.Profile == nil {
		cfg.Hook = col.Attach
		return col, nil
	}
	led := profile.NewLedger()
	cfg.Hook = func(k *sim.Kernel) {
		col.Attach(k)
		led.Attach(k)
	}
	cell := &profile.Cell{Name: name, Ledger: led, Source: col}
	if o.Telemetry == nil {
		return nil, cell
	}
	return col, cell
}

// adoptCell files a finished cell's observability state into the
// enabled sets.
func (o Options) adoptCell(col *hpsmon.Collector, cell *profile.Cell) {
	if col != nil && o.Telemetry != nil {
		o.Telemetry.Adopt(col)
	}
	if cell != nil && o.Profile != nil {
		o.Profile.Adopt(cell)
	}
}

// ResetPipelineMemo clears the process-wide rate/latency memo. Only
// measurement harnesses (cmd/bench) need it: back-to-back timed figure
// runs in one process would otherwise let the later runs read the
// first run's cache and report fictitious speedups.
func ResetPipelineMemo() {
	memoMu.Lock()
	rateMemo = map[pipeKey]float64{}
	latMemo = map[pipeKey]sim.Time{}
	memoMu.Unlock()
}

// warmPipelineMemo fills the rate and latency memos for every ladder
// block of both transports as parallel cells, so the sequential
// threshold searches in Fig7 and Fig8 become pure lookups. The memos
// cache pure functions of their key, so filling them eagerly and in
// any order cannot change a value the searches read: the emitted
// tables are byte-identical to the cold sequential run, which computes
// a subset of the same grid lazily.
func warmPipelineMemo(o Options, compute bool) {
	// With telemetry or profiling on, the warm pass runs even
	// sequentially: it pins the set of computed (and therefore
	// collected) cells to the full grid, so the exports are identical
	// at any worker count — the lazy sequential searches alone would
	// compute only a subset.
	if o.Workers <= 1 && o.Telemetry == nil && o.Profile == nil {
		return
	}
	kinds := []core.Kind{core.KindTCP, core.KindSocketVIA}
	n := len(kinds) * len(o.BlockLadder)
	o.parMap(2*n, func(i int) {
		kind := kinds[(i%n)/len(o.BlockLadder)]
		block := o.BlockLadder[i%len(o.BlockLadder)]
		if i < n {
			UpdateRate(o, kind, compute, block)
		} else {
			PartialLatency(o, kind, compute, block)
		}
	})
}

// minBlockForRate finds the smallest ladder block size whose pipeline
// update rate meets the target, mirroring the paper's "data chunking
// done to suit this requirement".
func minBlockForRate(o Options, kind core.Kind, compute bool, target float64) (int, bool) {
	for _, b := range o.BlockLadder {
		if UpdateRate(o, kind, compute, b) >= target {
			return b, true
		}
	}
	return 0, false
}

// maxBlockForLatency finds the largest ladder block whose partial
// update latency stays within the target.
func maxBlockForLatency(o Options, kind core.Kind, compute bool, target sim.Time) (int, bool) {
	best, ok := 0, false
	for _, b := range o.BlockLadder {
		if PartialLatency(o, kind, compute, b) <= target {
			best, ok = b, true
		}
	}
	return best, ok
}

// fig7Targets mirrors the paper's x axes: updates/sec guarantees from
// 4.0 (3.25 with computation) down to 2.0.
func fig7Targets(compute bool) []float64 {
	if compute {
		return []float64{3.25, 3, 2.75, 2.5, 2.25, 2}
	}
	return []float64{4, 3.75, 3.5, 3.25, 3, 2.75, 2.5, 2.25, 2}
}

// Fig7 reproduces Figure 7: average partial-update latency under a
// full-updates-per-second guarantee. The TCP series uses the block
// size TCP needs for the guarantee; plain SocketVIA runs with TCP's
// partitioning; SocketVIA (with DR) repartitions the dataset for its
// own bandwidth profile. Targets TCP cannot meet at any block size
// render as missing points, like TCP dropping off the paper's plot.
func Fig7(o Options, compute bool) *stats.Table {
	variant := "(No Computation)"
	if compute {
		variant = "(Linear Computation)"
	}
	t := &stats.Table{
		Title:  "Figure 7: Average Latency with Updates per Second Guarantees " + variant,
		XLabel: "updates_per_sec",
		YLabel: "average partial-update latency (us)",
		XFmt:   "%.2f",
	}
	targets := fig7Targets(compute)
	t.X = targets
	warmPipelineMemo(o, compute)
	maxBlock := o.BlockLadder[len(o.BlockLadder)-1]
	var tcpY, svY, drY []float64
	for _, target := range targets {
		bTCP, okTCP := minBlockForRate(o, core.KindTCP, compute, target)
		if okTCP {
			tcpY = append(tcpY, PartialLatency(o, core.KindTCP, compute, bTCP).Micros())
			svY = append(svY, PartialLatency(o, core.KindSocketVIA, compute, bTCP).Micros())
		} else {
			// TCP drops out; the TCP-oriented partitioning SocketVIA
			// inherits is the coarsest available.
			tcpY = append(tcpY, nan())
			svY = append(svY, PartialLatency(o, core.KindSocketVIA, compute, maxBlock).Micros())
		}
		if bSV, ok := minBlockForRate(o, core.KindSocketVIA, compute, target); ok {
			drY = append(drY, PartialLatency(o, core.KindSocketVIA, compute, bSV).Micros())
		} else {
			drY = append(drY, nan())
		}
	}
	t.AddSeries("TCP_us", tcpY)
	t.AddSeries("SocketVIA_us", svY)
	t.AddSeries("SocketVIA_DR_us", drY)
	return t
}

// fig8Targets are the paper's latency guarantees, 1000 us down to
// 100 us.
func fig8Targets() []sim.Time {
	var out []sim.Time
	for us := 1000; us >= 100; us -= 100 {
		out = append(out, sim.Time(us)*sim.Microsecond)
	}
	return out
}

// Fig8 reproduces Figure 8: achievable full updates per second under a
// partial-update latency guarantee.
func Fig8(o Options, compute bool) *stats.Table {
	variant := "(No Computation)"
	if compute {
		variant = "(Linear Computation)"
	}
	t := &stats.Table{
		Title:  "Figure 8: Updates per Second with Latency Guarantees " + variant,
		XLabel: "latency_guarantee_us",
		YLabel: "full updates per second",
	}
	targets := fig8Targets()
	for _, l := range targets {
		t.X = append(t.X, l.Micros())
	}
	warmPipelineMemo(o, compute)
	minBlock := o.BlockLadder[0]
	var tcpY, svY, drY []float64
	for _, l := range targets {
		bTCP, okTCP := maxBlockForLatency(o, core.KindTCP, compute, l)
		if okTCP {
			tcpY = append(tcpY, UpdateRate(o, core.KindTCP, compute, bTCP))
			svY = append(svY, UpdateRate(o, core.KindSocketVIA, compute, bTCP))
		} else {
			// TCP drops out entirely; TCP-oriented chunking collapses
			// to the finest grain.
			tcpY = append(tcpY, nan())
			svY = append(svY, UpdateRate(o, core.KindSocketVIA, compute, minBlock))
		}
		if bSV, ok := maxBlockForLatency(o, core.KindSocketVIA, compute, l); ok {
			drY = append(drY, UpdateRate(o, core.KindSocketVIA, compute, bSV))
		} else {
			drY = append(drY, nan())
		}
	}
	t.AddSeries("TCP_ups", tcpY)
	t.AddSeries("SocketVIA_ups", svY)
	t.AddSeries("SocketVIA_DR_ups", drY)
	return t
}

func nan() float64 { return math.NaN() }
