package experiments

import (
	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

// Ablations for the design choices called out in DESIGN.md. Each
// returns the metric the corresponding bench reports.

// SVWithConfig builds a two-node SocketVIA fabric with a modified
// sockets-layer configuration and returns kernel and fabric.
func svWithConfig(mod func(*core.SVConfig)) (*sim.Kernel, *core.Fabric) {
	prof := core.CLANProfile()
	mod(&prof.SV)
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	return k, core.NewFabric(cl, core.KindSocketVIA, prof)
}

// measureFabricBandwidth streams count messages of the given size over
// a fabric and returns Mbps.
func measureFabricBandwidth(k *sim.Kernel, fab *core.Fabric, size, count int) float64 {
	l := fab.Endpoint("b").Listen(1)
	var mbps float64
	k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64*1024)
		total := 0
		start := sim.Time(-1)
		for {
			n, err := c.Recv(p, buf)
			if start < 0 && n > 0 {
				start = p.Now()
			}
			total += n
			if err != nil {
				break
			}
		}
		mbps = sim.BitsPerSec(int64(total), p.Now()-start)
		c.Close(p)
	})
	k.Go("cli", func(p *sim.Proc) {
		c, _ := fab.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		for i := 0; i < count; i++ {
			c.SendSize(p, size)
		}
		c.Close(p)
	})
	k.RunAll()
	return mbps
}

// AblationEagerChunk (A2) measures SocketVIA bandwidth as a function
// of the eager chunk size: small chunks cost per-descriptor overhead,
// huge chunks reduce copy/DMA pipelining within the pool.
func AblationEagerChunk(chunk, msgSize, count int) float64 {
	k, fab := svWithConfig(func(sv *core.SVConfig) { sv.ChunkSize = chunk })
	return measureFabricBandwidth(k, fab, msgSize, count)
}

// AblationCredits (A1) measures SocketVIA bandwidth as a function of
// the credit count: too few credits stall the sender on credit
// updates.
func AblationCredits(credits, msgSize, count int) float64 {
	k, fab := svWithConfig(func(sv *core.SVConfig) {
		sv.Credits = credits
		sv.CreditBatch = credits / 2
		if sv.CreditBatch == 0 {
			sv.CreditBatch = 1
		}
	})
	return measureFabricBandwidth(k, fab, msgSize, count)
}

// AblationRendezvous (A6, the paper's future-work push model)
// compares eager and zero-copy rendezvous SocketVIA for one message
// size: bandwidth plus the sender's CPU utilization.
func AblationRendezvous(threshold, msgSize, count int) (mbps, senderCPU float64) {
	prof := core.CLANProfile()
	prof.SV.RendezvousThreshold = threshold
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	fab := core.NewFabric(cl, core.KindSocketVIA, prof)
	mbps = measureFabricBandwidth(k, fab, msgSize, count)
	return mbps, cl.Node("a").CPU().Utilization()
}

// AblationTCPMSS (A3) measures kernel TCP bandwidth and small-message
// latency as a function of the MSS, isolating the segmentation costs
// behind the Figure 4 TCP curve.
func AblationTCPMSS(mss, msgSize, count int) (mbps float64, latency sim.Time) {
	prof := core.CLANProfile()
	prof.TCP.MSS = mss
	build := func() (*sim.Kernel, *core.Fabric) {
		k := sim.NewKernel()
		net := netsim.New(k, prof.Wire)
		cl := cluster.New(k, net)
		cl.AddNode("a", cluster.DefaultConfig())
		cl.AddNode("b", cluster.DefaultConfig())
		return k, core.NewFabric(cl, core.KindTCP, prof)
	}
	k, fab := build()
	mbps = measureFabricBandwidth(k, fab, msgSize, count)

	k2, fab2 := build()
	l := fab2.Endpoint("b").Listen(1)
	k2.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 4)
		for i := 0; i < 20; i++ {
			c.RecvFull(p, buf)
			c.SendSize(p, 4)
		}
		c.Close(p)
	})
	k2.Go("cli", func(p *sim.Proc) {
		c, _ := fab2.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		buf := make([]byte, 4)
		start := p.Now()
		for i := 0; i < 20; i++ {
			c.SendSize(p, 4)
			c.RecvFull(p, buf)
		}
		latency = (p.Now() - start) / 40
		c.Close(p)
	})
	k2.RunAll()
	return mbps, latency
}

// AblationChains (A5) measures the pipeline's steady-state update rate
// as a function of the number of transparent copies per stage.
func AblationChains(o Options, kind core.Kind, chains, block int) float64 {
	cfg := vizapp.DefaultPipelineConfig(kind, block)
	cfg.ImageBytes = o.ImageBytes
	cfg.Chains = chains
	queries := make([]vizapp.Query, o.ThroughputQueries)
	for i := range queries {
		queries[i] = cfg.CompleteQuery()
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: chains ablation failed: " + res.Err.Error())
	}
	return res.UpdatesPerSec()
}

// AblationDemandWindow (A4) measures the demand-driven makespan as a
// function of the per-target demand window: window 0 (unbounded)
// degenerates to an eager uniform spread; large windows approach it.
func AblationDemandWindow(o Options, kind core.Kind, window int) sim.Time {
	cfg := vizapp.DefaultLBConfig(kind, PipeliningBlock(kind))
	cfg.TotalBytes = o.LBBytes
	cfg.Policy = datacutter.DemandDriven
	cfg.SlowNode = 2
	cfg.SlowFactor = 8
	cfg.DataLocal = true
	cfg.MaxUnacked = window
	res := vizapp.RunLoadBalancer(cfg)
	if res.Err != nil {
		panic("experiments: window ablation failed: " + res.Err.Error())
	}
	return res.Makespan
}
