// Package experiments reproduces every figure of the paper's
// evaluation section. Each FigNN function runs the corresponding
// experiment on the simulated testbed and returns the same series the
// paper plots, as a renderable table.
//
// The experiments are deterministic: same options, same output.
package experiments

import (
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/profile"
	"hpsockets/internal/runner"
	"hpsockets/internal/sim"
)

// Options scales the experiments. Defaults reproduce the paper's
// setup; Quick shrinks repetition counts for use in unit tests and Go
// benchmarks.
type Options struct {
	// ImageBytes is the data volume of one complete image.
	ImageBytes int
	// Chains is the number of transparent copies per pipeline stage.
	Chains int
	// ComputePerByte is the linear computation cost used by the
	// "(Linear Computation)" variants.
	ComputePerByte sim.Time
	// ThroughputQueries is the number of back-to-back complete updates
	// per rate measurement.
	ThroughputQueries int
	// LatencyQueries is the number of sequential partial updates per
	// latency measurement.
	LatencyQueries int
	// MixQueries is the number of queries per Figure 9 point.
	MixQueries int
	// BlockLadder is the candidate set of distribution block sizes for
	// the repartitioning searches.
	BlockLadder []int
	// MicroIters is the ping-pong repetition count of the
	// micro-benchmarks; MicroMsgs the message count per bandwidth
	// point.
	MicroIters int
	MicroMsgs  int
	// LBBytes is the workload volume of the load-balancing runs.
	LBBytes int
	// Seed drives every randomized workload.
	Seed int64
	// Workers bounds the number of OS threads used to run independent
	// experiment cells concurrently. 0 or 1 runs everything
	// sequentially. Any value produces byte-identical figures: cells
	// are hermetic (own kernel, own seeded RNGs) and reassembled in
	// canonical order.
	Workers int
	// Telemetry, when non-nil, collects per-cell hpsmon metrics from
	// every pipeline measurement into the set. Enabling it forces the
	// full measurement grid to be computed (even at Workers <= 1), so
	// the collected cell set — and the rendered export — is identical
	// at any worker count.
	Telemetry *hpsmon.Set
	// Profile, when non-nil, attaches a park ledger and a
	// span-collecting collector to every pipeline measurement cell and
	// adopts the resulting profile (park/dispatch attribution +
	// virtual-time critical path) into the set. Like Telemetry it
	// forces the full measurement grid, so the report is identical at
	// any worker count.
	Profile *profile.Set
}

// parMap fans the n independent cells of one figure across o.Workers
// OS threads; with Workers <= 1 (or a single cell) everything runs
// inline in index order. fn must confine each cell to its own index:
// build its own simulation world and write only result slot i.
func (o Options) parMap(n int, fn func(i int)) {
	runner.Map(o.Workers, n, fn)
}

// DefaultOptions reproduces the paper's experimental parameters.
func DefaultOptions() Options {
	return Options{
		ImageBytes:        16 << 20,
		Chains:            3,
		ComputePerByte:    18 * sim.Nanosecond,
		ThroughputQueries: 4,
		LatencyQueries:    5,
		MixQueries:        10,
		BlockLadder: []int{
			512, 1 << 10, 2 << 10, 4 << 10, 8 << 10,
			16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
		},
		MicroIters: 50,
		MicroMsgs:  150,
		LBBytes:    16 << 20,
		Seed:       42,
	}
}

// QuickOptions shrinks everything for tests and benches while keeping
// the paper's 16 MB image (the figures' rates depend on it).
func QuickOptions() Options {
	o := DefaultOptions()
	o.ThroughputQueries = 3
	o.LatencyQueries = 3
	o.MixQueries = 6
	o.BlockLadder = []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}
	o.MicroIters = 20
	o.MicroMsgs = 60
	o.LBBytes = 4 << 20
	return o
}
