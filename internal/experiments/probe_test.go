package experiments

import (
	"fmt"
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

// TestProbeOneHop prints raw one-hop sockets latencies.
func TestProbeOneHop(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		for _, b := range []int{2048, 8192, 32768} {
			fmt.Printf("%s size=%6d: one-way=%v\n", kind, b, SocketsLatency(kind, b, 20))
		}
	}
}

// TestProbePartialLatency prints the partial-update latency table.
func TestProbePartialLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	o := QuickOptions()
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		for _, b := range []int{2048, 32768} {
			fmt.Printf("%s block=%6d: latency=%v\n", kind, b, PartialLatency(o, kind, false, b))
		}
	}
}

// TestProbeFig11Distribution diagnoses demand-driven behaviour under
// probabilistic slowness. Run with -run ProbeFig11 -v.
func TestProbeFig11Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	o := DefaultOptions()
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		cfg := o.lbConfig(kind, PipeliningBlock(kind))
		cfg.Policy = datacutter.DemandDriven
		cfg.SlowNode = 2
		cfg.SlowFactor = 8
		cfg.SlowProb = 0.9
		cfg.DataLocal = true
		res := vizapp.RunLoadBalancer(cfg)
		fmt.Printf("%s: makespan=%v blocks=%v\n", kind, res.Makespan, res.BlocksPerNode)
	}
}

// TestProbeLBDelivery is a diagnostic: raw delivery rate of the LB
// topology without computation. Run with -run ProbeLB -v.
func TestProbeLBDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		for _, block := range []int{2048, 16384, 131072} {
			cfg := vizapp.DefaultLBConfig(kind, block)
			cfg.TotalBytes = 4 << 20
			cfg.Computes = 1
			cfg.ComputePerByte = 0
			res := vizapp.RunLoadBalancer(cfg)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			mbps := sim.BitsPerSec(int64(cfg.TotalBytes), res.Makespan)
			fmt.Printf("%s block=%6d: %6.0f Mbps (makespan %v)\n", kind, block, mbps, res.Makespan)
		}
	}
}
