package experiments

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/stats"
	"hpsockets/internal/vizapp"
	"hpsockets/internal/workload"
)

// fig9Fractions is the paper's x axis: the fraction of queries that
// are complete updates.
var fig9Fractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// fig9Partitions are the paper's dataset partitionings: none, 8 and 64
// partitions per image.
var fig9Partitions = []int{1, 8, 64}

// zoomChunks is the number of data chunks a zoom query retrieves.
const zoomChunks = 4

// mixResponse runs one query-mix point sequentially and returns the
// mean response time in milliseconds.
func mixResponse(o Options, kind core.Kind, compute bool, partitions int, frac float64) float64 {
	block := o.ImageBytes / partitions
	cfg := o.pipeConfig(kind, block, compute, true)
	mix := workload.Mix(o.Seed, o.MixQueries, frac, workload.Zoom)
	queries := make([]vizapp.Query, len(mix))
	for i, q := range mix {
		switch q {
		case workload.Complete:
			queries[i] = cfg.CompleteQuery()
		default:
			// Without partitioning a query has to access the entire
			// data; otherwise a zoom touches four chunks.
			if partitions == 1 {
				queries[i] = cfg.CompleteQuery()
			} else {
				queries[i] = cfg.ZoomQuery(zoomChunks)
			}
		}
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: mix run failed: " + res.Err.Error())
	}
	return res.MeanResponse().Millis()
}

// Fig9 reproduces Figure 9: average response time versus the fraction
// of complete-update queries, for the dataset left unpartitioned or
// split into 8 or 64 chunks, on both transports.
func Fig9(o Options, compute bool) *stats.Table {
	variant := "(No Computation)"
	if compute {
		variant = "(Linear Computation)"
	}
	t := &stats.Table{
		Title:  "Figure 9: Effect of Multiple Queries on Average Response Time " + variant,
		XLabel: "fraction_complete",
		YLabel: "average response time (ms)",
		XFmt:   "%.1f",
		X:      fig9Fractions,
	}
	// Cell grid: (kind, partitioning, fraction). Each cell is one
	// sequential pipeline run in its own world; series are assembled
	// afterwards in the fixed legend order.
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	nf, np := len(fig9Fractions), len(fig9Partitions)
	ys := make([][]float64, len(kinds)*np)
	for i := range ys {
		ys[i] = make([]float64, nf)
	}
	o.parMap(len(kinds)*np*nf, func(i int) {
		series, f := i/nf, i%nf
		kind, parts := kinds[series/np], fig9Partitions[series%np]
		ys[series][f] = mixResponse(o, kind, compute, parts, fig9Fractions[f])
	})
	for ki, kind := range kinds {
		for pi, parts := range fig9Partitions {
			label := fmt.Sprintf("%dparts_%s_ms", parts, kind)
			if parts == 1 {
				label = fmt.Sprintf("noparts_%s_ms", kind)
			}
			t.AddSeries(label, ys[ki*np+pi])
		}
	}
	return t
}
