package experiments

import (
	"math"
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
)

// These tests assert the paper's qualitative results ("who wins, by
// roughly what factor, where crossovers fall") at reduced scale;
// cmd/figures regenerates the full-scale tables.

func TestMicroHeadlineBands(t *testing.T) {
	o := QuickOptions()
	m := Micro(o)
	if m.SocketVIALatency < 9*sim.Microsecond || m.SocketVIALatency > 11*sim.Microsecond {
		t.Errorf("SocketVIA latency = %v, want ~9.5 us", m.SocketVIALatency)
	}
	if m.VIALatency >= m.SocketVIALatency {
		t.Errorf("VIA latency %v !< SocketVIA %v", m.VIALatency, m.SocketVIALatency)
	}
	if r := float64(m.TCPLatency) / float64(m.SocketVIALatency); r < 4 || r > 6 {
		t.Errorf("TCP/SocketVIA latency ratio = %.2f, want ~5", r)
	}
	if m.SocketVIAPeak < 730 || m.SocketVIAPeak > 800 {
		t.Errorf("SocketVIA peak = %.0f Mbps, want ~763", m.SocketVIAPeak)
	}
	if m.TCPPeak < 470 || m.TCPPeak > 540 {
		t.Errorf("TCP peak = %.0f Mbps, want ~510", m.TCPPeak)
	}
	if imp := m.SocketVIAPeak / m.TCPPeak; imp < 1.3 || imp > 1.7 {
		t.Errorf("bandwidth improvement = %.2fx, want ~1.5x", imp)
	}
}

func TestFig4aOrderingAndMonotonicity(t *testing.T) {
	o := QuickOptions()
	o.MicroIters = 10
	tab := Fig4aLatency(o)
	via, sv, tcp := tab.Series[0].Y, tab.Series[1].Y, tab.Series[2].Y
	for i := range tab.X {
		if !(via[i] < sv[i] && sv[i] < tcp[i]) {
			t.Fatalf("size %v: ordering broken: via=%.1f sv=%.1f tcp=%.1f", tab.X[i], via[i], sv[i], tcp[i])
		}
		if i > 0 && (via[i] <= via[i-1] || sv[i] <= sv[i-1] || tcp[i] <= tcp[i-1]) {
			t.Fatalf("latency not monotone at size %v", tab.X[i])
		}
	}
}

func TestFig4bPeaksAndOrdering(t *testing.T) {
	o := QuickOptions()
	o.MicroMsgs = 40
	tab := Fig4bBandwidth(o)
	n := len(tab.X) - 1
	via, sv, tcp := tab.Series[0].Y, tab.Series[1].Y, tab.Series[2].Y
	if !(tcp[n] < sv[n] && sv[n] <= via[n]+20) {
		t.Fatalf("peak ordering broken: via=%.0f sv=%.0f tcp=%.0f", via[n], sv[n], tcp[n])
	}
	// Figure 2(a): SocketVIA reaches TCP's peak at a much smaller
	// message size.
	tcpPeak := tcp[n]
	crossover := math.Inf(1)
	for i := range tab.X {
		if sv[i] >= tcpPeak {
			crossover = tab.X[i]
			break
		}
	}
	if crossover > 4096 {
		t.Fatalf("SocketVIA reaches TCP peak only at %v bytes", crossover)
	}
}

func TestFig7TCPDropsOutAboveThreeAndQuarter(t *testing.T) {
	o := QuickOptions()
	tab := Fig7(o, false)
	tcp := tab.Series[0].Y
	for i, target := range tab.X {
		if target > 3.3 && !math.IsNaN(tcp[i]) {
			t.Errorf("TCP met %v updates/sec; the paper's TCP tops out at 3.25", target)
		}
		if target <= 3.0 && math.IsNaN(tcp[i]) {
			t.Errorf("TCP missing at %v updates/sec", target)
		}
	}
}

func TestFig7RepartitioningWinsBig(t *testing.T) {
	o := QuickOptions()
	tab := Fig7(o, false)
	tcp, dr := tab.Series[0].Y, tab.Series[2].Y
	for i := range tab.X {
		if math.IsNaN(tcp[i]) {
			continue
		}
		if dr[i] >= tcp[i] {
			t.Fatalf("DR latency %.0f us !< TCP %.0f us at %v updates/sec", dr[i], tcp[i], tab.X[i])
		}
	}
	// At the tightest TCP-feasible guarantee the paper reports >10x;
	// require at least 5x at reduced scale.
	for i := range tab.X {
		if !math.IsNaN(tcp[i]) {
			if ratio := tcp[i] / dr[i]; ratio < 5 {
				t.Fatalf("improvement at %v updates/sec = %.1fx, want >= 5x", tab.X[i], ratio)
			}
			break
		}
	}
}

func TestFig8TCPDropsOutAtTightLatency(t *testing.T) {
	o := QuickOptions()
	tab := Fig8(o, false)
	tcp, sv := tab.Series[0].Y, tab.Series[1].Y
	// At a 100 us guarantee TCP must be gone while SocketVIA still
	// delivers a healthy rate ("close to the peak value").
	last := len(tab.X) - 1
	if !math.IsNaN(tcp[last]) {
		t.Errorf("TCP met the 100 us latency guarantee (rate %.2f)", tcp[last])
	}
	if math.IsNaN(sv[last]) || sv[last] < 3 {
		t.Errorf("SocketVIA rate at 100 us = %.2f, want close to peak", sv[last])
	}
	// At the loosest guarantee TCP works but below SocketVIA.
	if math.IsNaN(tcp[0]) || tcp[0] >= sv[0] {
		t.Errorf("at 1000 us: tcp=%.2f sv=%.2f", tcp[0], sv[0])
	}
}

func TestFig9Shapes(t *testing.T) {
	o := QuickOptions()
	o.MixQueries = 4
	o.ImageBytes = 4 << 20
	// No partitioning: response independent of the mix.
	flat0 := mixResponse(o, core.KindTCP, false, 1, 0)
	flat1 := mixResponse(o, core.KindTCP, false, 1, 1)
	if math.Abs(flat0-flat1) > 0.05*flat0 {
		t.Errorf("no-partition responses vary with mix: %.1f vs %.1f ms", flat0, flat1)
	}
	// 64 partitions: response grows with the complete fraction, and
	// TCP grows faster than SocketVIA.
	tcpLo, tcpHi := mixResponse(o, core.KindTCP, false, 64, 0), mixResponse(o, core.KindTCP, false, 64, 1)
	svLo, svHi := mixResponse(o, core.KindSocketVIA, false, 64, 0), mixResponse(o, core.KindSocketVIA, false, 64, 1)
	if tcpHi <= tcpLo || svHi <= svLo {
		t.Fatalf("partitioned responses not increasing: tcp %.1f->%.1f sv %.1f->%.1f", tcpLo, tcpHi, svLo, svHi)
	}
	if (tcpHi - tcpLo) <= (svHi - svLo) {
		t.Errorf("TCP rise %.1f ms !> SocketVIA rise %.1f ms", tcpHi-tcpLo, svHi-svLo)
	}
	// Zoom-only with 64 partitions is far cheaper than unpartitioned.
	if tcpLo >= flat0/3 {
		t.Errorf("64-partition zoom response %.1f ms not well below unpartitioned %.1f ms", tcpLo, flat0)
	}
}

func TestFig10ReactionLinearInFactorAndRatio(t *testing.T) {
	o := QuickOptions()
	tab := Fig10(o)
	sv, tcp := tab.Series[0].Y, tab.Series[1].Y
	for i := 1; i < len(tab.X); i++ {
		if sv[i] <= sv[i-1] || tcp[i] <= tcp[i-1] {
			t.Fatalf("reaction time not increasing with factor")
		}
	}
	// The paper: reaction time decreases by a factor of ~8 with
	// SocketVIA (the 16KB/2KB block ratio).
	mid := len(tab.X) / 2
	ratio := tcp[mid] / sv[mid]
	if ratio < 5 || ratio > 11 {
		t.Fatalf("TCP/SocketVIA reaction ratio = %.1f, want ~8", ratio)
	}
}

func TestFig11DemandDrivenMasksHeterogeneity(t *testing.T) {
	o := QuickOptions()
	tab := Fig11(o)
	// Series: sv(2) sv(4) sv(8) tcp(2) tcp(4) tcp(8).
	for s := 0; s < 3; s++ {
		svY, tcpY := tab.Series[s].Y, tab.Series[s+3].Y
		for i := range tab.X {
			r := tcpY[i] / svY[i]
			if r > 1.35 || r < 0.7 {
				t.Fatalf("factor series %d prob %v: tcp/sv = %.2f, want close to 1 (paper: TCP close to SocketVIA)",
					s, tab.X[i], r)
			}
		}
		// Execution time grows with the probability of being slow.
		if svY[len(tab.X)-1] <= svY[0] {
			t.Fatalf("series %d not increasing with slow probability", s)
		}
	}
	// Higher heterogeneity factors cost more at high probability.
	last := len(tab.X) - 1
	if !(tab.Series[0].Y[last] < tab.Series[2].Y[last]) {
		t.Fatalf("factor 8 not slower than factor 2")
	}
}

func TestPerfectPipeliningKnees(t *testing.T) {
	o := QuickOptions()
	o.LBBytes = 2 << 20
	o.BlockLadder = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 128 << 10}
	tcpKnee, ok := PerfectPipeliningBlock(o, core.KindTCP, 0.9)
	if !ok {
		t.Fatal("no TCP knee found")
	}
	svKnee, ok := PerfectPipeliningBlock(o, core.KindSocketVIA, 0.9)
	if !ok {
		t.Fatal("no SocketVIA knee found")
	}
	// Paper: 16 KB for TCP, 2 KB for SocketVIA. Accept one ladder
	// step of slack.
	if tcpKnee < 8<<10 || tcpKnee > 32<<10 {
		t.Errorf("TCP knee = %d, want ~16K", tcpKnee)
	}
	if svKnee > 4<<10 {
		t.Errorf("SocketVIA knee = %d, want ~2K", svKnee)
	}
	if tcpKnee/svKnee < 4 {
		t.Errorf("knee ratio %d/%d < 4; paper's is 8", tcpKnee, svKnee)
	}
}

func TestAblationCreditsStarveThenSaturate(t *testing.T) {
	low := AblationCredits(2, 64*1024, 50)
	high := AblationCredits(16, 64*1024, 50)
	if low >= high {
		t.Fatalf("2 credits (%.0f Mbps) !< 16 credits (%.0f Mbps)", low, high)
	}
}

func TestAblationChunkSizeTradeoff(t *testing.T) {
	small := AblationEagerChunk(2048, 64*1024, 50)
	large := AblationEagerChunk(16384, 64*1024, 50)
	if small >= large {
		t.Fatalf("2K chunks (%.0f Mbps) !< 16K chunks (%.0f Mbps)", small, large)
	}
}

func TestAblationMSSSegmentationCosts(t *testing.T) {
	slowBW, slowLat := AblationTCPMSS(536, 64*1024, 50)
	fastBW, fastLat := AblationTCPMSS(8960, 64*1024, 50)
	if slowBW >= fastBW {
		t.Fatalf("MSS 536 bandwidth %.0f !< MSS 8960 %.0f", slowBW, fastBW)
	}
	if fastLat > slowLat+sim.Microsecond {
		t.Fatalf("jumbo-MSS latency %v worse than small-MSS %v", fastLat, slowLat)
	}
}

func TestAblationDemandWindowUnboundedDegenerates(t *testing.T) {
	o := QuickOptions()
	bounded := AblationDemandWindow(o, core.KindTCP, 2)
	unbounded := AblationDemandWindow(o, core.KindTCP, 0)
	if float64(unbounded) < 1.5*float64(bounded) {
		t.Fatalf("unbounded window makespan %v not much worse than bounded %v", unbounded, bounded)
	}
}

func TestUpdateRateMonotoneInBlockSizeTCP(t *testing.T) {
	o := QuickOptions()
	small := UpdateRate(o, core.KindTCP, false, 2<<10)
	large := UpdateRate(o, core.KindTCP, false, 128<<10)
	if small >= large {
		t.Fatalf("TCP rate at 2K (%.2f) !< at 128K (%.2f)", small, large)
	}
}

func TestPartialLatencyMonotoneInBlockSize(t *testing.T) {
	o := QuickOptions()
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		small := PartialLatency(o, kind, false, 2<<10)
		large := PartialLatency(o, kind, false, 128<<10)
		if small >= large {
			t.Fatalf("%v: partial latency at 2K (%v) !< at 128K (%v)", kind, small, large)
		}
	}
}

func TestFig2CrossoverSocketVIANeedsSmallerMessages(t *testing.T) {
	o := QuickOptions()
	o.MicroMsgs = 50
	tab := Fig2Crossover(o)
	sv, tcp := tab.Series[0].Y, tab.Series[1].Y
	for i, target := range tab.X {
		if math.IsNaN(sv[i]) {
			t.Fatalf("SocketVIA cannot reach %v Mbps", target)
		}
		if math.IsNaN(tcp[i]) {
			continue // TCP simply cannot attain the target at any size
		}
		if sv[i] > tcp[i] {
			t.Errorf("at %v Mbps: SocketVIA needs %v bytes, TCP only %v", target, sv[i], tcp[i])
		}
	}
	// The U1 vs U2 gap of the paper's sketch: at TCP's achievable
	// targets the size ratio should be large.
	if sv[4] > tcp[4]/4 {
		t.Errorf("at 500 Mbps: sv=%v tcp=%v, want sv << tcp", sv[4], tcp[4])
	}
}
