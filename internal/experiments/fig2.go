package experiments

import (
	"math"

	"hpsockets/internal/core"
	"hpsockets/internal/stats"
)

// Fig2Crossover quantifies the conceptual Figure 2 of the paper: the
// message size each transport needs to attain a given bandwidth
// ("high performance substrates achieve a required bandwidth at a much
// lower message size"), and the latency at those sizes. The U1/U2
// message sizes of the paper's sketch become measured numbers.
func Fig2Crossover(o Options) *stats.Table {
	targets := []float64{100, 200, 300, 400, 500}
	t := &stats.Table{
		Title:  "Figure 2 (quantified): message size needed to attain a bandwidth",
		XLabel: "required_Mbps",
		YLabel: "smallest message size (bytes) reaching the target",
		YFmt:   "%.0f",
	}
	for _, target := range targets {
		t.X = append(t.X, target)
	}
	sizes := fig4bSizes
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	// Measure the bandwidth grid as independent cells, then run the
	// threshold searches sequentially over the reassembled grid.
	bws := make([][]float64, len(kinds))
	for i := range bws {
		bws[i] = make([]float64, len(sizes))
	}
	o.parMap(len(kinds)*len(sizes), func(i int) {
		bws[i/len(sizes)][i%len(sizes)] = SocketsBandwidth(kinds[i/len(sizes)], sizes[i%len(sizes)], o.MicroMsgs)
	})
	for ki, kind := range kinds {
		bw := bws[ki]
		var ys []float64
		for _, target := range targets {
			y := math.NaN()
			for i, s := range sizes {
				if bw[i] >= target {
					y = float64(s)
					break
				}
			}
			ys = append(ys, y)
		}
		t.AddSeries(kind.String()+"_bytes", ys)
	}
	return t
}
