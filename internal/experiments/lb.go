package experiments

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/stats"
	"hpsockets/internal/vizapp"
)

// PipeliningBlock is the distribution block size at which perfect
// pipelining of communication and computation was observed, per
// transport (Section 5.2.3: 16 KB for TCP, 2 KB for SocketVIA).
func PipeliningBlock(kind core.Kind) int {
	if kind == core.KindSocketVIA {
		return 2 * 1024
	}
	return 16 * 1024
}

func (o Options) lbConfig(kind core.Kind, block int) vizapp.LBConfig {
	cfg := vizapp.DefaultLBConfig(kind, block)
	cfg.TotalBytes = o.LBBytes
	cfg.ComputePerByte = o.ComputePerByte
	cfg.Seed = o.Seed
	return cfg
}

// fig10Factors is the paper's heterogeneity-factor axis.
var fig10Factors = []float64{2, 4, 6, 8, 10}

// Fig10 reproduces Figure 10: the reaction time of the round-robin
// load balancer to a slow node, versus the factor of heterogeneity.
// Reaction time is the send-to-ack latency of the first block routed
// to the slow node: the time until the balancer could learn about its
// first mistake.
func Fig10(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10: Load Balancer Reaction time to Heterogeneity (Round-Robin)",
		XLabel: "heterogeneity_factor",
		YLabel: "reaction time (us)",
		X:      fig10Factors,
	}
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	nf := len(fig10Factors)
	ys := make([][]float64, len(kinds))
	for i := range ys {
		ys[i] = make([]float64, nf)
	}
	o.parMap(len(kinds)*nf, func(i int) {
		kind, factor := kinds[i/nf], fig10Factors[i%nf]
		cfg := o.lbConfig(kind, PipeliningBlock(kind))
		cfg.Policy = datacutter.RoundRobin
		cfg.RecordAcks = true
		cfg.SlowNode = 1
		cfg.SlowFactor = factor
		cfg.DataLocal = true
		res := vizapp.RunLoadBalancer(cfg)
		if res.Err != nil {
			panic("experiments: fig10 run failed: " + res.Err.Error())
		}
		ys[i/nf][i%nf] = res.ReactionTime(1).Micros()
	})
	for ki, kind := range kinds {
		t.AddSeries(fmt.Sprintf("%s_us", kind), ys[ki])
	}
	return t
}

// fig11Probs is the paper's probability-of-being-slow axis (percent).
var fig11Probs = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90}

// fig11Factors are the heterogeneity factors of the Figure 11 legends.
var fig11Factors = []float64{2, 4, 8}

// Fig11 reproduces Figure 11: total execution time under demand-driven
// scheduling when one compute node is slow with a given probability
// per block.
func Fig11(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 11: Effect of Heterogeneity in the Cluster (Demand-Driven)",
		XLabel: "prob_slow_pct",
		YLabel: "execution time (us)",
		X:      fig11Probs,
	}
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	np, nfac := len(fig11Probs), len(fig11Factors)
	ys := make([][]float64, len(kinds)*nfac)
	for i := range ys {
		ys[i] = make([]float64, np)
	}
	o.parMap(len(kinds)*nfac*np, func(i int) {
		series, pi := i/np, i%np
		kind, factor := kinds[series/nfac], fig11Factors[series%nfac]
		cfg := o.lbConfig(kind, PipeliningBlock(kind))
		cfg.Policy = datacutter.DemandDriven
		cfg.SlowNode = 2
		cfg.SlowFactor = factor
		cfg.SlowProb = fig11Probs[pi] / 100
		cfg.DataLocal = true
		res := vizapp.RunLoadBalancer(cfg)
		if res.Err != nil {
			panic("experiments: fig11 run failed: " + res.Err.Error())
		}
		ys[series][pi] = float64(res.Makespan) / 1000
	})
	for ki, kind := range kinds {
		for fi, factor := range fig11Factors {
			t.AddSeries(fmt.Sprintf("%s(%g)_us", kind, factor), ys[ki*nfac+fi])
		}
	}
	return t
}

// PerfectPipelining sweeps the block size of a one-producer,
// one-consumer pipeline with the 18 ns/byte computation and reports
// pipeline efficiency (compute time / makespan) per block size. The
// paper observed perfect pipelining at 16 KB for TCP and 2 KB for
// SocketVIA.
func PerfectPipelining(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Section 5.2.3: Perfect-pipelining block size sweep",
		XLabel: "block_bytes",
		YLabel: "pipeline efficiency (compute time / makespan)",
		X:      toF(o.BlockLadder),
	}
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	nb := len(o.BlockLadder)
	ys := make([][]float64, len(kinds))
	for i := range ys {
		ys[i] = make([]float64, nb)
	}
	o.parMap(len(kinds)*nb, func(i int) {
		ys[i/nb][i%nb] = PipelineEfficiency(o, kinds[i/nb], o.BlockLadder[i%nb])
	})
	for ki, kind := range kinds {
		t.AddSeries(fmt.Sprintf("%s_eff", kind), ys[ki])
	}
	return t
}

// PipelineEfficiency measures compute-bound efficiency of streaming
// the workload through a single compute filter at one block size,
// under round-robin distribution (no ack traffic), as in the paper's
// Section 5.2.3 setting.
func PipelineEfficiency(o Options, kind core.Kind, block int) float64 {
	cfg := o.lbConfig(kind, block)
	cfg.Computes = 1
	cfg.Policy = datacutter.RoundRobin
	res := vizapp.RunLoadBalancer(cfg)
	if res.Err != nil {
		panic("experiments: pipelining run failed: " + res.Err.Error())
	}
	ideal := float64(o.LBBytes) * float64(o.ComputePerByte)
	return ideal / float64(res.Makespan)
}

// PerfectPipeliningBlock finds the knee of the efficiency curve: the
// smallest ladder block whose pipeline efficiency reaches the given
// fraction (e.g. 0.9) of the transport's plateau efficiency. This is
// the measured counterpart of PipeliningBlock: growing the block
// beyond it buys almost nothing, and load-balancing granularity
// suffers.
func PerfectPipeliningBlock(o Options, kind core.Kind, fractionOfPlateau float64) (int, bool) {
	effs := make([]float64, len(o.BlockLadder))
	plateau := 0.0
	for i, block := range o.BlockLadder {
		effs[i] = PipelineEfficiency(o, kind, block)
		if effs[i] > plateau {
			plateau = effs[i]
		}
	}
	if plateau == 0 {
		return 0, false
	}
	for i, block := range o.BlockLadder {
		if effs[i] >= fractionOfPlateau*plateau {
			return block, true
		}
	}
	return 0, false
}
