package experiments

import (
	"encoding/binary"
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/fault"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
)

// Experiment family E15: behaviour of the two transports under
// injected faults. The paper's testbed never loses a frame; E15 asks
// what each sockets substrate costs to harden. The kernel path hides
// wire loss behind retransmission; the user-level path trades that
// for break detection and application-level redial, exactly the
// reliability split Section 2 attributes to VIA's reliable-delivery
// mode (a lost frame breaks the connection).

// e15DropRates is the per-frame drop probability axis.
var e15DropRates = []float64{0, 1e-4, 1e-3}

// e15Chunks are the application chunk sizes of the resumable
// transfer.
var e15Chunks = []int{16 << 10, 256 << 10}

// e15CrashFractions place the consumer-copy crash at fractions of the
// fault-free runtime.
var e15CrashFractions = []float64{0.25, 0.5, 0.75}

const e15OpTimeout = 10 * sim.Millisecond

// faultRig is an n-node recovery-armed cluster with a fault plan
// installed.
type faultRig struct {
	k   *sim.Kernel
	cl  *cluster.Cluster
	fab *core.Fabric
	inj *fault.Injector
}

func newFaultRig(nodes int, kind core.Kind, plan fault.Plan) *faultRig {
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < nodes; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), cluster.DefaultConfig())
	}
	inj := fault.Install(cl, plan)
	fab := core.NewFabric(cl, kind, prof)
	for _, node := range cl.Nodes() {
		inj.ArmDescPressure(node.Name(), fab.Endpoint(node.Name()))
	}
	return &faultRig{k: k, cl: cl, fab: fab, inj: inj}
}

// xferResult is one resumable-transfer run.
type xferResult struct {
	// Done is the virtual time the last chunk reached the receiver
	// (zero if the transfer never completed).
	Done sim.Time
	// Redials counts reconnects the sender needed.
	Redials int
}

// runResumableTransfer pushes total bytes n0 -> n1 as stop-and-wait
// chunks (an 8-byte chunk-index header, the chunk, a 1-byte ack) and
// recovers from transport failures by redialing and resuming from the
// last acknowledged chunk — at-least-once delivery on top of either
// transport.
func runResumableTransfer(o Options, kind core.Kind, chunk, total int, drop float64) xferResult {
	plan := fault.Plan{Seed: o.Seed}
	if drop > 0 {
		plan.Links = []fault.LinkFault{{DropProb: drop}}
	}
	r := newFaultRig(2, kind, plan)
	nchunks := (total + chunk - 1) / chunk

	var res xferResult
	l := r.fab.Endpoint("n1").Listen(1)
	r.k.Go("e15-rx", func(p *sim.Proc) {
		highest := -1
		hdr := make([]byte, 8)
		body := make([]byte, chunk)
		ack := []byte{1}
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			c.SetTimeout(e15OpTimeout)
			clean := false
			for {
				if _, err := c.RecvFull(p, hdr); err != nil {
					clean = highest == nchunks-1
					break
				}
				idx := int(binary.BigEndian.Uint64(hdr))
				if _, err := c.RecvFull(p, body); err != nil {
					break
				}
				if idx > highest {
					highest = idx
					if highest == nchunks-1 {
						res.Done = p.Now()
					}
				}
				if err := c.Send(p, ack); err != nil {
					break
				}
			}
			c.Close(p)
			if clean {
				return
			}
		}
	})
	r.k.Go("e15-tx", func(p *sim.Proc) {
		pol := core.DefaultRetryPolicy(o.Seed + 1)
		ep := r.fab.Endpoint("n0")
		c, err := core.Redial(p, ep, "n1", 1, pol)
		if err != nil {
			return
		}
		c.SetTimeout(e15OpTimeout)
		hdr := make([]byte, 8)
		ack := make([]byte, 1)
		acked := 0
		for acked < nchunks {
			binary.BigEndian.PutUint64(hdr, uint64(acked))
			err := c.Send(p, hdr)
			if err == nil {
				err = c.SendSize(p, chunk)
			}
			if err == nil {
				_, err = c.RecvFull(p, ack)
			}
			if err != nil {
				// The connection broke (or a deadline fired with the
				// peer unreachable): replace it and resume from the
				// last acknowledged chunk.
				c.Close(p)
				res.Redials++
				if c, err = core.Redial(p, ep, "n1", 1, pol); err != nil {
					return
				}
				c.SetTimeout(e15OpTimeout)
				continue
			}
			acked++
		}
		c.Close(p)
	})
	r.k.RunAll()
	return res
}

// FigFaultTransfer reproduces E15a: completion time of a resumable
// chunked transfer versus injected per-frame drop probability, per
// transport and chunk size. The kernel path absorbs loss with
// retransmission; SocketVIA's reliable-delivery VIA breaks on every
// lost frame and pays a redial instead.
func FigFaultTransfer(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "E15a: Resumable transfer under injected frame loss",
		XLabel: "drop_prob",
		YLabel: "completion (us) / redials",
		X:      e15DropRates,
	}
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	nd, nc := len(e15DropRates), len(e15Chunks)
	cells := make([]xferResult, len(kinds)*nc*nd)
	o.parMap(len(cells), func(i int) {
		series, di := i/nd, i%nd
		kind, chunk := kinds[series/nc], e15Chunks[series%nc]
		drop := e15DropRates[di]
		res := runResumableTransfer(o, kind, chunk, o.LBBytes, drop)
		if res.Done == 0 {
			panic(fmt.Sprintf("experiments: e15a transfer incomplete (%s chunk %d drop %g)",
				kind, chunk, drop))
		}
		cells[i] = res
	})
	for ki, kind := range kinds {
		for ci, chunk := range e15Chunks {
			us := make([]float64, nd)
			redials := make([]float64, nd)
			for di := 0; di < nd; di++ {
				res := cells[(ki*nc+ci)*nd+di]
				us[di] = res.Done.Micros()
				redials[di] = float64(res.Redials)
			}
			t.AddSeries(fmt.Sprintf("%s_%dk_us", kind, chunk>>10), us)
			t.AddSeries(fmt.Sprintf("%s_%dk_redials", kind, chunk>>10), redials)
		}
	}
	return t
}

// e15Filter drives the E15b filter group: a source streaming fixed
// size buffers and sinks that count and timestamp.
type e15SourceFilter struct {
	perUOW int
	block  int
}

func (f *e15SourceFilter) Init(*datacutter.Context) error { return nil }
func (f *e15SourceFilter) Process(ctx *datacutter.Context) error {
	out := ctx.Output("s")
	for i := 0; i < f.perUOW; i++ {
		if err := out.Write(ctx.Proc(), &datacutter.Buffer{Size: f.block}); err != nil {
			return err
		}
	}
	return out.EndOfWork(ctx.Proc())
}
func (f *e15SourceFilter) Finalize(*datacutter.Context) error { return nil }

type e15SinkFilter struct {
	copy     int
	received *[]uint64
	finish   *[]sim.Time
}

func (f *e15SinkFilter) Init(*datacutter.Context) error { return nil }
func (f *e15SinkFilter) Process(ctx *datacutter.Context) error {
	in := ctx.Input("s")
	for {
		if _, ok := in.Read(ctx.Proc()); !ok {
			(*f.finish)[f.copy] = ctx.Now()
			return nil
		}
		(*f.received)[f.copy]++
	}
}
func (f *e15SinkFilter) Finalize(*datacutter.Context) error { return nil }

// failoverResult is one E15b run.
type failoverResult struct {
	// Completion is when the surviving copy finished the last unit of
	// work (for the baseline: when the slower of the two finished).
	Completion sim.Time
	// Redispatched counts buffers re-sent to the survivor.
	Redispatched uint64
	// SurvivorShare is the fraction of delivered buffers the survivor
	// processed.
	SurvivorShare float64
}

const e15UOWs = 2

// runCrashFailover runs one producer feeding two transparent consumer
// copies under the demand-driven policy, crashing the second copy's
// node at crashAt (zero: fault-free baseline).
func runCrashFailover(o Options, kind core.Kind, crashAt sim.Time) failoverResult {
	plan := fault.Plan{Seed: o.Seed}
	if crashAt > 0 {
		plan.Crashes = []fault.NodeCrash{{Node: "n2", At: crashAt}}
	}
	r := newFaultRig(3, kind, plan)
	const block = 16 << 10
	perUOW := o.LBBytes / (e15UOWs * block)
	received := make([]uint64, 2)
	finish := make([]sim.Time, 2)
	g := datacutter.NewRuntime(r.cl, r.fab).Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "src", Placement: []string{"n0"},
				New: func(int) datacutter.Filter { return &e15SourceFilter{perUOW: perUOW, block: block} }},
			{Name: "dst", Placement: []string{"n1", "n2"},
				New: func(copy int) datacutter.Filter {
					return &e15SinkFilter{copy: copy, received: &received, finish: &finish}
				}},
		},
		Streams: []datacutter.StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:     datacutter.DemandDriven,
			MaxUnacked: 4,
			OpTimeout:  2 * sim.Millisecond,
		}},
	})
	// A crashed copy never reports done, so run the event heap dry
	// instead of waiting on the group's done signal.
	g.Start(e15UOWs)
	r.k.RunAll()
	if err := g.Err(); err != nil {
		panic("experiments: e15b group failed: " + err.Error())
	}
	res := failoverResult{
		Completion:   finish[0],
		Redispatched: g.WriterOf("src", 0, "s").Redispatched(),
	}
	if finish[1] > res.Completion {
		res.Completion = finish[1]
	}
	if crashAt > 0 {
		// The survivor's finish time is the measurement; the crashed
		// copy's stale timestamp (zero or pre-crash) never exceeds it.
		res.Completion = finish[0]
	}
	if total := received[0] + received[1]; total > 0 {
		res.SurvivorShare = float64(received[0]) / float64(total)
	}
	return res
}

// FigFaultFailover reproduces E15b: total execution time of a
// demand-driven filter group when one of two transparent consumer
// copies crashes partway through, versus the crash point as a
// fraction of the fault-free runtime. The second series counts the
// buffers re-dispatched to the survivor.
func FigFaultFailover(o Options) *stats.Table {
	xs := make([]float64, len(e15CrashFractions))
	for i, f := range e15CrashFractions {
		xs[i] = f * 100
	}
	t := &stats.Table{
		Title:  "E15b: Demand-driven failover to the surviving transparent copy",
		XLabel: "crash_at_pct_of_baseline",
		YLabel: "completion (us) / redispatched buffers",
		X:      xs,
	}
	// Two phases: the crash points depend on each transport's
	// fault-free baseline, so the baselines run first (one cell per
	// transport), then the crash grid fans out.
	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	bases := make([]failoverResult, len(kinds))
	o.parMap(len(kinds), func(i int) {
		bases[i] = runCrashFailover(o, kinds[i], 0)
	})
	nf := len(e15CrashFractions)
	cells := make([]failoverResult, len(kinds)*nf)
	o.parMap(len(cells), func(i int) {
		ki, fi := i/nf, i%nf
		crashAt := sim.Time(float64(bases[ki].Completion) * e15CrashFractions[fi])
		cells[i] = runCrashFailover(o, kinds[ki], crashAt)
	})
	for ki, kind := range kinds {
		us := make([]float64, nf)
		redisp := make([]float64, nf)
		for fi := 0; fi < nf; fi++ {
			us[fi] = cells[ki*nf+fi].Completion.Micros()
			redisp[fi] = float64(cells[ki*nf+fi].Redispatched)
		}
		t.AddSeries(fmt.Sprintf("%s_us", kind), us)
		t.AddSeries(fmt.Sprintf("%s_redispatched", kind), redisp)
	}
	return t
}
