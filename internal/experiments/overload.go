package experiments

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
	"hpsockets/internal/vizapp"
)

// E16 drives the visualization pipeline past its capacity and measures
// what happens to the application's update-rate guarantee under each
// transport. Offered load is expressed relative to the *kernel TCP*
// pipeline's measured capacity, and the per-update deadline is derived
// from TCP's unloaded response time — so both transports chase the
// same absolute guarantee, and the headroom SocketVIA's lower overhead
// buys shows up directly: at offered rates just past TCP's capacity,
// TCP degrades or misses updates while SocketVIA still holds.
//
// The pipeline runs with bounded inboxes, credit-based backpressure
// and the DegradeQuality shed policy: an update that cannot make its
// deadline at full resolution is sent at quarter volume instead of
// being dropped — the paper's interactive-visualization bargain of a
// coarse image over a stale one.

// e16Mults is the offered-load sweep, as multiples of TCP capacity.
var e16Mults = []float64{0.6, 0.9, 1.2, 1.5}

// e16Block is the distribution block size of the overload runs: the
// repartitioning sweet spot region of the Figure 7 family.
const e16Block = 64 << 10

// e16Slack scales TCP's unloaded response time into the update-rate
// guarantee, covering pipeline fill and arrival jitter at sub-capacity
// load.
const e16Slack = 2.0

// e16CreditWindow bounds each stream's in-flight buffers per consumer.
const e16CreditWindow = 4

// e16Queries is the update count per cell: long enough for a
// past-capacity backlog to grow through the guarantee's slack, which
// a handful of updates cannot (the backlog grows by the capacity
// shortfall per update).
const e16Queries = 12

// e16Latency measures the unloaded end-to-end response time of one
// complete update: a short sequential probe, no deadlines armed.
func e16Latency(o Options, kind core.Kind) sim.Time {
	cfg := o.pipeConfig(kind, e16Block, true, true)
	queries := make([]vizapp.Query, 3)
	for i := range queries {
		queries[i] = cfg.CompleteQuery()
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: e16 latency probe failed: " + res.Err.Error())
	}
	return res.MeanResponse()
}

// e16Cell is the outcome of one transport × offered-rate run.
type e16Cell struct {
	held, partial, missed int
	degraded              uint64
	shed                  uint64
}

func runOverload(o Options, kind core.Kind, arrival, update sim.Time) e16Cell {
	cfg := o.pipeConfig(kind, e16Block, true, false)
	cfg.ArrivalPeriod = arrival
	cfg.UpdatePeriod = update
	cfg.Shed = datacutter.DegradeQuality
	cfg.CreditWindow = e16CreditWindow
	queries := make([]vizapp.Query, e16Queries)
	for i := range queries {
		queries[i] = cfg.CompleteQuery()
	}
	res := vizapp.RunPipeline(cfg, queries)
	if res.Err != nil {
		panic("experiments: e16 overload run failed: " + res.Err.Error())
	}
	var c e16Cell
	c.held, c.partial, c.missed = res.HoldMissCounts()
	c.degraded = res.DegradedSent
	c.shed = res.ShedSend + res.ShedInbox
	return c
}

// FigOverload reproduces E16: update-rate guarantee outcomes versus
// offered load. X is offered load relative to the TCP pipeline's
// measured capacity; per transport the table reports how many updates
// held the guarantee at full resolution, arrived degraded or late
// (partial), or missed entirely, plus producer+inbox shed counts.
func FigOverload(o Options) *stats.Table {
	capTCP := UpdateRate(o, core.KindTCP, true, e16Block)
	latTCP := e16Latency(o, core.KindTCP)
	update := sim.Time(float64(latTCP) * e16Slack)

	kinds := []core.Kind{core.KindSocketVIA, core.KindTCP}
	cells := make([]e16Cell, len(kinds)*len(e16Mults))
	o.parMap(len(cells), func(i int) {
		kind := kinds[i/len(e16Mults)]
		m := e16Mults[i%len(e16Mults)]
		arrival := sim.Time(float64(sim.Second) / (m * capTCP))
		cells[i] = runOverload(o, kind, arrival, update)
	})

	t := &stats.Table{
		Title: fmt.Sprintf(
			"E16: Update guarantee under overload (guarantee %.2f ms, TCP capacity %.1f upd/s)",
			update.Millis(), capTCP),
		XLabel: "offered/cap_tcp",
		YLabel: "updates",
		X:      e16Mults,
	}
	for ki, kind := range kinds {
		held := make([]float64, len(e16Mults))
		partial := make([]float64, len(e16Mults))
		missed := make([]float64, len(e16Mults))
		shed := make([]float64, len(e16Mults))
		for mi := range e16Mults {
			c := cells[ki*len(e16Mults)+mi]
			held[mi] = float64(c.held)
			partial[mi] = float64(c.partial)
			missed[mi] = float64(c.missed)
			shed[mi] = float64(c.shed)
		}
		t.AddSeries(fmt.Sprintf("%s_held", kind), held)
		t.AddSeries(fmt.Sprintf("%s_partial", kind), partial)
		t.AddSeries(fmt.Sprintf("%s_missed", kind), missed)
		t.AddSeries(fmt.Sprintf("%s_shed", kind), shed)
	}
	return t
}
