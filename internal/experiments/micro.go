package experiments

import (
	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
	"hpsockets/internal/via"
)

// microRig is a two-node testbed with raw VIA providers.
type microRig struct {
	k      *sim.Kernel
	pa, pb *via.Provider
}

func newMicroRig() *microRig {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	a := cl.AddNode("a", cluster.DefaultConfig())
	b := cl.AddNode("b", cluster.DefaultConfig())
	return &microRig{
		k:  k,
		pa: via.NewProvider(a, net, prof.VIA),
		pb: via.NewProvider(b, net, prof.VIA),
	}
}

// VIALatency measures raw VIA one-way latency by ping-pong.
func VIALatency(size, iters int) sim.Time {
	r := newMicroRig()
	acc := r.pb.Listen(1)
	var oneWay sim.Time
	r.k.Go("srv", func(p *sim.Proc) {
		scq, rcq := r.pb.NewCQ(), r.pb.NewCQ()
		vi, _ := acc.Accept(p, scq, rcq)
		reg := r.pb.RegisterMem(p, 64*1024)
		for i := 0; i < iters; i++ {
			vi.PostRecv(p, &via.Desc{Region: reg, Len: 64 * 1024})
			rcq.Wait(p)
			vi.PostSend(p, &via.Desc{Region: reg, Len: size})
			scq.Wait(p)
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		scq, rcq := r.pa.NewCQ(), r.pa.NewCQ()
		vi := r.pa.NewVI(scq, rcq)
		r.pa.Connect(p, vi, "b", 1)
		reg := r.pa.RegisterMem(p, 64*1024)
		p.Sleep(sim.Millisecond)
		start := p.Now()
		for i := 0; i < iters; i++ {
			vi.PostRecv(p, &via.Desc{Region: reg, Len: 64 * 1024})
			vi.PostSend(p, &via.Desc{Region: reg, Len: size})
			scq.Wait(p)
			rcq.Wait(p)
		}
		oneWay = (p.Now() - start) / sim.Time(2*iters)
	})
	r.k.RunAll()
	return oneWay
}

// VIABandwidth measures raw VIA streaming bandwidth in Mbps.
func VIABandwidth(size, count int) float64 {
	r := newMicroRig()
	acc := r.pb.Listen(1)
	var mbps float64
	r.k.Go("srv", func(p *sim.Proc) {
		scq, rcq := r.pb.NewCQ(), r.pb.NewCQ()
		vi, _ := acc.Accept(p, scq, rcq)
		reg := r.pb.RegisterMem(p, 64*1024)
		for i := 0; i < count; i++ {
			vi.PostRecv(p, &via.Desc{Region: reg, Len: 64 * 1024})
		}
		start := p.Now()
		for i := 0; i < count; i++ {
			rcq.Wait(p)
		}
		mbps = sim.BitsPerSec(int64(size)*int64(count), p.Now()-start)
	})
	r.k.Go("cli", func(p *sim.Proc) {
		scq, rcq := r.pa.NewCQ(), r.pa.NewCQ()
		vi := r.pa.NewVI(scq, rcq)
		r.pa.Connect(p, vi, "b", 1)
		reg := r.pa.RegisterMem(p, 64*1024)
		p.Sleep(sim.Millisecond)
		const window = 16
		inflight := 0
		for i := 0; i < count; i++ {
			for inflight >= window {
				scq.Wait(p)
				inflight--
			}
			vi.PostSend(p, &via.Desc{Region: reg, Len: size})
			inflight++
		}
	})
	r.k.RunAll()
	return mbps
}

// SocketsLatency measures one-way latency of a sockets transport by
// ping-pong between two nodes.
func SocketsLatency(kind core.Kind, size, iters int) sim.Time {
	k, fab := newSocketsPair(kind)
	l := fab.Endpoint("b").Listen(1)
	var oneWay sim.Time
	k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			c.RecvFull(p, buf)
			c.SendSize(p, size)
		}
		c.Close(p)
	})
	k.Go("cli", func(p *sim.Proc) {
		c, _ := fab.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			c.SendSize(p, size)
			c.RecvFull(p, buf)
		}
		oneWay = (p.Now() - start) / sim.Time(2*iters)
		c.Close(p)
	})
	k.RunAll()
	return oneWay
}

// SocketsBandwidth measures streaming throughput (Mbps) of a sockets
// transport for back-to-back messages of one size.
func SocketsBandwidth(kind core.Kind, size, count int) float64 {
	k, fab := newSocketsPair(kind)
	l := fab.Endpoint("b").Listen(1)
	var mbps float64
	k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64*1024)
		total := 0
		start := sim.Time(-1)
		for {
			n, err := c.Recv(p, buf)
			if start < 0 && n > 0 {
				start = p.Now()
			}
			total += n
			if err != nil {
				break
			}
		}
		mbps = sim.BitsPerSec(int64(total), p.Now()-start)
		c.Close(p)
	})
	k.Go("cli", func(p *sim.Proc) {
		c, _ := fab.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		for i := 0; i < count; i++ {
			c.SendSize(p, size)
		}
		c.Close(p)
	})
	k.RunAll()
	return mbps
}

func newSocketsPair(kind core.Kind) (*sim.Kernel, *core.Fabric) {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	return k, core.NewFabric(cl, kind, prof)
}

// fig4aSizes are the paper's latency micro-benchmark message sizes.
var fig4aSizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// fig4bSizes are the paper's bandwidth micro-benchmark message sizes.
var fig4bSizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Fig4aLatency reproduces Figure 4(a): one-way latency of VIA,
// SocketVIA and TCP across message sizes.
func Fig4aLatency(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 4(a): Micro-Benchmarks: Latency",
		XLabel: "msg_bytes",
		YLabel: "one-way latency (us)",
		X:      toF(fig4aSizes),
	}
	// One cell per (size, transport) point; each runs its own hermetic
	// testbed and writes only its own slot, so any worker count yields
	// this exact table.
	viaY := make([]float64, len(fig4aSizes))
	svY := make([]float64, len(fig4aSizes))
	tcpY := make([]float64, len(fig4aSizes))
	o.parMap(3*len(fig4aSizes), func(i int) {
		s := fig4aSizes[i/3]
		switch i % 3 {
		case 0:
			viaY[i/3] = VIALatency(s, o.MicroIters).Micros()
		case 1:
			svY[i/3] = SocketsLatency(core.KindSocketVIA, s, o.MicroIters).Micros()
		case 2:
			tcpY[i/3] = SocketsLatency(core.KindTCP, s, o.MicroIters).Micros()
		}
	})
	t.AddSeries("VIA_us", viaY)
	t.AddSeries("SocketVIA_us", svY)
	t.AddSeries("TCP_us", tcpY)
	return t
}

// Fig4bBandwidth reproduces Figure 4(b): streaming bandwidth of VIA,
// SocketVIA and TCP across message sizes.
func Fig4bBandwidth(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 4(b): Micro-Benchmarks: Bandwidth",
		XLabel: "msg_bytes",
		YLabel: "bandwidth (Mbps)",
		X:      toF(fig4bSizes),
	}
	viaY := make([]float64, len(fig4bSizes))
	svY := make([]float64, len(fig4bSizes))
	tcpY := make([]float64, len(fig4bSizes))
	o.parMap(3*len(fig4bSizes), func(i int) {
		s := fig4bSizes[i/3]
		switch i % 3 {
		case 0:
			viaY[i/3] = VIABandwidth(s, o.MicroMsgs)
		case 1:
			svY[i/3] = SocketsBandwidth(core.KindSocketVIA, s, o.MicroMsgs)
		case 2:
			tcpY[i/3] = SocketsBandwidth(core.KindTCP, s, o.MicroMsgs)
		}
	})
	t.AddSeries("VIA_Mbps", viaY)
	t.AddSeries("SocketVIA_Mbps", svY)
	t.AddSeries("TCP_Mbps", tcpY)
	return t
}

// MicroSummary reports the headline numbers the paper quotes in
// Section 5.1.
type MicroSummary struct {
	VIALatency       sim.Time
	SocketVIALatency sim.Time
	TCPLatency       sim.Time
	VIAPeak          float64
	SocketVIAPeak    float64
	TCPPeak          float64
}

// Micro measures the Section 5.1 headline numbers. The six
// measurements are independent worlds, so they run as six cells.
func Micro(o Options) MicroSummary {
	var m MicroSummary
	o.parMap(6, func(i int) {
		switch i {
		case 0:
			m.VIALatency = VIALatency(4, o.MicroIters)
		case 1:
			m.SocketVIALatency = SocketsLatency(core.KindSocketVIA, 4, o.MicroIters)
		case 2:
			m.TCPLatency = SocketsLatency(core.KindTCP, 4, o.MicroIters)
		case 3:
			m.VIAPeak = VIABandwidth(64*1024, o.MicroMsgs)
		case 4:
			m.SocketVIAPeak = SocketsBandwidth(core.KindSocketVIA, 64*1024, o.MicroMsgs)
		case 5:
			m.TCPPeak = SocketsBandwidth(core.KindTCP, 64*1024, o.MicroMsgs)
		}
	})
	return m
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
