package chaos

import "hpsockets/internal/datacutter"

// cost scores a scenario's size; Shrink only accepts strictly cheaper
// failing candidates, so it terminates.
func cost(s Scenario) int {
	c := s.UOWs*s.BuffersPerUOW + s.Copies*10 + s.InboxDepth + s.CreditWindow +
		s.BlockBytes/1024 + 25*(len(s.Plan.Links)+len(s.Plan.Partitions)+
		len(s.Plan.Crashes)+len(s.Plan.Slowdowns)+len(s.Plan.Conditions)+
		len(s.Plan.Restarts))
	if s.Shed != datacutter.Block {
		c += 5
	}
	if s.ExactlyOnce {
		c += 2
	}
	if s.CheckpointEvery > 0 {
		c += 2
	}
	if s.DeadlineBudget > 0 {
		c += 5
	}
	if s.Gap > 0 {
		c += 2
	}
	if s.ConsumerCost > 0 {
		c += 2
	}
	if s.SpikeEvery > 0 {
		c += 2
	}
	if s.RedialAttempts > 0 {
		c += 2
	}
	if s.Policy == datacutter.DemandDriven {
		c += 1
	}
	return c
}

// candidates proposes strictly smaller variants of s, in a fixed
// order: whole fault categories first (the biggest wins), then
// scalars. Every candidate is re-normalized; invalid ones are skipped
// by the caller.
func candidates(s Scenario) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, c.normalized()) }

	if len(s.Plan.Links) > 0 {
		c := s
		c.Plan.Links = nil
		add(c)
	}
	if len(s.Plan.Links) > 1 {
		c := s
		c.Plan.Links = s.Plan.Links[:1]
		add(c)
	}
	if len(s.Plan.Conditions) > 0 {
		c := s
		c.Plan.Conditions = nil
		add(c)
	}
	if len(s.Plan.Conditions) > 1 {
		c := s
		c.Plan.Conditions = s.Plan.Conditions[:1]
		add(c)
	}
	if len(s.Plan.Partitions) > 0 {
		c := s
		c.Plan.Partitions = nil
		add(c)
	}
	if len(s.Plan.Restarts) > 0 {
		// Drop the restarts alone: the crash stays, the node stays down,
		// and the static survivor rule takes over validity.
		c := s
		c.Plan.Restarts = nil
		add(c)
	}
	if len(s.Plan.Crashes) > 0 {
		// A crash-free plan cannot carry valid restarts, so drop both.
		c := s
		c.Plan.Crashes = nil
		c.Plan.Restarts = nil
		add(c)
	}
	if len(s.Plan.Slowdowns) > 0 {
		c := s
		c.Plan.Slowdowns = nil
		add(c)
	}
	if s.Copies > 1 {
		c := s
		c.Copies--
		add(c)
	}
	if s.UOWs > 1 {
		c := s
		c.UOWs = 1
		add(c)
	}
	if s.BuffersPerUOW > 1 {
		c := s
		c.BuffersPerUOW = s.BuffersPerUOW / 2
		add(c)
		c2 := s
		c2.BuffersPerUOW = 1
		add(c2)
	}
	if s.BlockBytes > 1024 {
		c := s
		c.BlockBytes = 1024
		add(c)
	}
	if s.CreditWindow > 0 {
		c := s
		c.CreditWindow = 0
		add(c)
	}
	if s.DeadlineBudget > 0 {
		c := s
		c.DeadlineBudget = 0
		add(c)
	}
	if s.Shed != datacutter.Block {
		c := s
		c.Shed = datacutter.Block
		add(c)
	}
	if s.Gap > 0 {
		c := s
		c.Gap = 0
		add(c)
	}
	if s.SpikeEvery > 0 {
		c := s
		c.SpikeEvery = 0
		add(c)
	}
	if s.ConsumerCost > 0 {
		c := s
		c.ConsumerCost = 0
		add(c)
	}
	if s.RedialAttempts > 0 {
		c := s
		c.RedialAttempts = 0
		add(c)
	}
	if len(s.Plan.Restarts) == 0 && (s.ExactlyOnce || s.CheckpointEvery > 0) {
		// Recovery leftovers from a dropped restart; with no restart they
		// are pure overhead.
		c := s
		c.ExactlyOnce = false
		c.CheckpointEvery = 0
		add(c)
	}
	if s.InboxDepth > 1 {
		c := s
		c.InboxDepth = 1
		add(c)
	}
	if s.Policy == datacutter.DemandDriven && !s.wireFaulty() {
		c := s
		c.Policy = datacutter.RoundRobin
		add(c)
	}
	return out
}

// Shrink reduces a failing scenario to a (locally) minimal failing
// reproducer by greedy delta debugging: it repeatedly applies the
// cheapest transformation that still fails, within a run budget
// (every candidate evaluation costs two runs via Check). It returns
// the reduced scenario and the number of runs spent. The input must
// already fail; otherwise it is returned unchanged.
func Shrink(s Scenario, budget int) (Scenario, int) {
	return ShrinkWith(s, budget, nil)
}

// ShrinkWith is Shrink with a caller-supplied failure predicate: a
// candidate is kept only while fails(candidate) stays true. The
// scenario DSL uses this to shrink against its declarative assertions
// as well as the five harness invariants; each predicate call is
// assumed to cost two runs against the budget. A nil predicate uses
// Check (the five invariants alone).
func ShrinkWith(s Scenario, budget int, failsFn func(Scenario) bool) (Scenario, int) {
	s = s.normalized()
	runs := 0
	fails := func(c Scenario) bool {
		runs += 2
		if failsFn != nil {
			return failsFn(c)
		}
		return !Check(c).OK()
	}
	if !fails(s) {
		return s, runs
	}
	improved := true
	for improved && runs < budget {
		improved = false
		for _, c := range candidates(s) {
			if runs >= budget {
				break
			}
			if !c.valid() || cost(c) >= cost(s) {
				continue
			}
			if fails(c) {
				s = c
				improved = true
				break
			}
		}
	}
	return s, runs
}
