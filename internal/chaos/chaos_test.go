package chaos

import (
	"reflect"
	"strings"
	"testing"

	"hpsockets/internal/datacutter"
)

// TestInvariantsHold sweeps generated scenarios — overload, faults,
// crashes, both transports — and requires every invariant to hold,
// including byte-identical replay (Check runs each seed twice).
func TestInvariantsHold(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		if r := Check(Generate(seed)); !r.OK() {
			t.Errorf("seed %d:\n%s", seed, r.Canonical())
		}
	}
}

// TestGenerateDeterministic: the scenario generator is a pure function
// of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 7, 42, 117} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: generate not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if !a.valid() {
			t.Errorf("seed %d: generated scenario invalid: %+v", seed, a)
		}
	}
}

// TestReplayByteIdentical: two runs of one scenario render the same
// canonical report (invariant 4 directly, not via Check).
func TestReplayByteIdentical(t *testing.T) {
	s := Generate(117) // heavy shedding under deadline pressure
	a, b := Run(s), Run(s)
	if a.Canonical() != b.Canonical() {
		t.Errorf("replay diverged:\n%s\n----\n%s", a.Canonical(), b.Canonical())
	}
	if a.Shed == 0 {
		t.Errorf("expected scenario 117 to shed under overload, got none:\n%s", a.Canonical())
	}
}

// TestDefectCaughtAndShrunk plants a bug in the harness's own shed
// accounting (every shed goes unrecorded) and requires the invariant
// checker to catch it and the shrinker to hand back a smaller
// still-failing reproducer.
func TestDefectCaughtAndShrunk(t *testing.T) {
	s := Generate(117)
	s.defect = 1 // drop every shed record
	r := Check(s)
	if r.OK() {
		t.Fatalf("defective accounting not caught:\n%s", r.Canonical())
	}
	found := false
	for _, v := range r.Violations {
		if strings.Contains(v, "accounting") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an accounting violation, got:\n%s", r.Canonical())
	}

	shrunk, runs := Shrink(s, 200)
	if runs > 200+2 {
		t.Errorf("shrink overran its budget: %d runs", runs)
	}
	if shrunk.defect != s.defect {
		t.Errorf("shrink lost the defect: %d -> %d", s.defect, shrunk.defect)
	}
	if cost(shrunk) >= cost(s) {
		t.Errorf("shrink did not reduce the scenario: cost %d -> %d", cost(s), cost(shrunk))
	}
	if rr := Check(shrunk); rr.OK() {
		t.Errorf("shrunk reproducer no longer fails:\n%s", rr.Canonical())
	}
}

// TestShrinkPassingScenario: a healthy scenario is returned unchanged.
func TestShrinkPassingScenario(t *testing.T) {
	s := Generate(3)
	shrunk, runs := Shrink(s, 100)
	if runs != 2 {
		t.Errorf("expected the initial check only (2 runs), got %d", runs)
	}
	if !reflect.DeepEqual(shrunk, s.normalized()) {
		t.Errorf("passing scenario was altered:\n%+v\n%+v", s.normalized(), shrunk)
	}
}

// TestWatchdogArms: scenarios never end anywhere near the watchdog
// horizon; a report that does signals masked livelock.
func TestWatchdogArms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := Run(Generate(seed))
		if r.End >= watchdogHorizon {
			t.Errorf("seed %d ran to the watchdog horizon:\n%s", seed, r.Canonical())
		}
	}
}

// TestRestartRecoveryMix: across a seed range the generator produces
// crash+restart scenarios, at least one of them restarts a copy that
// had actually crashed (observable as a positive mean-time-to-recover),
// and invariant 6 holds everywhere: the exactly-once ledger lets no
// buffer through twice however re-dispatch overlaps the rejoin.
func TestRestartRecoveryMix(t *testing.T) {
	withRestart, applied := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		s := Generate(seed)
		if len(s.Plan.Restarts) == 0 {
			continue
		}
		withRestart++
		if !s.ExactlyOnce || s.CheckpointEvery == 0 {
			t.Fatalf("seed %d: restart scenario without the recovery stack: %+v", seed, s)
		}
		r := Check(s)
		if !r.OK() {
			t.Errorf("seed %d:\n%s", seed, r.Canonical())
		}
		if r.Redelivered > 0 {
			t.Errorf("seed %d: %d redeliveries slipped past the ledger", seed, r.Redelivered)
		}
		if r.Restarts > 0 && r.MTTR > 0 {
			applied++
		}
	}
	if withRestart < 3 {
		t.Errorf("only %d restart scenarios in 60 seeds; restart generation is toothless", withRestart)
	}
	if applied == 0 {
		t.Error("no scenario restarted a crashed copy mid-run (every restart fired after quiesce)")
	}
}

// TestShedPolicyMix: across a seed range, the generator exercises every
// shed policy and both transports, and sheds actually happen somewhere
// (the sweep has teeth).
func TestShedPolicyMix(t *testing.T) {
	policies := map[datacutter.ShedPolicy]bool{}
	kinds := map[int]bool{}
	sheds := 0
	for seed := int64(0); seed < 40; seed++ {
		s := Generate(seed)
		policies[s.Shed] = true
		kinds[int(s.Kind)] = true
		r := Run(s)
		sheds += r.Shed
	}
	if len(policies) < 4 {
		t.Errorf("generator covered only %d shed policies", len(policies))
	}
	if len(kinds) < 2 {
		t.Errorf("generator covered only %d transports", len(kinds))
	}
	if sheds == 0 {
		t.Error("no scenario shed anything; overload generation is toothless")
	}
}
