// Package chaos is a seeded chaos harness for the overload-control
// and fault-recovery machinery: it deterministically generates
// combined fault + overload scenarios from a single seed, runs a
// producer/consumer filter group under them, and checks invariants
// that must hold whatever the scenario does —
//
//  1. accounting: every produced buffer is delivered, shed with a
//     cause marker, or excused by an explicit producer abort; nothing
//     goes silently missing;
//  2. liveness: the producer and every consumer copy on a non-crashed
//     node finish, or the group reports an error explaining why — no
//     virtual-time deadlock;
//  3. credit conservation: at quiesce every live connection of a
//     credit-armed stream is back at its full window (granted ==
//     returned; dead connections carry their in-flight credits away
//     and are excused);
//  4. replay: the same seed reproduces a byte-identical report;
//  5. telemetry agreement: the fault injector's drop count matches the
//     hpsmon fault counters, and frames out == frames in + dropped,
//     both per hpsmon and per netsim port counters;
//  6. exactly-once: when the scenario arms the delivery ledger (every
//     crash+restart scenario does), no buffer is ever delivered twice,
//     however failover re-dispatch overlaps the restarted copy's
//     rejoin, and a restarted node is not excused from liveness — its
//     copy must finish.
//
// A failing scenario is shrunk (see Shrink) to a minimal reproducer by
// greedy delta debugging over the scenario's fault lists and scalars.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/fault"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// Scenario is one deterministically generated chaos run: a workload
// shape, an overload-control configuration, and a fault plan. It is
// pure data; Run executes it hermetically.
type Scenario struct {
	Seed   int64
	Kind   core.Kind
	Copies int // transparent consumer copies
	UOWs   int
	// BuffersPerUOW buffers of BlockBytes each per unit of work.
	BuffersPerUOW int
	BlockBytes    int
	InboxDepth    int
	Policy        datacutter.Policy
	Shed          datacutter.ShedPolicy
	CreditWindow  int
	// DeadlineBudget, when non-zero, stamps every buffer with
	// produce-time + budget and arms deadline propagation.
	DeadlineBudget sim.Time
	OpTimeout      sim.Time
	RedialAttempts int
	// Gap paces the offered load between buffers; SpikeEvery > 0 makes
	// every SpikeEvery-th unit of work an unpaced burst.
	Gap        sim.Time
	SpikeEvery int
	// ConsumerCost is per-buffer processing at the consumer (overload
	// comes from here plus fault-plan slowdowns).
	ConsumerCost sim.Time
	// CheckpointEvery arms crash-restart recovery on the consumer
	// copies (required whenever the plan restarts a node; normalized
	// forces it, with redial, alongside ExactlyOnce).
	CheckpointEvery sim.Time
	// ExactlyOnce arms the per-stream delivery ledger; invariant 6
	// then demands zero redelivered buffers even across crash+restart.
	ExactlyOnce bool
	Plan        fault.Plan

	// defect, test-only, breaks the harness's own shed accounting:
	// every defect-th shed goes unrecorded, which invariant 1 must
	// catch. It survives shrinking so the reproducer still fails.
	defect int
}

// watchdogHorizon bounds a run in virtual time. Real scenarios finish
// in milliseconds; even a full kernel-TCP retry exhaustion tail is
// ~1.3s. A run still scheduling events at the horizon is livelocked.
const watchdogHorizon = 10 * sim.Second

// debugTrace, test-only, attaches a trace sink to Run's kernel.
var debugTrace func(*sim.Kernel) sim.TraceFunc

// wireFaulty reports whether the plan can break or starve connections.
// Pure-shaping conditions (latency, jitter, bandwidth, reordering) are
// not wire-faulty; lossy or rejecting ones are.
func (s Scenario) wireFaulty() bool {
	if len(s.Plan.Links) > 0 || len(s.Plan.Partitions) > 0 || len(s.Plan.Crashes) > 0 {
		return true
	}
	for _, lc := range s.Plan.Conditions {
		if lc.Profile.Lossy() {
			return true
		}
	}
	return false
}

// Normalized exposes the scenario normalization rules to the scenario
// DSL compiler, which must emit files that are already fixed points of
// them (otherwise serialized reproducers would drift on reparse).
func (s Scenario) Normalized() Scenario { return s.normalized() }

// Valid exposes the well-formedness check; the DSL compiler asserts it
// on every compiled scenario as a belt-and-braces guard behind its own
// position-annotated semantic validation.
func (s Scenario) Valid() bool { return s.valid() }

// normalized enforces the validity rules that make a scenario
// survivable by construction: wire faults require demand-driven
// failover with an armed op timeout, and node restarts require the
// full recovery stack — checkpointing on the consumers, redial so
// producers can rejoin, and the exactly-once ledger so rejoin
// redelivery stays invisible. It is a pure function so shrunk
// candidates re-normalize deterministically.
func (s Scenario) normalized() Scenario {
	if s.wireFaulty() {
		s.Policy = datacutter.DemandDriven
		if s.OpTimeout == 0 {
			s.OpTimeout = 5 * sim.Millisecond
		}
	}
	if len(s.Plan.Restarts) > 0 {
		if s.CheckpointEvery == 0 {
			s.CheckpointEvery = 1 * sim.Millisecond
		}
		if s.RedialAttempts == 0 {
			s.RedialAttempts = 4
		}
		s.ExactlyOnce = true
	}
	return s
}

// valid reports whether the scenario is well-formed (plan entries
// reference existing nodes, crashes leave a survivor).
func (s Scenario) valid() bool {
	if s.Copies < 1 || s.UOWs < 1 || s.BuffersPerUOW < 1 || s.BlockBytes < 1 || s.InboxDepth < 1 {
		return false
	}
	nodes := map[string]bool{"src": true}
	for i := 0; i < s.Copies; i++ {
		nodes[consName(i)] = true
	}
	if len(s.Plan.Restarts) == 0 {
		// Without restarts a crashed copy is down forever, so the
		// static count rule guarantees a survivor.
		if len(s.Plan.Crashes) >= s.Copies {
			return false
		}
	} else {
		// Restarts require the full recovery stack (the runtime refuses
		// checkpointing without redial, and a restarted copy without a
		// checkpoint can never rejoin — a guaranteed liveness flag).
		if s.CheckpointEvery <= 0 || s.RedialAttempts <= 0 {
			return false
		}
		for _, rs := range s.Plan.Restarts {
			if !nodes[rs.Node] || rs.Node == "src" {
				return false
			}
			covered := false
			for _, cr := range s.Plan.Crashes {
				if cr.Node == rs.Node && cr.At < rs.At {
					covered = true
				}
			}
			if !covered {
				return false
			}
		}
		// Down-count sweep: at every instant at least one consumer copy
		// must be up; a restart removes its node from the down set.
		type ev struct {
			at   sim.Time
			up   bool
			node string
		}
		evs := make([]ev, 0, len(s.Plan.Crashes)+len(s.Plan.Restarts))
		for _, c := range s.Plan.Crashes {
			evs = append(evs, ev{c.At, false, c.Node})
		}
		for _, rs := range s.Plan.Restarts {
			evs = append(evs, ev{rs.At, true, rs.Node})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		down := map[string]bool{}
		for _, e := range evs {
			if e.up {
				delete(down, e.node)
			} else {
				down[e.node] = true
			}
			if len(down) >= s.Copies {
				return false
			}
		}
	}
	for _, c := range s.Plan.Crashes {
		if !nodes[c.Node] || c.Node == "src" {
			return false
		}
	}
	for _, sl := range s.Plan.Slowdowns {
		if !nodes[sl.Node] {
			return false
		}
	}
	for _, pt := range s.Plan.Partitions {
		if !nodes[pt.A] || !nodes[pt.B] || pt.To <= pt.From {
			return false
		}
	}
	for _, lf := range s.Plan.Links {
		if (lf.Src != "" && !nodes[lf.Src]) || (lf.Dst != "" && !nodes[lf.Dst]) {
			return false
		}
	}
	for _, lc := range s.Plan.Conditions {
		if (lc.Src != "" && !nodes[lc.Src]) || (lc.Dst != "" && !nodes[lc.Dst]) {
			return false
		}
		if lc.To != 0 && lc.To <= lc.From {
			return false
		}
	}
	return true
}

func consName(i int) string { return fmt.Sprintf("cons%d", i) }

// Generate derives a scenario from a seed. All draws happen in a fixed
// order so the mapping seed -> scenario is stable.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{Seed: seed}
	if rng.Intn(2) == 0 {
		s.Kind = core.KindTCP
	} else {
		s.Kind = core.KindSocketVIA
	}
	s.Copies = 1 + rng.Intn(3)
	s.UOWs = 1 + rng.Intn(3)
	s.BuffersPerUOW = 4 + rng.Intn(29)
	s.BlockBytes = 1<<10 + rng.Intn(31<<10)
	s.InboxDepth = 1 + rng.Intn(4)
	if rng.Intn(2) == 1 {
		s.Policy = datacutter.DemandDriven
	}
	s.Shed = datacutter.ShedPolicy(rng.Intn(4))
	s.CreditWindow = rng.Intn(5)
	if budget := rng.Intn(4); budget > 0 && s.Shed != datacutter.Block {
		s.DeadlineBudget = sim.Time(budget) * 4 * sim.Millisecond
	}
	s.Gap = sim.Time(rng.Intn(4)) * 50 * sim.Microsecond
	if rng.Intn(3) == 0 {
		s.SpikeEvery = 2
	}
	s.ConsumerCost = sim.Time(rng.Intn(4)) * 25 * sim.Microsecond
	s.RedialAttempts = rng.Intn(2) * 4

	// Fault plan. Every draw happens unconditionally so later choices
	// do not shift when earlier ones are disabled.
	s.Plan.Seed = seed ^ 0x5eed
	slowCons := rng.Intn(3)
	slowFactor := 2.0 + float64(rng.Intn(6))
	slowAt := sim.Time(1+rng.Intn(4)) * sim.Millisecond
	dropCons := rng.Intn(3)
	dropProb := 0.002 + 0.01*rng.Float64()
	corruptProb := 0.002 + 0.008*rng.Float64()
	partCons := rng.Intn(3)
	partFrom := sim.Time(1+rng.Intn(5)) * sim.Millisecond
	partWidth := sim.Time(2+rng.Intn(10)) * sim.Millisecond
	crashCons := rng.Intn(3)
	crashAt := sim.Time(1+rng.Intn(3)) * sim.Millisecond
	wantSlow := rng.Intn(3) == 0
	wantDrop := rng.Intn(3) == 0
	wantCorrupt := rng.Intn(4) == 0
	wantPart := rng.Intn(4) == 0
	wantCrash := rng.Intn(4) == 0

	if wantSlow && slowCons < s.Copies {
		s.Plan.Slowdowns = append(s.Plan.Slowdowns, fault.NodeSlowdown{
			Node: consName(slowCons), At: slowAt, Factor: slowFactor})
	}
	if wantDrop && dropCons < s.Copies {
		s.Plan.Links = append(s.Plan.Links, fault.LinkFault{
			Src: "src", Dst: consName(dropCons), DropProb: dropProb})
	}
	if wantCorrupt && dropCons < s.Copies {
		s.Plan.Links = append(s.Plan.Links, fault.LinkFault{
			Src: "src", Dst: consName(dropCons), CorruptProb: corruptProb})
	}
	if wantPart && partCons < s.Copies {
		s.Plan.Partitions = append(s.Plan.Partitions, fault.Partition{
			A: "src", B: consName(partCons), From: partFrom, To: partFrom + partWidth})
	}
	if wantCrash && s.Copies >= 2 && crashCons < s.Copies {
		s.Plan.Crashes = append(s.Plan.Crashes, fault.NodeCrash{
			Node: consName(crashCons), At: crashAt})
	}

	// Crash-restart recovery draws. Appended after every legacy draw so
	// scenarios from pre-restart seeds are byte-identical; a restart can
	// only revive the crash drawn above, so it rides on wantCrash too.
	restartDelta := sim.Time(1+rng.Intn(4)) * sim.Millisecond
	ckptEvery := sim.Time(1+rng.Intn(3)) * 500 * sim.Microsecond
	wantRestart := rng.Intn(2) == 0
	if wantRestart && len(s.Plan.Crashes) > 0 {
		cr := s.Plan.Crashes[0]
		s.Plan.Restarts = append(s.Plan.Restarts, fault.NodeRestart{
			Node: cr.Node, At: cr.At + restartDelta})
		s.CheckpointEvery = ckptEvery
		s.ExactlyOnce = true
	}
	return s.normalized()
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario Scenario
	// Violations lists every invariant breach (empty = pass).
	Violations []string

	Produced    int
	Delivered   int // unique buffers delivered at least once
	Redelivered int // extra deliveries from failover re-dispatch
	Shed        int // unique buffers shed (with recorded cause)
	ShedByCause map[datacutter.ShedCause]int
	Unaccounted int
	Aborted     bool
	GroupErr    string
	Redials     uint64
	Redispatch  uint64
	// Duplicates counts redeliveries the exactly-once ledger suppressed;
	// Restarts the consumer-copy restart incarnations that ran; MTTR the
	// worst observed restart-to-first-redelivery gap. All are zero (and
	// omitted from Canonical) unless the plan restarts a node.
	Duplicates uint64
	Restarts   int
	MTTR       sim.Time
	End        sim.Time
	// Telemetry is the run's full hpsmon registry rendered as a
	// deterministic table. It is not part of Canonical (invariant 5
	// already cross-checks the load-bearing counters); scenario replay
	// checks compare it byte-for-byte across runs.
	Telemetry string
}

// OK reports whether every invariant held.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Canonical renders the report deterministically; Check compares two
// runs of the same seed byte-for-byte on it.
func (r Report) Canonical() string {
	var b strings.Builder
	s := r.Scenario
	fmt.Fprintf(&b, "seed=%d kind=%s copies=%d uows=%d bpu=%d block=%d inbox=%d policy=%s shed=%s credits=%d budget=%s optimeout=%s redial=%d gap=%s spike=%d cost=%s faults{links=%d parts=%d crashes=%d slows=%d}",
		s.Seed, s.Kind, s.Copies, s.UOWs, s.BuffersPerUOW, s.BlockBytes,
		s.InboxDepth, s.Policy, s.Shed, s.CreditWindow, s.DeadlineBudget,
		s.OpTimeout, s.RedialAttempts, s.Gap, s.SpikeEvery, s.ConsumerCost,
		len(s.Plan.Links), len(s.Plan.Partitions), len(s.Plan.Crashes), len(s.Plan.Slowdowns))
	if len(s.Plan.Conditions) > 0 {
		fmt.Fprintf(&b, " conds=%d", len(s.Plan.Conditions))
	}
	if len(s.Plan.Restarts) > 0 {
		fmt.Fprintf(&b, " restarts=%d ckpt=%s", len(s.Plan.Restarts), s.CheckpointEvery)
	}
	if s.defect > 0 {
		fmt.Fprintf(&b, " defect=%d", s.defect)
	}
	fmt.Fprintf(&b, "\n  produced=%d delivered=%d redelivered=%d shed=%d unaccounted=%d aborted=%v redials=%d redispatch=%d end=%s",
		r.Produced, r.Delivered, r.Redelivered, r.Shed, r.Unaccounted,
		r.Aborted, r.Redials, r.Redispatch, r.End)
	if len(s.Plan.Restarts) > 0 {
		fmt.Fprintf(&b, " copyrestarts=%d dups=%d mttr=%s", r.Restarts, r.Duplicates, r.MTTR)
	}
	causes := make([]int, 0, len(r.ShedByCause))
	for c := range r.ShedByCause {
		causes = append(causes, int(c))
	}
	sort.Ints(causes)
	for _, c := range causes {
		fmt.Fprintf(&b, " shed.%s=%d", datacutter.ShedCause(c), r.ShedByCause[datacutter.ShedCause(c)])
	}
	if r.GroupErr != "" {
		fmt.Fprintf(&b, "\n  err=%s", r.GroupErr)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  VIOLATION: %s", v)
	}
	return b.String()
}

// chaosFilter adapts plain funcs to the datacutter Filter interface.
type chaosFilter struct {
	process  func(*datacutter.Context) error
	finalize func(*datacutter.Context) error
}

func (f *chaosFilter) Init(*datacutter.Context) error { return nil }
func (f *chaosFilter) Process(ctx *datacutter.Context) error {
	return f.process(ctx)
}
func (f *chaosFilter) Finalize(ctx *datacutter.Context) error {
	if f.finalize != nil {
		return f.finalize(ctx)
	}
	return nil
}

// pace sleeps between offered buffers. Blocking goes through the
// explicit proc argument, per the sim discipline.
func pace(p *sim.Proc, d sim.Time) { p.Sleep(d) }

// Run executes one scenario hermetically and checks invariants 1, 2,
// 3 and 5 (Check adds the replay invariant 4).
func Run(s Scenario) Report {
	s = s.normalized()
	rep := Report{Scenario: s, ShedByCause: make(map[datacutter.ShedCause]int)}
	if !s.valid() {
		rep.Violations = append(rep.Violations, "invalid scenario")
		return rep
	}

	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	if debugTrace != nil {
		k.SetTrace(debugTrace(k))
	}
	coll := hpsmon.NewCollector(fmt.Sprintf("chaos-%d", s.Seed), hpsmon.Options{})
	coll.Attach(k)
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("src", cluster.DefaultConfig())
	for i := 0; i < s.Copies; i++ {
		cl.AddNode(consName(i), cluster.DefaultConfig())
	}
	inj := fault.Install(cl, s.Plan)
	fab := core.NewFabric(cl, s.Kind, prof)
	rt := datacutter.NewRuntime(cl, fab)

	// Accounting state. All hooks run on the single-threaded kernel in
	// deterministic order; no locking.
	produced := make(map[int64]bool)
	delivered := make(map[int64]int)
	shed := make(map[int64][]datacutter.ShedCause)
	var producedOrder []int64
	sheds := 0
	sourceDone := false
	sinkDone := make([]bool, s.Copies)

	tag := func(uow, i int) int64 { return int64(uow)<<20 | int64(i) }

	onShed := func(b *datacutter.Buffer, cause datacutter.ShedCause) {
		sheds++
		if s.defect > 0 && sheds%s.defect == 0 {
			return // deliberately broken accounting (test-only)
		}
		shed[b.Tag] = append(shed[b.Tag], cause)
		rep.ShedByCause[cause]++
	}
	onDeliver := func(b *datacutter.Buffer) { delivered[b.Tag]++ }

	source := func(int) datacutter.Filter {
		return &chaosFilter{
			process: func(ctx *datacutter.Context) error {
				out := ctx.Output("work")
				uow := ctx.UOW()
				spiking := s.SpikeEvery > 0 && uow%s.SpikeEvery == 0
				for i := 0; i < s.BuffersPerUOW; i++ {
					t := tag(uow, i)
					var dl sim.Time
					if s.DeadlineBudget > 0 {
						dl = ctx.Now() + s.DeadlineBudget
					}
					produced[t] = true
					producedOrder = append(producedOrder, t)
					b := &datacutter.Buffer{Size: s.BlockBytes, Tag: t, Deadline: dl}
					if err := out.Write(ctx.Proc(), b); err != nil {
						rep.Aborted = true
						return err
					}
					if s.Gap > 0 && !spiking {
						pace(ctx.Proc(), s.Gap)
					}
				}
				if err := out.EndOfWork(ctx.Proc()); err != nil {
					rep.Aborted = true
					return err
				}
				return nil
			},
			finalize: func(ctx *datacutter.Context) error {
				if ctx.UOW() == s.UOWs-1 {
					// Drain the stream before declaring done: every sent
					// buffer gets acknowledged or its connection breaks
					// while the writer can still reclaim it, so invariant 1
					// (accounting) and invariant 3 (credit conservation)
					// are checkable at quiesce.
					if err := ctx.Output("work").WaitQuiesce(ctx.Proc()); err != nil {
						rep.Aborted = true
						return err
					}
					sourceDone = true
				}
				return nil
			},
		}
	}
	sink := func(copy int) datacutter.Filter {
		return &chaosFilter{
			process: func(ctx *datacutter.Context) error {
				in := ctx.Input("work")
				for {
					_, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					if s.ConsumerCost > 0 {
						ctx.Compute(s.ConsumerCost)
					}
				}
			},
			finalize: func(ctx *datacutter.Context) error {
				if ctx.UOW() == s.UOWs-1 {
					sinkDone[copy] = true
				}
				return nil
			},
		}
	}

	cons := make([]string, s.Copies)
	for i := range cons {
		cons[i] = consName(i)
	}
	g := rt.Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "source", New: source, Placement: []string{"src"}, InboxDepth: s.InboxDepth},
			{Name: "sink", New: sink, Placement: cons, InboxDepth: s.InboxDepth,
				CheckpointEvery: s.CheckpointEvery},
		},
		Streams: []datacutter.StreamSpec{{
			Name: "work", From: "source", To: "sink",
			Policy:         s.Policy,
			ExactlyOnce:    s.ExactlyOnce,
			OpTimeout:      s.OpTimeout,
			CreditWindow:   s.CreditWindow,
			Deadlines:      s.DeadlineBudget > 0,
			Shed:           s.Shed,
			OnShed:         onShed,
			OnDeliver:      onDeliver,
			RedialAttempts: s.RedialAttempts,
			RedialSeed:     s.Seed ^ 0xd1a1,
		}},
	})
	g.Start(s.UOWs)
	rep.End = k.Run(watchdogHorizon)
	if live := k.Live(); live > 0 {
		// The run did not quiesce: something keeps scheduling events
		// (periodic re-arm masking a deadlock) or an unbounded retry
		// loop survived. RunAll would spin forever here.
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"liveness: watchdog expired at %v with %d live events", watchdogHorizon, live))
	}

	w := g.WriterOf("source", 0, "work")
	rep.Redials = w.Redials()
	rep.Redispatch = w.Redispatched()
	if err := g.Err(); err != nil {
		rep.GroupErr = err.Error()
	}

	// A crashed node is excused from liveness and credit conservation
	// only when it stays down: a restart revives it, and its copy is
	// then held to the same bar as everyone else.
	downForever := make(map[string]bool)
	for _, c := range s.Plan.Crashes {
		downForever[c.Node] = true
	}
	for _, rs := range s.Plan.Restarts {
		delete(downForever, rs.Node)
	}

	// Invariant 1: accounting.
	rep.Produced = len(produced)
	for _, t := range producedOrder {
		d := delivered[t]
		sh := len(shed[t])
		if d > 0 {
			rep.Delivered++
			rep.Redelivered += d - 1
		}
		if sh > 0 {
			rep.Shed++
		}
		if d == 0 && sh == 0 {
			rep.Unaccounted++
			if !rep.Aborted {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"accounting: buffer tag=%d produced but neither delivered nor shed", t))
			}
		}
	}

	// Invariant 2: liveness.
	if !sourceDone && rep.GroupErr == "" {
		rep.Violations = append(rep.Violations,
			"liveness: source neither completed nor failed (virtual-time deadlock)")
	}
	for i := range sinkDone {
		if !sinkDone[i] && !downForever[consName(i)] && rep.GroupErr == "" {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"liveness: sink copy %d on live node did not complete", i))
		}
	}

	// Invariant 3: credit conservation at quiesce.
	if s.CreditWindow > 0 && sourceDone {
		for j := 0; j < w.Targets(); j++ {
			credits, dead := w.CreditState(j)
			if dead || downForever[consName(j)] {
				continue
			}
			if credits != s.CreditWindow {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"credits: target %d holds %d/%d at quiesce", j, credits, s.CreditWindow))
			}
		}
	}

	// Invariant 6: exactly-once delivery across crash+restart.
	for i := 0; i < s.Copies; i++ {
		rep.Duplicates += g.ReaderOf("sink", i, "work").Duplicates()
		rep.Restarts += g.RestartsOf("sink", i)
		restartedAt, recoveredAt := g.RecoveryOf("sink", i)
		if recoveredAt > restartedAt {
			if ttr := recoveredAt - restartedAt; ttr > rep.MTTR {
				rep.MTTR = ttr
			}
		}
	}
	if s.ExactlyOnce && rep.Redelivered > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"exactly-once: %d buffers redelivered despite the ledger", rep.Redelivered))
	}

	// Invariant 5: telemetry agreement.
	reg := coll.Registry()
	cval := func(comp, name string) int64 { return reg.Counter(comp, name).Value() }
	faultDrops := cval("fault", "drop.crash") + cval("fault", "drop.partition") +
		cval("fault", "drop.link") + cval("fault", "drop.reject")
	if faultDrops != int64(inj.Drops()) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"telemetry: fault counters %d != injector drops %d", faultDrops, inj.Drops()))
	}
	if cval("fault", "corrupt.link") != int64(inj.Corrupts()) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"telemetry: fault corrupt counter %d != injector corrupts %d",
			cval("fault", "corrupt.link"), inj.Corrupts()))
	}
	out, in := cval("netsim", "frames.out"), cval("netsim", "frames.in")
	droppedC := cval("netsim", "frames.dropped")
	if out != in+droppedC {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"telemetry: frames.out %d != frames.in %d + dropped %d", out, in, droppedC))
	}
	var sent, recv, dropped uint64
	for _, n := range cl.Nodes() {
		p := net.LookupPort(n.Name())
		if p == nil {
			continue
		}
		sent += p.Sent()
		recv += p.Received()
		dropped += p.Dropped()
	}
	if sent != recv+dropped {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"telemetry: port sent %d != received %d + dropped %d", sent, recv, dropped))
	}
	if int64(sent) != out || int64(recv) != in || int64(dropped) != droppedC {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"telemetry: port counters (%d/%d/%d) disagree with hpsmon (%d/%d/%d)",
			sent, recv, dropped, out, in, droppedC))
	}
	rep.Telemetry = reg.RenderString()
	return rep
}

// Check runs the scenario twice and adds the replay invariant: both
// runs must render byte-identical canonical reports.
func Check(s Scenario) Report {
	r1 := Run(s)
	r2 := Run(s)
	if c1, c2 := r1.Canonical(), r2.Canonical(); c1 != c2 {
		r1.Violations = append(r1.Violations,
			"replay: two runs of the same seed diverged:\n--- run 1:\n"+c1+"\n--- run 2:\n"+c2)
	}
	return r1
}
