package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Stddev < 1.41 || s.Stddev > 1.42 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("summary of empty = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P95 != 7 || s.Stddev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 = %v, want 5", got)
	}
	if got := Percentile(xs, 0); got != 0 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("P100 = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean([2 4]) != 3")
	}
}

func TestTableRenderAlignsColumns(t *testing.T) {
	tab := &Table{
		Title:  "Figure X",
		XLabel: "size",
		X:      []float64{1, 10, 100},
	}
	tab.AddSeries("tcp", []float64{1.5, 2.5, 3.5})
	tab.AddSeries("via", []float64{0.5, 1.0})
	out := tab.Render()
	if !strings.Contains(out, "Figure X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "tcp") || !strings.Contains(out, "via") {
		t.Fatalf("missing headers:\n%s", out)
	}
	// The short series is padded with "-" for missing points.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing padding marker:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+1+3 { // title, header, rule, 3 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableNaNRendersDash(t *testing.T) {
	tab := &Table{XLabel: "x", X: []float64{1, 2}}
	tab.AddSeries("s", []float64{math.NaN(), 5})
	out := tab.Render()
	if !strings.Contains(out, "-") || !strings.Contains(out, "5.00") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.Count == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(clean, pa) <= Percentile(clean, pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{XLabel: "x", X: []float64{1, 2}}
	tab.AddSeries("a", []float64{1.5, math.NaN()})
	tab.AddSeries("b", []float64{2.5, 3.5})
	got := tab.CSV()
	want := "x,a,b\n1,1.5000,2.5000\n2,,3.5000\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestSummaryP99SmallN pins the linear-interpolation rank convention
// at small N: for 5 samples the P99 rank is 0.99*(5-1) = 3.96, so the
// value interpolates between the 4th and 5th order statistics.
func TestSummaryP99SmallN(t *testing.T) {
	s := Summarize([]float64{5, 3, 1, 4, 2})
	want := 4*(1-0.96) + 5*0.96 // = 4.96
	if math.Abs(s.P99-want) > 1e-12 {
		t.Fatalf("P99 = %v, want %v", s.P99, want)
	}
	if s.P99 < s.P95 {
		t.Fatalf("P99 %v below P95 %v", s.P99, s.P95)
	}
	if one := Summarize([]float64{7}); one.P99 != 7 {
		t.Fatalf("single-sample P99 = %v, want 7", one.P99)
	}
}
