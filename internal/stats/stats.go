// Package stats provides the small statistics and table-rendering
// toolkit the experiment harnesses use to report figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
	Stddev float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending
// sorted slice using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Series is one plotted line of a figure.
type Series struct {
	Label string
	// Y[i] corresponds to the table's X[i]; NaN marks a missing point
	// (e.g. "TCP drops out").
	Y []float64
}

// Table is a figure rendered as aligned text: one X column and one
// column per series, matching the paper's plots.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	XFmt   string // e.g. "%.2f"; defaults to %g
	YFmt   string
	Series []Series
}

// AddSeries appends a series, padding or truncating to len(X).
func (t *Table) AddSeries(label string, ys []float64) {
	padded := make([]float64, len(t.X))
	for i := range padded {
		if i < len(ys) {
			padded[i] = ys[i]
		} else {
			padded[i] = math.NaN()
		}
	}
	t.Series = append(t.Series, Series{Label: label, Y: padded})
}

// CSV renders the table as comma-separated values for external
// plotting tools; missing points are empty fields.
func (t *Table) CSV() string {
	xfmt := t.XFmt
	if xfmt == "" {
		xfmt = "%g"
	}
	yfmt := t.YFmt
	if yfmt == "" {
		yfmt = "%.4f"
	}
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, xfmt, x)
		for _, s := range t.Series {
			b.WriteByte(',')
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				fmt.Fprintf(&b, yfmt, s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats the table.
func (t *Table) Render() string {
	xfmt := t.XFmt
	if xfmt == "" {
		xfmt = "%g"
	}
	yfmt := t.YFmt
	if yfmt == "" {
		yfmt = "%.2f"
	}
	headers := []string{t.XLabel}
	for _, s := range t.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for i, x := range t.X {
		row := []string{fmt.Sprintf(xfmt, x)}
		for _, s := range t.Series {
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				row = append(row, fmt.Sprintf(yfmt, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", t.YLabel)
	}
	for r, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for c := range row {
				if c > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[c]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
