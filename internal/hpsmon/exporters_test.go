package hpsmon

import (
	"strings"
	"testing"

	"hpsockets/internal/sim"
)

// identicalEndRun records two spans with the exact same [0, 5] virtual
// interval on two processes. Begin order (and so span ids) is b/x
// then a/x — the reverse of the alphabetical order — which makes any
// hidden re-sort by time or name visible.
func identicalEndRun(col *Collector) {
	k := sim.NewKernel()
	col.Attach(k)
	k.Go("w1", func(p *sim.Proc) {
		sc := Begin(p, "b", "x", "")
		p.Sleep(5)
		sc.End()
	})
	k.Go("w2", func(p *sim.Proc) {
		sc := Begin(p, "a", "x", "")
		p.Sleep(5)
		sc.End()
	})
	k.RunAll()
}

// Spans ending at the same virtual instant tie on inclusive time; the
// pinned flame order breaks the tie by path ascending, and two
// identical runs render byte-identical summaries.
func TestFlameIdenticalEndTimes(t *testing.T) {
	render := func() string {
		col := NewCollector("cell", Options{Spans: true})
		identicalEndRun(col)
		var sb strings.Builder
		if err := col.FlameSummary(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	ia, ib := strings.Index(first, "a/x"), strings.Index(first, "b/x")
	if ia < 0 || ib < 0 {
		t.Fatalf("missing paths in summary:\n%s", first)
	}
	if ia > ib {
		t.Fatalf("equal-total tie not broken by path ascending (a/x after b/x):\n%s", first)
	}
	if second := render(); second != first {
		t.Fatalf("flame summary not byte-stable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// The Chrome export keeps equal-time spans in span-id (begin) order —
// the recorded order, not a re-sort — and is byte-identical across
// identical runs.
func TestChromeIdenticalEndTimes(t *testing.T) {
	export := func() string {
		col := NewCollector("cell", Options{Spans: true})
		identicalEndRun(col)
		var sb strings.Builder
		if err := col.WriteChromeTrace(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := export()
	ib := strings.Index(first, `"cat":"b"`)
	ia := strings.Index(first, `"cat":"a"`)
	if ia < 0 || ib < 0 {
		t.Fatalf("missing span events in export:\n%s", first)
	}
	if ib > ia {
		t.Fatalf("span id 1 (cat b) emitted after span id 2 (cat a); equal-time spans must keep id order:\n%s", first)
	}
	if !strings.Contains(first, `"span":1,"parent":0`) || !strings.Contains(first, `"span":2,"parent":0`) {
		t.Fatalf("span ids not recorded in begin order:\n%s", first)
	}
	if second := export(); second != first {
		t.Fatalf("chrome export not byte-stable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
