package hpsmon

import (
	"strings"
	"testing"

	"hpsockets/internal/sim"
)

// run executes fn as a single simulation process on a fresh kernel
// with col attached, and drains the kernel.
func run(col *Collector, fn func(p *sim.Proc)) {
	k := sim.NewKernel()
	col.Attach(k)
	k.Go("worker", fn)
	k.RunAll()
}

func TestHelpersNoMonitorAreInert(t *testing.T) {
	k := sim.NewKernel()
	if Enabled(k) {
		t.Fatal("Enabled with no monitor")
	}
	k.Go("p", func(p *sim.Proc) {
		sc := Begin(p, "c", "n", "")
		if sc.Active() || sc.ID() != 0 {
			t.Errorf("Begin without monitor returned active scope %+v", sc)
		}
		sc.End() // must not panic
		Count(k, "c", "n", 1)
		GaugeSet(k, "c", "g", 2)
		Observe(k, "c", "h", 3)
		Instant(p, "c", "i", "")
		InstantK(k, "c", "i", "")
		FlowSend(p, "s", 0, 0)
		FlowRecv(p, "s", 0, 0)
	})
	k.RunAll()
}

func TestSpanNestingAndParents(t *testing.T) {
	col := NewCollector("cell", Options{Spans: true})
	run(col, func(p *sim.Proc) {
		outer := Begin(p, "a", "outer", "d")
		p.Sleep(10)
		inner := Begin(p, "b", "inner", "")
		p.Sleep(5)
		inner.End()
		p.Sleep(1)
		outer.End()
		if p.MonSpan() != 0 {
			t.Errorf("proc span not restored: %d", p.MonSpan())
		}
	})
	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	o, i := spans[0], spans[1]
	if o.Name != "outer" || o.Parent != 0 || o.Start != 0 || o.End != 16 {
		t.Fatalf("outer span wrong: %+v", o)
	}
	if i.Name != "inner" || i.Parent != o.ID || i.Start != 10 || i.End != 15 {
		t.Fatalf("inner span wrong: %+v", i)
	}
	if o.Proc != i.Proc || o.ProcName != "worker" {
		t.Fatalf("span proc identity wrong: %+v %+v", o, i)
	}
}

func TestSpansDisabledStillCounts(t *testing.T) {
	col := NewCollector("cell", Options{})
	run(col, func(p *sim.Proc) {
		sc := Begin(p, "a", "s", "")
		if sc.Active() {
			t.Error("span active with Spans disabled")
		}
		sc.End()
		Count(p.Kernel(), "a", "n", 2)
		Instant(p, "a", "i", "")
	})
	if len(col.Spans()) != 0 {
		t.Fatalf("spans recorded while disabled: %d", len(col.Spans()))
	}
	var b strings.Builder
	if err := col.Registry().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "2") ||
		!strings.Contains(out, "i") {
		t.Fatalf("counters missing from render:\n%s", out)
	}
}

func TestFlowCorrelationObservesLatency(t *testing.T) {
	col := NewCollector("cell", Options{Spans: true})
	k := sim.NewKernel()
	col.Attach(k)
	done := sim.NewSignal(k)
	k.Go("producer", func(p *sim.Proc) {
		sc := Begin(p, "dc", "send", "")
		FlowSend(p, "st", 3, 7)
		sc.End()
		done.Fire(nil)
	})
	k.Go("consumer", func(p *sim.Proc) {
		p.Wait(done)
		p.Sleep(25 * sim.Microsecond)
		sc := Begin(p, "dc", "read", "")
		FlowRecv(p, "st", 3, 7)
		sc.End()
	})
	k.RunAll()
	if len(col.flows) != 1 {
		t.Fatalf("recorded %d flows, want 1", len(col.flows))
	}
	h := col.Registry().Histogram("datacutter", "block-latency")
	s := h.Summary()
	if s.Count != 1 || s.Max != 25 {
		t.Fatalf("block-latency summary %+v, want one 25us sample", s)
	}
	// An unmatched receive is silently ignored.
	col.flowRecv(99, "st", 3, 7, 1)
	if s := col.Registry().Histogram("datacutter", "block-latency").Summary(); s.Count != 1 {
		t.Fatalf("unmatched flowRecv observed a sample: %+v", s)
	}
}

func TestRenderAndCSVDeterministicSorted(t *testing.T) {
	build := func() *Collector {
		col := NewCollector("cell", Options{})
		run(col, func(p *sim.Proc) {
			k := p.Kernel()
			Count(k, "zeta", "z", 1)
			Count(k, "alpha", "b", 2)
			Count(k, "alpha", "a", 3)
			GaugeSet(k, "alpha", "g", 42)
			Observe(k, "mid", "h", 1000)
			Observe(k, "mid", "h", 3000)
		})
		return col
	}
	var b1, b2, c1 strings.Builder
	one, two := build(), build()
	if err := one.Registry().Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := two.Registry().Render(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("renders differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Components and names in lexicographic order.
	out := b1.String()
	ia, ib, iz := strings.Index(out, "alpha"), strings.Index(out, "mid"), strings.Index(out, "zeta")
	if !(ia < ib && ib < iz) {
		t.Fatalf("components unsorted:\n%s", out)
	}
	if strings.Index(out, " a ") > strings.Index(out, " b ") {
		t.Fatalf("metric names unsorted:\n%s", out)
	}
	if err := one.Registry().CSV(&c1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c1.String(), "alpha,a,counter,") {
		t.Fatalf("CSV missing counter row:\n%s", c1.String())
	}
}

func TestChromeTraceDeterministicAndWellFormed(t *testing.T) {
	build := func() *Collector {
		col := NewCollector("cell", Options{Spans: true})
		run(col, func(p *sim.Proc) {
			outer := Begin(p, "a", "outer", "det\"ail") // quote must be escaped
			p.Sleep(2)
			Instant(p, "a", "tick", "")
			inner := Begin(p, "b", "inner", "")
			p.Sleep(1)
			inner.End()
			outer.End()
		})
		return col
	}
	var b1, b2 strings.Builder
	if err := build().WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	out := b1.String()
	if out != b2.String() {
		t.Fatal("chrome traces differ between identical runs")
	}
	for _, want := range []string{
		`"traceEvents":[`,
		`"ph":"M"`, `"process_name"`, `"thread_name"`,
		`"ph":"X"`, `"name":"outer"`, `"name":"inner"`,
		`"ph":"i"`, `"name":"tick"`,
		`"det\"ail"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

func TestOpenSpanClosesAtLastTime(t *testing.T) {
	col := NewCollector("cell", Options{Spans: true})
	run(col, func(p *sim.Proc) {
		Begin(p, "a", "stuck", "")
		p.Sleep(30)
		Count(p.Kernel(), "a", "n", 1) // advances the last-seen time
	})
	var b strings.Builder
	if err := col.FlameSummary(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "a/stuck") {
		t.Fatalf("flame missing open span:\n%s", b.String())
	}
	sp := col.Spans()[0]
	if sp.End != -1 {
		t.Fatalf("span unexpectedly closed: %+v", sp)
	}
}

func TestFlamePathsAggregate(t *testing.T) {
	col := NewCollector("cell", Options{Spans: true})
	run(col, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			outer := Begin(p, "a", "o", "")
			p.Sleep(10)
			inner := Begin(p, "b", "i", "")
			p.Sleep(5)
			inner.End()
			outer.End()
		}
	})
	var b strings.Builder
	if err := col.FlameSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a/o;b/i") {
		t.Fatalf("flame missing nested path:\n%s", out)
	}
	// Three repetitions of each frame, self = total - child time.
	if !strings.Contains(out, "3") {
		t.Fatalf("flame missing counts:\n%s", out)
	}
}

func TestSetAdoptFirstWinsAndSortedRender(t *testing.T) {
	s := NewSet()
	for _, name := range []string{"pipe/b", "pipe/a", "pipe/b"} {
		col := NewCollector(name, Options{})
		run(col, func(p *sim.Proc) { Count(p.Kernel(), "c", "n", 1) })
		s.Adopt(col)
	}
	if s.Len() != 2 {
		t.Fatalf("set holds %d cells, want 2 (duplicate adopted)", s.Len())
	}
	cells := s.Cells()
	if cells[0].Name() != "pipe/a" || cells[1].Name() != "pipe/b" {
		t.Fatalf("cells unsorted: %s, %s", cells[0].Name(), cells[1].Name())
	}
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Index(out, "== cell pipe/a") > strings.Index(out, "== cell pipe/b") {
		t.Fatalf("render order wrong:\n%s", out)
	}
	var c strings.Builder
	if err := s.CSV(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.String(), "cell,component,metric,type,") {
		t.Fatalf("CSV header missing:\n%s", c.String())
	}
	if !strings.Contains(c.String(), "pipe/a,c,n,counter,") {
		t.Fatalf("CSV rows missing cell prefix:\n%s", c.String())
	}
}

func TestHistogramPercentilesFromRawSamples(t *testing.T) {
	col := NewCollector("cell", Options{})
	run(col, func(p *sim.Proc) {
		for i := 1; i <= 100; i++ {
			Observe(p.Kernel(), "c", "h", sim.Time(i)*sim.Microsecond)
		}
	})
	s := col.Registry().Histogram("c", "h").Summary()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	// Samples are recorded in microseconds.
	if s.P50 < 50 || s.P50 > 51 {
		t.Fatalf("P50 = %v us, want ~50.5", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("P99 = %v us, want ~99", s.P99)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %v us, want 100", s.Max)
	}
}
