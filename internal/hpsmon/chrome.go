package hpsmon

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChromeTrace writes the collector's spans, instants and causal
// flows as Chrome trace-event JSON (the format chrome://tracing and
// Perfetto load). Virtual nanoseconds map to trace microseconds, so a
// simulated microsecond reads as one microsecond in the viewer.
//
// The writer is hand-rolled rather than encoding/json so field order
// and float formatting are fixed: the export is byte-identical across
// runs and worker counts.
//
// Emission order is pinned to record order, never re-sorted by time:
// thread metadata by ascending tid, then spans by span id (begin
// order), then instants and flow arrows in record order. Spans that
// begin or end at the same virtual instant therefore keep their id
// order — the viewer sorts by ts itself, and re-sorting here would
// make equal-time events ambiguous. TestChromeIdenticalEndTimes pins
// this byte-for-byte.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			ew.printf(",\n")
		}
		first = false
		ew.printf(format, args...)
	}

	// Process and thread metadata: one pid per collector, one tid per
	// simulation process that carried a span or instant.
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":%s}}`,
		quote(c.name))
	threads := map[uint64]string{}
	for _, s := range c.spans {
		threads[s.Proc] = s.ProcName
	}
	for _, in := range c.insts {
		threads[in.Proc] = in.ProcName
	}
	tids := make([]uint64, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid, quote(threads[tid]))
	}

	// Complete ("X") events, one per span, in begin order. Spans still
	// open when the run stopped close at the last observed time.
	for _, s := range c.spans {
		end := s.End
		if end < 0 {
			end = c.last
		}
		emit(`{"ph":"X","pid":1,"tid":%d,"cat":%s,"name":%s,"ts":%s,"dur":%s,"args":{"detail":%s,"span":%d,"parent":%d}}`,
			s.Proc, quote(s.Component), quote(s.Name),
			micros(s.Start), micros(end-s.Start), quote(s.Detail), s.ID, s.Parent)
	}

	// Instant ("i") events.
	for _, in := range c.insts {
		emit(`{"ph":"i","pid":1,"tid":%d,"s":"t","cat":%s,"name":%s,"ts":%s,"args":{"detail":%s}}`,
			in.Proc, quote(in.Component), quote(in.Name), micros(in.At), quote(in.Detail))
	}

	// Flow arrows ("s"/"f") binding producer sends to consumer reads.
	// The start event anchors inside the sending span, the finish event
	// inside the receiving one; enclosing-slice binding keeps Perfetto
	// drawing the arrow between the two spans.
	for i, f := range c.flows {
		from := c.spans[f.From-1]
		to := c.spans[f.To-1]
		fromEnd := from.End
		if fromEnd < 0 {
			fromEnd = c.last
		}
		emit(`{"ph":"s","pid":1,"tid":%d,"cat":"flow","name":"block","id":%d,"ts":%s}`,
			from.Proc, i+1, micros(from.Start))
		emit(`{"ph":"f","pid":1,"tid":%d,"cat":"flow","name":"block","id":%d,"ts":%s,"bp":"e"}`,
			to.Proc, i+1, micros(f.At))
	}

	ew.printf("\n]}\n")
	return ew.err
}

// micros renders virtual time as trace microseconds with fixed
// precision.
func micros(t interface{ Micros() float64 }) string {
	return strconv.FormatFloat(t.Micros(), 'f', 3, 64)
}

// quote JSON-escapes a string. strconv.Quote escapes exactly the
// characters JSON needs for the ASCII component/proc names used here.
func quote(s string) string { return strconv.Quote(s) }

// errWriter folds the first write error through a printf sequence.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
