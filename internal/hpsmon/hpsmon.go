// Package hpsmon is the telemetry layer of the simulated stack: a
// per-kernel Collector gathering typed metrics (counters, gauges,
// virtual-time histograms) and causal spans (begin/end pairs with
// parent links) from instrumented components, with deterministic
// renderings — a sorted metrics table/CSV, a Chrome trace-event JSON
// loadable in chrome://tracing or Perfetto, and a text flame summary.
//
// Everything runs on virtual time, so two runs of the same experiment
// produce byte-identical telemetry, and per-cell collectors merged in
// canonical order make the output independent of the worker count.
// With no collector attached every instrumentation hook is one nil
// check, exactly like Kernel.Trace, so the zero-telemetry hot path
// stays allocation-free and headline figures stay byte-identical.
package hpsmon

import (
	"hpsockets/internal/sim"
)

// Options configures a Collector.
type Options struct {
	// Spans enables causal span collection. Metrics are always
	// collected; spans cost memory proportional to event count, so
	// grid-wide metrics runs leave them off and cmd/trace turns them
	// on for a single cell.
	Spans bool
}

// Span is one recorded causal span: a named interval of virtual time
// on one simulation process, linked to the span that caused it.
type Span struct {
	ID     sim.SpanID
	Parent sim.SpanID
	// Proc is the spawn-order id of the process the span ran on (the
	// exported thread id); kernel-context spans use proc 0's slot with
	// ProcName "kernel".
	Proc      uint64
	ProcName  string
	Component string
	Name      string
	Detail    string
	Start     sim.Time
	// End is the close time, or -1 while the span is open (a process
	// parked forever when the run stopped leaves its span open).
	End sim.Time
}

// instant is a zero-duration recorded event.
type instant struct {
	At        sim.Time
	Proc      uint64
	ProcName  string
	Parent    sim.SpanID
	Component string
	Name      string
	Detail    string
}

// flowKey correlates a producer-side stream send with its
// consumer-side delivery across a simulated connection: the tuple is
// unique per in-flight buffer (stream name, unit of work, block tag).
type flowKey struct {
	stream string
	uow    int
	tag    int64
}

// flowOrigin remembers the sending span and time under a flowKey.
type flowOrigin struct {
	span sim.SpanID
	at   sim.Time
}

// Flow is one recorded causal edge between spans on different
// processes: the consumer span To observed at time At data sent from
// the producer span From. It is exported as a Chrome trace flow arrow
// and consumed by internal/profile as the cross-wire edges of the
// critical-path DAG.
type Flow struct {
	From, To sim.SpanID
	At       sim.Time
}

// Collector implements sim.Monitor for one kernel. It is not
// goroutine-safe: a collector belongs to exactly one simulation
// kernel, which serializes all activity; parallel experiment cells
// each use their own collector and merge through a Set.
type Collector struct {
	name    string
	opts    Options
	reg     *Registry
	spans   []Span
	flows   []Flow
	origins map[flowKey]flowOrigin
	insts   []instant
	// last is the latest virtual time any event carried, used to close
	// still-open spans at export.
	last sim.Time
}

// NewCollector returns a collector named for its experiment cell.
func NewCollector(name string, opts Options) *Collector {
	return &Collector{
		name:    name,
		opts:    opts,
		reg:     NewRegistry(),
		origins: make(map[flowKey]flowOrigin),
	}
}

// Name reports the collector's cell name.
func (c *Collector) Name() string { return c.name }

// Registry exposes the collector's metrics.
func (c *Collector) Registry() *Registry { return c.reg }

// Spans returns the recorded spans in begin order. Span ids are
// sequential from 1 in that order, so Spans()[i].ID == i+1.
func (c *Collector) Spans() []Span { return c.spans }

// Flows returns the recorded cross-process causal edges in record
// (delivery-time) order.
func (c *Collector) Flows() []Flow { return c.flows }

// LastTime reports the latest virtual time any recorded event
// carried; exports use it to close still-open spans.
func (c *Collector) LastTime() sim.Time { return c.last }

// Attach installs the collector as the kernel's monitor.
func (c *Collector) Attach(k *sim.Kernel) { k.SetMonitor(c) }

func (c *Collector) touch(at sim.Time) {
	if at > c.last {
		c.last = at
	}
}

// Count implements sim.Monitor.
func (c *Collector) Count(at sim.Time, componentName, name string, delta int64) {
	c.touch(at)
	c.reg.Counter(componentName, name).v += delta
}

// Gauge implements sim.Monitor.
func (c *Collector) Gauge(at sim.Time, componentName, name string, value int64) {
	c.touch(at)
	g := c.reg.Gauge(componentName, name)
	g.v, g.set = value, true
}

// Observe implements sim.Monitor.
func (c *Collector) Observe(at sim.Time, componentName, name string, v sim.Time) {
	c.touch(at)
	c.reg.Histogram(componentName, name).Observe(v)
}

func procIdentity(p *sim.Proc) (uint64, string) {
	if p == nil {
		return 0, "kernel"
	}
	// Spawn ids start at 0; shift by one so the kernel keeps slot 0.
	return p.ID() + 1, p.Name()
}

// SpanBegin implements sim.Monitor. Span ids are assigned sequentially
// from 1 in begin order, which is deterministic under the kernel's
// total event order.
func (c *Collector) SpanBegin(at sim.Time, p *sim.Proc, componentName, name, detail string, parent sim.SpanID) sim.SpanID {
	if !c.opts.Spans {
		return 0
	}
	c.touch(at)
	tid, pname := procIdentity(p)
	c.spans = append(c.spans, Span{
		ID:        sim.SpanID(len(c.spans) + 1),
		Parent:    parent,
		Proc:      tid,
		ProcName:  pname,
		Component: componentName,
		Name:      name,
		Detail:    detail,
		Start:     at,
		End:       -1,
	})
	return sim.SpanID(len(c.spans))
}

// SpanEnd implements sim.Monitor.
func (c *Collector) SpanEnd(at sim.Time, id sim.SpanID) {
	if id == 0 || int(id) > len(c.spans) {
		return
	}
	c.touch(at)
	c.spans[id-1].End = at
}

// Instant implements sim.Monitor.
func (c *Collector) Instant(at sim.Time, p *sim.Proc, componentName, name, detail string) {
	c.touch(at)
	c.reg.Counter(componentName, name).v++
	if !c.opts.Spans {
		return
	}
	tid, pname := procIdentity(p)
	var parent sim.SpanID
	if p != nil {
		parent = p.MonSpan()
	}
	c.insts = append(c.insts, instant{
		At: at, Proc: tid, ProcName: pname, Parent: parent,
		Component: componentName, Name: name, Detail: detail,
	})
}

// flowSend registers the producer side of one in-flight buffer.
func (c *Collector) flowSend(at sim.Time, stream string, uow int, tag int64, span sim.SpanID) {
	c.touch(at)
	c.origins[flowKey{stream, uow, tag}] = flowOrigin{span: span, at: at}
}

// flowRecv resolves the consumer side: it observes the send-to-deliver
// latency into the stream's histogram and, when both sides have spans,
// records a causal edge for the Chrome trace.
func (c *Collector) flowRecv(at sim.Time, stream string, uow int, tag int64, span sim.SpanID) {
	key := flowKey{stream, uow, tag}
	o, ok := c.origins[key]
	if !ok {
		return
	}
	delete(c.origins, key)
	c.touch(at)
	c.reg.Histogram("datacutter", "block-latency").Observe(at - o.at)
	if o.span != 0 && span != 0 {
		c.flows = append(c.flows, Flow{From: o.span, To: span, At: at})
	}
}
