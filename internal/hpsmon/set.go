package hpsmon

import (
	"fmt"
	"io"
	"sync"
)

// Set collects the per-cell collectors of one experiment run. Cells
// execute concurrently on worker threads, each with its own collector
// on its own kernel; Adopt is the only cross-thread touch point and is
// mutex-guarded. Rendering walks the cells in lexicographic name
// order, so the merged output is byte-identical at any worker count.
type Set struct {
	mu    sync.Mutex
	cells map[string]*Collector
}

// NewSet returns an empty telemetry set.
func NewSet() *Set { return &Set{cells: make(map[string]*Collector)} }

// Adopt contributes a finished cell collector under its name. Cells
// are deterministic, so if the same cell is ever computed twice (a
// memo race) the copies are identical and the first one wins.
func (s *Set) Adopt(c *Collector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cells[c.Name()]; ok {
		return
	}
	s.cells[c.Name()] = c
}

// Len reports the number of adopted cells.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Cells returns the adopted collectors in canonical (name) order.
func (s *Set) Cells() []*Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Collector, 0, len(s.cells))
	for _, name := range sortedKeys(s.cells) {
		out = append(out, s.cells[name])
	}
	return out
}

// Render writes every cell's metrics table under a cell header, in
// canonical order.
func (s *Set) Render(w io.Writer) error {
	for _, c := range s.Cells() {
		if _, err := fmt.Fprintf(w, "== cell %s\n", c.Name()); err != nil {
			return err
		}
		if err := c.Registry().Render(w); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes every cell's metrics as CSV rows prefixed with the cell
// name, in canonical order, under one header row.
func (s *Set) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"cell,component,metric,type,count,value,mean_us,p50_us,p95_us,p99_us,max_us"); err != nil {
		return err
	}
	for _, c := range s.Cells() {
		pw := &prefixWriter{w: w, prefix: c.Name() + ","}
		if err := c.Registry().CSV(pw); err != nil {
			return err
		}
	}
	return nil
}

// prefixWriter prepends a prefix to every line written through it.
// Registry.CSV writes whole lines per call, each ending in \n.
type prefixWriter struct {
	w      io.Writer
	prefix string
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	if _, err := io.WriteString(p.w, p.prefix); err != nil {
		return 0, err
	}
	return p.w.Write(b)
}
