package hpsmon

import "hpsockets/internal/sim"

// The package-level helpers below are the only API instrumented
// components use: each one nil-checks the kernel's monitor first, so
// with telemetry off a hook costs one pointer load and allocates
// nothing. Component and metric/span names must be compile-time
// constants (enforced by the hpslint litname analyzer); dynamic
// context goes in detail arguments, which callers building with fmt
// must guard behind Enabled.

// Enabled reports whether a monitor is attached; call sites that need
// to build a dynamic detail string guard the construction behind it.
func Enabled(k *sim.Kernel) bool { return k.Monitor() != nil }

// Count adds delta to a component counter.
func Count(k *sim.Kernel, component, name string, delta int64) {
	if m := k.Monitor(); m != nil {
		m.Count(k.Now(), component, name, delta)
	}
}

// GaugeSet records the latest value of a component gauge.
func GaugeSet(k *sim.Kernel, component, name string, value int64) {
	if m := k.Monitor(); m != nil {
		m.Gauge(k.Now(), component, name, value)
	}
}

// Observe adds one virtual-time sample to a component histogram.
func Observe(k *sim.Kernel, component, name string, v sim.Time) {
	if m := k.Monitor(); m != nil {
		m.Observe(k.Now(), component, name, v)
	}
}

// Instant records a zero-duration event on a process (and counts it).
func Instant(p *sim.Proc, component, name, detail string) {
	k := p.Kernel()
	if m := k.Monitor(); m != nil {
		m.Instant(k.Now(), p, component, name, detail)
	}
}

// InstantK records a zero-duration event from kernel/event context,
// where no process is running (e.g. a retransmission timer firing).
func InstantK(k *sim.Kernel, component, name, detail string) {
	if m := k.Monitor(); m != nil {
		m.Instant(k.Now(), nil, component, name, detail)
	}
}

// Scope is an open span on a process. The zero value is inert: End and
// Active are no-ops, so call sites need no separate enabled check.
type Scope struct {
	m    sim.Monitor
	p    *sim.Proc
	id   sim.SpanID
	prev sim.SpanID
}

// Begin opens a span on p's current span as parent and makes it the
// process's current span until End. With no monitor attached (or span
// collection disabled) it returns an inert Scope and allocates
// nothing.
func Begin(p *sim.Proc, component, name, detail string) Scope {
	k := p.Kernel()
	m := k.Monitor()
	if m == nil {
		return Scope{}
	}
	prev := p.MonSpan()
	id := m.SpanBegin(k.Now(), p, component, name, detail, prev)
	if id == 0 {
		return Scope{}
	}
	p.SetMonSpan(id)
	return Scope{m: m, p: p, id: id, prev: prev}
}

// End closes the span and restores the process's previous span. Safe
// on the zero Scope.
func (s Scope) End() {
	if s.m == nil {
		return
	}
	s.m.SpanEnd(s.p.Kernel().Now(), s.id)
	s.p.SetMonSpan(s.prev)
}

// Active reports whether the scope holds an open span.
func (s Scope) Active() bool { return s.m != nil }

// ID reports the span id (zero for an inert scope).
func (s Scope) ID() sim.SpanID { return s.id }

// FlowSend registers the producer side of one in-flight stream buffer
// under its (stream, uow, tag) key, carrying the current span and send
// time to the consumer side.
func FlowSend(p *sim.Proc, stream string, uow int, tag int64) {
	k := p.Kernel()
	if c, ok := k.Monitor().(*Collector); ok {
		c.flowSend(k.Now(), stream, uow, tag, p.MonSpan())
	}
}

// FlowRecv resolves the consumer side of an in-flight buffer: the
// collector observes the send-to-deliver latency and links the spans
// causally in the exported trace.
func FlowRecv(p *sim.Proc, stream string, uow int, tag int64) {
	k := p.Kernel()
	if c, ok := k.Monitor().(*Collector); ok {
		c.flowRecv(k.Now(), stream, uow, tag, p.MonSpan())
	}
}
