package hpsmon

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
)

// Counter is a monotonically increasing per-component count.
type Counter struct {
	v int64
}

// Value reports the accumulated count.
func (c *Counter) Value() int64 { return c.v }

// Gauge holds the most recently recorded value of a quantity.
type Gauge struct {
	v   int64
	set bool
}

// Value reports the last recorded value and whether one was recorded.
func (g *Gauge) Value() (int64, bool) { return g.v, g.set }

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds samples in [2^(i-1), 2^i) nanoseconds of virtual time (bucket
// 0 holds sub-nanosecond and zero samples). 48 buckets cover up to
// ~1.6 simulated days, far beyond any experiment horizon.
const histBuckets = 48

// Histogram accumulates virtual-time samples into fixed power-of-two
// buckets and retains the raw samples (in microseconds) for exact
// percentile computation through internal/stats.
type Histogram struct {
	buckets [histBuckets]uint64
	samples []float64 // microseconds
	sum     sim.Time
	max     sim.Time
}

// Observe adds one sample.
func (h *Histogram) Observe(v sim.Time) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := v; x > 1 && b < histBuckets-1; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.samples = append(h.samples, v.Micros())
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Buckets returns the fixed bucket counts; bucket i covers
// [2^(i-1), 2^i) ns.
func (h *Histogram) Buckets() []uint64 { return h.buckets[:] }

// Summary computes the sample statistics (count, mean, p50/p95/p99,
// max) via internal/stats.
func (h *Histogram) Summary() stats.Summary { return stats.Summarize(h.samples) }

// component is one named component's metric namespace.
type component struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Registry holds the typed metrics of one collector, grouped by
// component. Metric names must be unique within their component and
// type; the hpslint litname analyzer additionally requires them to be
// compile-time constants so registries stay collision-free and the
// rendered output deterministic.
type Registry struct {
	components map[string]*component
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{components: make(map[string]*component)}
}

func (r *Registry) comp(name string) *component {
	c := r.components[name]
	if c == nil {
		c = &component{
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.components[name] = c
	}
	return c
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(componentName, name string) *Counter {
	c := r.comp(componentName)
	ctr := c.counters[name]
	if ctr == nil {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(componentName, name string) *Gauge {
	c := r.comp(componentName)
	g := c.gauges[name]
	if g == nil {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(componentName, name string) *Histogram {
	c := r.comp(componentName)
	h := c.hists[name]
	if h == nil {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// Empty reports whether nothing has been recorded.
func (r *Registry) Empty() bool { return len(r.components) == 0 }

// sortedKeys returns the map's keys in lexicographic order; every
// rendering path iterates through it so output is deterministic.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render writes the registry as an aligned, deterministically sorted
// table: counters and gauges as single values, histograms as
// count/mean/p50/p95/p99/max in microseconds.
func (r *Registry) Render(w io.Writer) error {
	for _, cname := range sortedKeys(r.components) {
		c := r.components[cname]
		for _, name := range sortedKeys(c.counters) {
			if _, err := fmt.Fprintf(w, "%-12s %-28s %12d\n", cname, name, c.counters[name].v); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(c.gauges) {
			v, _ := c.gauges[name].Value()
			if _, err := fmt.Fprintf(w, "%-12s %-28s %12d (gauge)\n", cname, name, v); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(c.hists) {
			h := c.hists[name]
			s := h.Summary()
			if _, err := fmt.Fprintf(w,
				"%-12s %-28s %12d  mean=%.3fus p50=%.3fus p95=%.3fus p99=%.3fus max=%.3fus\n",
				cname, name, s.Count, s.Mean, s.P50, s.P95, s.P99, h.max.Micros()); err != nil {
				return err
			}
		}
	}
	return nil
}

// CSV writes the registry as comma-separated rows:
// component,metric,type,count,value,mean_us,p50_us,p95_us,p99_us,max_us.
func (r *Registry) CSV(w io.Writer) error {
	for _, cname := range sortedKeys(r.components) {
		c := r.components[cname]
		for _, name := range sortedKeys(c.counters) {
			if _, err := fmt.Fprintf(w, "%s,%s,counter,,%d,,,,,\n", cname, name, c.counters[name].v); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(c.gauges) {
			v, _ := c.gauges[name].Value()
			if _, err := fmt.Fprintf(w, "%s,%s,gauge,,%d,,,,,\n", cname, name, v); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(c.hists) {
			h := c.hists[name]
			s := h.Summary()
			if _, err := fmt.Fprintf(w, "%s,%s,histogram,%d,,%.3f,%.3f,%.3f,%.3f,%.3f\n",
				cname, name, s.Count, s.Mean, s.P50, s.P95, s.P99, h.max.Micros()); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderString returns Render output as a string.
func (r *Registry) RenderString() string {
	var b strings.Builder
	_ = r.Render(&b)
	return b.String()
}
