package hpsmon

import (
	"fmt"
	"io"
	"sort"

	"hpsockets/internal/sim"
)

// frame aggregates all spans sharing one root-to-leaf name path.
type frame struct {
	path  string
	count int
	total sim.Time // inclusive virtual time
	self  sim.Time // exclusive: total minus child span time
}

// FlameSummary aggregates the recorded spans by causal path
// (parent chain of component/name labels) and writes one line per
// path — count, inclusive and exclusive virtual time — sorted by
// inclusive time descending, path ascending on ties. It is the text
// sibling of the Chrome export: the same tree, collapsed.
//
// The sort key (total, path) is a total order — paths are unique map
// keys — so spans that end at the same virtual instant can never swap
// lines between runs or worker counts; TestFlameIdenticalEndTimes
// pins the tie order byte-for-byte.
func (c *Collector) FlameSummary(w io.Writer) error {
	if len(c.spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	// Resolve each span's duration, treating still-open spans as
	// ending at the last observed time.
	dur := make([]sim.Time, len(c.spans))
	for i, s := range c.spans {
		end := s.End
		if end < 0 {
			end = c.last
		}
		dur[i] = end - s.Start
	}
	// Subtract child time from parents for exclusive time.
	self := make([]sim.Time, len(c.spans))
	copy(self, dur)
	for _, s := range c.spans {
		if s.Parent != 0 {
			self[s.Parent-1] -= dur[s.ID-1]
		}
	}
	// Build each span's path by walking parents (paths are short: the
	// instrumentation nests a handful of layers).
	paths := make([]string, len(c.spans))
	var pathOf func(id sim.SpanID) string
	pathOf = func(id sim.SpanID) string {
		if paths[id-1] != "" {
			return paths[id-1]
		}
		s := c.spans[id-1]
		p := s.Component + "/" + s.Name
		if s.Parent != 0 {
			p = pathOf(s.Parent) + ";" + p
		}
		paths[id-1] = p
		return p
	}
	frames := map[string]*frame{}
	for i, s := range c.spans {
		p := pathOf(s.ID)
		f := frames[p]
		if f == nil {
			f = &frame{path: p}
			frames[p] = f
		}
		f.count++
		f.total += dur[i]
		f.self += self[i]
	}
	out := make([]*frame, 0, len(frames))
	for _, f := range frames {
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].path < out[j].path
	})
	if _, err := fmt.Fprintf(w, "%12s %12s %8s  %s\n", "total", "self", "count", "path"); err != nil {
		return err
	}
	for _, f := range out {
		if _, err := fmt.Fprintf(w, "%12v %12v %8d  %s\n", f.total, f.self, f.count, f.path); err != nil {
			return err
		}
	}
	return nil
}
