package netsim

import (
	"testing"

	"hpsockets/internal/sim"
)

// Additional wire-model behaviours: protocol coexistence on one port
// and fairness of the shared uplink.

func TestStacksShareOnePhysicalPort(t *testing.T) {
	// VIA and IP traffic from one host contend for the same uplink,
	// as native VIA and LANE traffic shared the cLAN adapter.
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var arrivals []sim.Time
	b.Handle(ProtoVIA, func(f *Frame) { arrivals = append(arrivals, k.Now()) })
	b.Handle(ProtoIP, func(f *Frame) { arrivals = append(arrivals, k.Now()) })
	k.Go("via-tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 1000})
	})
	k.Go("ip-tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoIP, Size: 1000})
	})
	k.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// The second frame serialized behind the first on the uplink.
	if arrivals[1]-arrivals[0] != 1000 {
		t.Fatalf("spacing = %v, want 1000ns (uplink serialization)", arrivals[1]-arrivals[0])
	}
}

func TestManyToOneSustainsDownlinkRate(t *testing.T) {
	// Four senders converge on one receiver: the aggregate arrival
	// rate is the downlink rate, not four times it.
	k := sim.NewKernel()
	n := testNet(k)
	dst := n.Attach("dst")
	var last sim.Time
	count := 0
	dst.Handle(ProtoVIA, func(f *Frame) { last = k.Now(); count++ })
	const perSender, size = 25, 1000
	for i := 0; i < 4; i++ {
		src := string(rune('a' + i))
		n.Attach(src)
		k.Go("tx-"+src, func(p *sim.Proc) {
			for j := 0; j < perSender; j++ {
				n.Transmit(p, &Frame{Src: src, Dst: "dst", Proto: ProtoVIA, Size: size})
			}
		})
	}
	k.RunAll()
	if count != 4*perSender {
		t.Fatalf("count = %d", count)
	}
	// 100 frames of 1000 ns serialization each: the last cannot land
	// before ~100 us of downlink occupancy.
	if last < 100*sim.Microsecond {
		t.Fatalf("last arrival at %v: downlink rate exceeded", last)
	}
}

func TestWireLatencyIndependentOfLoadWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var gap sim.Time
	b.Handle(ProtoVIA, func(f *Frame) { gap = k.Now() })
	k.GoAfter(1000, "tx", func(p *sim.Proc) {
		start := p.Now()
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 100})
		_ = start
	})
	k.RunAll()
	// 100ns serialization + 100ns wire latency after the 1000ns start.
	if gap != 1200 {
		t.Fatalf("arrival = %v, want 1200", gap)
	}
}

func TestZeroSizeFramePanics(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	n.Attach("b")
	k.Go("tx", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("zero-size frame did not panic")
			}
		}()
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 0})
	})
	k.RunAll()
}

func TestConfigAccessor(t *testing.T) {
	k := sim.NewKernel()
	cfg := CLANConfig()
	n := New(k, cfg)
	if n.Config() != cfg {
		t.Fatal("Config accessor mismatch")
	}
	if cfg.LinkMbps != 1250 {
		t.Fatalf("cLAN link = %v Mbps", cfg.LinkMbps)
	}
}
