package netsim

import (
	"testing"

	"hpsockets/internal/sim"
)

// condModel is a scripted ConditionedFaultModel: one verdict per
// transmitted frame, in order.
type condModel struct {
	verdicts []Verdict
	next     int
}

func (m *condModel) Judge(now sim.Time, f *Frame) Disposition {
	return m.JudgeConditioned(now, f).Disposition
}

func (m *condModel) JudgeConditioned(now sim.Time, f *Frame) Verdict {
	if m.next >= len(m.verdicts) {
		return Verdict{}
	}
	v := m.verdicts[m.next]
	m.next++
	return v
}

func TestConditionDelayShiftsArrival(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	n.SetFaultModel(&condModel{verdicts: []Verdict{
		{Cond: Condition{Delay: 400}},
	}})
	var deliveredAt sim.Time
	b.Handle(ProtoVIA, func(f *Frame) { deliveredAt = k.Now() })
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 1000})
	})
	k.RunAll()
	// 1000 ns uplink + 100 ns wire + 400 ns conditioned delay.
	if deliveredAt != 1500 {
		t.Fatalf("delivered at %v, want 1500", deliveredAt)
	}
}

func TestConditionBandwidthThrottleWidensDownlink(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	n.Attach("b")
	c := n.Attach("c")
	// Both frames throttled to 800 Mbps = 10 ns/byte on the downlink.
	n.SetFaultModel(&condModel{verdicts: []Verdict{
		{Cond: Condition{RateMbps: 800}},
		{Cond: Condition{RateMbps: 800}},
	}})
	var arrivals []sim.Time
	c.Handle(ProtoVIA, func(f *Frame) { arrivals = append(arrivals, k.Now()) })
	k.Go("txa", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "c", Proto: ProtoVIA, Size: 1000})
	})
	k.Go("txb", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "b", Dst: "c", Proto: ProtoVIA, Size: 1000})
	})
	k.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// The head reaches the downlink at 100 (uplink cut-through) and the
	// throttled tail clears 10000 ns later; the second frame converges
	// and queues a full throttled serialization behind the first.
	if arrivals[0] != 10100 || arrivals[1] != 20100 {
		t.Fatalf("arrivals = %v, want [10100 20100]", arrivals)
	}
}

func TestConditionReorderOvertakesFIFO(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	// Frame 1 is delayed but FIFO; frame 2 is marked reordered with no
	// delay, so it bypasses the downlink horizon and overtakes.
	n.SetFaultModel(&condModel{verdicts: []Verdict{
		{Cond: Condition{Delay: 5000}},
		{Cond: Condition{Reorder: true}},
	}})
	var order []int
	b.Handle(ProtoVIA, func(f *Frame) { order = append(order, f.Size) })
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 1})
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 2})
	})
	k.RunAll()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("delivery order (by size) = %v, want [2 1]", order)
	}
}

func TestRejectCountsAsDroppedAndRejected(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	a := n.Attach("a")
	b := n.Attach("b")
	n.SetFaultModel(&condModel{verdicts: []Verdict{
		{Disposition: Reject},
		{},
	}})
	delivered := 0
	b.Handle(ProtoVIA, func(f *Frame) { delivered++ })
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 100})
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 100})
	})
	k.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1", delivered)
	}
	if a.Sent() != 2 {
		t.Fatalf("sent %d, want 2", a.Sent())
	}
	if b.Dropped() != 1 || b.Rejected() != 1 {
		t.Fatalf("dropped=%d rejected=%d, want 1/1", b.Dropped(), b.Rejected())
	}
	// Conservation: sent == received + dropped, rejects included.
	if a.Sent() != b.Received()+b.Dropped() {
		t.Fatalf("conservation broken: sent=%d received=%d dropped=%d",
			a.Sent(), b.Received(), b.Dropped())
	}
}

// TestPlainFaultModelUnchanged: a model implementing only Judge keeps
// the pre-conditioning delivery math.
func TestPlainFaultModelUnchanged(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	n.SetFaultModel(plainModel{})
	var deliveredAt sim.Time
	b.Handle(ProtoVIA, func(f *Frame) { deliveredAt = k.Now() })
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 1000})
	})
	k.RunAll()
	if deliveredAt != 1100 {
		t.Fatalf("delivered at %v, want 1100", deliveredAt)
	}
}

type plainModel struct{}

func (plainModel) Judge(now sim.Time, f *Frame) Disposition { return Deliver }
