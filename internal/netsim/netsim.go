// Package netsim models the physical interconnect of the testbed: a
// central switch with a full-duplex point-to-point link per host, as
// in the GigaNet cLAN 5300 cluster the paper measured.
//
// Both protocol stacks (the VIA emulation and the kernel TCP path)
// share one physical port per host, so they contend for the same wire,
// exactly as LANE/IP traffic and native VIA traffic shared the cLAN
// adapter.
//
// Model: a frame sent from A to B first serializes onto A's uplink
// (a sim.Resource, so concurrent senders on one host queue FIFO), then
// crosses the switch after a fixed cut-through latency, then
// serializes on B's downlink. Downlink serialization is computed with
// event arithmetic (a per-port horizon) rather than a process: it is
// exact for FIFO links and keeps the per-frame cost low.
package netsim

import (
	"fmt"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// Proto identifies which stack a frame belongs to, for demux at the
// receiving port.
type Proto uint8

const (
	// ProtoVIA frames carry native VIA packets.
	ProtoVIA Proto = iota
	// ProtoIP frames carry IP (kernel TCP) segments.
	ProtoIP
	numProtos
)

// Frame is one unit of wire transmission. Size is the on-wire size in
// bytes including all headers; Payload is stack-specific.
//
// Stacks on the hot path obtain frames from Network.NewFrame and the
// network recycles them after delivery; handlers must therefore not
// retain a frame past their return (the payload is theirs to keep).
// Frame literals still work — they are simply never pooled.
type Frame struct {
	Src, Dst string
	Proto    Proto
	Size     int
	Payload  any
	// Corrupt marks a frame damaged in flight by an installed
	// FaultModel. The frame is still delivered (and counted); the
	// receiving stack decides what a failed checksum means for it.
	Corrupt bool

	pooled  bool
	dstPort *Port  // delivery target of the in-flight transmission
	deliver func() // reusable delivery thunk, created once per Frame
}

// fire delivers the frame at its destination port. It runs in event
// context at the computed arrival time.
func (f *Frame) fire() { f.dstPort.deliverFrame(f) }

// Disposition is a FaultModel's verdict on one frame.
type Disposition int

const (
	// Deliver passes the frame through untouched.
	Deliver Disposition = iota
	// Drop loses the frame on the wire; it is never delivered.
	Drop
	// Corrupt delivers the frame with its Corrupt flag set.
	Corrupt
	// Reject loses the frame like Drop but models an active refusal
	// (aerolab's reject-vs-drop distinction: a RST-style bounce rather
	// than silent loss). Rejected frames count in both the rejected and
	// dropped counters so frame conservation still holds.
	Reject
)

// FaultModel decides the fate of each transmitted frame. It is
// consulted once per frame, in deterministic simulation order, so a
// model drawing from a seeded *rand.Rand reproduces bit-identically.
// No model installed (the default) means a flawless fabric.
type FaultModel interface {
	Judge(now sim.Time, f *Frame) Disposition
}

// Condition shapes the delivery of a frame that stays on the wire:
// netem-style added latency (with any jitter already sampled by the
// model), a bandwidth throttle below the link rate, and FIFO-bypassing
// reordering. The zero Condition delivers exactly as an unconditioned
// fabric would.
type Condition struct {
	// Delay is extra one-way latency added on top of the configured
	// wire latency for this frame.
	Delay sim.Time
	// RateMbps, when positive and below the link rate, narrows the
	// downlink serialization of this frame to the given bandwidth.
	RateMbps float64
	// Reorder delivers the frame without consulting or advancing the
	// destination's FIFO downlink horizon, so it may overtake frames
	// sent earlier (netem's reordering semantics).
	Reorder bool
}

// Verdict is a ConditionedFaultModel's combined ruling on one frame:
// its fate plus, for surviving frames, the link conditions shaping its
// delivery.
type Verdict struct {
	Disposition Disposition
	Cond        Condition
}

// ConditionedFaultModel extends FaultModel with per-frame link
// conditioning. When the installed model implements it, Transmit uses
// JudgeConditioned instead of Judge; models whose conditions are all
// zero behave byte-identically to the plain interface.
type ConditionedFaultModel interface {
	FaultModel
	JudgeConditioned(now sim.Time, f *Frame) Verdict
}

// Handler consumes frames arriving at a port for one protocol. It runs
// in event context and must not block; stacks typically enqueue into a
// sim.Queue and return.
type Handler func(*Frame)

// Port is one host's attachment to the switch.
type Port struct {
	net  *Network
	name string

	uplink *sim.Serializer // egress serialization, shared across stacks
	// downHorizon is the time the downlink becomes free; arrival times
	// are computed against it (event-arithmetic serialization).
	downHorizon sim.Time

	handlers [numProtos]Handler

	// counters
	sent      uint64
	received  uint64
	dropped   uint64
	rejected  uint64
	corrupted uint64
	txBytes   int64
	rxBytes   int64
}

// Name reports the port name.
func (p *Port) Name() string { return p.name }

// Sent reports the number of frames transmitted.
func (p *Port) Sent() uint64 { return p.sent }

// Received reports the number of frames delivered.
func (p *Port) Received() uint64 { return p.received }

// Dropped reports the number of frames addressed to this port that the
// installed FaultModel lost on the wire. For every port pair,
// Sent() at sources equals Received()+Dropped() summed at sinks.
func (p *Port) Dropped() uint64 { return p.dropped }

// Rejected reports how many of the dropped frames were active
// rejections rather than silent losses (Rejected() <= Dropped()).
func (p *Port) Rejected() uint64 { return p.rejected }

// Corrupted reports the number of frames delivered to this port with
// their Corrupt flag set.
func (p *Port) Corrupted() uint64 { return p.corrupted }

// TxBytes reports total bytes transmitted.
func (p *Port) TxBytes() int64 { return p.txBytes }

// RxBytes reports total bytes delivered.
func (p *Port) RxBytes() int64 { return p.rxBytes }

// Handle registers the frame handler for one protocol. Registering
// twice replaces the handler.
func (p *Port) Handle(proto Proto, h Handler) { p.handlers[proto] = h }

// Config describes the interconnect.
type Config struct {
	// LinkMbps is the signalling rate of each host link (1250 for the
	// 1.25 Gbps cLAN links of the testbed).
	LinkMbps float64
	// WireLatency is the fixed propagation plus cut-through switch
	// latency for one traversal.
	WireLatency sim.Time
}

// CLANConfig returns the interconnect of the paper's testbed.
func CLANConfig() Config {
	return Config{LinkMbps: 1250, WireLatency: 500 * sim.Nanosecond}
}

// Network is the switch plus all attached ports.
type Network struct {
	k     *sim.Kernel
	cfg   Config
	port  map[string]*Port
	fault FaultModel
	// condFault is fault when it also implements conditioning, cached
	// at SetFaultModel time to keep the per-frame path assertion-free.
	condFault ConditionedFaultModel

	// framePool recycles delivered frames. One pool per network keeps
	// it single-kernel (the simulation is single-threaded per kernel,
	// so no locking) and lets frames flow between stacks freely.
	framePool []*Frame
}

// NewFrame returns a frame from the pool (or a fresh one) initialized
// with the given envelope. The network reclaims it after delivery, or
// immediately if the fault model drops it.
func (n *Network) NewFrame(src, dst string, proto Proto, size int, payload any) *Frame {
	var f *Frame
	if ln := len(n.framePool); ln > 0 {
		f = n.framePool[ln-1]
		n.framePool[ln-1] = nil
		n.framePool = n.framePool[:ln-1]
	} else {
		f = &Frame{pooled: true}
	}
	f.Src, f.Dst, f.Proto, f.Size, f.Payload = src, dst, proto, size, payload
	f.Corrupt = false
	return f
}

// FreeFrame returns a pooled frame to the pool; frames built as
// literals are left alone. Callers must drop every reference to f.
func (n *Network) FreeFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	f.Payload = nil
	f.dstPort = nil
	n.framePool = append(n.framePool, f)
}

// SetFaultModel installs (or, with nil, removes) the fault model
// consulted on every transmit. With no model the fabric is flawless
// and the transmit path is byte-identical to a build without faults.
func (n *Network) SetFaultModel(m FaultModel) {
	n.fault = m
	n.condFault, _ = m.(ConditionedFaultModel)
}

// New returns an empty network on kernel k.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.LinkMbps <= 0 {
		panic("netsim: non-positive link bandwidth")
	}
	return &Network{k: k, cfg: cfg, port: make(map[string]*Port)}
}

// Config reports the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach creates (or returns) the port with the given name.
func (n *Network) Attach(name string) *Port {
	if p, ok := n.port[name]; ok {
		return p
	}
	p := &Port{net: n, name: name, uplink: sim.NewSerializer(n.k)}
	p.uplink.SetLabel("netsim/uplink")
	n.port[name] = p
	return p
}

// LookupPort returns the named port, or nil.
func (n *Network) LookupPort(name string) *Port { return n.port[name] }

// serialization reports how long size bytes occupy a link.
func (n *Network) serialization(size int) sim.Time {
	return sim.TransferTime(size, n.cfg.LinkMbps)
}

// Transmit sends a frame, blocking p for the egress serialization of
// the frame on the source uplink (and behind any queued frames).
// Delivery at the destination happens asynchronously after the wire
// latency and downlink serialization.
func (n *Network) Transmit(p *sim.Proc, f *Frame) {
	src, ok := n.port[f.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: transmit from unknown port %q", f.Src))
	}
	dst, ok := n.port[f.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: transmit to unknown port %q", f.Dst))
	}
	if f.Size <= 0 {
		panic("netsim: frame with non-positive size")
	}
	ser := n.serialization(f.Size)
	src.uplink.Use(p, ser, 0)
	src.sent++
	src.txBytes += int64(f.Size)
	hpsmon.Count(n.k, "netsim", "frames.out", 1)
	hpsmon.Count(n.k, "netsim", "bytes.out", int64(f.Size))

	// Fault judgement happens after uplink serialization: the sender
	// always pays for the bits it put on the wire, whatever their fate.
	var cond Condition
	if n.fault != nil {
		var v Verdict
		if n.condFault != nil {
			v = n.condFault.JudgeConditioned(n.k.Now(), f)
		} else {
			v.Disposition = n.fault.Judge(n.k.Now(), f)
		}
		switch v.Disposition {
		case Drop:
			dst.dropped++
			n.k.Trace("netsim", "frame-drop", int64(f.Size),
				fmt.Sprintf("%s->%s proto=%d", f.Src, f.Dst, f.Proto))
			hpsmon.Count(n.k, "netsim", "frames.dropped", 1)
			n.FreeFrame(f)
			return
		case Reject:
			dst.dropped++
			dst.rejected++
			n.k.Trace("netsim", "frame-reject", int64(f.Size),
				fmt.Sprintf("%s->%s proto=%d", f.Src, f.Dst, f.Proto))
			hpsmon.Count(n.k, "netsim", "frames.dropped", 1)
			hpsmon.Count(n.k, "netsim", "frames.rejected", 1)
			n.FreeFrame(f)
			return
		case Corrupt:
			f.Corrupt = true
			n.k.Trace("netsim", "frame-corrupt", int64(f.Size),
				fmt.Sprintf("%s->%s proto=%d", f.Src, f.Dst, f.Proto))
			hpsmon.Count(n.k, "netsim", "frames.corrupt", 1)
		}
		cond = v.Cond
	}

	// Cut-through switching: when the downlink is idle, bits flow
	// through the switch while the uplink is still serializing, so the
	// tail arrives one wire latency after it left the uplink. When the
	// downlink is draining earlier frames (converging traffic), this
	// frame queues behind them and pays its own serialization. Link
	// conditions stretch the path: extra one-way delay moves the tail,
	// a bandwidth throttle widens the downlink occupancy, and a
	// reordered frame skips the FIFO horizon entirely so it can
	// overtake earlier traffic.
	serDown := ser
	if cond.RateMbps > 0 {
		if s := sim.TransferTime(f.Size, cond.RateMbps); s > serDown {
			serDown = s
		}
	}
	// headAt is when the frame's head reaches the downlink; the tail
	// clears it one (possibly throttled) serialization later. With no
	// throttle headAt+serDown is exactly now+WireLatency+Delay, the
	// pre-conditioning arrival expression.
	headAt := n.k.Now() + n.cfg.WireLatency + cond.Delay - ser
	arrival := headAt + serDown
	if cond.Reorder {
		hpsmon.Count(n.k, "netsim", "frames.reordered", 1)
	} else {
		if q := dst.downHorizon + serDown; q > arrival {
			arrival = q
		}
		dst.downHorizon = arrival
	}
	f.dstPort = dst
	if f.deliver == nil {
		// One thunk per Frame object, not per transmission: pooled
		// frames amortize it to nothing, and it reads the destination
		// from the frame at fire time.
		f.deliver = f.fire
	}
	n.k.At(arrival, f.deliver)
}

func (p *Port) deliverFrame(f *Frame) {
	p.received++
	p.rxBytes += int64(f.Size)
	hpsmon.Count(p.net.k, "netsim", "frames.in", 1)
	hpsmon.Count(p.net.k, "netsim", "bytes.in", int64(f.Size))
	if f.Corrupt {
		p.corrupted++
		hpsmon.Count(p.net.k, "netsim", "frames.corrupt.in", 1)
	}
	h := p.handlers[f.Proto]
	if h == nil {
		panic(fmt.Sprintf("netsim: no handler for proto %d at port %q", f.Proto, p.name))
	}
	h(f)
	p.net.FreeFrame(f)
}
