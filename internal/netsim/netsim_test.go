package netsim

import (
	"testing"

	"hpsockets/internal/sim"
)

// testNet returns a network with easy arithmetic: 8000 Mbps = 1 ns per
// byte, and 100 ns wire latency.
func testNet(k *sim.Kernel) *Network {
	return New(k, Config{LinkMbps: 8000, WireLatency: 100})
}

func TestTransmitTiming(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var deliveredAt sim.Time
	b.Handle(ProtoVIA, func(f *Frame) { deliveredAt = k.Now() })
	var sendDone sim.Time
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 1000})
		sendDone = p.Now()
	})
	k.RunAll()
	// Uplink serialization: 1000 ns, then cut-through wire: 100.
	if sendDone != 1000 {
		t.Fatalf("send completed at %v, want 1000", sendDone)
	}
	if deliveredAt != 1100 {
		t.Fatalf("delivered at %v, want 1100", deliveredAt)
	}
}

func TestUplinkSerializesConcurrentSenders(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var arrivals []sim.Time
	b.Handle(ProtoIP, func(f *Frame) { arrivals = append(arrivals, k.Now()) })
	for i := 0; i < 3; i++ {
		k.Go("tx", func(p *sim.Proc) {
			n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoIP, Size: 500})
		})
	}
	k.RunAll()
	want := []sim.Time{600, 1100, 1600} // 500ns apart after the first
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestDownlinkSerializesConvergingTraffic(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	n.Attach("b")
	c := n.Attach("c")
	var arrivals []sim.Time
	c.Handle(ProtoVIA, func(f *Frame) { arrivals = append(arrivals, k.Now()) })
	// Two hosts transmit simultaneously to c; their uplinks are
	// independent, so both frames hit c's downlink at the same time
	// and must serialize there.
	k.Go("txa", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "c", Proto: ProtoVIA, Size: 1000})
	})
	k.Go("txb", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "b", Dst: "c", Proto: ProtoVIA, Size: 1000})
	})
	k.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Both tails reach the switch at 1100; the second frame queues
	// behind the first on c's downlink and pays its serialization.
	if arrivals[0] != 1100 || arrivals[1] != 2100 {
		t.Fatalf("arrivals = %v, want [1100 2100]", arrivals)
	}
}

func TestPipeliningSustainsLinkRate(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var last sim.Time
	count := 0
	b.Handle(ProtoVIA, func(f *Frame) { last = k.Now(); count++ })
	const frames, size = 100, 1000
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: size})
		}
	})
	k.RunAll()
	if count != frames {
		t.Fatalf("count = %d", count)
	}
	// Steady-state spacing is one serialization per frame: the last
	// tail leaves the uplink at frames*size*1ns and cuts through.
	want := sim.Time(frames*size + 100)
	if last != want {
		t.Fatalf("last arrival %v, want %v", last, want)
	}
}

func TestProtoDemux(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	b := n.Attach("b")
	var via, ip int
	b.Handle(ProtoVIA, func(f *Frame) { via++ })
	b.Handle(ProtoIP, func(f *Frame) { ip++ })
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 10})
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoIP, Size: 10})
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoIP, Size: 10})
	})
	k.RunAll()
	if via != 1 || ip != 2 {
		t.Fatalf("via=%d ip=%d, want 1 2", via, ip)
	}
}

func TestPortCounters(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	a := n.Attach("a")
	b := n.Attach("b")
	b.Handle(ProtoVIA, func(f *Frame) {})
	k.Go("tx", func(p *sim.Proc) {
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 100})
		n.Transmit(p, &Frame{Src: "a", Dst: "b", Proto: ProtoVIA, Size: 200})
	})
	k.RunAll()
	if a.Sent() != 2 || a.TxBytes() != 300 {
		t.Fatalf("a: sent=%d tx=%d", a.Sent(), a.TxBytes())
	}
	if b.Received() != 2 || b.RxBytes() != 300 {
		t.Fatalf("b: recv=%d rx=%d", b.Received(), b.RxBytes())
	}
}

func TestAttachIsIdempotent(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	a1 := n.Attach("a")
	a2 := n.Attach("a")
	if a1 != a2 {
		t.Fatal("Attach returned a different port for the same name")
	}
	if n.LookupPort("a") != a1 {
		t.Fatal("LookupPort mismatch")
	}
	if n.LookupPort("missing") != nil {
		t.Fatal("LookupPort on unknown name not nil")
	}
}

func TestTransmitToUnknownPortPanics(t *testing.T) {
	k := sim.NewKernel()
	n := testNet(k)
	n.Attach("a")
	k.Go("tx", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("transmit to unknown port did not panic")
			}
		}()
		n.Transmit(p, &Frame{Src: "a", Dst: "nope", Proto: ProtoVIA, Size: 1})
	})
	k.RunAll()
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	// 1250 Mbps -> 6.4 ns/byte.
	got := sim.TransferTime(1000, 1250)
	if got != 6400 {
		t.Fatalf("TransferTime = %v, want 6400", got)
	}
	mbps := sim.BitsPerSec(1000, 6400)
	if mbps < 1249 || mbps > 1251 {
		t.Fatalf("BitsPerSec = %v, want ~1250", mbps)
	}
}
