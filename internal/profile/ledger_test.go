package profile_test

import (
	"bytes"
	"testing"

	"hpsockets/internal/profile"
	"hpsockets/internal/sim"
)

// Direct-feed ledger accounting: parks, wakes, same-instant detection,
// parked-time summation, and the pinned render format.
func TestLedgerAccounting(t *testing.T) {
	k := sim.NewKernel()
	a := k.Go("a", func(p *sim.Proc) {})
	b := k.Go("b", func(p *sim.Proc) {})

	l := profile.NewLedger()
	l.Park(0, a, "q")
	l.Park(0, b, "q")
	l.Wake(0, a, "q") // same-instant rendezvous, zero parked time
	l.Wake(ms(2), b, "q")
	l.Park(ms(3), a, "s")
	l.Wake(ms(5), a, "s")
	l.Handoff(ms(4), "q")
	l.RingHit(ms(1))
	l.RingHit(ms(2))

	parks, wakes, same, hand := l.Totals()
	if parks != 3 || wakes != 3 || same != 1 || hand != 1 || l.RingHits() != 2 {
		t.Fatalf("totals parks=%d wakes=%d same=%d handoffs=%d ring=%d",
			parks, wakes, same, hand, l.RingHits())
	}
	edges := l.Edges()
	if len(edges) != 2 || edges[0].Edge != "q" || edges[1].Edge != "s" {
		t.Fatalf("edge order: %+v", edges)
	}
	if edges[0].Parked != ms(2) || edges[1].Parked != ms(2) {
		t.Fatalf("parked time: q=%v s=%v, want 2ms each", edges[0].Parked, edges[1].Parked)
	}

	var buf bytes.Buffer
	if err := l.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := "park ledger: parks=3 wakes=3 same-instant=1 handoffs=1 ring-hits=2\n" +
		"     parks  same-inst   handoffs    parked-ms  edge\n" +
		"         2          1          1        2.000  q\n" +
		"         1          0          0        2.000  s\n"
	if got := buf.String(); got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Edge ranking is parks descending, label ascending on ties.
func TestLedgerEdgeOrder(t *testing.T) {
	k := sim.NewKernel()
	p := k.Go("p", func(*sim.Proc) {})
	l := profile.NewLedger()
	for i, edge := range []string{"b", "a", "c", "c"} {
		l.Park(sim.Time(i), p, edge)
		l.Wake(sim.Time(i), p, edge)
	}
	edges := l.Edges()
	var got []string
	for _, e := range edges {
		got = append(got, e.Edge)
	}
	if len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("edge order %v, want [c a b]", got)
	}
}

// A real end-to-end run: a labeled queue between two procs produces a
// byte-identical ledger on every run, parks balance wakes, and the
// direct hand-off fast path is attributed to the queue's edge.
func TestLedgerRunDeterminism(t *testing.T) {
	run := func() string {
		k := sim.NewKernel()
		q := sim.NewQueue[int](k, 1)
		q.SetLabel("test/q")
		k.Go("prod", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				q.Put(p, i)
				p.Sleep(sim.Millisecond)
			}
		})
		k.Go("cons", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				q.Get(p)
			}
		})
		l := profile.NewLedger()
		l.Attach(k)
		k.Run(0)
		var buf bytes.Buffer
		if err := l.Render(&buf); err != nil {
			t.Fatal(err)
		}
		parks, wakes, _, handoffs := l.Totals()
		if parks == 0 {
			t.Fatal("no parks recorded on a parking workload")
		}
		if parks != wakes {
			t.Fatalf("parks=%d wakes=%d, want balanced on a completed run", parks, wakes)
		}
		if handoffs == 0 {
			t.Fatal("no hand-offs recorded on a rendezvous workload")
		}
		return buf.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("ledger not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// Set renders cells in name order regardless of adoption order, and
// the first adopted copy of a name wins.
func TestSetDeterminism(t *testing.T) {
	mkCell := func(name, edge string) *profile.Cell {
		k := sim.NewKernel()
		p := k.Go("p", func(*sim.Proc) {})
		l := profile.NewLedger()
		l.Park(0, p, edge)
		l.Wake(ms(1), p, edge)
		return &profile.Cell{Name: name, Ledger: l}
	}
	render := func(s *profile.Set) string {
		var buf bytes.Buffer
		if err := s.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	fwd, rev := profile.NewSet(), profile.NewSet()
	fwd.Adopt(mkCell("a", "e1"))
	fwd.Adopt(mkCell("b", "e2"))
	rev.Adopt(mkCell("b", "e2"))
	rev.Adopt(mkCell("a", "e1"))
	if render(fwd) != render(rev) {
		t.Fatalf("set render depends on adoption order:\n%s\nvs\n%s", render(fwd), render(rev))
	}

	s := profile.NewSet()
	s.Adopt(mkCell("a", "first"))
	s.Adopt(mkCell("a", "second"))
	if out := render(s); !bytes.Contains([]byte(out), []byte("first")) ||
		bytes.Contains([]byte(out), []byte("second")) {
		t.Fatalf("adopt is not first-wins:\n%s", out)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}
