// Package profile is the deterministic profiling layer of the
// simulated stack. It answers the two questions the telemetry layer
// cannot: which scheduler edges cost the most host time (the park
// ledger, fed by sim.Profiler callbacks), and which spans the
// end-to-end virtual-time latency actually lives in (the critical
// path, extracted from the hpsmon span/flow DAG).
//
// Everything is keyed on virtual time and compile-time edge labels,
// so two runs of the same experiment render byte-identical reports,
// and per-cell ledgers merged in canonical order make the output
// independent of the worker count — the same contract hpsmon holds.
package profile

import (
	"fmt"
	"io"
	"sort"

	"hpsockets/internal/sim"
)

// EdgeStats accumulates scheduler traffic for one labeled park edge.
type EdgeStats struct {
	// Edge is the label the parking primitive carries (see the
	// registry in DESIGN.md §15).
	Edge string
	// Parks counts processes that parked on the edge; each park is a
	// full goroutine rendezvous with the kernel loop — the host-cost
	// unit PR 8's profile identified as the wall-clock bound.
	Parks uint64
	// Wakes counts parks that resumed. It trails Parks by the procs
	// still parked when the run stopped.
	Wakes uint64
	// SameInstant counts wakes at the same virtual instant as their
	// park: zero-delay rendezvous that bought no virtual time, the
	// prime candidates for continuation-passing conversion.
	SameInstant uint64
	// Handoffs counts queue Puts that bypassed buffering and handed
	// the item directly to a parked getter.
	Handoffs uint64
	// Parked is the total virtual time processes spent parked on the
	// edge (summed over completed park/wake pairs).
	Parked sim.Time
}

// parkMark remembers one in-flight park, keyed by proc id.
type parkMark struct {
	at   sim.Time
	edge string
}

// Ledger implements sim.Profiler: it attributes every park, wake and
// hand-off to its labeled edge and counts same-instant ring pops.
// Like a telemetry Collector it belongs to exactly one kernel, which
// serializes all callbacks; parallel experiment cells each use their
// own ledger and merge through a Set.
type Ledger struct {
	edges    map[string]*EdgeStats
	inflight map[uint64]parkMark
	ringHits uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		edges:    make(map[string]*EdgeStats),
		inflight: make(map[uint64]parkMark),
	}
}

// Attach installs the ledger as the kernel's profiler.
func (l *Ledger) Attach(k *sim.Kernel) { k.SetProfiler(l) }

func (l *Ledger) edge(label string) *EdgeStats {
	e := l.edges[label]
	if e == nil {
		e = &EdgeStats{Edge: label}
		l.edges[label] = e
	}
	return e
}

// Park implements sim.Profiler.
func (l *Ledger) Park(at sim.Time, p *sim.Proc, edge string) {
	l.edge(edge).Parks++
	l.inflight[p.ID()] = parkMark{at: at, edge: edge}
}

// Wake implements sim.Profiler.
func (l *Ledger) Wake(at sim.Time, p *sim.Proc, edge string) {
	e := l.edge(edge)
	e.Wakes++
	if m, ok := l.inflight[p.ID()]; ok {
		delete(l.inflight, p.ID())
		e.Parked += at - m.at
		if at == m.at {
			e.SameInstant++
		}
	}
}

// Handoff implements sim.Profiler.
func (l *Ledger) Handoff(at sim.Time, edge string) {
	l.edge(edge).Handoffs++
}

// RingHit implements sim.Profiler.
func (l *Ledger) RingHit(at sim.Time) { l.ringHits++ }

// RingHits reports the number of events popped from the same-instant
// spill ring.
func (l *Ledger) RingHits() uint64 { return l.ringHits }

// Edges returns the per-edge stats ranked by park count descending,
// ties broken by edge label ascending — the byte-stable ledger order.
func (l *Ledger) Edges() []EdgeStats {
	out := make([]EdgeStats, 0, len(l.edges))
	for _, e := range l.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parks != out[j].Parks {
			return out[i].Parks > out[j].Parks
		}
		return out[i].Edge < out[j].Edge
	})
	return out
}

// Totals sums the ledger over all edges.
func (l *Ledger) Totals() (parks, wakes, sameInstant, handoffs uint64) {
	for _, e := range l.edges {
		parks += e.Parks
		wakes += e.Wakes
		sameInstant += e.SameInstant
		handoffs += e.Handoffs
	}
	return
}

// Render writes the ranked park ledger. The format is byte-stable:
// fixed column widths, deterministic ordering, no host quantities.
func (l *Ledger) Render(w io.Writer) error {
	parks, wakes, same, hand := l.Totals()
	if _, err := fmt.Fprintf(w,
		"park ledger: parks=%d wakes=%d same-instant=%d handoffs=%d ring-hits=%d\n",
		parks, wakes, same, hand, l.ringHits); err != nil {
		return err
	}
	if len(l.edges) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%10s %10s %10s %12s  %s\n",
		"parks", "same-inst", "handoffs", "parked-ms", "edge"); err != nil {
		return err
	}
	for _, e := range l.Edges() {
		if _, err := fmt.Fprintf(w, "%10d %10d %10d %12.3f  %s\n",
			e.Parks, e.SameInstant, e.Handoffs, e.Parked.Millis(), e.Edge); err != nil {
			return err
		}
	}
	return nil
}
