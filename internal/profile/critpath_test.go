package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/profile"
	"hpsockets/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

// span builds a test span; ids must be sequential from 1 in begin
// order, the Collector contract CriticalPaths documents.
func span(id, parent sim.SpanID, comp, name, detail string, start, end sim.Time) hpsmon.Span {
	return hpsmon.Span{
		ID: id, Parent: parent,
		Component: comp, Name: name, Detail: detail,
		Start: start, End: end,
	}
}

type wantSeg struct {
	span     sim.SpanID
	label    string
	from, to sim.Time
}

func checkSegments(t *testing.T, p profile.Path, want []wantSeg) {
	t.Helper()
	if len(p.Segments) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(p.Segments), len(want), p.Segments)
	}
	for i, w := range want {
		g := p.Segments[i]
		label := g.Component + "/" + g.Name
		if g.Span != w.span || label != w.label || g.From != w.from || g.To != w.to {
			t.Errorf("segment %d: got #%d %s [%v, %v], want #%d %s [%v, %v]",
				i, g.Span, label, g.From, g.To, w.span, w.label, w.from, w.to)
		}
	}
}

// The base case: a root with one child; the child's covered stretch is
// attributed to it, the uncovered head and tail to the root.
func TestCriticalPathChain(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=0", 0, ms(10)),
		span(2, 1, "net", "send", "", ms(2), ms(6)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(10))
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.UOW != 0 || p.Anchor != 1 || p.Start != 0 || p.End != ms(10) {
		t.Fatalf("path header: %+v", p)
	}
	checkSegments(t, p, []wantSeg{
		{1, "app/query", 0, ms(2)},
		{2, "net/send", ms(2), ms(6)},
		{1, "app/query", ms(6), ms(10)},
	})
}

// Two children closing at the same instant: the pinned tie-break is
// that the higher span id (the later-begun span) wins.
func TestCriticalPathTies(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=0", 0, ms(8)),
		span(2, 1, "a", "left", "", ms(1), ms(5)),
		span(3, 1, "b", "right", "", ms(2), ms(5)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(8))
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	checkSegments(t, paths[0], []wantSeg{
		{1, "app/query", 0, ms(2)},
		{3, "b/right", ms(2), ms(5)},
		{1, "app/query", ms(5), ms(8)},
	})
}

// A flow delivery tying with a child close: the pinned tie-break is
// that the flow wins — the cross-wire dependency is the more specific
// cause of the wait ending.
func TestCriticalPathFlowBeatsChildOnTie(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=0", 0, ms(8)),
		span(2, 0, "peer", "send", "", 0, ms(5)),
		span(3, 1, "child", "load", "", ms(1), ms(5)),
	}
	flows := []hpsmon.Flow{{From: 2, To: 1, At: ms(5)}}
	paths := profile.CriticalPaths(spans, flows, ms(8))
	// Group -1 holds the unmarked sender root; group 0 the query.
	if len(paths) != 2 || paths[0].UOW != -1 || paths[1].UOW != 0 {
		t.Fatalf("got %d paths %+v, want groups -1 and 0", len(paths), paths)
	}
	checkSegments(t, paths[1], []wantSeg{
		{2, "peer/send", 0, ms(5)},
		{1, "app/query", ms(5), ms(8)},
	})
	for _, seg := range paths[1].Segments {
		if seg.Span == 3 {
			t.Errorf("child/load on the path despite losing the tie to the flow")
		}
	}
}

// A cross-wire join: the walk follows the flow from the reader's tree
// into the writer's, inserting a synthetic wire/flight segment for the
// time between the sender's close and the delivery.
func TestCriticalPathFlowJoin(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "writer", "stream", "", 0, ms(3)),
		span(2, 0, "reader", "recv", "uow=0", 0, ms(10)),
		span(3, 1, "net", "tx", "", ms(1), ms(3)),
		span(4, 2, "net", "rx", "", ms(2), ms(9)),
	}
	flows := []hpsmon.Flow{{From: 3, To: 4, At: ms(4)}}
	paths := profile.CriticalPaths(spans, flows, ms(10))
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (groups -1 and 0)", len(paths))
	}
	if paths[0].UOW != -1 || paths[0].Anchor != 1 {
		t.Fatalf("group -1 header: %+v", paths[0])
	}
	checkSegments(t, paths[0], []wantSeg{
		{1, "writer/stream", 0, ms(1)},
		{3, "net/tx", ms(1), ms(3)},
	})
	p := paths[1]
	if p.UOW != 0 || p.Anchor != 2 || p.Start != 0 || p.End != ms(10) {
		t.Fatalf("uow 0 header: %+v", p)
	}
	checkSegments(t, p, []wantSeg{
		{1, "writer/stream", 0, ms(1)},
		{3, "net/tx", ms(1), ms(3)},
		{3, "wire/flight", ms(3), ms(4)},
		{4, "net/rx", ms(4), ms(9)},
		{2, "reader/recv", ms(9), ms(10)},
	})
}

// A failover re-dispatch fork: the failed first attempt and the retry
// are siblings, and both land on the path — the retry covers its own
// stretch, the attempt explains the time before the retry began, and
// the dispatch gap between them stays with the parent. A zero-duration
// sibling carries no path time and never appears.
func TestCriticalPathFailoverFork(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=7", 0, ms(10)),
		span(2, 1, "net", "attempt", "", ms(1), ms(4)),
		span(3, 1, "net", "retry", "", ms(5), ms(9)),
		span(4, 1, "net", "probe", "", ms(6), ms(6)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(10))
	if len(paths) != 1 || paths[0].UOW != 7 {
		t.Fatalf("got %d paths %+v, want one for uow 7", len(paths), paths)
	}
	checkSegments(t, paths[0], []wantSeg{
		{1, "app/query", 0, ms(1)},
		{2, "net/attempt", ms(1), ms(4)},
		{1, "app/query", ms(4), ms(5)},
		{3, "net/retry", ms(5), ms(9)},
		{1, "app/query", ms(9), ms(10)},
	})
}

// Anchor selection: the latest-ending root of a group wins; an exact
// end-time tie goes to the higher span id.
func TestCriticalPathAnchorTie(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "first", "uow=3", 0, ms(6)),
		span(2, 0, "app", "second", "uow=3", 0, ms(6)),
		span(3, 0, "app", "early", "uow=3", 0, ms(4)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(6))
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	if paths[0].Anchor != 2 || paths[0].AnchorLabel != "app/second" {
		t.Fatalf("anchor = #%d %s, want #2 app/second (end tie -> higher id)",
			paths[0].Anchor, paths[0].AnchorLabel)
	}
}

// Open spans (End == -1) close at the collector's last virtual time.
func TestCriticalPathOpenSpans(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=0", 0, -1),
		span(2, 1, "net", "wait", "", ms(1), -1),
	}
	paths := profile.CriticalPaths(spans, nil, ms(7))
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Start != 0 || p.End != ms(7) {
		t.Fatalf("open-span path spans [%v, %v], want [0, 7ms]", p.Start, p.End)
	}
	checkSegments(t, p, []wantSeg{
		{1, "app/query", 0, ms(1)},
		{2, "net/wait", ms(1), ms(7)},
	})
}

// AggregateSegments ranks by total time descending, breaking exact
// ties by label ascending.
func TestAggregateSegmentsOrder(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=7", 0, ms(10)),
		span(2, 1, "net", "attempt", "", ms(1), ms(4)),
		span(3, 1, "net", "retry", "", ms(5), ms(9)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(10))
	stats := profile.AggregateSegments(paths)
	var got []string
	for _, s := range stats {
		got = append(got, s.Label())
	}
	// net/retry carries 4 ms; app/query and net/attempt tie at 3 ms
	// and sort by label.
	want := []string{"net/retry", "app/query", "net/attempt"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("aggregate order %v, want %v", got, want)
	}
	if stats[1].Count != 3 || stats[2].Count != 1 {
		t.Fatalf("aggregate counts: %+v", stats)
	}
}

// The rendered report is pinned byte-for-byte: it is what the CI
// determinism job diffs, so any format change must be deliberate.
func TestWriteCriticalPathFormat(t *testing.T) {
	spans := []hpsmon.Span{
		span(1, 0, "app", "query", "uow=0", 0, ms(10)),
		span(2, 1, "net", "send", "", ms(2), ms(6)),
	}
	paths := profile.CriticalPaths(spans, nil, ms(10))
	var buf bytes.Buffer
	if err := profile.WriteCriticalPath(&buf, paths); err != nil {
		t.Fatal(err)
	}
	want := "critical path: 1 unit(s) of work\n" +
		"  uow 0          10.000 ms end-to-end,   3 segment(s), anchor #1 app/query\n" +
		"critical-path segments (all units merged):\n" +
		"    total-ms   share   segs  segment\n" +
		"       6.000   60.0%      2  app/query\n" +
		"       4.000   40.0%      1  net/send\n"
	if got := buf.String(); got != want {
		t.Fatalf("report mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	buf.Reset()
	if err := profile.WriteCriticalPath(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "critical path: no spans recorded\n" {
		t.Fatalf("empty report: %q", got)
	}
}
