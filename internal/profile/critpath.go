package profile

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// Segment is one contiguous stretch of virtual time on a critical
// path, attributed to the span that was the deepest explainer of that
// stretch. Wire flight between a flow's send and delivery is
// attributed to the synthetic component/name pair "wire/flight".
type Segment struct {
	Span      sim.SpanID
	Component string
	Name      string
	From, To  sim.Time
}

// Dur reports the segment length.
func (s Segment) Dur() sim.Time { return s.To - s.From }

// Path is the critical path of one unit-of-work group: the longest
// causal chain of span and flow edges ending at the group's anchor
// (its latest-ending root span).
type Path struct {
	// UOW is the unit-of-work number parsed from the anchor tree's
	// span details, or -1 for root spans with no "uow=N" marker.
	UOW    int
	Anchor sim.SpanID
	// AnchorLabel is the anchor span's component/name pair.
	AnchorLabel string
	Start, End  sim.Time
	// Segments covers [Start, End] in chronological order.
	Segments []Segment
}

// critWalker carries the indexes one extraction builds over the span
// and flow sets.
type critWalker struct {
	spans   []hpsmon.Span
	flows   []hpsmon.Flow
	closeAt sim.Time
	// children maps a span id to the indices of its child spans,
	// ascending (spans are in begin order, so ids ascend with index).
	children map[sim.SpanID][]int
	// flowsTo maps a consumer span id to the indices of flows
	// delivered into it, in record order (ascending At).
	flowsTo map[sim.SpanID][]int
}

// end resolves a span's close time; open spans close at closeAt, and
// never before their own start.
func (cw *critWalker) end(s *hpsmon.Span) sim.Time {
	if s.End >= 0 {
		return s.End
	}
	if cw.closeAt > s.Start {
		return cw.closeAt
	}
	return s.Start
}

// uowOf parses the trailing " uow=N" marker convention used by
// datacutter span details; -1 means unmarked.
func uowOf(detail string) int {
	i := strings.LastIndex(detail, "uow=")
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSpace(detail[i+len("uow="):]))
	if err != nil {
		return -1
	}
	return n
}

// CriticalPaths extracts one critical path per unit-of-work group
// from a collector's span DAG. Spans must be in begin order with
// sequential ids from 1 (the Collector contract); flows are the
// cross-process edges recorded by FlowSend/FlowRecv; closeAt closes
// still-open spans (use Collector.LastTime).
//
// Grouping: root spans (Parent == 0) are grouped by the " uow=N"
// marker in their details; unmarked roots form group -1. Each group's
// anchor is its latest-ending root, ties broken by the higher span id
// (the later-begun span). The walk from an anchor is fully
// deterministic; the tie-break rules are pinned in DESIGN.md §15 and
// asserted by TestCriticalPathTies.
func CriticalPaths(spans []hpsmon.Span, flows []hpsmon.Flow, closeAt sim.Time) []Path {
	cw := &critWalker{
		spans:    spans,
		flows:    flows,
		closeAt:  closeAt,
		children: make(map[sim.SpanID][]int),
		flowsTo:  make(map[sim.SpanID][]int),
	}
	for i := range spans {
		if p := spans[i].Parent; p != 0 {
			cw.children[p] = append(cw.children[p], i)
		}
	}
	for i := range flows {
		cw.flowsTo[flows[i].To] = append(cw.flowsTo[flows[i].To], i)
	}

	// Pick each group's anchor.
	anchors := make(map[int]int) // uow -> span index
	for i := range spans {
		if spans[i].Parent != 0 {
			continue
		}
		u := uowOf(spans[i].Detail)
		j, ok := anchors[u]
		if !ok {
			anchors[u] = i
			continue
		}
		ei, ej := cw.end(&spans[i]), cw.end(&spans[j])
		if ei > ej || (ei == ej && i > j) {
			anchors[u] = i
		}
	}
	uows := make([]int, 0, len(anchors))
	for u := range anchors {
		uows = append(uows, u)
	}
	sort.Ints(uows)

	paths := make([]Path, 0, len(uows))
	for _, u := range uows {
		paths = append(paths, cw.walk(u, anchors[u]))
	}
	return paths
}

// walk traces the longest causal chain backwards from the anchor.
// At every step the walker holds a current span and a frontier time t
// within it; the latest-ending explainer below t — a child span or an
// incoming flow — is followed, the uncovered gap is attributed to the
// current span, and the walk descends (or jumps across the wire).
// When nothing below explains the remaining time the span keeps it
// and the walk ascends to its parent.
func (cw *critWalker) walk(uow, anchorIdx int) Path {
	anchor := &cw.spans[anchorIdx]
	cur := anchorIdx
	t := cw.end(anchor)
	path := Path{
		UOW:         uow,
		Anchor:      anchor.ID,
		AnchorLabel: anchor.Component + "/" + anchor.Name,
		End:         t,
	}
	var segs []Segment
	emit := func(idx int, from, to sim.Time) {
		if to > from {
			s := &cw.spans[idx]
			segs = append(segs, Segment{
				Span: s.ID, Component: s.Component, Name: s.Name,
				From: from, To: to,
			})
		}
	}
	// The walk terminates on its own for well-formed DAGs (each step
	// descends, ascends, or crosses a wire edge, all finitely many);
	// the guard bounds malformed input deterministically.
	guard := 4*(len(cw.spans)+len(cw.flows)) + 8
	for steps := 0; steps <= guard; steps++ {
		s := &cw.spans[cur]
		// Latest-ending explainer strictly inside (s.Start, t].
		// Ties: a flow beats a child (the cross-wire dependency is the
		// more specific cause); among children the higher id wins;
		// among flows the later-recorded wins. Zero-duration children
		// carry no path time and are skipped.
		bestT := sim.Time(-1)
		child, flowIdx := -1, -1
		for _, ci := range cw.children[s.ID] {
			c := &cw.spans[ci]
			ce := cw.end(c)
			if ce <= s.Start || ce > t || ce == c.Start {
				continue
			}
			if ce >= bestT {
				bestT, child, flowIdx = ce, ci, -1
			}
		}
		for _, fi := range cw.flowsTo[s.ID] {
			at := cw.flows[fi].At
			if at <= s.Start || at > t {
				continue
			}
			if at >= bestT {
				bestT, child, flowIdx = at, -1, fi
			}
		}
		switch {
		case flowIdx >= 0:
			f := &cw.flows[flowIdx]
			emit(cur, f.At, t)
			from := int(f.From - 1)
			if from < 0 || from >= len(cw.spans) {
				// Malformed flow: keep the rest and stop.
				emit(cur, s.Start, f.At)
				path.Start = s.Start
				steps = guard
				break
			}
			sender := &cw.spans[from]
			t = f.At
			if se := cw.end(sender); se < t {
				// Wire flight between send-span close and delivery.
				segs = append(segs, Segment{
					Span: f.From, Component: "wire", Name: "flight",
					From: se, To: t,
				})
				t = se
			}
			cur = from
		case child >= 0:
			emit(cur, bestT, t)
			cur, t = child, bestT
		default:
			emit(cur, s.Start, t)
			if s.Parent == 0 {
				path.Start = s.Start
				steps = guard // drop out of the loop
				break
			}
			cur, t = int(s.Parent-1), s.Start
		}
		if steps >= guard {
			break
		}
	}
	// Walked backwards in time; report chronologically.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	path.Segments = segs
	if len(segs) > 0 && segs[0].From < path.Start {
		path.Start = segs[0].From
	}
	return path
}

// SegmentStat is the aggregate of all critical-path segments sharing
// one component/name label.
type SegmentStat struct {
	Component, Name string
	Total           sim.Time
	Count           int
}

// Label reports the component/name pair.
func (s SegmentStat) Label() string { return s.Component + "/" + s.Name }

// AggregateSegments merges the segments of all paths by label and
// ranks them by total time descending, ties broken by label
// ascending — the byte-stable report order.
func AggregateSegments(paths []Path) []SegmentStat {
	idx := make(map[string]int)
	var out []SegmentStat
	for _, p := range paths {
		for _, seg := range p.Segments {
			key := seg.Component + "/" + seg.Name
			i, ok := idx[key]
			if !ok {
				i = len(out)
				idx[key] = i
				out = append(out, SegmentStat{Component: seg.Component, Name: seg.Name})
			}
			out[i].Total += seg.Dur()
			out[i].Count++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label() < out[j].Label()
	})
	return out
}

// WriteCriticalPath renders per-group end-to-end lines followed by
// the merged ranked segment table. The format is byte-stable.
func WriteCriticalPath(w io.Writer, paths []Path) error {
	if len(paths) == 0 {
		_, err := fmt.Fprintf(w, "critical path: no spans recorded\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "critical path: %d unit(s) of work\n", len(paths)); err != nil {
		return err
	}
	for _, p := range paths {
		group := "(run)"
		if p.UOW >= 0 {
			group = fmt.Sprintf("uow %d", p.UOW)
		}
		if _, err := fmt.Fprintf(w, "  %-8s %12.3f ms end-to-end, %3d segment(s), anchor #%d %s\n",
			group, (p.End - p.Start).Millis(), len(p.Segments), p.Anchor, p.AnchorLabel); err != nil {
			return err
		}
	}
	stats := AggregateSegments(paths)
	var total sim.Time
	for _, st := range stats {
		total += st.Total
	}
	if _, err := fmt.Fprintf(w, "critical-path segments (all units merged):\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %7s %6s  %s\n", "total-ms", "share", "segs", "segment"); err != nil {
		return err
	}
	for _, st := range stats {
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "%12.3f %6.1f%% %6d  %s\n",
			st.Total.Millis(), share, st.Count, st.Label()); err != nil {
			return err
		}
	}
	return nil
}
