package profile

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hpsockets/internal/hpsmon"
)

// Cell bundles one experiment cell's profiling state: the park ledger
// its kernel ran with and the span-collecting telemetry collector the
// critical path is extracted from.
type Cell struct {
	Name   string
	Ledger *Ledger
	// Source provides the span DAG; it must have been created with
	// Spans enabled. Nil is allowed (ledger-only cells render no
	// critical path).
	Source *hpsmon.Collector
}

// Render writes the cell's park ledger followed by its critical-path
// report. The output is byte-stable: it depends only on virtual-time
// quantities and deterministic orderings.
func (c *Cell) Render(w io.Writer) error {
	if err := c.Ledger.Render(w); err != nil {
		return err
	}
	if c.Source == nil {
		return nil
	}
	paths := CriticalPaths(c.Source.Spans(), c.Source.Flows(), c.Source.LastTime())
	return WriteCriticalPath(w, paths)
}

// Set collects the per-cell profiles of one experiment run. Cells
// execute concurrently on worker threads; Adopt is the only
// cross-thread touch point and is mutex-guarded. Rendering walks the
// cells in lexicographic name order, so the merged report is
// byte-identical at any worker count (the hpsmon.Set contract).
type Set struct {
	mu    sync.Mutex
	cells map[string]*Cell
}

// NewSet returns an empty profile set.
func NewSet() *Set { return &Set{cells: make(map[string]*Cell)} }

// Adopt contributes a finished cell profile under its name. Cells are
// deterministic, so if the same cell is ever computed twice (a memo
// race) the copies are identical and the first one wins.
func (s *Set) Adopt(c *Cell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cells[c.Name]; ok {
		return
	}
	s.cells[c.Name] = c
}

// Len reports the number of adopted cells.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Cells returns the adopted cells in canonical (name) order.
func (s *Set) Cells() []*Cell {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.cells))
	for name := range s.cells {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Cell, 0, len(names))
	for _, name := range names {
		out = append(out, s.cells[name])
	}
	return out
}

// Render writes every cell's profile under a cell header, in
// canonical order.
func (s *Set) Render(w io.Writer) error {
	for _, c := range s.Cells() {
		if _, err := fmt.Fprintf(w, "== cell %s\n", c.Name); err != nil {
			return err
		}
		if err := c.Render(w); err != nil {
			return err
		}
	}
	return nil
}
