package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hpsockets/internal/fault"
	"hpsockets/internal/sim"
)

// binder walks the document tree into a File, recording the first
// semantic problem with its position. All validation that makes a
// scenario runnable by construction lives here, so the compile step
// (File.Scenario) is pure and infallible.
type binder struct {
	file string
	err  *SemanticError
}

func (b *binder) fail(n *node, key string, format string, args ...any) {
	if b.err != nil {
		return
	}
	line, col := n.line, n.col
	if key != "" {
		line, col = n.pos(key)
	}
	b.err = &SemanticError{File: b.file, Line: line, Col: col,
		Msg: fmt.Sprintf(format, args...)}
}

// bind validates and converts a parsed tree into a File.
func bind(name string, root *node) (*File, error) {
	b := &binder{file: name}
	f := &File{}
	if !root.isMap() {
		b.fail(root, "", "scenario root must be a mapping")
		return nil, b.err
	}
	b.allowKeys(root, "version", "name", "description", "seed",
		"fleet", "workload", "links", "events", "assertions")

	if v := b.intKey(root, "version", true, 0); v != Version && b.err == nil {
		b.fail(root, "version", "unsupported version %d (this build reads version %d)", v, Version)
	}
	f.Name = b.strKey(root, "name", true, "")
	if b.err == nil && !validName(f.Name) {
		b.fail(root, "name", "name %q must match [a-z0-9-]+", f.Name)
	}
	f.Description = b.strKey(root, "description", false, "")
	f.Seed = int64(b.intKey(root, "seed", false, 1))

	b.bindFleet(f, root)
	b.bindWorkload(f, root)
	b.bindLinks(f, root)
	b.bindEvents(f, root)
	b.bindAssertions(f, root)
	b.crossChecks(f, root)
	if b.err != nil {
		return nil, b.err
	}
	return f, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// ---- section binders ----

func (b *binder) bindFleet(f *File, root *node) {
	fl := b.mapKey(root, "fleet", true)
	if fl == nil {
		return
	}
	b.allowKeys(fl, "copies")
	f.Fleet.Copies = b.intKey(fl, "copies", true, 0)
	if b.err == nil && (f.Fleet.Copies < 1 || f.Fleet.Copies > 64) {
		b.fail(fl, "copies", "copies %d outside 1..64", f.Fleet.Copies)
	}
}

func (b *binder) bindWorkload(f *File, root *node) {
	w := b.mapKey(root, "workload", true)
	if w == nil {
		return
	}
	b.allowKeys(w, "transport", "uows", "buffers_per_uow", "block_bytes",
		"inbox_depth", "policy", "shed", "credit_window", "deadline_budget",
		"op_timeout", "redial_attempts", "gap", "spike_every", "consumer_cost",
		"checkpoint_every", "exactly_once")
	f.Workload = Workload{
		Transport:       b.enumKey(w, "transport", "tcp", "tcp", "socketvia"),
		UOWs:            b.boundedInt(w, "uows", 1, 1, 64),
		BuffersPerUOW:   b.boundedInt(w, "buffers_per_uow", 8, 1, 4096),
		BlockBytes:      b.boundedInt(w, "block_bytes", 4096, 1, 1<<20),
		InboxDepth:      b.boundedInt(w, "inbox_depth", 2, 1, 1024),
		Policy:          b.enumKey(w, "policy", "rr", "rr", "dd"),
		Shed:            b.enumKey(w, "shed", "block", "block", "drop-oldest", "drop-newest", "degrade"),
		CreditWindow:    b.boundedInt(w, "credit_window", 0, 0, 1024),
		DeadlineBudget:  b.durKey(w, "deadline_budget", 0),
		OpTimeout:       b.durKey(w, "op_timeout", 0),
		RedialAttempts:  b.boundedInt(w, "redial_attempts", 0, 0, 64),
		Gap:             b.durKey(w, "gap", 0),
		SpikeEvery:      b.boundedInt(w, "spike_every", 0, 0, 4096),
		ConsumerCost:    b.durKey(w, "consumer_cost", 0),
		CheckpointEvery: b.durKey(w, "checkpoint_every", 0),
		ExactlyOnce:     b.boolKey(w, "exactly_once"),
	}
	if b.err == nil && f.Workload.DeadlineBudget > 0 && f.Workload.Shed == "block" {
		b.fail(w, "deadline_budget",
			"deadline_budget requires a shedding policy (shed: block would have nowhere to put expired buffers)")
	}
}

func (b *binder) bindLinks(f *File, root *node) {
	ls := b.seqKey(root, "links")
	for _, item := range ls {
		if b.err != nil {
			return
		}
		if !item.isMap() {
			b.fail(item, "", "each link is a mapping")
			return
		}
		b.allowKeys(item, "from", "to", "latency", "jitter", "loss",
			"loss_every", "mode", "bandwidth", "corrupt", "reorder")
		l := Link{
			From:    b.strKey(item, "from", false, ""),
			To:      b.strKey(item, "to", false, ""),
			Profile: b.profile(item),
		}
		if b.err == nil && l.Profile.Zero() {
			b.fail(item, "", "link profile conditions nothing")
		}
		f.Links = append(f.Links, l)
	}
}

// profile binds the netem-style condition keys of a link or condition
// event mapping.
func (b *binder) profile(n *node) fault.Profile {
	p := fault.Profile{
		Latency:       b.durKey(n, "latency", 0),
		Jitter:        b.durKey(n, "jitter", 0),
		LossProb:      b.probKey(n, "loss"),
		LossEveryN:    b.boundedInt(n, "loss_every", 0, 0, 1<<20),
		Reject:        b.enumKey(n, "mode", "drop", "drop", "reject") == "reject",
		BandwidthMbps: b.floatKey(n, "bandwidth", 0),
		CorruptProb:   b.probKey(n, "corrupt"),
		ReorderProb:   b.probKey(n, "reorder"),
	}
	if b.err == nil && p.BandwidthMbps < 0 {
		b.fail(n, "bandwidth", "bandwidth must be positive Mbps")
	}
	if b.err == nil && p.Jitter > 0 && p.Latency == 0 {
		b.fail(n, "jitter", "jitter needs a latency to jitter around")
	}
	if b.err == nil && p.Reject && !p.Lossy() {
		b.fail(n, "mode", "mode: reject needs loss or loss_every to apply to")
	}
	return p
}

func (b *binder) bindEvents(f *File, root *node) {
	es := b.seqKey(root, "events")
	for _, item := range es {
		if b.err != nil {
			return
		}
		if !item.isMap() {
			b.fail(item, "", "each event is a mapping")
			return
		}
		e := Event{
			At:     b.durKey(item, "at", 0),
			Action: b.strKey(item, "action", true, ""),
		}
		if b.err != nil {
			return
		}
		switch e.Action {
		case "partition":
			b.allowKeys(item, "at", "action", "between", "until")
			pair := b.seqKey(item, "between")
			if b.err == nil && len(pair) != 2 {
				b.fail(item, "between", "partition needs between: [a, b]")
				return
			}
			if b.err != nil {
				return
			}
			e.A, e.B = b.scalarOf(pair[0]), b.scalarOf(pair[1])
			e.Until = b.durKey(item, "until", 0)
			if b.err == nil && e.Until <= e.At {
				b.fail(item, "until", "partition until %v must come after at %v", e.Until, e.At)
			}
		case "crash":
			b.allowKeys(item, "at", "action", "node")
			e.Node = b.strKey(item, "node", true, "")
		case "restart":
			b.allowKeys(item, "at", "action", "node")
			e.Node = b.strKey(item, "node", true, "")
		case "slowdown":
			b.allowKeys(item, "at", "action", "node", "factor")
			e.Node = b.strKey(item, "node", true, "")
			e.Factor = b.floatKey(item, "factor", 0)
			if b.err == nil && e.Factor < 1 {
				b.fail(item, "factor", "slowdown factor %g must be >= 1", e.Factor)
			}
		case "condition":
			b.allowKeys(item, "at", "action", "from", "to", "until",
				"latency", "jitter", "loss", "loss_every", "mode",
				"bandwidth", "corrupt", "reorder")
			e.From = b.strKey(item, "from", false, "")
			e.To = b.strKey(item, "to", false, "")
			e.Until = b.durKey(item, "until", 0)
			if b.err == nil && e.Until != 0 && e.Until <= e.At {
				b.fail(item, "until", "condition until %v must come after at %v", e.Until, e.At)
			}
			e.Profile = b.profile(item)
			if b.err == nil && e.Profile.Zero() {
				b.fail(item, "", "condition profile conditions nothing")
			}
		default:
			b.fail(item, "action",
				"unknown action %q (want partition, crash, restart, slowdown, or condition)", e.Action)
			return
		}
		f.Events = append(f.Events, e)
	}
}

func (b *binder) bindAssertions(f *File, root *node) {
	as := b.seqKey(root, "assertions")
	for _, item := range as {
		if b.err != nil {
			return
		}
		if !item.isMap() || len(item.keys) != 1 {
			b.fail(item, "", "each assertion is a single `check: bound` mapping")
			return
		}
		kind := item.keys[0]
		val := item.vals[kind]
		a := Assertion{Kind: kind}
		switch kind {
		case AssertInvariant:
			a.Name = b.scalarOf(val)
			if b.err == nil {
				if _, ok := invariantNames[a.Name]; !ok {
					b.fail(item, kind, "unknown invariant %q (want accounting, liveness, credits, replay, telemetry, or exactly-once)", a.Name)
				}
			}
		case AssertDeliveredMin, AssertDeliveredMax, AssertShedMin,
			AssertShedMax, AssertUnaccountedMax, AssertRedeliveredMax,
			AssertDuplicatesMax:
			a.N = b.intOf(val)
			if b.err == nil && a.N < 0 {
				b.fail(item, kind, "%s bound must be non-negative", kind)
			}
		case AssertEndMax:
			a.D = b.durOf(val)
			if b.err == nil && a.D <= 0 {
				b.fail(item, kind, "end_at_most needs a positive duration")
			}
		case AssertMTTRMax:
			a.D = b.durOf(val)
			if b.err == nil && a.D <= 0 {
				b.fail(item, kind, "mttr_at_most needs a positive duration")
			}
		case AssertNoAbort:
			if s := b.scalarOf(val); b.err == nil && s != "true" {
				b.fail(item, kind, "no_abort takes the value true")
			}
		case AssertRecovered:
			if s := b.scalarOf(val); b.err == nil && s != "true" {
				b.fail(item, kind, "recovered takes the value true")
			}
		default:
			b.fail(item, kind, "unknown assertion %q", kind)
			return
		}
		f.Assertions = append(f.Assertions, a)
	}
}

// crossChecks validates references that need the whole file: node
// names against the fleet, crash survivability.
func (b *binder) crossChecks(f *File, root *node) {
	if b.err != nil {
		return
	}
	nodes := map[string]bool{"src": true}
	for i := 0; i < f.Fleet.Copies; i++ {
		nodes[consName(i)] = true
	}
	known := func(n *node, key, name string, wildcardOK bool) {
		if b.err != nil {
			return
		}
		if name == "" {
			if !wildcardOK {
				b.fail(n, key, "node name required")
			}
			return
		}
		if !nodes[name] {
			b.fail(n, key, "unknown node %q (fleet has src and cons0..cons%d)",
				name, f.Fleet.Copies-1)
		}
	}
	// Positions for cross-check failures: re-walk the event and link
	// sequences so messages point at the offending entry.
	links := root.vals["links"]
	if links != nil {
		for i, item := range links.items {
			if i >= len(f.Links) {
				break
			}
			known(item, "from", f.Links[i].From, true)
			known(item, "to", f.Links[i].To, true)
		}
	}
	events := root.vals["events"]
	crashes, restarts := 0, 0
	if events != nil {
		for i, item := range events.items {
			if i >= len(f.Events) {
				break
			}
			e := f.Events[i]
			switch e.Action {
			case "partition":
				known(item, "between", e.A, false)
				known(item, "between", e.B, false)
			case "crash":
				known(item, "node", e.Node, false)
				if b.err == nil && e.Node == "src" {
					b.fail(item, "node", "crashing src kills the producer; crash a consumer instead")
				}
				crashes++
			case "restart":
				known(item, "node", e.Node, false)
				covered := false
				for _, other := range f.Events {
					if other.Action == "crash" && other.Node == e.Node && other.At < e.At {
						covered = true
					}
				}
				if b.err == nil && !covered {
					b.fail(item, "node",
						"restart of %q needs a strictly earlier crash of the same node", e.Node)
				}
				restarts++
			case "slowdown":
				known(item, "node", e.Node, false)
			case "condition":
				known(item, "from", e.From, true)
				known(item, "to", e.To, true)
			}
		}
	}
	if restarts == 0 {
		if b.err == nil && crashes >= f.Fleet.Copies {
			b.fail(root, "events", "%d crashes would leave no live consumer of %d copies",
				crashes, f.Fleet.Copies)
		}
		return
	}
	// With restarts, survivability is a sweep, not a count: at every
	// instant at least one consumer copy must be up. Mirrors the chaos
	// harness's validity rule so compiled scenarios are valid by
	// construction.
	type ev struct {
		at   sim.Time
		up   bool
		node string
	}
	// Crashes before restarts at equal instants (conservative, and the
	// same tie-break the chaos validity sweep uses).
	var evs []ev
	for _, e := range f.Events {
		if e.Action == "crash" {
			evs = append(evs, ev{e.At, false, e.Node})
		}
	}
	for _, e := range f.Events {
		if e.Action == "restart" {
			evs = append(evs, ev{e.At, true, e.Node})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	down := map[string]bool{}
	for _, e := range evs {
		if e.up {
			delete(down, e.node)
		} else {
			down[e.node] = true
		}
		if b.err == nil && len(down) >= f.Fleet.Copies {
			b.fail(root, "events",
				"at %s every consumer copy of %d is down; stagger the crashes or restart sooner",
				durString(e.at), f.Fleet.Copies)
			return
		}
	}
}

// ---- typed accessors over nodes ----

func (b *binder) allowKeys(n *node, allowed ...string) {
	if b.err != nil {
		return
	}
	for _, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			b.fail(n, k, "unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
			return
		}
	}
}

func (b *binder) mapKey(n *node, key string, required bool) *node {
	if b.err != nil {
		return nil
	}
	child, ok := n.vals[key]
	if !ok {
		if required {
			b.fail(n, "", "missing required section %q", key)
		}
		return nil
	}
	if !child.isMap() {
		b.fail(n, key, "%q must be a mapping", key)
		return nil
	}
	return child
}

func (b *binder) seqKey(n *node, key string) []*node {
	if b.err != nil {
		return nil
	}
	child, ok := n.vals[key]
	if !ok {
		return nil
	}
	if !child.started || !child.isSeq {
		b.fail(n, key, "%q must be a sequence", key)
		return nil
	}
	return child.items
}

func (b *binder) scalarKey(n *node, key string, required bool) (*node, bool) {
	if b.err != nil {
		return nil, false
	}
	child, ok := n.vals[key]
	if !ok {
		if required {
			b.fail(n, "", "missing required key %q", key)
		}
		return nil, false
	}
	if !child.isScal {
		b.fail(n, key, "%q must be a scalar", key)
		return nil, false
	}
	return child, true
}

func (b *binder) strKey(n *node, key string, required bool, def string) string {
	child, ok := b.scalarKey(n, key, required)
	if !ok {
		return def
	}
	return child.scalar
}

func (b *binder) enumKey(n *node, key, def string, allowed ...string) string {
	child, ok := b.scalarKey(n, key, false)
	if !ok {
		return def
	}
	for _, a := range allowed {
		if child.scalar == a {
			return child.scalar
		}
	}
	b.fail(n, key, "%q is not one of %s", child.scalar, strings.Join(allowed, ", "))
	return def
}

func (b *binder) intKey(n *node, key string, required bool, def int) int {
	child, ok := b.scalarKey(n, key, required)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(child.scalar, 10, 64)
	if err != nil {
		b.fail(n, key, "%q is not an integer", child.scalar)
		return def
	}
	return int(v)
}

func (b *binder) boundedInt(n *node, key string, def, lo, hi int) int {
	v := b.intKey(n, key, false, def)
	if b.err == nil && (v < lo || v > hi) {
		b.fail(n, key, "%s %d outside %d..%d", key, v, lo, hi)
		return def
	}
	return v
}

func (b *binder) boolKey(n *node, key string) bool {
	child, ok := b.scalarKey(n, key, false)
	if !ok {
		return false
	}
	switch child.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	b.fail(n, key, "%q is not a boolean (want true or false)", child.scalar)
	return false
}

func (b *binder) floatKey(n *node, key string, def float64) float64 {
	child, ok := b.scalarKey(n, key, false)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(child.scalar, 64)
	if err != nil {
		b.fail(n, key, "%q is not a number", child.scalar)
		return def
	}
	return v
}

func (b *binder) probKey(n *node, key string) float64 {
	v := b.floatKey(n, key, 0)
	if b.err == nil && (v < 0 || v > 1) {
		b.fail(n, key, "%s %g outside [0, 1]", key, v)
		return 0
	}
	return v
}

func (b *binder) durKey(n *node, key string, def sim.Time) sim.Time {
	child, ok := b.scalarKey(n, key, false)
	if !ok {
		return def
	}
	return b.durOf(child)
}

// ---- direct scalar coercions (sequence items, assertion values) ----

func (b *binder) scalarOf(n *node) string {
	if b.err != nil {
		return ""
	}
	if !n.isScal {
		b.fail(n, "", "expected a scalar")
		return ""
	}
	return n.scalar
}

func (b *binder) intOf(n *node) int {
	s := b.scalarOf(n)
	if b.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		b.fail(n, "", "%q is not an integer", s)
		return 0
	}
	return int(v)
}

func (b *binder) durOf(n *node) sim.Time {
	s := b.scalarOf(n)
	if b.err != nil {
		return 0
	}
	d, err := parseDuration(s)
	if err != nil {
		b.fail(n, "", "%v", err)
		return 0
	}
	return d
}

// parseDuration reads a virtual-time duration: a decimal number with
// one of the unit suffixes ns, us, ms, s.
func parseDuration(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		unit   sim.Time
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSuffix(s, u.suffix)
		if num == "" || strings.HasSuffix(num, "n") || strings.HasSuffix(num, "u") ||
			strings.HasSuffix(num, "m") {
			continue // e.g. "5ms" reaching the "s" case with num "5m"
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("%q is not a duration (want e.g. 250us, 5ms)", s)
		}
		return sim.Time(v*float64(u.unit) + 0.5), nil
	}
	return 0, fmt.Errorf("%q is not a duration (want a number with ns, us, ms, or s)", s)
}
