// Package scenario is the declarative chaos-scenario DSL: versioned
// files describing a fleet topology, a workload shape, netem-style
// link condition profiles, timed events, and declarative assertions,
// compiled deterministically into chaos.Scenario + fault.Plan and run
// through the six-invariant chaos checker.
//
// The file format is a strict YAML subset (two-space indentation,
// `key: value` mappings, `- ` sequences, `# comments`, double-quoted
// strings, inline `[a, b]` scalar lists) parsed by a stdlib-only
// parser; a file whose first significant byte is '{' is parsed as
// JSON instead. Both syntaxes bind to the same tree, so tooling can
// emit either.
//
// Scenario diversity is additive data, not new Go code: the checked-in
// library under scenarios/ (WAN, lossy wireless, cross-DC, cascading
// failure, thundering herd, flash partition) replays byte-identically
// at any worker count, and the chaos shrinker emits minimal failing
// reproducers back out as loadable scenario files.
//
// Errors are split by layer so tooling can tell them apart:
// *ParseError for malformed syntax, *SemanticError for well-formed
// files that describe an invalid scenario. Both carry file positions.
package scenario

import (
	"fmt"

	"hpsockets/internal/fault"
	"hpsockets/internal/sim"
)

// Version is the scenario format version this package reads and
// writes. Files must declare `version: 1`.
const Version = 1

// ParseError reports malformed scenario syntax with its position.
type ParseError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d:%d: parse: %s", e.File, e.Line, e.Col, e.Msg)
}

// SemanticError reports a well-formed file describing an invalid
// scenario: unknown keys, bad enum values, references to nodes outside
// the fleet, inverted windows, and friends.
type SemanticError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("%s:%d:%d: scenario: %s", e.File, e.Line, e.Col, e.Msg)
}

// File is one parsed, validated scenario. The producer filter always
// runs on node "src"; consumer copies run on "cons0" .. "consN-1".
type File struct {
	Name        string
	Description string
	Seed        int64
	Fleet       Fleet
	Workload    Workload
	// Links are whole-run netem-style condition profiles on fleet
	// links; windowed conditions are expressed as events instead.
	Links      []Link
	Events     []Event
	Assertions []Assertion
}

// Fleet is the simulated deployment topology.
type Fleet struct {
	// Copies is the number of transparent consumer copies (nodes
	// cons0..consN-1) behind the single producer on node src.
	Copies int
}

// Workload shapes the offered load and the overload-control
// configuration of the pipeline under test.
type Workload struct {
	Transport      string // "tcp" | "socketvia"
	UOWs           int
	BuffersPerUOW  int
	BlockBytes     int
	InboxDepth     int
	Policy         string // "rr" | "dd"
	Shed           string // "block" | "drop-oldest" | "drop-newest" | "degrade"
	CreditWindow   int
	DeadlineBudget sim.Time
	OpTimeout      sim.Time
	RedialAttempts int
	Gap            sim.Time
	SpikeEvery     int
	ConsumerCost   sim.Time
	// CheckpointEvery arms crash-restart recovery on the consumer
	// copies; required (and defaulted by normalization) whenever an
	// event restarts a node.
	CheckpointEvery sim.Time
	// ExactlyOnce arms the per-stream delivery ledger; forced on by
	// normalization whenever an event restarts a node.
	ExactlyOnce bool
}

// Link applies a condition profile to one directed fleet link for the
// whole run. Empty From or To is a wildcard.
type Link struct {
	From, To string
	Profile  fault.Profile
}

// Event is one timed action.
type Event struct {
	At     sim.Time
	Action string // "partition" | "crash" | "restart" | "slowdown" | "condition"
	// Until closes the window for partition and condition events
	// (0 = until the end of the run for conditions).
	Until sim.Time
	// Node names the target of crash, restart and slowdown events.
	Node string
	// A and B name the partitioned pair.
	A, B string
	// Factor scales computation for slowdown events.
	Factor float64
	// From and To name the conditioned link for condition events.
	From, To string
	Profile  fault.Profile
}

// Assertion is one declarative check against the run's report.
type Assertion struct {
	Kind string
	// Name is the invariant name for Kind "invariant": one of
	// accounting, liveness, credits, replay, telemetry.
	Name string
	// N is the bound for count assertions.
	N int
	// D is the bound for duration assertions (end_at_most).
	D sim.Time
}

// Assertion kinds. Count bounds compare against the run report;
// "invariant" requires that no violation with the named prefix was
// recorded; "no_abort" requires the producer finished without error.
const (
	AssertInvariant      = "invariant"
	AssertDeliveredMin   = "delivered_at_least"
	AssertDeliveredMax   = "delivered_at_most"
	AssertShedMin        = "shed_at_least"
	AssertShedMax        = "shed_at_most"
	AssertUnaccountedMax = "unaccounted_at_most"
	AssertRedeliveredMax = "redelivered_at_most"
	AssertEndMax         = "end_at_most"
	AssertNoAbort        = "no_abort"
	// AssertRecovered requires that at least one consumer copy actually
	// restarted mid-run and redelivered after its restart (positive
	// time-to-recover); AssertDuplicatesMax bounds the redeliveries the
	// exactly-once ledger suppressed; AssertMTTRMax bounds the worst
	// restart-to-first-redelivery gap.
	AssertRecovered     = "recovered"
	AssertDuplicatesMax = "duplicates_at_most"
	AssertMTTRMax       = "mttr_at_most"
)

// invariantNames are the violation prefixes the six-invariant chaos
// checker emits, as assertable names.
var invariantNames = map[string]string{
	"accounting":   "accounting",
	"liveness":     "liveness",
	"credits":      "credits",
	"replay":       "replay",
	"telemetry":    "telemetry",
	"exactly-once": "exactly-once",
}

func consName(i int) string { return fmt.Sprintf("cons%d", i) }
