package scenario

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hpsockets/internal/chaos"
	"hpsockets/internal/fault"
	"hpsockets/internal/sim"
)

// Marshal renders the file in canonical form: fixed key order, values
// that differ from the binder's defaults only, durations in the
// largest evenly-dividing unit, floats in shortest round-trip form.
// Canonical output is a fixed point: Parse(f.Marshal()) re-marshals to
// the same bytes, which is what lets shrunk reproducers and replay
// diffs compare scenario files byte-for-byte.
func (f *File) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "version: %d\n", Version)
	fmt.Fprintf(&b, "name: %s\n", f.Name)
	if f.Description != "" {
		fmt.Fprintf(&b, "description: %s\n", quote(f.Description))
	}
	fmt.Fprintf(&b, "seed: %d\n", f.Seed)
	b.WriteString("fleet:\n")
	fmt.Fprintf(&b, "  copies: %d\n", f.Fleet.Copies)

	w := f.Workload
	b.WriteString("workload:\n")
	fmt.Fprintf(&b, "  transport: %s\n", w.Transport) // always, so the section is never empty
	writeInt(&b, "  uows", w.UOWs, 1)
	writeInt(&b, "  buffers_per_uow", w.BuffersPerUOW, 8)
	writeInt(&b, "  block_bytes", w.BlockBytes, 4096)
	writeInt(&b, "  inbox_depth", w.InboxDepth, 2)
	writeStr(&b, "  policy", w.Policy, "rr")
	writeStr(&b, "  shed", w.Shed, "block")
	writeInt(&b, "  credit_window", w.CreditWindow, 0)
	writeDur(&b, "  deadline_budget", w.DeadlineBudget)
	writeDur(&b, "  op_timeout", w.OpTimeout)
	writeInt(&b, "  redial_attempts", w.RedialAttempts, 0)
	writeDur(&b, "  gap", w.Gap)
	writeInt(&b, "  spike_every", w.SpikeEvery, 0)
	writeDur(&b, "  consumer_cost", w.ConsumerCost)
	writeDur(&b, "  checkpoint_every", w.CheckpointEvery)
	if w.ExactlyOnce {
		b.WriteString("  exactly_once: true\n")
	}

	if len(f.Links) > 0 {
		b.WriteString("links:\n")
		for _, l := range f.Links {
			first := true
			writeItemStr(&b, &first, "from", l.From, "")
			writeItemStr(&b, &first, "to", l.To, "")
			writeProfile(&b, &first, l.Profile)
		}
	}
	if len(f.Events) > 0 {
		b.WriteString("events:\n")
		for _, e := range f.Events {
			first := true
			writeItemStr(&b, &first, "at", durString(e.At), "\x00")
			writeItemStr(&b, &first, "action", e.Action, "\x00")
			switch e.Action {
			case "partition":
				writeItemStr(&b, &first, "between", "["+e.A+", "+e.B+"]", "\x00")
				writeItemStr(&b, &first, "until", durString(e.Until), "\x00")
			case "crash", "restart":
				writeItemStr(&b, &first, "node", e.Node, "\x00")
			case "slowdown":
				writeItemStr(&b, &first, "node", e.Node, "\x00")
				writeItemStr(&b, &first, "factor", ftoaCanon(e.Factor), "\x00")
			case "condition":
				writeItemStr(&b, &first, "from", e.From, "")
				writeItemStr(&b, &first, "to", e.To, "")
				if e.Until != 0 {
					writeItemStr(&b, &first, "until", durString(e.Until), "\x00")
				}
				writeProfile(&b, &first, e.Profile)
			}
		}
	}
	if len(f.Assertions) > 0 {
		b.WriteString("assertions:\n")
		for _, a := range f.Assertions {
			switch a.Kind {
			case AssertInvariant:
				fmt.Fprintf(&b, "  - %s: %s\n", a.Kind, a.Name)
			case AssertEndMax, AssertMTTRMax:
				fmt.Fprintf(&b, "  - %s: %s\n", a.Kind, durString(a.D))
			case AssertNoAbort, AssertRecovered:
				fmt.Fprintf(&b, "  - %s: true\n", a.Kind)
			default:
				fmt.Fprintf(&b, "  - %s: %d\n", a.Kind, a.N)
			}
		}
	}
	return b.Bytes()
}

func writeInt(b *bytes.Buffer, key string, v, def int) {
	if v != def {
		fmt.Fprintf(b, "%s: %d\n", key, v)
	}
}

func writeStr(b *bytes.Buffer, key, v, def string) {
	if v != def {
		fmt.Fprintf(b, "%s: %s\n", key, v)
	}
}

func writeDur(b *bytes.Buffer, key string, v sim.Time) {
	if v != 0 {
		fmt.Fprintf(b, "%s: %s\n", key, durString(v))
	}
}

// writeItemStr writes one key of a sequence item, prefixing the first
// written key with the dash. def "\x00" means "always write".
func writeItemStr(b *bytes.Buffer, first *bool, key, v, def string) {
	if v == def {
		return
	}
	if *first {
		fmt.Fprintf(b, "  - %s: %s\n", key, v)
		*first = false
		return
	}
	fmt.Fprintf(b, "    %s: %s\n", key, v)
}

// writeProfile writes the non-zero netem keys of a condition profile
// in canonical order.
func writeProfile(b *bytes.Buffer, first *bool, p fault.Profile) {
	if p.Latency != 0 {
		writeItemStr(b, first, "latency", durString(p.Latency), "\x00")
	}
	if p.Jitter != 0 {
		writeItemStr(b, first, "jitter", durString(p.Jitter), "\x00")
	}
	if p.LossProb != 0 {
		writeItemStr(b, first, "loss", ftoaCanon(p.LossProb), "\x00")
	}
	if p.LossEveryN != 0 {
		writeItemStr(b, first, "loss_every", strconv.Itoa(p.LossEveryN), "\x00")
	}
	if p.Reject {
		writeItemStr(b, first, "mode", "reject", "\x00")
	}
	if p.BandwidthMbps != 0 {
		writeItemStr(b, first, "bandwidth", ftoaCanon(p.BandwidthMbps), "\x00")
	}
	if p.CorruptProb != 0 {
		writeItemStr(b, first, "corrupt", ftoaCanon(p.CorruptProb), "\x00")
	}
	if p.ReorderProb != 0 {
		writeItemStr(b, first, "reorder", ftoaCanon(p.ReorderProb), "\x00")
	}
}

// durString renders a duration in the largest unit that divides it
// evenly, the inverse of parseDuration on every value it emits.
func durString(d sim.Time) string {
	switch {
	case d%sim.Second == 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// ftoaCanon is the shortest decimal that round-trips through
// strconv.ParseFloat, so probabilities survive serialize/parse cycles
// bit-for-bit.
func ftoaCanon(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// quote renders a double-quoted scalar using only the escapes unquote
// understands.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// FromScenario lifts a chaos scenario back into file form, carrying
// the given assertions along — the inverse of File.Scenario used to
// emit shrunk reproducers. Whole-run conditions become links; windowed
// ones, partitions, crashes and slowdowns become events sorted by
// time. Legacy LinkFault entries are translated into equivalent lossy
// link profiles (same probabilities; the per-entry random stream keys
// differ, so prefer shrinking DSL-compiled scenarios, whose plans
// round-trip exactly). Descriptor pressure has no file syntax and is
// dropped.
func FromScenario(s chaos.Scenario, name, description string, assertions []Assertion) *File {
	f := &File{Name: name, Description: description, Seed: s.Seed}
	f.Fleet.Copies = s.Copies
	f.Workload = Workload{
		Transport:       s.Kind.String(),
		UOWs:            s.UOWs,
		BuffersPerUOW:   s.BuffersPerUOW,
		BlockBytes:      s.BlockBytes,
		InboxDepth:      s.InboxDepth,
		Policy:          s.Policy.String(),
		Shed:            s.Shed.String(),
		CreditWindow:    s.CreditWindow,
		DeadlineBudget:  s.DeadlineBudget,
		OpTimeout:       s.OpTimeout,
		RedialAttempts:  s.RedialAttempts,
		Gap:             s.Gap,
		SpikeEvery:      s.SpikeEvery,
		ConsumerCost:    s.ConsumerCost,
		CheckpointEvery: s.CheckpointEvery,
		ExactlyOnce:     s.ExactlyOnce,
	}
	for _, lf := range s.Plan.Links {
		f.Links = append(f.Links, Link{From: lf.Src, To: lf.Dst,
			Profile: fault.Profile{LossProb: lf.DropProb, CorruptProb: lf.CorruptProb}})
	}
	for _, lc := range s.Plan.Conditions {
		if lc.From == 0 && lc.To == 0 {
			f.Links = append(f.Links, Link{From: lc.Src, To: lc.Dst, Profile: lc.Profile})
			continue
		}
		f.Events = append(f.Events, Event{At: lc.From, Action: "condition",
			Until: lc.To, From: lc.Src, To: lc.Dst, Profile: lc.Profile})
	}
	for _, pt := range s.Plan.Partitions {
		f.Events = append(f.Events, Event{At: pt.From, Action: "partition",
			A: pt.A, B: pt.B, Until: pt.To})
	}
	for _, cr := range s.Plan.Crashes {
		f.Events = append(f.Events, Event{At: cr.At, Action: "crash", Node: cr.Node})
	}
	for _, rs := range s.Plan.Restarts {
		f.Events = append(f.Events, Event{At: rs.At, Action: "restart", Node: rs.Node})
	}
	for _, sl := range s.Plan.Slowdowns {
		f.Events = append(f.Events, Event{At: sl.At, Action: "slowdown",
			Node: sl.Node, Factor: sl.Factor})
	}
	sortLinks(f.Links)
	sortEvents(f.Events)
	f.Assertions = assertions
	return f
}

func sortLinks(ls []Link) {
	sort.SliceStable(ls, func(i, j int) bool {
		a, b := ls[i], ls[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return profileKey(a.Profile) < profileKey(b.Profile)
	})
}

func sortEvents(es []Event) {
	rank := map[string]int{"partition": 0, "crash": 1, "restart": 2, "slowdown": 3, "condition": 4}
	sort.SliceStable(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if rank[a.Action] != rank[b.Action] {
			return rank[a.Action] < rank[b.Action]
		}
		return eventKey(a) < eventKey(b)
	})
}

func profileKey(p fault.Profile) string {
	return fmt.Sprintf("%d|%d|%s|%d|%v|%s|%s|%s", p.Latency, p.Jitter,
		ftoaCanon(p.LossProb), p.LossEveryN, p.Reject,
		ftoaCanon(p.BandwidthMbps), ftoaCanon(p.CorruptProb), ftoaCanon(p.ReorderProb))
}

func eventKey(e Event) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%s", e.Node, e.A, e.B, e.From, e.To,
		e.Until, profileKey(e.Profile))
}
