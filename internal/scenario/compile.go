package scenario

import (
	"fmt"
	"sort"

	"hpsockets/internal/chaos"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/fault"
)

func condKey(lc fault.LinkCondition) string {
	return fmt.Sprintf("%s|%s|%d|%d|%s", lc.Src, lc.Dst, lc.From, lc.To,
		profileKey(lc.Profile))
}

// Scenario compiles the file into a runnable chaos scenario. The
// binder has already rejected anything unrunnable, so compilation is
// pure and infallible; the result is normalized, so serializing it
// back out (FromScenario) reparses to the same scenario.
func (f *File) Scenario() chaos.Scenario {
	w := f.Workload
	s := chaos.Scenario{
		Seed:            f.Seed,
		Kind:            kindOf(w.Transport),
		Copies:          f.Fleet.Copies,
		UOWs:            w.UOWs,
		BuffersPerUOW:   w.BuffersPerUOW,
		BlockBytes:      w.BlockBytes,
		InboxDepth:      w.InboxDepth,
		Policy:          policyOf(w.Policy),
		Shed:            shedOf(w.Shed),
		CreditWindow:    w.CreditWindow,
		DeadlineBudget:  w.DeadlineBudget,
		OpTimeout:       w.OpTimeout,
		RedialAttempts:  w.RedialAttempts,
		Gap:             w.Gap,
		SpikeEvery:      w.SpikeEvery,
		ConsumerCost:    w.ConsumerCost,
		CheckpointEvery: w.CheckpointEvery,
		ExactlyOnce:     w.ExactlyOnce,
	}
	// The ^0x5eed fold matches chaos.Generate, so a DSL scenario and a
	// generated scenario with the same seed draw the same fault streams.
	s.Plan.Seed = f.Seed ^ 0x5eed
	for _, l := range f.Links {
		s.Plan.Conditions = append(s.Plan.Conditions, fault.LinkCondition{
			Src: l.From, Dst: l.To, Profile: l.Profile})
	}
	for _, e := range f.Events {
		switch e.Action {
		case "partition":
			s.Plan.Partitions = append(s.Plan.Partitions, fault.Partition{
				A: e.A, B: e.B, From: e.At, To: e.Until})
		case "crash":
			s.Plan.Crashes = append(s.Plan.Crashes, fault.NodeCrash{
				Node: e.Node, At: e.At})
		case "restart":
			s.Plan.Restarts = append(s.Plan.Restarts, fault.NodeRestart{
				Node: e.Node, At: e.At})
		case "slowdown":
			s.Plan.Slowdowns = append(s.Plan.Slowdowns, fault.NodeSlowdown{
				Node: e.Node, At: e.At, Factor: e.Factor})
		case "condition":
			s.Plan.Conditions = append(s.Plan.Conditions, fault.LinkCondition{
				Src: e.From, Dst: e.To, From: e.At, To: e.Until,
				Profile: e.Profile})
		}
	}
	// Conditions are judged order-invariantly (each entry owns an
	// identity-keyed random stream), so their slice order is free;
	// sorting it canonically makes compile structurally deterministic
	// whatever order the file lists links and events in, which is what
	// lets round-trip tests compare plans with DeepEqual.
	sort.SliceStable(s.Plan.Conditions, func(i, j int) bool {
		return condKey(s.Plan.Conditions[i]) < condKey(s.Plan.Conditions[j])
	})
	s = s.Normalized()
	if !s.Valid() {
		// The binder guarantees runnability; reaching here is a bug in
		// this package, not in the scenario file.
		panic(fmt.Sprintf("scenario: %q bound to an invalid chaos scenario", f.Name))
	}
	return s
}

func kindOf(s string) core.Kind {
	if s == "socketvia" {
		return core.KindSocketVIA
	}
	return core.KindTCP
}

func policyOf(s string) datacutter.Policy {
	if s == "dd" {
		return datacutter.DemandDriven
	}
	return datacutter.RoundRobin
}

func shedOf(s string) datacutter.ShedPolicy {
	switch s {
	case "drop-oldest":
		return datacutter.DropOldest
	case "drop-newest":
		return datacutter.DropNewest
	case "degrade":
		return datacutter.DegradeQuality
	}
	return datacutter.Block
}
