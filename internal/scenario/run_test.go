package scenario

import (
	"strings"
	"testing"
)

// TestLibraryGreenAndReplayStable: every checked-in scenario passes
// its assertions, and two independent RunFile executions render
// byte-identical results including the full telemetry export — the
// replay property the CI scenario-library job diffs for.
func TestLibraryGreenAndReplayStable(t *testing.T) {
	for name, data := range libraryFiles(t) {
		f, err := Parse(name, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1 := RunFile(f)
		r2 := RunFile(f)
		if !r1.OK() {
			t.Fatalf("%s: not green:\n%s", name, r1.Render())
		}
		if r1.Render() != r2.Render() {
			t.Fatalf("%s: two runs render differently:\n%s\nvs\n%s",
				name, r1.Render(), r2.Render())
		}
		if r1.Report.Telemetry == "" || r1.Report.Telemetry != r2.Report.Telemetry {
			t.Fatalf("%s: telemetry exports differ or are empty", name)
		}
	}
}

const failingDoc = `version: 1
name: doomed
seed: 5
fleet:
  copies: 2
workload:
  transport: tcp
  uows: 2
  buffers_per_uow: 6
events:
  - at: 1ms
    action: crash
    node: cons1
assertions:
  - invariant: accounting
  - delivered_at_least: 1000
`

// TestAssertionFailureReported: an unsatisfiable assertion fails the
// run with a message naming the bound and the actual value.
func TestAssertionFailureReported(t *testing.T) {
	f, err := Parse("doomed.yaml", []byte(failingDoc))
	if err != nil {
		t.Fatal(err)
	}
	r := RunFile(f)
	if r.OK() {
		t.Fatal("impossible assertion passed")
	}
	if len(r.Failures) != 1 || !strings.Contains(r.Failures[0], "< 1000") {
		t.Fatalf("failures = %v, want one mentioning the 1000 bound", r.Failures)
	}
	if !strings.Contains(r.Render(), "FAIL") {
		t.Fatalf("render does not say FAIL:\n%s", r.Render())
	}
}

// TestShrinkFileEmitsLoadableReproducer: shrinking a failing file
// yields a strictly smaller scenario file that parses cleanly and
// still fails the same way.
func TestShrinkFileEmitsLoadableReproducer(t *testing.T) {
	f, err := Parse("doomed.yaml", []byte(failingDoc))
	if err != nil {
		t.Fatal(err)
	}
	min, runs := ShrinkFile(f, 300)
	if runs <= 0 {
		t.Fatalf("shrink spent %d runs", runs)
	}
	if min.Name != "doomed-min" {
		t.Fatalf("reproducer name = %q", min.Name)
	}
	out := min.Marshal()
	reparsed, err := Parse("doomed-min.yaml", out)
	if err != nil {
		t.Fatalf("reproducer does not parse: %v\n%s", err, out)
	}
	r := RunFile(reparsed)
	if r.OK() {
		t.Fatalf("reloaded reproducer passes:\n%s", r.Render())
	}
	s, orig := reparsed.Scenario(), f.Scenario()
	if s.Copies*s.UOWs*s.BuffersPerUOW >= orig.Copies*orig.UOWs*orig.BuffersPerUOW {
		t.Fatalf("reproducer is not smaller: %+v", s)
	}
}

// TestShrinkFilePassingUnchanged: a green file comes back unchanged.
func TestShrinkFilePassingUnchanged(t *testing.T) {
	doc := strings.Replace(failingDoc, "delivered_at_least: 1000", "delivered_at_least: 1", 1)
	f, err := Parse("fine.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	min, _ := ShrinkFile(f, 300)
	if min != f {
		t.Fatalf("passing file was rewritten to %q", min.Name)
	}
}
