package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// node is one vertex of the parsed document tree: a scalar, a mapping
// (with key order preserved), or a sequence. Every node remembers the
// position of its first byte for error messages.
type node struct {
	line, col int

	scalar  string
	isScal  bool
	keys    []string
	vals    map[string]*node
	keyPos  map[string][2]int
	items   []*node
	isSeq   bool
	started bool // mapping or sequence has been opened
}

func (n *node) isMap() bool { return n.started && !n.isSeq && !n.isScal }

// pos returns the recorded position of key k, falling back to the
// node's own position.
func (n *node) pos(k string) (int, int) {
	if p, ok := n.keyPos[k]; ok {
		return p[0], p[1]
	}
	return n.line, n.col
}

// Parse reads one scenario file. data whose first significant byte is
// '{' is parsed as JSON; everything else as the strict YAML subset.
// The returned error is a *ParseError for malformed syntax or a
// *SemanticError for a well-formed file describing an invalid
// scenario.
func Parse(name string, data []byte) (*File, error) {
	var root *node
	var err error
	if firstSignificantByte(data) == '{' {
		root, err = jsonTree(name, data)
	} else {
		root, err = yamlTree(name, data)
	}
	if err != nil {
		return nil, err
	}
	return bind(name, root)
}

func firstSignificantByte(data []byte) byte {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}

// ---- YAML-subset front end ----

type line struct {
	no     int
	indent int
	text   string // content with indentation stripped
}

// yamlTree tokenizes and parses the YAML subset into a node tree.
func yamlTree(name string, data []byte) (*node, error) {
	lines, err := logicalLines(name, data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, &ParseError{File: name, Line: 1, Col: 1, Msg: "empty scenario file"}
	}
	p := &yparser{file: name, lines: lines}
	root, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, &ParseError{File: name, Line: l.no, Col: l.indent + 1,
			Msg: fmt.Sprintf("unexpected indentation %d", l.indent)}
	}
	return root, nil
}

// logicalLines strips comments and blank lines and measures
// indentation. Tabs anywhere in indentation are parse errors.
func logicalLines(name string, data []byte) ([]line, error) {
	var out []line
	for no, raw := range strings.Split(string(data), "\n") {
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, &ParseError{File: name, Line: no + 1, Col: indent + 1,
				Msg: "tab in indentation (use spaces)"}
		}
		text, err := stripComment(name, no+1, indent, raw[indent:])
		if err != nil {
			return nil, err
		}
		text = strings.TrimRight(text, " \r")
		if text == "" {
			continue
		}
		if indent%2 != 0 {
			return nil, &ParseError{File: name, Line: no + 1, Col: indent + 1,
				Msg: fmt.Sprintf("odd indentation %d (indent in steps of two spaces)", indent)}
		}
		out = append(out, line{no: no + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing `# ...` comment, respecting double
// quotes.
func stripComment(name string, no, col int, s string) (string, error) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return s[:i], nil
			}
		}
	}
	if inQuote {
		return "", &ParseError{File: name, Line: no, Col: col + len(s),
			Msg: "unterminated string"}
	}
	return s, nil
}

type yparser struct {
	file  string
	lines []line
	pos   int
}

// block parses the run of sibling lines at exactly the given indent
// into one mapping or sequence node.
func (p *yparser) block(indent int) (*node, error) {
	first := p.lines[p.pos]
	n := &node{line: first.no, col: first.indent + 1, started: true,
		vals: map[string]*node{}, keyPos: map[string][2]int{}}
	n.isSeq = strings.HasPrefix(first.text, "-") &&
		(first.text == "-" || strings.HasPrefix(first.text, "- "))
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, &ParseError{File: p.file, Line: l.no, Col: l.indent + 1,
				Msg: fmt.Sprintf("unexpected indentation %d, want %d", l.indent, indent)}
		}
		isItem := strings.HasPrefix(l.text, "-") &&
			(l.text == "-" || strings.HasPrefix(l.text, "- "))
		if isItem != n.isSeq {
			return nil, &ParseError{File: p.file, Line: l.no, Col: l.indent + 1,
				Msg: "cannot mix sequence items and mapping keys in one block"}
		}
		if n.isSeq {
			item, err := p.seqItem(l, indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
		} else {
			if err := p.mapEntry(n, l, indent); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// seqItem parses one `- ...` line (plus any nested block) into a node.
func (p *yparser) seqItem(l line, indent int) (*node, error) {
	rest := strings.TrimPrefix(l.text, "-")
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		// `-` alone: the item is the nested block two spaces deeper.
		p.pos++
		if p.pos >= len(p.lines) || p.lines[p.pos].indent != indent+2 {
			return nil, &ParseError{File: p.file, Line: l.no, Col: l.indent + 1,
				Msg: "empty sequence item"}
		}
		return p.block(indent + 2)
	}
	if key, val, ok, err := p.splitKey(l, l.indent+2, rest); err != nil {
		return nil, err
	} else if ok {
		// `- key: ...`: a mapping item whose first entry sits inline;
		// its remaining keys follow at the dash indent + 2.
		item := &node{line: l.no, col: l.indent + 3, started: true,
			vals: map[string]*node{}, keyPos: map[string][2]int{}}
		if err := p.mapEntryFrom(item, l, indent+2, key, val, l.indent+2); err != nil {
			return nil, err
		}
		for p.pos < len(p.lines) && p.lines[p.pos].indent == indent+2 {
			nl := p.lines[p.pos]
			if strings.HasPrefix(nl.text, "- ") || nl.text == "-" {
				break
			}
			if err := p.mapEntry(item, nl, indent+2); err != nil {
				return nil, err
			}
		}
		return item, nil
	}
	// Plain scalar item.
	p.pos++
	return p.scalarNode(l.no, l.indent+3, rest)
}

// mapEntry parses one `key: ...` line (plus any nested block) into n.
func (p *yparser) mapEntry(n *node, l line, indent int) error {
	key, val, ok, err := p.splitKey(l, l.indent, l.text)
	if err != nil {
		return err
	}
	if !ok {
		return &ParseError{File: p.file, Line: l.no, Col: l.indent + 1,
			Msg: fmt.Sprintf("expected `key: value`, got %q", l.text)}
	}
	return p.mapEntryFrom(n, l, indent, key, val, l.indent)
}

// mapEntryFrom records one key (already split) and parses its value,
// which is either inline or the nested block two spaces deeper.
func (p *yparser) mapEntryFrom(n *node, l line, indent int, key, val string, keyCol int) error {
	if _, dup := n.vals[key]; dup {
		return &ParseError{File: p.file, Line: l.no, Col: keyCol + 1,
			Msg: fmt.Sprintf("duplicate key %q", key)}
	}
	p.pos++
	var child *node
	if val == "" {
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			return &ParseError{File: p.file, Line: l.no, Col: keyCol + 1,
				Msg: fmt.Sprintf("key %q has no value", key)}
		}
		var err error
		child, err = p.block(indent + 2)
		if err != nil {
			return err
		}
	} else {
		var err error
		child, err = p.scalarNode(l.no, keyCol+len(key)+3, val)
		if err != nil {
			return err
		}
	}
	n.keys = append(n.keys, key)
	n.vals[key] = child
	n.keyPos[key] = [2]int{l.no, keyCol + 1}
	return nil
}

// splitKey splits `key: value` / `key:`; ok is false when the text is
// not a mapping entry at all.
func (p *yparser) splitKey(l line, col int, text string) (key, val string, ok bool, err error) {
	i := strings.Index(text, ":")
	if i < 0 {
		return "", "", false, nil
	}
	key = text[:i]
	if key == "" || strings.ContainsAny(key, " \"[]") {
		return "", "", false, nil
	}
	rest := text[i+1:]
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false, &ParseError{File: p.file, Line: l.no, Col: col + i + 2,
			Msg: fmt.Sprintf("missing space after %q", key+":")}
	}
	return key, strings.TrimPrefix(rest, " "), true, nil
}

// scalarNode parses an inline value: a quoted string, an inline
// `[a, b]` list of scalars, or a plain token.
func (p *yparser) scalarNode(no, col int, text string) (*node, error) {
	switch {
	case strings.HasPrefix(text, "["):
		if !strings.HasSuffix(text, "]") {
			return nil, &ParseError{File: p.file, Line: no, Col: col + len(text),
				Msg: "unterminated inline list"}
		}
		n := &node{line: no, col: col, started: true, isSeq: true,
			vals: map[string]*node{}, keyPos: map[string][2]int{}}
		body := strings.TrimSpace(text[1 : len(text)-1])
		if body == "" {
			return n, nil
		}
		for _, part := range strings.Split(body, ",") {
			part = strings.TrimSpace(part)
			if part == "" || strings.ContainsAny(part, "[]\"") {
				return nil, &ParseError{File: p.file, Line: no, Col: col,
					Msg: "inline lists hold plain scalars separated by commas"}
			}
			n.items = append(n.items, &node{line: no, col: col, isScal: true, scalar: part})
		}
		return n, nil
	case strings.HasPrefix(text, "\""):
		s, err := unquote(text)
		if err != nil {
			return nil, &ParseError{File: p.file, Line: no, Col: col, Msg: err.Error()}
		}
		return &node{line: no, col: col, isScal: true, scalar: s}, nil
	default:
		return &node{line: no, col: col, isScal: true, scalar: text}, nil
	}
}

// unquote decodes a double-quoted scalar with \", \\, \n, \t escapes.
func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed quoted string %q", s)
	}
	var b strings.Builder
	body := s[1 : len(s)-1]
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			if c == '"' {
				return "", fmt.Errorf("unescaped quote inside string %q", s)
			}
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// ---- JSON front end ----

// jsonTree parses a JSON document into the same node shape. JSON
// carries no line information through encoding/json, so nodes get the
// position of the document start; syntax errors are located from the
// decoder offset.
func jsonTree(name string, data []byte) (*node, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		l, c := offsetPos(data, syntaxOffset(err))
		return nil, &ParseError{File: name, Line: l, Col: c, Msg: err.Error()}
	}
	if dec.More() {
		l, c := offsetPos(data, dec.InputOffset())
		return nil, &ParseError{File: name, Line: l, Col: c, Msg: "trailing data after document"}
	}
	return jsonNode(name, v)
}

func syntaxOffset(err error) int64 {
	if se, ok := err.(*json.SyntaxError); ok {
		return se.Offset
	}
	if ue, ok := err.(*json.UnmarshalTypeError); ok {
		return ue.Offset
	}
	return 0
}

func offsetPos(data []byte, off int64) (int, int) {
	if off < 1 {
		return 1, 1
	}
	line, col := 1, 1
	for i := int64(0); i < off-1 && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

func jsonNode(name string, v any) (*node, error) {
	switch v := v.(type) {
	case map[string]any:
		n := &node{line: 1, col: 1, started: true,
			vals: map[string]*node{}, keyPos: map[string][2]int{}}
		n.keys = sortedJSONKeys(v)
		for _, k := range n.keys {
			child, err := jsonNode(name, v[k])
			if err != nil {
				return nil, err
			}
			n.vals[k] = child
		}
		return n, nil
	case []any:
		n := &node{line: 1, col: 1, started: true, isSeq: true,
			vals: map[string]*node{}, keyPos: map[string][2]int{}}
		for _, item := range v {
			child, err := jsonNode(name, item)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, child)
		}
		return n, nil
	case string:
		return &node{line: 1, col: 1, isScal: true, scalar: v}, nil
	case json.Number:
		return &node{line: 1, col: 1, isScal: true, scalar: v.String()}, nil
	case bool:
		return &node{line: 1, col: 1, isScal: true, scalar: fmt.Sprintf("%v", v)}, nil
	case nil:
		return nil, &ParseError{File: name, Line: 1, Col: 1, Msg: "null has no scenario meaning"}
	default:
		return nil, &ParseError{File: name, Line: 1, Col: 1,
			Msg: fmt.Sprintf("unsupported JSON value %T", v)}
	}
}

// sortedJSONKeys orders a JSON object's keys deterministically (JSON
// objects are unordered; the binder does not care about key order).
func sortedJSONKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
