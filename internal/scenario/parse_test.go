package scenario

import (
	"errors"
	"strings"
	"testing"

	"hpsockets/internal/sim"
)

const happyYAML = `# A full-featured scenario exercising every construct.
version: 1
name: full-house
description: "uses \"every\" construct\n(two lines)"
seed: 7
fleet:
  copies: 2
workload:
  transport: socketvia
  uows: 2
  buffers_per_uow: 10
  block_bytes: 2048
  inbox_depth: 3
  policy: dd
  shed: drop-oldest
  credit_window: 4
  deadline_budget: 8ms
  op_timeout: 5ms
  redial_attempts: 2
  gap: 50us
  spike_every: 2
  consumer_cost: 25us
links:
  - from: src
    to: cons0
    latency: 250us   # netem-style delay
    jitter: 50us
    loss: 0.01
events:
  - at: 1ms
    action: partition
    between: [src, cons1]
    until: 3ms
  - at: 2ms
    action: slowdown
    node: cons0
    factor: 2.5
  - at: 4ms
    action: condition
    from: src
    to: cons1
    until: 6ms
    loss_every: 9
    mode: reject
  - at: 5ms
    action: crash
    node: cons1
assertions:
  - invariant: accounting
  - invariant: liveness
  - delivered_at_least: 10
  - shed_at_most: 40
  - end_at_most: 9s
  - no_abort: true
`

func TestParseHappyYAML(t *testing.T) {
	f, err := Parse("full.yaml", []byte(happyYAML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Name != "full-house" || f.Seed != 7 || f.Fleet.Copies != 2 {
		t.Fatalf("header misparsed: %+v", f)
	}
	if want := "uses \"every\" construct\n(two lines)"; f.Description != want {
		t.Fatalf("description = %q, want %q", f.Description, want)
	}
	w := f.Workload
	if w.Transport != "socketvia" || w.Policy != "dd" || w.Shed != "drop-oldest" {
		t.Fatalf("workload enums misparsed: %+v", w)
	}
	if w.DeadlineBudget != 8*sim.Millisecond || w.Gap != 50*sim.Microsecond {
		t.Fatalf("workload durations misparsed: %+v", w)
	}
	if len(f.Links) != 1 || f.Links[0].Profile.LossProb != 0.01 ||
		f.Links[0].Profile.Latency != 250*sim.Microsecond {
		t.Fatalf("links misparsed: %+v", f.Links)
	}
	if len(f.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(f.Events))
	}
	if e := f.Events[0]; e.Action != "partition" || e.A != "src" || e.B != "cons1" ||
		e.At != sim.Millisecond || e.Until != 3*sim.Millisecond {
		t.Fatalf("partition misparsed: %+v", e)
	}
	if e := f.Events[2]; e.Action != "condition" || !e.Profile.Reject ||
		e.Profile.LossEveryN != 9 {
		t.Fatalf("condition misparsed: %+v", e)
	}
	if len(f.Assertions) != 6 || f.Assertions[2].Kind != AssertDeliveredMin ||
		f.Assertions[2].N != 10 || f.Assertions[4].D != 9*sim.Second {
		t.Fatalf("assertions misparsed: %+v", f.Assertions)
	}
}

// TestParseJSONEquivalence: the JSON front end binds to the same File
// (canonical marshal bytes are identical).
func TestParseJSONEquivalence(t *testing.T) {
	jsonDoc := `{
  "version": 1, "name": "json-twin", "seed": 3,
  "fleet": {"copies": 1},
  "workload": {"transport": "tcp", "uows": 2},
  "links": [{"from": "src", "to": "cons0", "latency": "100us", "loss": 0.5}],
  "events": [{"at": "1ms", "action": "slowdown", "node": "cons0", "factor": 2}],
  "assertions": [{"invariant": "accounting"}, {"delivered_at_least": 1}]
}`
	yamlDoc := `version: 1
name: json-twin
seed: 3
fleet:
  copies: 1
workload:
  transport: tcp
  uows: 2
links:
  - from: src
    to: cons0
    latency: 100us
    loss: 0.5
events:
  - at: 1ms
    action: slowdown
    node: cons0
    factor: 2
assertions:
  - invariant: accounting
  - delivered_at_least: 1
`
	fj, err := Parse("t.json", []byte(jsonDoc))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	fy, err := Parse("t.yaml", []byte(yamlDoc))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	if string(fj.Marshal()) != string(fy.Marshal()) {
		t.Fatalf("front ends disagree:\n--- json:\n%s--- yaml:\n%s", fj.Marshal(), fy.Marshal())
	}
}

// minimal returns a valid scenario body with one line replaced, for
// error-path tests.
func minimalWith(replace, with string) string {
	base := `version: 1
name: tiny
fleet:
  copies: 1
workload:
  transport: tcp
`
	if replace == "" {
		return base + with
	}
	return strings.Replace(base, replace, with, 1)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"tab-indent", "version: 1\n\tname: x\n", "tab in indentation"},
		{"odd-indent", "version: 1\nfleet:\n   copies: 1\n", "odd indentation"},
		{"dup-key", "version: 1\nversion: 1\n", "duplicate key"},
		{"no-space", "version:1\n", "missing space"},
		{"no-value", "version: 1\nname: x\nfleet:\n", `key "fleet" has no value`},
		{"unterminated", "version: 1\ndescription: \"open\n", "unterminated string"},
		{"bad-escape", "version: 1\ndescription: \"a\\qb\"\n", "unknown escape"},
		{"empty", "", "empty scenario file"},
		{"mixed-block", "version: 1\nfleet:\n  copies: 1\n  - x\n", "cannot mix"},
		{"json-syntax", "{\"version\": 1,}", "invalid character"},
		{"json-trailing", "{\"version\": 1} {}", "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name, []byte(tc.doc))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v, want *ParseError", err)
			}
			if !strings.Contains(pe.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", pe.Error(), tc.want)
			}
			if pe.Line <= 0 || pe.Col <= 0 {
				t.Fatalf("error carries no position: %+v", pe)
			}
		})
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad-version", minimalWith("version: 1", "version: 2"), "unsupported version 2"},
		{"bad-name", minimalWith("name: tiny", "name: Tiny_One"), "must match"},
		{"unknown-key", minimalWith("", "frobnicate: 1\n"), `unknown key "frobnicate"`},
		{"missing-fleet", "version: 1\nname: x\nworkload:\n  transport: tcp\n",
			`missing required section "fleet"`},
		{"bad-transport", minimalWith("transport: tcp", "transport: rdma"), "not one of tcp, socketvia"},
		{"copies-range", minimalWith("copies: 1", "copies: 99"), "outside 1..64"},
		{"deadline-needs-shed", minimalWith("", "  deadline_budget: 1ms\n"),
			"requires a shedding policy"},
		{"unknown-node", minimalWith("", "links:\n  - from: src\n    to: cons7\n    loss: 0.1\n"),
			`unknown node "cons7"`},
		{"zero-profile", minimalWith("", "links:\n  - from: src\n    to: cons0\n"),
			"conditions nothing"},
		{"prob-range", minimalWith("", "links:\n  - from: src\n    to: cons0\n    loss: 1.5\n"),
			"outside [0, 1]"},
		{"jitter-alone", minimalWith("", "links:\n  - from: src\n    to: cons0\n    jitter: 1ms\n"),
			"jitter needs a latency"},
		{"reject-alone", minimalWith("", "links:\n  - from: src\n    to: cons0\n    latency: 1ms\n    mode: reject\n"),
			"needs loss"},
		{"inverted-window", minimalWith("",
			"events:\n  - at: 5ms\n    action: partition\n    between: [src, cons0]\n    until: 2ms\n"),
			"must come after"},
		{"crash-src", minimalWith("", "events:\n  - at: 1ms\n    action: crash\n    node: src\n"),
			"crashing src"},
		{"crash-all", minimalWith("", "events:\n  - at: 1ms\n    action: crash\n    node: cons0\n"),
			"no live consumer"},
		{"bad-action", minimalWith("", "events:\n  - at: 1ms\n    action: meteor\n"),
			`unknown action "meteor"`},
		{"slow-factor", minimalWith("",
			"events:\n  - at: 1ms\n    action: slowdown\n    node: cons0\n    factor: 0.5\n"),
			"must be >= 1"},
		{"bad-invariant", minimalWith("", "assertions:\n  - invariant: vibes\n"),
			`unknown invariant "vibes"`},
		{"bad-assert", minimalWith("", "assertions:\n  - delivered_exactly: 3\n"),
			`unknown assertion "delivered_exactly"`},
		{"bad-duration", minimalWith("", "  gap: 5parsecs\n"), "is not a duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name, []byte(tc.doc))
			var se *SemanticError
			if !errors.As(err, &se) {
				t.Fatalf("error = %v, want *SemanticError", err)
			}
			if !strings.Contains(se.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", se.Error(), tc.want)
			}
			if se.Line <= 0 || se.Col <= 0 {
				t.Fatalf("error carries no position: %+v", se)
			}
		})
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Time{
		"0s":     0,
		"5ms":    5 * sim.Millisecond,
		"250us":  250 * sim.Microsecond,
		"1234us": 1234 * sim.Microsecond,
		"17ns":   17,
		"1.5ms":  1500 * sim.Microsecond,
		"2s":     2 * sim.Second,
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Fatalf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "5", "ms", "-1ms", "5 ms", "5m"} {
		if _, err := parseDuration(bad); err == nil {
			t.Fatalf("parseDuration(%q) succeeded, want error", bad)
		}
	}
	// durString is the inverse on everything it emits.
	for _, d := range []sim.Time{0, 17, 250 * sim.Microsecond, 5 * sim.Millisecond,
		1500 * sim.Microsecond, 2 * sim.Second} {
		back, err := parseDuration(durString(d))
		if err != nil || back != d {
			t.Fatalf("round trip %v -> %q -> %v, %v", d, durString(d), back, err)
		}
	}
}
