package scenario

import (
	"fmt"
	"strings"

	"hpsockets/internal/chaos"
)

// Result is the outcome of running one scenario file: the harness
// report (all six chaos invariants) plus the file's own declarative
// assertions.
type Result struct {
	File     *File
	Report   chaos.Report
	Failures []string // failed assertions, in file order
}

// OK reports whether every invariant and every assertion held.
func (r Result) OK() bool {
	return r.Report.OK() && len(r.Failures) == 0
}

// Render is the deterministic human- and diff-facing summary. Two runs
// of the same file render byte-identically (that is invariant 4 plus
// the assertion layer being pure); CI diffs this output across runs
// and worker counts.
func (r Result) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s: %s\n", r.File.Name, verdict)
	b.WriteString(r.Report.Canonical())
	b.WriteByte('\n')
	for _, a := range r.File.Assertions {
		if msg := assertFailure(a, r.Report); msg != "" {
			fmt.Fprintf(&b, "assert %s: FAIL: %s\n", describeAssertion(a), msg)
		} else {
			fmt.Fprintf(&b, "assert %s: ok\n", describeAssertion(a))
		}
	}
	return b.String()
}

// RunFile compiles and runs the scenario through the replay-checked
// harness (two runs, byte-compared) and evaluates its assertions.
func RunFile(f *File) Result {
	rep := chaos.Check(f.Scenario())
	return Result{File: f, Report: rep, Failures: Evaluate(f, rep)}
}

// Evaluate checks the file's assertions against a report and returns
// one message per failed assertion.
func Evaluate(f *File, rep chaos.Report) []string {
	var out []string
	for _, a := range f.Assertions {
		if msg := assertFailure(a, rep); msg != "" {
			out = append(out, fmt.Sprintf("%s: %s", describeAssertion(a), msg))
		}
	}
	return out
}

func describeAssertion(a Assertion) string {
	switch a.Kind {
	case AssertInvariant:
		return a.Kind + " " + a.Name
	case AssertEndMax, AssertMTTRMax:
		return fmt.Sprintf("%s %s", a.Kind, durString(a.D))
	case AssertNoAbort, AssertRecovered:
		return a.Kind
	default:
		return fmt.Sprintf("%s %d", a.Kind, a.N)
	}
}

// assertFailure returns "" when the assertion holds, else the reason.
func assertFailure(a Assertion, rep chaos.Report) string {
	switch a.Kind {
	case AssertInvariant:
		prefix := invariantNames[a.Name] + ":"
		for _, v := range rep.Violations {
			if strings.HasPrefix(v, prefix) {
				return v
			}
		}
		return ""
	case AssertDeliveredMin:
		if rep.Delivered < a.N {
			return fmt.Sprintf("delivered %d < %d", rep.Delivered, a.N)
		}
	case AssertDeliveredMax:
		if rep.Delivered > a.N {
			return fmt.Sprintf("delivered %d > %d", rep.Delivered, a.N)
		}
	case AssertShedMin:
		if rep.Shed < a.N {
			return fmt.Sprintf("shed %d < %d", rep.Shed, a.N)
		}
	case AssertShedMax:
		if rep.Shed > a.N {
			return fmt.Sprintf("shed %d > %d", rep.Shed, a.N)
		}
	case AssertUnaccountedMax:
		if rep.Unaccounted > a.N {
			return fmt.Sprintf("unaccounted %d > %d", rep.Unaccounted, a.N)
		}
	case AssertRedeliveredMax:
		if rep.Redelivered > a.N {
			return fmt.Sprintf("redelivered %d > %d", rep.Redelivered, a.N)
		}
	case AssertDuplicatesMax:
		if rep.Duplicates > uint64(a.N) {
			return fmt.Sprintf("ledger suppressed %d duplicates > %d", rep.Duplicates, a.N)
		}
	case AssertEndMax:
		if rep.End > a.D {
			return fmt.Sprintf("run ended at %v > %v", rep.End, a.D)
		}
	case AssertMTTRMax:
		if rep.MTTR > a.D {
			return fmt.Sprintf("recovery took %v > %v", rep.MTTR, a.D)
		}
	case AssertRecovered:
		if rep.Restarts == 0 {
			return "no consumer copy restarted"
		}
		if rep.MTTR == 0 {
			return "restarted copy never redelivered (restart fired after quiesce?)"
		}
	case AssertNoAbort:
		if rep.Aborted {
			return "producer aborted"
		}
		if rep.GroupErr != "" {
			return "group error: " + rep.GroupErr
		}
	}
	return ""
}

// ShrinkFile reduces a failing scenario file to a minimal reproducer
// file via the chaos shrinker, preserving "some invariant or assertion
// still fails" as the predicate, and returns the reproducer (named
// <name>-min) plus the number of harness runs spent. A passing file
// comes back unchanged under its own name.
func ShrinkFile(f *File, budget int) (*File, int) {
	fails := func(c chaos.Scenario) bool {
		rep := chaos.Check(c)
		return !rep.OK() || len(Evaluate(f, rep)) > 0
	}
	shrunk, runs := chaos.ShrinkWith(f.Scenario(), budget, fails)
	if !fails(shrunk) {
		return f, runs + 2
	}
	min := FromScenario(shrunk, f.Name+"-min",
		"minimal failing reproducer shrunk from "+f.Name, f.Assertions)
	return min, runs + 2
}
