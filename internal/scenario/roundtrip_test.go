package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// libraryFiles loads every checked-in scenario under scenarios/.
func libraryFiles(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(paths) < 6 {
		t.Fatalf("want at least 6 checked-in scenarios, got %v (%v)", paths, err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// TestMarshalFixedPoint: canonical serialization is a fixed point —
// parse(marshal(parse(file))) marshals to the same bytes, and both
// parses compile to the same chaos scenario. This is what makes
// serialized reproducers and replay diffs byte-comparable.
func TestMarshalFixedPoint(t *testing.T) {
	for name, data := range libraryFiles(t) {
		f1, err := Parse(name, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b1 := f1.Marshal()
		f2, err := Parse(name+"#remarshal", b1)
		if err != nil {
			t.Fatalf("%s: reparse of canonical form: %v\n%s", name, err, b1)
		}
		b2 := f2.Marshal()
		if string(b1) != string(b2) {
			t.Fatalf("%s: marshal not a fixed point:\n--- first:\n%s--- second:\n%s",
				name, b1, b2)
		}
		if !reflect.DeepEqual(f1.Scenario(), f2.Scenario()) {
			t.Fatalf("%s: original and remarshaled files compile differently", name)
		}
	}
}

// TestFromScenarioRoundTrip: lifting a compiled scenario back to file
// form and recompiling reproduces the identical chaos scenario —
// plan entries, seeds and all — so shrunk reproducers behave exactly
// like the in-memory scenario they were shrunk from.
func TestFromScenarioRoundTrip(t *testing.T) {
	for name, data := range libraryFiles(t) {
		f, err := Parse(name, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s1 := f.Scenario()
		lifted := FromScenario(s1, f.Name, f.Description, f.Assertions)
		reparsed, err := Parse(name+"#lifted", lifted.Marshal())
		if err != nil {
			t.Fatalf("%s: lifted file does not parse: %v\n%s", name, err, lifted.Marshal())
		}
		if s2 := reparsed.Scenario(); !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: compile(lift(compile)) != compile:\n%+v\nvs\n%+v", name, s1, s2)
		}
	}
}

// TestCompileDeterminism: compiling the same bytes twice yields
// deeply equal scenarios (no hidden map iteration or shared state).
func TestCompileDeterminism(t *testing.T) {
	for name, data := range libraryFiles(t) {
		f1, err1 := Parse(name, data)
		f2, err2 := Parse(name, data)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("%s: two parses of the same bytes differ", name)
		}
		if !reflect.DeepEqual(f1.Scenario(), f2.Scenario()) {
			t.Fatalf("%s: two compiles of the same file differ", name)
		}
	}
}
