// Package determinism defines an analyzer that keeps wall-clock time
// and unseeded randomness out of simulation code.
//
// Every figure in figures_output.txt is reproducible only because the
// discrete-event simulator advances a virtual clock and every random
// choice flows from an explicit seed. A single call to time.Now or the
// global math/rand functions silently breaks that: runs stop being
// comparable and the paper's latency/partial-update numbers can no
// longer be regenerated bit-for-bit.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc: `forbid wall-clock time, global math/rand, and order-sensitive map iteration in simulation code

Flags, in non-test files:

  - calls to time.Now, time.Since, and time.Sleep: simulation code must
    use the sim kernel's virtual clock (sim.Time, Proc.Now, Proc.Sleep);
  - calls to the global top-level math/rand (and math/rand/v2)
    functions such as rand.Intn or rand.Shuffle: randomness must come
    from an explicitly seeded *rand.Rand instance (rand.New,
    rand.NewSource and friends are allowed);
  - in the deterministic packages (internal/sim, internal/core,
    internal/datacutter, internal/cluster, internal/experiments,
    internal/scenario),
    a range over a map whose body feeds an ordered output — appending
    to a slice declared outside the loop or sending on a channel —
    because map iteration order would leak into results. Iterate over
    a sorted copy of the keys instead; collecting keys into a slice
    that is subsequently passed to sort or slices is recognized as
    exactly that idiom and allowed.

The wall-clock rule exempts cmd/bench: its whole purpose is measuring
real elapsed time and allocation counts of the simulator, so it reads
the host clock by design and never feeds a simulated result.`,
	Run: run,
}

// wallClockExempt are packages allowed to read the host clock: they
// measure the simulator from outside rather than computing simulated
// results.
var wallClockExempt = []string{"cmd/bench"}

func isWallClockExempt(path string) bool {
	for _, s := range wallClockExempt {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// bannedTime are the time package functions that read or consume the
// wall clock.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Sleep": true}

// allowedRand are the top-level math/rand functions that construct
// explicitly seeded generators rather than using the global one.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// orderedPackages are the import-path suffixes subject to the
// map-iteration-order rule.
var orderedPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/datacutter",
	"internal/cluster",
	"internal/experiments",
	// The scenario DSL compiles files into fault plans; map order
	// leaking into a compiled plan would break byte-identical replay
	// of checked-in scenarios.
	"internal/scenario",
}

func inOrderedPackage(path string) bool {
	for _, s := range orderedPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	ordered := inOrderedPackage(pass.Pkg.Path())
	clockExempt := isWallClockExempt(pass.Pkg.Path())
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		framework.WithStackNode(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, clockExempt)
			case *ast.RangeStmt:
				if ordered {
					checkMapRange(pass, n, framework.EnclosingFunc(stack))
				}
			}
			return true
		})
	}
	return nil, nil
}

func isTestFile(pass *framework.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *framework.Pass, call *ast.CallExpr, clockExempt bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return // a method, e.g. (*rand.Rand).Intn — instance use is fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] && !clockExempt {
			pass.Reportf(call.Pos(),
				"call to time.%s in simulation code: use the sim kernel's virtual clock (sim.Time, Proc.Now, Proc.Sleep)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global rand.%s uses the shared unseeded generator: draw from an explicitly seeded *rand.Rand instance",
				fn.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map whose body appends
// to an outer slice or sends on a channel: map order would become
// output order.
func checkMapRange(pass *framework.Pass, rs *ast.RangeStmt, enclosing ast.Node) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
			return false
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" || len(call.Args) == 0 {
					continue
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				base, ok := call.Args[0].(*ast.Ident)
				if !ok || !declaredOutside(pass, base, rs) {
					continue
				}
				// The standard deterministic idiom collects the keys
				// and sorts them before use; a slice that is sorted
				// after the loop is fine.
				if sortedAfter(pass, enclosing, pass.TypesInfo.Uses[base], rs.End()) {
					continue
				}
				sink = "appends to " + base.Name
				return false
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rs.Pos(),
			"range over map %s inside it: map iteration order is nondeterministic and would leak into ordered output; iterate over a sorted copy of the keys",
			sink)
	}
}

// sortedAfter reports whether obj is passed to a sort or slices
// function after pos within the enclosing function.
func sortedAfter(pass *framework.Pass, enclosing ast.Node, obj types.Object, pos token.Pos) bool {
	if enclosing == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredOutside reports whether id resolves to a variable declared
// outside the range statement.
func declaredOutside(pass *framework.Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos != token.NoPos && (pos < rs.Pos() || pos >= rs.End())
}
