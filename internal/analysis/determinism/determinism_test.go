package determinism_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata", determinism.Analyzer, "determinism", "internal/sim", "internal/scenario", "faultfix")
}
