// Package seamcheck defines a program-level analyzer that enforces the
// sim/real seam: the application-side packages (internal/core,
// internal/datacutter, internal/vizapp) may reach the simulation-side
// packages (internal/sim, internal/netsim, internal/ktcp, internal/via)
// only through the surface allowlisted in seam.allow.
//
// The seam is the contract the planned sim-to-real transport refactor
// depends on: every package-level symbol the application side touches
// on the simulation side is one more point the real transport must
// reproduce. Keeping that surface in a checked-in file makes growth
// deliberate — widening the seam is a reviewed diff to seam.allow, not
// an accident of convenience — and the unused-entry rule shrinks it
// back as call sites disappear.
package seamcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"hpsockets/internal/analysis/framework"
)

// AllowFile is the path of the seam allowlist, relative to the working
// directory (cmd/hpslint overrides it with -seamcheck.allow).
var AllowFile = "seam.allow"

var Analyzer = &framework.Analyzer{
	Name: "seamcheck",
	Doc: `restrict sim-side references from app-side packages to the seam.allow surface

Consumer packages may use a package-level symbol of a target package
only when a seam.allow entry covers the pair. The file declares the
seam itself:

	consumer internal/core        # app side (defaults: core, datacutter, vizapp)
	target   internal/sim         # sim side (defaults: sim, netsim, ktcp, via)
	allow    internal/core sim.Kernel
	allow    * sim.Time           # any consumer

Package patterns match whole trailing path segments, so internal/core
matches hpsockets/internal/core. consumer/target lines replace the
defaults when present. Every allow entry must match at least one
reference — unused entries are errors, so the recorded surface never
outlives the code that needed it (enforced only when the entry's
consumer packages are part of the run, so analyzing a package subset
does not declare the surface dead). A missing seam.allow is an empty
allowlist: every seam reference is flagged.`,
	RunProgram: run,
}

// defaults describe the real repository's seam; a seam.allow that
// declares its own consumer/target lines replaces them (fixtures do).
var (
	defaultConsumers = []string{"internal/core", "internal/datacutter", "internal/vizapp"}
	defaultTargets   = []string{"internal/sim", "internal/netsim", "internal/ktcp", "internal/via"}
)

// allowEntry is one parsed allow line.
type allowEntry struct {
	line     int
	consumer string // package pattern, or "*" for any consumer
	symbol   string // pkgname.Name on the target side
	used     bool
}

type config struct {
	consumers []string
	targets   []string
	allows    []*allowEntry
	// problems are parse diagnostics, as (line, message).
	problems []lineMsg
}

type lineMsg struct {
	line int
	msg  string
}

func run(pass *framework.ProgramPass) (any, error) {
	data, err := os.ReadFile(AllowFile)
	if err != nil {
		data = nil // missing file: empty allowlist, defaults apply
	}
	cfg := parseAllow(data)

	// A virtual token file gives the allowlist's own diagnostics real
	// file:line positions.
	vf := pass.Fset.AddFile(AllowFile, -1, len(data)+1)
	vf.SetLinesForContent(append(data, '\n'))
	atLine := func(n int) token.Pos {
		if n < 1 || n > vf.LineCount() {
			return vf.Pos(0)
		}
		return vf.LineStart(n)
	}

	for _, p := range pass.Prog.Pkgs {
		if !matchAny(p.Path, cfg.consumers) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg() == p.Types {
					return true
				}
				if obj.Parent() != obj.Pkg().Scope() {
					return true // methods and fields ride on an already-allowed type
				}
				if !matchAny(obj.Pkg().Path(), cfg.targets) {
					return true
				}
				sym := obj.Pkg().Name() + "." + obj.Name()
				if e := cfg.lookup(p.Path, sym); e != nil {
					e.used = true
					return true
				}
				pass.Reportf(id.Pos(),
					"%s reaches %s outside the seam surface: widen the seam deliberately with `allow %s %s` in %s, or route through an allowlisted symbol",
					p.Path, sym, consumerPattern(p.Path, cfg.consumers), sym, AllowFile)
				return true
			})
		}
	}

	for _, pr := range cfg.problems {
		pass.Report(framework.Diagnostic{Pos: atLine(pr.line), Message: pr.msg})
	}
	// An entry is provably unused only when its consumer packages were
	// actually loaded: a run over a package subset (hpslint ./cmd/foo)
	// sees no references from packages it did not load, and must not
	// declare the whole surface dead.
	consumerLoaded := func(pattern string) bool {
		for _, p := range pass.Prog.Pkgs {
			if pattern == "*" {
				if matchAny(p.Path, cfg.consumers) {
					return true
				}
			} else if matchPath(p.Path, pattern) {
				return true
			}
		}
		return false
	}
	for _, e := range cfg.allows {
		if !e.used && consumerLoaded(e.consumer) {
			pass.Report(framework.Diagnostic{
				Pos: atLine(e.line),
				Message: fmt.Sprintf(
					"unused seam.allow entry `allow %s %s`: no consumer references it, delete the entry",
					e.consumer, e.symbol),
			})
		}
	}
	return nil, nil
}

// parseAllow reads the allowlist. Lines are whitespace-separated
// fields; '#' starts a comment; blank lines are skipped.
func parseAllow(data []byte) *config {
	cfg := &config{}
	for i, raw := range strings.Split(string(data), "\n") {
		line := i + 1
		if idx := strings.IndexByte(raw, '#'); idx >= 0 {
			raw = raw[:idx]
		}
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "consumer":
			if len(fields) != 2 {
				cfg.problems = append(cfg.problems, lineMsg{line, "seam.allow: consumer takes exactly one package pattern"})
				continue
			}
			cfg.consumers = append(cfg.consumers, fields[1])
		case "target":
			if len(fields) != 2 {
				cfg.problems = append(cfg.problems, lineMsg{line, "seam.allow: target takes exactly one package pattern"})
				continue
			}
			cfg.targets = append(cfg.targets, fields[1])
		case "allow":
			if len(fields) != 3 || !strings.Contains(fields[2], ".") {
				cfg.problems = append(cfg.problems, lineMsg{line, "seam.allow: want `allow <consumer-pattern> <pkg.Symbol>`"})
				continue
			}
			cfg.allows = append(cfg.allows, &allowEntry{line: line, consumer: fields[1], symbol: fields[2]})
		default:
			cfg.problems = append(cfg.problems, lineMsg{line, "seam.allow: unknown directive " + fields[0]})
		}
	}
	if cfg.consumers == nil {
		cfg.consumers = defaultConsumers
	}
	if cfg.targets == nil {
		cfg.targets = defaultTargets
	}
	sort.Slice(cfg.allows, func(i, j int) bool { return cfg.allows[i].line < cfg.allows[j].line })
	return cfg
}

// lookup finds the allow entry covering one consumer package's use of
// symbol, preferring an exact consumer pattern over the wildcard.
func (cfg *config) lookup(consumerPath, symbol string) *allowEntry {
	var wild *allowEntry
	for _, e := range cfg.allows {
		if e.symbol != symbol {
			continue
		}
		if e.consumer == "*" {
			if wild == nil {
				wild = e
			}
			continue
		}
		if matchPath(consumerPath, e.consumer) {
			return e
		}
	}
	return wild
}

// matchPath reports whether path matches pattern: equal, or pattern is
// a whole trailing segment sequence of path.
func matchPath(path, pattern string) bool {
	return path == pattern || strings.HasSuffix(path, "/"+pattern)
}

func matchAny(path string, patterns []string) bool {
	for _, p := range patterns {
		if matchPath(path, p) {
			return true
		}
	}
	return false
}

// consumerPattern names the configured consumer pattern that matched
// path, for the suggested allow line.
func consumerPattern(path string, patterns []string) string {
	for _, p := range patterns {
		if matchPath(path, p) {
			return p
		}
	}
	return path
}
