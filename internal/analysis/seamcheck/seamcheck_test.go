package seamcheck

import (
	"strings"
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/framework"
)

// TestSeamCheck drives the analyzer through want comments with an
// allowlist whose every entry is referenced.
func TestSeamCheck(t *testing.T) {
	defer func(old string) { AllowFile = old }(AllowFile)
	AllowFile = "../testdata/seam_allow_good"
	analysistest.Run(t, "../testdata", Analyzer, "seamcore")
}

// runOn runs the analyzer over the fixture program with a given
// allowlist and returns the rendered diagnostics.
func runOn(t *testing.T, allowFile string) []string {
	t.Helper()
	defer func(old string) { AllowFile = old }(AllowFile)
	AllowFile = allowFile
	prog := analysistest.Load(t, "../testdata", "seamcore")
	if prog == nil {
		t.Fatal("fixture program did not load")
	}
	var got []string
	pass := &framework.ProgramPass{
		Analyzer: Analyzer,
		Prog:     prog,
		Fset:     prog.Fset,
		Report: func(d framework.Diagnostic) {
			pos := prog.Fset.Position(d.Pos)
			got = append(got, strings.TrimPrefix(pos.Filename, "../testdata/")+":"+d.Message)
		},
	}
	if _, err := Analyzer.RunProgram(pass); err != nil {
		t.Fatalf("seamcheck: %v", err)
	}
	return got
}

// TestUnusedEntryAndParseErrors checks the allowlist's own hygiene
// diagnostics: a never-referenced entry and a malformed line are both
// reported at their positions in the allow file.
func TestUnusedEntryAndParseErrors(t *testing.T) {
	got := runOn(t, "../testdata/seam_allow_unused")
	wantSubstrings := []string{
		"seamcore reaches seamsim.Tuning outside the seam surface", // Hidden is allowed here, Tuning is not
		"unused seam.allow entry `allow seamcore seamsim.Spare`",
		"seam.allow: unknown directive badline",
	}
	for _, w := range wantSubstrings {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q in %q", w, got)
		}
	}
	for _, g := range got {
		if strings.Contains(g, "seamsim.Hidden outside") {
			t.Errorf("seamsim.Hidden is allowlisted in this file but was flagged: %s", g)
		}
	}
	if len(got) != len(wantSubstrings) {
		t.Errorf("got %d diagnostics, want %d: %q", len(got), len(wantSubstrings), got)
	}
	// Hygiene diagnostics carry allow-file positions.
	for _, g := range got[1:] {
		if !strings.HasPrefix(g, "seam_allow_unused:") {
			t.Errorf("allowlist diagnostic not positioned in the allow file: %s", g)
		}
	}
}

// TestEmptyAllowlist: a seam with no allow entries flags every
// reference across it, so gutting seam.allow fails loudly. (A missing
// file behaves the same way on the real repo, where the default
// consumer/target patterns apply.)
func TestEmptyAllowlist(t *testing.T) {
	got := runOn(t, "../testdata/seam_allow_empty")
	if len(got) == 0 {
		t.Fatal("empty allowlist produced no diagnostics; the seam is unenforced")
	}
	for _, w := range []string{"seamsim.Kernel", "seamsim.NewKernel", "seamsim.Time", "seamsim.Hidden", "seamsim.Tuning"} {
		found := false
		for _, g := range got {
			if strings.Contains(g, w+" outside the seam surface") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected %s to be flagged with an empty allowlist, got %q", w, got)
		}
	}
}
