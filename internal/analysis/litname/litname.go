// Package litname defines an analyzer that requires compile-time
// constant component and metric/span names at every hpsmon call site.
//
// The telemetry exports are canonically ordered by (component, name),
// and the disabled-path cost contract is "one pointer load, zero
// allocations". Both break if names are built at runtime: a
// fmt.Sprintf name allocates on the hot path even with telemetry off
// (the argument is evaluated before the nil check), and a name that
// varies run-to-run perturbs the byte-identical export. Dynamic
// context belongs in the detail argument, guarded behind
// hpsmon.Enabled.
package litname

import (
	"go/ast"
	"go/types"
	"strings"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "litname",
	Doc: `require constant component and name arguments to hpsmon helpers

The component and name arguments of hpsmon.Begin, Count, GaugeSet,
Observe, Instant and InstantK must be compile-time string constants
(literals or named constants). Runtime-built names allocate on the
telemetry-off hot path and destabilize the canonical export order;
dynamic context goes in the detail argument instead.`,
	Run: run,
}

// nameArgs maps each checked hpsmon helper to the indices of its
// component and name parameters (the leading parameter is the proc or
// kernel). The flow helpers are absent on purpose: their stream
// argument is a correlation key, dynamic by design.
var nameArgs = map[string][]int{
	"Begin":    {1, 2},
	"Count":    {1, 2},
	"GaugeSet": {1, 2},
	"Observe":  {1, 2},
	"Instant":  {1, 2},
	"InstantK": {1, 2},
}

func run(pass *framework.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "hpsmon") {
		// The package's own implementation and tests manipulate names
		// as data; the contract binds instrumentation call sites.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "hpsmon") {
				return true
			}
			idxs, ok := nameArgs[fn.Name()]
			if !ok {
				return true
			}
			for _, i := range idxs {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
					continue
				}
				which := "component"
				if i == idxs[len(idxs)-1] && len(idxs) > 1 {
					which = "name"
				}
				pass.Reportf(arg.Pos(),
					"hpsmon.%s %s argument must be a compile-time string constant (dynamic context goes in the detail argument)",
					fn.Name(), which)
			}
			return true
		})
	}
	return nil, nil
}
