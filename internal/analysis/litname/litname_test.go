package litname_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/litname"
)

func TestLitName(t *testing.T) {
	analysistest.Run(t, "../testdata", litname.Analyzer, "litfix")
}
