// Package bytebuf is a fixture stub mirroring the retention contract
// of hpsockets/internal/bytebuf for analyzer tests.
package bytebuf

// Buffer is a stub byte-stream buffer.
type Buffer struct {
	data [][]byte
}

// AppendBytes adds real data to the tail. The buffer keeps a reference
// to data; callers must not mutate it afterwards.
func (b *Buffer) AppendBytes(data []byte) {
	b.data = append(b.data, data)
}

// AppendSize adds n size-only bytes and retains nothing.
func (b *Buffer) AppendSize(n int) {}
