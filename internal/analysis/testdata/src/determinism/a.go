// Fixture for the determinism analyzer: wall-clock and global-rand
// rules (the map-order rule is exercised in the internal/sim fixture,
// where the package scope applies).
package determinism

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()         // want `call to time\.Now in simulation code`
	time.Sleep(5 * time.Second) // want `call to time\.Sleep in simulation code`
	return time.Since(start)    // want `call to time\.Since in simulation code`
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle uses the shared unseeded generator`
	return rand.Intn(n)                // want `global rand\.Intn uses the shared unseeded generator`
}

// Near miss: drawing from an explicitly seeded instance is the
// sanctioned pattern and must not be flagged.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}

// Near miss: pure duration arithmetic never reads the wall clock.
func scale(d time.Duration) time.Duration {
	return d * 3 / 2
}

// Near miss: the parallel experiment runner's per-cell idiom. Every
// cell derives its own generator from the base seed and its cell
// index, so results are identical at any worker count — the sanctioned
// way to randomize concurrent experiment cells.
func perCell(seed int64, cells int) []int {
	out := make([]int, cells)
	for cell := range out {
		rng := rand.New(rand.NewSource(seed + int64(cell)))
		out[cell] = rng.Intn(100)
	}
	return out
}
