// Package sim is a fixture stub mirroring the blocking surface of
// hpsockets/internal/sim for analyzer tests. The analyzers match the
// package by name ("sim") and the type by name ("Proc"), so this stub
// exercises exactly the same code paths as the real package.
package sim

// Time is virtual time.
type Time int64

// Signal is a stub of the sim signal.
type Signal struct{}

// Monitor is a stub of the sim telemetry monitor interface; the
// offpath analyzer matches it by name and package name.
type Monitor interface {
	Count(at Time, component, name string, delta int64)
	Gauge(at Time, component, name string, value int64)
}

// Profiler is a stub of the sim scheduler profiler interface; the
// offpath analyzer matches it by name and package name, exactly like
// Monitor.
type Profiler interface {
	Park(at Time, p *Proc, edge string)
	Handoff(at Time, edge string)
}

// Kernel is a stub of the sim kernel.
type Kernel struct {
	mon  Monitor
	prof Profiler
}

// Monitor reports the attached monitor, nil when telemetry is off.
func (k *Kernel) Monitor() Monitor { return k.mon }

// Profiler reports the attached profiler, nil when profiling is off.
func (k *Kernel) Profiler() Profiler { return k.prof }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return 0 }

// Go starts fn as a new process, like the real Kernel.Go.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{}
	fn(p)
	return p
}

// Proc is a stub simulation process.
type Proc struct{}

// Now is non-blocking.
func (p *Proc) Now() Time { return 0 }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Time) {}

// Wait blocks until the signal fires.
func (p *Proc) Wait(s *Signal) any { return nil }

// WaitTimeout blocks until the signal fires or d elapses.
func (p *Proc) WaitTimeout(s *Signal, d Time) (any, bool) { return nil, false }

// Join blocks until q terminates.
func (p *Proc) Join(q *Proc) {}

// Queue is a stub of the sim bounded queue.
type Queue[T any] struct{}

// NewQueue creates a queue; capacity 0 means unbounded.
func NewQueue[T any](k *Kernel, capacity int) *Queue[T] { return &Queue[T]{} }

// Put blocks while a bounded queue is full; false means closed.
func (q *Queue[T]) Put(p *Proc, item T) bool { return true }

// TryPut adds without blocking; false means the queue was full.
func (q *Queue[T]) TryPut(item T) bool { return true }

// PutTimeout blocks at most d; false means full past the deadline.
func (q *Queue[T]) PutTimeout(p *Proc, item T, d Time) bool { return true }

// Get blocks for the next item.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) { var zero T; return zero, false }

// TryGet polls for the next item.
func (q *Queue[T]) TryGet() (item T, ok bool) { var zero T; return zero, false }
