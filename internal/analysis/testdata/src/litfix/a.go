// Fixture for the litname analyzer.
package litfix

import (
	"fmt"

	"hpsmon"
	"sim"
)

const comp = "ktcp" // a named constant is still compile-time

// Canonical call sites: literal or named-constant names.
func good(p *sim.Proc, k *sim.Kernel, peer string) {
	sc := hpsmon.Begin(p, "ktcp", "snd-stall", peer) // dynamic detail is fine
	sc.End()
	hpsmon.Count(k, comp, "segments.out", 1)
	hpsmon.GaugeSet(k, "via", "credits", 3)
	hpsmon.Observe(k, comp, "rcv"+"-wait", 0) // constant folding still counts
	hpsmon.Instant(p, "fault", "node-crash", peer)
	hpsmon.InstantK(k, "fault", "node-crash", peer)
	// Flow keys are correlation data, dynamic by design.
	hpsmon.FlowSend(p, peer, 0, 1)
}

// Runtime-built names allocate on the telemetry-off hot path and
// destabilize the canonical export order.
func bad(p *sim.Proc, k *sim.Kernel, peer string, i int) {
	hpsmon.Count(k, peer, "segments.out", 1)               // want `hpsmon\.Count component argument must be a compile-time string constant`
	hpsmon.Count(k, "ktcp", fmt.Sprintf("seg-%d", i), 1)   // want `hpsmon\.Count name argument must be a compile-time string constant`
	hpsmon.Observe(k, "ktcp", "wait-"+peer, 0)             // want `hpsmon\.Observe name argument must be a compile-time string constant`
	sc := hpsmon.Begin(p, componentOf(i), "snd-stall", "") // want `hpsmon\.Begin component argument must be a compile-time string constant`
	sc.End()
	hpsmon.InstantK(k, "fault", name(), "") // want `hpsmon\.InstantK name argument must be a compile-time string constant`
}

func componentOf(i int) string { return "c" }
func name() string             { return "n" }
