// Package hpsmon is a fixture stub mirroring the helper surface of
// hpsockets/internal/hpsmon for analyzer tests. The litname analyzer
// matches callees by package-path suffix ("hpsmon") and function name,
// so this stub exercises the same code paths as the real package.
package hpsmon

import "sim"

// Scope is a stub of the hpsmon span scope.
type Scope struct{}

// End closes the span.
func (s Scope) End() {}

// Enabled reports whether a monitor is attached.
func Enabled(k *sim.Kernel) bool { return false }

// Begin opens a span.
func Begin(p *sim.Proc, component, name, detail string) Scope { return Scope{} }

// Count adds delta to a counter.
func Count(k *sim.Kernel, component, name string, delta int64) {}

// GaugeSet records a gauge value.
func GaugeSet(k *sim.Kernel, component, name string, value int64) {}

// Observe adds a histogram sample.
func Observe(k *sim.Kernel, component, name string, v sim.Time) {}

// Instant records a zero-duration event on a process.
func Instant(p *sim.Proc, component, name, detail string) {}

// InstantK records a zero-duration event from kernel context.
func InstantK(k *sim.Kernel, component, name, detail string) {}

// FlowSend registers a flow origin (dynamic key allowed).
func FlowSend(p *sim.Proc, stream string, uow int, tag int64) {}

// FlowRecv resolves a flow's consumer side.
func FlowRecv(p *sim.Proc, stream string, uow int, tag int64) {}

// Options configures a collector.
type Options struct{ Spans bool }

// Collector is a stub monitor implementation.
type Collector struct{}

// NewCollector builds a monitor. It is a setup-path constructor, not
// an instrumentation hook.
func NewCollector(name string, opts Options) *Collector { return &Collector{} }
