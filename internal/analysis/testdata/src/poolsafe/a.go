// Fixture for the poolsafe analyzer.
package poolsafe

type segment struct {
	kind int
	data []byte
}

type stack struct{ pool []*segment }

// The release primitives genuinely retain their argument — that is
// what makes them releases under the summary engine; see b.go for a
// releaser-named no-op that is not one.
func (st *stack) freeSeg(s *segment) { st.pool = append(st.pool, s) }
func (st *stack) allocSeg() *segment { return &segment{} }
func (st *stack) handle(s *segment)  {}

var packetPool []*segment

func freePacket(pk *segment) { packetPool = append(packetPool, pk) }

// Reading a field after release is the pooled use-after-free.
func readAfter(st *stack, seg *segment) int {
	st.freeSeg(seg)
	return seg.kind // want `use of seg after freeSeg released it to the pool`
}

// Writing a field after release corrupts whoever owns the object next.
func writeAfter(st *stack, seg *segment) {
	st.freeSeg(seg)
	seg.kind = 3 // want `use of seg after freeSeg released it to the pool`
}

// Passing the object to another call after release leaks it to code
// that believes it is live; plain functions count as releasers too.
func passAfter(st *stack, seg *segment) {
	freePacket(seg)
	st.handle(seg) // want `use of seg after freePacket released it to the pool`
}

// A double free is a use of the first release's dead object.
func doubleFree(st *stack, seg *segment) {
	st.freeSeg(seg)
	st.freeSeg(seg) // want `use of seg after freeSeg released it to the pool`
}

// Near miss: the release-and-bail idiom. Freeing on a path that leaves
// the enclosing block must not taint the live path after it — this is
// exactly how the softnet and ack-transmit loops drop bad segments.
func freeAndBail(st *stack, segs []*segment, bad func(*segment) bool) {
	for _, seg := range segs {
		if bad(seg) {
			st.freeSeg(seg)
			continue
		}
		seg.kind = 1
		st.handle(seg)
	}
}

// Near miss: using the object up to (and inside) the release call is
// the normal consume-then-free shape.
func useThenFree(st *stack, seg *segment) int {
	k := seg.kind
	st.handle(seg)
	st.freeSeg(seg)
	return k
}

// Near miss: reassigning the variable to a fresh allocation ends the
// tracking; the new object is live.
func refill(st *stack, seg *segment) {
	st.freeSeg(seg)
	seg = st.allocSeg()
	seg.kind = 2
}

// Near miss: a release followed by return cannot taint later code in
// an outer scope.
func freeAndReturn(st *stack, seg *segment, corrupt bool) {
	if corrupt {
		st.freeSeg(seg)
		return
	}
	st.handle(seg)
}

// Near miss: the else arm runs instead of the release, never after it
// — this is the kernel compaction loop's release-or-keep shape.
func freeOrKeep(st *stack, segs []*segment, dead func(*segment) bool) []*segment {
	var live []*segment
	for _, seg := range segs {
		if dead(seg) {
			st.freeSeg(seg)
		} else {
			live = append(live, seg)
		}
	}
	return live
}

// Near miss: a release in one case clause followed by return reaches
// neither the sibling clauses nor the code after the switch — the
// fault-judgement shape in frame transmit.
func freeInCase(st *stack, seg *segment, verdict int) {
	switch verdict {
	case 0:
		st.freeSeg(seg)
		return
	case 1:
		seg.kind = 9
	}
	st.handle(seg)
}

// A release in a case clause that falls out of the switch taints the
// code after it.
func freeInCaseFallOut(st *stack, seg *segment, verdict int) {
	switch verdict {
	case 0:
		st.freeSeg(seg)
	}
	st.handle(seg) // want `use of seg after freeSeg released it to the pool`
}
