// Interprocedural fixtures for the poolsafe analyzer: release points
// resolved through callee summaries rather than callee names.
package poolsafe

// recycle unconditionally hands its segment to the free-list, so its
// summary marks the parameter released and callers are tainted just as
// if they had called freeSeg themselves.
func recycle(st *stack, seg *segment) {
	st.freeSeg(seg)
}

// True positive the name-based analyzer missed: the release happens
// two frames down, behind a wrapper that is not itself releaser-named.
func wrapperRelease(st *stack, seg *segment) int {
	recycle(st, seg)
	return seg.kind // want `use of seg after recycle released it to the pool`
}

// meter counts frees without pooling anything. Its freeSeg never
// retains the argument, so despite the releaser name it is not a
// release point.
type meter struct{ frees int }

func (m *meter) freeSeg(s *segment) { m.frees++ }

// Resolved false positive: the intraprocedural analyzer matched the
// callee name alone and flagged this use; the summary engine sees the
// no-op body and keeps the segment live.
func countedUse(m *meter, seg *segment) int {
	m.freeSeg(seg)
	return seg.kind
}

// maybeRecycle releases only on the bad path, so "releases its
// parameter" is not a fact of the function and callers are not tainted
// — may-release is too weak to flag every use after the call.
func maybeRecycle(st *stack, seg *segment, bad bool) {
	if bad {
		st.freeSeg(seg)
	}
}

func conditionalHelper(st *stack, seg *segment, bad bool) int {
	maybeRecycle(st, seg, bad)
	return seg.kind
}

// Near miss: a deferred release runs at return, after every use in the
// body, so it taints nothing here (callers after the call are tainted
// through recycleAtReturn's summary instead).
func recycleAtReturn(st *stack, seg *segment) int {
	defer st.freeSeg(seg)
	seg.kind = 7
	return seg.kind
}

// The deferred release is still a release fact of the helper, so a
// caller using the segment after the helper returns is flagged.
func useAfterDeferredHelper(st *stack, seg *segment) int {
	recycleAtReturn(st, seg)
	return seg.kind // want `use of seg after recycleAtReturn released it to the pool`
}
