// Fixture for the determinism analyzer's map-iteration-order rule.
// The import path "internal/sim" places it inside the deterministic
// package scope.
package sim

import "sort"

func orderedAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map appends to out`
		out = append(out, k)
	}
	return out
}

func orderedSend(m map[string]int, ch chan int) {
	for _, v := range m { // want `range over map sends on a channel`
		ch <- v
	}
}

// Near miss: aggregation is insensitive to iteration order.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Near miss: the appended slice is local to each iteration, so no
// cross-iteration order escapes.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// Near miss: the canonical fix — collect the keys, sort, then emit in
// sorted order.
func sortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
