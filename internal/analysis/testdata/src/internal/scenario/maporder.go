// Fixture for the determinism analyzer over scenario-DSL-shaped code.
// The import path "internal/scenario" places it inside the
// deterministic package scope: a compiled fault plan whose entry
// order came from map iteration would break byte-identical replay of
// checked-in scenario files.
package scenario

import (
	"sort"
	"time"
)

type condition struct {
	src, dst string
	loss     float64
}

// compileConditions builds plan entries straight out of a map range:
// the plan's slice order — and with it the serialized scenario — would
// change from run to run.
func compileConditions(links map[string]float64) []condition {
	var out []condition
	for link, loss := range links { // want `range over map appends to out`
		out = append(out, condition{src: link, loss: loss})
	}
	return out
}

// stampScenario writes a wall-clock timestamp into a scenario header,
// which would make two serializations of the same file differ.
func stampScenario() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in simulation code`
}

// Near miss: the canonical fix — collect the map's keys, sort them,
// then emit entries in sorted order.
func compileSorted(links map[string]float64) []condition {
	keys := make([]string, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]condition, 0, len(keys))
	for _, k := range keys {
		out = append(out, condition{src: k, loss: links[k]})
	}
	return out
}

// Near miss: order-insensitive aggregation over a map is fine.
func totalLoss(links map[string]float64) float64 {
	total := 0.0
	for _, p := range links {
		total += p
	}
	return total
}
