// Package core is a fixture stub mirroring the connection surface of
// hpsockets/internal/core for analyzer tests.
package core

// Conn is a stub byte-stream connection.
type Conn interface {
	Send(data []byte) error
	Close() error
}

// Endpoint is a stub transport attachment.
type Endpoint struct{}

// Dial opens a stub connection.
func (e *Endpoint) Dial(remote string) (Conn, error) { return nil, nil }

// CloseQuiet closes c and discards the error, so analyzer fixtures can
// exercise a close that happens in another package.
func CloseQuiet(c Conn) { _ = c.Close() }
