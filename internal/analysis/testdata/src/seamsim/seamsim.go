// Package seamsim is a fixture stub standing in for a simulation-side
// package behind the seam (internal/sim and friends).
package seamsim

// Kernel is the allowlisted entry point consumers may construct.
type Kernel struct{ now int64 }

// NewKernel is part of the allowed seam surface in the fixtures.
func NewKernel() *Kernel { return &Kernel{} }

// Now is allowed to every consumer in the fixtures.
func (k *Kernel) Now() int64 { return k.now }

// Time is a package-level clock reading, allowed via the wildcard.
func Time() int64 { return 0 }

// Hidden is deliberately outside the fixture allowlist.
func Hidden() {}

// Tuning is a package-level knob outside the fixture allowlist.
var Tuning = 16
