// Fixture for the shedcheck analyzer.
package shedfix

import "sim"

var shedCount int

// Discarded results: every bare-statement drop is flagged.
func bad(q *sim.Queue[int], p *sim.Proc) {
	q.TryPut(1)            // want `result of sim\.Queue\.TryPut discarded`
	q.PutTimeout(p, 2, 10) // want `result of sim\.Queue\.PutTimeout discarded`
}

// An explicit blank assignment is the sanctioned opt-out for queues
// that are unbounded by construction: visible, greppable, reviewable.
func deliberateDiscard(q *sim.Queue[int], p *sim.Proc) {
	_ = q.TryPut(3)
	_ = q.PutTimeout(p, 4, 10)
}

// Handled results: conditions, named variables, returns and call
// arguments all count as deliberate shedding.
func good(q *sim.Queue[int], p *sim.Proc) bool {
	if !q.TryPut(1) {
		shedCount++
	}
	ok := q.PutTimeout(p, 2, 10)
	if !ok {
		shedCount++
	}
	record(q.TryPut(3))
	return q.PutTimeout(p, 4, 10)
}

func record(admitted bool) {
	if !admitted {
		shedCount++
	}
}

// The blocking Put's result reports a closed queue, not overload;
// ignoring it on shutdown paths is conventional and not flagged.
func blockingPut(q *sim.Queue[int], p *sim.Proc) {
	q.Put(p, 1)
}

// Same-named methods on non-sim types are out of scope.
type other struct{}

func (other) TryPut(int) bool { return true }

func unrelated(o other) {
	o.TryPut(1)
}
