// Fixture for the procdiscipline analyzer.
package procfix

import "sim"

type server struct {
	p *sim.Proc
}

// A proc may call its own blocking methods: parameter form.
func ownParam(p *sim.Proc, s *sim.Signal) {
	p.Sleep(3)
	p.Wait(s)
	p.WaitTimeout(s, 10)
}

// A raw go closure must never block a proc, even the enclosing
// function's own.
func rawGo(p *sim.Proc) {
	go func() { // spawned behind the kernel's back
		p.Sleep(1) // want `blocking sim\.Proc method Sleep called inside a raw go closure`
	}()
}

// A kernel worker closure owns its proc parameter; blocking a captured
// outer proc from inside it runs on the wrong goroutine.
func wrongProcInWorker(k *sim.Kernel, outer *sim.Proc) {
	k.Go("w", func(p *sim.Proc) {
		p.Sleep(1)     // own proc: fine
		outer.Sleep(1) // want `Sleep called on outer, which is not the enclosing function's own`
	})
}

// A function without a *sim.Proc parameter has no proc of its own to
// block.
func fieldProc(s *server) {
	s.p.Sleep(1) // want `Sleep called in a function with no \*sim\.Proc parameter or receiver`
}

// Even with a proc parameter in scope, blocking a proc dug out of a
// struct is not the enclosing function's own.
func structProc(p *sim.Proc, s *server) {
	s.p.Wait(nil) // want `Wait called on a proc obtained from an expression`
}

// Near miss: a plain closure with no proc parameters runs on its
// creator's goroutine (called inline or deferred), so it inherits the
// enclosing function's proc.
func inlineHelper(p *sim.Proc, s *sim.Signal) {
	helper := func() { p.Sleep(2) }
	helper()
	defer func() { p.Wait(s) }()
	func() { p.Join(p) }()
}

// Near miss: non-blocking Proc methods are unrestricted.
func nonBlocking(s *server) sim.Time {
	return s.p.Now()
}
