// Fixture for the bufalias analyzer.
package buffix

import "bytebuf"

// Writing through the slice after hand-off tears the queued chunk.
func writeAfter(b *bytebuf.Buffer, data []byte) {
	b.AppendBytes(data)
	data[0] = 0xff // want `element write after data was passed to bytebuf\.Buffer\.AppendBytes`
}

// A reslice shares the backing array, so the hand-off taints the base
// variable; copy is a write through it.
func copyAfter(b *bytebuf.Buffer, data, src []byte) {
	b.AppendBytes(data[:4])
	copy(data, src) // want `copy into it after data was passed to bytebuf\.Buffer\.AppendBytes`
}

// Near miss: mutating before the hand-off is the normal way to build a
// frame.
func writeBefore(b *bytebuf.Buffer, data []byte) {
	data[0] = 0x01
	data[1] = 0x02
	b.AppendBytes(data)
}

// Near miss: reassigning the variable to a fresh allocation ends the
// aliasing; writes through the new slice are safe.
func freshSlice(b *bytebuf.Buffer, data []byte) {
	b.AppendBytes(data)
	data = make([]byte, 16)
	data[0] = 0xff
	b.AppendBytes(data)
}

// Near miss: AppendSize retains nothing.
func sizeOnly(b *bytebuf.Buffer, data []byte) {
	b.AppendSize(len(data))
	data[0] = 0xff
}
