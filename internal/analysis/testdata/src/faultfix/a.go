// Fixture for the determinism analyzer over fault-injection-shaped
// code: per-frame fault judgment must draw from an explicitly seeded
// generator, never the wall clock or the global rand.
package faultfix

import (
	"math/rand"
	"time"
)

// plan mirrors the shape of a fault plan: a seed plus probabilities.
type plan struct {
	seed     int64
	dropProb float64
}

type injector struct {
	rng  *rand.Rand
	prob float64
}

// install compiles a plan with the sanctioned seeded-generator
// pattern; nothing here may be flagged.
func install(pl plan) *injector {
	return &injector{
		rng:  rand.New(rand.NewSource(pl.seed)),
		prob: pl.dropProb,
	}
}

// judge decides one frame's fate from the seeded stream — the
// sanctioned pattern.
func (in *injector) judge() bool {
	return in.rng.Float64() < in.prob
}

// wallClockJudge stamps fault decisions with host time, which would
// make two runs of the same plan diverge.
func wallClockJudge(in *injector) (bool, time.Time) {
	deadline := time.Now() // want `call to time\.Now in simulation code`
	return in.judge(), deadline
}

// globalRandJudge draws from the shared unseeded generator: the drop
// pattern would change from run to run.
func globalRandJudge(prob float64) bool {
	return rand.Float64() < prob // want `global rand\.Float64 uses the shared unseeded generator`
}

// Near miss: jitter computed from an injected seeded generator is
// fine, including re-deriving child streams from the root seed.
func childStreams(seed int64, n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(seed ^ int64(i+1)))
	}
	return out
}
