// Fixture for the call-graph builder tests: interface dispatch,
// cross-package edges and summary propagation.
package chafix

import "core"

// Closer is dispatched through CHA: both implementations below are
// found by the builder.
type Closer interface {
	Shut(c core.Conn)
}

// Tidy closes the conn it is given.
type Tidy struct{}

func (Tidy) Shut(c core.Conn) { c.Close() }

// Messy drops the conn on the floor.
type Messy struct{}

func (Messy) Shut(c core.Conn) { _ = c == nil }

// ShutAll dispatches Shut through the interface: because Messy does
// not close, the conn cannot be considered closed here.
func ShutAll(cl Closer, c core.Conn) {
	cl.Shut(c)
}

// CloseRemote closes through another package's helper, so the fact
// crosses a package boundary via the serialized cache.
func CloseRemote(c core.Conn) {
	core.CloseQuiet(c)
}

// Stash retains the conn in a package global.
var stash []core.Conn

func Stash(c core.Conn) {
	stash = append(stash, c)
}

// Fresh allocates; Flat does not.
func Fresh(n int) []int { return make([]int, n) }

func Flat(a, b int) int { return a + b }
