// Fixture for //hpslint:ignore suppression directives.
package ignorefix

import "core"

// The directive on the offending line suppresses the finding.
func suppressed(e *core.Endpoint) {
	c, _ := e.Dial("b") //hpslint:ignore closecheck adopted by the teardown sweep
	c.Send(nil)
}

// A directive on its own line covers the statement below it.
func lineAbove(e *core.Endpoint) {
	//hpslint:ignore closecheck covered by the session reaper
	c, _ := e.Dial("b")
	c.Send(nil)
}

// No directive: the finding is reported.
func reported(e *core.Endpoint) {
	c, _ := e.Dial("b")
	c.Send(nil)
}

// A directive for a different analyzer does not suppress closecheck,
// and is itself reported as unused.
func wrongAnalyzer(e *core.Endpoint) {
	c, _ := e.Dial("b") //hpslint:ignore poolsafe belt and braces that match nothing
	c.Send(nil)
}

//hpslint:ignore closecheck nothing on the next line leaks

//hpslint:ignore

//hpslint:ignore nosuch the analyzer name is made up
