// Interprocedural fixtures for the closecheck analyzer: hand-offs
// resolved through callee summaries rather than assumed to escape.
package closefix

import "core"

var droppedConns int

// drop inspects the conn and forgets it: its summary neither closes
// nor retains the parameter, so the close obligation never leaves the
// caller.
func drop(c core.Conn) {
	if c != nil {
		droppedConns++
	}
}

// True positive the intraprocedural analyzer missed: passing the conn
// to any function used to count as an escape, hiding this leak.
func droppedOnFloor(e *core.Endpoint) {
	c, _ := e.Dial("b") // want `core\.Conn c is never closed: drop neither closes nor retains it`
	drop(c)
}

// discard drops transitively — its only use of the conn is handing it
// to drop, whose summary shows the conn goes nowhere.
func discard(c core.Conn) {
	drop(c)
}

func droppedTransitively(e *core.Endpoint) {
	c, _ := e.Dial("b") // want `core\.Conn c is never closed: discard neither closes nor retains it`
	discard(c)
}

// Resolved false positive: a bound Close method value hands off the
// close obligation; the intraprocedural analyzer saw neither a Close
// call nor an escape and flagged it.
func methodValue(e *core.Endpoint) error {
	c, _ := e.Dial("b")
	f := c.Close
	defer f()
	return c.Send(nil)
}

// Near miss: the helper lives in another package, so its summary
// arrives through the serialized fact cache.
func closedAcrossPackages(e *core.Endpoint) {
	c, _ := e.Dial("b")
	c.Send(nil)
	core.CloseQuiet(c)
}

// closeIfIdle closes only on one path, but "closes on some path" is
// the same contract the analyzer applies within a single function.
func closeIfIdle(c core.Conn, idle bool) {
	if idle {
		c.Close()
	}
}

func conditionallyClosed(e *core.Endpoint, idle bool) {
	c, _ := e.Dial("b")
	closeIfIdle(c, idle)
}

// keep retains the conn in a package-level table: the conn escapes
// through the helper and the obligation moves with it.
var table []core.Conn

func keep(c core.Conn) {
	table = append(table, c)
}

func retainedByHelper(e *core.Endpoint) {
	c, _ := e.Dial("b")
	keep(c)
}
