// Fixture for the closecheck analyzer.
package closefix

import "core"

// A conn that is used and dropped leaks its buffer pools and progress
// process.
func leak(e *core.Endpoint) {
	c, _ := e.Dial("b") // want `core\.Conn c is never closed in this function`
	c.Send(nil)
}

// Near miss: a deferred Close is the canonical pattern.
func deferClose(e *core.Endpoint) {
	c, _ := e.Dial("b")
	defer c.Close()
	c.Send(nil)
}

// Near miss: a plain Close on the exit path.
func plainClose(e *core.Endpoint) error {
	c, err := e.Dial("b")
	if err != nil {
		return err
	}
	c.Send(nil)
	return c.Close()
}

// Near miss: a returned conn is the caller's responsibility.
func open(e *core.Endpoint) (core.Conn, error) {
	return e.Dial("b")
}

func openVar(e *core.Endpoint) core.Conn {
	c, _ := e.Dial("b")
	return c
}

// Near miss: a conn handed to another function escapes.
func handOff(e *core.Endpoint) {
	c, _ := e.Dial("b")
	closeLater(c)
}

func closeLater(c core.Conn) {
	c.Close()
}

// Near miss: a conn stored in a struct escapes.
type session struct {
	conn core.Conn
}

func stored(e *core.Endpoint) *session {
	c, _ := e.Dial("b")
	return &session{conn: c}
}

// Near miss: the redial idiom — a broken conn is closed before being
// replaced, and the final conn is the caller's responsibility.
func redial(e *core.Endpoint) (core.Conn, error) {
	c, err := e.Dial("b")
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 3; attempt++ {
		if err := c.Send(nil); err == nil {
			return c, nil
		}
		c.Close()
		if c, err = e.Dial("b"); err != nil {
			return nil, err
		}
	}
	return c, nil
}
