// Fixture for the offpath analyzer.
package offpath

import (
	"fmt"

	"hpsmon"
	"sim"
)

// Near miss: the canonical guard — the monitor is non-nil inside the
// if body, and its arguments only evaluate there.
func guarded(k *sim.Kernel) {
	if m := k.Monitor(); m != nil {
		m.Count(k.Now(), "nic", "tx", 1)
	}
}

// A monitor method call with no guard anywhere panics the moment
// telemetry is off.
func unguarded(k *sim.Kernel) {
	m := k.Monitor()
	m.Count(k.Now(), "nic", "tx", 1) // want `sim\.Monitor call m\.Count is not nil-guarded`
}

// Near miss: the early-return guard proves m non-nil for the rest of
// the function.
func earlyReturn(k *sim.Kernel) {
	m := k.Monitor()
	if m == nil {
		return
	}
	m.Gauge(k.Now(), "nic", "depth", 3)
}

// A guard on one variable proves nothing about another.
func wrongGuard(k *sim.Kernel, other sim.Monitor) {
	if other != nil {
		m := k.Monitor()
		m.Count(k.Now(), "nic", "tx", 1) // want `sim\.Monitor call m\.Count is not nil-guarded`
	}
}

// scope mirrors hpsmon.Scope: a struct field holding the monitor.
type scope struct {
	m sim.Monitor
}

// Near miss: the field guard covers later uses of the same field chain.
func (s scope) end(k *sim.Kernel) {
	if s.m == nil {
		return
	}
	s.m.Gauge(k.Now(), "nic", "depth", 1)
}

// The field is used without any guard.
func (s scope) leakyEnd(k *sim.Kernel) {
	s.m.Gauge(k.Now(), "nic", "depth", 1) // want `sim\.Monitor call s\.m\.Gauge is not nil-guarded`
}

// Calling through the accessor result cannot be matched to a guard and
// is flagged even under a nil check of the same expression — bind the
// monitor to a variable instead.
func throughAccessor(k *sim.Kernel) {
	if k.Monitor() != nil {
		k.Monitor().Count(k.Now(), "nic", "tx", 1) // want `sim\.Monitor call \(monitor\)\.Count is not nil-guarded`
	}
}

// Near miss: hpsmon helpers guard internally; constant and identifier
// arguments are free on the off path.
func cheapArgs(k *sim.Kernel, depth int64) {
	hpsmon.GaugeSet(k, "nic", "depth", depth)
	hpsmon.Observe(k, "nic", "lat", sim.Time(depth))
}

// The detail string allocates on every call, telemetry on or off.
func allocatingDetail(k *sim.Kernel, id int) {
	hpsmon.InstantK(k, "nic", "drop", fmt.Sprintf("pkt %d", id)) // want `argument 4 of hpsmon\.InstantK allocates even when telemetry is off`
}

// String concatenation with a variable is an allocation too.
func concatDetail(p *sim.Proc, who string) {
	hpsmon.Instant(p, "nic", "drop", "peer "+who) // want `argument 4 of hpsmon\.Instant allocates even when telemetry is off`
}

// Near miss: the documented idiom — dynamic detail built behind
// Enabled costs nothing when telemetry is off.
func enabledGuard(k *sim.Kernel, id int) {
	if hpsmon.Enabled(k) {
		hpsmon.InstantK(k, "nic", "drop", fmt.Sprintf("pkt %d", id))
	}
}

// Near miss: the negated Enabled early return.
func enabledEarlyReturn(k *sim.Kernel, id int) {
	if !hpsmon.Enabled(k) {
		return
	}
	hpsmon.InstantK(k, "nic", "drop", fmt.Sprintf("pkt %d", id))
}

// Near miss: a monitor nil check proves telemetry is on just as well
// as Enabled does.
func monitorGuardForArgs(k *sim.Kernel, id int) {
	if m := k.Monitor(); m != nil {
		hpsmon.InstantK(k, "nic", "drop", fmt.Sprintf("pkt %d", id))
	}
}

// Near miss: constructors and exporters run once at setup, when
// telemetry is being turned on; their arguments may allocate freely.
func setupPath(run int) *hpsmon.Collector {
	return hpsmon.NewCollector(fmt.Sprintf("run-%d", run), hpsmon.Options{Spans: true})
}

// Near miss: the canonical profiler guard, the same shape the sim
// primitives use in parkOn and the queue hand-off fast path.
func guardedProfiler(k *sim.Kernel, p *sim.Proc) {
	if pr := k.Profiler(); pr != nil {
		pr.Park(k.Now(), p, "nic/tx-fifo")
	}
}

// A profiler method call with no guard panics whenever profiling is
// off — exactly the monitor failure mode.
func unguardedProfiler(k *sim.Kernel, p *sim.Proc) {
	pr := k.Profiler()
	pr.Park(k.Now(), p, "nic/tx-fifo") // want `sim\.Profiler call pr\.Park is not nil-guarded`
}

// Near miss: the early-return guard works for profilers too.
func profilerEarlyReturn(k *sim.Kernel) {
	pr := k.Profiler()
	if pr == nil {
		return
	}
	pr.Handoff(k.Now(), "nic/tx-fifo")
}

// A monitor guard proves nothing about the profiler, and vice versa:
// the two observers switch on independently.
func crossObserverGuard(k *sim.Kernel, p *sim.Proc) {
	if m := k.Monitor(); m != nil {
		pr := k.Profiler()
		pr.Park(k.Now(), p, "nic/tx-fifo") // want `sim\.Profiler call pr\.Park is not nil-guarded`
	}
	if pr := k.Profiler(); pr != nil {
		m := k.Monitor()
		m.Count(k.Now(), "nic", "tx", 1) // want `sim\.Monitor call m\.Count is not nil-guarded`
	}
}

// prober mirrors profile.Ledger's consumers: a struct field holding
// the profiler, guarded by field chain.
type prober struct {
	pr sim.Profiler
}

// Near miss: the field-chain guard covers later uses.
func (b prober) hit(k *sim.Kernel) {
	if b.pr == nil {
		return
	}
	b.pr.Handoff(k.Now(), "nic/tx-fifo")
}

// The field used without a guard is flagged.
func (b prober) leakyHit(k *sim.Kernel) {
	b.pr.Handoff(k.Now(), "nic/tx-fifo") // want `sim\.Profiler call b\.pr\.Handoff is not nil-guarded`
}

// A profiler nil check does NOT prove telemetry is on: hpsmon
// arguments must still be allocation-free inside it.
func profilerGuardIsNotTelemetry(k *sim.Kernel, id int) {
	if pr := k.Profiler(); pr != nil {
		hpsmon.InstantK(k, "nic", "drop", fmt.Sprintf("pkt %d", id)) // want `argument 4 of hpsmon\.InstantK allocates even when telemetry is off`
	}
}
