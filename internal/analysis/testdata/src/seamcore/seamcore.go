// Fixture for the seamcheck analyzer: an application-side consumer
// reaching across the sim/real seam.
package seamcore

import "seamsim"

// Run touches the allowed surface: the Kernel type and constructor by
// name, Time through the wildcard entry, and Kernel methods implicitly
// (methods ride on the allowed type, they are not separate surface).
func Run() int64 {
	var k *seamsim.Kernel = seamsim.NewKernel()
	return k.Now() + seamsim.Time()
}

// Leak reaches two symbols the allowlist does not cover.
func Leak() int {
	seamsim.Hidden()      // want `seamcore reaches seamsim.Hidden outside the seam surface`
	return seamsim.Tuning // want `seamcore reaches seamsim.Tuning outside the seam surface`
}
