// //hpslint:ignore suppression directives.
//
// A source line can opt out of one analyzer's findings with a comment
//
//	c, _ := ep.Dial(addr) //hpslint:ignore closecheck adopted by the session table below
//
// The directive names exactly one analyzer and must carry a reason; it
// suppresses that analyzer's diagnostics on its own line and on the
// line directly below it (so a standalone comment line covers the
// statement it precedes). A directive that suppresses nothing is
// itself reported — stale suppressions are how exemptions outlive the
// code they excused.
package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

const directivePrefix = "//hpslint:ignore"

// Directive is one parsed //hpslint:ignore comment.
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
	// Malformed carries the parse problem ("" when well-formed).
	Malformed string
	used      bool
}

// CollectDirectives parses every //hpslint:ignore comment in pkgs.
func CollectDirectives(pkgs []*Package) []*Directive {
	var dirs []*Directive
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					dirs = append(dirs, parseDirective(p.Fset, c))
				}
			}
		}
	}
	return dirs
}

func parseDirective(fset *token.FileSet, c *ast.Comment) *Directive {
	pos := fset.Position(c.Pos())
	d := &Directive{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		d.Malformed = "malformed //hpslint:ignore directive: want //hpslint:ignore <analyzer> <reason>"
		return d
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.Malformed = "//hpslint:ignore directive names no analyzer: want //hpslint:ignore <analyzer> <reason>"
		return d
	}
	d.Analyzer = fields[0]
	if len(fields) < 2 {
		d.Malformed = "//hpslint:ignore " + d.Analyzer + " gives no reason: a suppression must say why"
		return d
	}
	d.Reason = strings.Join(fields[1:], " ")
	return d
}

// ignoreAnalyzer attributes directive problems (malformed or unused
// directives) in diagnostic output.
var ignoreAnalyzer = &Analyzer{
	Name: "ignore",
	Doc:  "report malformed and unused //hpslint:ignore directives",
}

// ApplyDirectives removes diagnostics suppressed by dirs and appends a
// diagnostic for every malformed directive, every directive naming an
// analyzer outside known, and every directive that suppressed nothing.
// The result is re-sorted.
func ApplyDirectives(fset *token.FileSet, diags []AnalyzerDiagnostic, dirs []*Directive, known map[string]bool) []AnalyzerDiagnostic {
	if len(dirs) == 0 {
		return diags
	}
	// Index well-formed directives by file and the two lines they cover.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := make(map[key]*Directive)
	for _, d := range dirs {
		if d.Malformed != "" {
			continue
		}
		index[key{d.File, d.Line, d.Analyzer}] = d
		index[key{d.File, d.Line + 1, d.Analyzer}] = d
	}
	var kept []AnalyzerDiagnostic
	for _, ad := range diags {
		pos := ad.Fset.Position(ad.Pos)
		if d, ok := index[key{pos.Filename, pos.Line, ad.Analyzer.Name}]; ok {
			d.used = true
			continue
		}
		kept = append(kept, ad)
	}
	for _, d := range dirs {
		var msg string
		switch {
		case d.Malformed != "":
			msg = d.Malformed
		case known != nil && !known[d.Analyzer]:
			msg = "//hpslint:ignore names unknown analyzer " + d.Analyzer
		case !d.used:
			msg = "unused //hpslint:ignore " + d.Analyzer + " directive suppresses nothing: delete it"
		default:
			continue
		}
		if fset == nil {
			continue
		}
		kept = append(kept, AnalyzerDiagnostic{
			Analyzer:   ignoreAnalyzer,
			Fset:       fset,
			Diagnostic: Diagnostic{Pos: d.Pos, Message: msg},
		})
	}
	SortDiagnostics(kept)
	return kept
}
