// Serialized per-package summary facts.
//
// Once a package's functions reach their summary fixpoint, the
// summaries are encoded into a single deterministic JSON blob — the
// package's "facts" — and every later read, whether from a dependent
// package being summarized or from an analyzer pass, goes through the
// decoder. Keeping the serialized form as the only inter-package
// channel mirrors the x/tools facts mechanism and guarantees the
// summaries stay losslessly encodable (callgraph_test.go round-trips
// them explicitly).
package framework

import (
	"encoding/json"
	"fmt"
	"sort"
)

// PackageFacts is the serialized summary set of one package.
type PackageFacts struct {
	Package string         `json:"package"`
	Funcs   []*FuncSummary `json:"funcs"`
}

// EncodePackageFacts serializes the summaries deterministically
// (sorted by symbol).
func EncodePackageFacts(path string, sums map[string]*FuncSummary) ([]byte, error) {
	pf := PackageFacts{Package: path, Funcs: make([]*FuncSummary, 0, len(sums))}
	for _, s := range sums {
		pf.Funcs = append(pf.Funcs, s)
	}
	sort.Slice(pf.Funcs, func(i, j int) bool { return pf.Funcs[i].Symbol < pf.Funcs[j].Symbol })
	return json.Marshal(&pf)
}

// DecodePackageFacts parses a blob produced by EncodePackageFacts.
func DecodePackageFacts(data []byte) (map[string]*FuncSummary, error) {
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("decoding package facts: %v", err)
	}
	out := make(map[string]*FuncSummary, len(pf.Funcs))
	for _, s := range pf.Funcs {
		out[s.Symbol] = s
	}
	return out, nil
}

// encodeFacts stores the package's summaries in the fact cache.
func (prog *Program) encodeFacts(path string, sums map[string]*FuncSummary) {
	data, err := EncodePackageFacts(path, sums)
	if err != nil {
		// Summaries are plain ints/bools/strings; failure here is a
		// programming error, and dropping the facts only makes the
		// analyzers conservative.
		return
	}
	prog.facts[path] = data
	delete(prog.decoded, path) // drop any pre-encoding read
}

// decodeFacts returns the decoded summary table of one package,
// reading through the serialized blob on first use.
func (prog *Program) decodeFacts(path string) map[string]*FuncSummary {
	if t, ok := prog.decoded[path]; ok {
		return t
	}
	data, ok := prog.facts[path]
	if !ok {
		// Not yet encoded (the package is mid-summarization): don't
		// cache the miss, the facts arrive when its fixpoint lands.
		return nil
	}
	t, err := DecodePackageFacts(data)
	if err != nil {
		t = nil
	}
	prog.decoded[path] = t
	return t
}

// FactsBlob exposes the encoded facts of one package (testing and
// diagnostics).
func (prog *Program) FactsBlob(path string) []byte { return prog.facts[path] }
