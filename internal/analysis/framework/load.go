package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Errors holds parse or type-check problems. Analyzers still run on
	// packages with errors when the AST is usable, like go vet.
	Errors []error
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns (relative to dir),
// type-checking each from source with dependencies imported from
// compiler export data produced by `go list -deps -export`. Test files
// are excluded, matching the analyzers' non-test scope.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.ImportPath != "unsafe" {
			p := lp
			targets = append(targets, &p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg := loadTarget(fset, imp, t)
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func loadTarget(fset *token.FileSet, imp types.Importer, lp *listedPackage) *Package {
	if len(lp.GoFiles) == 0 {
		return nil
	}
	pkg := &Package{Path: lp.ImportPath, Name: lp.Name, Fset: fset}
	if lp.Error != nil {
		pkg.Errors = append(pkg.Errors, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err))
	}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg
}

// RunAnalyzers builds the whole-program view over pkgs (call graph and
// function summaries), applies each per-package analyzer to each
// package and each program-level analyzer once, and returns all
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]AnalyzerDiagnostic, []error) {
	var fset *token.FileSet
	for _, p := range pkgs {
		if p.Fset != nil {
			fset = p.Fset
			break
		}
	}
	prog := BuildProgram(fset, pkgs)

	var diags []AnalyzerDiagnostic
	var errs []error
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Prog:      prog,
			}
			pass.Report = func(d Diagnostic) {
				diags = append(diags, AnalyzerDiagnostic{Analyzer: a, Diagnostic: d, Fset: pkg.Fset})
			}
			if _, err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err))
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{
			Analyzer: a,
			Prog:     prog,
			Fset:     fset,
			Report: func(d Diagnostic) {
				diags = append(diags, AnalyzerDiagnostic{Analyzer: a, Diagnostic: d, Fset: fset})
			},
		}
		if _, err := a.RunProgram(pass); err != nil {
			errs = append(errs, fmt.Errorf("%s: %v", a.Name, err))
		}
	}
	SortDiagnostics(diags)
	return diags, errs
}

// SortDiagnostics orders diags by file, line and column (message as a
// final tiebreak), the byte-stable order every output mode relies on.
func SortDiagnostics(diags []AnalyzerDiagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := diags[i].Fset.Position(diags[i].Pos), diags[j].Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}

// AnalyzerDiagnostic pairs a diagnostic with its source analyzer.
type AnalyzerDiagnostic struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Diagnostic
}

// String formats the diagnostic the way go vet does, suffixed with the
// analyzer name.
func (d AnalyzerDiagnostic) String() string {
	pos := d.Fset.Position(d.Pos)
	// Report paths relative to the working directory when possible, so
	// output is stable across machines.
	name := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", name, pos.Line, pos.Column, d.Message, d.Analyzer.Name)
}
