package framework_test

import (
	"strings"
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/closecheck"
	"hpsockets/internal/analysis/framework"
)

// TestApplyDirectives runs closecheck over the ignorefix fixture and
// applies its //hpslint:ignore directives: findings on (or under) a
// matching directive disappear, mismatched and unused directives are
// themselves reported.
func TestApplyDirectives(t *testing.T) {
	prog := analysistest.Load(t, "../testdata", "ignorefix")
	if prog == nil {
		t.Fatal("fixture program did not load")
	}
	var pkg *framework.Package
	for _, p := range prog.Pkgs {
		if p.Path == "ignorefix" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("ignorefix package not loaded")
	}

	var diags []framework.AnalyzerDiagnostic
	pass := &framework.Pass{
		Analyzer:  closecheck.Analyzer,
		Fset:      prog.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Prog:      prog,
		Report: func(d framework.Diagnostic) {
			diags = append(diags, framework.AnalyzerDiagnostic{
				Analyzer: closecheck.Analyzer, Fset: prog.Fset, Diagnostic: d,
			})
		},
	}
	if _, err := closecheck.Analyzer.Run(pass); err != nil {
		t.Fatalf("closecheck: %v", err)
	}
	if len(diags) != 4 {
		t.Fatalf("closecheck reported %d findings before suppression, want 4", len(diags))
	}

	known := map[string]bool{"closecheck": true, "poolsafe": true}
	kept := framework.ApplyDirectives(prog.Fset, diags, framework.CollectDirectives([]*framework.Package{pkg}), known)

	var msgs []string
	for _, d := range kept {
		msgs = append(msgs, d.Analyzer.Name+": "+d.Message)
	}
	wantSubstrings := []string{
		"closecheck: core.Conn c is never closed",              // reported()
		"closecheck: core.Conn c is never closed",              // wrongAnalyzer(): poolsafe directive does not suppress
		"ignore: unused //hpslint:ignore poolsafe",             // the mismatched directive
		"ignore: unused //hpslint:ignore closecheck",           // the standalone directive that matched nothing
		"ignore: //hpslint:ignore directive names no analyzer", // bare //hpslint:ignore
		"ignore: //hpslint:ignore names unknown analyzer nosuch",
	}
	if len(kept) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics after suppression, want %d:\n%s",
			len(kept), len(wantSubstrings), strings.Join(msgs, "\n"))
	}
	remaining := append([]string(nil), msgs...)
	for _, w := range wantSubstrings {
		found := -1
		for i, m := range remaining {
			if strings.Contains(m, w) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("missing diagnostic containing %q in:\n%s", w, strings.Join(msgs, "\n"))
			continue
		}
		remaining = append(remaining[:found], remaining[found+1:]...)
	}

	// Exactly two of the four findings were suppressed (suppressed()
	// and lineAbove()); the directive bookkeeping diagnostics carry
	// positions in the fixture file, not token.NoPos.
	for _, d := range kept {
		if !d.Pos.IsValid() {
			t.Errorf("diagnostic with invalid position: %s", d.Message)
		}
	}
}
