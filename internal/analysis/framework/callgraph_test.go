package framework_test

import (
	"bytes"
	"go/ast"
	"reflect"
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/framework"
)

// loadCha loads the CHA fixture (and its core dependency) into a
// whole-program view.
func loadCha(t *testing.T) *framework.Program {
	t.Helper()
	prog := analysistest.Load(t, "../testdata", "chafix")
	if prog == nil {
		t.Fatal("fixture program did not load")
	}
	return prog
}

// TestCHADispatch checks the class-hierarchy dispatch sets: both
// implementations of Closer.Shut are found and sorted.
func TestCHADispatch(t *testing.T) {
	prog := loadCha(t)
	got := prog.Impls["(chafix.Closer).Shut"]
	want := []string{"(chafix.Messy).Shut", "(chafix.Tidy).Shut"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Impls[(chafix.Closer).Shut] = %v, want %v", got, want)
	}
}

// TestSummaries checks the dataflow facts the engine derives for the
// fixture functions, including the cross-package close.
func TestSummaries(t *testing.T) {
	prog := loadCha(t)
	cases := []struct {
		symbol string
		check  func(*framework.FuncSummary) bool
		desc   string
	}{
		{"(chafix.Tidy).Shut", func(s *framework.FuncSummary) bool { return s.ClosesParam(1) },
			"Tidy.Shut closes its conn parameter"},
		{"(chafix.Messy).Shut", func(s *framework.FuncSummary) bool { return !s.ClosesParam(1) && !s.EscapesParam(1) },
			"Messy.Shut neither closes nor escapes its conn"},
		{"chafix.ShutAll", func(s *framework.FuncSummary) bool { return !s.ClosesParam(1) },
			"ShutAll cannot close: one CHA implementation drops the conn"},
		{"chafix.CloseRemote", func(s *framework.FuncSummary) bool { return s.ClosesParam(0) },
			"CloseRemote closes through core.CloseQuiet across the package boundary"},
		{"chafix.Stash", func(s *framework.FuncSummary) bool { return s.EscapesParam(0) },
			"Stash escapes its conn into a global"},
		{"chafix.Fresh", func(s *framework.FuncSummary) bool { return s.Allocates },
			"Fresh allocates (make)"},
		{"chafix.Flat", func(s *framework.FuncSummary) bool { return !s.Allocates },
			"Flat is allocation-free"},
		{"core.CloseQuiet", func(s *framework.FuncSummary) bool { return s.ClosesParam(0) },
			"the dependency's own summary closes its parameter"},
	}
	for _, c := range cases {
		s := prog.Summary(c.symbol)
		if s == nil {
			t.Errorf("no summary for %s", c.symbol)
			continue
		}
		if !c.check(s) {
			t.Errorf("%s: %s; got %+v", c.symbol, c.desc, s)
		}
	}
}

// TestResolveCall checks static call resolution: a cross-package edge
// carries the callee's summary, and interface dispatch carries the CHA
// implementation set.
func TestResolveCall(t *testing.T) {
	prog := loadCha(t)

	callIn := func(symbol string) *ast.CallExpr {
		fi := prog.Funcs[symbol]
		if fi == nil {
			t.Fatalf("no function %s", symbol)
		}
		var call *ast.CallExpr
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && call == nil {
				call = c
			}
			return true
		})
		if call == nil {
			t.Fatalf("no call in %s", symbol)
		}
		return call
	}

	info := prog.Funcs["chafix.CloseRemote"].Pkg.TypesInfo
	callee := prog.ResolveCall(info, callIn("chafix.CloseRemote"))
	if callee == nil || callee.Symbol != "core.CloseQuiet" {
		t.Fatalf("CloseRemote callee = %+v, want core.CloseQuiet", callee)
	}
	if callee.Summary == nil || !callee.Summary.ClosesParam(0) {
		t.Errorf("cross-package callee summary = %+v, want closes param 0", callee.Summary)
	}

	info = prog.Funcs["chafix.ShutAll"].Pkg.TypesInfo
	callee = prog.ResolveCall(info, callIn("chafix.ShutAll"))
	if callee == nil || !callee.Iface {
		t.Fatalf("ShutAll callee = %+v, want interface dispatch", callee)
	}
	if len(callee.Impls) != 2 {
		t.Errorf("ShutAll dispatch set has %d impls, want 2", len(callee.Impls))
	}
}

// TestFactsRoundTrip decodes the serialized fact blob and checks it
// matches what the program serves, then re-encodes it byte-identically
// — the serialized form is the only cross-package channel, so it must
// be lossless and deterministic.
func TestFactsRoundTrip(t *testing.T) {
	prog := loadCha(t)
	blob := prog.FactsBlob("chafix")
	if len(blob) == 0 {
		t.Fatal("no facts recorded for chafix")
	}
	decoded, err := framework.DecodePackageFacts(blob)
	if err != nil {
		t.Fatalf("decoding facts: %v", err)
	}
	for sym, want := range decoded {
		got := prog.Summary(sym)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("summary %s: decoded %+v != served %+v", sym, want, got)
		}
	}
	if prog.Summary("chafix.Flat") != nil && decoded["chafix.Flat"] == nil {
		t.Error("decoded facts miss chafix.Flat")
	}
	re, err := framework.EncodePackageFacts("chafix", decoded)
	if err != nil {
		t.Fatalf("re-encoding facts: %v", err)
	}
	if !bytes.Equal(blob, re) {
		t.Errorf("facts round-trip is not byte-stable:\n first = %s\nsecond = %s", blob, re)
	}
}
