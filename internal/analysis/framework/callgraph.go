// Call-graph construction for the interprocedural analyzers.
//
// A Program ties together every package loaded from source, a
// CHA-style call graph over them, and per-function dataflow summaries
// (summary.go) serialized through a per-package fact cache (facts.go).
// The shape mirrors how the x/tools analysis facts mechanism moves
// information between packages: each package's facts are encoded once,
// after the package is summarized, and every downstream consumer —
// including the analyzers themselves — reads them back through the
// decoder, so the serialized form is the only channel.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is the whole-program view the interprocedural analyzers run
// against: every source-loaded package, its functions keyed by a
// stable symbol, and class-hierarchy dispatch sets for interface
// methods. Functions imported only through export data have no bodies
// and therefore no entry here; calls to them resolve conservatively.
type Program struct {
	Fset *token.FileSet
	// Pkgs is in dependency (topological) order: a package appears
	// after everything it imports.
	Pkgs []*Package
	// Funcs maps a symbol (see Symbol) to its declaration.
	Funcs map[string]*FuncInfo
	// Impls maps an interface-method symbol to the symbols of every
	// known concrete method implementing it (CHA over the loaded
	// packages), sorted.
	Impls map[string][]string

	pkgByPath map[string]*Package
	facts     map[string][]byte                  // pkg path -> encoded PackageFacts
	decoded   map[string]map[string]*FuncSummary // lazily decoded facts
}

// FuncInfo is one function or method with a source body.
type FuncInfo struct {
	Symbol string
	Pkg    *Package
	Decl   *ast.FuncDecl
	Fn     *types.Func
}

// Symbol returns the stable cross-package name of fn:
// "path/to/pkg.Func" for package functions, "(path/to/pkg.T).Method"
// or "(*path/to/pkg.T).Method" for methods. Generic functions and
// methods are identified by their origin (uninstantiated) form.
func Symbol(fn *types.Func) string {
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return fmt.Sprintf("(%s%s).%s", ptr, recv.String(), fn.Name())
	}
	named = named.Origin()
	obj := named.Obj()
	if obj.Pkg() == nil {
		return fmt.Sprintf("(%s%s).%s", ptr, obj.Name(), fn.Name())
	}
	return fmt.Sprintf("(%s%s.%s).%s", ptr, obj.Pkg().Path(), obj.Name(), fn.Name())
}

// BuildProgram assembles the program view over pkgs (any order),
// builds the CHA dispatch sets, and computes and serializes the
// per-function summaries package by package in dependency order.
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{
		Fset:      fset,
		Funcs:     make(map[string]*FuncInfo),
		Impls:     make(map[string][]string),
		pkgByPath: make(map[string]*Package),
		facts:     make(map[string][]byte),
		decoded:   make(map[string]map[string]*FuncSummary),
	}
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		prog.pkgByPath[p.Path] = p
	}
	prog.Pkgs = topoSort(pkgs, prog.pkgByPath)

	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				sym := Symbol(obj)
				prog.Funcs[sym] = &FuncInfo{Symbol: sym, Pkg: p, Decl: fd, Fn: obj}
			}
		}
	}

	prog.buildCHA()

	for _, p := range prog.Pkgs {
		prog.summarizePackage(p)
	}
	return prog
}

// topoSort orders packages so imports precede importers. Unreachable
// cycles cannot occur (the compiler rejects import cycles); packages
// with type errors simply sort by their available import edges.
func topoSort(pkgs []*Package, byPath map[string]*Package) []*Package {
	in := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		if p.Types != nil {
			in = append(in, p)
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Path < in[j].Path })
	var out []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return
		}
		state[p.Path] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range in {
		visit(p)
	}
	return out
}

// buildCHA populates Impls: for every named interface and every named
// concrete type among the loaded packages, if *T implements I then
// each of I's methods dispatches to T's corresponding method.
func (prog *Program) buildCHA() {
	var ifaces []*types.Named
	var concretes []*types.Named
	for _, p := range prog.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, c := range concretes {
			if c.TypeParams().Len() > 0 {
				continue // generic types need instantiation; out of CHA scope
			}
			if !types.Implements(types.NewPointer(c), it) {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(c), true, m.Pkg(), m.Name())
				impl, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				key := ifaceMethodSymbol(iface, m)
				prog.Impls[key] = append(prog.Impls[key], Symbol(impl))
			}
		}
	}
	for key := range prog.Impls {
		sort.Strings(prog.Impls[key])
	}
}

// ifaceMethodSymbol names an interface method independently of the
// (possibly embedded) interface it was selected through.
func ifaceMethodSymbol(iface *types.Named, m *types.Func) string {
	obj := iface.Obj()
	if obj.Pkg() == nil {
		return fmt.Sprintf("(%s).%s", obj.Name(), m.Name())
	}
	return fmt.Sprintf("(%s.%s).%s", obj.Pkg().Path(), obj.Name(), m.Name())
}

// Callee is the static resolution of one call expression.
type Callee struct {
	// Fn is the statically named callee (its Origin for generics);
	// nil for builtins, conversions and dynamic calls through function
	// values.
	Fn *types.Func
	// Symbol is Fn's symbol ("" when Fn is nil).
	Symbol string
	// Builtin names a builtin callee ("append", "len", ...).
	Builtin string
	// Conversion marks a type conversion, not a call.
	Conversion bool
	// Iface marks dispatch through an interface method; Impls holds
	// the summaries of every known implementation (may be empty).
	Iface bool
	Impls []*FuncSummary
	// Summary is the callee's dataflow summary, nil when the callee
	// has no source body among the loaded packages (or is dynamic).
	Summary *FuncSummary
	// RecvArg is the receiver expression for method calls (sel.X).
	RecvArg ast.Expr
	// sig is the callee signature for argument/parameter mapping.
	sig *types.Signature
}

// HasRecv reports whether the callee is a method (its summary's
// parameter 0 is the receiver).
func (c *Callee) HasRecv() bool { return c.sig != nil && c.sig.Recv() != nil }

// ParamIndexOfArg maps the i'th call argument to the callee summary's
// parameter index (receiver included as 0 for methods). It returns -1
// when the argument lands in a variadic bundle, where per-parameter
// facts do not apply.
func (c *Callee) ParamIndexOfArg(i int) int {
	if c.sig == nil {
		return -1
	}
	off := 0
	if c.sig.Recv() != nil {
		off = 1
	}
	if c.sig.Variadic() && i >= c.sig.Params().Len()-1 {
		return -1
	}
	if i >= c.sig.Params().Len() {
		return -1
	}
	return i + off
}

// ResolveCall statically resolves call using info (the type
// information of the package containing it) and the program's facts.
// It returns nil for calls that name nothing resolvable (calling a
// function-typed field, a local closure variable, ...).
func (prog *Program) ResolveCall(info *types.Info, call *ast.CallExpr) *Callee {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return &Callee{Builtin: obj.Name()}
		case *types.TypeName:
			return &Callee{Conversion: true}
		case *types.Func:
			return prog.calleeForFunc(obj, nil)
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return &Callee{Conversion: true}
		}
		return nil
	case *ast.SelectorExpr:
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return &Callee{Conversion: true}
		}
		sel, ok := info.Selections[fun]
		if !ok {
			// Package-qualified call: pkg.Func(...).
			if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return prog.calleeForFunc(obj, nil)
			}
			if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
				return &Callee{Conversion: true}
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil // calling a function-typed field: dynamic
		}
		fn, _ := sel.Obj().(*types.Func)
		if fn == nil {
			return nil
		}
		c := prog.calleeForFunc(fn, fun.X)
		// Interface dispatch: the method is selected from an
		// interface; resolve the CHA implementation set.
		if isInterfaceRecv(sel.Recv()) {
			c.Iface = true
			c.Summary = nil
			if named := namedOf(sel.Recv()); named != nil {
				key := ifaceMethodSymbol(named, fn)
				for _, implSym := range prog.Impls[key] {
					if s := prog.Summary(implSym); s != nil {
						c.Impls = append(c.Impls, s)
					}
				}
			}
		}
		return c
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StarExpr, *ast.InterfaceType:
		return &Callee{Conversion: true}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: resolve the underlying identifier.
		var x ast.Expr
		if ie, ok := ast.Unparen(call.Fun).(*ast.IndexExpr); ok {
			x = ie.X
		} else {
			x = ast.Unparen(call.Fun).(*ast.IndexListExpr).X
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Func); ok {
				return prog.calleeForFunc(obj, nil)
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return &Callee{Conversion: true}
			}
		}
		return nil
	}
	return nil
}

func (prog *Program) calleeForFunc(fn *types.Func, recvArg ast.Expr) *Callee {
	fn = fn.Origin()
	sym := Symbol(fn)
	sig, _ := fn.Type().(*types.Signature)
	return &Callee{
		Fn:      fn,
		Symbol:  sym,
		Summary: prog.Summary(sym),
		RecvArg: recvArg,
		sig:     sig,
	}
}

func isInterfaceRecv(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil {
		return named.Origin()
	}
	return nil
}
