// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) on top of the standard library's go/ast and go/types.
//
// The build environment for this repository is hermetic — no module
// downloads — so the usual x/tools analysis driver cannot be added to
// go.mod. This package provides just enough of the same shape that the
// hpslint analyzers (internal/analysis/...) read like ordinary
// go/analysis analyzers and could be ported to the real framework by
// changing imports.
//
// Packages are loaded by shelling out to `go list -deps -export -json`
// (see load.go): target packages are parsed and type-checked from
// source while their dependencies are imported from compiler export
// data, exactly how `go vet` drives its own analyzers.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the help text: first sentence is the summary.
	Doc string
	// Run applies the analyzer to one package. Nil for program-level
	// analyzers.
	Run func(*Pass) (any, error)
	// RunProgram, when set, applies the analyzer once to the whole
	// loaded program (cross-package checks like seamcheck) instead of
	// package by package.
	RunProgram func(*ProgramPass) (any, error)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Prog is the whole-program view (call graph and function
	// summaries) when the driver built one; analyzers must degrade to
	// their conservative intraprocedural behavior when it is nil.
	Prog *Program
}

// ProgramPass carries a program-level analyzer's view of the whole
// loaded program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Fset     *token.FileSet
	Report   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// WithStack walks every file, calling fn for each node with the stack
// of enclosing nodes (outermost first, ending at n). If fn returns
// false the node's children are skipped. It mirrors
// x/tools/go/ast/inspector.WithStack, which the analyzers here would
// use under the real framework.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		WithStackNode(f, fn)
	}
}

// WithStackNode is WithStack rooted at a single node.
func WithStackNode(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Children are skipped, so the post-order nil for this
			// node never arrives; pop it now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// EnclosingFunc returns the innermost FuncDecl or FuncLit in stack
// strictly enclosing the last node, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// NewTypesInfo returns a types.Info with every map the analyzers need
// populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
