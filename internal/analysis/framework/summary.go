// Per-function dataflow summaries.
//
// For every function with a source body the engine computes a small,
// monotone fact set — which parameters it closes, which it releases to
// a pool, which escape into the object graph, and whether it allocates
// on any path — by a forward walk over the body that consults the
// summaries of its callees. Packages are processed in dependency
// order, so cross-package callee summaries are always final (and are
// read back through the serialized fact cache, facts.go); recursion
// within a package is handled by iterating the package's functions to
// a fixpoint, which terminates because every fact only ever flips from
// false to true.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncSummary is the serializable dataflow summary of one function.
// Parameters are numbered with the receiver first (index 0) for
// methods; plain functions start at 0 with their first parameter.
type FuncSummary struct {
	Symbol string `json:"symbol"`
	// Params is the parameter count including any receiver.
	Params int `json:"params"`
	// HasRecv marks methods (parameter 0 is the receiver).
	HasRecv bool `json:"has_recv,omitempty"`
	// Closes lists parameters on which the function calls Close
	// (directly or through a callee) on some path.
	Closes []int `json:"closes,omitempty"`
	// Releases lists parameters the function hands back to a pool
	// free-list (directly or through a callee) on some path.
	Releases []int `json:"releases,omitempty"`
	// Escapes lists parameters that flow into the object graph:
	// returned, stored into a field, global, slice, map or channel, or
	// passed to a function that escapes them or is unknown.
	Escapes []int `json:"escapes,omitempty"`
	// Allocates reports whether any path through the function may
	// allocate (conservatively true for calls into packages loaded
	// only from export data).
	Allocates bool `json:"allocates,omitempty"`
}

// ClosesParam reports whether parameter i is closed on some path.
func (s *FuncSummary) ClosesParam(i int) bool { return s != nil && containsInt(s.Closes, i) }

// ReleasesParam reports whether parameter i is pool-released on some path.
func (s *FuncSummary) ReleasesParam(i int) bool { return s != nil && containsInt(s.Releases, i) }

// EscapesParam reports whether parameter i escapes into the object graph.
func (s *FuncSummary) EscapesParam(i int) bool { return s != nil && containsInt(s.Escapes, i) }

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func addInt(xs []int, x int) []int {
	if containsInt(xs, x) {
		return xs
	}
	xs = append(xs, x)
	sort.Ints(xs)
	return xs
}

// PoolReleasers are the free-list release primitives, matched by
// callee name. A call to one of these releases its final argument when
// the callee either has no source body (conservative) or demonstrably
// retains its parameter — a releaser-named helper that never stores
// its argument anywhere is not a release, which is what lets the
// summary engine clear no-op doubles of these names.
var PoolReleasers = map[string]bool{
	"FreeFrame":    true,
	"freeSeg":      true,
	"freePacket":   true,
	"freeSendWork": true,
	"releaseEvent": true,
}

// Summary returns the dataflow summary recorded for symbol, decoded
// from its package's serialized facts, or nil when the symbol has no
// source body among the loaded packages.
func (prog *Program) Summary(symbol string) *FuncSummary {
	fi, ok := prog.Funcs[symbol]
	if !ok {
		return nil
	}
	return prog.decodeFacts(fi.Pkg.Path)[symbol]
}

// summarizePackage computes the summaries of every function in p to a
// fixpoint and serializes them into the fact cache. Callees in other
// packages are resolved through their already-encoded facts; callees
// in p resolve against the in-progress table.
func (prog *Program) summarizePackage(p *Package) {
	var fns []*FuncInfo
	for _, fi := range prog.Funcs {
		if fi.Pkg == p {
			fns = append(fns, fi)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Symbol < fns[j].Symbol })

	live := make(map[string]*FuncSummary, len(fns))
	for _, fi := range fns {
		live[fi.Symbol] = newSummary(fi)
	}
	lookup := func(sym string) *FuncSummary {
		if s, ok := live[sym]; ok {
			return s
		}
		return prog.Summary(sym)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			next := prog.summarizeFunc(fi, lookup)
			if !summaryEqual(live[fi.Symbol], next) {
				live[fi.Symbol] = next
				changed = true
			}
		}
	}
	prog.encodeFacts(p.Path, live)
}

func newSummary(fi *FuncInfo) *FuncSummary {
	params, hasRecv := paramObjs(fi)
	return &FuncSummary{Symbol: fi.Symbol, Params: len(params), HasRecv: hasRecv}
}

func summaryEqual(a, b *FuncSummary) bool {
	return a.Allocates == b.Allocates &&
		intsEqual(a.Closes, b.Closes) &&
		intsEqual(a.Releases, b.Releases) &&
		intsEqual(a.Escapes, b.Escapes)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// paramObjs returns the parameter objects of fi in summary order
// (receiver first). Unnamed and blank parameters yield nil slots.
func paramObjs(fi *FuncInfo) ([]types.Object, bool) {
	var objs []types.Object
	hasRecv := false
	info := fi.Pkg.TypesInfo
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 {
		hasRecv = true
		f := fi.Decl.Recv.List[0]
		if len(f.Names) == 1 && f.Names[0].Name != "_" {
			objs = append(objs, info.Defs[f.Names[0]])
		} else {
			objs = append(objs, nil)
		}
	}
	if fi.Decl.Type.Params != nil {
		for _, f := range fi.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				objs = append(objs, nil)
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					objs = append(objs, nil)
				} else {
					objs = append(objs, info.Defs[name])
				}
			}
		}
	}
	return objs, hasRecv
}

// summarizeFunc recomputes fi's summary with callee summaries resolved
// through lookup.
func (prog *Program) summarizeFunc(fi *FuncInfo, lookup func(string) *FuncSummary) *FuncSummary {
	params, hasRecv := paramObjs(fi)
	s := &FuncSummary{Symbol: fi.Symbol, Params: len(params), HasRecv: hasRecv}
	indexOf := func(obj types.Object) int {
		if obj == nil {
			return -1
		}
		for i, p := range params {
			if p == obj {
				return i
			}
		}
		return -1
	}
	info := fi.Pkg.TypesInfo

	WithStackNode(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			prog.applyCallFacts(info, n, indexOf, s, lookup, enclosedInBranch(stack))
			if !s.Allocates && prog.callAllocates(info, n, lookup) {
				s.Allocates = true
			}
		case *ast.Ident:
			i := indexOf(info.Uses[n])
			if i >= 0 {
				classifyParamUse(info, s, i, n, stack)
			}
		case *ast.CompositeLit, *ast.FuncLit, *ast.GoStmt:
			s.Allocates = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				s.Allocates = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !s.Allocates {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					s.Allocates = true
				}
			}
		}
		return true
	})
	return s
}

// applyCallFacts propagates the callee's parameter facts onto fi's
// parameters appearing as arguments (or receiver) of call. Releases do
// not propagate out of conditional branches: "may release" is too weak
// a fact to taint every caller-side use after the call.
func (prog *Program) applyCallFacts(info *types.Info, call *ast.CallExpr, indexOf func(types.Object) int, s *FuncSummary, lookup func(string) *FuncSummary, branched bool) {
	callee := prog.ResolveCall(info, call)
	if callee != nil && callee.Symbol != "" {
		// Prefer the in-flight table for same-package callees.
		if ls := lookup(callee.Symbol); ls != nil {
			callee.Summary = ls
		}
	}
	at := func(argIdx int, arg ast.Expr) {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			return
		}
		i := indexOf(info.Uses[id])
		if i < 0 {
			return
		}
		switch {
		case callee == nil:
			// Dynamic call: the parameter flows to unknown code.
			s.Escapes = addInt(s.Escapes, i)
		case callee.Conversion:
			// A conversion neither retains nor frees by itself; the
			// converted value's uses are classified where they occur.
		case callee.Builtin != "":
			if callee.Builtin == "append" {
				s.Escapes = addInt(s.Escapes, i)
			}
		case callee.Iface:
			if argIdx < 0 {
				// A dispatched method call on the parameter itself:
				// the Close root is classified at the selector, and
				// dispatch alone does not escape the receiver.
				return
			}
			// Interface dispatch over the argument: close facts apply
			// only when every known implementation agrees.
			j := callee.ParamIndexOfArg(argIdx)
			if j >= 0 && len(callee.Impls) > 0 && allClose(callee.Impls, j) {
				s.Closes = addInt(s.Closes, i)
			} else {
				s.Escapes = addInt(s.Escapes, i)
			}
		default:
			j := -1
			if argIdx >= 0 {
				j = callee.ParamIndexOfArg(argIdx)
			} else if callee.HasRecv() {
				j = 0
			}
			sum := callee.Summary
			if sum == nil {
				// No source body: conservative hand-off, plus the
				// name-matched pool release primitives.
				s.Escapes = addInt(s.Escapes, i)
				if isNamedRelease(callee, call, arg) && !branched {
					s.Releases = addInt(s.Releases, i)
				}
				return
			}
			if j < 0 {
				// Variadic bundle: the bundle slice owns the value.
				s.Escapes = addInt(s.Escapes, i)
				return
			}
			if sum.ClosesParam(j) {
				s.Closes = addInt(s.Closes, i)
			}
			if sum.EscapesParam(j) {
				s.Escapes = addInt(s.Escapes, i)
			}
			if !branched {
				if sum.ReleasesParam(j) {
					s.Releases = addInt(s.Releases, i)
				} else if isNamedRelease(callee, call, arg) && sum.EscapesParam(j) {
					// Release primitive root: a releaser-named callee
					// that retains its parameter pools it.
					s.Releases = addInt(s.Releases, i)
				}
			}
		}
	}
	for k, arg := range call.Args {
		at(k, arg)
	}
	if callee != nil && callee.RecvArg != nil {
		at(-1, callee.RecvArg)
	}
}

// isNamedRelease reports whether call is a pool-release primitive by
// name with arg as the released (final) argument.
func isNamedRelease(callee *Callee, call *ast.CallExpr, arg ast.Expr) bool {
	if callee.Fn == nil || !PoolReleasers[callee.Fn.Name()] {
		return false
	}
	return len(call.Args) > 0 && call.Args[len(call.Args)-1] == arg
}

func allClose(impls []*FuncSummary, j int) bool {
	for _, s := range impls {
		if !s.ClosesParam(j) {
			return false
		}
	}
	return true
}

// enclosedInBranch reports whether the innermost node of stack sits
// under an if, switch, select or loop inside the function body —
// facts like "releases its argument" stay intraprocedural then,
// because they only hold on some paths.
func enclosedInBranch(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// classifyParamUse records how one appearance of parameter i affects
// the summary: Close calls close it, stores and sends escape it.
// Call-argument positions are handled by applyCallFacts.
func classifyParamUse(info *types.Info, s *FuncSummary, i int, id *ast.Ident, stack []ast.Node) {
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return
		}
		sel, ok := info.Selections[p]
		if !ok || sel.Kind() == types.FieldVal {
			return // field read/write through the param: no escape
		}
		// Method selection on the parameter itself.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == p {
				if p.Sel.Name == "Close" && len(call.Args) == 0 {
					s.Closes = addInt(s.Closes, i)
				}
				return // other method calls neither close nor escape the receiver
			}
		}
		// Method value bound without a call: the parameter is captured.
		s.Escapes = addInt(s.Escapes, i)
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		s.Escapes = addInt(s.Escapes, i)
	case *ast.IndexExpr:
		if p.Index == id {
			return // used as an index, not stored
		}
		s.Escapes = addInt(s.Escapes, i)
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				s.Escapes = addInt(s.Escapes, i)
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			s.Escapes = addInt(s.Escapes, i)
		}
	}
}

// callAllocates reports whether evaluating call may allocate, given
// the callee summaries available.
func (prog *Program) callAllocates(info *types.Info, call *ast.CallExpr, lookup func(string) *FuncSummary) bool {
	callee := prog.ResolveCall(info, call)
	if callee == nil {
		return true // dynamic call: unknown
	}
	switch {
	case callee.Conversion:
		return conversionAllocates(info, call)
	case callee.Builtin != "":
		switch callee.Builtin {
		case "len", "cap", "copy", "delete", "clear", "min", "max", "real", "imag", "complex", "recover":
			return false
		default: // append, make, new, panic, print, println, unsafe.*
			return true
		}
	case callee.Iface:
		if len(callee.Impls) == 0 {
			return true
		}
		for _, s := range callee.Impls {
			if s.Allocates {
				return true
			}
		}
		return false
	default:
		sum := callee.Summary
		if callee.Symbol != "" && lookup != nil {
			if ls := lookup(callee.Symbol); ls != nil {
				sum = ls
			}
		}
		if sum == nil {
			return true // export-data only: unknown body
		}
		return sum.Allocates
	}
}

// conversionAllocates reports whether the type conversion in call
// copies into a fresh allocation: string <-> byte/rune slices and
// conversions into interfaces do, numeric and same-shape conversions
// do not.
func conversionAllocates(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || len(call.Args) != 1 {
		return true
	}
	dst := tv.Type
	if tv.Value != nil {
		return false // constant-folded
	}
	if _, ok := dst.Underlying().(*types.Interface); ok {
		return true
	}
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return true
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isStringType(dst) && !isStringType(src) {
		return true // []byte/[]rune -> string copies
	}
	if _, ok := dstU.(*types.Slice); ok {
		if isStringType(src) {
			return true // string -> []byte/[]rune copies
		}
	}
	_, _ = dstU, srcU
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ReleasedArg is one object handed back to a pool by a call.
type ReleasedArg struct {
	Obj types.Object
	// Callee is the name of the function the object was passed to.
	Callee string
}

// ReleasedArgs returns the identifier arguments of call that the
// callee releases to a free-list: arguments at parameters the callee's
// summary marks as released, or — when the callee has no source body —
// the final argument of a name-matched release primitive.
func (prog *Program) ReleasedArgs(info *types.Info, call *ast.CallExpr) []ReleasedArg {
	callee := prog.ResolveCall(info, call)
	if callee == nil || callee.Fn == nil || callee.Iface {
		return nil
	}
	var out []ReleasedArg
	consider := func(argIdx int, arg ast.Expr) {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		j := -1
		if argIdx >= 0 {
			j = callee.ParamIndexOfArg(argIdx)
		} else if callee.HasRecv() {
			j = 0
		}
		switch {
		case callee.Summary == nil:
			// Export-data-only callee: keep the name-based contract.
			if PoolReleasers[callee.Fn.Name()] && len(call.Args) > 0 && call.Args[len(call.Args)-1] == arg {
				out = append(out, ReleasedArg{Obj: obj, Callee: callee.Fn.Name()})
			}
		case j >= 0 && callee.Summary.ReleasesParam(j):
			out = append(out, ReleasedArg{Obj: obj, Callee: callee.Fn.Name()})
		case j >= 0 && PoolReleasers[callee.Fn.Name()] && callee.Summary.EscapesParam(j) &&
			len(call.Args) > 0 && call.Args[len(call.Args)-1] == arg:
			// Release primitive root: releaser-named and demonstrably
			// retains the argument.
			out = append(out, ReleasedArg{Obj: obj, Callee: callee.Fn.Name()})
		}
	}
	for k, arg := range call.Args {
		consider(k, arg)
	}
	if callee.RecvArg != nil {
		consider(-1, callee.RecvArg)
	}
	return out
}

// ExprAllocates reports whether evaluating e may allocate, resolving
// calls through the program's summaries. Identifiers, field reads,
// indexing, comparisons and arithmetic on non-strings are free;
// composite literals, closures, address-taking, string concatenation
// and calls to unknown or allocating functions are not.
func (prog *Program) ExprAllocates(info *types.Info, e ast.Expr) bool {
	allocates := false
	WithStackNode(e, func(n ast.Node, stack []ast.Node) bool {
		if allocates {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if prog.callAllocates(info, n, nil) {
				allocates = true
				return false
			}
		case *ast.CompositeLit, *ast.FuncLit:
			allocates = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				allocates = true
				return false
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					allocates = true
					return false
				}
			}
		}
		return true
	})
	return allocates
}
