package bufalias_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/bufalias"
)

func TestBufAlias(t *testing.T) {
	analysistest.Run(t, "../testdata", bufalias.Analyzer, "buffix")
}
