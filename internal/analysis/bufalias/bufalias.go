// Package bufalias defines an analyzer that catches mutation of a
// byte slice after ownership was handed to bytebuf.Buffer.AppendBytes.
//
// AppendBytes documents: "The buffer keeps a reference to data;
// callers must not mutate it afterwards." The simulated transports
// queue those chunks for later delivery, so a post-append write tears
// in-flight payloads — the kind of aliasing bug that shows up as a
// corrupted frame many virtual seconds later, with no useful stack.
package bufalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "bufalias",
	Doc: `forbid writes through a slice after it was passed to bytebuf.Buffer.AppendBytes

Within one function, once a slice variable (or a reslice of it) is
passed to (*bytebuf.Buffer).AppendBytes, later writes through that
variable — element assignment or use as the copy destination — are
flagged, because the buffer retains the backing array. Reassigning the
variable to a fresh slice ends the tracking. The check is
position-based within the function body, like the nilness-style vet
checks: a write textually before the append is not flagged.`,
	Run: run,
}

// event positions for one tracked slice variable.
type sliceEvents struct {
	appends []token.Pos // AppendBytes hand-offs
	kills   []token.Pos // reassignments of the variable itself
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	events := make(map[types.Object]*sliceEvents)

	// Pass 1: collect AppendBytes hand-offs and reassignment kills.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := appendBytesArg(pass, n); obj != nil {
				ev(events, obj).appends = append(ev(events, obj).appends, n.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := useOrDef(pass, id); obj != nil {
						ev(events, obj).kills = append(ev(events, obj).kills, n.Pos())
					}
				}
			}
		}
		return true
	})
	for _, e := range events {
		sort.Slice(e.appends, func(i, j int) bool { return e.appends[i] < e.appends[j] })
		sort.Slice(e.kills, func(i, j int) bool { return e.kills[i] < e.kills[j] })
	}

	// Pass 2: flag writes that land after a hand-off with no
	// intervening reassignment.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if id := sliceBase(idx.X); id != nil {
					report(pass, events, pass.TypesInfo.Uses[id], n.Pos(), "element write")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if base := sliceBase(n.Args[0]); base != nil {
						report(pass, events, pass.TypesInfo.Uses[base], n.Pos(), "copy into it")
					}
				}
			}
		}
		return true
	})
}

func ev(events map[types.Object]*sliceEvents, obj types.Object) *sliceEvents {
	e := events[obj]
	if e == nil {
		e = &sliceEvents{}
		events[obj] = e
	}
	return e
}

// report flags a write at pos if obj was handed to AppendBytes earlier
// with no reassignment in between.
func report(pass *framework.Pass, events map[types.Object]*sliceEvents, obj types.Object, pos token.Pos, kind string) {
	if obj == nil {
		return
	}
	e, ok := events[obj]
	if !ok {
		return
	}
	for _, ap := range e.appends {
		if ap >= pos {
			break
		}
		killed := false
		for _, k := range e.kills {
			if k > ap && k < pos {
				killed = true
				break
			}
		}
		if !killed {
			pass.Reportf(pos,
				"%s after %s was passed to bytebuf.Buffer.AppendBytes, which retains the backing array: copy the data or allocate a fresh slice",
				kind, obj.Name())
			return
		}
	}
}

// appendBytesArg returns the slice variable handed to an AppendBytes
// call, unwrapping reslices (data[i:j] shares the backing array), or
// nil.
func appendBytesArg(pass *framework.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AppendBytes" || len(call.Args) != 1 {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil
	}
	if o := named.Obj(); o.Name() != "Buffer" || o.Pkg() == nil || o.Pkg().Name() != "bytebuf" {
		return nil
	}
	id := sliceBase(call.Args[0])
	if id == nil {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// sliceBase unwraps reslice and paren expressions down to the
// underlying identifier, or nil if the expression is not rooted in a
// plain variable.
func sliceBase(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func useOrDef(pass *framework.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
