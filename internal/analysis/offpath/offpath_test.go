package offpath_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/offpath"
)

func TestOffPath(t *testing.T) {
	analysistest.Run(t, "../testdata", offpath.Analyzer, "offpath")
}
