// Package offpath defines an analyzer that keeps telemetry and
// profiler call sites free on the observer-off path.
//
// The observer contract (internal/sim.Monitor, internal/sim.Profiler,
// internal/hpsmon) is that with no observer attached a hook costs one
// nil check and allocates nothing — that is what makes it safe to
// leave instrumentation in the hot paths that the paper's figures
// time. Two ways a call site breaks the contract:
//
//   - calling a sim.Monitor or sim.Profiler method on a value that was
//     never nil-checked, which panics (or forces a stub observer) the
//     moment the observer is off;
//   - passing an allocating expression (fmt.Sprintf, string concat, a
//     composite literal) to an hpsmon helper — the helper nil-checks
//     internally, but its arguments are evaluated unconditionally, so
//     the allocation happens on every call even with telemetry off.
package offpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "offpath",
	Doc: `keep telemetry call sites allocation-free when the monitor is off

Every sim.Monitor and sim.Profiler method call must be dominated by a
nil check of the same observer value — "if m := k.Monitor(); m != nil
{ m.Count(...) }", an early return "if s.m == nil { return }", or a
guard on the same field chain. Arguments of hpsmon helper calls must
be allocation-free (the helpers guard internally, but arguments
evaluate before the call); an argument that must allocate — a dynamic
detail string, say — belongs behind "if hpsmon.Enabled(k) { ... }",
which the analyzer recognizes and exempts. A Profiler nil check does
NOT exempt hpsmon arguments: profiling and telemetry switch on
independently.`,
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// posRange is a half-open source interval within which a guard holds.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	// guards[key] are the ranges where the observer value (monitor or
	// profiler) named by key is proven non-nil; telemetryOn are the
	// ranges where telemetry as a whole is proven on (an Enabled check
	// or a *monitor* nil check — a profiler check proves nothing about
	// telemetry), which exempts allocating hpsmon arguments.
	guards := make(map[string][]posRange)
	var telemetryOn []posRange

	framework.WithStackNode(body, func(n ast.Node, stack []ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond := ast.Unparen(ifs.Cond)

		// "if X != nil { ... }": X is non-nil inside the body.
		if x := nilCompared(cond, token.NEQ); x != nil {
			rng := posRange{ifs.Body.Pos(), ifs.Body.End()}
			if key := exprKey(pass.TypesInfo, x); key != "" && observerExprName(pass.TypesInfo, x) != "" {
				guards[key] = append(guards[key], rng)
			}
			if observerExprName(pass.TypesInfo, x) == "Monitor" {
				telemetryOn = append(telemetryOn, rng)
			}
			return true
		}
		// "if X == nil { return }": X is non-nil after the if, to the
		// end of its enclosing statement list.
		if x := nilCompared(cond, token.EQL); x != nil && terminates(ifs.Body) {
			rng := posRange{ifs.End(), enclosingListEnd(stack)}
			if key := exprKey(pass.TypesInfo, x); key != "" && observerExprName(pass.TypesInfo, x) != "" {
				guards[key] = append(guards[key], rng)
			}
			if observerExprName(pass.TypesInfo, x) == "Monitor" {
				telemetryOn = append(telemetryOn, rng)
			}
			return true
		}
		// "if hpsmon.Enabled(k) { ... }" and the early-return negation.
		if isEnabledCall(pass.TypesInfo, cond) {
			telemetryOn = append(telemetryOn, posRange{ifs.Body.Pos(), ifs.Body.End()})
			return true
		}
		if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT &&
			isEnabledCall(pass.TypesInfo, ast.Unparen(u.X)) && terminates(ifs.Body) {
			telemetryOn = append(telemetryOn, posRange{ifs.End(), enclosingListEnd(stack)})
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Rule 1: a method call on a sim.Monitor or sim.Profiler value.
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if obs := observerTypeName(s.Recv()); obs != "" {
				key := exprKey(pass.TypesInfo, sel.X)
				if key == "" || !inAny(guards[key], call.Pos()) {
					pass.Reportf(call.Pos(),
						"sim.%s call %s is not nil-guarded: with the observer off it is nil, guard it with `if m != nil`",
						obs, renderCallee(pass, sel))
				}
				return true
			}
		}
		// Rule 2: allocation-free arguments to hpsmon hooks.
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && isHpsmonHook(fn) {
			if inAny(telemetryOn, call.Pos()) {
				return true // proven on: the allocation is telemetry's own cost
			}
			if pass.Prog == nil {
				return true
			}
			for i, arg := range call.Args {
				if pass.Prog.ExprAllocates(pass.TypesInfo, arg) {
					pass.Reportf(arg.Pos(),
						"argument %d of hpsmon.%s allocates even when telemetry is off: build it behind `if hpsmon.Enabled(k)`",
						i+1, fn.Name())
				}
			}
		}
		return true
	})
}

// nilCompared returns X when cond is "X <op> nil" or "nil <op> X".
func nilCompared(cond ast.Expr, op token.Token) ast.Expr {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return nil
	}
	if isNil(b.Y) {
		return ast.Unparen(b.X)
	}
	if isNil(b.X) {
		return ast.Unparen(b.Y)
	}
	return nil
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always leaves the enclosing
// statement list (its last statement is a return, branch, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// enclosingListEnd is the end of the innermost statement list holding
// the node under inspection (stack's last element).
func enclosingListEnd(stack []ast.Node) token.Pos {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.BlockStmt:
			return s.End()
		case *ast.CaseClause:
			return s.End()
		case *ast.CommClause:
			return s.End()
		}
	}
	return token.NoPos
}

// exprKey names a monitor-holding expression stably: an identifier by
// its object, a field chain by the base object and field names. Other
// shapes (call results, index expressions) return "" — they cannot be
// matched against a guard.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("obj:%p", obj)
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// observerExprName reports which sim observer interface e's static
// type is: "Monitor", "Profiler", or "" for neither.
func observerExprName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	return observerTypeName(tv.Type)
}

// observerTypeName matches the named interfaces Monitor and Profiler
// from a package named "sim" (the real internal/sim and the fixture
// stub alike), returning the interface name or "".
func observerTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Monitor" && obj.Name() != "Profiler" {
		return ""
	}
	if obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
		return ""
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return ""
	}
	return obj.Name()
}

// isHpsmonFunc matches package-level functions of a package named
// "hpsmon".
func isHpsmonFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Name() != "hpsmon" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// isHpsmonHook matches the instrumentation hooks — hpsmon functions
// whose first parameter is the *sim.Kernel or *sim.Proc they hang off.
// These run on simulation hot paths and must stay allocation-free with
// telemetry off; constructors and exporters (NewCollector, NewRegistry)
// run once at setup and may allocate freely.
func isHpsmonHook(fn *types.Func) bool {
	if !isHpsmonFunc(fn) {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() == 0 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "sim" &&
		(obj.Name() == "Kernel" || obj.Name() == "Proc")
}

// isEnabledCall matches a call to hpsmon.Enabled.
func isEnabledCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Enabled" && isHpsmonFunc(fn)
}

func inAny(ranges []posRange, p token.Pos) bool {
	for _, r := range ranges {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// renderCallee prints "m.Count" / "s.m.SpanEnd" for the diagnostic.
func renderCallee(pass *framework.Pass, sel *ast.SelectorExpr) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name + "." + sel.Sel.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return id.Name + "." + x.Sel.Name + "." + sel.Sel.Name
		}
	}
	return "(monitor)." + sel.Sel.Name
}
