// Package procdiscipline defines an analyzer enforcing the sim.Proc
// blocking contract.
//
// The kernel cooperatively schedules processes: exactly one proc (or
// the kernel loop) runs at a time, and a proc's blocking methods park
// its own goroutine and hand control back. The contract documented on
// internal/sim/proc.go is therefore: blocking methods (Sleep, Wait,
// WaitTimeout, Join) may only be called on the proc that belongs to
// the running goroutine — in practice, the *sim.Proc parameter or
// receiver of the enclosing function — and never from a goroutine the
// kernel does not know about. Violations deadlock or, worse, let two
// procs run concurrently and corrupt simulation state.
package procdiscipline

import (
	"go/ast"
	"go/types"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "procdiscipline",
	Doc: `enforce that blocking sim.Proc methods run on the caller's own proc

Flags calls to the blocking *sim.Proc methods (Sleep, Wait,
WaitTimeout, Join) when:

  - the call appears inside a raw "go func" closure: goroutines the
    kernel did not spawn must not block a proc (use Kernel.Go);
  - the proc is not the enclosing function's own *sim.Proc parameter
    or receiver (a closure without proc parameters inherits the procs
    of its enclosing functions);
  - the proc was obtained from a field, call, or other expression
    rather than a parameter/receiver.`,
	Run: run,
}

// blocking is the set of *sim.Proc methods that park the calling
// goroutine, enumerated from internal/sim/proc.go.
var blocking = map[string]bool{
	"Sleep": true, "Wait": true, "WaitTimeout": true, "Join": true,
}

func run(pass *framework.Pass) (any, error) {
	framework.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !blocking[sel.Sel.Name] {
			return true
		}
		if !isProcMethod(pass, sel) {
			return true
		}
		checkBlockingCall(pass, call, sel, stack)
		return true
	})
	return nil, nil
}

// isProcMethod reports whether sel selects a method whose receiver is
// *Proc from a package named "sim".
func isProcMethod(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return isProcType(s.Recv())
}

// isProcType reports whether t is sim.Proc or *sim.Proc.
func isProcType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

func checkBlockingCall(pass *framework.Pass, call *ast.CallExpr, sel *ast.SelectorExpr, stack []ast.Node) {
	// Rule 1: never block a proc from a goroutine the kernel did not
	// spawn. Walk outward; a FuncLit whose immediate context is a go
	// statement is a raw goroutine.
	for i := len(stack) - 1; i >= 2; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if c, ok := stack[i-1].(*ast.CallExpr); ok && c.Fun == lit {
			if _, ok := stack[i-2].(*ast.GoStmt); ok {
				pass.Reportf(call.Pos(),
					"blocking sim.Proc method %s called inside a raw go closure: the kernel must own every proc goroutine (spawn with Kernel.Go)",
					sel.Sel.Name)
				return
			}
		}
	}

	// Rule 2: the proc must be the enclosing function's own. Find the
	// nearest enclosing function that declares a *sim.Proc parameter or
	// receiver; closures without proc parameters inherit outward.
	owned := ownedProcs(pass, stack)
	if owned == nil {
		pass.Reportf(call.Pos(),
			"blocking sim.Proc method %s called in a function with no *sim.Proc parameter or receiver",
			sel.Sel.Name)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(),
			"blocking sim.Proc method %s called on a proc obtained from an expression, not the enclosing function's own *sim.Proc parameter/receiver",
			sel.Sel.Name)
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !owned[obj] {
		pass.Reportf(call.Pos(),
			"blocking sim.Proc method %s called on %s, which is not the enclosing function's own *sim.Proc parameter/receiver",
			sel.Sel.Name, id.Name)
	}
}

// ownedProcs returns the objects of the *sim.Proc parameters and
// receiver of the nearest enclosing function that has any, or nil if
// no enclosing function declares a proc.
func ownedProcs(pass *framework.Pass, stack []ast.Node) map[types.Object]bool {
	for i := len(stack) - 2; i >= 0; i-- {
		var ftype *ast.FuncType
		var recv *ast.FieldList
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			ftype = fn.Type
		case *ast.FuncDecl:
			ftype = fn.Type
			recv = fn.Recv
		default:
			continue
		}
		owned := make(map[types.Object]bool)
		collect := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isProcType(obj.Type()) {
						owned[obj] = true
					}
				}
			}
		}
		collect(recv)
		collect(ftype.Params)
		if len(owned) > 0 {
			return owned
		}
		// A function with parameters but no proc among them is a hard
		// boundary only for FuncDecls: a named function without a proc
		// has no business blocking one.
		if _, isDecl := stack[i].(*ast.FuncDecl); isDecl {
			return nil
		}
		// FuncLit without proc params: inherit from enclosing function.
	}
	return nil
}
