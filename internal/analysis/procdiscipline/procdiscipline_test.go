package procdiscipline_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/procdiscipline"
)

func TestProcDiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", procdiscipline.Analyzer, "procfix")
}
