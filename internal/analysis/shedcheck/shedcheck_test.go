package shedcheck_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/shedcheck"
)

func TestShedCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", shedcheck.Analyzer, "shedfix")
}
