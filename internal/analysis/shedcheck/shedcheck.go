// Package shedcheck defines an analyzer that finds non-blocking puts
// on a sim.Queue whose queue-full result is discarded.
//
// A bounded queue is the backbone of the overload-control design:
// TryPut and PutTimeout report whether the item was admitted, and a
// rejected item must be shed *accountably* — counted, traced, or
// handed to a shed policy. Dropping the boolean silently loses work,
// which breaks the chaos harness's conservation invariant (produced =
// delivered + shed + in-flight) in a way no test can localize.
package shedcheck

import (
	"go/ast"
	"go/types"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "shedcheck",
	Doc: `require every non-blocking bounded-queue put to handle the queue-full result

TryPut and PutTimeout on a sim.Queue report whether the item was
admitted; a full bounded queue rejects it. Calling either as a bare
statement silently drops the rejected item. The result must flow
somewhere — a condition, a named variable, a return value, or a call
argument — so the caller sheds the item deliberately. An explicit
assignment to the blank identifier (_ = q.TryPut(x)) is permitted as
a visible, reviewable opt-out for queues that are unbounded by
construction, where the bool only reports a closed queue on shutdown.`,
	Run: run,
}

// nonBlockingPuts are the sim.Queue methods whose bool result reports
// queue-full rejection. The blocking Put's result only reports a
// closed queue, which has a conventional ignore-on-shutdown reading,
// so it stays out of scope.
var nonBlockingPuts = map[string]bool{
	"TryPut":     true,
	"PutTimeout": true,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Only the bare statement is flagged. An explicit
			// _ = q.TryPut(x) is a deliberate, greppable discard —
			// the convention for unbounded-by-construction queues.
			if stmt, ok := n.(*ast.ExprStmt); ok {
				if name, ok := discardedPut(pass, stmt.X); ok {
					pass.Reportf(stmt.Pos(),
						"result of sim.Queue.%s discarded: a full queue rejects the item; handle the bool (or discard with an explicit _ =) to shed deliberately", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// discardedPut reports whether expr is a call to a non-blocking put
// method on a sim.Queue, returning the method name.
func discardedPut(pass *framework.Pass, expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !nonBlockingPuts[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isQueueType(tv.Type) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isQueueType reports whether t is (a pointer to) the named generic
// type Queue from a package named "sim".
func isQueueType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Queue" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}
