// Package closecheck defines an analyzer that finds core.Conn values
// which are obtained but never closed.
//
// A SocketVIA connection owns pre-registered buffer pools, credits,
// and a progress process servicing its completion queue; a leaked Conn
// keeps all of that live and, in long simulations, starves the
// registered-memory budget — the same resource discipline a real
// kernel-bypass NIC demands.
package closecheck

import (
	"go/ast"
	"go/types"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "closecheck",
	Doc: `require a Close for every core.Conn obtained in a function

For each core.Conn bound from a call result in a function (for
example "c, err := ep.Dial(...)" or an Accept), the function body must
contain a Close call on it — plain or deferred — on some path. A conn
that escapes the function (returned, stored in a struct, slice, map or
channel, captured by value elsewhere, or passed to another function)
is the recipient's responsibility and is not flagged.`,
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// connState tracks one acquired conn variable.
type connState struct {
	id      *ast.Ident // the defining identifier
	closed  bool
	escaped bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	conns := make(map[types.Object]*connState)

	// Collect acquisitions: identifiers of type core.Conn defined from
	// a call's results.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue // plain =, reassignment of an existing var: tracked from its definition
			}
			if isConnType(obj.Type()) {
				conns[obj] = &connState{id: id}
			}
		}
		return true
	})
	if len(conns) == 0 {
		return
	}

	// Classify every use of each tracked conn.
	framework.WithStackNode(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		st, tracked := conns[obj]
		if !tracked {
			return true
		}
		classifyUse(st, id, stack)
		return true
	})

	for _, st := range conns {
		if !st.closed && !st.escaped {
			pass.Reportf(st.id.Pos(),
				"core.Conn %s is never closed in this function and does not escape: call or defer %s.Close before every return",
				st.id.Name, st.id.Name)
		}
	}
}

// classifyUse updates st for one use of the conn identifier given its
// enclosing-node stack.
func classifyUse(st *connState, id *ast.Ident, stack []ast.Node) {
	parent := stack[len(stack)-2]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		// Method call or field access on the conn itself.
		if sel.Sel.Name == "Close" {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
				st.closed = true
			}
		}
		return
	}
	// Any bare use of the conn value — as a call argument, return
	// value, assignment source, composite-literal element, channel
	// send, map/slice store — hands responsibility elsewhere.
	switch p := parent.(type) {
	case *ast.CallExpr:
		if p.Fun != id {
			st.escaped = true
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.IndexExpr:
		st.escaped = true
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				st.escaped = true
			}
		}
	case *ast.BinaryExpr:
		// Comparisons (c != nil) do not leak the conn.
	}
}

// isConnType reports whether t is the named interface Conn from a
// package named "core".
func isConnType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Conn" || obj.Pkg() == nil || obj.Pkg().Name() != "core" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}
