// Package closecheck defines an analyzer that finds core.Conn values
// which are obtained but never closed.
//
// A SocketVIA connection owns pre-registered buffer pools, credits,
// and a progress process servicing its completion queue; a leaked Conn
// keeps all of that live and, in long simulations, starves the
// registered-memory budget — the same resource discipline a real
// kernel-bypass NIC demands.
package closecheck

import (
	"go/ast"
	"go/types"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "closecheck",
	Doc: `require a Close for every core.Conn obtained in a function

For each core.Conn bound from a call result in a function (for
example "c, err := ep.Dial(...)" or an Accept), the function body must
contain a Close call on it — plain, deferred, as a bound method value,
or inside a helper the conn is passed to — on some path. Ownership
transfers interprocedurally: a conn handed to a function whose summary
shows it closes the argument counts as closed; one handed to a
function that stores or returns it has escaped and is the recipient's
responsibility; but a helper that demonstrably drops the conn on the
floor leaves the leak in the caller, and it is reported there. A conn
that escapes directly (returned, stored in a struct, slice, map or
channel) is never flagged.`,
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// connState tracks one acquired conn variable.
type connState struct {
	id      *ast.Ident // the defining identifier
	closed  bool
	escaped bool
	// droppedBy names the last helper the conn was passed to whose
	// summary shows it neither closes nor retains the argument.
	droppedBy string
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	conns := make(map[types.Object]*connState)

	// Collect acquisitions: identifiers of type core.Conn defined from
	// a call's results.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue // plain =, reassignment of an existing var: tracked from its definition
			}
			if isConnType(obj.Type()) {
				conns[obj] = &connState{id: id}
			}
		}
		return true
	})
	if len(conns) == 0 {
		return
	}

	// Classify every use of each tracked conn.
	framework.WithStackNode(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		st, tracked := conns[obj]
		if !tracked {
			return true
		}
		classifyUse(pass, st, id, stack)
		return true
	})

	for _, st := range conns {
		if st.closed || st.escaped {
			continue
		}
		if st.droppedBy != "" {
			pass.Reportf(st.id.Pos(),
				"core.Conn %s is never closed: %s neither closes nor retains it, so the leak stays in this function",
				st.id.Name, st.droppedBy)
			continue
		}
		pass.Reportf(st.id.Pos(),
			"core.Conn %s is never closed in this function and does not escape: call or defer %s.Close before every return",
			st.id.Name, st.id.Name)
	}
}

// classifyUse updates st for one use of the conn identifier given its
// enclosing-node stack.
func classifyUse(pass *framework.Pass, st *connState, id *ast.Ident, stack []ast.Node) {
	parent := stack[len(stack)-2]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		// Method call or field access on the conn itself.
		if sel.Sel.Name == "Close" {
			if len(stack) >= 3 {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
					st.closed = true
					return
				}
			}
			// A bound method value (f := c.Close; defer f()) closes
			// wherever it is eventually called; treat the binding as
			// the hand-off of the close obligation.
			st.closed = true
		}
		return
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if p.Fun == id {
			return
		}
		classifyHandOff(pass, st, id, p)
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.IndexExpr:
		st.escaped = true
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				st.escaped = true
			}
		}
	case *ast.BinaryExpr:
		// Comparisons (c != nil) do not leak the conn.
	}
}

// classifyHandOff resolves what passing the conn to a call does with
// it, using the callee's interprocedural summary when one exists.
// Without a summary (dynamic call, export-data-only callee, no
// program view) the conn conservatively escapes, exactly the
// intraprocedural behavior.
func classifyHandOff(pass *framework.Pass, st *connState, id *ast.Ident, call *ast.CallExpr) {
	if pass.Prog == nil {
		st.escaped = true
		return
	}
	callee := pass.Prog.ResolveCall(pass.TypesInfo, call)
	if callee == nil || callee.Conversion || callee.Builtin != "" {
		st.escaped = true
		return
	}
	argIdx := -1
	for k, arg := range call.Args {
		if ast.Unparen(arg) == id {
			argIdx = k
		}
	}
	if argIdx < 0 {
		// The conn is the receiver of a method call or buried in a
		// larger argument expression; neither transfers ownership.
		return
	}
	if callee.Iface {
		j := callee.ParamIndexOfArg(argIdx)
		if j >= 0 && len(callee.Impls) > 0 && implsAllClose(callee.Impls, j) {
			st.closed = true
		} else {
			st.escaped = true
		}
		return
	}
	sum := callee.Summary
	if sum == nil {
		st.escaped = true
		return
	}
	j := callee.ParamIndexOfArg(argIdx)
	if j < 0 {
		st.escaped = true // variadic bundle
		return
	}
	switch {
	case sum.ClosesParam(j):
		st.closed = true
	case sum.EscapesParam(j):
		st.escaped = true
	default:
		// The helper provably drops the conn: the obligation never
		// left this function.
		if callee.Fn != nil {
			st.droppedBy = callee.Fn.Name()
		}
	}
}

func implsAllClose(impls []*framework.FuncSummary, j int) bool {
	for _, s := range impls {
		if !s.ClosesParam(j) {
			return false
		}
	}
	return true
}

// isConnType reports whether t is the named interface Conn from a
// package named "core".
func isConnType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Conn" || obj.Pkg() == nil || obj.Pkg().Name() != "core" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}
