package closecheck_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", closecheck.Analyzer, "closefix")
}
