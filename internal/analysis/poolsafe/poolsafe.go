// Package poolsafe defines an analyzer that catches use of a pooled
// simulation object after it was returned to its free-list.
//
// The hot paths recycle events, frames, segments, packets and send
// works through per-kernel free-lists (netsim.Network.FreeFrame,
// ktcp's freeSeg, via's freePacket/freeSendWork, sim's releaseEvent).
// A released object is immediately eligible for reuse by an unrelated
// connection, so reading or writing it afterwards is the pooled
// equivalent of a use-after-free: the symptom is another connection's
// payload mutating many virtual microseconds later, with no useful
// stack. This analyzer keeps the release points honest.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hpsockets/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "poolsafe",
	Doc: `forbid use of a pooled object after it was released to a free-list

Within one function, once a variable is released to a pool, later uses
of that variable — field access, indexing, or passing it to any call —
are flagged. Release points are resolved interprocedurally: a call
releases its argument when the callee's dataflow summary says so,
which covers both the primitives (FreeFrame, freeSeg, freePacket,
freeSendWork, releaseEvent — provided their bodies actually retain the
argument; a releaser-named no-op is not a release) and any helper that
hands its parameter to one of them unconditionally. Reassigning the
variable ends the tracking; a release on a path that leaves its
enclosing block or case clause (return, continue, break, goto) does
not taint code after it; sibling branches — the else arm, other case
clauses — are alternatives to the release, never its successors, so
uses there are clean; and a deferred release happens at return, so it
taints nothing.`,
	Run: run,
}

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

// release is one hand-back of obj to a pool.
type release struct {
	call *ast.CallExpr
	// limit is the position after which uses are no longer reachable
	// from this release (the enclosing statement list's end when that
	// list terminates with return/continue/break), or maxPos when
	// control falls through.
	limit token.Pos
	// excludes are sibling branches of the release — the else arm or
	// other case clauses of enclosing if/switch/select statements —
	// which execute instead of the release, never after it.
	excludes []posRange
	fn       string
}

const maxPos = token.Pos(int(^uint(0) >> 1))

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	releases := make(map[types.Object][]release)
	kills := make(map[types.Object][]token.Pos)
	killSites := make(map[token.Pos]bool) // positions of kill LHS idents

	// Pass 1: collect releases (with their reachability limit) and
	// reassignment kills.
	framework.WithStackNode(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if inDefer(stack) {
				break // a deferred release runs at return; it taints nothing
			}
			for _, rel := range releasedArgs(pass, n) {
				limit, excludes := computeReach(n, stack)
				releases[rel.Obj] = append(releases[rel.Obj], release{
					call:     n,
					limit:    limit,
					excludes: excludes,
					fn:       rel.Callee,
				})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := useOrDef(pass, id); obj != nil {
						kills[obj] = append(kills[obj], n.Pos())
						killSites[id.Pos()] = true
					}
				}
			}
		}
		return true
	})
	if len(releases) == 0 {
		return
	}
	for _, ks := range kills {
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	}

	// Pass 2: flag uses that land after a release, inside its reach,
	// with no intervening reassignment.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || killSites[id.Pos()] {
			return true // a kill target is a rebind, not a use
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		rs, tracked := releases[obj]
		if !tracked {
			return true
		}
		for _, r := range rs {
			if id.Pos() <= r.call.End() || id.Pos() >= r.limit {
				continue // before (or part of) the release, or unreachable from it
			}
			if inSiblingBranch(r.excludes, id.Pos()) {
				continue // an alternative to the release, not its successor
			}
			if killedBetween(kills[obj], r.call.End(), id.Pos()) {
				continue
			}
			pass.Reportf(id.Pos(),
				"use of %s after %s released it to the pool: the object may already be recycled by an unrelated owner",
				obj.Name(), r.fn)
			return true
		}
		return true
	})
}

// computeReach bounds where uses are reachable from a release call.
//
// The limit: if the release's innermost statement list (a block body
// or a case clause) ends in a terminating statement (return, continue,
// break, goto), code after that list never runs on the release's path,
// so the limit is the list's end. Otherwise control may fall through
// and the release taints the rest of the function.
//
// The excludes: sibling branches of enclosing if/switch/select
// statements execute instead of the release, so uses inside them are
// alternatives rather than successors.
func computeReach(call *ast.CallExpr, stack []ast.Node) (token.Pos, []posRange) {
	limit := maxPos
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		var end token.Pos
		switch s := stack[i].(type) {
		case *ast.BlockStmt:
			list, end = s.List, s.End()
		case *ast.CaseClause:
			list, end = s.Body, s.End()
		case *ast.CommClause:
			list, end = s.Body, s.End()
		default:
			continue
		}
		for _, st := range list {
			if st.Pos() <= call.Pos() {
				continue
			}
			switch st.(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				limit = end
			}
			if limit != maxPos {
				break
			}
		}
		break // only the innermost list decides the limit
	}

	var excludes []posRange
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if s.Else != nil && within(call, s.Body) {
				excludes = append(excludes, posRange{s.Else.Pos(), s.Else.End()})
			}
		case *ast.SwitchStmt:
			excludes = appendSiblingClauses(excludes, s.Body, call)
		case *ast.TypeSwitchStmt:
			excludes = appendSiblingClauses(excludes, s.Body, call)
		case *ast.SelectStmt:
			excludes = appendSiblingClauses(excludes, s.Body, call)
		}
	}
	return limit, excludes
}

// appendSiblingClauses excludes every clause of a switch/select body
// other than the one containing the release.
func appendSiblingClauses(excl []posRange, body *ast.BlockStmt, call *ast.CallExpr) []posRange {
	for _, clause := range body.List {
		if !within(call, clause) {
			excl = append(excl, posRange{clause.Pos(), clause.End()})
		}
	}
	return excl
}

func within(call *ast.CallExpr, n ast.Node) bool {
	return call.Pos() >= n.Pos() && call.End() <= n.End()
}

func inSiblingBranch(excludes []posRange, p token.Pos) bool {
	for _, r := range excludes {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// releasedArgs resolves the objects call releases to a pool. With the
// whole-program view this is summary-driven (framework.ReleasedArgs);
// without one it falls back to name-matching the release primitives
// with the released object as the final argument, the intraprocedural
// contract.
func releasedArgs(pass *framework.Pass, call *ast.CallExpr) []framework.ReleasedArg {
	if pass.Prog != nil {
		return pass.Prog.ReleasedArgs(pass.TypesInfo, call)
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return nil
	}
	if !framework.PoolReleasers[name] || len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Args[len(call.Args)-1].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	return []framework.ReleasedArg{{Obj: obj, Callee: name}}
}

// inDefer reports whether the innermost node of stack is the call of a
// defer statement.
func inDefer(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
	}
	return false
}

func killedBetween(kills []token.Pos, lo, hi token.Pos) bool {
	for _, k := range kills {
		if k > lo && k < hi {
			return true
		}
	}
	return false
}

func useOrDef(pass *framework.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
