package poolsafe_test

import (
	"testing"

	"hpsockets/internal/analysis/analysistest"
	"hpsockets/internal/analysis/poolsafe"
)

func TestPoolSafe(t *testing.T) {
	analysistest.Run(t, "../testdata", poolsafe.Analyzer, "poolsafe")
}
