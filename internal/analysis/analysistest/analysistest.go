// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the local framework.
//
// Fixtures live under <testdata>/src/<importpath>/ as in a GOPATH
// workspace. A fixture file marks expected diagnostics with trailing
// comments of the form
//
//	rand.Intn(5) // want `global rand\.Intn`
//	x.Sleep(3)   // want "raw go closure" "second expectation"
//
// where each quoted string is a regular expression that must match a
// diagnostic reported on that line. Diagnostics without a matching
// expectation, and expectations without a matching diagnostic, fail
// the test. Imports of other fixture packages resolve under src/;
// imports of standard-library packages resolve through the compiler's
// export data via `go list -export`.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hpsockets/internal/analysis/framework"
)

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer — per package with the whole-program view
// attached, or once over the program for program-level analyzers —
// and reports mismatches against the fixtures' want expectations as
// test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld, prog, listed := load(t, testdata, pkgpaths)
	if prog == nil {
		return
	}

	var diags []framework.Diagnostic
	report := func(d framework.Diagnostic) { diags = append(diags, d) }
	if a.RunProgram != nil {
		pass := &framework.ProgramPass{Analyzer: a, Prog: prog, Fset: ld.fset, Report: report}
		if _, err := a.RunProgram(pass); err != nil {
			t.Errorf("analyzer %s: %v", a.Name, err)
			return
		}
	} else {
		for _, fp := range listed {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      ld.fset,
				Files:     fp.files,
				Pkg:       fp.types,
				TypesInfo: fp.info,
				Report:    report,
				Prog:      prog,
			}
			if _, err := a.Run(pass); err != nil {
				t.Errorf("analyzer %s on %q: %v", a.Name, fp.types.Path(), err)
				return
			}
		}
	}

	wants := make(map[string][]*want)
	for _, fp := range listed {
		for k, ws := range collectWants(t, ld.fset, fp.files) {
			wants[k] = append(wants[k], ws...)
		}
	}
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// Load loads fixture packages and builds the whole-program view over
// them (and their transitive fixture imports), for tests that drive an
// analyzer directly rather than through want comments.
func Load(t *testing.T, testdata string, pkgpaths ...string) *framework.Program {
	t.Helper()
	_, prog, _ := load(t, testdata, pkgpaths)
	return prog
}

func load(t *testing.T, testdata string, pkgpaths []string) (*loader, *framework.Program, []*fixturePkg) {
	t.Helper()
	ld := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "gc", ld.stdlibExport)
	var listed []*fixturePkg
	for _, path := range pkgpaths {
		fp, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture package %q: %v", path, err)
			return ld, nil, nil
		}
		for _, e := range fp.errors {
			t.Errorf("fixture package %q: %v", path, e)
		}
		listed = append(listed, fp)
	}
	var pkgs []*framework.Package
	var paths []string
	for path := range ld.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fp := ld.pkgs[path]
		if fp.types == nil {
			continue
		}
		pkgs = append(pkgs, &framework.Package{
			Path:      path,
			Name:      fp.types.Name(),
			Fset:      ld.fset,
			Files:     fp.files,
			Types:     fp.types,
			TypesInfo: fp.info,
		})
	}
	return ld, framework.BuildProgram(ld.fset, pkgs), listed
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted expectation patterns from a want comment.
var wantRE = regexp.MustCompile("// want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						unq, err := strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
							continue
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// loader resolves fixture packages from src/ and everything else from
// the standard library's export data.
type loader struct {
	src    string
	fset   *token.FileSet
	stdlib types.Importer
	pkgs   map[string]*fixturePkg
}

type fixturePkg struct {
	files  []*ast.File
	types  *types.Package
	info   *types.Info
	errors []error
}

// Import implements types.Importer so fixture packages can import each
// other and the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.src, path)); err == nil && fi.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if len(fp.errors) > 0 {
			return nil, fmt.Errorf("fixture %q: %v", path, fp.errors[0])
		}
		return fp.types, nil
	}
	return ld.stdlib.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{}
	ld.pkgs[path] = fp
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			fp.errors = append(fp.errors, err)
			continue
		}
		fp.files = append(fp.files, f)
	}
	if len(fp.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := framework.NewTypesInfo()
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { fp.errors = append(fp.errors, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, fp.files, info)
	fp.types = tpkg
	fp.info = info
	return fp, nil
}

// stdlibExport resolves a standard-library import path to its export
// data by invoking `go list -export` once per package (cached by the
// surrounding gc importer).
func (ld *loader) stdlibExport(path string) (io.ReadCloser, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	file := strings.TrimSpace(stdout.String())
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}
