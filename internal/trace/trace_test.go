package trace

import (
	"strings"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// runTransfer moves one message over the given transport with the
// recorder attached.
func runTransfer(r *Recorder, kind core.Kind, size int) {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	r.Attach(k)
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	fab := core.NewFabric(cl, kind, prof)
	l := fab.Endpoint("b").Listen(1)
	k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, size)
		c.RecvFull(p, buf)
	})
	k.Go("cli", func(p *sim.Proc) {
		c, _ := fab.Endpoint("a").Dial(p, "b", 1)
		c.SendSize(p, size)
		c.Close(p)
	})
	k.RunAll()
}

func TestRecorderCapturesSocketVIAProtocol(t *testing.T) {
	r := New()
	runTransfer(r, core.KindSocketVIA, 40*1024)
	counts := r.CountByKind()
	// 40 KB over 8 KB eager chunks: five chunks.
	if got := counts["socketvia/eager-chunk"]; got != 5 {
		t.Fatalf("eager-chunk count = %d, want 5 (counts: %v)", got, counts)
	}
	// Every VIA post-send eventually completes.
	if counts["via/post-send"] == 0 || counts["via/send-complete"] != counts["via/post-send"] {
		t.Fatalf("send completions %d != posts %d", counts["via/send-complete"], counts["via/post-send"])
	}
	// Credits flow back as the reader drains.
	if counts["socketvia/credit-grant"] == 0 {
		t.Fatalf("no credit grants recorded: %v", counts)
	}
}

func TestRecorderCapturesTCPSegments(t *testing.T) {
	r := New()
	runTransfer(r, core.KindTCP, 14600)
	counts := r.CountByKind()
	// 14600 B at MSS 1460 = 10 data segments each way counted once.
	if got := counts["ktcp/segment-out"]; got < 10 {
		t.Fatalf("segment-out = %d, want >= 10", got)
	}
	if counts["ktcp/segment-in"] != counts["ktcp/segment-out"] {
		t.Fatalf("segments in %d != out %d", counts["ktcp/segment-in"], counts["ktcp/segment-out"])
	}
	if counts["ktcp/ack-out"] == 0 {
		t.Fatal("no acks recorded")
	}
	// Byte conservation across the wire.
	bytes := r.BytesByKind()
	if bytes["ktcp/segment-in"] != bytes["ktcp/segment-out"] {
		t.Fatalf("segment bytes in %d != out %d", bytes["ktcp/segment-in"], bytes["ktcp/segment-out"])
	}
}

func TestRecorderComponentFilter(t *testing.T) {
	r := New()
	r.Components = []string{"ktcp"}
	runTransfer(r, core.KindTCP, 4096)
	for _, e := range r.Events() {
		if e.Component != "ktcp" {
			t.Fatalf("filter leaked component %q", e.Component)
		}
	}
	if r.Len() == 0 {
		t.Fatal("filter recorded nothing")
	}
}

func TestRecorderMaxKeepsTail(t *testing.T) {
	r := New()
	r.Max = 10
	runTransfer(r, core.KindSocketVIA, 100*1024)
	if r.Len() != 10 {
		t.Fatalf("retained %d, want 10", r.Len())
	}
	if r.Dropped() == 0 {
		t.Fatal("nothing dropped despite bound")
	}
	// The tail is the most recent events: times must not decrease.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
}

func TestRecorderRenderAndSummary(t *testing.T) {
	r := New()
	runTransfer(r, core.KindSocketVIA, 8192)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eager-chunk") {
		t.Fatalf("render missing events:\n%s", b.String())
	}
	sum := r.Summary()
	if !strings.Contains(sum, "via/post-send") {
		t.Fatalf("summary missing kinds:\n%s", sum)
	}
}

func TestRecorderBetweenWindow(t *testing.T) {
	r := New()
	runTransfer(r, core.KindTCP, 4096)
	all := r.Events()
	mid := all[len(all)/2].At
	early := r.Between(0, mid)
	late := r.Between(mid, all[len(all)-1].At+1)
	if len(early)+len(late) != len(all) {
		t.Fatalf("window split %d + %d != %d", len(early), len(late), len(all))
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	k := sim.NewKernel()
	if k.Tracing() {
		t.Fatal("tracing on by default")
	}
	// Trace with no sink must be a no-op.
	k.Trace("x", "y", 1, "z")
}
