package trace

import (
	"strings"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// runTransfer moves one message over the given transport with the
// recorder attached.
func runTransfer(r *Recorder, kind core.Kind, size int) {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	r.Attach(k)
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	fab := core.NewFabric(cl, kind, prof)
	l := fab.Endpoint("b").Listen(1)
	k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, size)
		c.RecvFull(p, buf)
	})
	k.Go("cli", func(p *sim.Proc) {
		c, _ := fab.Endpoint("a").Dial(p, "b", 1)
		c.SendSize(p, size)
		c.Close(p)
	})
	k.RunAll()
}

func TestRecorderCapturesSocketVIAProtocol(t *testing.T) {
	r := New()
	runTransfer(r, core.KindSocketVIA, 40*1024)
	counts := r.CountByKind()
	// 40 KB over 8 KB eager chunks: five chunks.
	if got := counts["socketvia/eager-chunk"]; got != 5 {
		t.Fatalf("eager-chunk count = %d, want 5 (counts: %v)", got, counts)
	}
	// Every VIA post-send eventually completes.
	if counts["via/post-send"] == 0 || counts["via/send-complete"] != counts["via/post-send"] {
		t.Fatalf("send completions %d != posts %d", counts["via/send-complete"], counts["via/post-send"])
	}
	// Credits flow back as the reader drains.
	if counts["socketvia/credit-grant"] == 0 {
		t.Fatalf("no credit grants recorded: %v", counts)
	}
}

func TestRecorderCapturesTCPSegments(t *testing.T) {
	r := New()
	runTransfer(r, core.KindTCP, 14600)
	counts := r.CountByKind()
	// 14600 B at MSS 1460 = 10 data segments each way counted once.
	if got := counts["ktcp/segment-out"]; got < 10 {
		t.Fatalf("segment-out = %d, want >= 10", got)
	}
	if counts["ktcp/segment-in"] != counts["ktcp/segment-out"] {
		t.Fatalf("segments in %d != out %d", counts["ktcp/segment-in"], counts["ktcp/segment-out"])
	}
	if counts["ktcp/ack-out"] == 0 {
		t.Fatal("no acks recorded")
	}
	// Byte conservation across the wire.
	bytes := r.BytesByKind()
	if bytes["ktcp/segment-in"] != bytes["ktcp/segment-out"] {
		t.Fatalf("segment bytes in %d != out %d", bytes["ktcp/segment-in"], bytes["ktcp/segment-out"])
	}
}

func TestRecorderComponentFilter(t *testing.T) {
	r := New()
	r.Components = []string{"ktcp"}
	runTransfer(r, core.KindTCP, 4096)
	for _, e := range r.Events() {
		if e.Component != "ktcp" {
			t.Fatalf("filter leaked component %q", e.Component)
		}
	}
	if r.Len() == 0 {
		t.Fatal("filter recorded nothing")
	}
}

func TestRecorderMaxKeepsTail(t *testing.T) {
	r := New()
	r.Max = 10
	runTransfer(r, core.KindSocketVIA, 100*1024)
	if r.Len() != 10 {
		t.Fatalf("retained %d, want 10", r.Len())
	}
	if r.Dropped() == 0 {
		t.Fatal("nothing dropped despite bound")
	}
	// The tail is the most recent events: times must not decrease.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
}

func TestRecorderRenderAndSummary(t *testing.T) {
	r := New()
	runTransfer(r, core.KindSocketVIA, 8192)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eager-chunk") {
		t.Fatalf("render missing events:\n%s", b.String())
	}
	sum := r.Summary()
	if !strings.Contains(sum, "via/post-send") {
		t.Fatalf("summary missing kinds:\n%s", sum)
	}
}

func TestRecorderBetweenWindow(t *testing.T) {
	r := New()
	runTransfer(r, core.KindTCP, 4096)
	all := r.Events()
	mid := all[len(all)/2].At
	early := r.Between(0, mid)
	late := r.Between(mid, all[len(all)-1].At+1)
	if len(early)+len(late) != len(all) {
		t.Fatalf("window split %d + %d != %d", len(early), len(late), len(all))
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	k := sim.NewKernel()
	if k.Tracing() {
		t.Fatal("tracing on by default")
	}
	// Trace with no sink must be a no-op.
	k.Trace("x", "y", 1, "z")
}

// fill records n synthetic events at virtual times 1..n on component
// "c0" (even index) and "c1" (odd index).
func fill(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		comp := "c0"
		if i%2 == 1 {
			comp = "c1"
		}
		r.record(Event{At: sim.Time(i + 1), Component: comp, Kind: "k", Size: int64(i)})
	}
}

func TestRecorderSyntheticComponentFilter(t *testing.T) {
	r := &Recorder{Components: []string{"c1"}}
	fill(r, 10)
	if r.Len() != 5 {
		t.Fatalf("filtered recorder kept %d events, want 5", r.Len())
	}
	for _, e := range r.Events() {
		if e.Component != "c1" {
			t.Fatalf("filter leaked component %q", e.Component)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("filtered-out events counted as dropped: %d", r.Dropped())
	}
}

func TestRecorderRingKeepsTailInOrder(t *testing.T) {
	r := &Recorder{Max: 4}
	fill(r, 11)
	if r.Len() != 4 {
		t.Fatalf("bounded recorder holds %d events, want 4", r.Len())
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", r.Dropped())
	}
	got := r.Events()
	for i, e := range got {
		if want := sim.Time(8 + i); e.At != want {
			t.Fatalf("event %d at %v, want %v (tail out of order: %v)", i, e.At, want, got)
		}
	}
	// The rotated view must also drive Render and Between.
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // 4 events + dropped note
		t.Fatalf("render emitted %d lines, want 5:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[4], "7 earlier events dropped") {
		t.Fatalf("render missing drop note: %q", lines[4])
	}
}

func TestRecorderRingExactlyFullDoesNotDrop(t *testing.T) {
	r := &Recorder{Max: 6}
	fill(r, 6)
	if r.Dropped() != 0 || r.Len() != 6 {
		t.Fatalf("exactly-full recorder: len %d dropped %d, want 6, 0", r.Len(), r.Dropped())
	}
	if evs := r.Events(); evs[0].At != 1 || evs[5].At != 6 {
		t.Fatalf("unwrapped order broken: %v", evs)
	}
}

func TestRecorderBetweenEdgesHalfOpen(t *testing.T) {
	r := &Recorder{Max: 5}
	fill(r, 12) // retains times 8..12
	got := r.Between(8, 12)
	if len(got) != 4 {
		t.Fatalf("Between(8,12) returned %d events, want 4 (from inclusive, to exclusive)", len(got))
	}
	if got[0].At != 8 || got[3].At != 11 {
		t.Fatalf("Between edges wrong: first %v last %v", got[0].At, got[3].At)
	}
	if n := len(r.Between(12, 12)); n != 0 {
		t.Fatalf("empty window returned %d events", n)
	}
}
