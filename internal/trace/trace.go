// Package trace records and analyzes protocol events from a
// simulation run: descriptor postings, segments, credit grants,
// rendezvous handshakes. Attach a Recorder to a kernel, run, then
// inspect, count or render the timeline — the primary debugging tool
// for protocol work on this codebase.
package trace

import (
	"fmt"
	"io"
	"strings"

	"hpsockets/internal/sim"
)

// Event is one recorded protocol event.
type Event struct {
	At        sim.Time
	Component string
	Kind      string
	Size      int64
	Detail    string
}

func (e Event) String() string {
	if e.Detail != "" {
		return fmt.Sprintf("%12v  %-10s %-16s %8d  %s", e.At, e.Component, e.Kind, e.Size, e.Detail)
	}
	return fmt.Sprintf("%12v  %-10s %-16s %8d", e.At, e.Component, e.Kind, e.Size)
}

// Recorder collects events, optionally filtered and bounded.
type Recorder struct {
	// events is the retained tail. Once the Max bound is reached it
	// becomes a circular buffer: head marks the oldest slot, and each
	// new event overwrites it in O(1) instead of shifting the whole
	// slice per record.
	events []Event
	head   int
	// Max bounds the number of retained events (0 = unbounded); when
	// full, older events are dropped (the recorder keeps a tail).
	Max int
	// Components restricts recording to the named components (empty =
	// all).
	Components []string

	dropped uint64
}

// New returns an unbounded, unfiltered recorder.
func New() *Recorder { return &Recorder{} }

// Attach hooks the recorder into a kernel.
func (r *Recorder) Attach(k *sim.Kernel) {
	k.SetTrace(func(at sim.Time, component, event string, size int64, detail string) {
		r.record(Event{At: at, Component: component, Kind: event, Size: size, Detail: detail})
	})
}

func (r *Recorder) record(e Event) {
	if len(r.Components) > 0 {
		ok := false
		for _, c := range r.Components {
			if c == e.Component {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	if r.Max > 0 && len(r.events) >= r.Max {
		r.events[r.head] = e
		r.head++
		if r.head == len(r.events) {
			r.head = 0
		}
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// ordered returns the retained events in record order, rotating the
// circular buffer into a fresh slice only when it has wrapped.
func (r *Recorder) ordered() []Event {
	if r.head == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Events returns the retained events in order.
func (r *Recorder) Events() []Event { return r.ordered() }

// Len reports the retained event count.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped reports events discarded by the Max bound.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// CountByKind tallies events per "component/kind".
func (r *Recorder) CountByKind() map[string]int {
	out := make(map[string]int)
	for _, e := range r.events {
		out[e.Component+"/"+e.Kind]++
	}
	return out
}

// BytesByKind sums the Size field per "component/kind".
func (r *Recorder) BytesByKind() map[string]int64 {
	out := make(map[string]int64)
	for _, e := range r.events {
		out[e.Component+"/"+e.Kind] += e.Size
	}
	return out
}

// Between returns the events in the half-open virtual-time window.
func (r *Recorder) Between(from, to sim.Time) []Event {
	var out []Event
	for _, e := range r.ordered() {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// Render writes the timeline to w.
func (r *Recorder) Render(w io.Writer) error {
	for _, e := range r.ordered() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", r.dropped)
	}
	return nil
}

// Summary renders the per-kind counts, sorted lexicographically.
func (r *Recorder) Summary() string {
	counts := r.CountByKind()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ { // insertion sort: tiny key sets
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %8d\n", k, counts[k])
	}
	return b.String()
}
