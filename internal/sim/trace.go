package sim

// TraceFunc receives one trace event. Components report events
// unconditionally; the kernel drops them when no tracer is attached,
// so tracing costs nothing unless enabled.
type TraceFunc func(at Time, component, event string, size int64, detail string)

// SetTrace attaches (or with nil detaches) a trace sink.
func (k *Kernel) SetTrace(fn TraceFunc) { k.trace = fn }

// Tracing reports whether a trace sink is attached; components use it
// to skip building expensive detail strings.
func (k *Kernel) Tracing() bool { return k.trace != nil }

// Trace reports one event to the attached sink, if any.
func (k *Kernel) Trace(component, event string, size int64, detail string) {
	if k.trace != nil {
		k.trace(k.now, component, event, size, detail)
	}
}
