package sim

import "testing"

func TestQueueFIFOOrder(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var got []int
	k.Go("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	k.Go("cons", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.RunAll()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueBoundedBlocksProducer(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var putDone Time
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1) // fits
		q.Put(p, 2) // blocks until consumer takes item 1 at t=50
		putDone = p.Now()
	})
	k.GoAfter(50, "cons", func(p *Proc) {
		q.Get(p)
	})
	k.RunAll()
	if putDone != 50 {
		t.Fatalf("second Put completed at %v, want 50", putDone)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, 0)
	var got string
	var at Time
	k.Go("cons", func(p *Proc) {
		got, _ = q.Get(p)
		at = p.Now()
	})
	k.GoAfter(70, "prod", func(p *Proc) { q.Put(p, "x") })
	k.RunAll()
	if got != "x" || at != 70 {
		t.Fatalf("got %q at %v, want x at 70", got, at)
	}
}

func TestQueueHandoffPreservesGetterOrder(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.GoAfter(Time(i), "cons", func(p *Proc) {
			v, _ := q.Get(p)
			order = append(order, i*100+v)
		})
	}
	k.GoAfter(10, "prod", func(p *Proc) {
		for i := 0; i < 3; i++ {
			q.Put(p, i)
		}
	})
	k.RunAll()
	// Getter 0 parked first so it gets item 0, and so on.
	want := []int{0, 101, 202}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueCloseDrainsBufferedItems(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var got []int
	var sawClose bool
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Close()
	})
	k.GoAfter(10, "cons", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				sawClose = true
				return
			}
			got = append(got, v)
		}
	})
	k.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 || !sawClose {
		t.Fatalf("got %v close=%v", got, sawClose)
	}
}

func TestQueueCloseWakesBlockedGetter(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var ok = true
	var at Time
	k.Go("cons", func(p *Proc) {
		_, ok = q.Get(p)
		at = p.Now()
	})
	k.GoAfter(40, "closer", func(p *Proc) { q.Close() })
	k.RunAll()
	if ok || at != 40 {
		t.Fatalf("ok=%v at=%v, want false at 40", ok, at)
	}
}

func TestQueueCloseWakesBlockedPutter(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var second bool
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		second = q.Put(p, 2) // blocks, then queue closes
	})
	k.GoAfter(20, "closer", func(p *Proc) { q.Close() })
	k.RunAll()
	if second {
		t.Fatal("Put on closed queue reported true")
	}
}

func TestQueuePutAfterCloseRejected(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	q.Close()
	var ok bool
	k.Go("prod", func(p *Proc) { ok = q.Put(p, 1) })
	k.RunAll()
	if ok {
		t.Fatal("Put after Close accepted")
	}
}

func TestQueueTryPutTryGet(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut(5) {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut(6) {
		t.Fatal("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != 5 {
		t.Fatalf("TryGet = %v %v", v, ok)
	}
	if q.Puts() != 1 || q.Gets() != 1 {
		t.Fatalf("counters = %d/%d", q.Puts(), q.Gets())
	}
}

func TestQueueCountsHandoffs(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	k.Go("cons", func(p *Proc) { q.Get(p) })
	k.GoAfter(1, "prod", func(p *Proc) { q.Put(p, 9) })
	k.RunAll()
	if q.Puts() != 1 || q.Gets() != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", q.Puts(), q.Gets())
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		k.Go("u", func(p *Proc) {
			r.Acquire(p, 1)
			start := p.Now()
			p.Sleep(10)
			r.Release(1)
			spans = append(spans, [2]Time{start, p.Now()})
		})
	}
	k.RunAll()
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	for i := 1; i < 3; i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("overlapping critical sections: %v", spans)
		}
	}
}

func TestResourceCapacityTwoAllowsPairs(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Go("u", func(p *Proc) {
			r.Use(p, 1, 10)
			ends = append(ends, p.Now())
		})
	}
	k.RunAll()
	// Two run in [0,10], two in [10,20].
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	var order []int
	k.Go("holder", func(p *Proc) { r.Use(p, 1, 100) })
	for i := 0; i < 3; i++ {
		i := i
		k.GoAfter(Time(i+1), "w", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			r.Release(1)
		})
	}
	k.RunAll()
	for i := 0; i < 3; i++ {
		if order[i] != i {
			t.Fatalf("admission order = %v", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	k.Go("u", func(p *Proc) {
		r.Use(p, 1, 50)
		p.Sleep(50)
	})
	k.RunAll()
	got := r.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	r.Release(1)
}

func TestQueuePutTimeoutExpires(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var ok bool
	var at Time
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1) // fills the queue
		ok = q.PutTimeout(p, 2, 100)
		at = p.Now()
	})
	k.RunAll()
	if ok {
		t.Fatal("PutTimeout on a stuck-full queue reported accepted")
	}
	if at != 100 {
		t.Fatalf("PutTimeout returned at %v, want 100", at)
	}
	if q.Len() != 1 {
		t.Fatalf("queue holds %d items, want 1 (rejected item buffered?)", q.Len())
	}
}

func TestQueuePutTimeoutAdmittedBeforeExpiry(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var ok bool
	var at Time
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		ok = q.PutTimeout(p, 2, 100)
		at = p.Now()
	})
	k.GoAfter(40, "cons", func(p *Proc) { q.Get(p) })
	k.RunAll()
	if !ok {
		t.Fatal("PutTimeout rejected although a slot freed before expiry")
	}
	if at != 40 {
		t.Fatalf("PutTimeout admitted at %v, want 40", at)
	}
	if v, _ := q.TryGet(); v != 2 {
		t.Fatalf("buffered item = %d, want 2", v)
	}
}

func TestQueuePutTimeoutNonPositiveIsTryPut(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var first, second bool
	k.Go("prod", func(p *Proc) {
		first = q.PutTimeout(p, 1, 0)  // empty queue: accepted immediately
		second = q.PutTimeout(p, 2, 0) // full queue, zero wait: rejected
	})
	end := k.RunAll()
	if !first || second {
		t.Fatalf("PutTimeout(d=0) = %v, %v; want true, false", first, second)
	}
	if end != 0 {
		t.Fatalf("zero-wait puts advanced time to %v", end)
	}
}

func TestQueuePutTimeoutCloseWakes(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	var ok bool
	var at Time
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		ok = q.PutTimeout(p, 2, 1000)
		at = p.Now()
	})
	k.GoAfter(30, "closer", func(p *Proc) { q.Close() })
	k.RunAll()
	if ok {
		t.Fatal("PutTimeout on a closed queue reported accepted")
	}
	if at != 30 {
		t.Fatalf("PutTimeout woke at %v, want 30 (close time)", at)
	}
}

func TestQueuePutTimeoutExpiredEntryNotAdmitted(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		q.PutTimeout(p, 2, 100) // expires at 100, long before the Get
	})
	var got int
	var residual bool
	k.GoAfter(200, "cons", func(p *Proc) {
		got, _ = q.Get(p)
		_, residual = q.TryGet()
	})
	k.RunAll()
	if got != 1 {
		t.Fatalf("Get = %d, want 1", got)
	}
	if residual {
		t.Fatal("expired putter's item was admitted after its timeout")
	}
}

func TestQueueEvictRemovesOldestMatch(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	k.Go("prod", func(p *Proc) {
		for i := 1; i <= 4; i++ {
			q.Put(p, i)
		}
	})
	k.RunAll()
	v, ok := q.Evict(func(n int) bool { return n%2 == 0 })
	if !ok || v != 2 {
		t.Fatalf("Evict(even) = %d, %v; want 2, true", v, ok)
	}
	if _, ok := q.Evict(func(n int) bool { return n > 10 }); ok {
		t.Fatal("Evict matched a nonexistent item")
	}
	var rest []int
	for {
		v, ok := q.TryGet()
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	if len(rest) != 3 || rest[0] != 1 || rest[1] != 3 || rest[2] != 4 {
		t.Fatalf("remaining order = %v, want [1 3 4]", rest)
	}
}

func TestQueueEvictAdmitsParkedPutter(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 2)
	var putDone Time
	k.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks: queue full until the eviction frees a slot
		putDone = p.Now()
	})
	k.GoAfter(60, "shedder", func(p *Proc) {
		if v, ok := q.Evict(func(int) bool { return true }); !ok || v != 1 {
			t.Errorf("Evict = %d, %v; want 1, true", v, ok)
		}
	})
	k.RunAll()
	if putDone != 60 {
		t.Fatalf("blocked Put admitted at %v, want 60 (eviction time)", putDone)
	}
	a, _ := q.TryGet()
	b, _ := q.TryGet()
	if a != 2 || b != 3 {
		t.Fatalf("queue after eviction = [%d %d], want [2 3]", a, b)
	}
}
