package sim

// Park-edge labels used by the kernel's own primitives when the
// constructing component does not claim a more specific name via
// SetLabel. Components should label every queue, signal, condition,
// resource and serializer they build (see DESIGN.md §15 for the
// registry) so park-ledger lines attribute scheduler traffic to a
// subsystem edge rather than a generic primitive.
const (
	edgeSleep      = "sim/sleep"
	edgeQueue      = "sim/queue"
	edgeSignal     = "sim/signal"
	edgeCond       = "sim/cond"
	edgeResource   = "sim/resource"
	edgeSerializer = "sim/serializer"
)

// Profiler receives scheduler-attribution callbacks from the kernel:
// every process park and the wake that ends it (tagged with the label
// of the edge parked on), every direct queue hand-off to an
// already-parked getter, and every event popped from the same-instant
// spill ring. Like the trace sink and the telemetry monitor, the
// kernel holds at most one profiler and every call site is
// nil-checked, so with no profiler attached the hot paths pay one
// pointer load per park and allocate nothing.
//
// Implementations must be passive observers: they may not advance the
// clock, schedule events, or otherwise perturb the simulation, so
// that attaching a profiler never changes a figure. Edge labels are
// compile-time constants at every call site; implementations may key
// maps on them without copying.
type Profiler interface {
	// Park records that p is parking on the labeled edge at the given
	// virtual time.
	Park(at Time, p *Proc, edge string)
	// Wake records that p, previously parked on the labeled edge,
	// resumed at the given virtual time. A wake at the same instant as
	// its park is a zero-delay rendezvous — a full goroutine
	// park/dispatch round trip that advanced the clock by nothing.
	Wake(at Time, p *Proc, edge string)
	// Handoff records a queue Put that bypassed buffering and handed
	// its item directly to a parked getter.
	Handoff(at Time, edge string)
	// RingHit records an event popped from the same-instant spill ring
	// rather than the ladder.
	RingHit(at Time)
}

// SetProfiler attaches (or with nil detaches) a scheduler profiler.
func (k *Kernel) SetProfiler(pr Profiler) { k.prof = pr }

// Profiler reports the attached profiler, nil when profiling is off.
// Call sites nil-check it exactly like the trace sink and monitor.
func (k *Kernel) Profiler() Profiler { return k.prof }

// parkOn is park with profiler attribution: the edge label names the
// queue, signal, condition or resource the process is blocking on.
// All blocking primitives park through here so the profiler sees
// every scheduler round trip exactly once.
func (p *Proc) parkOn(edge string) any {
	if pr := p.k.prof; pr != nil {
		pr.Park(p.k.now, p, edge)
	}
	v := p.park()
	if pr := p.k.prof; pr != nil {
		pr.Wake(p.k.now, p, edge)
	}
	return v
}
