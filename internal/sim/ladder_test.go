package sim

import (
	"math/rand"
	"testing"
)

// The ladder queue replaced the kernel's binary heap; these tests keep
// the heap around as an oracle and prove the two structures agree on
// the only thing that matters: the exact (at, seq) pop order of live
// events, under randomized push/pop/cancel/compact workloads.

// oracleEv is the oracle's view of one scheduled event.
type oracleEv struct {
	at  Time
	seq uint64
}

func oracleLess(a, b oracleEv) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// oracleHeap is a verbatim port of the kernel's former binary heap
// (heapPush/heapPop/siftDown ordered by eventLess).
type oracleHeap struct {
	h []oracleEv
}

func (o *oracleHeap) push(e oracleEv) {
	o.h = append(o.h, e)
	h := o.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !oracleLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (o *oracleHeap) pop() oracleEv {
	h := o.h
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	o.h = h[:n]
	if n > 0 {
		o.siftDown(0)
	}
	return e
}

func (o *oracleHeap) siftDown(i int) {
	h := o.h
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && oracleLess(h[right], h[least]) {
			least = right
		}
		if !oracleLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// ladderWorkload drives one kernel's queue directly (push via At,
// cancel via Timer.Stop, pop via peekNext/popNext exactly as Run does)
// against the heap oracle, with the given time-delta generator.
func ladderWorkload(t *testing.T, seed int64, ops int, delta func(r *rand.Rand) Time) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	k := NewKernel()
	o := &oracleHeap{}
	canceled := make(map[uint64]bool)
	type rec struct {
		timer Timer
		seq   uint64
	}
	var live []rec
	var nextSeq uint64
	oracleCanceled := 0

	push := func(at Time) {
		timer := k.At(at, func() {})
		o.push(oracleEv{at: at, seq: nextSeq})
		live = append(live, rec{timer: timer, seq: nextSeq})
		nextSeq++
	}

	// popLive removes events from the kernel queue until a live one
	// comes out, mirroring Run's cancellation-skipping loop, and
	// reports it. ok is false when the queue drains.
	popLive := func() (Time, uint64, bool) {
		for {
			e := k.peekNext()
			if e == nil {
				return 0, 0, false
			}
			// A peek must not disturb the queue: peeking again yields
			// the same event.
			if again := k.peekNext(); again != e {
				t.Fatalf("peekNext not idempotent: %p then %p", e, again)
			}
			at, seq := e.at, e.seq
			k.popNext(e)
			if e.canceled {
				k.ncanceled--
				k.releaseEvent(e)
				continue
			}
			k.now = at
			k.releaseEvent(e)
			return at, seq, true
		}
	}
	oraclePopLive := func() (Time, uint64, bool) {
		for len(o.h) > 0 {
			e := o.pop()
			if canceled[e.seq] {
				oracleCanceled--
				continue
			}
			return e.at, e.seq, true
		}
		return 0, 0, false
	}

	for i := 0; i < ops; i++ {
		switch c := r.Intn(10); {
		case c < 4: // push a burst, sometimes at one shared instant
			n := 1 + r.Intn(8)
			at := k.now + delta(r)
			for j := 0; j < n; j++ {
				push(at)
				if r.Intn(2) == 0 {
					at = k.now + delta(r)
				}
			}
		case c < 7: // pop one live event from both structures
			at, seq, ok := popLive()
			oat, oseq, ook := oraclePopLive()
			if ok != ook {
				t.Fatalf("op %d: kernel drained=%v oracle drained=%v", i, !ok, !ook)
			}
			if ok && (at != oat || seq != oseq) {
				t.Fatalf("op %d: kernel popped (at=%d seq=%d), oracle (at=%d seq=%d)",
					i, at, seq, oat, oseq)
			}
		case c < 9: // cancel a random armed timer (may trigger compaction)
			if len(live) == 0 {
				continue
			}
			j := r.Intn(len(live))
			if live[j].timer.Stop() {
				canceled[live[j].seq] = true
				oracleCanceled++
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // cancel storm: force the compaction threshold
			for _, rc := range live {
				if rc.timer.Stop() {
					canceled[rc.seq] = true
					oracleCanceled++
				}
			}
			live = live[:0]
		}
		if kl, ol := k.Live(), len(o.h)-oracleCanceled; kl != ol {
			t.Fatalf("op %d: kernel Live()=%d, oracle live=%d", i, kl, ol)
		}
	}

	// Drain both completely; every remaining live event must match.
	for {
		at, seq, ok := popLive()
		oat, oseq, ook := oraclePopLive()
		if ok != ook {
			t.Fatalf("drain: kernel drained=%v oracle drained=%v", !ok, !ook)
		}
		if !ok {
			break
		}
		if at != oat || seq != oseq {
			t.Fatalf("drain: kernel popped (at=%d seq=%d), oracle (at=%d seq=%d)",
				at, seq, oat, oseq)
		}
	}
	if k.Pending() != 0 || k.Live() != 0 {
		t.Fatalf("after drain: Pending=%d Live=%d, want 0/0", k.Pending(), k.Live())
	}
}

// TestLadderMatchesHeapOracle sweeps time-delta regimes that exercise
// every ladder component: delta 0 keeps events in the same-instant
// ring, tiny deltas live in the sorted bottom, mid-range deltas build
// rungs, and huge spreads overflow into the unsorted top and force
// multi-level rung spawning on transfer.
func TestLadderMatchesHeapOracle(t *testing.T) {
	regimes := []struct {
		name  string
		delta func(r *rand.Rand) Time
	}{
		{"same-instant", func(r *rand.Rand) Time { return 0 }},
		{"near", func(r *rand.Rand) Time { return Time(r.Intn(64)) }},
		{"mixed", func(r *rand.Rand) Time {
			switch r.Intn(4) {
			case 0:
				return 0
			case 1:
				return Time(r.Intn(1000))
			case 2:
				return Time(r.Intn(1_000_000))
			default:
				return Time(r.Intn(1_000_000_000))
			}
		}},
		{"heavy-tail", func(r *rand.Rand) Time {
			if r.Intn(10) == 0 {
				return Time(r.Intn(1_000_000_000_000))
			}
			return Time(r.Intn(100))
		}},
		{"bursty-far", func(r *rand.Rand) Time {
			return Time(1_000_000 + r.Intn(16)) // dense far cluster: deep rung splits
		}},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				ladderWorkload(t, seed, 4000, reg.delta)
			}
		})
	}
}

// TestLadderGrownPendingOrder grows the pending set to tens of
// thousands before draining, the regime of the bench sanity anchor:
// push-heavy bursts at mixed horizons with occasional pops force the
// small-top direct transfer, the bottom-overflow conversion into a
// rung (ladderBottomMax), and routing through rung limits where
// rounded bucket widths overshoot the covered span — then the full
// drain must still match the heap oracle event for event.
func TestLadderGrownPendingOrder(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		o := &oracleHeap{}
		canceled := make(map[uint64]bool)
		var nextSeq uint64
		oracleCanceled := 0

		popLive := func() (Time, uint64, bool) {
			for {
				e := k.peekNext()
				if e == nil {
					return 0, 0, false
				}
				at, seq := e.at, e.seq
				k.popNext(e)
				if e.canceled {
					k.ncanceled--
					k.releaseEvent(e)
					continue
				}
				k.now = at
				k.releaseEvent(e)
				return at, seq, true
			}
		}
		oraclePopLive := func() (Time, uint64, bool) {
			for len(o.h) > 0 {
				e := o.pop()
				if canceled[e.seq] {
					oracleCanceled--
					continue
				}
				return e.at, e.seq, true
			}
			return 0, 0, false
		}

		for i := 0; i < 30_000; i++ {
			var d Time
			switch r.Intn(4) {
			case 0:
				d = 0
			case 1:
				d = Time(r.Intn(1000))
			case 2:
				d = Time(r.Intn(1_000_000))
			default:
				d = Time(r.Intn(1_000_000_000))
			}
			at := k.now + d
			tm := k.At(at, func() {})
			o.push(oracleEv{at: at, seq: nextSeq})
			if r.Intn(8) == 0 {
				if tm.Stop() {
					canceled[nextSeq] = true
					oracleCanceled++
				}
			}
			nextSeq++
			// A sparse pop mix keeps the clock advancing through rung
			// consumption while the pending set keeps growing.
			if r.Intn(4) == 0 {
				at, seq, ok := popLive()
				oat, oseq, ook := oraclePopLive()
				if ok != ook || (ok && (at != oat || seq != oseq)) {
					t.Fatalf("seed %d push %d: kernel (at=%d seq=%d ok=%v), oracle (at=%d seq=%d ok=%v)",
						seed, i, at, seq, ok, oat, oseq, ook)
				}
			}
		}
		for {
			at, seq, ok := popLive()
			oat, oseq, ook := oraclePopLive()
			if ok != ook {
				t.Fatalf("seed %d drain: kernel drained=%v oracle drained=%v", seed, !ok, !ook)
			}
			if !ok {
				break
			}
			if at != oat || seq != oseq {
				t.Fatalf("seed %d drain: kernel (at=%d seq=%d), oracle (at=%d seq=%d)", seed, at, seq, oat, oseq)
			}
		}
		if k.Pending() != 0 || k.Live() != 0 {
			t.Fatalf("seed %d after drain: Pending=%d Live=%d, want 0/0", seed, k.Pending(), k.Live())
		}
	}
}

// TestLadderRunOrder checks the integrated path: a kernel Run with
// same-instant fan-out, cross-scheduling callbacks, and cancellations
// fires callbacks in exactly the (at, seq) order the heap oracle
// predicts.
func TestLadderRunOrder(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		o := &oracleHeap{}
		canceled := make(map[uint64]bool)
		var fired []uint64
		var nextSeq uint64
		var timers []struct {
			t   Timer
			seq uint64
		}

		var push func(depth int, at Time)
		push = func(depth int, at Time) {
			seq := nextSeq
			nextSeq++
			o.push(oracleEv{at: at, seq: seq})
			tm := k.At(at, func() {
				fired = append(fired, seq)
				if depth < 3 {
					n := r.Intn(3)
					for j := 0; j < n; j++ {
						d := Time(r.Intn(50))
						if r.Intn(3) == 0 {
							d = 0 // same-instant chain through the ring
						}
						push(depth+1, k.Now()+d)
					}
				}
			})
			timers = append(timers, struct {
				t   Timer
				seq uint64
			}{tm, seq})
		}
		for i := 0; i < 200; i++ {
			push(0, Time(r.Intn(1000)))
		}
		for i := 0; i < 40 && i < len(timers); i++ {
			j := r.Intn(len(timers))
			if timers[j].t.Stop() {
				canceled[timers[j].seq] = true
			}
		}
		k.RunAll()

		// The oracle can only be drained after the run, when the
		// dynamically pushed events are all known; the callbacks above
		// mirrored each push into it.
		var want []uint64
		for len(o.h) > 0 {
			e := o.pop()
			if !canceled[e.seq] {
				want = append(want, e.seq)
			}
		}
		if len(fired) != len(want) {
			t.Fatalf("seed %d: fired %d callbacks, oracle predicts %d", seed, len(fired), len(want))
		}
		for i := range fired {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: firing %d was seq %d, oracle predicts %d", seed, i, fired[i], want[i])
			}
		}
	}
}
