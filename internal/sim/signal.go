package sim

// waiterRef records a parked process waiting on a signal or condition,
// pinned to the wait generation it parked under. A ref whose
// generation no longer matches the proc's current one (the wait was
// abandoned — typically by a timed-wait expiry) is skipped at fire
// time.
type waiterRef struct {
	p   *Proc
	gen uint64
}

// Signal is a one-shot broadcast event. Processes Wait on it; Fire
// wakes all current and future waiters with the fired value. The
// kernel wakes waiters via zero-delay events so firing is safe from
// both process and event context.
type Signal struct {
	k       *Kernel
	label   string
	fired   bool
	value   any
	waiters []waiterRef
}

// NewSignal returns an unfired signal.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k, label: edgeSignal} }

// SetLabel names the profiler edge that waits on this signal park on.
// The label must be a compile-time constant; see DESIGN.md §15.
func (s *Signal) SetLabel(label string) { s.label = label }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the fired value (nil before firing).
func (s *Signal) Value() any { return s.value }

// Fire fires the signal with v, waking every waiter. Firing twice
// panics: one-shot semantics keep protocol state machines honest.
func (s *Signal) Fire(v any) {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	s.value = v
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.k.atWake(s.k.now, w.p, w.gen, v)
	}
}

// Barrier counts down from n and fires an underlying signal when all
// parties have arrived. The zero value is not usable; use NewBarrier.
type Barrier struct {
	remaining int
	sig       *Signal
}

// NewBarrier returns a barrier expecting n arrivals.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs a positive count")
	}
	return &Barrier{remaining: n, sig: NewSignal(k)}
}

// SetLabel names the profiler edge that waits on this barrier park on.
func (b *Barrier) SetLabel(label string) { b.sig.SetLabel(label) }

// Arrive records one arrival; the last arrival fires the barrier.
func (b *Barrier) Arrive() {
	if b.remaining <= 0 {
		panic("sim: barrier arrival after completion")
	}
	b.remaining--
	if b.remaining == 0 {
		b.sig.Fire(nil)
	}
}

// Wait blocks p until all parties have arrived.
func (b *Barrier) Wait(p *Proc) { p.Wait(b.sig) }

// Remaining reports how many arrivals are still outstanding.
func (b *Barrier) Remaining() int { return b.remaining }
