package sim

import "testing"

// churn mirrors cmd/bench's sanity-anchor workload: every fired event
// schedules a burst of 8 successors at mixed horizons until n have
// been scheduled, so the pending set grows to nearly n before the
// drain. This shape is what exposed a super-linear ladder regime the
// figure workloads (small pending sets) never reach.
func churn(n int) {
	k := NewKernel()
	var rng uint64 = 0x9e3779b97f4a7c15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	scheduled := 0
	var reschedule func()
	reschedule = func() {
		for burst := 0; burst < 8 && scheduled < n; burst++ {
			var d Time
			switch next() % 4 {
			case 0:
				d = 0
			case 1:
				d = Time(next() % 1000)
			case 2:
				d = Time(next() % 1_000_000)
			default:
				d = Time(next() % 1_000_000_000)
			}
			scheduled++
			t := k.After(d, reschedule)
			if next()%8 == 0 {
				t.Stop()
			}
		}
	}
	reschedule()
	k.RunAll()
}

// The size ladder checks that per-event cost stays flat as the
// pending set grows; the bottom-overflow conversion bug showed up
// here as super-linear growth (3.1µs/event at 100k, 5.9µs at 200k)
// while small sizes looked healthy.
func BenchmarkChurn25k(b *testing.B)  { benchChurn(b, 25_000) }
func BenchmarkChurn50k(b *testing.B)  { benchChurn(b, 50_000) }
func BenchmarkChurn100k(b *testing.B) { benchChurn(b, 100_000) }
func BenchmarkChurn200k(b *testing.B) { benchChurn(b, 200_000) }

func benchChurn(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		churn(n)
	}
}
