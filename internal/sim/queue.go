package sim

// closeSentinel wakes getters parked on a queue that gets closed.
type closeSentinel struct{}

// queuePutter is a parked producer holding the item it wants to add.
// Timed putters carry their wait generation and the timer of their
// expiry so admission can atomically decide between hand-off and
// timeout (whichever cancels the other first wins).
type queuePutter[T any] struct {
	p     *Proc
	item  T
	timed bool
	gen   uint64
	timer Timer
}

// Queue is a FIFO channel between processes. A capacity of 0 means
// unbounded; otherwise Put blocks while the queue is full. Get blocks
// while the queue is empty. Closing wakes all blocked parties.
type Queue[T any] struct {
	k       *Kernel
	label   string
	cap     int
	items   []T
	getters []*Proc
	putters []*queuePutter[T]
	closed  bool

	// handoff holds items already committed to dispatched getters, in
	// dispatch order from hhead (a head-index ring, reset when it
	// drains, so steady-state hand-offs reuse one backing array).
	// Carrying the item here instead of in the wake-up event's value
	// keeps the hand-off monomorphic: boxing a struct T into the
	// event's `any` slot would allocate per transfer.
	handoff []T
	hhead   int

	puts uint64
	gets uint64
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](k *Kernel, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: negative queue capacity")
	}
	return &Queue[T]{k: k, cap: capacity, label: edgeQueue}
}

// SetLabel names the profiler edge that parks and hand-offs on this
// queue are attributed to. The label must be a compile-time constant;
// see DESIGN.md §15.
func (q *Queue[T]) SetLabel(label string) { q.label = label }

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Puts reports the total number of items ever accepted.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Gets reports the total number of items ever delivered.
func (q *Queue[T]) Gets() uint64 { return q.gets }

// Put adds an item, blocking while a bounded queue is full. It reports
// false if the queue was closed before the item could be accepted.
func (q *Queue[T]) Put(p *Proc, item T) bool {
	if q.closed {
		return false
	}
	// Direct hand-off to a parked getter preserves FIFO wake order.
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.puts++
		q.gets++
		q.handoff = append(q.handoff, item)
		if pr := q.k.prof; pr != nil {
			pr.Handoff(q.k.now, q.label)
		}
		q.k.atDispatch(q.k.now, g, nil)
		return true
	}
	if q.cap == 0 || len(q.items) < q.cap {
		q.items = append(q.items, item)
		q.puts++
		return true
	}
	w := &queuePutter[T]{p: p, item: item}
	q.putters = append(q.putters, w)
	v := p.parkOn(q.label)
	if _, wasClosed := v.(closeSentinel); wasClosed {
		return false
	}
	return true
}

// PutTimeout adds an item, blocking at most d while a bounded queue is
// full. It reports whether the item was accepted; false means the
// queue was closed or the timeout expired with the queue still full.
// A non-positive d degenerates to TryPut.
func (q *Queue[T]) PutTimeout(p *Proc, item T, d Time) bool {
	if q.TryPut(item) {
		return true
	}
	if d <= 0 || q.closed {
		return false
	}
	w := &queuePutter[T]{p: p, item: item, timed: true}
	w.gen = p.beginWait()
	w.timer = q.k.atWake(q.k.now+d, p, w.gen, timeoutSentinel{})
	q.putters = append(q.putters, w)
	v := p.parkOn(q.label)
	switch v.(type) {
	case closeSentinel:
		return false
	case timeoutSentinel:
		// The entry is skipped (and dropped) by admitPutter/Close when
		// its turn comes: Stop on its expired timer reports false.
		return false
	}
	return true
}

// Evict removes and returns the oldest buffered item matching the
// predicate, without waking or blocking anybody beyond admitting one
// parked producer into the freed slot. Load-shedding consumers use it
// to drop stale work in favour of fresh arrivals.
func (q *Queue[T]) Evict(match func(T) bool) (item T, ok bool) {
	for i := range q.items {
		if !match(q.items[i]) {
			continue
		}
		item = q.items[i]
		copy(q.items[i:], q.items[i+1:])
		var zero T
		q.items[len(q.items)-1] = zero
		q.items = q.items[:len(q.items)-1]
		q.admitPutter()
		return item, true
	}
	var zero T
	return zero, false
}

// TryPut adds an item without blocking; it reports whether the item
// was accepted.
func (q *Queue[T]) TryPut(item T) bool {
	if q.closed {
		return false
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.puts++
		q.gets++
		q.handoff = append(q.handoff, item)
		if pr := q.k.prof; pr != nil {
			pr.Handoff(q.k.now, q.label)
		}
		q.k.atDispatch(q.k.now, g, nil)
		return true
	}
	if q.cap == 0 || len(q.items) < q.cap {
		q.items = append(q.items, item)
		q.puts++
		return true
	}
	return false
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	if len(q.items) > 0 {
		item = q.pop()
		q.admitPutter()
		return item, true
	}
	if q.closed {
		var zero T
		return zero, false
	}
	q.getters = append(q.getters, p)
	v := p.parkOn(q.label)
	if _, wasClosed := v.(closeSentinel); wasClosed {
		var zero T
		return zero, false
	}
	item = q.handoff[q.hhead]
	var zero T
	q.handoff[q.hhead] = zero
	q.hhead++
	if q.hhead == len(q.handoff) {
		q.handoff = q.handoff[:0]
		q.hhead = 0
	}
	return item, true
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (item T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	item = q.pop()
	q.admitPutter()
	return item, true
}

func (q *Queue[T]) pop() T {
	item := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.gets++
	return item
}

// admitPutter moves one parked producer's item into freed space.
// Timed putters whose expiry already fired are dropped: their producer
// has moved on and the item was reported rejected.
func (q *Queue[T]) admitPutter() {
	for len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		if w.timed && !w.timer.Stop() {
			continue
		}
		q.items = append(q.items, w.item)
		q.puts++
		q.k.atDispatch(q.k.now, w.p, nil)
		return
	}
}

// Close marks the queue closed and wakes every blocked getter and
// putter. Buffered items remain retrievable; Get drains them before
// reporting closure. Closing twice is a no-op.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	gs, ps := q.getters, q.putters
	q.getters, q.putters = nil, nil
	for _, g := range gs {
		q.k.atDispatch(q.k.now, g, closeSentinel{})
	}
	for _, w := range ps {
		if w.timed && !w.timer.Stop() {
			continue // its timeout fired first; the producer moved on
		}
		q.k.atDispatch(q.k.now, w.p, closeSentinel{})
	}
}
