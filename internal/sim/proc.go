package sim

import "fmt"

// Proc is a simulation process: a goroutine that cooperates with the
// kernel so that exactly one process (or the kernel loop) runs at a
// time. Procs are created with Kernel.Go and must only call their
// blocking methods (Sleep, Wait, ...) from their own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	id     uint64
	resume chan any
	parked bool
	done   bool
	term   *Signal // fired on termination with the proc's result

	// Wait-generation state. A proc waits on at most one signal or
	// condition at a time; wgen numbers that wait so competing wakers
	// (a signal fire racing a timed-wait expiry, or a stale waiter
	// list from an abandoned wait) resolve deterministically: the
	// first matching evWake wins and flips wcanceled.
	wgen      uint64
	wcanceled bool

	// span is the process's current telemetry span (see monitor.go).
	span SpanID
}

// beginWait opens a new wait generation and returns its number.
func (p *Proc) beginWait() uint64 {
	p.wgen++
	p.wcanceled = false
	return p.wgen
}

// Go starts fn as a new process at the current time. The name is used
// only for diagnostics.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.GoAfter(0, name, fn)
}

// GoAfter starts fn as a new process d from now.
func (k *Kernel) GoAfter(d Time, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.spawned,
		resume: make(chan any),
		parked: true, // a fresh proc waits for its first activation
	}
	p.term = NewSignal(k)
	k.spawned++
	k.procs++
	go func() {
		<-p.resume // first activation
		p.parked = false
		fn(p)
		p.done = true
		k.procs--
		p.term.Fire(nil)
		k.yield <- struct{}{}
	}()
	k.atDispatch(k.now+d, p, nil)
	return p
}

// dispatch hands control to a parked process and waits for it to park
// again or terminate. It must only be called from kernel (event)
// context.
func (k *Kernel) dispatch(p *Proc, v any) {
	if p.done {
		panic(fmt.Sprintf("sim: dispatch to terminated proc %q", p.name))
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: dispatch to running proc %q", p.name))
	}
	p.resume <- v
	<-k.yield
}

// park gives control back to the kernel and blocks until the next
// dispatch, returning the value it carries.
func (p *Proc) park() any {
	p.parked = true
	p.k.yield <- struct{}{}
	v := <-p.resume
	p.parked = false
	return v
}

// Name reports the diagnostic name of the process.
func (p *Proc) Name() string { return p.name }

// Kernel reports the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Term returns a signal fired when the process terminates; waiting on
// it joins the process.
func (p *Proc) Term() *Signal { return p.term }

// Sleep blocks the process for d of virtual time. Zero-length sleeps
// still round-trip through the scheduler so that they act as a yield
// point with deterministic ordering.
func (p *Proc) Sleep(d Time) { p.sleepOn(d, edgeSleep) }

// sleepOn is Sleep with the park attributed to a specific profiler
// edge; labeled resources route their hold-sleeps through it so the
// ledger charges the round trip to the resource, not to "sim/sleep".
func (p *Proc) sleepOn(d Time, edge string) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.atDispatch(p.k.now+d, p, nil)
	p.parkOn(edge)
}

// Wait blocks until the signal fires and returns the fired value. If
// the signal already fired it returns immediately.
func (p *Proc) Wait(s *Signal) any {
	if s.fired {
		return s.value
	}
	s.waiters = append(s.waiters, waiterRef{p: p, gen: p.beginWait()})
	return p.parkOn(s.label)
}

// timeoutSentinel is delivered to a proc when a timed wait expires.
type timeoutSentinel struct{}

// WaitTimeout blocks until the signal fires or d elapses. ok reports
// whether the signal fired (true) as opposed to the timeout expiring.
func (p *Proc) WaitTimeout(s *Signal, d Time) (v any, ok bool) {
	if s.fired {
		return s.value, true
	}
	gen := p.beginWait()
	s.waiters = append(s.waiters, waiterRef{p: p, gen: gen})
	t := p.k.atWake(p.k.now+d, p, gen, timeoutSentinel{})
	got := p.parkOn(s.label)
	if _, isTimeout := got.(timeoutSentinel); isTimeout {
		return nil, false
	}
	t.Stop()
	return got, true
}

// Join blocks until q terminates. Joining an already-terminated
// process returns immediately.
func (p *Proc) Join(q *Proc) { p.Wait(q.term) }
