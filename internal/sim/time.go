// Package sim provides a deterministic discrete-event simulation kernel
// with lightweight cooperative processes, in the style of SimPy.
//
// The kernel owns a virtual clock and an event heap. Processes are Go
// goroutines that hand control back and forth with the kernel over
// channels so that exactly one of them runs at any instant; together
// with a sequence-number tie-break in the event heap this makes every
// simulation fully deterministic.
//
// All higher layers of this repository (the physical network, the VIA
// emulation, the kernel TCP path, the SocketVIA sockets layer and the
// DataCutter filter framework) are built as sim processes.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the
// start of the simulation.
type Time int64

// Duration constants, mirroring package time but for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// PerByte converts a bandwidth in megabits per second into the virtual
// time taken per byte, rounded to the nearest nanosecond fraction kept
// by integer math on whole messages. Use TransferTime for sizes.
func PerByte(mbps float64) float64 {
	if mbps <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return 8000.0 / mbps // ns per byte: 8 bits / (mbps * 1e6 / 1e9)
}

// TransferTime reports how long size bytes occupy a channel of the
// given bandwidth (Mbps).
func TransferTime(size int, mbps float64) Time {
	return Time(float64(size)*PerByte(mbps) + 0.5)
}

// BitsPerSec converts bytes moved over a duration into Mbps.
func BitsPerSec(bytes int64, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}
