package sim

// Cond is a broadcast condition variable for simulation processes.
// Unlike Signal it can fire repeatedly: each Broadcast wakes the
// current waiters and leaves the condition armed for the next
// generation. Use it in the classic loop shape:
//
//	for !predicate() {
//		cond.Wait(p)
//	}
//
// Cond keeps its waiter list directly (rather than through a
// throwaway Signal per broadcast) and reuses the slice's storage
// across generations: Broadcast on a streaming connection is a
// per-segment operation and must not allocate.
type Cond struct {
	k       *Kernel
	label   string
	waiters []waiterRef
}

// NewCond returns a condition variable on kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k, label: edgeCond} }

// SetLabel names the profiler edge that waits on this condition park
// on. The label must be a compile-time constant; see DESIGN.md §15.
func (c *Cond) SetLabel(label string) { c.label = label }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, waiterRef{p: p, gen: p.beginWait()})
	p.parkOn(c.label)
}

// WaitTimeout parks p until the next Broadcast or until d elapses; it
// reports whether a broadcast arrived.
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	gen := p.beginWait()
	c.waiters = append(c.waiters, waiterRef{p: p, gen: gen})
	t := c.k.atWake(c.k.now+d, p, gen, timeoutSentinel{})
	got := p.parkOn(c.label)
	if _, isTimeout := got.(timeoutSentinel); isTimeout {
		return false
	}
	t.Stop()
	return true
}

// Broadcast wakes all current waiters. Waiters whose timed wait
// already expired are filtered by the wake events' generation check.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = c.waiters[:0]
	for _, w := range ws {
		c.k.atWake(c.k.now, w.p, w.gen, nil)
	}
}
