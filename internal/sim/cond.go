package sim

// Cond is a broadcast condition variable for simulation processes.
// Unlike Signal it can fire repeatedly: each Broadcast wakes the
// current waiters and arms a fresh generation. Use it in the classic
// loop shape:
//
//	for !predicate() {
//		cond.Wait(p)
//	}
type Cond struct {
	k   *Kernel
	sig *Signal
}

// NewCond returns a condition variable on kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k, sig: NewSignal(k)} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	s := c.sig
	p.Wait(s)
}

// WaitTimeout parks p until the next Broadcast or until d elapses; it
// reports whether a broadcast arrived.
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	s := c.sig
	_, ok := p.WaitTimeout(s, d)
	return ok
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	s := c.sig
	c.sig = NewSignal(c.k)
	s.Fire(nil)
}
