package sim

import "slices"

// The event queue is a ladder queue (Tang, Goh, Thng: "Ladder queue:
// An O(1) amortized priority queue") specialized to *event and fronted
// by a same-virtual-time spill ring:
//
//   - nowq is a FIFO ring of events scheduled at exactly k.now. The
//     clock never runs backwards during Run, so an event scheduled at
//     the current instant can only be ordered after every other event
//     at this instant that is already queued — appending preserves the
//     (at, seq) total order with no queue work at all. This is the
//     dominant pattern in pipelined filter chains (zero-delay queue
//     hand-offs, signal fires, Sleep(0) yield points).
//   - bottom is a sorted run popped from the front; it always holds
//     the smallest ladder timestamps.
//   - rungs[0..n) are progressively finer bucket arrays: rungs[0] is
//     spawned from the unsorted top, and an over-full bucket spawns
//     the next finer rung over that bucket's time span. Buckets are
//     only sorted when they become the bottom, so each event is
//     bucketed O(1) times amortized.
//   - top is the unsorted overflow for everything at or beyond
//     topStart; it tracks its own min/max so the next rung spawned
//     from it covers exactly the occupied span.
//
// The structures partition virtual time:
//
//	bottom < rungs[last].curStart <= ... <= rungs[0].end <= topStart <= top
//
// so the global minimum is always the bottom front (or the ring
// front, compared lazily at pop time). Same-timestamp events never
// straddle a partition boundary — boundaries are pure time cuts and
// ties are broken by seq inside one sorted run — so the pop sequence
// is exactly the (at, seq) total order the binary heap produced.
//
// Canceled events are absorbed (released back to the pool) whenever a
// bucket or the top is transferred, so tombstones from timer-heavy
// workloads die wholesale per rung instead of leaking to the pop
// path one by one.
const (
	// ladderBuckets is the fan-out of every rung: the top is split
	// into at most this many buckets, as is an over-full bucket.
	ladderBuckets = 64
	// ladderSpawn is the bucket size beyond which a bucket is split
	// into a finer rung rather than sorted into the bottom.
	ladderSpawn = 64
	// ladderDirect is the top size up to which a top transfer skips
	// the rung machinery and sorts straight into the bottom. Small
	// queues — the common simulation regime — stay a two-level
	// structure with one sort per drain.
	ladderDirect = 64
	// ladderMaxRungs bounds rung recursion; at the bound a bucket is
	// sorted into the bottom regardless of size.
	ladderMaxRungs = 16
	// ladderBottomMax bounds the bottom's live window. Past it, sorted
	// inserts degenerate into the O(window) memmove regime of a flat
	// array — exactly what happens after a small-but-wide top transfer
	// sets topStart beyond every future arrival — so the window is
	// re-bucketed into a rung instead (the ladder paper's THRES rule).
	ladderBottomMax = 128
)

// rung is one bucket array of the ladder. Buckets before cur have
// been consumed; curStart is therefore the lower bound of every event
// still in the rung. limit is the rung's routing ceiling (exclusive):
// because bucket widths are rounded up, end() can overshoot the span
// the rung was spawned to cover, and routing an arrival from the
// overshoot region into this rung instead of its parent's next bucket
// would let it pop ahead of earlier (at, seq) events held there. The
// creation sites set limit to the exact covered span: the parent
// bucket's upper bound for a child, topStart for a top transfer, the
// outer floor for a bottom conversion.
type rung struct {
	start   Time
	width   Time
	limit   Time
	nb      int
	cur     int
	count   int
	buckets [][]*event
}

func (r *rung) curStart() Time { return r.start + Time(r.cur)*r.width }
func (r *rung) end() Time      { return r.start + Time(r.nb)*r.width }

func eventCmp(a, b *event) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	default:
		return 0
	}
}

// schedule routes a freshly stamped event to the same-time ring or
// the ladder. The ring guard on the last entry covers the one case
// where now is not monotone: Run's horizon clamp can move the clock
// before ring entries left over from a stopped run, and later
// same-instant arrivals must then take the ordered path.
func (k *Kernel) schedule(e *event) {
	if e.at == k.now {
		if n := len(k.nowq); n == k.nowHead || k.nowq[n-1].at <= e.at {
			k.nowq = append(k.nowq, e)
			return
		}
	}
	k.ladderPush(e)
}

func (k *Kernel) ladderPush(e *event) {
	k.lsize++
	if e.at >= k.topStart {
		if len(k.top) == 0 {
			k.topMin, k.topMax = e.at, e.at
		} else {
			if e.at < k.topMin {
				k.topMin = e.at
			}
			if e.at > k.topMax {
				k.topMax = e.at
			}
		}
		k.top = append(k.top, e)
		return
	}
	if n := len(k.rungs); n > 0 && e.at >= k.rungs[n-1].curStart() {
		// Below topStart and inside the active rung ranges: the
		// innermost rung covering e.at gets it. Walking outwards is
		// correct because each inner rung's limit is exactly the
		// outer floor it was spawned under.
		for i := n - 1; i >= 0; i-- {
			r := k.rungs[i]
			if e.at < r.limit {
				idx := int((e.at - r.start) / r.width)
				r.buckets[idx] = append(r.buckets[idx], e)
				r.count++
				return
			}
		}
		panic("sim: ladder push fell through rungs")
	}
	// Below every rung's active range: sorted insert into the bottom.
	// Near-future arrivals usually land at the end, making this an
	// append; interior inserts (mid-range timers) binary-search.
	b := k.bottom
	if len(b) == k.bhead || !eventLess(e, b[len(b)-1]) {
		k.bottom = append(b, e)
	} else {
		lo, hi := k.bhead, len(b)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if eventLess(e, b[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		k.bottom = append(b, nil)
		copy(k.bottom[lo+1:], k.bottom[lo:])
		k.bottom[lo] = e
	}
	if len(k.bottom)-k.bhead > ladderBottomMax {
		k.convertBottom()
	}
}

// convertBottom re-buckets the bottom's live window into a new
// innermost rung spanning everything below the current floor. Without
// this, one small-but-wide top transfer leaves topStart beyond every
// future arrival and the bottom accretes into a flat sorted array with
// O(window) insertion — the regime a large pending set turns quadratic.
// Canceled events are absorbed in passing, like every other transfer.
func (k *Kernel) convertBottom() {
	if len(k.rungs) >= ladderMaxRungs {
		return
	}
	floor := k.topStart
	if n := len(k.rungs); n > 0 {
		floor = k.rungs[n-1].curStart()
	}
	start := k.bottom[k.bhead].at
	r := k.newRung(start, floor-start)
	r.limit = floor
	for _, e := range k.bottom[k.bhead:] {
		if e.canceled {
			k.absorb(e)
			continue
		}
		idx := int((e.at - r.start) / r.width)
		r.buckets[idx] = append(r.buckets[idx], e)
		r.count++
	}
	clear(k.bottom)
	k.bottom = k.bottom[:0]
	k.bhead = 0
	k.rungs = append(k.rungs, r)
}

// ladderBound reports a lower bound on the ladder's minimum
// timestamp, valid while lsize > 0. It lets the pop path skip
// materializing the ladder minimum when the ring front is strictly
// earlier — the fast path never touches the queue.
func (k *Kernel) ladderBound() Time {
	if k.bhead < len(k.bottom) {
		return k.bottom[k.bhead].at
	}
	if n := len(k.rungs); n > 0 {
		return k.rungs[n-1].curStart()
	}
	return k.topMin
}

// ladderPeek returns the ladder's minimum event without removing it,
// or nil when the ladder is empty. It advances the structure as
// needed: consuming rung buckets into the bottom, spawning finer
// rungs from over-full buckets, and transferring the top when
// everything below it has drained. Canceled events are absorbed
// during every transfer.
func (k *Kernel) ladderPeek() *event {
	for {
		if k.bhead < len(k.bottom) {
			return k.bottom[k.bhead]
		}
		if len(k.bottom) > 0 || k.bhead > 0 {
			k.bottom = k.bottom[:0]
			k.bhead = 0
		}
		if n := len(k.rungs); n > 0 {
			r := k.rungs[n-1]
			for r.cur < r.nb && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur == r.nb {
				k.rungs = k.rungs[:n-1]
				k.rungPool = append(k.rungPool, r)
				continue
			}
			bs := r.buckets[r.cur]
			bstart := r.curStart()
			r.cur++
			r.count -= len(bs)
			if len(bs) > ladderSpawn && r.width > 1 && len(k.rungs) < ladderMaxRungs {
				child := k.newRung(bstart, r.width)
				child.limit = bstart + r.width // the parent bucket's exact span
				for _, e := range bs {
					if e.canceled {
						k.absorb(e)
						continue
					}
					idx := int((e.at - child.start) / child.width)
					child.buckets[idx] = append(child.buckets[idx], e)
					child.count++
				}
				k.rungs = append(k.rungs, child)
			} else {
				for _, e := range bs {
					if e.canceled {
						k.absorb(e)
						continue
					}
					k.bottom = append(k.bottom, e)
				}
				slices.SortFunc(k.bottom, eventCmp)
			}
			clear(bs)
			r.buckets[r.cur-1] = bs[:0]
			continue
		}
		if len(k.top) > 0 {
			live := k.top[:0]
			for _, e := range k.top {
				if e.canceled {
					k.absorb(e)
				} else {
					live = append(live, e)
				}
			}
			clear(k.top[len(live):])
			k.top = live
			if len(k.top) == 0 {
				return nil
			}
			if len(k.top) <= ladderDirect {
				k.bottom = append(k.bottom, k.top...)
				clear(k.top)
				k.top = k.top[:0]
				k.topStart = k.topMax + 1
				slices.SortFunc(k.bottom, eventCmp)
				continue
			}
			r := k.newRung(k.topMin, k.topMax-k.topMin+1)
			r.limit = r.end() // topStart moves to end(), so no overlap above
			for _, e := range k.top {
				idx := int((e.at - r.start) / r.width)
				r.buckets[idx] = append(r.buckets[idx], e)
				r.count++
			}
			clear(k.top)
			k.top = k.top[:0]
			k.topStart = r.end()
			k.rungs = append(k.rungs, r)
			continue
		}
		return nil
	}
}

// newRung takes a rung from the pool (or allocates one) sized to
// cover span starting at start with at most ladderBuckets buckets.
func (k *Kernel) newRung(start, span Time) *rung {
	var r *rung
	if n := len(k.rungPool); n > 0 {
		r = k.rungPool[n-1]
		k.rungPool = k.rungPool[:n-1]
	} else {
		r = &rung{}
	}
	width := (span + ladderBuckets - 1) / ladderBuckets
	if width < 1 {
		width = 1
	}
	nb := int((span + width - 1) / width)
	r.start, r.width, r.nb, r.cur, r.count = start, width, nb, 0, 0
	r.limit = start + span // default: the exact requested span; sites may widen
	if cap(r.buckets) < nb {
		old := r.buckets
		r.buckets = make([][]*event, nb)
		copy(r.buckets, old)
	} else {
		r.buckets = r.buckets[:nb]
	}
	return r
}

// absorb releases a canceled event encountered during a transfer.
func (k *Kernel) absorb(e *event) {
	k.lsize--
	k.ncanceled--
	k.releaseEvent(e)
}

// peekNext returns the next event in (at, seq) order across the ring
// and the ladder without removing it, or nil when the kernel has no
// scheduled events. A ladder event at the ring front's timestamp was
// necessarily scheduled before the clock reached it, so it carries a
// smaller seq and must win; the lazy bound avoids materializing the
// ladder minimum when the ring front is strictly earlier.
func (k *Kernel) peekNext() *event {
	var rf *event
	if k.nowHead < len(k.nowq) {
		rf = k.nowq[k.nowHead]
	}
	if rf == nil {
		if k.lsize == 0 {
			return nil
		}
		return k.ladderPeek()
	}
	if k.lsize == 0 || rf.at < k.ladderBound() {
		return rf
	}
	lm := k.ladderPeek()
	if lm != nil && eventLess(lm, rf) {
		return lm
	}
	return rf
}

// popNext removes the event peekNext just returned: either the ring
// front or the bottom front (ladderPeek always materializes the
// ladder minimum into the bottom). It reports whether the event came
// from the same-instant ring, which the run loop feeds to the
// profiler's RingHit counter for live events.
func (k *Kernel) popNext(e *event) bool {
	if h := k.nowHead; h < len(k.nowq) && k.nowq[h] == e {
		k.nowq[h] = nil
		k.nowHead++
		if k.nowHead == len(k.nowq) {
			k.nowq = k.nowq[:0]
			k.nowHead = 0
		}
		return true
	}
	k.bottom[k.bhead] = nil
	k.bhead++
	k.lsize--
	return false
}

// maybeCompact sweeps canceled events out of the ladder once they
// outnumber the live ones (same trigger the binary heap used). Ring
// entries drain at the current instant and are merely recounted. Pop
// order is unaffected: absorption only removes events that would have
// been skipped.
func (k *Kernel) maybeCompact() {
	if k.ncanceled < 64 || k.ncanceled <= k.Pending()/2 {
		return
	}
	live := k.bottom[:k.bhead]
	for _, e := range k.bottom[k.bhead:] {
		if e.canceled {
			k.lsize--
			k.releaseEvent(e)
		} else {
			live = append(live, e)
		}
	}
	clear(k.bottom[len(live):])
	k.bottom = live
	for _, r := range k.rungs {
		for i := r.cur; i < r.nb; i++ {
			bs := r.buckets[i]
			kept := bs[:0]
			for _, e := range bs {
				if e.canceled {
					k.lsize--
					r.count--
					k.releaseEvent(e)
				} else {
					kept = append(kept, e)
				}
			}
			clear(bs[len(kept):])
			r.buckets[i] = kept
		}
	}
	keptTop := k.top[:0]
	for _, e := range k.top {
		if e.canceled {
			k.lsize--
			k.releaseEvent(e)
		} else {
			keptTop = append(keptTop, e)
		}
	}
	clear(k.top[len(keptTop):])
	k.top = keptTop
	n := 0
	for i := k.nowHead; i < len(k.nowq); i++ {
		if k.nowq[i].canceled {
			n++
		}
	}
	k.ncanceled = n
}
