package sim

import "testing"

func TestCondBroadcastWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	woke := 0
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.GoAfter(10, "b", func(p *Proc) { c.Broadcast() })
	k.RunAll()
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestCondSupportsRepeatedGenerations(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	value := 0
	var seen []int
	k.Go("consumer", func(p *Proc) {
		for value < 3 {
			c.Wait(p)
			seen = append(seen, value)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			value = i
			c.Broadcast()
		}
	})
	k.RunAll()
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestCondWaiterAfterBroadcastWaitsForNext(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	c.Broadcast() // nobody waiting; must not satisfy future waiters
	var wokeAt Time
	k.Go("w", func(p *Proc) {
		c.Wait(p)
		wokeAt = p.Now()
	})
	k.GoAfter(50, "b", func(p *Proc) { c.Broadcast() })
	k.RunAll()
	if wokeAt != 50 {
		t.Fatalf("woke at %v, want 50 (stale broadcast leaked)", wokeAt)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var gotBroadcast bool
	var at Time
	k.Go("w", func(p *Proc) {
		gotBroadcast = c.WaitTimeout(p, 30)
		at = p.Now()
	})
	k.RunAll()
	if gotBroadcast || at != 30 {
		t.Fatalf("timeout wait: ok=%v at=%v", gotBroadcast, at)
	}
	// And the signalled case.
	k2 := NewKernel()
	c2 := NewCond(k2)
	k2.Go("w", func(p *Proc) {
		if !c2.WaitTimeout(p, 100) {
			t.Error("broadcast not seen")
		}
	})
	k2.GoAfter(5, "b", func(p *Proc) { c2.Broadcast() })
	k2.RunAll()
}

func TestKernelCounters(t *testing.T) {
	k := NewKernel()
	k.Go("a", func(p *Proc) { p.Sleep(5) })
	k.Go("b", func(p *Proc) {})
	k.RunAll()
	if k.ProcsSpawned() != 2 {
		t.Fatalf("spawned = %d", k.ProcsSpawned())
	}
	if k.EventsFired() == 0 {
		t.Fatal("no events fired")
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d", k.Pending())
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	p := k.Go("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel mismatch")
		}
		p.Sleep(7)
	})
	k.RunAll()
	if !p.Done() {
		t.Fatal("proc not done")
	}
	if !p.Term().Fired() {
		t.Fatal("term signal not fired")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	k.Go("w", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	k.RunAll()
}
