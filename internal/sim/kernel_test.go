package sim

import (
	"fmt"
	"testing"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestKernelBreaksTiesInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestKernelAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.RunAll()
	if at != 150 {
		t.Fatalf("fired at %v, want 150", at)
	}
}

func TestKernelHorizonStopsClock(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(1000, func() { fired = true })
	end := k.Run(500)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 500 {
		t.Fatalf("end = %v, want 500", end)
	}
	// Continuing past the horizon fires the event.
	k.RunAll()
	if !fired {
		t.Fatal("event did not fire on resumed run")
	}
}

func TestKernelStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	k.RunAll()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	k.RunAll()
	if count != 2 {
		t.Fatalf("count after resume = %d, want 2", count)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.RunAll()
}

func TestTimerStopCancelsEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop reported false for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	k.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(25 * Microsecond)
		wake = p.Now()
	})
	k.RunAll()
	if wake != 25*Microsecond {
		t.Fatalf("woke at %v, want 25us", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	k := NewKernel()
	var marks []Time
	k.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			marks = append(marks, p.Now())
		}
	})
	k.RunAll()
	want := []Time{10, 20, 30}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcZeroSleepYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.RunAll()
	// a runs first (spawned first), yields at Sleep(0), then b runs,
	// then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcJoinWaitsForTermination(t *testing.T) {
	k := NewKernel()
	var joinedAt Time
	worker := k.Go("worker", func(p *Proc) { p.Sleep(100) })
	k.Go("joiner", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	k.RunAll()
	if joinedAt != 100 {
		t.Fatalf("joined at %v, want 100", joinedAt)
	}
	if !worker.Done() {
		t.Fatal("worker not done")
	}
}

func TestProcJoinTerminatedReturnsImmediately(t *testing.T) {
	k := NewKernel()
	worker := k.Go("worker", func(p *Proc) {})
	var joinedAt Time = -1
	k.GoAfter(50, "joiner", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	k.RunAll()
	if joinedAt != 50 {
		t.Fatalf("joined at %v, want 50", joinedAt)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woke := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			v := p.Wait(s)
			if v.(string) != "hello" {
				t.Errorf("waiter %d got %v", i, v)
			}
			woke[i] = p.Now()
		})
	}
	k.GoAfter(40, "firer", func(p *Proc) { s.Fire("hello") })
	k.RunAll()
	for i, w := range woke {
		if w != 40 {
			t.Fatalf("waiter %d woke at %v, want 40", i, w)
		}
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	s.Fire(7)
	var got any
	k.Go("w", func(p *Proc) { got = p.Wait(s) })
	k.RunAll()
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	s.Fire(nil)
	defer func() {
		if recover() == nil {
			t.Error("double fire did not panic")
		}
	}()
	s.Fire(nil)
}

func TestWaitTimeoutExpires(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var ok bool
	var at Time
	k.Go("w", func(p *Proc) {
		_, ok = p.WaitTimeout(s, 30)
		at = p.Now()
	})
	k.RunAll()
	if ok {
		t.Fatal("timed-out wait reported ok")
	}
	if at != 30 {
		t.Fatalf("woke at %v, want 30", at)
	}
}

func TestWaitTimeoutSignalBeatsTimer(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var ok bool
	var got any
	k.Go("w", func(p *Proc) { got, ok = p.WaitTimeout(s, 100) })
	k.GoAfter(10, "f", func(p *Proc) { s.Fire("v") })
	k.RunAll()
	if !ok || got != "v" {
		t.Fatalf("got %v ok=%v, want v true", got, ok)
	}
	// The canceled timeout timer must not fire anything later.
	if k.Pending() != 0 {
		k.RunAll()
	}
}

func TestBarrierReleasesOnLastArrival(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 3)
	var woke Time
	k.Go("waiter", func(p *Proc) {
		b.Wait(p)
		woke = p.Now()
	})
	for i := 0; i < 3; i++ {
		d := Time((i + 1) * 10)
		k.GoAfter(d, "arriver", func(p *Proc) { b.Arrive() })
	}
	k.RunAll()
	if woke != 30 {
		t.Fatalf("barrier released at %v, want 30", woke)
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %d", b.Remaining())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		var log []string
		k := NewKernel()
		q := NewQueue[int](k, 2)
		for i := 0; i < 3; i++ {
			i := i
			k.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					q.Put(p, i*10+j)
					p.Sleep(Time(3 + i))
				}
			})
		}
		k.Go("cons", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				log = append(log, fmt.Sprintf("%d@%d", v, p.Now()))
				p.Sleep(2)
				if len(log) == 15 {
					q.Close()
				}
			}
		})
		k.RunAll()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
