package sim

import "fmt"

// resWaiter is a parked process waiting to acquire n units.
type resWaiter struct {
	p *Proc
	n int
}

// Resource is a counted semaphore with a FIFO wait queue, used to
// model contended hardware such as CPUs, DMA engines and I/O ports. It
// also integrates utilization over time for experiment reporting.
type Resource struct {
	k     *Kernel
	label string
	cap   int
	inUse int
	queue []*resWaiter

	lastChange Time
	busyInt    float64 // integral of inUse over time, unit-ns
}

// NewResource returns a resource with the given capacity.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, cap: capacity, label: edgeResource}
}

// SetLabel names the profiler edge that acquire-parks and hold-sleeps
// on this resource are attributed to. The label must be a
// compile-time constant; see DESIGN.md §15.
func (r *Resource) SetLabel(label string) { r.label = label }

// Cap reports the capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse reports the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of parked acquirers.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.k.now
	r.busyInt += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}

// Utilization reports mean busy fraction (0..1 per unit of capacity)
// since the start of the simulation.
func (r *Resource) Utilization() float64 {
	r.account()
	if r.lastChange == 0 {
		return 0
	}
	return r.busyInt / float64(r.lastChange) / float64(r.cap)
}

// Acquire takes n units, blocking FIFO behind earlier acquirers while
// insufficient units are free.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.cap {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, r.cap))
	}
	if len(r.queue) == 0 && r.inUse+n <= r.cap {
		r.account()
		r.inUse += n
		return
	}
	r.queue = append(r.queue, &resWaiter{p: p, n: n})
	p.parkOn(r.label)
}

// TryAcquire takes n units without blocking and reports success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.cap {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, r.cap))
	}
	if len(r.queue) == 0 && r.inUse+n <= r.cap {
		r.account()
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and admits as many parked acquirers as now
// fit, in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d with %d in use", n, r.inUse))
	}
	r.account()
	r.inUse -= n
	for len(r.queue) > 0 && r.inUse+r.queue[0].n <= r.cap {
		w := r.queue[0]
		r.queue = r.queue[1:]
		r.inUse += w.n
		r.k.atDispatch(r.k.now, w.p, nil)
	}
}

// Use acquires n units, holds them for d, and releases them. This is
// the idiom for "spend d of CPU time".
func (r *Resource) Use(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.sleepOn(d, r.label)
	r.Release(n)
}
