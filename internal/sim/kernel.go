package sim

import "fmt"

// Event kinds. Most scheduled work is a process wake-up, not an
// arbitrary callback; giving wake-ups their own kinds lets the hot
// paths (Sleep, queue hand-off, signal fire) schedule without
// allocating a closure per event.
const (
	// evFunc runs fn().
	evFunc = iota
	// evDispatch resumes proc with val unconditionally.
	evDispatch
	// evWake resumes proc with val only if the proc's wait generation
	// still matches wgen and no other waker got there first. Signal
	// fire and timed-wait expiry race through this kind.
	evWake
)

// event is a scheduled callback or process wake-up. Events are pooled
// per kernel: gen increments on every recycle so a stale Timer handle
// can never cancel the event's next incarnation.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	gen uint64

	kind uint8
	// canceled events stay in the heap but are skipped when popped;
	// the kernel compacts the heap when they pile up.
	canceled bool

	fn   func() // evFunc
	proc *Proc  // evDispatch, evWake
	val  any    // evDispatch, evWake
	wgen uint64 // evWake
}

// Timer is a handle to a scheduled callback that can be stopped. The
// zero value is an inert timer: Stop reports false, Pending reports
// false.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint64
}

// Stop cancels the timer. It is safe to call after the timer fired, in
// which case it reports false.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	t.k.ncanceled++
	t.k.maybeCompact()
	return true
}

// Pending reports whether the timer is armed: scheduled, not yet
// fired, not stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	heap    []*event // min-heap ordered by (at, seq)
	pool    []*event // recycled events
	seq     uint64
	stopped bool
	// ncanceled counts canceled events still in the heap; when they
	// outnumber live events the heap is compacted so long-running
	// kernels that arm and stop many timers don't grow unboundedly.
	ncanceled int

	// process handoff
	yield chan struct{} // procs signal the kernel here when they park
	procs int           // live (started, not terminated) processes

	// stats
	fired   uint64
	spawned uint64

	// optional trace sink (see trace.go)
	trace TraceFunc
	// optional telemetry monitor (see monitor.go)
	mon Monitor
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports the number of events executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// ProcsSpawned reports the number of processes ever started.
func (k *Kernel) ProcsSpawned() uint64 { return k.spawned }

// newEvent takes an event from the pool (or allocates one) and
// schedules it at absolute time t. Scheduling in the past panics: that
// is always a modelling bug.
func (k *Kernel) newEvent(t Time) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	var e *event
	if n := len(k.pool); n > 0 {
		e = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	e.seq = k.seq
	k.seq++
	k.heapPush(e)
	return e
}

// releaseEvent recycles a popped event. The generation bump invalidates
// every Timer handle pointing at it.
func (k *Kernel) releaseEvent(e *event) {
	e.gen++
	e.canceled = false
	e.fn = nil
	e.proc = nil
	e.val = nil
	e.wgen = 0
	k.pool = append(k.pool, e)
}

// At schedules fn to run at absolute time t.
func (k *Kernel) At(t Time, fn func()) Timer {
	e := k.newEvent(t)
	e.kind = evFunc
	e.fn = fn
	return Timer{k: k, ev: e, gen: e.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// atDispatch schedules an unconditional wake-up of p carrying v.
func (k *Kernel) atDispatch(t Time, p *Proc, v any) {
	e := k.newEvent(t)
	e.kind = evDispatch
	e.proc = p
	e.val = v
}

// atWake schedules a conditional wake-up of p carrying v, valid only
// while p's wait generation is still wgen.
func (k *Kernel) atWake(t Time, p *Proc, wgen uint64, v any) Timer {
	e := k.newEvent(t)
	e.kind = evWake
	e.proc = p
	e.val = v
	e.wgen = wgen
	return Timer{k: k, ev: e, gen: e.gen}
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the heap is empty, Stop is called, or
// until (when horizon > 0) the clock would pass the horizon. It
// reports the time at which it stopped. Processes still blocked when
// Run returns are simply never resumed; their goroutines are parked
// forever, which Go collects at process exit.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		e := k.heap[0]
		if horizon > 0 && e.at > horizon {
			k.now = horizon
			return k.now
		}
		k.heapPop()
		if e.canceled {
			k.ncanceled--
			k.releaseEvent(e)
			continue
		}
		k.now = e.at
		k.fired++
		// Recycle before executing: the handler may schedule new
		// events (reusing this object is then fine — its fields are
		// already copied out) and a Stop on this event's timer during
		// execution must be a no-op on the next incarnation.
		kind, fn, proc, val, wgen := e.kind, e.fn, e.proc, e.val, e.wgen
		k.releaseEvent(e)
		switch kind {
		case evFunc:
			fn()
		case evDispatch:
			k.dispatch(proc, val)
		case evWake:
			if proc.wgen == wgen && !proc.wcanceled {
				proc.wcanceled = true
				k.dispatch(proc, val)
			}
		}
	}
	return k.now
}

// RunAll runs with no horizon.
func (k *Kernel) RunAll() Time { return k.Run(0) }

// Pending reports the number of scheduled (possibly canceled) events.
func (k *Kernel) Pending() int { return len(k.heap) }

// Live reports the number of scheduled events that have not been
// canceled — the events that would still fire if the kernel kept
// running. A positive count after Run returned at its horizon means
// the simulation had not quiesced (watchdogs use this to flag
// virtual-time livelock).
func (k *Kernel) Live() int { return len(k.heap) - k.ncanceled }

// maybeCompact removes canceled events from the heap once they
// outnumber the live ones. Pop order is unaffected: (at, seq) is a
// total order, so the minimum is the minimum whatever the heap's
// internal layout.
func (k *Kernel) maybeCompact() {
	if k.ncanceled < 64 || k.ncanceled <= len(k.heap)/2 {
		return
	}
	live := k.heap[:0]
	for _, e := range k.heap {
		if e.canceled {
			k.releaseEvent(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(k.heap); i++ {
		k.heap[i] = nil
	}
	k.heap = live
	k.ncanceled = 0
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.siftDown(i)
	}
}

// The heap is hand-specialized to []*event: going through
// container/heap costs an interface conversion per operation and
// defeats inlining on the hottest path in the tree.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e *event) {
	k.heap = append(k.heap, e)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (k *Kernel) heapPop() *event {
	h := k.heap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	k.heap = h[:n]
	if n > 0 {
		k.siftDown(0)
	}
	return e
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && eventLess(h[right], h[left]) {
			least = right
		}
		if !eventLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
