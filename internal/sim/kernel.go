package sim

import "fmt"

// Event kinds. Most scheduled work is a process wake-up, not an
// arbitrary callback; giving wake-ups their own kinds lets the hot
// paths (Sleep, queue hand-off, signal fire) schedule without
// allocating a closure per event.
const (
	// evFunc runs fn().
	evFunc = iota
	// evDispatch resumes proc with val unconditionally.
	evDispatch
	// evWake resumes proc with val only if the proc's wait generation
	// still matches wgen and no other waker got there first. Signal
	// fire and timed-wait expiry race through this kind.
	evWake
)

// event is a scheduled callback or process wake-up. Events are pooled
// per kernel: gen increments on every recycle so a stale Timer handle
// can never cancel the event's next incarnation.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	gen uint64

	kind uint8
	// canceled events stay queued but are skipped when popped; the
	// ladder absorbs them wholesale when a bucket or the top is
	// transferred, and the kernel compacts when they pile up.
	canceled bool

	fn   func() // evFunc
	proc *Proc  // evDispatch, evWake
	val  any    // evDispatch, evWake
	wgen uint64 // evWake
}

// Timer is a handle to a scheduled callback that can be stopped. The
// zero value is an inert timer: Stop reports false, Pending reports
// false.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint64
}

// Stop cancels the timer. It is safe to call after the timer fired, in
// which case it reports false.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	t.k.ncanceled++
	t.k.maybeCompact()
	return true
}

// Pending reports whether the timer is armed: scheduled, not yet
// fired, not stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; create kernels with NewKernel.
//
// Scheduled events live in two structures ordered by (at, seq): a
// FIFO ring for events at exactly the current instant, and a ladder
// queue (see ladder.go) for everything later. The ring is the fast
// path: a same-time event is appended and popped with no ordering
// work at all.
type Kernel struct {
	now     Time
	pool    []*event // recycled events
	seq     uint64
	stopped bool

	// same-virtual-time spill ring: events at k.now, FIFO from nowHead.
	nowq    []*event
	nowHead int

	// ladder queue state (ladder.go).
	bottom   []*event // sorted run, popped from bhead
	bhead    int
	rungs    []*rung
	rungPool []*rung
	top      []*event // unsorted overflow, at >= topStart
	topStart Time
	topMin   Time
	topMax   Time
	lsize    int // events in bottom+rungs+top, including canceled

	// ncanceled counts canceled events still queued (ring + ladder);
	// when they outnumber live events the structures are compacted so
	// long-running kernels that arm and stop many timers don't grow
	// unboundedly.
	ncanceled int

	// process handoff
	yield chan struct{} // procs signal the kernel here when they park
	procs int           // live (started, not terminated) processes

	// stats
	fired   uint64
	spawned uint64

	// optional trace sink (see trace.go)
	trace TraceFunc
	// optional telemetry monitor (see monitor.go)
	mon Monitor
	// optional scheduler profiler (see profiler.go)
	prof Profiler
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports the number of events executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// ProcsSpawned reports the number of processes ever started.
func (k *Kernel) ProcsSpawned() uint64 { return k.spawned }

// newEvent takes an event from the pool (or allocates one), stamps it
// with absolute time t and the next seq, and routes it into the ring
// or the ladder. Scheduling in the past panics: that is always a
// modelling bug.
func (k *Kernel) newEvent(t Time) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	var e *event
	if n := len(k.pool); n > 0 {
		e = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	e.seq = k.seq
	k.seq++
	k.schedule(e)
	return e
}

// releaseEvent recycles a popped event. The generation bump invalidates
// every Timer handle pointing at it.
func (k *Kernel) releaseEvent(e *event) {
	e.gen++
	e.canceled = false
	e.fn = nil
	e.proc = nil
	e.val = nil
	e.wgen = 0
	k.pool = append(k.pool, e)
}

// At schedules fn to run at absolute time t.
func (k *Kernel) At(t Time, fn func()) Timer {
	e := k.newEvent(t)
	e.kind = evFunc
	e.fn = fn
	return Timer{k: k, ev: e, gen: e.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// atDispatch schedules an unconditional wake-up of p carrying v.
func (k *Kernel) atDispatch(t Time, p *Proc, v any) {
	e := k.newEvent(t)
	e.kind = evDispatch
	e.proc = p
	e.val = v
}

// atWake schedules a conditional wake-up of p carrying v, valid only
// while p's wait generation is still wgen.
func (k *Kernel) atWake(t Time, p *Proc, wgen uint64, v any) Timer {
	e := k.newEvent(t)
	e.kind = evWake
	e.proc = p
	e.val = v
	e.wgen = wgen
	return Timer{k: k, ev: e, gen: e.gen}
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty, Stop is called, or
// until (when horizon > 0) the clock would pass the horizon. It
// reports the time at which it stopped. Processes still blocked when
// Run returns are simply never resumed; their goroutines are parked
// forever, which Go collects at process exit.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for !k.stopped {
		e := k.peekNext()
		if e == nil {
			break
		}
		if horizon > 0 && e.at > horizon {
			k.now = horizon
			return k.now
		}
		fromRing := k.popNext(e)
		if e.canceled {
			k.ncanceled--
			k.releaseEvent(e)
			continue
		}
		k.now = e.at
		k.fired++
		if fromRing {
			if pr := k.prof; pr != nil {
				pr.RingHit(k.now)
			}
		}
		// Recycle before executing: the handler may schedule new
		// events (reusing this object is then fine — its fields are
		// already copied out) and a Stop on this event's timer during
		// execution must be a no-op on the next incarnation.
		kind, fn, proc, val, wgen := e.kind, e.fn, e.proc, e.val, e.wgen
		k.releaseEvent(e)
		switch kind {
		case evFunc:
			fn()
		case evDispatch:
			k.dispatch(proc, val)
		case evWake:
			if proc.wgen == wgen && !proc.wcanceled {
				proc.wcanceled = true
				k.dispatch(proc, val)
			}
		}
	}
	return k.now
}

// RunAll runs with no horizon.
func (k *Kernel) RunAll() Time { return k.Run(0) }

// Pending reports the number of scheduled (possibly canceled) events.
func (k *Kernel) Pending() int { return len(k.nowq) - k.nowHead + k.lsize }

// Live reports the number of scheduled events that have not been
// canceled — the events that would still fire if the kernel kept
// running. A positive count after Run returned at its horizon means
// the simulation had not quiesced (watchdogs use this to flag
// virtual-time livelock).
func (k *Kernel) Live() int { return k.Pending() - k.ncanceled }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
