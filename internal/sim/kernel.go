package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event      { return h[0] }
func (h *eventHeap) push(e *event)    { heap.Push(h, e) }
func (h *eventHeap) popEvent() *event { return heap.Pop(h).(*event) }

// Timer is a handle to a scheduled callback that can be stopped.
type Timer struct{ ev *event }

// Stop cancels the timer. It is safe to call after the timer fired, in
// which case it reports false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool

	// process handoff
	yield chan struct{} // procs signal the kernel here when they park
	procs int           // live (started, not terminated) processes

	// stats
	fired   uint64
	spawned uint64

	// optional trace sink (see trace.go)
	trace TraceFunc
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports the number of events executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// ProcsSpawned reports the number of processes ever started.
func (k *Kernel) ProcsSpawned() uint64 { return k.spawned }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: that is always a modelling bug.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	k.heap.push(e)
	return &Timer{ev: e}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the heap is empty, Stop is called, or
// until (when horizon > 0) the clock would pass the horizon. It
// reports the time at which it stopped. Processes still blocked when
// Run returns are simply never resumed; their goroutines are parked
// forever, which Go collects at process exit. Tests that care use
// Drain.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		e := k.heap.peek()
		if horizon > 0 && e.at > horizon {
			k.now = horizon
			return k.now
		}
		k.heap.popEvent()
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	return k.now
}

// RunAll runs with no horizon.
func (k *Kernel) RunAll() Time { return k.Run(0) }

// Pending reports the number of scheduled (possibly canceled) events.
func (k *Kernel) Pending() int { return len(k.heap) }
