package sim

import "fmt"

// Serializer models a unit-capacity FIFO resource — a DMA engine, a
// serialized stack stage, a wire serializer — whose occupancy time is
// known when the user arrives. That knowledge collapses the counted
// semaphore's park-on-acquire / sleep / wake-on-release protocol into
// horizon arithmetic: the i-th arrival starts at max(now, horizon),
// occupies the resource for hold, and the horizon advances to its end
// time, all decided at arrival. The process sleeps exactly once,
// straight to its end time, instead of parking on an acquire queue
// and again on a hold sleep.
//
// Timing is identical to NewResource(k, 1) with every user going
// through Use(p, 1, hold): arrival order equals the semaphore's FIFO
// queue order, and max(now, horizon) equals the time Release would
// have admitted the waiter. Only the scheduler traffic differs — a
// contended acquire costs no extra kernel event and no extra
// park/dispatch round trip.
type Serializer struct {
	k       *Kernel
	label   string
	horizon Time // virtual time at which the resource frees up
	busy    Time // total occupied time, for utilization reporting
}

// NewSerializer returns an idle serializer.
func NewSerializer(k *Kernel) *Serializer {
	return &Serializer{k: k, label: edgeSerializer}
}

// SetLabel names the profiler edge that Use-sleeps on this serializer
// are attributed to. The label must be a compile-time constant; see
// DESIGN.md §15.
func (s *Serializer) SetLabel(label string) { s.label = label }

// FreeAt reports the virtual time at which the resource is (or will
// become) free: the start time the next arrival would get.
func (s *Serializer) FreeAt() Time {
	if s.horizon < s.k.now {
		return s.k.now
	}
	return s.horizon
}

// Busy reports whether the resource is occupied at the current
// instant.
func (s *Serializer) Busy() bool { return s.horizon > s.k.now }

// Use occupies the resource for hold starting as soon as it is free,
// then keeps the process asleep for a further post after release —
// the idiom for "per-unit engine time, then fixed post-processing
// that doesn't hold the engine". The whole wait is one sleep; the
// resource itself frees at start+hold exactly as if Release had run
// then.
func (s *Serializer) Use(p *Proc, hold, post Time) {
	if hold < 0 || post < 0 {
		panic(fmt.Sprintf("sim: serializer use hold %v post %v", hold, post))
	}
	now := s.k.now
	start := now
	if s.horizon > start {
		start = s.horizon
	}
	s.horizon = start + hold
	s.busy += hold
	p.sleepOn(s.horizon+post-now, s.label)
}

// Utilization reports the fraction of virtual time the resource has
// been occupied since the start of the simulation.
func (s *Serializer) Utilization() float64 {
	now := s.k.now
	if now == 0 {
		return 0
	}
	busy := s.busy
	if s.horizon > now {
		busy -= s.horizon - now // in-progress occupancy not yet elapsed
	}
	return float64(busy) / float64(now)
}
