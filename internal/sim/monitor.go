package sim

// SpanID identifies one causal span within a Monitor. The zero value
// means "no span" and is used both as the root parent and as the
// return value when span collection is disabled.
type SpanID uint64

// Monitor receives telemetry callbacks from instrumented components:
// typed metric updates and causal span begin/end pairs, all stamped
// with virtual time. Like the trace sink, the kernel holds at most one
// monitor and every call site is nil-checked, so with no monitor
// attached the hot paths pay one pointer load per event and allocate
// nothing.
//
// Implementations must be passive observers: they may not advance the
// clock, schedule events, or otherwise perturb the simulation, so that
// attaching a monitor never changes a figure.
type Monitor interface {
	// Count adds delta to the named counter of a component.
	Count(at Time, component, name string, delta int64)
	// Gauge records the latest value of the named component gauge.
	Gauge(at Time, component, name string, value int64)
	// Observe adds one virtual-time sample to the named component
	// histogram.
	Observe(at Time, component, name string, v Time)
	// SpanBegin opens a causal span and returns its id, or zero when
	// span collection is disabled. proc is the process the span runs
	// on (nil in kernel/event context); parent links the span into the
	// cause tree.
	SpanBegin(at Time, proc *Proc, component, name, detail string, parent SpanID) SpanID
	// SpanEnd closes a span opened by SpanBegin. Zero ids are ignored.
	SpanEnd(at Time, id SpanID)
	// Instant records a zero-duration event (a retransmit firing, a
	// copy failing over) attached to the proc's current span, if any.
	Instant(at Time, proc *Proc, component, name, detail string)
}

// SetMonitor attaches (or with nil detaches) a telemetry monitor.
func (k *Kernel) SetMonitor(m Monitor) { k.mon = m }

// Monitor reports the attached monitor, nil when telemetry is off.
// Components nil-check it exactly like the trace sink, and guard any
// dynamically built detail string behind the check.
func (k *Kernel) Monitor() Monitor { return k.mon }

// MonSpan reports the process's current span (zero outside any span).
// New spans begun on this process use it as their parent.
func (p *Proc) MonSpan() SpanID { return p.span }

// SetMonSpan replaces the process's current span, returning control of
// parent linkage to telemetry scopes; callers must restore the
// previous value when their span ends.
func (p *Proc) SetMonSpan(id SpanID) { p.span = id }

// ID reports the process's spawn-order index, which is deterministic
// and unique within a kernel; telemetry uses it as the thread id of
// exported spans.
func (p *Proc) ID() uint64 { return p.id }
