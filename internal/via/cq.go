package via

import (
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// CQ is a completion queue. Send and receive work queues of any number
// of VIs on the same provider may be attached to one CQ; completions
// arrive in the order the adapter generates them.
type CQ struct {
	pr *Provider
	q  *sim.Queue[Completion]
}

// NewCQ creates a completion queue on the provider.
func (pr *Provider) NewCQ() *CQ {
	cq := &CQ{pr: pr, q: sim.NewQueue[Completion](pr.node.Kernel(), 0)}
	cq.q.SetLabel("via/cq")
	return cq
}

// Wait blocks until a completion is available and returns it, charging
// the configured wakeup cost (the host-side context switch out of
// VipCQWait) when the waiter actually blocked.
func (cq *CQ) Wait(p *sim.Proc) Completion {
	if c, ok := cq.q.TryGet(); ok {
		return c
	}
	k := cq.pr.node.Kernel()
	t0 := k.Now()
	sc := hpsmon.Begin(p, "via", "cq-wait", "")
	c, ok := cq.q.Get(p)
	sc.End()
	hpsmon.Observe(k, "via", "cq-wait", k.Now()-t0)
	if !ok {
		panic("via: completion queue closed")
	}
	cq.pr.node.Overhead(p, cq.pr.cfg.CQWakeup)
	return c
}

// Poll returns a completion without blocking.
func (cq *CQ) Poll() (Completion, bool) { return cq.q.TryGet() }

// Len reports the number of undelivered completions.
func (cq *CQ) Len() int { return cq.q.Len() }

// post delivers a completion to the queue (adapter side).
func (cq *CQ) post(c Completion) { _ = cq.q.TryPut(c) }
