// Package via emulates the Virtual Interface Architecture as
// implemented by the GigaNet cLAN adapters of the paper's testbed.
//
// The emulation reproduces the architectural elements user-level
// protocols program against: virtual interfaces (VIs) with send and
// receive work queues, descriptors, completion queues, registered
// memory, and a doorbell/DMA datapath. Costs are explicit and
// configurable: posting a descriptor costs user-level CPU time (no
// system call), the NIC serializes descriptors through a per-node DMA
// engine that models the 32-bit/33 MHz PCI bus, and frames cross the
// netsim wire. Reliable-delivery semantics are enforced: a message
// arriving at a VI with no posted receive descriptor breaks the
// connection, which is exactly why the SocketVIA layer above must run
// credit-based flow control.
package via

import "hpsockets/internal/sim"

// Status of a completed descriptor.
type Status uint8

const (
	// StatusOK means the transfer completed.
	StatusOK Status = iota
	// StatusRNR means the remote VI had no receive descriptor posted;
	// the connection is broken (reliable delivery).
	StatusRNR
	// StatusBroken means the connection was broken by an earlier error
	// or by the peer.
	StatusBroken
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRNR:
		return "rnr"
	case StatusBroken:
		return "broken"
	}
	return "unknown"
}

// Config carries the cost model of the emulated adapter. All CPU costs
// are charged against the owning node's CPUs; NIC costs advance time
// without consuming host CPU.
type Config struct {
	// MTU is the maximum payload bytes per wire frame.
	MTU int
	// HeaderSize is the per-frame wire header.
	HeaderSize int
	// MaxTransfer is the largest descriptor the adapter accepts
	// (64 KB in the VIA spec).
	MaxTransfer int

	// PostSendCPU and PostRecvCPU are the user-level costs of building
	// a descriptor and ringing the doorbell. No kernel transition.
	PostSendCPU sim.Time
	PostRecvCPU sim.Time

	// NICTxPerDesc is adapter processing per send descriptor;
	// NICTxPerFrame and NICRxPerFrame are per-frame costs.
	NICTxPerDesc  sim.Time
	NICTxPerFrame sim.Time
	NICRxPerFrame sim.Time

	// DMAPerByte (ns/byte) and DMAPerOp model the PCI bus the adapter
	// sits on. One engine per node is shared by both directions.
	DMAPerByte float64
	DMAPerOp   sim.Time

	// CQDeliver is the adapter-side cost of writing a completion;
	// CQWakeup is the host cost of waking a blocked CQ waiter.
	CQDeliver sim.Time
	CQWakeup  sim.Time

	// Memory registration costs (paid at setup time by SocketVIA's
	// buffer pools).
	RegBase    sim.Time
	RegPerPage sim.Time
	PageSize   int

	// ConnSetupCPU is charged on each side during connection setup.
	ConnSetupCPU sim.Time

	// ConnTimeout bounds how long Connect waits for the acceptor's
	// acknowledgement; zero (the default) waits forever, preserving
	// the fault-free behaviour exactly.
	ConnTimeout sim.Time

	// TxFIFODepth is the number of frames the adapter buffers between
	// the DMA stage and the wire stage; it sets how deeply DMA and
	// transmission pipeline.
	TxFIFODepth int
}

// CLANConfig returns the cost model calibrated against the paper's
// Figure 4 micro-benchmarks (one-way latency ~8.5 us for small
// messages, ~795 Mbps peak bandwidth at 64 KB on a 1.25 Gbps link
// behind a 32-bit 33 MHz PCI bus).
func CLANConfig() Config {
	return Config{
		// The cLAN adapter moves data in small cells; 2 KB frames give
		// the emulation intra-message pipelining across the DMA, wire
		// and receive stages, matching the measured latency curve's
		// slope without exploding the event count.
		MTU:           2 * 1024,
		HeaderSize:    32,
		MaxTransfer:   64 * 1024,
		PostSendCPU:   1200 * sim.Nanosecond,
		PostRecvCPU:   300 * sim.Nanosecond,
		NICTxPerDesc:  2600 * sim.Nanosecond,
		NICTxPerFrame: 150 * sim.Nanosecond,
		NICRxPerFrame: 500 * sim.Nanosecond,
		DMAPerByte:    9.7, // PCI with arbitration/burst overheads
		DMAPerOp:      200 * sim.Nanosecond,
		CQDeliver:     800 * sim.Nanosecond,
		CQWakeup:      1600 * sim.Nanosecond,
		RegBase:       5 * sim.Microsecond,
		RegPerPage:    1 * sim.Microsecond,
		PageSize:      4096,
		ConnSetupCPU:  10 * sim.Microsecond,
		TxFIFODepth:   2,
	}
}

// MemRegion is a registered memory region. VIA requires all buffers
// used in descriptors to be registered ahead of time.
type MemRegion struct {
	size       int
	registered bool
	// RDMA-exported regions carry backing storage remote writes land
	// in.
	rdma  bool
	bytes []byte
}

// Size reports the region size in bytes.
func (m *MemRegion) Size() int { return m.size }

// Desc is a work-queue descriptor. For sends, Len and Data describe
// the outgoing message (Data may be nil for size-only modelling). For
// receives, Len is the buffer capacity; on completion XferLen and Data
// describe what arrived.
type Desc struct {
	Region *MemRegion
	Len    int
	Data   []byte
	Ctx    any

	// Imm is the descriptor's immediate-data field; for sends it is
	// carried to the receiver and delivered in the matched receive
	// descriptor, as in the VIA descriptor control segment.
	Imm uint64

	// Completion results.
	Status  Status
	XferLen int
}

// Completion is an entry on a completion queue.
type Completion struct {
	VI     *VI
	Desc   *Desc
	IsRecv bool
	Status Status
}
