package via

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// packet kinds on the wire.
type pkKind uint8

const (
	pkData pkKind = iota
	pkRDMA
	pkConnReq
	pkConnAck
	pkBreak
	pkDisconnect
)

// packet is the VIA wire format carried in netsim frames.
type packet struct {
	kind    pkKind
	srcPort string
	srcVI   uint32
	dstVI   uint32
	svc     int // service number for connect requests

	// seq numbers every data/RDMA frame on a VI so the receiver can
	// detect a frame the fault model dropped (reliable delivery turns
	// loss into a broken connection). Control frames carry no seq.
	seq uint64
	// corrupt mirrors netsim.Frame.Corrupt into the packet at the
	// port handler, where the frame envelope is still in hand.
	corrupt bool

	// data fragments. frag is this fragment's view of the bytes; msg,
	// when non-nil, is the whole message's private wire buffer that
	// every fragment of the message aliases (see txDescLoop), so the
	// receiver can complete the descriptor with zero reassembly copies.
	msgLen  int
	fragLen int
	frag    []byte
	msg     []byte
	first   bool
	last    bool
	imm     uint64

	// RDMA write targeting
	rdmaHandle uint32
	rdmaOffset int

	// pooled marks a packet owned by a provider free list. The
	// receive engine frees every packet it consumes; the frag slice
	// is handed off to the matched descriptor, never recycled.
	pooled bool
}

// sendWork is one posted send descriptor awaiting the NIC.
type sendWork struct {
	vi   *VI
	desc *Desc

	rdma       bool
	rdmaHandle uint32
	rdmaOffset int
}

// connReq is a pending inbound connection.
type connReq struct {
	srcPort string
	srcVI   uint32
}

// Acceptor delivers inbound connection requests for one service.
type Acceptor struct {
	pr  *Provider
	svc int
	q   *sim.Queue[*connReq]
}

// Provider is the emulated VIA adapter of one node: the user-level
// library state plus the NIC engines (descriptor fetch, DMA, wire TX,
// RX) running as simulation processes.
type Provider struct {
	node *cluster.Node
	net  *netsim.Network
	cfg  Config
	// dma stays a counted Resource rather than a sim.Serializer: the
	// engine is contended from both directions (tx fragments against rx
	// fragments), and the serializer's collapse of the acquire/release
	// protocol assigns the wake-up's queue position at arrival instead
	// of at release, flipping same-instant event orderings that the
	// byte-identity guarantee of the figures pins down.
	dma *sim.Resource

	vis    map[uint32]*VI
	nextVI uint32

	rdmaRegions map[uint32]*MemRegion
	nextRDMA    uint32

	sendWQ    *sim.Queue[*sendWork]
	txFIFO    *sim.Queue[*netsim.Frame]
	rxQ       *sim.Queue[*packet]
	listeners map[int]*Acceptor

	descsSent uint64
	descsRecv uint64

	// descPressure, when set, is consulted as each inbound message
	// matches its receive descriptor; returning true makes the adapter
	// behave as if the descriptor pool were exhausted (the RNR break
	// path). Fault injection uses this to model descriptor pressure.
	descPressure func() bool

	// Free lists for the per-fragment wire objects. Packets freed by
	// a receiving provider may have been allocated by the sender's —
	// same kernel, so the migration is race-free.
	pkPool []*packet
	swPool []*sendWork
}

// newPacket returns a zeroed packet from the pool (or a fresh one).
func (pr *Provider) newPacket() *packet {
	if n := len(pr.pkPool); n > 0 {
		pk := pr.pkPool[n-1]
		pr.pkPool[n-1] = nil
		pr.pkPool = pr.pkPool[:n-1]
		return pk
	}
	return &packet{pooled: true}
}

// freePacket recycles a fully consumed packet. The frag reference is
// dropped, not reused: receive matching may have handed it to a
// completed descriptor.
func (pr *Provider) freePacket(pk *packet) {
	if pk == nil || !pk.pooled {
		return
	}
	*pk = packet{pooled: true}
	pr.pkPool = append(pr.pkPool, pk)
}

// newSendWork returns a zeroed send-work item from the pool.
func (pr *Provider) newSendWork() *sendWork {
	if n := len(pr.swPool); n > 0 {
		w := pr.swPool[n-1]
		pr.swPool[n-1] = nil
		pr.swPool = pr.swPool[:n-1]
		return w
	}
	return &sendWork{}
}

func (pr *Provider) freeSendWork(w *sendWork) {
	*w = sendWork{}
	pr.swPool = append(pr.swPool, w)
}

// SetDescPressure installs (or with nil removes) the descriptor
// exhaustion hook. Must be deterministic (seeded) to keep runs
// reproducible.
func (pr *Provider) SetDescPressure(fn func() bool) { pr.descPressure = fn }

// NewProvider attaches an emulated VIA adapter to the node and starts
// its NIC engines.
func NewProvider(node *cluster.Node, net *netsim.Network, cfg Config) *Provider {
	if cfg.MTU <= 0 || cfg.MaxTransfer <= 0 || cfg.PageSize <= 0 {
		panic("via: invalid config")
	}
	k := node.Kernel()
	pr := &Provider{
		node:        node,
		net:         net,
		cfg:         cfg,
		dma:         sim.NewResource(k, 1),
		vis:         make(map[uint32]*VI),
		nextVI:      1,
		rdmaRegions: make(map[uint32]*MemRegion),
		sendWQ:      sim.NewQueue[*sendWork](k, 0),
		txFIFO:      sim.NewQueue[*netsim.Frame](k, cfg.TxFIFODepth),
		rxQ:         sim.NewQueue[*packet](k, 0),
		listeners:   make(map[int]*Acceptor),
	}
	pr.dma.SetLabel("via/dma")
	pr.sendWQ.SetLabel("via/send-wq")
	pr.txFIFO.SetLabel("via/tx-fifo")
	pr.rxQ.SetLabel("via/rx-softirq")
	node.Port().Handle(netsim.ProtoVIA, func(f *netsim.Frame) {
		pk := f.Payload.(*packet)
		if f.Corrupt {
			pk.corrupt = true
		}
		_ = pr.rxQ.TryPut(pk)
	})
	k.Go("via-txdesc/"+node.Name(), pr.txDescLoop)
	k.Go("via-txwire/"+node.Name(), pr.txWireLoop)
	k.Go("via-rx/"+node.Name(), pr.rxLoop)
	return pr
}

// Node reports the provider's host.
func (pr *Provider) Node() *cluster.Node { return pr.node }

// Config reports the cost model in use.
func (pr *Provider) Config() Config { return pr.cfg }

// DescsSent and DescsRecv report completed descriptor counts.
func (pr *Provider) DescsSent() uint64 { return pr.descsSent }

// DescsRecv reports completed receive descriptor counts.
func (pr *Provider) DescsRecv() uint64 { return pr.descsRecv }

// RegisterMem registers a buffer of the given size, charging the
// kernel-mediated pin/translate cost, and returns the region handle.
func (pr *Provider) RegisterMem(p *sim.Proc, size int) *MemRegion {
	if size <= 0 {
		panic("via: register non-positive size")
	}
	pages := (size + pr.cfg.PageSize - 1) / pr.cfg.PageSize
	pr.node.Overhead(p, pr.cfg.RegBase+sim.Time(pages)*pr.cfg.RegPerPage)
	return &MemRegion{size: size, registered: true}
}

// Listen registers a service number and returns its acceptor.
func (pr *Provider) Listen(svc int) *Acceptor {
	if _, ok := pr.listeners[svc]; ok {
		panic(fmt.Sprintf("via: service %d already listening on %s", svc, pr.node.Name()))
	}
	a := &Acceptor{pr: pr, svc: svc, q: sim.NewQueue[*connReq](pr.node.Kernel(), 0)}
	a.q.SetLabel("via/accept")
	pr.listeners[svc] = a
	return a
}

// dmaUse charges one DMA transaction of n bytes on the shared engine.
func (pr *Provider) dmaUse(p *sim.Proc, n int) {
	d := pr.cfg.DMAPerOp + sim.Time(float64(n)*pr.cfg.DMAPerByte+0.5)
	pr.dma.Use(p, 1, d)
}

// sendControl queues a small control frame directly to the wire stage.
func (pr *Provider) sendControl(p *sim.Proc, dst string, kind pkKind, srcVI, dstVI uint32, svc int) {
	pk := pr.newPacket()
	pk.kind, pk.srcPort, pk.srcVI, pk.dstVI, pk.svc = kind, pr.node.Name(), srcVI, dstVI, svc
	pr.txFIFO.Put(p, pr.net.NewFrame(pr.node.Name(), dst, netsim.ProtoVIA, pr.cfg.HeaderSize+16, pk))
}

// txDescLoop is the NIC descriptor-fetch and DMA engine: it drains the
// send work queue, fragments each descriptor at the MTU, DMAs each
// fragment across the PCI bus and hands frames to the wire stage.
func (pr *Provider) txDescLoop(p *sim.Proc) {
	for {
		w, ok := pr.sendWQ.Get(p)
		if !ok {
			return
		}
		vi, desc := w.vi, w.desc
		rdma, rdmaHandle, rdmaOffset := w.rdma, w.rdmaHandle, w.rdmaOffset
		pr.freeSendWork(w)
		if vi.state != viConnected {
			desc.Status = StatusBroken
			vi.sendCQ.post(Completion{VI: vi, Desc: desc, Status: StatusBroken})
			continue
		}
		sc := hpsmon.Begin(p, "via", "send-desc", vi.peerPort)
		p.Sleep(pr.cfg.NICTxPerDesc)
		// The DMA engine reads the message out of host memory into one
		// private wire buffer; every fragment aliases a window of it, so
		// the host buffer may be reused as soon as the send completes
		// and the receiver can hand the assembled message to its
		// descriptor without a reassembly copy. The simulated DMA cost
		// is still charged per fragment below — only the real-memory
		// traffic collapses to one copy per message.
		var wireBuf []byte
		if desc.Data != nil {
			wireBuf = append([]byte(nil), desc.Data[:desc.Len]...)
		}
		remaining := desc.Len
		offset := 0
		first := true
		for {
			n := remaining
			if n > pr.cfg.MTU {
				n = pr.cfg.MTU
			}
			pr.dmaUse(p, n)
			p.Sleep(pr.cfg.NICTxPerFrame)
			pk := pr.newPacket()
			pk.kind = pkData
			pk.srcPort = pr.node.Name()
			pk.srcVI = vi.id
			pk.dstVI = vi.peerVI
			pk.seq = vi.txSeq
			pk.msgLen = desc.Len
			pk.fragLen = n
			if wireBuf != nil {
				pk.frag = wireBuf[offset : offset+n]
				pk.msg = wireBuf
			}
			pk.first = first
			pk.last = remaining-n == 0
			pk.imm = desc.Imm
			vi.txSeq++
			if rdma {
				pk.kind = pkRDMA
				pk.rdmaHandle = rdmaHandle
				pk.rdmaOffset = rdmaOffset + offset
			}
			pr.txFIFO.Put(p, pr.net.NewFrame(pr.node.Name(), vi.peerPort,
				netsim.ProtoVIA, pr.cfg.HeaderSize+n, pk))
			first = false
			offset += n
			remaining -= n
			if remaining == 0 {
				break
			}
		}
		p.Sleep(pr.cfg.CQDeliver)
		desc.Status = StatusOK
		desc.XferLen = desc.Len
		pr.descsSent++
		pr.node.Kernel().Trace("via", "send-complete", int64(desc.Len), vi.peerPort)
		hpsmon.Count(pr.node.Kernel(), "via", "descs.sent", 1)
		hpsmon.Count(pr.node.Kernel(), "via", "bytes.sent", int64(desc.Len))
		vi.sendCQ.post(Completion{VI: vi, Desc: desc, Status: StatusOK})
		sc.End()
	}
}

// txWireLoop drains the NIC transmit FIFO onto the wire; it pipelines
// with the DMA stage through the bounded txFIFO.
func (pr *Provider) txWireLoop(p *sim.Proc) {
	for {
		f, ok := pr.txFIFO.Get(p)
		if !ok {
			return
		}
		pr.net.Transmit(p, f)
	}
}

// rxLoop is the NIC receive engine: per-frame processing, DMA into
// registered host memory, descriptor matching and completion delivery.
// Every consumed packet is recycled; the frag payload (if any) has
// been handed off or copied by then.
func (pr *Provider) rxLoop(p *sim.Proc) {
	for {
		pk, ok := pr.rxQ.Get(p)
		if !ok {
			return
		}
		pr.handlePacket(p, pk)
		pr.freePacket(pk)
	}
}

// handlePacket demultiplexes one inbound packet. It must not retain
// the packet past its return (the frag slice may be retained — its
// ownership transfers to the receiving VI).
func (pr *Provider) handlePacket(p *sim.Proc, pk *packet) {
	if pk.corrupt && pk.kind != pkData && pk.kind != pkRDMA {
		// A corrupted control frame fails its checksum and is
		// silently discarded; higher layers recover by timeout.
		pr.node.Kernel().Trace("via", "ctrl-corrupt-drop", 0, pk.srcPort)
		return
	}
	switch pk.kind {
	case pkConnReq:
		a := pr.listeners[pk.svc]
		if a == nil {
			panic(fmt.Sprintf("via: connect to unbound service %d on %s", pk.svc, pr.node.Name()))
		}
		_ = a.q.TryPut(&connReq{srcPort: pk.srcPort, srcVI: pk.srcVI})
	case pkConnAck:
		vi := pr.vis[pk.dstVI]
		if vi == nil {
			return
		}
		vi.peerPort = pk.srcPort
		vi.peerVI = pk.srcVI
		vi.state = viConnected
		vi.connSig.Fire(nil)
	case pkBreak:
		vi := pr.vis[pk.dstVI]
		if vi == nil || vi.state == viBroken {
			return
		}
		vi.breakLocal()
	case pkDisconnect:
		vi := pr.vis[pk.dstVI]
		if vi == nil {
			return
		}
		vi.remoteClosed = true
		if vi.closeSig != nil && !vi.closeSig.Fired() {
			vi.closeSig.Fire(nil)
		}
	case pkData:
		pr.rxData(p, pk)
	case pkRDMA:
		pr.rxRDMA(p, pk)
	}
}

// lossBreak tears a VI down after the receive engine detected wire
// damage — a sequence gap left by a dropped frame, or a failed
// checksum on a corrupted one. Reliable delivery has no retransmit:
// the connection breaks, the peer is notified, and local waiters wake
// with error completions (directly, when no descriptors were posted
// for breakLocal to flush).
func (pr *Provider) lossBreak(p *sim.Proc, vi *VI, why string, n int) {
	pr.node.Kernel().Trace("via", "loss-break", int64(n), why)
	hpsmon.Instant(p, "via", "loss-break", why)
	hadRecvs := vi.recvDescs.Len() > 0
	vi.breakLocal()
	pr.sendControl(p, vi.peerPort, pkBreak, vi.id, vi.peerVI, 0)
	if !hadRecvs {
		vi.recvCQ.post(Completion{VI: vi, IsRecv: true, Status: StatusBroken})
	}
}

func (pr *Provider) rxData(p *sim.Proc, pk *packet) {
	vi := pr.vis[pk.dstVI]
	if vi == nil || vi.state == viBroken {
		return // stale frame after teardown: drop
	}
	p.Sleep(pr.cfg.NICRxPerFrame)
	pr.dmaUse(p, pk.fragLen)
	if pk.corrupt {
		pr.lossBreak(p, vi, "checksum "+pk.srcPort, pk.fragLen)
		return
	}
	if pk.seq != vi.rxSeq {
		pr.lossBreak(p, vi, fmt.Sprintf("seq gap %d!=%d %s", pk.seq, vi.rxSeq, pk.srcPort), pk.fragLen)
		return
	}
	vi.rxSeq++
	if pk.first {
		vi.curLen = 0
		vi.curMsg = nil
		vi.curParts = vi.curParts[:0]
	}
	vi.curLen += pk.fragLen
	if pk.msg != nil {
		// Every fragment of the message aliases one private wire
		// buffer; in-order reliable delivery (the seq check above)
		// guarantees that by the last fragment the whole buffer has
		// arrived, so no per-part accumulation is needed.
		vi.curMsg = pk.msg
	} else if pk.frag != nil {
		vi.curParts = append(vi.curParts, pk.frag)
	}
	if !pk.last {
		return
	}
	// Message complete: match the head receive descriptor. Injected
	// descriptor pressure makes the adapter treat the pool as
	// exhausted even when a descriptor is posted.
	pressured := pr.descPressure != nil && pr.descPressure()
	desc, ok := vi.recvDescs.TryGet()
	if pressured {
		pr.node.Kernel().Trace("via", "desc-pressure", int64(vi.curLen), pk.srcPort)
		hpsmon.Count(pr.node.Kernel(), "via", "desc.pressure", 1)
	}
	if !ok || pressured || desc.Len < vi.curLen {
		// Reliable delivery with no (or too small a) receive
		// descriptor: the connection breaks. Notify the peer.
		pr.node.Kernel().Trace("via", "rnr-break", int64(vi.curLen), pk.srcPort)
		hpsmon.Instant(p, "via", "rnr-break", pk.srcPort)
		vi.breakLocal()
		pr.sendControl(p, vi.peerPort, pkBreak, vi.id, vi.peerVI, 0)
		if !ok {
			vi.recvCQ.post(Completion{VI: vi, IsRecv: true, Status: StatusRNR})
		} else {
			desc.Status = StatusRNR
			vi.recvCQ.post(Completion{VI: vi, Desc: desc, IsRecv: true, Status: StatusRNR})
		}
		return
	}
	desc.Status = StatusOK
	desc.XferLen = vi.curLen
	desc.Imm = pk.imm
	if vi.curMsg != nil {
		// Zero-copy hand-off: the descriptor aliases the sender's
		// private wire buffer. Nothing else retains it — the sender
		// allocated it for this message alone and netsim never mutates
		// payload bytes (corruption is an envelope flag) — so ownership
		// transfers cleanly to the application.
		desc.Data = vi.curMsg
		vi.curMsg = nil
	} else if len(vi.curParts) == 1 {
		desc.Data = vi.curParts[0]
	} else if len(vi.curParts) > 1 {
		buf := make([]byte, 0, vi.curLen)
		for _, part := range vi.curParts {
			buf = append(buf, part...)
		}
		desc.Data = buf
	} else {
		desc.Data = nil
	}
	vi.curParts = vi.curParts[:0]
	vi.rxMsgs++
	pr.descsRecv++
	pr.node.Kernel().Trace("via", "recv-complete", int64(desc.XferLen), pk.srcPort)
	hpsmon.Count(pr.node.Kernel(), "via", "descs.recv", 1)
	hpsmon.Count(pr.node.Kernel(), "via", "bytes.recv", int64(desc.XferLen))
	p.Sleep(pr.cfg.CQDeliver)
	vi.recvCQ.post(Completion{VI: vi, Desc: desc, IsRecv: true, Status: StatusOK})
}
