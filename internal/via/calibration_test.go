package via

import (
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// measureLatency runs a VIA ping-pong of the given message size and
// returns the one-way latency (half the average round trip).
func measureLatency(size, iters int) sim.Time {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.CLANConfig())
	cl := cluster.New(k, net)
	a := cl.AddNode("a", cluster.DefaultConfig())
	b := cl.AddNode("b", cluster.DefaultConfig())
	pa := NewProvider(a, net, CLANConfig())
	pb := NewProvider(b, net, CLANConfig())
	acc := pb.Listen(1)
	var oneWay sim.Time
	k.Go("srv", func(p *sim.Proc) {
		scq, rcq := pb.NewCQ(), pb.NewCQ()
		vi, _ := acc.Accept(p, scq, rcq)
		reg := pb.RegisterMem(p, 64*1024)
		for i := 0; i < iters; i++ {
			rd := &Desc{Region: reg, Len: 64 * 1024}
			vi.PostRecv(p, rd)
			vi.recvCQ.Wait(p)
			sd := &Desc{Region: reg, Len: size}
			vi.PostSend(p, sd)
			vi.sendCQ.Wait(p)
		}
	})
	k.Go("cli", func(p *sim.Proc) {
		scq, rcq := pa.NewCQ(), pa.NewCQ()
		vi := pa.NewVI(scq, rcq)
		pa.Connect(p, vi, "b", 1)
		reg := pa.RegisterMem(p, 64*1024)
		p.Sleep(sim.Millisecond) // let the server pre-post
		start := p.Now()
		for i := 0; i < iters; i++ {
			rd := &Desc{Region: reg, Len: 64 * 1024}
			vi.PostRecv(p, rd)
			sd := &Desc{Region: reg, Len: size}
			vi.PostSend(p, sd)
			vi.sendCQ.Wait(p)
			vi.recvCQ.Wait(p)
		}
		oneWay = (p.Now() - start) / sim.Time(2*iters)
	})
	k.RunAll()
	return oneWay
}

// measureBandwidth streams count messages of the given size with a
// window of outstanding sends and returns the achieved Mbps.
func measureBandwidth(size, count int) float64 {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.CLANConfig())
	cl := cluster.New(k, net)
	a := cl.AddNode("a", cluster.DefaultConfig())
	b := cl.AddNode("b", cluster.DefaultConfig())
	pa := NewProvider(a, net, CLANConfig())
	pb := NewProvider(b, net, CLANConfig())
	acc := pb.Listen(1)
	var mbps float64
	done := sim.NewSignal(k)
	k.Go("srv", func(p *sim.Proc) {
		scq, rcq := pb.NewCQ(), pb.NewCQ()
		vi, _ := acc.Accept(p, scq, rcq)
		reg := pb.RegisterMem(p, 64*1024)
		// Pre-post everything: the bandwidth test is not descriptor
		// limited.
		for i := 0; i < count; i++ {
			vi.PostRecv(p, &Desc{Region: reg, Len: 64 * 1024})
		}
		start := p.Now()
		for i := 0; i < count; i++ {
			vi.recvCQ.Wait(p)
		}
		mbps = sim.BitsPerSec(int64(size)*int64(count), p.Now()-start)
		done.Fire(nil)
	})
	k.Go("cli", func(p *sim.Proc) {
		scq, rcq := pa.NewCQ(), pa.NewCQ()
		vi := pa.NewVI(scq, rcq)
		pa.Connect(p, vi, "b", 1)
		reg := pa.RegisterMem(p, 64*1024)
		p.Sleep(sim.Millisecond)
		const window = 16
		inflight := 0
		for i := 0; i < count; i++ {
			for inflight >= window {
				vi.sendCQ.Wait(p)
				inflight--
			}
			vi.PostSend(p, &Desc{Region: reg, Len: size})
			inflight++
		}
		for inflight > 0 {
			vi.sendCQ.Wait(p)
			inflight--
		}
		p.Wait(done)
	})
	k.RunAll()
	return mbps
}

func TestCalibrationSmallMessageLatency(t *testing.T) {
	got := measureLatency(4, 100)
	// Paper: base VIA latency just under SocketVIA's 9.5 us; target
	// 8-9 us one-way.
	if got < 7500*sim.Nanosecond || got > 9200*sim.Nanosecond {
		t.Fatalf("VIA 4-byte latency = %v, want 8-9 us", got)
	}
}

func TestCalibrationPeakBandwidth(t *testing.T) {
	got := measureBandwidth(64*1024, 200)
	// Paper: 795 Mbps peak for base VIA at 64 KB.
	if got < 770 || got > 820 {
		t.Fatalf("VIA 64K bandwidth = %.1f Mbps, want ~795", got)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	sizes := []int{4, 64, 512, 4096}
	var prev sim.Time
	for _, s := range sizes {
		l := measureLatency(s, 20)
		if l <= prev {
			t.Fatalf("latency not increasing: %v at %d after %v", l, s, prev)
		}
		prev = l
	}
}

func TestBandwidthMonotoneInSize(t *testing.T) {
	sizes := []int{256, 1024, 4096, 16384, 65536}
	prev := 0.0
	for _, s := range sizes {
		bw := measureBandwidth(s, 100)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing: %.1f at %d after %.1f", bw, s, prev)
		}
		prev = bw
	}
}
