package via

import (
	"errors"
	"fmt"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// VI connection states.
const (
	viIdle = iota
	viConnecting
	viConnected
	viBroken
	viClosed
)

// Errors returned by connection management and posting.
var (
	// ErrBroken reports that the connection was broken (reliable
	// delivery violation or peer breakage).
	ErrBroken = errors.New("via: connection broken")
	// ErrNotConnected reports posting on an unconnected VI.
	ErrNotConnected = errors.New("via: vi not connected")
	// ErrTimeout reports that connection setup exceeded the configured
	// ConnTimeout (for example because the fault model ate the request
	// or the acknowledgement).
	ErrTimeout = errors.New("via: connect timed out")
)

// VI is a virtual interface: a connected pair of send and receive work
// queues bound to completion queues.
type VI struct {
	pr     *Provider
	id     uint32
	sendCQ *CQ
	recvCQ *CQ

	recvDescs *sim.Queue[*Desc]

	state        int
	peerPort     string
	peerVI       uint32
	connSig      *sim.Signal
	closeSig     *sim.Signal
	remoteClosed bool

	// reassembly state (network is FIFO per connection). curMsg holds
	// the in-flight message's shared wire buffer when the sender
	// aliased its fragments into one (the zero-copy path); curParts
	// accumulates independent fragment copies otherwise.
	curLen   int
	curMsg   []byte
	curParts [][]byte
	rxMsgs   uint64

	// wire sequence numbers for loss detection: txSeq stamps outgoing
	// data/RDMA frames, rxSeq is the next expected inbound frame. A
	// gap means the fault model dropped a frame; reliable delivery
	// turns that into a broken connection.
	txSeq uint64
	rxSeq uint64

	// rdmaBytes counts bytes landed by inbound RDMA writes.
	rdmaBytes int
}

// NewVI creates an unconnected VI whose work queues complete to the
// given CQs.
func (pr *Provider) NewVI(sendCQ, recvCQ *CQ) *VI {
	if sendCQ == nil || recvCQ == nil {
		panic("via: VI needs both completion queues")
	}
	vi := &VI{
		pr:        pr,
		id:        pr.nextVI,
		sendCQ:    sendCQ,
		recvCQ:    recvCQ,
		recvDescs: sim.NewQueue[*Desc](pr.node.Kernel(), 0),
		connSig:   sim.NewSignal(pr.node.Kernel()),
		closeSig:  sim.NewSignal(pr.node.Kernel()),
	}
	vi.recvDescs.SetLabel("via/desc-wait")
	vi.connSig.SetLabel("via/handshake")
	vi.closeSig.SetLabel("via/close")
	pr.nextVI++
	pr.vis[vi.id] = vi
	return vi
}

// ID reports the VI number on its provider.
func (vi *VI) ID() uint32 { return vi.id }

// Provider reports the owning provider.
func (vi *VI) Provider() *Provider { return vi.pr }

// Connected reports whether the VI is connected.
func (vi *VI) Connected() bool { return vi.state == viConnected }

// Broken reports whether the connection broke.
func (vi *VI) Broken() bool { return vi.state == viBroken }

// RemoteClosed reports whether the peer disconnected.
func (vi *VI) RemoteClosed() bool { return vi.remoteClosed }

// PeerPort reports the peer node's port name (empty before connect).
func (vi *VI) PeerPort() string { return vi.peerPort }

// RecvPosted reports the number of posted, unmatched receive
// descriptors.
func (vi *VI) RecvPosted() int { return vi.recvDescs.Len() }

// Connect performs the client side of connection setup against a
// service number on a remote node, blocking until the acceptor answers.
func (pr *Provider) Connect(p *sim.Proc, vi *VI, remote string, svc int) error {
	if vi.state != viIdle {
		return fmt.Errorf("via: connect on VI in state %d", vi.state)
	}
	vi.state = viConnecting
	pr.node.Overhead(p, pr.cfg.ConnSetupCPU)
	pr.sendControl(p, remote, pkConnReq, vi.id, 0, svc)
	if pr.cfg.ConnTimeout > 0 {
		if _, ok := p.WaitTimeout(vi.connSig, pr.cfg.ConnTimeout); !ok {
			// Tear the VI down before returning so a late ack finds
			// nothing to resurrect.
			vi.state = viBroken
			vi.teardown()
			return ErrTimeout
		}
	} else {
		p.Wait(vi.connSig)
	}
	if vi.state != viConnected {
		return ErrBroken
	}
	return nil
}

// Accept blocks for an inbound connection request, binds a fresh VI to
// it and acknowledges the peer.
func (a *Acceptor) Accept(p *sim.Proc, sendCQ, recvCQ *CQ) (*VI, error) {
	req, ok := a.q.Get(p)
	if !ok {
		return nil, errors.New("via: acceptor closed")
	}
	a.pr.node.Overhead(p, a.pr.cfg.ConnSetupCPU)
	vi := a.pr.NewVI(sendCQ, recvCQ)
	vi.peerPort = req.srcPort
	vi.peerVI = req.srcVI
	vi.state = viConnected
	a.pr.sendControl(p, req.srcPort, pkConnAck, vi.id, req.srcVI, 0)
	return vi, nil
}

// Close closes the acceptor; pending and future Accept calls fail.
func (a *Acceptor) Close() {
	a.q.Close()
	delete(a.pr.listeners, a.svc)
}

// PostRecv posts a receive descriptor. Descriptors match incoming
// messages in FIFO order; under reliable delivery an arriving message
// with no posted descriptor breaks the connection.
func (vi *VI) PostRecv(p *sim.Proc, desc *Desc) error {
	if err := vi.checkDesc(desc); err != nil {
		return err
	}
	if vi.state == viBroken {
		return ErrBroken
	}
	vi.pr.node.Overhead(p, vi.pr.cfg.PostRecvCPU)
	vi.pr.node.Kernel().Trace("via", "post-recv", int64(desc.Len), "")
	hpsmon.Count(vi.pr.node.Kernel(), "via", "descs.posted.recv", 1)
	_ = vi.recvDescs.TryPut(desc)
	return nil
}

// PostSend posts a send descriptor; the NIC picks it up asynchronously
// and a completion arrives on the send CQ.
func (vi *VI) PostSend(p *sim.Proc, desc *Desc) error {
	if err := vi.checkDesc(desc); err != nil {
		return err
	}
	if desc.Len > vi.pr.cfg.MaxTransfer {
		return fmt.Errorf("via: descriptor of %d bytes exceeds max transfer %d", desc.Len, vi.pr.cfg.MaxTransfer)
	}
	if desc.Data != nil && len(desc.Data) != desc.Len {
		return fmt.Errorf("via: descriptor data length %d != len %d", len(desc.Data), desc.Len)
	}
	switch vi.state {
	case viBroken:
		return ErrBroken
	case viConnected:
	default:
		return ErrNotConnected
	}
	vi.pr.node.Overhead(p, vi.pr.cfg.PostSendCPU)
	vi.pr.node.Kernel().Trace("via", "post-send", int64(desc.Len), vi.peerPort)
	hpsmon.Count(vi.pr.node.Kernel(), "via", "descs.posted.send", 1)
	w := vi.pr.newSendWork()
	w.vi, w.desc = vi, desc
	_ = vi.pr.sendWQ.TryPut(w)
	return nil
}

func (vi *VI) checkDesc(desc *Desc) error {
	if desc == nil || desc.Region == nil || !desc.Region.registered {
		return errors.New("via: descriptor buffer not registered")
	}
	if desc.Len <= 0 || desc.Len > desc.Region.size {
		return fmt.Errorf("via: descriptor length %d outside region of %d", desc.Len, desc.Region.size)
	}
	return nil
}

// Disconnect tears the connection down and notifies the peer. Posted
// receive descriptors are flushed with StatusBroken completions.
func (pr *Provider) Disconnect(p *sim.Proc, vi *VI) {
	if vi.state != viConnected {
		vi.teardown()
		return
	}
	pr.sendControl(p, vi.peerPort, pkDisconnect, vi.id, vi.peerVI, 0)
	vi.state = viClosed
	vi.teardown()
}

// breakLocal marks the VI broken and flushes posted receive
// descriptors with error completions.
func (vi *VI) breakLocal() {
	vi.state = viBroken
	vi.flushRecvs(StatusBroken)
}

func (vi *VI) teardown() {
	vi.flushRecvs(StatusBroken)
	delete(vi.pr.vis, vi.id)
}

func (vi *VI) flushRecvs(st Status) {
	for {
		d, ok := vi.recvDescs.TryGet()
		if !ok {
			return
		}
		d.Status = st
		vi.recvCQ.post(Completion{VI: vi, Desc: d, IsRecv: true, Status: st})
	}
}
