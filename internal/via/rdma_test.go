package via

import (
	"testing"

	"hpsockets/internal/sim"
)

func TestRDMAWriteLandsData(t *testing.T) {
	r := newRig(t, CLANConfig())
	var handle uint32
	var region *MemRegion
	handleReady := sim.NewSignal(r.k)
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			p.Wait(handleReady)
			reg := vi.Provider().RegisterMem(p, 4096)
			d := &Desc{Region: reg, Len: 11, Data: []byte("rdma hello!")}
			if err := vi.PostRDMAWrite(p, d, handle, 100); err != nil {
				t.Errorf("rdma write: %v", err)
				return
			}
			c := vi.sendCQ.Wait(p)
			if c.Status != StatusOK {
				t.Errorf("rdma completion status %v", c.Status)
			}
			// Notify the peer in band; VI ordering puts it after the
			// written data.
			sendMsg(t, p, vi, reg, nil, 1)
		},
		func(p *sim.Proc, vi *VI) {
			region, handle = vi.Provider().RegisterMemRDMA(p, 4096)
			handleReady.Fire(nil)
			reg := vi.Provider().RegisterMem(p, 64)
			recvMsg(t, p, vi, reg, 64) // the notification
			if got := string(region.RDMABytes()[100:111]); got != "rdma hello!" {
				t.Errorf("landed data = %q", got)
			}
			if vi.RDMABytesReceived() != 11 {
				t.Errorf("rdma bytes = %d", vi.RDMABytesReceived())
			}
		},
	)
}

func TestRDMAWriteConsumesNoRecvDescriptor(t *testing.T) {
	r := newRig(t, CLANConfig())
	var handle uint32
	handleReady := sim.NewSignal(r.k)
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			p.Wait(handleReady)
			reg := vi.Provider().RegisterMem(p, 64*1024)
			// Several RDMA writes with NO receive descriptors posted at
			// the peer: reliable delivery must not break.
			for i := 0; i < 5; i++ {
				d := &Desc{Region: reg, Len: 32 * 1024}
				if err := vi.PostRDMAWrite(p, d, handle, 0); err != nil {
					t.Errorf("write %d: %v", i, err)
				}
				vi.sendCQ.Wait(p)
			}
			p.Sleep(sim.Millisecond)
			if vi.Broken() {
				t.Error("connection broke on descriptor-free RDMA writes")
			}
		},
		func(p *sim.Proc, vi *VI) {
			_, handle = vi.Provider().RegisterMemRDMA(p, 32*1024)
			handleReady.Fire(nil)
			p.Sleep(2 * sim.Millisecond)
			if vi.RecvPosted() != 0 {
				t.Error("rdma write consumed a receive descriptor")
			}
			if vi.Broken() {
				t.Error("receiver side broke")
			}
		},
	)
}

func TestRDMAWriteOutOfBoundsBreaksConnection(t *testing.T) {
	r := newRig(t, CLANConfig())
	var handle uint32
	handleReady := sim.NewSignal(r.k)
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			p.Wait(handleReady)
			reg := vi.Provider().RegisterMem(p, 4096)
			d := &Desc{Region: reg, Len: 2048}
			// Offset pushes the write past the 1 KB target region.
			if err := vi.PostRDMAWrite(p, d, handle, 512); err != nil {
				t.Errorf("post: %v", err)
			}
			vi.sendCQ.Wait(p)
			p.Sleep(sim.Millisecond)
			if !vi.Broken() {
				t.Error("client VI not broken after protection violation")
			}
		},
		func(p *sim.Proc, vi *VI) {
			_, handle = vi.Provider().RegisterMemRDMA(p, 1024)
			handleReady.Fire(nil)
			p.Sleep(2 * sim.Millisecond)
			if !vi.Broken() {
				t.Error("server VI not broken after protection violation")
			}
		},
	)
}

func TestRDMAWriteToUnexportedRegionRejected(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			d := &Desc{Region: reg, Len: 8}
			if err := vi.PostRDMAWrite(p, d, 9999, 0); err != nil {
				t.Errorf("post: %v", err) // rejected at the target, not locally
			}
			vi.sendCQ.Wait(p)
			p.Sleep(sim.Millisecond)
			if !vi.Broken() {
				t.Error("write to unknown handle did not break the connection")
			}
		},
		func(p *sim.Proc, vi *VI) { p.Sleep(2 * sim.Millisecond) },
	)
}

func TestRDMAWriteNegativeOffsetRejectedLocally(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			d := &Desc{Region: reg, Len: 8}
			if err := vi.PostRDMAWrite(p, d, 1, -4); err != ErrRDMAProtection {
				t.Errorf("negative offset: %v, want ErrRDMAProtection", err)
			}
		},
		func(p *sim.Proc, vi *VI) {},
	)
}

func TestRDMAWriteFragmentsLargeTransfers(t *testing.T) {
	cfg := CLANConfig()
	r := newRig(t, cfg)
	var handle uint32
	var region *MemRegion
	handleReady := sim.NewSignal(r.k)
	const n = 48 * 1024 // many MTU-sized fragments
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			p.Wait(handleReady)
			reg := vi.Provider().RegisterMem(p, n)
			d := &Desc{Region: reg, Len: n, Data: payload}
			if err := vi.PostRDMAWrite(p, d, handle, 0); err != nil {
				t.Errorf("write: %v", err)
			}
			vi.sendCQ.Wait(p)
			reg2 := vi.Provider().RegisterMem(p, 64)
			sendMsg(t, p, vi, reg2, nil, 1)
		},
		func(p *sim.Proc, vi *VI) {
			region, handle = vi.Provider().RegisterMemRDMA(p, n)
			handleReady.Fire(nil)
			reg := vi.Provider().RegisterMem(p, 64)
			recvMsg(t, p, vi, reg, 64)
			got := region.RDMABytes()
			for i := range payload {
				if got[i] != payload[i] {
					t.Fatalf("landed data corrupted at %d", i)
				}
			}
		},
	)
}
