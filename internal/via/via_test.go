package via

import (
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// rig is a two-node VIA test fixture.
type rig struct {
	k        *sim.Kernel
	cl       *cluster.Cluster
	pa, pb   *Provider
	nodeA    *cluster.Node
	nodeB    *cluster.Node
	acceptor *Acceptor
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k, netsim.CLANConfig())
	cl := cluster.New(k, net)
	a := cl.AddNode("a", cluster.DefaultConfig())
	b := cl.AddNode("b", cluster.DefaultConfig())
	pa := NewProvider(a, net, cfg)
	pb := NewProvider(b, net, cfg)
	return &rig{k: k, cl: cl, pa: pa, pb: pb, nodeA: a, nodeB: b, acceptor: pb.Listen(1)}
}

// connectPair runs client and server processes and returns their VIs
// through the out parameters once the kernel runs.
func (r *rig) connectPair(t *testing.T, client func(p *sim.Proc, vi *VI), server func(p *sim.Proc, vi *VI)) {
	t.Helper()
	r.k.Go("server", func(p *sim.Proc) {
		scq, rcq := r.pb.NewCQ(), r.pb.NewCQ()
		vi, err := r.acceptor.Accept(p, scq, rcq)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server(p, vi)
	})
	r.k.Go("client", func(p *sim.Proc) {
		scq, rcq := r.pa.NewCQ(), r.pa.NewCQ()
		vi := r.pa.NewVI(scq, rcq)
		if err := r.pa.Connect(p, vi, "b", 1); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		client(p, vi)
	})
	r.k.RunAll()
}

// sendMsg posts a send of n bytes with payload and waits for the send
// completion.
func sendMsg(t *testing.T, p *sim.Proc, vi *VI, reg *MemRegion, data []byte, n int) {
	t.Helper()
	d := &Desc{Region: reg, Len: n, Data: data}
	if err := vi.PostSend(p, d); err != nil {
		t.Errorf("post send: %v", err)
		return
	}
	c := vi.sendCQ.Wait(p)
	if c.Status != StatusOK {
		t.Errorf("send completion status %v", c.Status)
	}
}

// recvMsg posts a receive of capacity n and waits for its completion.
func recvMsg(t *testing.T, p *sim.Proc, vi *VI, reg *MemRegion, n int) *Desc {
	t.Helper()
	d := &Desc{Region: reg, Len: n}
	if err := vi.PostRecv(p, d); err != nil {
		t.Errorf("post recv: %v", err)
		return d
	}
	c := vi.recvCQ.Wait(p)
	if c.Status != StatusOK {
		t.Errorf("recv completion status %v", c.Status)
	}
	return c.Desc
}

func TestConnectAcceptEstablishesVIs(t *testing.T) {
	r := newRig(t, CLANConfig())
	var cvi, svi *VI
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) { cvi = vi },
		func(p *sim.Proc, vi *VI) { svi = vi },
	)
	if cvi == nil || svi == nil {
		t.Fatal("connection did not complete")
	}
	if !cvi.Connected() || !svi.Connected() {
		t.Fatal("VIs not connected")
	}
	if cvi.PeerPort() != "b" || svi.PeerPort() != "a" {
		t.Fatalf("peer ports %q %q", cvi.PeerPort(), svi.PeerPort())
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	r := newRig(t, CLANConfig())
	msg := []byte("hello, via")
	var got []byte
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			sendMsg(t, p, vi, reg, msg, len(msg))
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			d := recvMsg(t, p, vi, reg, 4096)
			got = d.Data
			if d.XferLen != len(msg) {
				t.Errorf("xfer len %d, want %d", d.XferLen, len(msg))
			}
		},
	)
	if string(got) != string(msg) {
		t.Fatalf("payload %q, want %q", got, msg)
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	cfg := CLANConfig()
	cfg.MTU = 1024
	r := newRig(t, cfg)
	const n = 10_000
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i % 251)
	}
	var got []byte
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, n)
			sendMsg(t, p, vi, reg, msg, n)
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, n)
			d := recvMsg(t, p, vi, reg, n)
			got = d.Data
		},
	)
	if len(got) != n {
		t.Fatalf("got %d bytes, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != msg[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestSizeOnlyMessages(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64*1024)
			sendMsg(t, p, vi, reg, nil, 48*1024)
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64*1024)
			d := recvMsg(t, p, vi, reg, 64*1024)
			if d.XferLen != 48*1024 {
				t.Errorf("xfer len %d, want 48K", d.XferLen)
			}
			if d.Data != nil {
				t.Error("size-only message delivered data")
			}
		},
	)
}

func TestMessageOrderPreserved(t *testing.T) {
	r := newRig(t, CLANConfig())
	const count = 20
	var got []int
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			for i := 0; i < count; i++ {
				sendMsg(t, p, vi, reg, []byte{byte(i)}, 1)
			}
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			for i := 0; i < count; i++ {
				d := recvMsg(t, p, vi, reg, 64)
				got = append(got, int(d.Data[0]))
			}
		},
	)
	for i := 0; i < count; i++ {
		if got[i] != i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestMissingRecvDescriptorBreaksConnection(t *testing.T) {
	r := newRig(t, CLANConfig())
	var recvStatus, sendStatus Status
	var clientBrokenLater bool
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			d := &Desc{Region: reg, Len: 8, Data: []byte("12345678")}
			if err := vi.PostSend(p, d); err != nil {
				t.Errorf("post send: %v", err)
			}
			c := vi.sendCQ.Wait(p)
			sendStatus = c.Status // NIC completes before the remote RNR
			p.Sleep(100 * sim.Microsecond)
			clientBrokenLater = vi.Broken()
		},
		func(p *sim.Proc, vi *VI) {
			// Post no receive descriptor; wait for the error completion.
			c := vi.recvCQ.Wait(p)
			recvStatus = c.Status
			if !vi.Broken() {
				t.Error("server VI not broken after RNR")
			}
		},
	)
	if recvStatus != StatusRNR {
		t.Fatalf("recv status %v, want rnr", recvStatus)
	}
	if sendStatus != StatusOK {
		t.Fatalf("send status %v, want ok (completes at the NIC)", sendStatus)
	}
	if !clientBrokenLater {
		t.Fatal("client VI not broken after peer notification")
	}
}

func TestSendOnBrokenVIFails(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 64)
			d := &Desc{Region: reg, Len: 4, Data: []byte("abcd")}
			if err := vi.PostSend(p, d); err != nil {
				t.Errorf("first send: %v", err)
			}
			vi.sendCQ.Wait(p)
			p.Sleep(100 * sim.Microsecond) // let the break come back
			if err := vi.PostSend(p, d); err != ErrBroken {
				t.Errorf("send on broken VI: %v, want ErrBroken", err)
			}
		},
		func(p *sim.Proc, vi *VI) {
			vi.recvCQ.Wait(p) // the RNR error
		},
	)
}

func TestUnregisteredBufferRejected(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			d := &Desc{Region: &MemRegion{size: 64}, Len: 4}
			if err := vi.PostSend(p, d); err == nil {
				t.Error("unregistered send buffer accepted")
			}
			if err := vi.PostRecv(p, d); err == nil {
				t.Error("unregistered recv buffer accepted")
			}
		},
		func(p *sim.Proc, vi *VI) {},
	)
}

func TestOversizedDescriptorRejected(t *testing.T) {
	cfg := CLANConfig()
	r := newRig(t, cfg)
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 128*1024)
			d := &Desc{Region: reg, Len: cfg.MaxTransfer + 1}
			if err := vi.PostSend(p, d); err == nil {
				t.Error("oversized descriptor accepted")
			}
		},
		func(p *sim.Proc, vi *VI) {},
	)
}

func TestDescriptorLongerThanRegionRejected(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 16)
			d := &Desc{Region: reg, Len: 32}
			if err := vi.PostSend(p, d); err == nil {
				t.Error("descriptor longer than region accepted")
			}
		},
		func(p *sim.Proc, vi *VI) {},
	)
}

func TestDisconnectNotifiesPeer(t *testing.T) {
	r := newRig(t, CLANConfig())
	var remoteSawClose bool
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			vi.Provider().Disconnect(p, vi)
		},
		func(p *sim.Proc, vi *VI) {
			p.Sleep(sim.Millisecond)
			remoteSawClose = vi.RemoteClosed()
		},
	)
	if !remoteSawClose {
		t.Fatal("peer did not observe disconnect")
	}
}

func TestPreUnderstoodRecvDescriptorsMatchFIFO(t *testing.T) {
	r := newRig(t, CLANConfig())
	var lens []int
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			for _, n := range []int{10, 20, 30} {
				sendMsg(t, p, vi, reg, nil, n)
			}
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			// Pre-post all three descriptors, then collect completions.
			var descs []*Desc
			for i := 0; i < 3; i++ {
				d := &Desc{Region: reg, Len: 1024}
				if err := vi.PostRecv(p, d); err != nil {
					t.Errorf("post recv: %v", err)
				}
				descs = append(descs, d)
			}
			for i := 0; i < 3; i++ {
				c := vi.recvCQ.Wait(p)
				if c.Desc != descs[i] {
					t.Errorf("completion %d for wrong descriptor", i)
				}
				lens = append(lens, c.Desc.XferLen)
			}
		},
	)
	want := []int{10, 20, 30}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("lens = %v, want %v", lens, want)
		}
	}
}

func TestRegisterMemCharges(t *testing.T) {
	r := newRig(t, CLANConfig())
	var took sim.Time
	r.k.Go("reg", func(p *sim.Proc) {
		start := p.Now()
		r.pa.RegisterMem(p, 8*4096)
		took = p.Now() - start
	})
	r.k.RunAll()
	want := r.pa.cfg.RegBase + 8*r.pa.cfg.RegPerPage
	if took != want {
		t.Fatalf("registration took %v, want %v", took, want)
	}
}

func TestTwoVIsShareOneProviderIndependently(t *testing.T) {
	r := newRig(t, CLANConfig())
	acc2 := r.pb.Listen(2)
	got := map[int]string{}
	r.k.Go("server2", func(p *sim.Proc) {
		scq, rcq := r.pb.NewCQ(), r.pb.NewCQ()
		vi, err := acc2.Accept(p, scq, rcq)
		if err != nil {
			t.Errorf("accept2: %v", err)
			return
		}
		reg := r.pb.RegisterMem(p, 64)
		d := recvMsg(t, p, vi, reg, 64)
		got[2] = string(d.Data)
	})
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			// Also dial service 2 from node a.
			scq, rcq := r.pa.NewCQ(), r.pa.NewCQ()
			vi2 := r.pa.NewVI(scq, rcq)
			if err := r.pa.Connect(p, vi2, "b", 2); err != nil {
				t.Errorf("connect2: %v", err)
				return
			}
			reg := r.pa.RegisterMem(p, 64)
			sendMsg(t, p, vi, reg, []byte("one"), 3)
			sendMsg(t, p, vi2, reg, []byte("two"), 3)
		},
		func(p *sim.Proc, vi *VI) {
			reg := r.pb.RegisterMem(p, 64)
			d := recvMsg(t, p, vi, reg, 64)
			got[1] = string(d.Data)
		},
	)
	if got[1] != "one" || got[2] != "two" {
		t.Fatalf("got %v", got)
	}
}

func TestViaDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		k := sim.NewKernel()
		net := netsim.New(k, netsim.CLANConfig())
		cl := cluster.New(k, net)
		a := cl.AddNode("a", cluster.DefaultConfig())
		b := cl.AddNode("b", cluster.DefaultConfig())
		pa := NewProvider(a, net, CLANConfig())
		pb := NewProvider(b, net, CLANConfig())
		acc := pb.Listen(1)
		k.Go("srv", func(p *sim.Proc) {
			scq, rcq := pb.NewCQ(), pb.NewCQ()
			vi, _ := acc.Accept(p, scq, rcq)
			reg := pb.RegisterMem(p, 64*1024)
			for i := 0; i < 50; i++ {
				d := &Desc{Region: reg, Len: 64 * 1024}
				vi.PostRecv(p, d)
				vi.recvCQ.Wait(p)
			}
		})
		k.Go("cli", func(p *sim.Proc) {
			scq, rcq := pa.NewCQ(), pa.NewCQ()
			vi := pa.NewVI(scq, rcq)
			pa.Connect(p, vi, "b", 1)
			reg := pa.RegisterMem(p, 64*1024)
			for i := 0; i < 50; i++ {
				d := &Desc{Region: reg, Len: 1 + (i*997)%60000}
				vi.PostSend(p, d)
				vi.sendCQ.Wait(p)
			}
		})
		return k.RunAll()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}
