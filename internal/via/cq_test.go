package via

import (
	"testing"

	"hpsockets/internal/sim"
)

func TestCQSharedAcrossVIs(t *testing.T) {
	// Two VIs on one provider complete into one shared CQ; the waiter
	// sees completions from both, each attributed to its VI.
	r := newRig(t, CLANConfig())
	acc2 := r.pb.Listen(2)
	sharedDone := make(map[uint32]int)
	r.k.Go("server-shared", func(p *sim.Proc) {
		shared := r.pb.NewCQ()
		vi1, err := r.acceptor.Accept(p, r.pb.NewCQ(), shared)
		if err != nil {
			t.Errorf("accept1: %v", err)
			return
		}
		vi2, err := acc2.Accept(p, r.pb.NewCQ(), shared)
		if err != nil {
			t.Errorf("accept2: %v", err)
			return
		}
		reg := r.pb.RegisterMem(p, 4096)
		for i := 0; i < 2; i++ {
			vi1.PostRecv(p, &Desc{Region: reg, Len: 1024})
			vi2.PostRecv(p, &Desc{Region: reg, Len: 1024})
		}
		for i := 0; i < 4; i++ {
			c := shared.Wait(p)
			if c.Status != StatusOK || !c.IsRecv {
				t.Errorf("completion %d: %+v", i, c)
			}
			sharedDone[c.VI.ID()]++
		}
	})
	r.k.Go("client-shared", func(p *sim.Proc) {
		scq, rcq := r.pa.NewCQ(), r.pa.NewCQ()
		via1 := r.pa.NewVI(scq, rcq)
		if err := r.pa.Connect(p, via1, "b", 1); err != nil {
			t.Errorf("connect1: %v", err)
			return
		}
		via2 := r.pa.NewVI(scq, rcq)
		if err := r.pa.Connect(p, via2, "b", 2); err != nil {
			t.Errorf("connect2: %v", err)
			return
		}
		reg := r.pa.RegisterMem(p, 4096)
		for i := 0; i < 2; i++ {
			sendMsg(t, p, via1, reg, nil, 100)
			sendMsg(t, p, via2, reg, nil, 200)
		}
	})
	r.k.RunAll()
	total := 0
	for _, n := range sharedDone {
		if n != 2 {
			t.Fatalf("per-VI completions = %v, want 2 each", sharedDone)
		}
		total += n
	}
	if total != 4 {
		t.Fatalf("total completions = %d", total)
	}
}

func TestCQPollNonBlocking(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.k.Go("poller", func(p *sim.Proc) {
		cq := r.pa.NewCQ()
		if _, ok := cq.Poll(); ok {
			t.Error("Poll on empty CQ returned a completion")
		}
		if cq.Len() != 0 {
			t.Errorf("Len = %d", cq.Len())
		}
	})
	r.k.RunAll()
}

func TestProviderCounters(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			for i := 0; i < 3; i++ {
				sendMsg(t, p, vi, reg, nil, 512)
			}
		},
		func(p *sim.Proc, vi *VI) {
			reg := vi.Provider().RegisterMem(p, 4096)
			for i := 0; i < 3; i++ {
				recvMsg(t, p, vi, reg, 4096)
			}
		},
	)
	if r.pa.DescsSent() != 3 {
		t.Fatalf("descs sent = %d", r.pa.DescsSent())
	}
	if r.pb.DescsRecv() != 3 {
		t.Fatalf("descs recv = %d", r.pb.DescsRecv())
	}
}

func TestAcceptorCloseFailsPendingAccept(t *testing.T) {
	r := newRig(t, CLANConfig())
	acc := r.pa.Listen(5)
	var acceptErr error
	done := sim.NewSignal(r.k)
	r.k.Go("acceptor", func(p *sim.Proc) {
		_, acceptErr = acc.Accept(p, r.pa.NewCQ(), r.pa.NewCQ())
		done.Fire(nil)
	})
	r.k.GoAfter(10, "closer", func(p *sim.Proc) { acc.Close() })
	r.k.Go("waiter", func(p *sim.Proc) { p.Wait(done) })
	r.k.RunAll()
	if acceptErr == nil {
		t.Fatal("Accept on closed acceptor succeeded")
	}
}

func TestDuplicateListenPanics(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.pa.Listen(9)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Listen did not panic")
		}
	}()
	r.pa.Listen(9)
}

func TestConnectOnConnectedVIFails(t *testing.T) {
	r := newRig(t, CLANConfig())
	r.connectPair(t,
		func(p *sim.Proc, vi *VI) {
			if err := r.pa.Connect(p, vi, "b", 1); err == nil {
				t.Error("second Connect on same VI succeeded")
			}
		},
		func(p *sim.Proc, vi *VI) {},
	)
}
