package via

import (
	"errors"
	"fmt"

	"hpsockets/internal/sim"
)

// RDMA Write support — the push-model data transfer the paper names as
// future work ("we plan to investigate DataCutter with the push/pull
// data transfer model using RDMA operations"). A sender writes
// directly into a remote registered region; no receive descriptor is
// consumed and no completion is generated at the target (the VIA RDMA
// Write semantics). Senders typically follow the write with a small
// send to notify the peer; VI ordering guarantees the notification
// arrives after the written data.

// ErrRDMAProtection reports an RDMA write outside the bounds of the
// target region, or to an unexported region.
var ErrRDMAProtection = errors.New("via: rdma protection violation")

// RegisterMemRDMA registers a region like RegisterMem and additionally
// exports it as an RDMA target with backing storage; the returned
// handle names it to remote peers.
func (pr *Provider) RegisterMemRDMA(p *sim.Proc, size int) (*MemRegion, uint32) {
	region := pr.RegisterMem(p, size)
	region.rdma = true
	region.bytes = make([]byte, size)
	pr.nextRDMA++
	handle := pr.nextRDMA
	pr.rdmaRegions[handle] = region
	return region, handle
}

// RDMABytes exposes the backing storage of an RDMA-exported region.
func (m *MemRegion) RDMABytes() []byte { return m.bytes }

// PostRDMAWrite posts a descriptor whose payload is written directly
// into the remote region named by handle at the given offset. The
// local completion fires when the adapter has pushed the data; the
// remote side sees nothing until it is notified out of band.
func (vi *VI) PostRDMAWrite(p *sim.Proc, desc *Desc, handle uint32, offset int) error {
	if err := vi.checkDesc(desc); err != nil {
		return err
	}
	if desc.Len > vi.pr.cfg.MaxTransfer {
		return fmt.Errorf("via: rdma write of %d bytes exceeds max transfer %d", desc.Len, vi.pr.cfg.MaxTransfer)
	}
	if desc.Data != nil && len(desc.Data) != desc.Len {
		return fmt.Errorf("via: rdma descriptor data length %d != len %d", len(desc.Data), desc.Len)
	}
	if offset < 0 {
		return ErrRDMAProtection
	}
	switch vi.state {
	case viBroken:
		return ErrBroken
	case viConnected:
	default:
		return ErrNotConnected
	}
	vi.pr.node.Overhead(p, vi.pr.cfg.PostSendCPU)
	vi.pr.node.Kernel().Trace("via", "rdma-write", int64(desc.Len), vi.peerPort)
	w := vi.pr.newSendWork()
	w.vi, w.desc = vi, desc
	w.rdma, w.rdmaHandle, w.rdmaOffset = true, handle, offset
	_ = vi.pr.sendWQ.TryPut(w)
	return nil
}

// rxRDMA lands an RDMA fragment in the target region. A protection
// violation breaks the connection, as reliable-delivery VIA does.
func (pr *Provider) rxRDMA(p *sim.Proc, pk *packet) {
	vi := pr.vis[pk.dstVI]
	if vi == nil || vi.state == viBroken {
		return
	}
	p.Sleep(pr.cfg.NICRxPerFrame)
	pr.dmaUse(p, pk.fragLen)
	if pk.corrupt {
		pr.lossBreak(p, vi, "rdma checksum "+pk.srcPort, pk.fragLen)
		return
	}
	if pk.seq != vi.rxSeq {
		pr.lossBreak(p, vi, fmt.Sprintf("rdma seq gap %d!=%d %s", pk.seq, vi.rxSeq, pk.srcPort), pk.fragLen)
		return
	}
	vi.rxSeq++
	region := pr.rdmaRegions[pk.rdmaHandle]
	if region == nil || !region.rdma || pk.rdmaOffset+pk.fragLen > region.size {
		vi.breakLocal()
		pr.sendControl(p, vi.peerPort, pkBreak, vi.id, vi.peerVI, 0)
		return
	}
	if pk.frag != nil {
		copy(region.bytes[pk.rdmaOffset:], pk.frag)
	}
	vi.rdmaBytes += pk.fragLen
}

// RDMABytesReceived reports the total bytes landed in this VI's
// provider by RDMA writes addressed through it (diagnostics).
func (vi *VI) RDMABytesReceived() int { return vi.rdmaBytes }
