package fault

import (
	"errors"
	"io"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// harness is a two-node cluster with recovery-armed endpoints and a
// plan installed.
type harness struct {
	k   *sim.Kernel
	cl  *cluster.Cluster
	f   *core.Fabric
	inj *Injector
}

func newHarness(kind core.Kind, plan Plan) *harness {
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	inj := Install(cl, plan)
	f := core.NewFabric(cl, kind, prof)
	for _, node := range cl.Nodes() {
		inj.ArmDescPressure(node.Name(), f.Endpoint(node.Name()))
	}
	return &harness{k: k, cl: cl, f: f, inj: inj}
}

// transfer pushes total bytes a->b and returns bytes received, the
// sender's error, and the finishing virtual time.
func (h *harness) transfer(t *testing.T, total int) (int, error, sim.Time) {
	t.Helper()
	l := h.f.Endpoint("b").Listen(1)
	var got int
	var sendErr error
	h.k.Go("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Recv(p, buf)
			got += n
			if err != nil {
				return
			}
		}
	})
	h.k.Go("client", func(p *sim.Proc) {
		c, err := h.f.Endpoint("a").Dial(p, "b", 1)
		if err != nil {
			sendErr = err
			return
		}
		c.SetTimeout(50 * sim.Millisecond)
		sendErr = c.SendSize(p, total)
		c.Close(p)
	})
	h.k.RunAll()
	return got, sendErr, h.k.Now()
}

func TestZeroPlanInstallsNothing(t *testing.T) {
	h := newHarness(core.KindTCP, Plan{Seed: 1})
	if h.inj.Active() {
		t.Fatal("zero plan produced an active injector")
	}
	got, err, _ := h.transfer(t, 100_000)
	if err != nil || got != 100_000 {
		t.Fatalf("fault-free transfer: got %d err %v", got, err)
	}
}

func TestLossRecoveryAndDeterminism(t *testing.T) {
	plan := Plan{
		Seed:  42,
		Links: []LinkFault{{DropProb: 5e-3}},
	}
	run := func() (int, error, sim.Time, uint64) {
		h := newHarness(core.KindTCP, plan)
		got, err, end := h.transfer(t, 500_000)
		return got, err, end, h.inj.Drops()
	}
	got1, err1, end1, drops1 := run()
	if err1 != nil {
		t.Fatalf("send under loss: %v", err1)
	}
	if got1 != 500_000 {
		t.Fatalf("received %d of 500000 under loss", got1)
	}
	if drops1 == 0 {
		t.Fatal("expected injected drops at 5e-3 over ~350 frames of data+acks")
	}
	got2, err2, end2, drops2 := run()
	if got1 != got2 || end1 != end2 || drops1 != drops2 || !errors.Is(err1, err2) {
		t.Fatalf("nondeterministic: run1=(%d,%v,%d,%d) run2=(%d,%v,%d,%d)",
			got1, err1, end1, drops1, got2, err2, end2, drops2)
	}
}

func TestPartitionHealsAndTransferCompletes(t *testing.T) {
	plan := Plan{
		Seed: 7,
		Partitions: []Partition{
			{A: "a", B: "b", From: 2 * sim.Millisecond, To: 12 * sim.Millisecond},
		},
	}
	h := newHarness(core.KindTCP, plan)
	got, err, end := h.transfer(t, 2_000_000)
	if err != nil {
		t.Fatalf("send across healed partition: %v", err)
	}
	if got != 2_000_000 {
		t.Fatalf("received %d of 2000000", got)
	}
	if end < 12*sim.Millisecond {
		t.Fatalf("finished at %v, inside the partition window", end)
	}
	if h.inj.Drops() == 0 {
		t.Fatal("partition dropped nothing")
	}
}

func TestNodeCrashSurfacesAsTimeout(t *testing.T) {
	plan := Plan{
		Seed:    3,
		Crashes: []NodeCrash{{Node: "b", At: 1 * sim.Millisecond}},
	}
	h := newHarness(core.KindTCP, plan)
	_, err, _ := h.transfer(t, 8_000_000)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("send to crashed node = %v, want ErrTimeout", err)
	}
}

func TestSlowdownDelaysCompletion(t *testing.T) {
	base := newHarness(core.KindTCP, Plan{})
	baseEnd := computeRun(base)
	slow := newHarness(core.KindTCP, Plan{
		Seed:      1,
		Slowdowns: []NodeSlowdown{{Node: "b", At: 0, Factor: 4}},
	})
	slowEnd := computeRun(slow)
	if slowEnd <= baseEnd {
		t.Fatalf("slowdown did not delay: base %v, slowed %v", baseEnd, slowEnd)
	}
}

// computeRun runs a fixed computation on node b and reports the
// finishing virtual time.
func computeRun(h *harness) sim.Time {
	h.k.Go("work", func(p *sim.Proc) {
		h.cl.Node("b").Compute(p, 10*sim.Millisecond)
	})
	h.k.RunAll()
	return h.k.Now()
}

// TestRestartAccountingSymmetry proves the injector's crash-restart
// accounting is symmetric: frames to the crashed node are dropped (and
// counted) only while it is down, the crashed-node set empties at the
// restart, traffic flows cleanly afterwards, and the network-wide
// frame conservation law Sent == Received + Dropped holds across the
// whole crash -> restart window.
func TestRestartAccountingSymmetry(t *testing.T) {
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	inj := Install(cl, Plan{
		Seed:     13,
		Crashes:  []NodeCrash{{Node: "b", At: 2 * sim.Millisecond}},
		Restarts: []NodeRestart{{Node: "b", At: 6 * sim.Millisecond}},
	})
	f := core.NewFabric(cl, core.KindTCP, prof)

	// Phase 1: a transfer that straddles the crash. The sender times out
	// against the silent node and gives up; every frame it (and the TCP
	// machinery) pushed into the void is a counted drop.
	l1 := f.Endpoint("b").Listen(1)
	k.Go("server1", func(p *sim.Proc) {
		c, err := l1.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := c.Recv(p, buf); err != nil {
				return
			}
		}
	})
	var phase1Err error
	k.Go("client1", func(p *sim.Proc) {
		c, err := f.Endpoint("a").Dial(p, "b", 1)
		if err != nil {
			phase1Err = err
			return
		}
		c.SetTimeout(1 * sim.Millisecond)
		phase1Err = c.SendSize(p, 8_000_000)
		c.Close(p)
	})

	// Probe the injector just before the restart fires, then run a
	// clean transfer afterwards.
	var downDuringOutage int
	var dropsDuringOutage uint64
	k.At(5900*sim.Microsecond, func() {
		downDuringOutage = inj.DownNow()
		dropsDuringOutage = inj.Drops()
	})
	l2 := f.Endpoint("b").Listen(2)
	var got2 int
	k.Go("server2", func(p *sim.Proc) {
		c, err := l2.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Recv(p, buf)
			got2 += n
			if err != nil {
				return
			}
		}
	})
	var phase2Err error
	k.Go("client2", func(p *sim.Proc) {
		p.Sleep(6100 * sim.Microsecond) // dial only after the restart
		c, err := f.Endpoint("a").Dial(p, "b", 2)
		if err != nil {
			phase2Err = err
			return
		}
		c.SetTimeout(5 * sim.Millisecond)
		phase2Err = c.SendSize(p, 200_000)
		c.Close(p)
	})
	k.RunAll()

	if !errors.Is(phase1Err, core.ErrTimeout) {
		t.Fatalf("phase-1 send across crash = %v, want ErrTimeout", phase1Err)
	}
	if downDuringOutage != 1 {
		t.Fatalf("DownNow during outage = %d, want 1", downDuringOutage)
	}
	if dropsDuringOutage == 0 {
		t.Fatal("no frames dropped during the outage")
	}
	if inj.CrashesApplied() != 1 || inj.RestartsApplied() != 1 {
		t.Fatalf("applied crash/restart = %d/%d, want 1/1",
			inj.CrashesApplied(), inj.RestartsApplied())
	}
	if inj.DownNow() != 0 {
		t.Fatalf("DownNow after restart = %d, want 0", inj.DownNow())
	}
	if phase2Err != nil || got2 != 200_000 {
		t.Fatalf("post-restart transfer: got %d err %v, want clean 200000", got2, phase2Err)
	}
	if inj.Drops() != dropsDuringOutage {
		t.Fatalf("drop count moved after the restart: %d during outage, %d at end (drop.crash leak)",
			dropsDuringOutage, inj.Drops())
	}
	// Network-wide frame conservation across the whole window.
	pa, pb := net.LookupPort("a"), net.LookupPort("b")
	sent := pa.Sent() + pb.Sent()
	recv := pa.Received() + pb.Received()
	drop := pa.Dropped() + pb.Dropped()
	if sent != recv+drop {
		t.Fatalf("frame conservation violated: sent %d != received %d + dropped %d",
			sent, recv, drop)
	}
	if drop == 0 {
		t.Fatal("port accounting recorded no drops despite the outage")
	}
}

func TestDescPressureBreaksSocketVIA(t *testing.T) {
	plan := Plan{
		Seed:     9,
		Pressure: []DescPressure{{Node: "b", Prob: 1.0}},
	}
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	inj := Install(cl, plan)
	f := core.NewFabric(cl, core.KindSocketVIA, prof)

	l := f.Endpoint("b").Listen(1)
	var recvErr error
	k.Go("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			recvErr = err
			return
		}
		// Arm pressure only after the handshake so setup survives and
		// the first data message hits the dry pool.
		inj.ArmDescPressure("b", f.Endpoint("b"))
		buf := make([]byte, 4096)
		for {
			if _, err := c.Recv(p, buf); err != nil {
				recvErr = err
				return
			}
		}
	})
	k.Go("client", func(p *sim.Proc) {
		c, err := f.Endpoint("a").Dial(p, "b", 1)
		if err != nil {
			return
		}
		c.Send(p, make([]byte, 1024))
		c.Close(p)
	})
	k.RunAll()
	if !errors.Is(recvErr, core.ErrDescriptorExhausted) && !errors.Is(recvErr, core.ErrBroken) {
		t.Fatalf("recv under descriptor pressure = %v, want ErrDescriptorExhausted", recvErr)
	}
	if recvErr == io.EOF {
		t.Fatal("pressure produced clean EOF instead of a break")
	}
}
