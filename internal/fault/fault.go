// Package fault injects deterministic failures into the simulated
// fabric: probabilistic frame drop and corruption per link, network
// partition windows in virtual time, node crashes and slowdowns, and
// VIA receive-descriptor exhaustion pressure.
//
// A Plan is pure declarative data. Install compiles it into an
// Injector wired into the cluster's network and event schedule. All
// randomness flows through rand.Rand instances seeded from Plan.Seed,
// and every decision point runs in deterministic simulation order
// (the kernel is single-threaded), so the same plan over the same
// workload reproduces the same failures bit-for-bit — the property
// experiment E15 relies on and the CI determinism job checks.
//
// A zero Plan installs nothing: Install leaves the network without a
// FaultModel, so the fault-free code path is not merely "faults with
// probability zero" but the exact pre-fault-injection path, keeping
// headline figures byte-identical.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"

	"hpsockets/internal/cluster"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// LinkFault applies probabilistic frame damage to one directed link.
// Empty Src or Dst acts as a wildcard matching any node.
type LinkFault struct {
	Src, Dst string
	// DropProb is the per-frame probability the frame is lost.
	DropProb float64
	// CorruptProb is the per-frame probability the frame is delivered
	// damaged (checked only if the frame was not dropped).
	CorruptProb float64
}

// Partition severs all traffic between nodes A and B during the
// virtual-time window [From, To). Traffic resumes at To — a healed
// partition, the scenario the redial experiments recover from.
type Partition struct {
	A, B     string
	From, To sim.Time
}

// NodeCrash fail-stops a node at virtual time At: every frame to or
// from it is dropped from then on, and its next computation parks
// until the node restarts — forever, absent a matching NodeRestart
// (see cluster.Node.Fail).
type NodeCrash struct {
	Node string
	At   sim.Time
}

// NodeRestart revives a crashed node at virtual time At: the node
// leaves the crashed set (its frames flow again and the drop.crash
// counter stops charging it), halted procs resume, and the node's
// OnRestart hooks run — the recovery half of a crash→restart window.
// Install panics unless the plan also crashes the same node strictly
// earlier: a restart without a preceding crash is a plan bug.
type NodeRestart struct {
	Node string
	At   sim.Time
}

// NodeSlowdown scales a node's computation by Factor starting at At,
// emulating a degraded-but-alive host.
type NodeSlowdown struct {
	Node   string
	At     sim.Time
	Factor float64
}

// DescPressure makes the node's VIA provider treat an arriving data
// frame as finding no receive descriptor with probability Prob,
// triggering the receiver-not-ready path the credit protocol normally
// rules out.
type DescPressure struct {
	Node string
	Prob float64
}

// Profile is a netem-style set of link conditions: added latency with
// jitter, probabilistic and deterministic every-Nth loss (silently
// dropped or actively rejected, aerolab's two block semantics), a
// bandwidth throttle below the link rate, corruption, and reordering.
// The zero Profile conditions nothing.
type Profile struct {
	// Latency is extra one-way delay added to every matching frame.
	Latency sim.Time
	// Jitter spreads Latency uniformly over [Latency-Jitter,
	// Latency+Jitter], clamped at zero.
	Jitter sim.Time
	// LossProb is the per-frame probability the frame is lost.
	LossProb float64
	// LossEveryN, when positive, deterministically loses every N-th
	// matching frame (aerolab's every-Nth block semantics).
	LossEveryN int
	// Reject makes losses (probabilistic and every-Nth) active
	// rejections instead of silent drops: the netsim layer counts them
	// separately and traces them as RST-style bounces.
	Reject bool
	// BandwidthMbps, when positive, throttles matching frames to this
	// rate on the destination downlink.
	BandwidthMbps float64
	// CorruptProb is the per-frame probability of in-flight damage.
	CorruptProb float64
	// ReorderProb is the per-frame probability the frame bypasses FIFO
	// delivery and may overtake earlier traffic.
	ReorderProb float64
}

// Zero reports whether the profile conditions nothing.
func (p Profile) Zero() bool { return p == Profile{} }

// Lossy reports whether the profile can lose frames.
func (p Profile) Lossy() bool { return p.LossProb > 0 || p.LossEveryN > 0 }

// LinkCondition applies a Profile to one directed link during the
// virtual-time window [From, To). To == 0 means the condition holds
// for the whole run. Empty Src or Dst acts as a wildcard.
type LinkCondition struct {
	Src, Dst string
	From, To sim.Time
	Profile  Profile
}

// activeAt reports whether the condition's window covers time t.
func (lc LinkCondition) activeAt(t sim.Time) bool {
	return t >= lc.From && (lc.To == 0 || t < lc.To)
}

// Plan declares every fault to inject into one run.
type Plan struct {
	// Seed roots all probabilistic decisions. Two runs of the same
	// workload under the same plan are identical.
	Seed       int64
	Links      []LinkFault
	Conditions []LinkCondition
	Partitions []Partition
	Crashes    []NodeCrash
	Restarts   []NodeRestart
	Slowdowns  []NodeSlowdown
	Pressure   []DescPressure
}

// Zero reports whether the plan injects nothing at all.
func (pl Plan) Zero() bool {
	return len(pl.Links) == 0 && len(pl.Conditions) == 0 &&
		len(pl.Partitions) == 0 && len(pl.Crashes) == 0 &&
		len(pl.Restarts) == 0 &&
		len(pl.Slowdowns) == 0 && len(pl.Pressure) == 0
}

// Injector is a compiled Plan attached to a cluster. It implements
// netsim.ConditionedFaultModel; Install registers it with the network
// unless the plan is zero.
//
// Every probabilistic entry owns a rand.Rand seeded from the plan seed
// and the entry's own identity (its node pair and parameters), never
// its position in the plan's slices: reordering Plan.Links or
// Plan.Conditions cannot change any outcome, and each entry's stream
// advances exactly once per decision it is armed for on every frame it
// matches, whatever other entries decide.
type Injector struct {
	cl     *cluster.Cluster
	plan   Plan
	active bool
	links  []linkState
	conds  []condState
	// pressure holds a dedicated seeded stream per DescPressure entry
	// so wire faults and descriptor faults do not perturb each other's
	// random sequences.
	pressure map[string]*descPressureState

	drops    uint64
	rejects  uint64
	corrupts uint64
	// crashed and restarted count applied node-state transitions, so a
	// harness can cross-check that every scheduled crash and restart
	// actually fired (and that the crashed-node set is back in balance
	// after a crash→restart window).
	crashed   uint64
	restarted uint64
}

type linkState struct {
	fault LinkFault
	rng   *rand.Rand
}

type condState struct {
	cond LinkCondition
	rng  *rand.Rand
	// seen counts matching frames inside the window; it drives the
	// deterministic every-Nth loss.
	seen uint64
}

type descPressureState struct {
	prob float64
	rng  *rand.Rand
}

// identitySeed derives a deterministic seed from the plan seed and an
// entry's identity parts (FNV-1a over the parts, order-sensitive
// within the entry but independent of the entry's slice position).
func identitySeed(planSeed int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, s := range parts {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return planSeed ^ int64(h.Sum64())
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

// seed identities per entry kind. Including the parameters (not just
// the node pair) keeps two different entries on the same link on
// independent streams.
func (lf LinkFault) identity(planSeed int64) int64 {
	return identitySeed(planSeed, "link", lf.Src, lf.Dst,
		ftoa(lf.DropProb), ftoa(lf.CorruptProb))
}

func (lc LinkCondition) identity(planSeed int64) int64 {
	p := lc.Profile
	return identitySeed(planSeed, "cond", lc.Src, lc.Dst,
		itoa(int64(lc.From)), itoa(int64(lc.To)),
		itoa(int64(p.Latency)), itoa(int64(p.Jitter)),
		ftoa(p.LossProb), itoa(int64(p.LossEveryN)),
		strconv.FormatBool(p.Reject), ftoa(p.BandwidthMbps),
		ftoa(p.CorruptProb), ftoa(p.ReorderProb))
}

func (dp DescPressure) identity(planSeed int64) int64 {
	return identitySeed(planSeed, "pressure", dp.Node, ftoa(dp.Prob))
}

// Install compiles the plan against the cluster: it registers the
// injector as the network's fault model, schedules crashes and
// slowdowns at their virtual times, and prepares descriptor-pressure
// hooks (armed per endpoint via ArmDescPressure). A zero plan leaves
// the cluster completely untouched.
func Install(cl *cluster.Cluster, plan Plan) *Injector {
	inj := &Injector{cl: cl, plan: plan}
	if plan.Zero() {
		return inj
	}
	k := cl.Kernel()
	inj.active = true
	for _, lf := range plan.Links {
		inj.links = append(inj.links, linkState{
			fault: lf,
			rng:   rand.New(rand.NewSource(lf.identity(plan.Seed))),
		})
	}
	for _, lc := range plan.Conditions {
		inj.conds = append(inj.conds, condState{
			cond: lc,
			rng:  rand.New(rand.NewSource(lc.identity(plan.Seed))),
		})
	}
	inj.pressure = make(map[string]*descPressureState)
	for _, dp := range plan.Pressure {
		inj.pressure[dp.Node] = &descPressureState{
			prob: dp.Prob,
			rng:  rand.New(rand.NewSource(dp.identity(plan.Seed))),
		}
	}
	cl.Network().SetFaultModel(inj)
	for _, cr := range plan.Crashes {
		node := cl.Node(cr.Node)
		if node == nil {
			panic(fmt.Sprintf("fault: crash names unknown node %q", cr.Node))
		}
		k.At(cr.At, func() {
			k.Trace("fault", "node-crash", 0, node.Name())
			hpsmon.InstantK(k, "fault", "node-crash", node.Name())
			inj.crashed++
			node.Fail()
		})
	}
	for _, rs := range plan.Restarts {
		node := cl.Node(rs.Node)
		if node == nil {
			panic(fmt.Sprintf("fault: restart names unknown node %q", rs.Node))
		}
		covered := false
		for _, cr := range plan.Crashes {
			if cr.Node == rs.Node && cr.At < rs.At {
				covered = true
			}
		}
		if !covered {
			panic(fmt.Sprintf("fault: restart of %q at %v has no strictly earlier crash", rs.Node, rs.At))
		}
		k.At(rs.At, func() {
			k.Trace("fault", "node-restart", 0, node.Name())
			hpsmon.InstantK(k, "fault", "node-restart", node.Name())
			inj.restarted++
			node.Restart()
		})
	}
	for _, sl := range plan.Slowdowns {
		node := cl.Node(sl.Node)
		if node == nil {
			panic(fmt.Sprintf("fault: slowdown names unknown node %q", sl.Node))
		}
		factor := sl.Factor
		k.At(sl.At, func() {
			k.Trace("fault", "node-slowdown", int64(factor), node.Name())
			hpsmon.InstantK(k, "fault", "node-slowdown", node.Name())
			node.SetSlowFactor(factor)
		})
	}
	return inj
}

// Active reports whether the injector was compiled from a non-zero
// plan.
func (in *Injector) Active() bool { return in.active }

// Drops reports how many frames the injector dropped (wire loss,
// partitions, rejections, and crashed-node traffic combined).
func (in *Injector) Drops() uint64 { return in.drops }

// Rejects reports how many of the dropped frames were active
// rejections from a Reject-mode condition.
func (in *Injector) Rejects() uint64 { return in.rejects }

// Corrupts reports how many frames the injector damaged in flight.
func (in *Injector) Corrupts() uint64 { return in.corrupts }

// CrashesApplied reports how many scheduled node crashes have fired.
func (in *Injector) CrashesApplied() uint64 { return in.crashed }

// RestartsApplied reports how many scheduled node restarts have fired.
func (in *Injector) RestartsApplied() uint64 { return in.restarted }

// DownNow reports how many cluster nodes are currently in the crashed
// set — zero again once every crash has been matched by a restart.
func (in *Injector) DownNow() int {
	n := 0
	for _, node := range in.cl.Nodes() {
		if node.Failed() {
			n++
		}
	}
	return n
}

// Judge implements netsim.FaultModel by discarding the conditioning
// half of the verdict.
func (in *Injector) Judge(now sim.Time, f *netsim.Frame) netsim.Disposition {
	return in.JudgeConditioned(now, f).Disposition
}

// JudgeConditioned implements netsim.ConditionedFaultModel.
// Precedence: crashed endpoints silence the frame, then partition
// windows, then per-entry probabilistic loss, rejection, and
// corruption combined across every matching link fault and condition.
//
// Every armed probability of every matching entry draws exactly once
// per frame, whatever earlier entries decided; the verdict is then
// combined with fixed precedence (silent drop over reject over
// corrupt). Decisions therefore do not depend on entry order.
func (in *Injector) JudgeConditioned(now sim.Time, f *netsim.Frame) netsim.Verdict {
	k := in.cl.Kernel()
	if in.nodeFailed(f.Src) || in.nodeFailed(f.Dst) {
		in.drops++
		hpsmon.Count(k, "fault", "drop.crash", 1)
		return netsim.Verdict{Disposition: netsim.Drop}
	}
	for _, pt := range in.plan.Partitions {
		if now >= pt.From && now < pt.To && betweenPair(f, pt.A, pt.B) {
			in.drops++
			hpsmon.Count(k, "fault", "drop.partition", 1)
			return netsim.Verdict{Disposition: netsim.Drop}
		}
	}
	var drop, reject, corrupt bool
	var cond netsim.Condition
	for i := range in.links {
		ls := &in.links[i]
		if !matchLink(f, ls.fault) {
			continue
		}
		if ls.fault.DropProb > 0 && ls.rng.Float64() < ls.fault.DropProb {
			drop = true
		}
		if ls.fault.CorruptProb > 0 && ls.rng.Float64() < ls.fault.CorruptProb {
			corrupt = true
		}
	}
	for i := range in.conds {
		cs := &in.conds[i]
		if !matchCond(f, cs.cond) || !cs.cond.activeAt(now) {
			continue
		}
		cs.seen++
		p := cs.cond.Profile
		lost := false
		if p.LossProb > 0 && cs.rng.Float64() < p.LossProb {
			lost = true
		}
		if p.LossEveryN > 0 && cs.seen%uint64(p.LossEveryN) == 0 {
			lost = true
		}
		if lost {
			if p.Reject {
				reject = true
			} else {
				drop = true
			}
		}
		if p.CorruptProb > 0 && cs.rng.Float64() < p.CorruptProb {
			corrupt = true
		}
		if p.ReorderProb > 0 && cs.rng.Float64() < p.ReorderProb {
			cond.Reorder = true
		}
		delay := p.Latency
		if p.Jitter > 0 {
			delay += sim.Time(cs.rng.Int63n(int64(2*p.Jitter)+1)) - p.Jitter
			if delay < 0 {
				delay = 0
			}
		}
		cond.Delay += delay
		if p.BandwidthMbps > 0 &&
			(cond.RateMbps == 0 || p.BandwidthMbps < cond.RateMbps) {
			cond.RateMbps = p.BandwidthMbps
		}
	}
	switch {
	case drop:
		in.drops++
		hpsmon.Count(k, "fault", "drop.link", 1)
		return netsim.Verdict{Disposition: netsim.Drop}
	case reject:
		in.drops++
		in.rejects++
		hpsmon.Count(k, "fault", "drop.reject", 1)
		return netsim.Verdict{Disposition: netsim.Reject}
	case corrupt:
		in.corrupts++
		hpsmon.Count(k, "fault", "corrupt.link", 1)
		return netsim.Verdict{Disposition: netsim.Corrupt, Cond: cond}
	}
	return netsim.Verdict{Cond: cond}
}

func (in *Injector) nodeFailed(name string) bool {
	node := in.cl.Node(name)
	return node != nil && node.Failed()
}

func betweenPair(f *netsim.Frame, a, b string) bool {
	return (f.Src == a && f.Dst == b) || (f.Src == b && f.Dst == a)
}

func matchLink(f *netsim.Frame, lf LinkFault) bool {
	return (lf.Src == "" || lf.Src == f.Src) &&
		(lf.Dst == "" || lf.Dst == f.Dst)
}

func matchCond(f *netsim.Frame, lc LinkCondition) bool {
	return (lc.Src == "" || lc.Src == f.Src) &&
		(lc.Dst == "" || lc.Dst == f.Dst)
}

// DescPressureFor returns the descriptor-exhaustion hook for the named
// node, or nil when the plan applies no pressure there. The hook is
// what via.Provider.SetDescPressure expects: it reports, per arriving
// data frame, whether the receive pool should be treated as dry.
func (in *Injector) DescPressureFor(node string) func() bool {
	st, ok := in.pressure[node]
	if !ok {
		return nil
	}
	return func() bool { return st.rng.Float64() < st.prob }
}

// descPressureArmer is the endpoint capability required to inject
// descriptor pressure; core's SocketVIA endpoint implements it, the
// kernel-path endpoint does not (descriptor exhaustion is a VIA-only
// failure mode).
type descPressureArmer interface {
	SetDescPressure(fn func() bool)
}

// ArmDescPressure wires the plan's descriptor pressure into every
// endpoint that supports it. ep is typically core.Fabric.Endpoint for
// each node; pass endpoints in cluster order for reproducibility
// (iterate cl.Nodes(), not a map).
func (in *Injector) ArmDescPressure(node string, ep any) {
	fn := in.DescPressureFor(node)
	if fn == nil {
		return
	}
	if armer, ok := ep.(descPressureArmer); ok {
		armer.SetDescPressure(fn)
	}
}
