// Package fault injects deterministic failures into the simulated
// fabric: probabilistic frame drop and corruption per link, network
// partition windows in virtual time, node crashes and slowdowns, and
// VIA receive-descriptor exhaustion pressure.
//
// A Plan is pure declarative data. Install compiles it into an
// Injector wired into the cluster's network and event schedule. All
// randomness flows through rand.Rand instances seeded from Plan.Seed,
// and every decision point runs in deterministic simulation order
// (the kernel is single-threaded), so the same plan over the same
// workload reproduces the same failures bit-for-bit — the property
// experiment E15 relies on and the CI determinism job checks.
//
// A zero Plan installs nothing: Install leaves the network without a
// FaultModel, so the fault-free code path is not merely "faults with
// probability zero" but the exact pre-fault-injection path, keeping
// headline figures byte-identical.
package fault

import (
	"fmt"
	"math/rand"

	"hpsockets/internal/cluster"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// LinkFault applies probabilistic frame damage to one directed link.
// Empty Src or Dst acts as a wildcard matching any node.
type LinkFault struct {
	Src, Dst string
	// DropProb is the per-frame probability the frame is lost.
	DropProb float64
	// CorruptProb is the per-frame probability the frame is delivered
	// damaged (checked only if the frame was not dropped).
	CorruptProb float64
}

// Partition severs all traffic between nodes A and B during the
// virtual-time window [From, To). Traffic resumes at To — a healed
// partition, the scenario the redial experiments recover from.
type Partition struct {
	A, B     string
	From, To sim.Time
}

// NodeCrash fail-stops a node at virtual time At: every frame to or
// from it is dropped from then on, and its next computation parks
// forever (see cluster.Node.Fail).
type NodeCrash struct {
	Node string
	At   sim.Time
}

// NodeSlowdown scales a node's computation by Factor starting at At,
// emulating a degraded-but-alive host.
type NodeSlowdown struct {
	Node   string
	At     sim.Time
	Factor float64
}

// DescPressure makes the node's VIA provider treat an arriving data
// frame as finding no receive descriptor with probability Prob,
// triggering the receiver-not-ready path the credit protocol normally
// rules out.
type DescPressure struct {
	Node string
	Prob float64
}

// Plan declares every fault to inject into one run.
type Plan struct {
	// Seed roots all probabilistic decisions. Two runs of the same
	// workload under the same plan are identical.
	Seed       int64
	Links      []LinkFault
	Partitions []Partition
	Crashes    []NodeCrash
	Slowdowns  []NodeSlowdown
	Pressure   []DescPressure
}

// Zero reports whether the plan injects nothing at all.
func (pl Plan) Zero() bool {
	return len(pl.Links) == 0 && len(pl.Partitions) == 0 &&
		len(pl.Crashes) == 0 && len(pl.Slowdowns) == 0 &&
		len(pl.Pressure) == 0
}

// Injector is a compiled Plan attached to a cluster. It implements
// netsim.FaultModel; Install registers it with the network unless the
// plan is zero.
type Injector struct {
	cl   *cluster.Cluster
	plan Plan
	// rng drives the per-frame drop/corrupt decisions. Judge runs in
	// deterministic event order, so one shared stream reproduces.
	rng *rand.Rand
	// pressure holds a dedicated seeded stream per DescPressure entry
	// so wire faults and descriptor faults do not perturb each other's
	// random sequences.
	pressure map[string]*descPressureState

	drops    uint64
	corrupts uint64
}

type descPressureState struct {
	prob float64
	rng  *rand.Rand
}

// Install compiles the plan against the cluster: it registers the
// injector as the network's fault model, schedules crashes and
// slowdowns at their virtual times, and prepares descriptor-pressure
// hooks (armed per endpoint via ArmDescPressure). A zero plan leaves
// the cluster completely untouched.
func Install(cl *cluster.Cluster, plan Plan) *Injector {
	inj := &Injector{cl: cl, plan: plan}
	if plan.Zero() {
		return inj
	}
	k := cl.Kernel()
	inj.rng = rand.New(rand.NewSource(plan.Seed))
	inj.pressure = make(map[string]*descPressureState)
	for i, dp := range plan.Pressure {
		inj.pressure[dp.Node] = &descPressureState{
			prob: dp.Prob,
			rng:  rand.New(rand.NewSource(plan.Seed ^ int64(i+1)<<20)),
		}
	}
	cl.Network().SetFaultModel(inj)
	for _, cr := range plan.Crashes {
		node := cl.Node(cr.Node)
		if node == nil {
			panic(fmt.Sprintf("fault: crash names unknown node %q", cr.Node))
		}
		k.At(cr.At, func() {
			k.Trace("fault", "node-crash", 0, node.Name())
			hpsmon.InstantK(k, "fault", "node-crash", node.Name())
			node.Fail()
		})
	}
	for _, sl := range plan.Slowdowns {
		node := cl.Node(sl.Node)
		if node == nil {
			panic(fmt.Sprintf("fault: slowdown names unknown node %q", sl.Node))
		}
		factor := sl.Factor
		k.At(sl.At, func() {
			k.Trace("fault", "node-slowdown", int64(factor), node.Name())
			hpsmon.InstantK(k, "fault", "node-slowdown", node.Name())
			node.SetSlowFactor(factor)
		})
	}
	return inj
}

// Active reports whether the injector was compiled from a non-zero
// plan.
func (in *Injector) Active() bool { return in.rng != nil }

// Drops reports how many frames the injector dropped (wire loss,
// partitions, and crashed-node traffic combined).
func (in *Injector) Drops() uint64 { return in.drops }

// Corrupts reports how many frames the injector damaged in flight.
func (in *Injector) Corrupts() uint64 { return in.corrupts }

// Judge implements netsim.FaultModel. Precedence: crashed endpoints
// silence the frame, then partition windows, then per-link
// probabilistic loss and corruption.
func (in *Injector) Judge(now sim.Time, f *netsim.Frame) netsim.Disposition {
	k := in.cl.Kernel()
	if in.nodeFailed(f.Src) || in.nodeFailed(f.Dst) {
		in.drops++
		hpsmon.Count(k, "fault", "drop.crash", 1)
		return netsim.Drop
	}
	for _, pt := range in.plan.Partitions {
		if now >= pt.From && now < pt.To && betweenPair(f, pt.A, pt.B) {
			in.drops++
			hpsmon.Count(k, "fault", "drop.partition", 1)
			return netsim.Drop
		}
	}
	for _, lf := range in.plan.Links {
		if !matchLink(f, lf) {
			continue
		}
		if lf.DropProb > 0 && in.rng.Float64() < lf.DropProb {
			in.drops++
			hpsmon.Count(k, "fault", "drop.link", 1)
			return netsim.Drop
		}
		if lf.CorruptProb > 0 && in.rng.Float64() < lf.CorruptProb {
			in.corrupts++
			hpsmon.Count(k, "fault", "corrupt.link", 1)
			return netsim.Corrupt
		}
	}
	return netsim.Deliver
}

func (in *Injector) nodeFailed(name string) bool {
	node := in.cl.Node(name)
	return node != nil && node.Failed()
}

func betweenPair(f *netsim.Frame, a, b string) bool {
	return (f.Src == a && f.Dst == b) || (f.Src == b && f.Dst == a)
}

func matchLink(f *netsim.Frame, lf LinkFault) bool {
	return (lf.Src == "" || lf.Src == f.Src) &&
		(lf.Dst == "" || lf.Dst == f.Dst)
}

// DescPressureFor returns the descriptor-exhaustion hook for the named
// node, or nil when the plan applies no pressure there. The hook is
// what via.Provider.SetDescPressure expects: it reports, per arriving
// data frame, whether the receive pool should be treated as dry.
func (in *Injector) DescPressureFor(node string) func() bool {
	st, ok := in.pressure[node]
	if !ok {
		return nil
	}
	return func() bool { return st.rng.Float64() < st.prob }
}

// descPressureArmer is the endpoint capability required to inject
// descriptor pressure; core's SocketVIA endpoint implements it, the
// kernel-path endpoint does not (descriptor exhaustion is a VIA-only
// failure mode).
type descPressureArmer interface {
	SetDescPressure(fn func() bool)
}

// ArmDescPressure wires the plan's descriptor pressure into every
// endpoint that supports it. ep is typically core.Fabric.Endpoint for
// each node; pass endpoints in cluster order for reproducibility
// (iterate cl.Nodes(), not a map).
func (in *Injector) ArmDescPressure(node string, ep any) {
	fn := in.DescPressureFor(node)
	if fn == nil {
		return
	}
	if armer, ok := ep.(descPressureArmer); ok {
		armer.SetDescPressure(fn)
	}
}
