package fault

import (
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
)

// reorderedPlans builds the same logical plan with its slices in two
// different orders.
func reorderedPlans() (Plan, Plan) {
	links := []LinkFault{
		{Src: "a", Dst: "b", DropProb: 8e-3},
		{Src: "a", Dst: "b", CorruptProb: 5e-3},
		{Src: "b", Dst: "a", DropProb: 3e-3},
	}
	conds := []LinkCondition{
		{Src: "a", Dst: "b", Profile: Profile{Latency: 20 * sim.Microsecond, Jitter: 5 * sim.Microsecond}},
		{Src: "b", Dst: "a", Profile: Profile{LossProb: 2e-3}},
	}
	pressure := []DescPressure{
		{Node: "a", Prob: 0.001},
		{Node: "b", Prob: 0.002},
	}
	fwd := Plan{Seed: 99, Links: links, Conditions: conds, Pressure: pressure}
	rev := Plan{Seed: 99}
	for i := len(links) - 1; i >= 0; i-- {
		rev.Links = append(rev.Links, links[i])
	}
	for i := len(conds) - 1; i >= 0; i-- {
		rev.Conditions = append(rev.Conditions, conds[i])
	}
	for i := len(pressure) - 1; i >= 0; i-- {
		rev.Pressure = append(rev.Pressure, pressure[i])
	}
	return fwd, rev
}

// TestPlanEntryOrderInvariance: per-entry rngs are keyed by entry
// identity, not slice index, so reordering Plan.Links, Plan.Conditions
// or Plan.Pressure must not change a single outcome.
func TestPlanEntryOrderInvariance(t *testing.T) {
	fwd, rev := reorderedPlans()
	run := func(plan Plan) (int, sim.Time, uint64, uint64) {
		h := newHarness(core.KindTCP, plan)
		got, err, end := h.transfer(t, 400_000)
		if err != nil {
			t.Fatalf("transfer under plan: %v", err)
		}
		return got, end, h.inj.Drops(), h.inj.Corrupts()
	}
	got1, end1, drops1, corr1 := run(fwd)
	got2, end2, drops2, corr2 := run(rev)
	if got1 != got2 || end1 != end2 || drops1 != drops2 || corr1 != corr2 {
		t.Fatalf("reordering plan entries changed outcomes:\nfwd=(%d,%v,%d,%d)\nrev=(%d,%v,%d,%d)",
			got1, end1, drops1, corr1, got2, end2, drops2, corr2)
	}
	if drops1 == 0 && corr1 == 0 {
		t.Fatal("plan injected nothing; the invariance check has no teeth")
	}
}

// TestConditionLatencyDelaysTransfer: a latency profile on the data
// direction stretches completion time but loses nothing.
func TestConditionLatencyDelaysTransfer(t *testing.T) {
	base := newHarness(core.KindTCP, Plan{})
	gotB, errB, endB := base.transfer(t, 200_000)
	if errB != nil || gotB != 200_000 {
		t.Fatalf("baseline transfer: got %d err %v", gotB, errB)
	}
	slow := newHarness(core.KindTCP, Plan{
		Seed: 4,
		Conditions: []LinkCondition{
			{Src: "a", Dst: "b", Profile: Profile{Latency: 100 * sim.Microsecond}},
		},
	})
	gotS, errS, endS := slow.transfer(t, 200_000)
	if errS != nil || gotS != 200_000 {
		t.Fatalf("conditioned transfer: got %d err %v", gotS, errS)
	}
	if endS <= endB {
		t.Fatalf("latency condition did not delay: base %v, conditioned %v", endB, endS)
	}
	if slow.inj.Drops() != 0 {
		t.Fatalf("pure latency condition dropped %d frames", slow.inj.Drops())
	}
}

// TestConditionWindowActivates: a lossy condition confined to a window
// at the end of the horizon never fires for a transfer that finishes
// before it, and an always-on one does.
func TestConditionWindowActivates(t *testing.T) {
	windowed := newHarness(core.KindTCP, Plan{
		Seed: 11,
		Conditions: []LinkCondition{
			{Src: "a", Dst: "b", From: 5 * sim.Second, To: 6 * sim.Second,
				Profile: Profile{LossEveryN: 2}},
		},
	})
	got, err, end := windowed.transfer(t, 100_000)
	if err != nil || got != 100_000 {
		t.Fatalf("transfer before window: got %d err %v", got, err)
	}
	if end >= 5*sim.Second {
		t.Fatalf("transfer ran into the window at %v", end)
	}
	if windowed.inj.Drops() != 0 {
		t.Fatalf("windowed condition fired early: %d drops", windowed.inj.Drops())
	}

	always := newHarness(core.KindTCP, Plan{
		Seed: 11,
		Conditions: []LinkCondition{
			{Src: "a", Dst: "b", Profile: Profile{LossEveryN: 50}},
		},
	})
	got, err, _ = always.transfer(t, 400_000)
	if err != nil || got != 400_000 {
		t.Fatalf("transfer under every-Nth loss: got %d err %v", got, err)
	}
	if always.inj.Drops() == 0 {
		t.Fatal("every-50th loss dropped nothing over ~280 data frames")
	}
}

// TestRejectModeCounts: reject-mode losses surface in both the drop
// and reject counters.
func TestRejectModeCounts(t *testing.T) {
	h := newHarness(core.KindTCP, Plan{
		Seed: 21,
		Conditions: []LinkCondition{
			{Src: "a", Dst: "b", Profile: Profile{LossEveryN: 40, Reject: true}},
		},
	})
	got, err, _ := h.transfer(t, 400_000)
	if err != nil || got != 400_000 {
		t.Fatalf("transfer under reject-mode loss: got %d err %v", got, err)
	}
	if h.inj.Rejects() == 0 {
		t.Fatal("reject-mode loss rejected nothing")
	}
	if h.inj.Rejects() != h.inj.Drops() {
		t.Fatalf("rejects %d != drops %d for a reject-only plan",
			h.inj.Rejects(), h.inj.Drops())
	}
}

// TestConditionDeterminism: a full profile (latency, jitter, loss,
// bandwidth, corruption, reorder) reproduces bit-for-bit.
func TestConditionDeterminism(t *testing.T) {
	plan := Plan{
		Seed: 31,
		Conditions: []LinkCondition{
			{Src: "a", Dst: "b", Profile: Profile{
				Latency: 10 * sim.Microsecond, Jitter: 4 * sim.Microsecond,
				LossProb: 2e-3, BandwidthMbps: 900,
				CorruptProb: 1e-3, ReorderProb: 5e-3,
			}},
		},
	}
	run := func() (int, error, sim.Time, uint64, uint64) {
		h := newHarness(core.KindTCP, plan)
		got, err, end := h.transfer(t, 300_000)
		return got, err, end, h.inj.Drops(), h.inj.Corrupts()
	}
	got1, err1, end1, d1, c1 := run()
	got2, err2, end2, d2, c2 := run()
	if got1 != got2 || end1 != end2 || d1 != d2 || c1 != c2 ||
		(err1 == nil) != (err2 == nil) {
		t.Fatalf("nondeterministic conditioned run:\n1=(%d,%v,%v,%d,%d)\n2=(%d,%v,%v,%d,%d)",
			got1, err1, end1, d1, c1, got2, err2, end2, d2, c2)
	}
}
