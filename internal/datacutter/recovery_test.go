package datacutter

import (
	"fmt"
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/fault"
	"hpsockets/internal/sim"
)

// recoveryWorkload wires the canonical crash-restart rig: a paced
// source on n0 feeding a recovery-armed sink on n1 over an
// exactly-once demand-driven stream, with n1 crashing and restarting
// per the plan. It returns the group plus the delivery log the sink
// accumulates (per-tag delivery counts, keyed uow<<20|tag) and the
// sequence of unit-of-work numbers the sink's driver processed.
type recoveryRun struct {
	r         *rig
	g         *Group
	delivered map[int64]int
	uowSeq    []int
}

func newRecoveryRun(kind core.Kind, plan fault.Plan, uows, perUOW int, ckptEvery sim.Time) *recoveryRun {
	rr := &recoveryRun{delivered: make(map[int64]int)}
	rr.r = newFaultRig(2, kind, plan)
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < perUOW; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: 8 * 1024, Tag: int64(i)}); err != nil {
					return err
				}
				ctx.Proc().Sleep(100 * sim.Microsecond)
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			rr.uowSeq = append(rr.uowSeq, ctx.UOW())
			in := ctx.Input("s")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				rr.delivered[int64(b.UOW)<<20|b.Tag]++
			}
		}}
	}
	rr.g = rr.r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}, CheckpointEvery: ckptEvery},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:         DemandDriven,
			MaxUnacked:     4,
			OpTimeout:      1 * sim.Millisecond,
			RedialAttempts: 8,
			RedialSeed:     7,
			ExactlyOnce:    true,
		}},
	})
	return rr
}

// TestCrashRestartResumesFromCheckpoint crashes the single recovery-
// armed consumer copy mid-run and restarts it: the group must finish
// cleanly (done signal fired, no error), the copy must have run a
// restart incarnation resumed from its checkpoint watermark — the
// processed unit-of-work sequence is two contiguous ascending runs,
// the second starting at or below where the first broke off — and the
// exactly-once ledger must keep every (uow, tag) delivery count at
// one despite failover re-dispatch overlapping the rejoin.
func TestCrashRestartResumesFromCheckpoint(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		rr := newRecoveryRun(kind, fault.Plan{
			Seed:     3,
			Crashes:  []fault.NodeCrash{{Node: "n1", At: 3 * sim.Millisecond}},
			Restarts: []fault.NodeRestart{{Node: "n1", At: 5 * sim.Millisecond}},
		}, 8, 10, 1*sim.Millisecond)
		rr.g.Start(8)
		rr.r.k.RunAll()
		if !rr.g.Done().Fired() {
			t.Fatal("group did not finish after restart (rejoin stranded?)")
		}
		if err := rr.g.Err(); err != nil {
			t.Fatalf("group error across crash-restart: %v", err)
		}
		if got := rr.g.RestartsOf("dst", 0); got != 1 {
			t.Fatalf("restarts = %d, want 1", got)
		}
		restartedAt, recoveredAt := rr.g.RecoveryOf("dst", 0)
		if restartedAt != 5*sim.Millisecond {
			t.Fatalf("restartedAt = %v, want 5ms", restartedAt)
		}
		if recoveredAt < restartedAt {
			t.Fatalf("recoveredAt %v precedes restartedAt %v", recoveredAt, restartedAt)
		}
		for key, n := range rr.delivered {
			if n != 1 {
				t.Fatalf("uow %d tag %d delivered %d times, want exactly once",
					key>>20, key&((1<<20)-1), n)
			}
		}
		// The new incarnation must have redone or continued work: its
		// driver ran, so deliveries exist after the restart instant.
		if len(rr.delivered) == 0 {
			t.Fatal("nothing was delivered")
		}
		assertTwoAscendingRuns(t, rr.uowSeq, 8)
	})
}

// assertTwoAscendingRuns checks the processed-uow log is one or two
// contiguous ascending runs covering up to uows-1: [0..b] then
// [from..uows-1] with from <= b+1 — i.e. the second incarnation
// resumed from the checkpoint, not from zero and not past the break.
func assertTwoAscendingRuns(t *testing.T, seq []int, uows int) {
	t.Helper()
	if len(seq) == 0 {
		t.Fatal("sink processed no units of work")
	}
	if seq[0] != 0 {
		t.Fatalf("first incarnation started at uow %d, want 0", seq[0])
	}
	breaks := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1]+1 {
			continue
		}
		breaks++
		if breaks > 1 {
			t.Fatalf("uow sequence %v has more than one discontinuity", seq)
		}
		if seq[i] > seq[i-1]+1 {
			t.Fatalf("uow sequence %v skips ahead at index %d (resumed past the watermark?)", seq, i)
		}
	}
	if last := seq[len(seq)-1]; last != uows-1 {
		t.Fatalf("last processed uow = %d, want %d", last, uows-1)
	}
}

// TestDedupLedgerSuppressesRedelivery checks the exactly-once teeth
// directly: buffers delivered just before the crash whose acks were
// lost get reclaimed and re-dispatched after the rejoin, and the
// ledger must suppress them — observable as a non-zero Duplicates
// count with every per-tag delivery still exactly one.
func TestDedupLedgerSuppressesRedelivery(t *testing.T) {
	rr := newRecoveryRun(core.KindTCP, fault.Plan{
		Seed:     5,
		Crashes:  []fault.NodeCrash{{Node: "n1", At: 2600 * sim.Microsecond}},
		Restarts: []fault.NodeRestart{{Node: "n1", At: 4100 * sim.Microsecond}},
	}, 6, 10, 500*sim.Microsecond)
	rr.g.Start(6)
	rr.r.k.RunAll()
	if !rr.g.Done().Fired() {
		t.Fatal("group did not finish")
	}
	if err := rr.g.Err(); err != nil {
		t.Fatalf("group error: %v", err)
	}
	for key, n := range rr.delivered {
		if n != 1 {
			t.Fatalf("uow %d tag %d delivered %d times, want exactly once",
				key>>20, key&((1<<20)-1), n)
		}
	}
	in := rr.g.ReaderOf("dst", 0, "s")
	w := rr.g.WriterOf("src", 0, "s")
	if w.Redispatched() == 0 {
		t.Fatal("no buffers were re-dispatched across the crash (test exercises nothing)")
	}
	if in.Duplicates() == 0 {
		t.Fatal("ledger suppressed no duplicates despite re-dispatch into the restarted copy")
	}
}

// TestCheckpointResumePositions sweeps the crash instant across the
// run so restarts resume from different watermark positions; at every
// position the group must finish cleanly with exactly-once deliveries
// and a two-run uow log.
func TestCheckpointResumePositions(t *testing.T) {
	for _, crashAt := range []sim.Time{
		1 * sim.Millisecond,
		2500 * sim.Microsecond,
		4 * sim.Millisecond,
		6 * sim.Millisecond,
	} {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash@%v", crashAt), func(t *testing.T) {
			rr := newRecoveryRun(core.KindSocketVIA, fault.Plan{
				Seed:     11,
				Crashes:  []fault.NodeCrash{{Node: "n1", At: crashAt}},
				Restarts: []fault.NodeRestart{{Node: "n1", At: crashAt + 1500*sim.Microsecond}},
			}, 8, 10, 1*sim.Millisecond)
			rr.g.Start(8)
			rr.r.k.RunAll()
			if !rr.g.Done().Fired() {
				t.Fatal("group did not finish")
			}
			if err := rr.g.Err(); err != nil {
				t.Fatalf("group error: %v", err)
			}
			for key, n := range rr.delivered {
				if n != 1 {
					t.Fatalf("uow %d tag %d delivered %d times, want exactly once",
						key>>20, key&((1<<20)-1), n)
				}
			}
			assertTwoAscendingRuns(t, rr.uowSeq, 8)
		})
	}
}

// TestRestartDeterministicReplay runs the same crash-restart scenario
// twice on fresh rigs: virtual end time, delivery log, duplicate count
// and the processed-uow sequence must be identical — the restart
// schedule is part of the deterministic event order, not a source of
// divergence.
func TestRestartDeterministicReplay(t *testing.T) {
	type outcome struct {
		end        sim.Time
		delivered  string
		duplicates uint64
		uowSeq     string
	}
	once := func() outcome {
		rr := newRecoveryRun(core.KindTCP, fault.Plan{
			Seed:     3,
			Crashes:  []fault.NodeCrash{{Node: "n1", At: 3 * sim.Millisecond}},
			Restarts: []fault.NodeRestart{{Node: "n1", At: 5 * sim.Millisecond}},
		}, 8, 10, 1*sim.Millisecond)
		rr.g.Start(8)
		end := rr.r.k.RunAll()
		keys := make([]int64, 0, len(rr.delivered))
		for key := range rr.delivered {
			keys = append(keys, key)
		}
		// Canonical order for comparison.
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[j] < keys[i] {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		return outcome{
			end:        end,
			delivered:  fmt.Sprint(keys),
			duplicates: rr.g.ReaderOf("dst", 0, "s").Duplicates(),
			uowSeq:     fmt.Sprint(rr.uowSeq),
		}
	}
	a, b := once(), once()
	if a != b {
		t.Fatalf("crash-restart replay diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// TestCheckpointRequiresRedial pins the Instantiate-time contract: a
// recovery-armed filter with an input stream that cannot be redialed
// is a wiring bug, caught before anything runs.
func TestCheckpointRequiresRedial(t *testing.T) {
	r := newRig(2, core.KindTCP)
	defer func() {
		if recover() == nil {
			t.Fatal("Instantiate accepted CheckpointEvery without RedialAttempts")
		}
	}()
	r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(1, 1024), Placement: []string{"n0"}},
			{Name: "dst", New: func(int) Filter {
				return &funcFilter{process: func(ctx *Context) error { return nil }}
			}, Placement: []string{"n1"}, CheckpointEvery: 1 * sim.Millisecond},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
}
