package datacutter_test

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// doubler multiplies each incoming value by two.
type doubler struct{}

func (doubler) Init(*datacutter.Context) error { return nil }
func (doubler) Process(ctx *datacutter.Context) error {
	in, out := ctx.Input("nums"), ctx.Output("doubled")
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			return out.EndOfWork(ctx.Proc())
		}
		if err := out.Write(ctx.Proc(), &datacutter.Buffer{Size: b.Size, Tag: b.Tag * 2}); err != nil {
			return err
		}
	}
}
func (doubler) Finalize(*datacutter.Context) error { return nil }

// ExampleRuntime_Instantiate builds a three-filter group — source,
// doubler, sink — over SocketVIA and runs one unit of work.
func ExampleRuntime_Instantiate() {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for _, name := range []string{"n0", "n1", "n2"} {
		cl.AddNode(name, cluster.DefaultConfig())
	}
	rt := datacutter.NewRuntime(cl, core.NewFabric(cl, core.KindSocketVIA, prof))

	src := func(int) datacutter.Filter {
		return filterFunc(func(ctx *datacutter.Context) error {
			out := ctx.Output("nums")
			for i := int64(1); i <= 3; i++ {
				if err := out.Write(ctx.Proc(), &datacutter.Buffer{Size: 8, Tag: i}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		})
	}
	var got []int64
	sink := func(int) datacutter.Filter {
		return filterFunc(func(ctx *datacutter.Context) error {
			in := ctx.Input("doubled")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				got = append(got, b.Tag)
			}
		})
	}

	g := rt.Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "double", New: func(int) datacutter.Filter { return doubler{} }, Placement: []string{"n1"}},
			{Name: "sink", New: sink, Placement: []string{"n2"}},
		},
		Streams: []datacutter.StreamSpec{
			{Name: "nums", From: "src", To: "double"},
			{Name: "doubled", From: "double", To: "sink"},
		},
	})
	g.Start(1)
	k.RunAll()
	fmt.Println(got)
	// Output:
	// [2 4 6]
}

// filterFunc adapts a process function to the Filter interface.
type filterFunc func(ctx *datacutter.Context) error

func (filterFunc) Init(*datacutter.Context) error          { return nil }
func (f filterFunc) Process(ctx *datacutter.Context) error { return f(ctx) }
func (filterFunc) Finalize(*datacutter.Context) error      { return nil }
