package datacutter

import (
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
)

// TestCreditWindowConservation drives a credit-armed stream into a
// slow consumer and checks the ledger: every credit lent is returned
// by quiesce, and nothing is lost — the window throttles, it does not
// shed.
func TestCreditWindowConservation(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		r := newRig(2, kind)
		const total = 40
		const window = 3
		src := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				out := ctx.Output("s")
				for i := 0; i < total; i++ {
					if err := out.Write(ctx.Proc(), &Buffer{Size: 8 * 1024, Tag: int64(i)}); err != nil {
						return err
					}
				}
				// Quiesce before end-of-work so the ledger is checkable:
				// all credits home means no buffer in flight or parked.
				out.WaitCreditsIdle(ctx.Proc())
				return out.EndOfWork(ctx.Proc())
			}}
		}
		var got []int64
		sink := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					b, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					got = append(got, b.Tag)
					// A slow consumer: credits must pace the producer.
					ctx.Compute(64 * 1024)
				}
			}}
		}
		g := r.rt.Instantiate(GroupSpec{
			Filters: []FilterSpec{
				{Name: "src", New: src, Placement: []string{"n0"}},
				{Name: "dst", New: sink, Placement: []string{"n1"}},
			},
			Streams: []StreamSpec{{
				Name: "s", From: "src", To: "dst",
				CreditWindow: window,
			}},
		})
		r.run(t, g, 1)
		if len(got) != total {
			t.Fatalf("delivered %d buffers, want %d", len(got), total)
		}
		for i, tag := range got {
			if tag != int64(i) {
				t.Fatalf("delivery order broken at %d: got tag %d", i, tag)
			}
		}
		w := g.WriterOf("src", 0, "s")
		if credits, dead := w.CreditState(0); dead || credits != window {
			t.Fatalf("credit state at quiesce = (%d, dead=%v), want (%d, live): credits leaked",
				credits, dead, window)
		}
		if shed := g.ReaderOf("dst", 0, "s").ShedTotal(); shed != 0 {
			t.Fatalf("credit flow control shed %d buffers; backpressure must not drop", shed)
		}
	})
}

// TestDeadlineExpiredShedAtProducer: with DropNewest, a buffer whose
// deadline has already passed at send is shed at the producer, counted
// and reported via OnShed; fresh buffers still flow.
func TestDeadlineExpiredShedAtProducer(t *testing.T) {
	r := newRig(2, core.KindTCP)
	const live, expired = 10, 5
	var shedTags []int64
	var causes []ShedCause
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < live; i++ {
				b := &Buffer{Size: 4 * 1024, Tag: int64(i), Deadline: ctx.Now() + 1*sim.Second}
				if err := out.Write(ctx.Proc(), b); err != nil {
					return err
				}
			}
			for i := 0; i < expired; i++ {
				// Deadline equal to now is already missed at send.
				b := &Buffer{Size: 4 * 1024, Tag: int64(100 + i), Deadline: ctx.Now()}
				if err := out.Write(ctx.Proc(), b); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	var delivered int
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				if b.Tag >= 100 {
					t.Errorf("expired buffer %d was delivered", b.Tag)
				}
				delivered++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Deadlines: true,
			Shed:      DropNewest,
			OnShed: func(b *Buffer, c ShedCause) {
				shedTags = append(shedTags, b.Tag)
				causes = append(causes, c)
			},
		}},
	})
	r.run(t, g, 1)
	w := g.WriterOf("src", 0, "s")
	if w.ShedAtSend() != expired {
		t.Fatalf("ShedAtSend = %d, want %d", w.ShedAtSend(), expired)
	}
	if delivered != live {
		t.Fatalf("delivered %d buffers, want %d", delivered, live)
	}
	if len(shedTags) != expired {
		t.Fatalf("OnShed observed %d buffers, want %d", len(shedTags), expired)
	}
	for i, c := range causes {
		if c != ShedExpired {
			t.Fatalf("shed cause[%d] = %v, want %v", i, c, ShedExpired)
		}
	}
}

// TestDegradeQualitySendsPartialUpdate: DegradeQuality never drops at
// the producer — an expired buffer ships at quarter resolution, marked
// Degraded, and is still delivered.
func TestDegradeQualitySendsPartialUpdate(t *testing.T) {
	r := newRig(2, core.KindTCP)
	const fullSize = 16 * 1024
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			fresh := &Buffer{Size: fullSize, Tag: 1, Deadline: ctx.Now() + 1*sim.Second}
			if err := out.Write(ctx.Proc(), fresh); err != nil {
				return err
			}
			late := &Buffer{Size: fullSize, Tag: 2, Deadline: ctx.Now()}
			if err := out.Write(ctx.Proc(), late); err != nil {
				return err
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sizes := map[int64]int{}
	degraded := map[int64]bool{}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				sizes[b.Tag] = b.Size
				degraded[b.Tag] = b.Degraded
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Deadlines: true,
			Shed:      DegradeQuality,
		}},
	})
	r.run(t, g, 1)
	w := g.WriterOf("src", 0, "s")
	if w.ShedAtSend() != 0 {
		t.Fatalf("DegradeQuality shed %d at send; it must never drop there", w.ShedAtSend())
	}
	if w.DegradedAtSend() != 1 {
		t.Fatalf("DegradedAtSend = %d, want 1", w.DegradedAtSend())
	}
	if len(sizes) != 2 {
		t.Fatalf("delivered %d buffers, want both", len(sizes))
	}
	if degraded[1] || sizes[1] != fullSize {
		t.Fatalf("fresh buffer arrived degraded=%v size=%d, want full %d", degraded[1], sizes[1], fullSize)
	}
	if !degraded[2] || sizes[2] != fullSize>>2 {
		t.Fatalf("late buffer arrived degraded=%v size=%d, want quarter %d", degraded[2], sizes[2], fullSize>>2)
	}
}

// TestDropOldestEvictsFromFullInbox: a bursty producer against a tiny
// inbox and a stalled consumer — DropOldest admits fresh work by
// evicting the oldest buffered element, so the newest buffers win.
func TestDropOldestEvictsFromFullInbox(t *testing.T) {
	r := newRig(2, core.KindTCP)
	const total = 12
	var shed []int64
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < total; i++ {
				b := &Buffer{Size: 4 * 1024, Tag: int64(i), Deadline: ctx.Now() + 1*sim.Second}
				if err := out.Write(ctx.Proc(), b); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	var got []int64
	sink := func(int) Filter {
		return &funcFilter{
			init: func(ctx *Context) error {
				// Stall so the burst lands on a full inbox before the
				// first read.
				ctx.Proc().Sleep(50 * sim.Millisecond)
				return nil
			},
			process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					b, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					got = append(got, b.Tag)
				}
			},
		}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}, InboxDepth: 2},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Deadlines: true,
			Shed:      DropOldest,
			OnShed:    func(b *Buffer, c ShedCause) { shed = append(shed, b.Tag) },
		}},
	})
	r.run(t, g, 1)
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	if len(shed) == 0 {
		t.Fatal("nothing shed despite a full inbox (eviction never triggered)")
	}
	if len(got)+len(shed) != total {
		t.Fatalf("conservation broken: delivered %d + shed %d != produced %d",
			len(got), len(shed), total)
	}
	// The freshest buffer always survives eviction.
	last := got[len(got)-1]
	if last != total-1 {
		t.Fatalf("newest buffer (tag %d) was evicted; last delivered tag %d", total-1, last)
	}
}
