package datacutter

import (
	"fmt"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/fault"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// newFaultRig builds a recovery-armed runtime with a fault plan
// installed.
func newFaultRig(nodes int, kind core.Kind, plan fault.Plan) *rig {
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < nodes; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), cluster.DefaultConfig())
	}
	fault.Install(cl, plan)
	fab := core.NewFabric(cl, kind, prof)
	return &rig{k: k, cl: cl, rt: NewRuntime(cl, fab)}
}

// TestFailoverToSurvivingCopy crashes one of two transparent consumer
// copies mid-run: the producer must detect the loss, re-dispatch the
// dead copy's unacknowledged buffers and finish the workload on the
// survivor, with no panic anywhere.
func TestFailoverToSurvivingCopy(t *testing.T) {
	r := newFaultRig(3, core.KindTCP, fault.Plan{
		Seed:    11,
		Crashes: []fault.NodeCrash{{Node: "n2", At: 1 * sim.Millisecond}},
	})
	const perUOW = 60
	received := make([]uint64, 2)
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < perUOW; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: 16 * 1024}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
				received[copy]++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2"}},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:     DemandDriven,
			MaxUnacked: 4,
			OpTimeout:  2 * sim.Millisecond,
		}},
	})
	// The crashed copy never finishes, so the group's done signal
	// cannot fire; run the event heap dry instead of WaitDone.
	g.Start(2)
	r.k.RunAll()
	if err := g.Err(); err != nil {
		t.Fatalf("group error after failover: %v", err)
	}
	w := g.WriterOf("src", 0, "s")
	if w.LiveTargets() != 1 {
		t.Fatalf("live targets = %d, want 1 after crash", w.LiveTargets())
	}
	if w.Redispatched() == 0 {
		t.Fatal("no buffers were re-dispatched to the survivor")
	}
	if received[0] == 0 {
		t.Fatal("survivor copy received nothing")
	}
	// The survivor alone must carry at least one full unit of work:
	// everything after the crash routes to it, and the dead copy's
	// unacknowledged buffers were re-sent there.
	if received[0] < perUOW {
		t.Fatalf("survivor received %d buffers, want at least %d", received[0], perUOW)
	}
}
