package datacutter

import (
	"fmt"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/fault"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// newFaultRig builds a recovery-armed runtime with a fault plan
// installed.
func newFaultRig(nodes int, kind core.Kind, plan fault.Plan) *rig {
	prof := core.RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < nodes; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), cluster.DefaultConfig())
	}
	fault.Install(cl, plan)
	fab := core.NewFabric(cl, kind, prof)
	return &rig{k: k, cl: cl, rt: NewRuntime(cl, fab)}
}

// TestFailoverToSurvivingCopy crashes one of two transparent consumer
// copies mid-run: the producer must detect the loss, re-dispatch the
// dead copy's unacknowledged buffers and finish the workload on the
// survivor, with no panic anywhere.
func TestFailoverToSurvivingCopy(t *testing.T) {
	r := newFaultRig(3, core.KindTCP, fault.Plan{
		Seed:    11,
		Crashes: []fault.NodeCrash{{Node: "n2", At: 1 * sim.Millisecond}},
	})
	const perUOW = 60
	received := make([]uint64, 2)
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < perUOW; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: 16 * 1024}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
				received[copy]++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2"}},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:     DemandDriven,
			MaxUnacked: 4,
			OpTimeout:  2 * sim.Millisecond,
		}},
	})
	// The crashed copy never finishes, so the group's done signal
	// cannot fire; run the event heap dry instead of WaitDone.
	g.Start(2)
	r.k.RunAll()
	if err := g.Err(); err != nil {
		t.Fatalf("group error after failover: %v", err)
	}
	w := g.WriterOf("src", 0, "s")
	if w.LiveTargets() != 1 {
		t.Fatalf("live targets = %d, want 1 after crash", w.LiveTargets())
	}
	if w.Redispatched() == 0 {
		t.Fatal("no buffers were re-dispatched to the survivor")
	}
	if received[0] == 0 {
		t.Fatal("survivor copy received nothing")
	}
	// The survivor alone must carry at least one full unit of work:
	// everything after the crash routes to it, and the dead copy's
	// unacknowledged buffers were re-sent there.
	if received[0] < perUOW {
		t.Fatalf("survivor received %d buffers, want at least %d", received[0], perUOW)
	}
}

// TestRedialReArmsOpTimeout is a regression test for redialed
// connections coming up without the stream's OpTimeout armed. A
// healable partition kills both consumer connections, so the writer
// redials copy 0 — and then copy 0's node crashes. A crashed node
// sends nothing, ever: no FIN, no acks. The only way the writer can
// notice is its own per-operation deadline on the *redialed*
// connection; without the re-arm it blocks on the silent connection
// forever and the workload strands mid-stream instead of failing over
// to the surviving copy.
func TestRedialReArmsOpTimeout(t *testing.T) {
	r := newFaultRig(3, core.KindSocketVIA, fault.Plan{
		Seed: 5,
		Partitions: []fault.Partition{
			{A: "n0", B: "n1", From: 1 * sim.Millisecond, To: 1200 * sim.Microsecond},
			{A: "n0", B: "n2", From: 1 * sim.Millisecond, To: 1200 * sim.Microsecond},
		},
		Crashes: []fault.NodeCrash{{Node: "n1", At: 6 * sim.Millisecond}},
	})
	const total = 200
	// Re-dispatch can deliver a buffer twice (delivered-but-unacked
	// buffers are reclaimed at teardown), so coverage is counted by
	// distinct tag, shared across copies.
	seen := map[int64]bool{}
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < total; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: 16 * 1024, Tag: int64(i)}); err != nil {
					return err
				}
				// Pace the offered load so the workload is still
				// mid-stream at the partition and at the crash.
				ctx.Proc().Sleep(50 * sim.Microsecond)
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	// The sinks poll: losing every producer connection ends the unit of
	// work from the reader's point of view, but here the producer
	// redials, so a copy keeps asking until the workload is covered —
	// with a virtual-time bound so a stranded run terminates.
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for len(seen) < total && ctx.Proc().Now() < 5*sim.Second {
				if b, ok := in.Read(ctx.Proc()); ok {
					seen[b.Tag] = true
				} else {
					ctx.Proc().Sleep(200 * sim.Microsecond)
				}
			}
			return nil
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2"}},
		},
		Streams: []StreamSpec{{
			Name: "s", From: "src", To: "dst",
			Policy:         DemandDriven,
			OpTimeout:      1 * sim.Millisecond,
			RedialAttempts: 2,
			RedialSeed:     9,
		}},
	})
	// The crashed copy never finishes, so the done signal cannot fire;
	// run the event heap dry instead of WaitDone.
	g.Start(1)
	end := r.k.RunAll()
	if err := g.Err(); err != nil {
		t.Fatalf("group error: %v", err)
	}
	w := g.WriterOf("src", 0, "s")
	// Redial one: copy 0 after the partition heals. Redial two is the
	// regression's teeth: only a re-armed timeout detects the crashed
	// copy 0 and brings copy 1 back instead.
	if w.Redials() < 2 {
		t.Fatalf("redials = %d, want >= 2 (OpTimeout not re-armed on redialed conn?)", w.Redials())
	}
	if len(seen) < total {
		t.Fatalf("delivered %d distinct buffers, want %d (writer stuck on silent redialed conn?)", len(seen), total)
	}
	// Without the re-arm the run strands until the sinks' give-up
	// bound; with it, failover completes promptly.
	if limit := 1 * sim.Second; end > limit {
		t.Fatalf("run ended at %v, want well under %v", end, limit)
	}
}
