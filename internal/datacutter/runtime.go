package datacutter

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// Runtime instantiates filter groups on a cluster over one transport
// fabric.
type Runtime struct {
	cl      *cluster.Cluster
	fab     *core.Fabric
	nextSvc int
}

// NewRuntime returns a runtime over the given cluster and fabric.
func NewRuntime(cl *cluster.Cluster, fab *core.Fabric) *Runtime {
	return &Runtime{cl: cl, fab: fab, nextSvc: 1000}
}

// Fabric reports the transport fabric in use.
func (rt *Runtime) Fabric() *core.Fabric { return rt.fab }

// filterCopy is one transparent copy of a filter.
type filterCopy struct {
	spec    FilterSpec
	idx     int
	node    *cluster.Node
	filter  Filter
	inputs  map[string]*StreamReader
	outputs map[string]*StreamWriter
}

// Group is an instantiated filter group.
type Group struct {
	rt       *Runtime
	spec     GroupSpec
	copies   []*filterCopy
	byName   map[string][]*filterCopy
	setup    *sim.Barrier
	doneLeft int
	doneSig  *sim.Signal
	errs     []error
	// listeners kept open past initial wiring for redial-armed streams;
	// closed when the group finishes.
	listeners []core.Listener
}

// Instantiate builds the filter copies, binds every logical stream's
// point-to-point connections (the runtime establishes all connections
// before execution starts, as DataCutter does) and returns the group.
// Call Start to begin processing units of work.
func (rt *Runtime) Instantiate(spec GroupSpec) *Group {
	k := rt.cl.Kernel()
	g := &Group{
		rt:      rt,
		spec:    spec,
		byName:  make(map[string][]*filterCopy),
		doneSig: sim.NewSignal(k),
	}
	g.doneSig.SetLabel("datacutter/done")
	for fi := range spec.Filters {
		fs := spec.Filters[fi]
		if len(fs.Placement) == 0 {
			panic("datacutter: filter " + fs.Name + " has no placement")
		}
		if fs.InboxDepth == 0 {
			fs.InboxDepth = 2
		}
		for i, nodeName := range fs.Placement {
			node := rt.cl.Node(nodeName)
			if node == nil {
				panic(fmt.Sprintf("datacutter: unknown node %q for filter %s", nodeName, fs.Name))
			}
			fc := &filterCopy{
				spec:    fs,
				idx:     i,
				node:    node,
				filter:  fs.New(i),
				inputs:  make(map[string]*StreamReader),
				outputs: make(map[string]*StreamWriter),
			}
			g.copies = append(g.copies, fc)
			g.byName[fs.Name] = append(g.byName[fs.Name], fc)
		}
	}
	g.doneLeft = len(g.copies)

	// Count connection-setup arrivals: one per side per connection.
	totalConns := 0
	for _, ss := range spec.Streams {
		totalConns += len(g.byName[ss.From]) * len(g.byName[ss.To])
	}
	if totalConns == 0 {
		// Degenerate single-filter groups still need a fired barrier.
		g.setup = sim.NewBarrier(k, 1)
		g.setup.SetLabel("datacutter/setup")
		g.setup.Arrive()
	} else {
		g.setup = sim.NewBarrier(k, 2*totalConns)
		g.setup.SetLabel("datacutter/setup")
	}

	for si := range spec.Streams {
		g.wireStream(spec.Streams[si])
	}
	return g
}

// wireStream connects every producer copy to every consumer copy of
// one logical stream.
func (g *Group) wireStream(ss StreamSpec) {
	rt := g.rt
	k := rt.cl.Kernel()
	prods := g.byName[ss.From]
	conss := g.byName[ss.To]
	if len(prods) == 0 || len(conss) == 0 {
		panic(fmt.Sprintf("datacutter: stream %s references unknown filters %s -> %s", ss.Name, ss.From, ss.To))
	}

	needsReverse := ss.Policy == DemandDriven || ss.Acks || ss.CreditWindow > 0
	writers := make([]*StreamWriter, len(prods))
	for i, pc := range prods {
		w := &StreamWriter{
			name: ss.Name, policy: ss.Policy,
			targets:      make([]*streamConn, len(conss)),
			maxUnacked:   ss.MaxUnacked,
			ackCond:      sim.NewCond(k),
			redispatch:   ss.Policy == DemandDriven || ss.Acks,
			creditWindow: ss.CreditWindow,
			deadlines:    ss.Deadlines,
			shed:         ss.Shed,
			onShed:       ss.OnShed,
			opTimeout:    ss.OpTimeout,
			needsReverse: needsReverse,
			ep:           rt.fab.Endpoint(pc.node.Name()),
		}
		w.ackCond.SetLabel("datacutter/ack-credit")
		if ss.RedialAttempts > 0 {
			w.redialPol = core.DefaultRetryPolicy(ss.RedialSeed ^ int64(i+1))
			w.redialPol.Attempts = ss.RedialAttempts
		}
		if _, dup := pc.outputs[ss.Name]; dup {
			panic("datacutter: duplicate stream name " + ss.Name)
		}
		pc.outputs[ss.Name] = w
		writers[i] = w
	}

	for j, cc := range conss {
		r := &StreamReader{
			name:         ss.Name,
			policy:       ss.Policy,
			acks:         ss.Acks,
			inbox:        sim.NewQueue[inboxItem](k, cc.spec.InboxDepth),
			nconns:       len(prods),
			eowSeen:      make(map[int]int),
			creditWindow: ss.CreditWindow,
			deadlines:    ss.Deadlines,
			shedPolicy:   ss.Shed,
			onShed:       ss.OnShed,
			onDeliver:    ss.OnDeliver,
			redial:       ss.RedialAttempts > 0,
		}
		r.inbox.SetLabel("datacutter/inbox")
		if _, dup := cc.inputs[ss.Name]; dup {
			panic("datacutter: duplicate stream name " + ss.Name)
		}
		cc.inputs[ss.Name] = r

		svc := rt.nextSvc
		rt.nextSvc++
		listener := rt.fab.Endpoint(cc.node.Name()).Listen(svc)
		remaining := len(prods)
		closedOne := func() {
			remaining--
			if remaining == 0 {
				r.inbox.Close()
			}
		}

		// Acceptor: one inbound connection per producer copy. With
		// redial armed it keeps accepting replacement connections (the
		// group closes the listener when it finishes); every accepted
		// connection — original or replacement — gets the stream's
		// OpTimeout armed.
		j := j
		redial := ss.RedialAttempts > 0
		if redial {
			g.listeners = append(g.listeners, listener)
		}
		k.Go(fmt.Sprintf("dc-accept/%s/%s.%d", ss.Name, ss.To, j), func(p *sim.Proc) {
			for n := 0; redial || n < len(prods); n++ {
				conn, err := listener.Accept(p)
				if err != nil {
					if n < len(prods) {
						g.errs = append(g.errs, err)
					}
					return
				}
				if ss.OpTimeout > 0 {
					conn.SetTimeout(ss.OpTimeout)
				}
				sc := &streamConn{conn: conn}
				rejoin := n >= len(prods)
				k.Go(fmt.Sprintf("dc-read/%s/%s.%d.%d", ss.Name, ss.To, j, n), r.connReaderLoop(sc, closedOne, rejoin))
				if !rejoin {
					g.setup.Arrive()
				}
			}
			listener.Close()
		})

		// Dialers: each producer copy connects to this consumer copy.
		for i, pc := range prods {
			i, pc := i, pc
			w := writers[i]
			k.Go(fmt.Sprintf("dc-dial/%s/%s.%d->%s.%d", ss.Name, ss.From, i, ss.To, j), func(p *sim.Proc) {
				conn, err := rt.fab.Endpoint(pc.node.Name()).Dial(p, cc.node.Name(), svc)
				if err != nil {
					g.errs = append(g.errs, err)
					return
				}
				if ss.OpTimeout > 0 {
					conn.SetTimeout(ss.OpTimeout)
				}
				sc := &streamConn{
					conn:    conn,
					record:  ss.RecordAckLatency,
					credits: ss.CreditWindow,
					raddr:   cc.node.Name(),
					svc:     svc,
				}
				w.targets[j] = sc
				if needsReverse {
					k.Go(fmt.Sprintf("dc-ack/%s/%s.%d<-%s.%d", ss.Name, ss.From, i, ss.To, j), w.ackReaderLoop(sc))
				}
				g.setup.Arrive()
			})
		}
	}
}

// Start launches every filter copy's driver for the given number of
// units of work. Drivers wait for all stream connections first.
func (g *Group) Start(uows int) {
	if uows <= 0 {
		panic("datacutter: Start needs a positive unit-of-work count")
	}
	k := g.rt.cl.Kernel()
	for _, fc := range g.copies {
		fc := fc
		k.Go(fmt.Sprintf("dc-filter/%s.%d", fc.spec.Name, fc.idx), func(p *sim.Proc) {
			g.setup.Wait(p)
			ctx := &Context{
				p:       p,
				node:    fc.node,
				name:    fc.spec.Name,
				copyIdx: fc.idx,
				copies:  len(g.byName[fc.spec.Name]),
				inputs:  fc.inputs,
				outputs: fc.outputs,
			}
			for uow := 0; uow < uows; uow++ {
				ctx.uow = uow
				detail := fc.spec.Name
				if hpsmon.Enabled(k) {
					detail = fmt.Sprintf("%s.%d uow=%d", fc.spec.Name, fc.idx, uow)
				}
				sc := hpsmon.Begin(p, "datacutter", "uow", detail)
				err := g.step(ctx, fc, uow)
				sc.End()
				if err != nil {
					hpsmon.Count(k, "datacutter", "uow.failed", 1)
					g.errs = append(g.errs, err)
					break
				}
				hpsmon.Count(k, "datacutter", "uow.completed", 1)
			}
			for _, w := range fc.outputs {
				w.Close(p)
			}
			g.doneLeft--
			if g.doneLeft == 0 {
				for _, l := range g.listeners {
					l.Close()
				}
				g.doneSig.Fire(nil)
			}
		})
	}
}

func (g *Group) step(ctx *Context, fc *filterCopy, uow int) error {
	if err := fc.filter.Init(ctx); err != nil {
		return fmt.Errorf("%s.%d init uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	if err := fc.filter.Process(ctx); err != nil {
		return fmt.Errorf("%s.%d process uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	if err := fc.filter.Finalize(ctx); err != nil {
		return fmt.Errorf("%s.%d finalize uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	return nil
}

// Done returns a signal fired when every filter copy has finished all
// units of work.
func (g *Group) Done() *sim.Signal { return g.doneSig }

// WaitDone blocks p until the group finishes.
func (g *Group) WaitDone(p *sim.Proc) { p.Wait(g.doneSig) }

// Err returns the first error any copy reported, or nil.
func (g *Group) Err() error {
	if len(g.errs) == 0 {
		return nil
	}
	return g.errs[0]
}

// Copies returns the transparent copies of the named filter (for
// experiment instrumentation).
func (g *Group) Copies(filter string) int { return len(g.byName[filter]) }

// ReaderOf exposes a copy's input stream reader for instrumentation.
func (g *Group) ReaderOf(filter string, copy int, stream string) *StreamReader {
	return g.byName[filter][copy].inputs[stream]
}

// WriterOf exposes a copy's output stream writer for instrumentation.
func (g *Group) WriterOf(filter string, copy int, stream string) *StreamWriter {
	return g.byName[filter][copy].outputs[stream]
}
