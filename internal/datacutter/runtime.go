package datacutter

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// Runtime instantiates filter groups on a cluster over one transport
// fabric.
type Runtime struct {
	cl      *cluster.Cluster
	fab     *core.Fabric
	nextSvc int
}

// NewRuntime returns a runtime over the given cluster and fabric.
func NewRuntime(cl *cluster.Cluster, fab *core.Fabric) *Runtime {
	return &Runtime{cl: cl, fab: fab, nextSvc: 1000}
}

// Fabric reports the transport fabric in use.
func (rt *Runtime) Fabric() *core.Fabric { return rt.fab }

// filterCopy is one transparent copy of a filter.
type filterCopy struct {
	spec    FilterSpec
	idx     int
	node    *cluster.Node
	filter  Filter
	inputs  map[string]*StreamReader
	outputs map[string]*StreamWriter

	// Crash-restart recovery state (armed by spec.CheckpointEvery > 0).
	// epoch counts incarnations: the driver abandons a unit of work when
	// its captured epoch no longer matches (a restart superseded it).
	epoch int
	// done marks the copy finished for group accounting; a restart hook
	// firing after completion is a no-op.
	done bool
	// ckpt is the copy's durable progress watermark.
	ckpt checkpoint
	// restarts counts incarnations beyond the first; restartedAt and
	// recoveredAt bracket the most recent outage for MTTR reporting
	// (recoveredAt is the new incarnation's first delivery, or its
	// completion when it finished vacuously).
	restarts    int
	restartedAt sim.Time
	recoveredAt sim.Time
}

// recoverable reports whether crash-restart recovery is armed for this
// copy.
func (fc *filterCopy) recoverable() bool { return fc.spec.CheckpointEvery > 0 }

// Group is an instantiated filter group.
type Group struct {
	rt       *Runtime
	spec     GroupSpec
	copies   []*filterCopy
	byName   map[string][]*filterCopy
	setup    *sim.Barrier
	doneLeft int
	doneSig  *sim.Signal
	errs     []error
	// listeners kept open past initial wiring for redial-armed streams;
	// closed when the group finishes.
	listeners []core.Listener
}

// Instantiate builds the filter copies, binds every logical stream's
// point-to-point connections (the runtime establishes all connections
// before execution starts, as DataCutter does) and returns the group.
// Call Start to begin processing units of work.
func (rt *Runtime) Instantiate(spec GroupSpec) *Group {
	k := rt.cl.Kernel()
	g := &Group{
		rt:      rt,
		spec:    spec,
		byName:  make(map[string][]*filterCopy),
		doneSig: sim.NewSignal(k),
	}
	g.doneSig.SetLabel("datacutter/done")
	for fi := range spec.Filters {
		fs := spec.Filters[fi]
		if len(fs.Placement) == 0 {
			panic("datacutter: filter " + fs.Name + " has no placement")
		}
		if fs.InboxDepth == 0 {
			fs.InboxDepth = 2
		}
		for i, nodeName := range fs.Placement {
			node := rt.cl.Node(nodeName)
			if node == nil {
				panic(fmt.Sprintf("datacutter: unknown node %q for filter %s", nodeName, fs.Name))
			}
			fc := &filterCopy{
				spec:    fs,
				idx:     i,
				node:    node,
				filter:  fs.New(i),
				inputs:  make(map[string]*StreamReader),
				outputs: make(map[string]*StreamWriter),
			}
			g.copies = append(g.copies, fc)
			g.byName[fs.Name] = append(g.byName[fs.Name], fc)
		}
	}
	g.doneLeft = len(g.copies)

	// Recovery arming is only coherent when every input stream can be
	// re-established: a restarted copy's producers come back through the
	// redial path, so CheckpointEvery without RedialAttempts would strand
	// the new incarnation with no way to be fed.
	for _, fs := range spec.Filters {
		if fs.CheckpointEvery <= 0 {
			continue
		}
		for _, ss := range spec.Streams {
			if ss.To == fs.Name && ss.RedialAttempts <= 0 {
				panic(fmt.Sprintf("datacutter: filter %s arms CheckpointEvery but input stream %s has no RedialAttempts", fs.Name, ss.Name))
			}
		}
	}

	// Count connection-setup arrivals: one per side per connection.
	totalConns := 0
	for _, ss := range spec.Streams {
		totalConns += len(g.byName[ss.From]) * len(g.byName[ss.To])
	}
	if totalConns == 0 {
		// Degenerate single-filter groups still need a fired barrier.
		g.setup = sim.NewBarrier(k, 1)
		g.setup.SetLabel("datacutter/setup")
		g.setup.Arrive()
	} else {
		g.setup = sim.NewBarrier(k, 2*totalConns)
		g.setup.SetLabel("datacutter/setup")
	}

	for si := range spec.Streams {
		g.wireStream(spec.Streams[si])
	}
	return g
}

// wireStream connects every producer copy to every consumer copy of
// one logical stream.
func (g *Group) wireStream(ss StreamSpec) {
	rt := g.rt
	k := rt.cl.Kernel()
	prods := g.byName[ss.From]
	conss := g.byName[ss.To]
	if len(prods) == 0 || len(conss) == 0 {
		panic(fmt.Sprintf("datacutter: stream %s references unknown filters %s -> %s", ss.Name, ss.From, ss.To))
	}

	needsReverse := ss.Policy == DemandDriven || ss.Acks || ss.CreditWindow > 0

	// Exactly-once state is per logical stream, shared across copies:
	// one sequence source for every producer copy (uniqueness across the
	// stream) and one delivery ledger for every consumer copy (failover
	// re-dispatch crosses copies).
	var ledger *dedupLedger
	var seqSrc *uint64
	if ss.ExactlyOnce {
		ledger = newDedupLedger()
		seqSrc = new(uint64)
	}

	writers := make([]*StreamWriter, len(prods))
	for i, pc := range prods {
		w := &StreamWriter{
			name: ss.Name, policy: ss.Policy,
			targets:      make([]*streamConn, len(conss)),
			maxUnacked:   ss.MaxUnacked,
			ackCond:      sim.NewCond(k),
			redispatch:   ss.Policy == DemandDriven || ss.Acks,
			creditWindow: ss.CreditWindow,
			deadlines:    ss.Deadlines,
			shed:         ss.Shed,
			onShed:       ss.OnShed,
			opTimeout:    ss.OpTimeout,
			needsReverse: needsReverse,
			ep:           rt.fab.Endpoint(pc.node.Name()),
			exactlyOnce:  ss.ExactlyOnce,
			seqSrc:       seqSrc,
		}
		w.ackCond.SetLabel("datacutter/ack-credit")
		if ss.RedialAttempts > 0 {
			w.redialPol = core.DefaultRetryPolicy(ss.RedialSeed ^ int64(i+1))
			w.redialPol.Attempts = ss.RedialAttempts
		}
		if _, dup := pc.outputs[ss.Name]; dup {
			panic("datacutter: duplicate stream name " + ss.Name)
		}
		pc.outputs[ss.Name] = w
		writers[i] = w
	}

	for j, cc := range conss {
		r := &StreamReader{
			name:         ss.Name,
			policy:       ss.Policy,
			acks:         ss.Acks,
			inbox:        sim.NewQueue[inboxItem](k, cc.spec.InboxDepth),
			nconns:       len(prods),
			eowSeen:      make(map[int]int),
			creditWindow: ss.CreditWindow,
			deadlines:    ss.Deadlines,
			shedPolicy:   ss.Shed,
			onShed:       ss.OnShed,
			onDeliver:    ss.OnDeliver,
			redial:       ss.RedialAttempts > 0,
			exactlyOnce:  ss.ExactlyOnce,
			ledger:       ledger,
			k:            k,
			depth:        cc.spec.InboxDepth,
		}
		r.inbox.SetLabel("datacutter/inbox")
		if _, dup := cc.inputs[ss.Name]; dup {
			panic("datacutter: duplicate stream name " + ss.Name)
		}
		cc.inputs[ss.Name] = r

		svc := rt.nextSvc
		rt.nextSvc++
		listener := rt.fab.Endpoint(cc.node.Name()).Listen(svc)
		remaining := len(prods)
		closedOne := func() {
			remaining--
			if remaining == 0 {
				r.inbox.Close()
			}
		}

		// Acceptor: one inbound connection per producer copy. With
		// redial armed it keeps accepting replacement connections (the
		// group closes the listener when it finishes); every accepted
		// connection — original or replacement — gets the stream's
		// OpTimeout armed.
		j := j
		redial := ss.RedialAttempts > 0
		if redial {
			g.listeners = append(g.listeners, listener)
		}
		k.Go(fmt.Sprintf("dc-accept/%s/%s.%d", ss.Name, ss.To, j), func(p *sim.Proc) {
			for n := 0; redial || n < len(prods); n++ {
				conn, err := listener.Accept(p)
				if err != nil {
					if n < len(prods) {
						g.errs = append(g.errs, err)
					}
					return
				}
				if ss.OpTimeout > 0 {
					conn.SetTimeout(ss.OpTimeout)
				}
				sc := &streamConn{conn: conn}
				rejoin := n >= len(prods)
				k.Go(fmt.Sprintf("dc-read/%s/%s.%d.%d", ss.Name, ss.To, j, n), r.connReaderLoop(sc, closedOne, rejoin))
				if !rejoin {
					g.setup.Arrive()
				}
			}
			listener.Close()
		})

		// Dialers: each producer copy connects to this consumer copy.
		for i, pc := range prods {
			i, pc := i, pc
			w := writers[i]
			k.Go(fmt.Sprintf("dc-dial/%s/%s.%d->%s.%d", ss.Name, ss.From, i, ss.To, j), func(p *sim.Proc) {
				conn, err := rt.fab.Endpoint(pc.node.Name()).Dial(p, cc.node.Name(), svc)
				if err != nil {
					g.errs = append(g.errs, err)
					return
				}
				if ss.OpTimeout > 0 {
					conn.SetTimeout(ss.OpTimeout)
				}
				sc := &streamConn{
					conn:    conn,
					record:  ss.RecordAckLatency,
					credits: ss.CreditWindow,
					raddr:   cc.node.Name(),
					svc:     svc,
					est:     p.Now(),
				}
				w.targets[j] = sc
				if needsReverse {
					k.Go(fmt.Sprintf("dc-ack/%s/%s.%d<-%s.%d", ss.Name, ss.From, i, ss.To, j), w.ackReaderLoop(sc))
				}
				g.setup.Arrive()
			})
		}
	}
}

// Start launches every filter copy's driver for the given number of
// units of work. Drivers wait for all stream connections first.
// Recovery-armed copies additionally register a restart hook on their
// node: a crash unwinds the incarnation, and fault.NodeRestart spawns
// the next one from the copy's checkpoint.
func (g *Group) Start(uows int) {
	if uows <= 0 {
		panic("datacutter: Start needs a positive unit-of-work count")
	}
	k := g.rt.cl.Kernel()
	for _, fc := range g.copies {
		fc := fc
		if fc.recoverable() {
			g.armRestart(fc, uows)
		}
		k.Go(fmt.Sprintf("dc-filter/%s.%d", fc.spec.Name, fc.idx), func(p *sim.Proc) {
			g.setup.Wait(p)
			g.drive(p, fc, uows, 0, 0)
		})
	}
}

// drive runs one incarnation of a filter copy, from unit of work
// `from` under incarnation `epoch`. It returns without touching group
// accounting when a crash parks the copy (a later restart resumes it)
// or when a restart superseded this incarnation while its proc was
// parked; it completes the copy otherwise.
func (g *Group) drive(p *sim.Proc, fc *filterCopy, uows, epoch, from int) {
	k := g.rt.cl.Kernel()
	ctx := &Context{
		p:       p,
		node:    fc.node,
		name:    fc.spec.Name,
		copyIdx: fc.idx,
		copies:  len(g.byName[fc.spec.Name]),
		inputs:  fc.inputs,
		outputs: fc.outputs,
	}
	if fc.recoverable() {
		ctx.fc = fc
		ctx.epoch = epoch
	}
	for uow := from; uow < uows; uow++ {
		if fc.epoch != epoch {
			return
		}
		if fc.recoverable() && fc.node.Failed() {
			g.parkCrashed(p, fc)
			return
		}
		ctx.uow = uow
		detail := fc.spec.Name
		if hpsmon.Enabled(k) {
			detail = fmt.Sprintf("%s.%d uow=%d", fc.spec.Name, fc.idx, uow)
		}
		sc := hpsmon.Begin(p, "datacutter", "uow", detail)
		crashed, err := g.stepRecover(ctx, fc, uow)
		sc.End()
		if fc.epoch != epoch {
			// A restart superseded this incarnation while its proc was
			// parked (the inbox closure woke it into a vacuous return).
			// Its result is void: counting it or advancing the shared
			// checkpoint would corrupt the live incarnation's state.
			return
		}
		if crashed {
			g.parkCrashed(p, fc)
			return
		}
		if err != nil {
			hpsmon.Count(k, "datacutter", "uow.failed", 1)
			g.errs = append(g.errs, err)
			break
		}
		hpsmon.Count(k, "datacutter", "uow.completed", 1)
		g.maybeCheckpoint(p, fc, uow+1)
	}
	if fc.epoch != epoch {
		return
	}
	g.finishCopy(p, fc)
}

// stepRecover runs one unit of work, converting the crashUnwind
// sentinel of a recovery-armed copy into a flag instead of letting it
// propagate. Non-recoverable copies never see the sentinel (their
// Compute halts on the dead node forever, the pre-recovery contract).
func (g *Group) stepRecover(ctx *Context, fc *filterCopy, uow int) (crashed bool, err error) {
	if fc.recoverable() {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(crashUnwind); ok {
					crashed = true
					return
				}
				panic(v)
			}
		}()
	}
	return false, g.step(ctx, fc, uow)
}

// parkCrashed retires a crashed incarnation without touching group
// accounting: the copy is down, not done. A later restart spawns the
// next incarnation from the checkpoint; absent one, the group never
// reports the copy finished — the pre-recovery semantics of a crash,
// minus the forever-parked proc.
func (g *Group) parkCrashed(p *sim.Proc, fc *filterCopy) {
	p.Kernel().Trace("datacutter", "copy-down", int64(fc.ckpt.next), fc.spec.Name)
	hpsmon.Instant(p, "datacutter", "copy-down", fc.spec.Name)
}

// finishCopy completes a copy: closes its outputs, settles recovery
// bookkeeping and decrements the group's outstanding count exactly
// once.
func (g *Group) finishCopy(p *sim.Proc, fc *filterCopy) {
	for _, w := range fc.outputs {
		w.Close(p)
	}
	if fc.done {
		return
	}
	fc.done = true
	if fc.restartedAt > 0 && fc.recoveredAt == 0 {
		fc.recoveredAt = p.Now()
	}
	if fc.recoverable() {
		// The copy is complete; close its inboxes (in spec order, for
		// determinism) so a late rejoin cannot park a producer against a
		// reader that will never read again — the producer's op timeout
		// then reclaims and accounts the work.
		for _, ss := range g.spec.Streams {
			if ss.To != fc.spec.Name {
				continue
			}
			r := fc.inputs[ss.Name]
			r.inbox.Close()
			if r.graceArmed {
				r.graceTimer.Stop()
				r.graceArmed = false
			}
		}
	}
	g.doneLeft--
	if g.doneLeft == 0 {
		for _, l := range g.listeners {
			l.Close()
		}
		g.doneSig.Fire(nil)
	}
}

// maybeCheckpoint saves the copy's unit-of-work watermark when the
// checkpoint interval has elapsed. next is the first unit the next
// incarnation would have to redo: the driver checkpoints only at
// unit-of-work boundaries, after Finalize returned, so everything
// below the watermark is fully processed and flushed downstream.
func (g *Group) maybeCheckpoint(p *sim.Proc, fc *filterCopy, next int) {
	if !fc.recoverable() {
		return
	}
	if p.Now() < fc.ckpt.at+fc.spec.CheckpointEvery {
		return
	}
	fc.ckpt = checkpoint{at: p.Now(), next: next}
	p.Kernel().Trace("datacutter", "checkpoint", int64(next), fc.spec.Name)
	hpsmon.Count(p.Kernel(), "datacutter", "ckpt.saved", 1)
}

// armRestart registers the copy's restart hook: when the hosting node
// restarts, the hook retires the crashed incarnation (bumping the
// epoch so its zombie proc unwinds if still live), rewinds every input
// stream to the checkpoint, asks the producers to rejoin, and spawns
// the next incarnation. Runs in kernel-callback context: nothing here
// blocks.
func (g *Group) armRestart(fc *filterCopy, uows int) {
	k := g.rt.cl.Kernel()
	fc.node.OnRestart(func() {
		if fc.done {
			return
		}
		fc.epoch++
		epoch := fc.epoch
		fc.restarts++
		fc.restartedAt = k.Now()
		fc.recoveredAt = 0
		from := fc.ckpt.next
		k.Trace("datacutter", "copy-restart", int64(from), fc.spec.Name)
		hpsmon.Count(k, "datacutter", "copy.restarts", 1)
		hpsmon.InstantK(k, "datacutter", "copy-restart", fc.spec.Name)
		note := func() {
			if fc.recoveredAt == 0 {
				fc.recoveredAt = k.Now()
			}
		}
		for _, ss := range g.spec.Streams {
			if ss.To != fc.spec.Name {
				continue
			}
			r := fc.inputs[ss.Name]
			expected := 0
			for _, pc := range g.byName[ss.From] {
				if pc.outputs[ss.Name].requestRejoin(fc.idx, k.Now()) {
					expected++
				}
			}
			r.resetForRejoin(k, fc, from, expected, note)
		}
		k.Go(fmt.Sprintf("dc-filter/%s.%d.r%d", fc.spec.Name, fc.idx, epoch), func(p *sim.Proc) {
			g.setup.Wait(p)
			g.drive(p, fc, uows, epoch, from)
		})
	})
}

func (g *Group) step(ctx *Context, fc *filterCopy, uow int) error {
	if err := fc.filter.Init(ctx); err != nil {
		return fmt.Errorf("%s.%d init uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	if err := fc.filter.Process(ctx); err != nil {
		return fmt.Errorf("%s.%d process uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	if err := fc.filter.Finalize(ctx); err != nil {
		return fmt.Errorf("%s.%d finalize uow %d: %w", fc.spec.Name, fc.idx, uow, err)
	}
	return nil
}

// Done returns a signal fired when every filter copy has finished all
// units of work.
func (g *Group) Done() *sim.Signal { return g.doneSig }

// WaitDone blocks p until the group finishes.
func (g *Group) WaitDone(p *sim.Proc) { p.Wait(g.doneSig) }

// Err returns the first error any copy reported, or nil.
func (g *Group) Err() error {
	if len(g.errs) == 0 {
		return nil
	}
	return g.errs[0]
}

// Copies returns the transparent copies of the named filter (for
// experiment instrumentation).
func (g *Group) Copies(filter string) int { return len(g.byName[filter]) }

// ReaderOf exposes a copy's input stream reader for instrumentation.
func (g *Group) ReaderOf(filter string, copy int, stream string) *StreamReader {
	return g.byName[filter][copy].inputs[stream]
}

// WriterOf exposes a copy's output stream writer for instrumentation.
func (g *Group) WriterOf(filter string, copy int, stream string) *StreamWriter {
	return g.byName[filter][copy].outputs[stream]
}

// RestartsOf reports how many restart incarnations a copy has run.
func (g *Group) RestartsOf(filter string, copy int) int {
	return g.byName[filter][copy].restarts
}

// RecoveryOf reports the most recent outage bracket of a copy: the
// restart instant and the recovery instant (the new incarnation's
// first delivery, or its completion when it finished vacuously; 0 if
// still recovering). MTTR for the copy is recoveredAt - restartedAt
// plus the crash-to-restart downtime the fault plan chose.
func (g *Group) RecoveryOf(filter string, copy int) (restartedAt, recoveredAt sim.Time) {
	fc := g.byName[filter][copy]
	return fc.restartedAt, fc.recoveredAt
}

// CheckpointOf reports a copy's current checkpoint watermark: the
// virtual time it was taken and the next unit of work a restart would
// resume from.
func (g *Group) CheckpointOf(filter string, copy int) (at sim.Time, next int) {
	fc := g.byName[filter][copy]
	return fc.ckpt.at, fc.ckpt.next
}
