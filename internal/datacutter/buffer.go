// Package datacutter reproduces the DataCutter filter-stream runtime
// the paper uses as its application substrate (Beynon et al., Parallel
// Computing 27(11)).
//
// Applications are filter groups: filters with init/process/finalize
// interfaces connected by logical unidirectional streams that carry
// data buffers and end-of-work markers. A filter may have transparent
// copies placed on different nodes; the runtime maintains the illusion
// of a single logical stream by distributing buffers across copies
// with either a round-robin (RR) or a demand-driven (DD) policy. Under
// DD, a consumer acknowledges a buffer when it begins processing it
// and the producer routes each buffer to the copy with the fewest
// unacknowledged buffers, exactly as described in the paper.
//
// Streams run over the core sockets substrate, so an entire filter
// group can be switched between kernel TCP and SocketVIA without
// touching application code — the property the paper exploits.
//
// # Errors versus panics
//
// Conditions a running group can legitimately encounter — a consumer
// copy's connection breaking, a garbled header under injected
// corruption, every transparent copy of a filter failing
// (ErrNoLiveCopies), an expired StreamSpec.OpTimeout — surface as
// typed errors or trigger failover: acknowledged streams re-dispatch
// a failed copy's unacknowledged buffers to a survivor, and readers
// stop expecting end-of-work markers from lost producers. Panics are
// reserved for programmer errors caught at instantiation or misuse of
// the API: unknown nodes or filters in a spec, duplicate stream
// names, writing on a closed stream, buffer data/size mismatches.
package datacutter

import (
	"fmt"

	"hpsockets/internal/sim"
)

// Buffer is an array of data elements transferred from one filter to
// another. Data may be nil for size-only modelling; Size is always the
// accounted byte count.
type Buffer struct {
	UOW  int
	Size int
	Data []byte
	// Tag carries application metadata (block ids etc.) out of band;
	// it does not contribute to the wire size.
	Tag int64
	// Deadline is the virtual time by which this buffer's update must
	// reach the end of the pipeline (0 = none). It travels on the wire
	// (streams with StreamSpec.Deadlines use an extended header) so
	// every downstream stage can shed or degrade against it.
	Deadline sim.Time
	// Degraded marks a buffer sent at reduced resolution by the
	// DegradeQuality shed policy; Size is the reduced byte count.
	Degraded bool

	// src identifies the connection the buffer arrived on so that the
	// demand-driven ack can be routed back; it is nil on the producer
	// side.
	src *streamConn

	// seq is the writer-assigned delivery sequence number on
	// exactly-once streams (assigned once, at first send, and preserved
	// across failover re-dispatch so the consumer-side ledger can
	// suppress the duplicate). 0 means unassigned / not armed.
	seq uint64
}

// wire message kinds.
const (
	wireData uint8 = iota + 1
	wireEOW
	wireAck
	// wireCredit returns one flow-control credit on the reverse path.
	wireCredit
	// wireResync is the first message on a restart-rejoin connection:
	// its uow field carries the producer's current unit of work, so the
	// restarted consumer fast-forwards past units whose end-of-work
	// markers it can no longer receive.
	wireResync
)

// headerSize is the on-stream framing header: kind, flags, uow, size,
// tag. Streams with deadlines armed extend it by the 8-byte deadline,
// and exactly-once streams by the 8-byte delivery sequence number
// (always the trailing extension); the header size is fixed per stream
// (both ends know it from the spec), so fault-free streams stay
// byte-identical to the original framing. Reverse-path messages (acks,
// credits) always use the base header.
const (
	headerSize    = 24
	extHeaderSize = headerSize + 8
)

// header flags.
const (
	flagReal     uint8 = 1 // payload carries real bytes
	flagDegraded uint8 = 2 // reduced-resolution partial update
)

// degradeShift is the resolution reduction of DegradeQuality: a
// degraded buffer ships Size >> degradeShift bytes (quarter volume),
// the "partial update" of the paper's latency-guarantee experiments.
const degradeShift = 2

// putHeader encodes the framing header.
func putHeader(dst []byte, kind, flags uint8, uow int, size int, tag int64) {
	if len(dst) < headerSize {
		panic("datacutter: short header buffer")
	}
	dst[0] = kind
	dst[1] = flags
	dst[2], dst[3] = 0, 0
	put32(dst[4:], uint32(uow))
	put64(dst[8:], uint64(size))
	put64(dst[16:], uint64(tag))
	if len(dst) >= extHeaderSize {
		put64(dst[headerSize:], 0)
	}
}

func parseHeader(src []byte) (kind, flags uint8, uow int, size int, tag int64) {
	if len(src) < headerSize {
		panic("datacutter: short header")
	}
	return src[0], src[1], int(get32(src[4:])), int(get64(src[8:])), int64(get64(src[16:]))
}

// putDeadline writes the extended-header deadline field.
func putDeadline(dst []byte, d sim.Time) {
	if len(dst) < extHeaderSize {
		panic("datacutter: short extended header buffer")
	}
	put64(dst[headerSize:], uint64(d))
}

// parseDeadline reads the extended-header deadline field.
func parseDeadline(src []byte) sim.Time {
	if len(src) < extHeaderSize {
		panic("datacutter: short extended header")
	}
	return sim.Time(get64(src[headerSize:]))
}

// putSeq writes the exactly-once sequence number, always the trailing
// 8 bytes of the (possibly deadline-extended) header.
func putSeq(dst []byte, seq uint64) {
	if len(dst) < extHeaderSize {
		panic("datacutter: short exactly-once header buffer")
	}
	put64(dst[len(dst)-8:], seq)
}

// parseSeq reads the trailing exactly-once sequence number.
func parseSeq(src []byte) uint64 {
	if len(src) < extHeaderSize {
		panic("datacutter: short exactly-once header")
	}
	return get64(src[len(src)-8:])
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}

func (b *Buffer) String() string {
	return fmt.Sprintf("buf{uow=%d size=%d tag=%d}", b.UOW, b.Size, b.Tag)
}
