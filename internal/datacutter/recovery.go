package datacutter

import (
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// Crash-restart recovery (DESIGN.md §16).
//
// A filter copy whose FilterSpec.CheckpointEvery is armed runs as a
// sequence of incarnations. Each incarnation drives units of work from
// the copy's checkpoint watermark; a node crash unwinds it (the
// crashUnwind sentinel, thrown by Context.Compute and recovered by the
// group driver) instead of parking its proc forever. When the node
// restarts (fault.NodeRestart), the copy's restart hook bumps the
// incarnation epoch, rewinds every input stream to the checkpoint,
// asks the producers to rejoin through the redial path, and spawns the
// next incarnation. The exactly-once ledger makes the overlap of
// failover re-dispatch and rejoin redelivery safe: a buffer delivered
// by any incarnation of any copy is never delivered again.

// crashUnwind is the sentinel a recovery-armed Context panics with
// when its node has crashed (or a restart superseded its incarnation)
// mid-computation. The group driver recovers it; anything else
// re-panics.
type crashUnwind struct {
	name string
	copy int
}

// checkpoint is the durable progress record of one recovery-armed
// filter copy: the next unit of work to process and the virtual time
// the watermark was taken. Persistence is modelled by the record
// living in the runtime, outside the incarnation — the simulated
// equivalent of a checkpoint file surviving the crash.
type checkpoint struct {
	at   sim.Time
	next int
}

// dedupLedger is the exactly-once delivery ledger of one logical
// stream, shared across every consumer copy — failover re-dispatch
// crosses copies, so a per-copy ledger could not suppress a buffer
// re-dispatched from a dead copy to a survivor. Sequence numbers are
// writer-assigned, start at 1 and are unique per buffer, so membership
// is exactly "this buffer was already delivered".
type dedupLedger struct {
	seen map[uint64]struct{}
}

func newDedupLedger() *dedupLedger {
	return &dedupLedger{seen: make(map[uint64]struct{})}
}

// delivered reports whether the sequence was already delivered.
func (l *dedupLedger) delivered(seq uint64) bool {
	_, ok := l.seen[seq]
	return ok
}

// record marks the sequence delivered.
func (l *dedupLedger) record(seq uint64) { l.seen[seq] = struct{}{} }

// rejoinGrace bounds how long a restarted incarnation waits for its
// producers to rejoin before completing vacuously. It must comfortably
// exceed the worst-case redial backoff (8 attempts capped at 50ms) so
// a reachable producer always makes it back, and stay well under the
// chaos watchdog horizon so an unreachable one surfaces as reduced
// delivery, not a hang.
const rejoinGrace = 200 * sim.Millisecond

// resetForRejoin re-homes the reader for a new incarnation of a
// restarted copy: a fresh inbox (the old one is closed, so stale
// connections' puts are swallowed and a parked zombie getter wakes to
// find its incarnation superseded), volatile state dropped — a real
// restart loses its memory; in-flight work is re-accounted by the
// producers' failover path — and the unit-of-work cursor rewound to
// the checkpoint. expected producers are awaited for rejoin markers
// under the grace deadline; note fires at the incarnation's first
// delivery (the copy's recovery instant). Runs in kernel-callback
// context: nothing here blocks.
func (r *StreamReader) resetForRejoin(k *sim.Kernel, fc *filterCopy, from, expected int, note func()) {
	old := r.inbox
	r.inbox = sim.NewQueue[inboxItem](k, r.depth)
	r.inbox.SetLabel("datacutter/inbox")
	old.Close()
	r.nconns = 0
	r.awaitRejoin = expected
	r.eowSeen = make(map[int]int)
	if n := len(r.stash); n > 0 {
		k.Trace("datacutter", "restart-stash-drop", int64(n), r.name)
		r.stash = nil
	}
	r.uow = from
	r.resyncTo = from
	r.recoverNote = note
	if r.graceArmed {
		r.graceTimer.Stop()
		r.graceArmed = false
	}
	if expected > 0 {
		r.armGrace(k, fc)
	}
}

// armGrace schedules the rejoin grace deadline for the current
// incarnation. When it fires with rejoins still outstanding and no
// live connection, it closes the inbox: the parked reader wakes and
// the incarnation completes vacuously — delivery shrinks, liveness
// holds, and the producer side's op timeout reclaims anything a late
// rejoin would have parked. With live connections still feeding the
// reader it re-arms: the stragglers' lost markers will eventually
// bring nconns to zero, and the next firing decides.
func (r *StreamReader) armGrace(k *sim.Kernel, fc *filterCopy) {
	r.graceArmed = true
	epoch := fc.epoch
	r.graceTimer = k.At(k.Now()+rejoinGrace, func() {
		if !r.graceArmed || fc.epoch != epoch || fc.done {
			r.graceArmed = false
			return
		}
		if r.awaitRejoin > 0 && r.nconns <= 0 {
			r.graceArmed = false
			k.Trace("datacutter", "rejoin-timeout", int64(r.awaitRejoin), r.name)
			hpsmon.Count(k, "datacutter", "rejoin.timeouts", 1)
			r.awaitRejoin = 0
			r.inbox.Close()
			return
		}
		if r.awaitRejoin > 0 {
			r.armGrace(k, fc)
			return
		}
		r.graceArmed = false
	})
}
