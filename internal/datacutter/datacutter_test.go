package datacutter

import (
	"fmt"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// rig is a cluster plus runtime on one transport.
type rig struct {
	k  *sim.Kernel
	cl *cluster.Cluster
	rt *Runtime
}

func newRig(nodes int, kind core.Kind) *rig {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < nodes; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), cluster.DefaultConfig())
	}
	fab := core.NewFabric(cl, kind, prof)
	return &rig{k: k, cl: cl, rt: NewRuntime(cl, fab)}
}

func kinds(t *testing.T, fn func(t *testing.T, kind core.Kind)) {
	t.Helper()
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { fn(t, kind) })
	}
}

// funcFilter adapts closures to the Filter interface.
type funcFilter struct {
	init     func(ctx *Context) error
	process  func(ctx *Context) error
	finalize func(ctx *Context) error
}

func (f *funcFilter) Init(ctx *Context) error {
	if f.init == nil {
		return nil
	}
	return f.init(ctx)
}

func (f *funcFilter) Process(ctx *Context) error { return f.process(ctx) }

func (f *funcFilter) Finalize(ctx *Context) error {
	if f.finalize == nil {
		return nil
	}
	return f.finalize(ctx)
}

// source emits count buffers of the given size per unit of work.
func source(count, size int) func(int) Filter {
	return func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < count; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: size, Tag: int64(i)}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
}

// run instantiates, starts and drains the group.
func (r *rig) run(t *testing.T, g *Group, uows int) sim.Time {
	t.Helper()
	g.Start(uows)
	end := r.k.RunAll()
	if !g.Done().Fired() {
		t.Fatal("group did not finish (deadlock?)")
	}
	if err := g.Err(); err != nil {
		t.Fatalf("group error: %v", err)
	}
	return end
}

func TestPipelineDeliversBuffers(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		r := newRig(2, kind)
		var got []int64
		sink := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					b, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					got = append(got, b.Tag)
				}
			}}
		}
		g := r.rt.Instantiate(GroupSpec{
			Filters: []FilterSpec{
				{Name: "src", New: source(10, 4096), Placement: []string{"n0"}},
				{Name: "dst", New: sink, Placement: []string{"n1"}},
			},
			Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
		})
		r.run(t, g, 1)
		if len(got) != 10 {
			t.Fatalf("got %d buffers, want 10", len(got))
		}
		for i, tag := range got {
			if tag != int64(i) {
				t.Fatalf("order = %v", got)
			}
		}
	})
}

func TestRealPayloadSurvivesPipeline(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		r := newRig(2, kind)
		payload := []byte("the quick brown fox jumps over the lazy dog")
		var got []byte
		src := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				out := ctx.Output("s")
				out.Write(ctx.Proc(), &Buffer{Size: len(payload), Data: payload})
				return out.EndOfWork(ctx.Proc())
			}}
		}
		sink := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					b, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					got = b.Data
				}
			}}
		}
		g := r.rt.Instantiate(GroupSpec{
			Filters: []FilterSpec{
				{Name: "src", New: src, Placement: []string{"n0"}},
				{Name: "dst", New: sink, Placement: []string{"n1"}},
			},
			Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
		})
		r.run(t, g, 1)
		if string(got) != string(payload) {
			t.Fatalf("payload = %q", got)
		}
	})
}

func TestMultipleUnitsOfWork(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		r := newRig(2, kind)
		perUOW := map[int]int{}
		sink := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					b, ok := in.Read(ctx.Proc())
					if !ok {
						return nil
					}
					if b.UOW != ctx.UOW() {
						t.Errorf("buffer uow %d during uow %d", b.UOW, ctx.UOW())
					}
					perUOW[ctx.UOW()]++
				}
			}}
		}
		g := r.rt.Instantiate(GroupSpec{
			Filters: []FilterSpec{
				{Name: "src", New: source(5, 1024), Placement: []string{"n0"}},
				{Name: "dst", New: sink, Placement: []string{"n1"}},
			},
			Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
		})
		r.run(t, g, 3)
		for uow := 0; uow < 3; uow++ {
			if perUOW[uow] != 5 {
				t.Fatalf("uow %d got %d buffers, want 5: %v", uow, perUOW[uow], perUOW)
			}
		}
	})
}

func TestInitProcessFinalizeSequence(t *testing.T) {
	r := newRig(2, core.KindSocketVIA)
	var calls []string
	src := func(int) Filter {
		return &funcFilter{
			init: func(ctx *Context) error { calls = append(calls, fmt.Sprintf("i%d", ctx.UOW())); return nil },
			process: func(ctx *Context) error {
				calls = append(calls, fmt.Sprintf("p%d", ctx.UOW()))
				out := ctx.Output("s")
				out.Write(ctx.Proc(), &Buffer{Size: 64})
				return out.EndOfWork(ctx.Proc())
			},
			finalize: func(ctx *Context) error { calls = append(calls, fmt.Sprintf("f%d", ctx.UOW())); return nil },
		}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 2)
	want := []string{"i0", "p0", "f0", "i1", "p1", "f1"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	r := newRig(4, core.KindSocketVIA)
	counts := make([]int, 3)
	sink := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
				counts[copy]++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(30, 2048), Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2", "n3"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst", Policy: RoundRobin}},
	})
	r.run(t, g, 1)
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("copy %d got %d buffers, want 10: %v", i, c, counts)
		}
	}
}

func TestDemandDrivenFavorsFastCopies(t *testing.T) {
	r := newRig(4, core.KindSocketVIA)
	// Copy 0 is on a node 8x slower; demand-driven routing should give
	// it far fewer buffers than the fast copies.
	r.cl.Node("n1").SetSlowFactor(8)
	counts := make([]int, 3)
	sink := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				ctx.Compute(sim.Time(b.Size) * 18) // 18 ns/byte
				counts[copy]++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(120, 2048), Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2", "n3"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst", Policy: DemandDriven}},
	})
	r.run(t, g, 1)
	total := counts[0] + counts[1] + counts[2]
	if total != 120 {
		t.Fatalf("total = %d, want 120", total)
	}
	if counts[0] >= counts[1] || counts[0] >= counts[2] {
		t.Fatalf("slow copy got %d, fast copies %d/%d: DD not demand driven", counts[0], counts[1], counts[2])
	}
}

func TestFanInCountsEOWFromAllProducers(t *testing.T) {
	r := newRig(4, core.KindSocketVIA)
	var got int
	var uowsCompleted int
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				_, ok := in.Read(ctx.Proc())
				if !ok {
					uowsCompleted++
					return nil
				}
				got++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(4, 1024), Placement: []string{"n0", "n1", "n2"}},
			{Name: "dst", New: sink, Placement: []string{"n3"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 2)
	if got != 2*3*4 {
		t.Fatalf("got %d buffers, want 24", got)
	}
	if uowsCompleted != 2 {
		t.Fatalf("uows completed = %d, want 2", uowsCompleted)
	}
}

func TestFourStagePipelineOverlaps(t *testing.T) {
	// A 4-stage pipeline with per-buffer computation should take far
	// less than the sum of stage times thanks to pipelining.
	r := newRig(4, core.KindSocketVIA)
	const buffers, size = 64, 16 * 1024
	const perByte = 18 * sim.Nanosecond
	relay := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in, out := ctx.Input("in"), ctx.Output("out")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return out.EndOfWork(ctx.Proc())
				}
				ctx.Compute(sim.Time(b.Size) * perByte / sim.Nanosecond)
				if err := out.Write(ctx.Proc(), &Buffer{Size: b.Size, Tag: b.Tag}); err != nil {
					return err
				}
			}
		}}
	}
	var sinkDone sim.Time
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("out2")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					sinkDone = ctx.Now()
					return nil
				}
				ctx.Compute(sim.Time(b.Size) * perByte / sim.Nanosecond)
			}
		}}
	}
	srcSpec := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("in")
			for i := 0; i < buffers; i++ {
				if err := out.Write(ctx.Proc(), &Buffer{Size: size, Tag: int64(i)}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	relay2 := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in, out := ctx.Input("out"), ctx.Output("out2")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return out.EndOfWork(ctx.Proc())
				}
				ctx.Compute(sim.Time(b.Size) * perByte / sim.Nanosecond)
				if err := out.Write(ctx.Proc(), &Buffer{Size: b.Size, Tag: b.Tag}); err != nil {
					return err
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: srcSpec, Placement: []string{"n0"}},
			{Name: "f1", New: relay, Placement: []string{"n1"}},
			{Name: "f2", New: relay2, Placement: []string{"n2"}},
			{Name: "viz", New: sink, Placement: []string{"n3"}},
		},
		Streams: []StreamSpec{
			{Name: "in", From: "src", To: "f1"},
			{Name: "out", From: "f1", To: "f2"},
			{Name: "out2", From: "f2", To: "viz"},
		},
	})
	r.run(t, g, 1)
	// Each stage's compute is buffers*size*18ns = 18.9 ms; three
	// compute stages serialized would be ~57 ms plus transfers. With
	// pipelining the makespan should be close to one stage's time plus
	// a pipeline fill, well under 2x a single stage.
	perStage := sim.Time(buffers) * sim.Time(size) * perByte
	if sinkDone >= 2*perStage {
		t.Fatalf("pipeline took %v, want < %v (2x one stage)", sinkDone, 2*perStage)
	}
}

func TestWriteToExplicitTarget(t *testing.T) {
	r := newRig(3, core.KindSocketVIA)
	counts := make([]int, 2)
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			for i := 0; i < 10; i++ {
				if err := out.WriteTo(ctx.Proc(), 1, &Buffer{Size: 512}); err != nil {
					return err
				}
			}
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
				counts[copy]++
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1", "n2"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 1)
	if counts[0] != 0 || counts[1] != 10 {
		t.Fatalf("counts = %v, want [0 10]", counts)
	}
}

func TestGroupDeterministicReplay(t *testing.T) {
	kinds(t, func(t *testing.T, kind core.Kind) {
		run := func() sim.Time {
			r := newRig(4, kind)
			sink := func(int) Filter {
				return &funcFilter{process: func(ctx *Context) error {
					in := ctx.Input("s")
					for {
						b, ok := in.Read(ctx.Proc())
						if !ok {
							return nil
						}
						ctx.Compute(sim.Time(b.Size) * 18)
					}
				}}
			}
			g := r.rt.Instantiate(GroupSpec{
				Filters: []FilterSpec{
					{Name: "src", New: source(40, 4096), Placement: []string{"n0"}},
					{Name: "dst", New: sink, Placement: []string{"n1", "n2", "n3"}},
				},
				Streams: []StreamSpec{{Name: "s", From: "src", To: "dst", Policy: DemandDriven}},
			})
			g.Start(2)
			return r.k.RunAll()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("replay diverged: %v vs %v", a, b)
		}
	})
}

func TestContextAccessors(t *testing.T) {
	r := newRig(2, core.KindTCP)
	src := func(int) Filter {
		return &funcFilter{
			init: func(ctx *Context) error {
				ctx.SetUserData(42)
				return nil
			},
			process: func(ctx *Context) error {
				if ctx.Name() != "src" {
					t.Errorf("Name = %q", ctx.Name())
				}
				if idx, total := ctx.Copy(); idx != 0 || total != 1 {
					t.Errorf("Copy = %d/%d", idx, total)
				}
				if ctx.Node().Name() != "n0" {
					t.Errorf("Node = %q", ctx.Node().Name())
				}
				if ctx.UserData() != 42 {
					t.Errorf("UserData = %v", ctx.UserData())
				}
				out := ctx.Output("s")
				out.Write(ctx.Proc(), &Buffer{Size: 8})
				return out.EndOfWork(ctx.Proc())
			},
		}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 1)
}

func TestReaderWriterStats(t *testing.T) {
	r := newRig(2, core.KindSocketVIA)
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(7, 256), Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 1)
	if got := g.ReaderOf("dst", 0, "s").Received(); got != 7 {
		t.Fatalf("reader received = %d, want 7", got)
	}
	sent := g.WriterOf("src", 0, "s").Sent()
	if len(sent) != 1 || sent[0] != 7 {
		t.Fatalf("writer sent = %v, want [7]", sent)
	}
}
