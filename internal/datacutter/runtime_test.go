package datacutter

import (
	"errors"
	"strings"
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
)

func TestFilterErrorPropagatesToGroup(t *testing.T) {
	r := newRig(2, core.KindSocketVIA)
	boom := errors.New("boom")
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			out.Write(ctx.Proc(), &Buffer{Size: 64})
			out.EndOfWork(ctx.Proc())
			return boom
		}}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	g.Start(3) // the error must stop src after uow 0
	r.k.RunAll()
	err := g.Err()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("group err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "src.0 process uow 0") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestInitErrorSkipsProcess(t *testing.T) {
	r := newRig(2, core.KindTCP)
	processed := false
	src := func(int) Filter {
		return &funcFilter{
			init: func(ctx *Context) error { return errors.New("init failed") },
			process: func(ctx *Context) error {
				processed = true
				return nil
			},
		}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	g.Start(1)
	r.k.RunAll()
	if processed {
		t.Fatal("Process ran after Init error")
	}
	if g.Err() == nil {
		t.Fatal("init error not reported")
	}
}

func TestTwoStreamsBetweenSameFilters(t *testing.T) {
	r := newRig(2, core.KindSocketVIA)
	var meta, data []int64
	src := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			m, d := ctx.Output("meta"), ctx.Output("data")
			for i := 0; i < 5; i++ {
				m.Write(ctx.Proc(), &Buffer{Size: 16, Tag: int64(i)})
				d.Write(ctx.Proc(), &Buffer{Size: 4096, Tag: int64(i * 100)})
			}
			m.EndOfWork(ctx.Proc())
			return d.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			m, d := ctx.Input("meta"), ctx.Input("data")
			for {
				b, ok := m.Read(ctx.Proc())
				if !ok {
					break
				}
				meta = append(meta, b.Tag)
			}
			for {
				b, ok := d.Read(ctx.Proc())
				if !ok {
					break
				}
				data = append(data, b.Tag)
			}
			return nil
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{
			{Name: "meta", From: "src", To: "dst"},
			{Name: "data", From: "src", To: "dst"},
		},
	})
	r.run(t, g, 1)
	if len(meta) != 5 || len(data) != 5 {
		t.Fatalf("meta=%v data=%v", meta, data)
	}
	for i := 0; i < 5; i++ {
		if meta[i] != int64(i) || data[i] != int64(i*100) {
			t.Fatalf("stream crosstalk: meta=%v data=%v", meta, data)
		}
	}
}

func TestConcurrentGroupsShareCluster(t *testing.T) {
	// Two filter groups (the paper: "multiple filter groups allow
	// concurrency among multiple queries") run on the same nodes.
	r := newRig(2, core.KindSocketVIA)
	counts := [2]int{}
	mkGroup := func(idx int) *Group {
		sink := func(int) Filter {
			return &funcFilter{process: func(ctx *Context) error {
				in := ctx.Input("s")
				for {
					if _, ok := in.Read(ctx.Proc()); !ok {
						return nil
					}
					counts[idx]++
				}
			}}
		}
		return r.rt.Instantiate(GroupSpec{
			Filters: []FilterSpec{
				{Name: "src", New: source(8, 2048), Placement: []string{"n0"}},
				{Name: "dst", New: sink, Placement: []string{"n1"}},
			},
			Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
		})
	}
	g1, g2 := mkGroup(0), mkGroup(1)
	g1.Start(1)
	g2.Start(1)
	r.k.RunAll()
	if g1.Err() != nil || g2.Err() != nil {
		t.Fatalf("errs: %v %v", g1.Err(), g2.Err())
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestUOWSkewStashesFutureBuffers(t *testing.T) {
	// Producer copy 0 races ahead into uow 1 while copy 1 is slow to
	// finish uow 0; the consumer must not see uow-1 buffers early.
	r := newRig(3, core.KindSocketVIA)
	var order []string
	src := func(copy int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			out := ctx.Output("s")
			if copy == 1 && ctx.UOW() == 0 {
				ctx.Proc().Sleep(5 * sim.Millisecond) // straggler
			}
			out.Write(ctx.Proc(), &Buffer{Size: 256, Tag: int64(copy)})
			return out.EndOfWork(ctx.Proc())
		}}
	}
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				b, ok := in.Read(ctx.Proc())
				if !ok {
					return nil
				}
				if b.UOW != ctx.UOW() {
					t.Errorf("uow %d buffer delivered during uow %d", b.UOW, ctx.UOW())
				}
				order = append(order, string(rune('0'+b.UOW)))
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: src, Placement: []string{"n0", "n1"}},
			{Name: "dst", New: sink, Placement: []string{"n2"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	r.run(t, g, 2)
	want := "0011"
	if got := strings.Join(order, ""); got != want {
		t.Fatalf("uow order = %q, want %q", got, want)
	}
}

func TestGroupAccessorsPanicsAndEdges(t *testing.T) {
	r := newRig(2, core.KindTCP)
	sink := func(int) Filter {
		return &funcFilter{process: func(ctx *Context) error {
			in := ctx.Input("s")
			for {
				if _, ok := in.Read(ctx.Proc()); !ok {
					return nil
				}
			}
		}}
	}
	g := r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{
			{Name: "src", New: source(1, 64), Placement: []string{"n0"}},
			{Name: "dst", New: sink, Placement: []string{"n1"}},
		},
		Streams: []StreamSpec{{Name: "s", From: "src", To: "dst"}},
	})
	if g.Copies("src") != 1 || g.Copies("missing") != 0 {
		t.Fatal("Copies accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Start(0) did not panic")
		}
	}()
	g.Start(0)
}

func TestUnknownPlacementPanics(t *testing.T) {
	r := newRig(1, core.KindTCP)
	defer func() {
		if recover() == nil {
			t.Error("unknown node placement did not panic")
		}
	}()
	r.rt.Instantiate(GroupSpec{
		Filters: []FilterSpec{{Name: "f", New: source(1, 1), Placement: []string{"mars"}}},
	})
}
