package datacutter

import (
	"hpsockets/internal/cluster"
	"hpsockets/internal/sim"
)

// Filter is the DataCutter filter interface: init acquires resources,
// process reads input streams and writes output streams for one unit
// of work, finalize releases resources. The functions are called again
// for each unit of work.
type Filter interface {
	Init(ctx *Context) error
	Process(ctx *Context) error
	Finalize(ctx *Context) error
}

// Policy selects how a producer distributes buffers among the
// transparent copies of a consumer filter.
type Policy int

const (
	// RoundRobin cycles through consumer copies.
	RoundRobin Policy = iota
	// DemandDriven sends each buffer to the copy with the fewest
	// unacknowledged buffers; consumers acknowledge a buffer when they
	// begin processing it.
	DemandDriven
)

func (p Policy) String() string {
	if p == DemandDriven {
		return "dd"
	}
	return "rr"
}

// FilterSpec declares one filter and the placement of its transparent
// copies (one copy per listed node).
type FilterSpec struct {
	Name string
	// New constructs the filter instance for one copy.
	New func(copy int) Filter
	// Placement lists the node for each transparent copy.
	Placement []string
	// InboxDepth bounds buffers queued at each copy per input stream
	// before transport backpressure kicks in (default 2).
	InboxDepth int
}

// StreamSpec declares a logical stream between two filters.
type StreamSpec struct {
	Name   string
	From   string
	To     string
	Policy Policy
	// Acks forces begin-of-processing acknowledgments even under the
	// round-robin policy (demand-driven always acknowledges). The
	// load-balancer experiments use this to observe a round-robin
	// scheduler's reaction time.
	Acks bool
	// RecordAckLatency makes producer copies record the send-to-ack
	// latency of every buffer, per target copy.
	RecordAckLatency bool
	// MaxUnacked bounds the unacknowledged buffers a demand-driven
	// producer keeps outstanding per consumer copy (0 = unbounded).
	// When data flows on the stream, transport backpressure bounds the
	// queue naturally; workloads that ship cheap directives need this
	// explicit demand window for min-unacked routing to stay
	// demand-driven.
	MaxUnacked int
	// OpTimeout bounds every blocking Send and Recv on the stream's
	// connections (applied via core.Conn.SetTimeout at wiring time).
	// Zero leaves operations unbounded. Fault scenarios set it so a
	// crashed peer surfaces as core.ErrTimeout and triggers failover
	// instead of blocking the filter forever.
	OpTimeout sim.Time
}

// GroupSpec declares a filter group.
type GroupSpec struct {
	Filters []FilterSpec
	Streams []StreamSpec
}

// Context is a filter copy's view of the runtime.
type Context struct {
	p        *sim.Proc
	node     *cluster.Node
	name     string
	copyIdx  int
	copies   int
	uow      int
	inputs   map[string]*StreamReader
	outputs  map[string]*StreamWriter
	userdata any
}

// Proc returns the copy's simulation process.
func (ctx *Context) Proc() *sim.Proc { return ctx.p }

// Node returns the hosting node.
func (ctx *Context) Node() *cluster.Node { return ctx.node }

// Name returns the filter name.
func (ctx *Context) Name() string { return ctx.name }

// Copy returns this copy's index and the total number of copies.
func (ctx *Context) Copy() (idx, total int) { return ctx.copyIdx, ctx.copies }

// UOW returns the current unit-of-work number.
func (ctx *Context) UOW() int { return ctx.uow }

// Now returns the current virtual time.
func (ctx *Context) Now() sim.Time { return ctx.p.Now() }

// Compute spends nominal CPU time on the hosting node, subject to the
// node's heterogeneity model.
func (ctx *Context) Compute(nominal sim.Time) { ctx.node.Compute(ctx.p, nominal) }

// Input returns the named input stream reader.
func (ctx *Context) Input(stream string) *StreamReader {
	r, ok := ctx.inputs[stream]
	if !ok {
		panic("datacutter: filter " + ctx.name + " has no input stream " + stream)
	}
	return r
}

// Output returns the named output stream writer.
func (ctx *Context) Output(stream string) *StreamWriter {
	w, ok := ctx.outputs[stream]
	if !ok {
		panic("datacutter: filter " + ctx.name + " has no output stream " + stream)
	}
	return w
}

// SetUserData stashes per-copy state across init/process/finalize.
func (ctx *Context) SetUserData(v any) { ctx.userdata = v }

// UserData returns the stashed per-copy state.
func (ctx *Context) UserData() any { return ctx.userdata }
