package datacutter

import (
	"hpsockets/internal/cluster"
	"hpsockets/internal/sim"
)

// Filter is the DataCutter filter interface: init acquires resources,
// process reads input streams and writes output streams for one unit
// of work, finalize releases resources. The functions are called again
// for each unit of work.
type Filter interface {
	Init(ctx *Context) error
	Process(ctx *Context) error
	Finalize(ctx *Context) error
}

// Policy selects how a producer distributes buffers among the
// transparent copies of a consumer filter.
type Policy int

const (
	// RoundRobin cycles through consumer copies.
	RoundRobin Policy = iota
	// DemandDriven sends each buffer to the copy with the fewest
	// unacknowledged buffers; consumers acknowledge a buffer when they
	// begin processing it.
	DemandDriven
)

func (p Policy) String() string {
	if p == DemandDriven {
		return "dd"
	}
	return "rr"
}

// ShedPolicy selects what a stream does with a buffer it cannot move
// in time: when a bounded consumer inbox is full, or when the buffer's
// deadline has already expired.
type ShedPolicy int

const (
	// Block is the default: pure backpressure. Producers block until
	// the consumer drains; nothing is ever shed.
	Block ShedPolicy = iota
	// DropOldest admits a fresh buffer into a full inbox by evicting
	// the oldest buffered data element (control markers are never
	// evicted), and drops deadline-expired buffers at the producer.
	DropOldest
	// DropNewest rejects the incoming buffer when the inbox stays full
	// past the buffer's remaining deadline budget, and drops
	// deadline-expired buffers at the producer.
	DropNewest
	// DegradeQuality never drops at the producer: a deadline-expired
	// buffer is sent at reduced resolution (Size >> degradeShift, the
	// paper's partial-update semantics) so the consumer still gets a
	// lower-quality update inside its window. Inbox admission behaves
	// like DropNewest.
	DegradeQuality
)

func (s ShedPolicy) String() string {
	switch s {
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	case DegradeQuality:
		return "degrade"
	}
	return "block"
}

// ShedCause says where and why a buffer left the pipeline without
// normal delivery.
type ShedCause int

const (
	// ShedExpired: the buffer's deadline had already passed at send.
	ShedExpired ShedCause = iota
	// ShedOldest: evicted from a full inbox in favour of fresh work.
	ShedOldest
	// ShedNewest: rejected at a full inbox.
	ShedNewest
	// ShedStale: arrived at the consumer after its deadline.
	ShedStale
	// ShedLost: reclaimed from a failed copy after its unit of work
	// already ended; re-sending it would corrupt UOW accounting.
	ShedLost
)

func (c ShedCause) String() string {
	switch c {
	case ShedExpired:
		return "expired"
	case ShedOldest:
		return "oldest"
	case ShedNewest:
		return "newest"
	case ShedStale:
		return "stale"
	case ShedLost:
		return "lost"
	}
	return "unknown"
}

// FilterSpec declares one filter and the placement of its transparent
// copies (one copy per listed node).
type FilterSpec struct {
	Name string
	// New constructs the filter instance for one copy.
	New func(copy int) Filter
	// Placement lists the node for each transparent copy.
	Placement []string
	// InboxDepth bounds buffers queued at each copy per input stream
	// before transport backpressure kicks in (default 2).
	InboxDepth int
	// CheckpointEvery arms crash-restart recovery for this filter's
	// copies: a copy saves a virtual-time-stamped unit-of-work watermark
	// whenever this much virtual time has passed since the last one, and
	// a copy whose node restarts (fault.NodeRestart) resumes from its
	// watermark instead of from zero — its producers rejoin it through
	// the redial path, so every input stream must have RedialAttempts
	// armed (Instantiate panics otherwise). 0 disables: a crash stays
	// terminal for the copy, exactly as before.
	CheckpointEvery sim.Time
}

// StreamSpec declares a logical stream between two filters.
type StreamSpec struct {
	Name   string
	From   string
	To     string
	Policy Policy
	// Acks forces begin-of-processing acknowledgments even under the
	// round-robin policy (demand-driven always acknowledges). The
	// load-balancer experiments use this to observe a round-robin
	// scheduler's reaction time.
	Acks bool
	// RecordAckLatency makes producer copies record the send-to-ack
	// latency of every buffer, per target copy.
	RecordAckLatency bool
	// MaxUnacked bounds the unacknowledged buffers a demand-driven
	// producer keeps outstanding per consumer copy (0 = unbounded).
	// When data flows on the stream, transport backpressure bounds the
	// queue naturally; workloads that ship cheap directives need this
	// explicit demand window for min-unacked routing to stay
	// demand-driven.
	MaxUnacked int
	// OpTimeout bounds every blocking Send and Recv on the stream's
	// connections (applied via core.Conn.SetTimeout at wiring time and
	// re-armed on every connection re-established by redial). Zero
	// leaves operations unbounded. Fault scenarios set it so a crashed
	// peer surfaces as core.ErrTimeout and triggers failover instead of
	// blocking the filter forever.
	OpTimeout sim.Time
	// CreditWindow arms credit-based flow control: the consumer copy
	// grants each producer connection this many credits; a data buffer
	// consumes one at send, and the consumer returns it (a credit
	// message on the reverse path) when the buffer leaves its inbox —
	// into the filter or shed. Producers block deterministically when a
	// connection is out of credits, so a slow consumer pushes back
	// instead of growing queues: VIA-style credits over SocketVIA,
	// receive-window semantics over the kernel path. 0 disables.
	CreditWindow int
	// Deadlines arms deadline propagation: buffers carry their
	// Deadline on the wire (an extended header) and the shed policy
	// applies to expired or un-admittable buffers. Writing a buffer
	// with a non-zero Deadline to a stream without Deadlines panics.
	Deadlines bool
	// Shed selects the overload behaviour of the stream (see
	// ShedPolicy). Block, the default, is pure backpressure.
	Shed ShedPolicy
	// OnShed, when set, observes every buffer the stream sheds, with
	// its cause, synchronously in simulation order. The chaos harness
	// uses it for exact work accounting; it must not block.
	OnShed func(*Buffer, ShedCause)
	// OnDeliver, when set, observes every buffer handed to the
	// consuming filter, before the delivery acknowledgment. The chaos
	// harness uses it to record delivery atomically with the hand-off.
	OnDeliver func(*Buffer)
	// RedialAttempts arms producer-side connection re-establishment:
	// when every transparent consumer copy is dead, the writer redials
	// dead copies (capped, jittered, seeded backoff; this many dial
	// attempts per try) instead of failing with ErrNoLiveCopies.
	// Re-established connections get OpTimeout re-armed. 0 disables.
	RedialAttempts int
	// RedialSeed roots the redial backoff jitter (per producer copy).
	RedialSeed int64
	// ExactlyOnce arms the shared per-stream delivery ledger: every data
	// buffer carries a writer-assigned sequence number (an 8-byte header
	// extension) and the consumer side suppresses any sequence it has
	// already delivered — failover re-dispatch plus restart rejoin can
	// redeliver, but the reader counters stay exactly-once. Suppressed
	// duplicates still acknowledge and return their credit, so producer
	// bookkeeping drains normally. 0 disables; the wire framing is then
	// byte-identical to the pre-ledger protocol.
	ExactlyOnce bool
}

// GroupSpec declares a filter group.
type GroupSpec struct {
	Filters []FilterSpec
	Streams []StreamSpec
}

// Context is a filter copy's view of the runtime.
type Context struct {
	p        *sim.Proc
	node     *cluster.Node
	name     string
	copyIdx  int
	copies   int
	uow      int
	inputs   map[string]*StreamReader
	outputs  map[string]*StreamWriter
	userdata any

	// fc and epoch are set on recovery-armed copies (CheckpointEvery >
	// 0): Compute unwinds the incarnation with a crashUnwind sentinel
	// when the node has crashed or a restart superseded this
	// incarnation while its proc was parked inside a CPU occupancy.
	fc    *filterCopy
	epoch int
}

// Proc returns the copy's simulation process.
func (ctx *Context) Proc() *sim.Proc { return ctx.p }

// Node returns the hosting node.
func (ctx *Context) Node() *cluster.Node { return ctx.node }

// Name returns the filter name.
func (ctx *Context) Name() string { return ctx.name }

// Copy returns this copy's index and the total number of copies.
func (ctx *Context) Copy() (idx, total int) { return ctx.copyIdx, ctx.copies }

// UOW returns the current unit-of-work number.
func (ctx *Context) UOW() int { return ctx.uow }

// Now returns the current virtual time.
func (ctx *Context) Now() sim.Time { return ctx.p.Now() }

// Compute spends nominal CPU time on the hosting node, subject to the
// node's heterogeneity model. On recovery-armed copies it unwinds the
// incarnation instead of halting forever when the node has crashed:
// checked on entry (so a crashed copy never parks on a dead CPU) and
// again on exit (a proc already inside an occupancy finishes it, then
// discovers the crash — or that a restart already superseded it).
func (ctx *Context) Compute(nominal sim.Time) {
	ctx.checkRevoked()
	ctx.node.Compute(ctx.p, nominal)
	ctx.checkRevoked()
}

// checkRevoked unwinds a recovery-armed incarnation whose node crashed
// or whose copy was restarted out from under it. The sentinel panic is
// recovered by the group driver, which parks the copy's state for the
// next incarnation. Filters without recovery arming are unaffected.
func (ctx *Context) checkRevoked() {
	if ctx.fc == nil {
		return
	}
	if ctx.fc.epoch != ctx.epoch || ctx.node.Failed() {
		panic(crashUnwind{name: ctx.name, copy: ctx.copyIdx})
	}
}

// Input returns the named input stream reader.
func (ctx *Context) Input(stream string) *StreamReader {
	r, ok := ctx.inputs[stream]
	if !ok {
		panic("datacutter: filter " + ctx.name + " has no input stream " + stream)
	}
	return r
}

// Output returns the named output stream writer.
func (ctx *Context) Output(stream string) *StreamWriter {
	w, ok := ctx.outputs[stream]
	if !ok {
		panic("datacutter: filter " + ctx.name + " has no output stream " + stream)
	}
	return w
}

// SetUserData stashes per-copy state across init/process/finalize.
func (ctx *Context) SetUserData(v any) { ctx.userdata = v }

// UserData returns the stashed per-copy state.
func (ctx *Context) UserData() any { return ctx.userdata }
