package datacutter

import (
	"errors"
	"io"

	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// ErrNoLiveCopies reports that every transparent copy of a stream's
// consumer filter has failed, leaving nowhere to dispatch work.
var ErrNoLiveCopies = errors.New("datacutter: no live consumer copies")

// streamConn is one point-to-point connection of a logical stream.
// The producer side tracks unacknowledged buffers for demand-driven
// scheduling; the consumer side uses it to route acks back.
type streamConn struct {
	conn    core.Conn
	unacked int
	sent    uint64

	// dead marks the connection failed; the writer routes around it.
	dead bool
	// pending holds sent-but-unacknowledged buffers in send order, kept
	// only on acknowledged streams, so a failed copy's outstanding work
	// can be re-dispatched to a survivor.
	pending []pendingBuf

	// Producer-side ack latency instrumentation. Acks arrive in send
	// order on a connection, so a FIFO of send times suffices.
	record       bool
	pendingSends []sim.Time
	ackLatencies []sim.Time
}

// pendingBuf is one unacknowledged buffer with the unit of work it
// belongs to; re-dispatch drops entries from units of work the writer
// has already finished.
type pendingBuf struct {
	buf *Buffer
	uow int
}

// StreamWriter is a producer copy's handle on a logical stream: it
// distributes buffers among the transparent copies of the consumer.
type StreamWriter struct {
	name       string
	policy     Policy
	targets    []*streamConn
	rr         int
	uow        int
	closed     bool
	maxUnacked int
	ackCond    *sim.Cond // signalled on every ack when maxUnacked > 0
	// redispatch enables failover re-dispatch: unacknowledged buffers
	// of a failed copy are re-sent to a survivor. It requires acks
	// (demand-driven policy or StreamSpec.Acks) to know what is still
	// outstanding.
	redispatch bool
	// backlog holds buffers reclaimed from failed copies, waiting to be
	// re-dispatched.
	backlog []pendingBuf
	// redispatched counts buffers re-sent after a copy failure.
	redispatched uint64
}

// Redispatched reports how many buffers were re-sent to a surviving
// copy after a consumer failure.
func (w *StreamWriter) Redispatched() uint64 { return w.redispatched }

// LiveTargets reports how many consumer copies are still reachable.
func (w *StreamWriter) LiveTargets() int {
	n := 0
	for _, t := range w.targets {
		if !t.dead {
			n++
		}
	}
	return n
}

// Targets reports the number of consumer copies.
func (w *StreamWriter) Targets() int { return len(w.targets) }

// Unacked reports the per-target unacknowledged buffer counts (only
// meaningful under the demand-driven policy).
func (w *StreamWriter) Unacked() []int {
	out := make([]int, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.unacked
	}
	return out
}

// Sent reports per-target buffer counts.
func (w *StreamWriter) Sent() []uint64 {
	out := make([]uint64, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.sent
	}
	return out
}

// pick chooses the destination copy for the next buffer, blocking
// under demand-driven routing while every live copy is at its demand
// window. It skips failed copies and returns nil when none survive.
func (w *StreamWriter) pick(p *sim.Proc) *streamConn {
	switch w.policy {
	case RoundRobin:
		for range w.targets {
			t := w.targets[w.rr]
			w.rr = (w.rr + 1) % len(w.targets)
			if !t.dead {
				return t
			}
		}
		return nil
	case DemandDriven:
		for {
			var best *streamConn
			alive := false
			for _, t := range w.targets {
				if t.dead {
					continue
				}
				alive = true
				if w.maxUnacked > 0 && t.unacked >= w.maxUnacked {
					continue
				}
				if best == nil || t.unacked < best.unacked {
					best = t
				}
			}
			if best != nil {
				return best
			}
			if !alive {
				return nil
			}
			// Every live copy is at its demand window; a broadcast on
			// ack arrival or copy failure re-evaluates.
			w.ackCond.Wait(p)
		}
	}
	panic("datacutter: unknown policy")
}

// Write sends a buffer to one consumer copy chosen by the stream's
// policy. It blocks until the transport has buffered the bytes. When a
// copy's connection fails mid-send, the copy is marked dead and the
// buffer (plus, on acknowledged streams, the copy's unacknowledged
// backlog) is re-dispatched to a survivor; Write fails with
// ErrNoLiveCopies only once every copy is gone.
func (w *StreamWriter) Write(p *sim.Proc, buf *Buffer) error {
	if w.closed {
		panic("datacutter: write on closed stream " + w.name)
	}
	if err := w.flushBacklog(p); err != nil {
		return err
	}
	for {
		t := w.pick(p)
		if t == nil {
			return ErrNoLiveCopies
		}
		err := w.writeTo(p, t, buf)
		if err == nil {
			return nil
		}
		w.failTarget(p, t, err)
		if w.redispatch {
			// The buffer joined the backlog via the failed copy's
			// pending list; flush re-dispatches it with the rest.
			return w.flushBacklog(p)
		}
	}
}

// WriteTo sends a buffer to an explicit consumer copy, for application
// level schedulers that bypass the built-in policies.
func (w *StreamWriter) WriteTo(p *sim.Proc, target int, buf *Buffer) error {
	return w.writeTo(p, w.targets[target], buf)
}

func (w *StreamWriter) writeTo(p *sim.Proc, t *streamConn, buf *Buffer) error {
	var flags uint8
	if buf.Data != nil {
		flags |= flagReal
		if len(buf.Data) != buf.Size {
			panic("datacutter: buffer data/size mismatch")
		}
	}
	hdr := make([]byte, headerSize)
	putHeader(hdr, wireData, flags, w.uow, buf.Size, buf.Tag)
	p.Kernel().Trace("datacutter", "buffer-out", int64(buf.Size), w.name)
	hpsmon.Count(p.Kernel(), "datacutter", "buffers.out", 1)
	hpsmon.Count(p.Kernel(), "datacutter", "bytes.out", int64(buf.Size))
	sc := hpsmon.Begin(p, "datacutter", "stream-send", w.name)
	hpsmon.FlowSend(p, w.name, w.uow, buf.Tag)
	t.unacked++
	t.sent++
	if w.redispatch {
		t.pending = append(t.pending, pendingBuf{buf: buf, uow: w.uow})
	}
	if t.record {
		t.pendingSends = append(t.pendingSends, p.Now())
	}
	err := t.conn.Send(p, hdr)
	if err == nil {
		if buf.Data != nil {
			err = t.conn.Send(p, buf.Data)
		} else {
			err = t.conn.SendSize(p, buf.Size)
		}
	}
	sc.End()
	return err
}

// failTarget marks a copy's connection dead, reclaims its
// unacknowledged buffers into the backlog and wakes any writer blocked
// at the demand window. Idempotent: loops that race to report the same
// broken connection converge on one failover.
func (w *StreamWriter) failTarget(p *sim.Proc, t *streamConn, err error) {
	if t.dead {
		return
	}
	t.dead = true
	p.Kernel().Trace("datacutter", "copy-fail", int64(len(t.pending)),
		w.name+": "+err.Error())
	hpsmon.Instant(p, "datacutter", "copy-fail", w.name)
	w.backlog = append(w.backlog, t.pending...)
	t.pending = nil
	t.pendingSends = nil
	t.unacked = 0
	if w.ackCond != nil {
		w.ackCond.Broadcast()
	}
	t.conn.Close(p)
}

// flushBacklog re-dispatches buffers reclaimed from failed copies.
// Entries from units of work the writer already finished are dropped —
// that work is lost, traced as uow-lost — because re-sending them
// after their end-of-work marker would corrupt UOW accounting.
func (w *StreamWriter) flushBacklog(p *sim.Proc) error {
	for len(w.backlog) > 0 {
		e := w.backlog[0]
		w.backlog = w.backlog[1:]
		if e.uow != w.uow {
			p.Kernel().Trace("datacutter", "uow-lost", int64(e.buf.Size), w.name)
			hpsmon.Instant(p, "datacutter", "uow-lost", w.name)
			continue
		}
		t := w.pick(p)
		if t == nil {
			return ErrNoLiveCopies
		}
		if err := w.writeTo(p, t, e.buf); err != nil {
			// The entry returns to the backlog through t.pending.
			w.failTarget(p, t, err)
			continue
		}
		w.redispatched++
		hpsmon.Count(p.Kernel(), "datacutter", "redispatched", 1)
	}
	return nil
}

// EndOfWork broadcasts the end-of-work marker for the current unit of
// work to every surviving consumer copy and advances the writer to the
// next one. Outstanding re-dispatch backlog flushes first so reclaimed
// buffers stay inside their unit of work.
func (w *StreamWriter) EndOfWork(p *sim.Proc) error {
	if err := w.flushBacklog(p); err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	putHeader(hdr, wireEOW, 0, w.uow, 0, 0)
	live := 0
	for _, t := range w.targets {
		if t.dead {
			continue
		}
		if err := t.conn.Send(p, append([]byte(nil), hdr...)); err != nil {
			w.failTarget(p, t, err)
			continue
		}
		live++
	}
	w.uow++
	hpsmon.Count(p.Kernel(), "datacutter", "eow.out", int64(live))
	if live == 0 {
		return ErrNoLiveCopies
	}
	return nil
}

// Close shuts down the stream's connections.
func (w *StreamWriter) Close(p *sim.Proc) {
	if w.closed {
		return
	}
	w.closed = true
	for _, t := range w.targets {
		t.conn.Close(p)
	}
}

// ackReaderLoop runs on the producer side of each connection of a
// demand-driven stream, absorbing acknowledgments. A failed or
// garbled reverse stream fails the copy over instead of panicking:
// under fault injection a broken or corrupted connection is an
// operating condition, not a protocol bug.
func (w *StreamWriter) ackReaderLoop(t *streamConn) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		hdr := make([]byte, headerSize)
		for {
			if _, err := t.conn.RecvFull(p, hdr); err != nil {
				// Clean EOF and the writer's own shutdown retire the
				// loop quietly; anything else is a consumer failure.
				if !errors.Is(err, io.EOF) && !errors.Is(err, core.ErrConnClosed) &&
					!w.closed && !t.dead {
					w.failTarget(p, t, err)
				}
				return
			}
			kind, _, _, _, _ := parseHeader(hdr)
			if kind != wireAck {
				w.failTarget(p, t, errors.New("datacutter: garbled reverse-stream message"))
				return
			}
			if t.unacked > 0 {
				t.unacked--
			}
			if len(t.pending) > 0 {
				// Acks arrive in send order, so the head is acked.
				t.pending = t.pending[1:]
			}
			if t.record && len(t.pendingSends) > 0 {
				t.ackLatencies = append(t.ackLatencies, p.Now()-t.pendingSends[0])
				t.pendingSends = t.pendingSends[1:]
			}
			if w.ackCond != nil {
				w.ackCond.Broadcast()
			}
		}
	}
}

// inboxItem is one delivered stream element on the consumer side.
type inboxItem struct {
	buf  *Buffer
	eow  bool
	uow  int  // for eow markers: the unit of work they terminate
	lost bool // the producer connection behind this slot ended
}

// StreamReader is a consumer copy's handle on a logical stream,
// merging the connections from all producer copies.
type StreamReader struct {
	name   string
	policy Policy
	acks   bool
	inbox  *sim.Queue[inboxItem]
	nconns int
	// eowSeen counts end-of-work markers per unit of work: a fast
	// producer may deliver its next-UOW marker while a straggler is
	// still finishing the current one.
	eowSeen map[int]int
	uow     int
	stash   []*Buffer // buffers that arrived for a future unit of work

	received uint64
}

// Received reports the number of data buffers delivered to the filter.
func (r *StreamReader) Received() uint64 { return r.received }

// Read returns the next buffer of the current unit of work. ok is
// false when the unit of work is complete (all producer copies sent
// their end-of-work markers) or the stream closed; the reader then
// advances to the next unit of work. Under the demand-driven policy,
// Read acknowledges the buffer to its producer — the "consumer begins
// processing" signal of the paper.
func (r *StreamReader) Read(p *sim.Proc) (*Buffer, bool) {
	sc := hpsmon.Begin(p, "datacutter", "stream-read", r.name)
	b, ok := r.read(p)
	sc.End()
	return b, ok
}

func (r *StreamReader) read(p *sim.Proc) (*Buffer, bool) {
	// Serve buffers that arrived early for what is now the current UOW.
	for i, b := range r.stash {
		if b.UOW == r.uow {
			r.stash = append(r.stash[:i], r.stash[i+1:]...)
			r.deliver(p, b)
			return b, true
		}
	}
	for {
		item, ok := r.inbox.Get(p)
		if !ok {
			return nil, false // stream closed
		}
		if item.lost {
			// A producer connection ended; stop waiting for its
			// end-of-work markers. The current unit of work may now be
			// complete with one fewer expected marker.
			r.nconns--
			p.Kernel().Trace("datacutter", "producer-lost", int64(r.nconns), r.name)
			if r.nconns <= 0 {
				return nil, false
			}
			if r.eowSeen[r.uow] >= r.nconns {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.eow {
			r.eowSeen[item.uow]++
			if r.eowSeen[r.uow] >= r.nconns {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.buf.UOW != r.uow {
			r.stash = append(r.stash, item.buf)
			continue
		}
		r.deliver(p, item.buf)
		return item.buf, true
	}
}

// deliver counts the buffer and acknowledges it when the stream's
// policy calls for acks.
func (r *StreamReader) deliver(p *sim.Proc, b *Buffer) {
	r.received++
	p.Kernel().Trace("datacutter", "buffer-in", int64(b.Size), r.name)
	hpsmon.Count(p.Kernel(), "datacutter", "buffers.in", 1)
	hpsmon.Count(p.Kernel(), "datacutter", "bytes.in", int64(b.Size))
	hpsmon.FlowRecv(p, r.name, b.UOW, b.Tag)
	if (r.policy == DemandDriven || r.acks) && b.src != nil && !b.src.dead {
		hdr := make([]byte, headerSize)
		putHeader(hdr, wireAck, 0, b.UOW, 0, 0)
		if err := b.src.conn.Send(p, hdr); err != nil {
			// The producer is unreachable; it will fail this copy over
			// on its own side. Mark the conn so later acks are skipped.
			b.src.dead = true
		}
	}
}

// AckLatencies returns the recorded send-to-ack latencies for one
// target copy (requires StreamSpec.RecordAckLatency).
func (w *StreamWriter) AckLatencies(target int) []sim.Time {
	return w.targets[target].ackLatencies
}

// connReaderLoop parses one inbound connection into the shared inbox.
// A clean EOF (the producer closed after its final end-of-work marker)
// just retires the connection; a broken transport or a garbled header
// (possible under injected corruption) additionally enqueues a lost
// marker so the reader stops expecting end-of-work markers from this
// producer.
func (r *StreamReader) connReaderLoop(sc *streamConn, closed func()) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		lost := func(p *sim.Proc) {
			sc.dead = true
			r.inbox.Put(p, inboxItem{lost: true})
			closed()
		}
		hdr := make([]byte, headerSize)
		var scratch [32 * 1024]byte
		for {
			if _, err := sc.conn.RecvFull(p, hdr); err != nil {
				if errors.Is(err, io.EOF) {
					closed()
				} else {
					lost(p)
				}
				return
			}
			kind, flags, uow, size, tag := parseHeader(hdr)
			switch kind {
			case wireEOW:
				r.inbox.Put(p, inboxItem{eow: true, uow: uow})
			case wireData:
				buf := &Buffer{UOW: uow, Size: size, Tag: tag, src: sc}
				if flags&flagReal != 0 {
					buf.Data = make([]byte, size)
					if _, err := sc.conn.RecvFull(p, buf.Data); err != nil {
						lost(p)
						return
					}
				} else {
					remaining := size
					for remaining > 0 {
						n := remaining
						if n > len(scratch) {
							n = len(scratch)
						}
						m, err := sc.conn.RecvFull(p, scratch[:n])
						remaining -= m
						if err != nil {
							lost(p)
							return
						}
					}
				}
				r.inbox.Put(p, inboxItem{buf: buf})
			default:
				p.Kernel().Trace("datacutter", "garbled-header", 0, r.name)
				lost(p)
				return
			}
		}
	}
}
