package datacutter

import (
	"hpsockets/internal/core"
	"hpsockets/internal/sim"
)

// streamConn is one point-to-point connection of a logical stream.
// The producer side tracks unacknowledged buffers for demand-driven
// scheduling; the consumer side uses it to route acks back.
type streamConn struct {
	conn    core.Conn
	unacked int
	sent    uint64

	// Producer-side ack latency instrumentation. Acks arrive in send
	// order on a connection, so a FIFO of send times suffices.
	record       bool
	pendingSends []sim.Time
	ackLatencies []sim.Time
}

// StreamWriter is a producer copy's handle on a logical stream: it
// distributes buffers among the transparent copies of the consumer.
type StreamWriter struct {
	name       string
	policy     Policy
	targets    []*streamConn
	rr         int
	uow        int
	closed     bool
	maxUnacked int
	ackCond    *sim.Cond // signalled on every ack when maxUnacked > 0
}

// Targets reports the number of consumer copies.
func (w *StreamWriter) Targets() int { return len(w.targets) }

// Unacked reports the per-target unacknowledged buffer counts (only
// meaningful under the demand-driven policy).
func (w *StreamWriter) Unacked() []int {
	out := make([]int, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.unacked
	}
	return out
}

// Sent reports per-target buffer counts.
func (w *StreamWriter) Sent() []uint64 {
	out := make([]uint64, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.sent
	}
	return out
}

// pick chooses the destination copy for the next buffer, blocking
// under demand-driven routing while every copy is at its demand
// window.
func (w *StreamWriter) pick(p *sim.Proc) *streamConn {
	switch w.policy {
	case RoundRobin:
		t := w.targets[w.rr]
		w.rr = (w.rr + 1) % len(w.targets)
		return t
	case DemandDriven:
		for {
			var best *streamConn
			for _, t := range w.targets {
				if w.maxUnacked > 0 && t.unacked >= w.maxUnacked {
					continue
				}
				if best == nil || t.unacked < best.unacked {
					best = t
				}
			}
			if best != nil {
				return best
			}
			w.ackCond.Wait(p)
		}
	}
	panic("datacutter: unknown policy")
}

// Write sends a buffer to one consumer copy chosen by the stream's
// policy. It blocks until the transport has buffered the bytes.
func (w *StreamWriter) Write(p *sim.Proc, buf *Buffer) error {
	if w.closed {
		panic("datacutter: write on closed stream " + w.name)
	}
	t := w.pick(p)
	return w.writeTo(p, t, buf)
}

// WriteTo sends a buffer to an explicit consumer copy, for application
// level schedulers that bypass the built-in policies.
func (w *StreamWriter) WriteTo(p *sim.Proc, target int, buf *Buffer) error {
	return w.writeTo(p, w.targets[target], buf)
}

func (w *StreamWriter) writeTo(p *sim.Proc, t *streamConn, buf *Buffer) error {
	var flags uint8
	if buf.Data != nil {
		flags |= flagReal
		if len(buf.Data) != buf.Size {
			panic("datacutter: buffer data/size mismatch")
		}
	}
	hdr := make([]byte, headerSize)
	putHeader(hdr, wireData, flags, w.uow, buf.Size, buf.Tag)
	p.Kernel().Trace("datacutter", "buffer-out", int64(buf.Size), w.name)
	t.unacked++
	t.sent++
	if t.record {
		t.pendingSends = append(t.pendingSends, p.Now())
	}
	if err := t.conn.Send(p, hdr); err != nil {
		return err
	}
	if buf.Data != nil {
		return t.conn.Send(p, buf.Data)
	}
	return t.conn.SendSize(p, buf.Size)
}

// EndOfWork broadcasts the end-of-work marker for the current unit of
// work to every consumer copy and advances the writer to the next one.
func (w *StreamWriter) EndOfWork(p *sim.Proc) error {
	hdr := make([]byte, headerSize)
	putHeader(hdr, wireEOW, 0, w.uow, 0, 0)
	for _, t := range w.targets {
		if err := t.conn.Send(p, append([]byte(nil), hdr...)); err != nil {
			return err
		}
	}
	w.uow++
	return nil
}

// Close shuts down the stream's connections.
func (w *StreamWriter) Close(p *sim.Proc) {
	if w.closed {
		return
	}
	w.closed = true
	for _, t := range w.targets {
		t.conn.Close(p)
	}
}

// ackReaderLoop runs on the producer side of each connection of a
// demand-driven stream, absorbing acknowledgments.
func (w *StreamWriter) ackReaderLoop(t *streamConn) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		hdr := make([]byte, headerSize)
		for {
			if _, err := t.conn.RecvFull(p, hdr); err != nil {
				return
			}
			kind, _, _, _, _ := parseHeader(hdr)
			if kind != wireAck {
				panic("datacutter: unexpected reverse-stream message")
			}
			if t.unacked > 0 {
				t.unacked--
			}
			if t.record && len(t.pendingSends) > 0 {
				t.ackLatencies = append(t.ackLatencies, p.Now()-t.pendingSends[0])
				t.pendingSends = t.pendingSends[1:]
			}
			if w.ackCond != nil {
				w.ackCond.Broadcast()
			}
		}
	}
}

// inboxItem is one delivered stream element on the consumer side.
type inboxItem struct {
	buf *Buffer
	eow bool
	uow int // for eow markers: the unit of work they terminate
}

// StreamReader is a consumer copy's handle on a logical stream,
// merging the connections from all producer copies.
type StreamReader struct {
	name   string
	policy Policy
	acks   bool
	inbox  *sim.Queue[inboxItem]
	nconns int
	// eowSeen counts end-of-work markers per unit of work: a fast
	// producer may deliver its next-UOW marker while a straggler is
	// still finishing the current one.
	eowSeen map[int]int
	uow     int
	stash   []*Buffer // buffers that arrived for a future unit of work

	received uint64
}

// Received reports the number of data buffers delivered to the filter.
func (r *StreamReader) Received() uint64 { return r.received }

// Read returns the next buffer of the current unit of work. ok is
// false when the unit of work is complete (all producer copies sent
// their end-of-work markers) or the stream closed; the reader then
// advances to the next unit of work. Under the demand-driven policy,
// Read acknowledges the buffer to its producer — the "consumer begins
// processing" signal of the paper.
func (r *StreamReader) Read(p *sim.Proc) (*Buffer, bool) {
	// Serve buffers that arrived early for what is now the current UOW.
	for i, b := range r.stash {
		if b.UOW == r.uow {
			r.stash = append(r.stash[:i], r.stash[i+1:]...)
			r.deliver(p, b)
			return b, true
		}
	}
	for {
		item, ok := r.inbox.Get(p)
		if !ok {
			return nil, false // stream closed
		}
		if item.eow {
			r.eowSeen[item.uow]++
			if r.eowSeen[r.uow] == r.nconns {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.buf.UOW != r.uow {
			r.stash = append(r.stash, item.buf)
			continue
		}
		r.deliver(p, item.buf)
		return item.buf, true
	}
}

// deliver counts the buffer and acknowledges it when the stream's
// policy calls for acks.
func (r *StreamReader) deliver(p *sim.Proc, b *Buffer) {
	r.received++
	p.Kernel().Trace("datacutter", "buffer-in", int64(b.Size), r.name)
	if (r.policy == DemandDriven || r.acks) && b.src != nil {
		hdr := make([]byte, headerSize)
		putHeader(hdr, wireAck, 0, b.UOW, 0, 0)
		b.src.conn.Send(p, hdr)
	}
}

// AckLatencies returns the recorded send-to-ack latencies for one
// target copy (requires StreamSpec.RecordAckLatency).
func (w *StreamWriter) AckLatencies(target int) []sim.Time {
	return w.targets[target].ackLatencies
}

// connReaderLoop parses one inbound connection into the shared inbox.
func (r *StreamReader) connReaderLoop(sc *streamConn, closed func()) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		hdr := make([]byte, headerSize)
		var scratch [32 * 1024]byte
		for {
			if _, err := sc.conn.RecvFull(p, hdr); err != nil {
				closed()
				return
			}
			kind, flags, uow, size, tag := parseHeader(hdr)
			switch kind {
			case wireEOW:
				r.inbox.Put(p, inboxItem{eow: true, uow: uow})
			case wireData:
				buf := &Buffer{UOW: uow, Size: size, Tag: tag, src: sc}
				if flags&flagReal != 0 {
					buf.Data = make([]byte, size)
					if _, err := sc.conn.RecvFull(p, buf.Data); err != nil {
						closed()
						return
					}
				} else {
					remaining := size
					for remaining > 0 {
						n := remaining
						if n > len(scratch) {
							n = len(scratch)
						}
						m, err := sc.conn.RecvFull(p, scratch[:n])
						remaining -= m
						if err != nil {
							closed()
							return
						}
					}
				}
				r.inbox.Put(p, inboxItem{buf: buf})
			default:
				panic("datacutter: unexpected forward-stream message")
			}
		}
	}
}
