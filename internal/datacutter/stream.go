package datacutter

import (
	"errors"
	"io"

	"hpsockets/internal/core"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// ErrNoLiveCopies reports that every transparent copy of a stream's
// consumer filter has failed, leaving nowhere to dispatch work.
var ErrNoLiveCopies = errors.New("datacutter: no live consumer copies")

// errRedispatched is an internal marker: the buffer's copy failed
// mid-send and the buffer re-entered the backlog for redispatch.
var errRedispatched = errors.New("datacutter: buffer redispatched")

// numShedCauses sizes the per-cause shed counters.
const numShedCauses = int(ShedLost) + 1

// streamConn is one point-to-point connection of a logical stream.
// The producer side tracks unacknowledged buffers for demand-driven
// scheduling; the consumer side uses it to route acks back.
type streamConn struct {
	conn    core.Conn
	unacked int
	sent    uint64

	// credits is the remaining flow-control window on this connection
	// (meaningful when the stream's CreditWindow is armed). A data
	// send consumes one; the consumer returns it when the buffer
	// leaves its inbox.
	credits int

	// raddr and svc name the consumer copy's endpoint, kept so a
	// redial-armed writer can re-establish the connection.
	raddr string
	svc   int

	// est is when the current connection was established, so a rejoin
	// request can tell a stale pre-restart connection (the consumer's
	// incarnation that held the other end is gone) from one the redial
	// path already re-established after the restart.
	est sim.Time

	// dead marks the connection failed; the writer routes around it.
	dead bool
	// pending holds sent-but-unacknowledged buffers in send order, kept
	// only on acknowledged streams, so a failed copy's outstanding work
	// can be re-dispatched to a survivor.
	pending []pendingBuf

	// Producer-side ack latency instrumentation. Acks arrive in send
	// order on a connection, so a FIFO of send times suffices.
	record       bool
	pendingSends []sim.Time
	ackLatencies []sim.Time
}

// pendingBuf is one unacknowledged buffer with the unit of work it
// belongs to; re-dispatch drops entries from units of work the writer
// has already finished.
type pendingBuf struct {
	buf *Buffer
	uow int
}

// StreamWriter is a producer copy's handle on a logical stream: it
// distributes buffers among the transparent copies of the consumer.
type StreamWriter struct {
	name       string
	policy     Policy
	targets    []*streamConn
	rr         int
	uow        int
	closed     bool
	maxUnacked int
	ackCond    *sim.Cond // signalled on every ack/credit when armed
	// redispatch enables failover re-dispatch: unacknowledged buffers
	// of a failed copy are re-sent to a survivor. It requires acks
	// (demand-driven policy or StreamSpec.Acks) to know what is still
	// outstanding.
	redispatch bool
	// backlog holds buffers reclaimed from failed copies, waiting to be
	// re-dispatched.
	backlog []pendingBuf
	// redispatched counts buffers re-sent after a copy failure.
	redispatched uint64

	// Overload-control configuration (see StreamSpec).
	creditWindow int
	deadlines    bool
	shed         ShedPolicy
	onShed       func(*Buffer, ShedCause)

	// Redial support: ep is the producer's endpoint, redialPol the
	// backoff policy (Attempts > 0 arms it), opTimeout the per-op bound
	// to re-arm on re-established connections. needsReverse says a
	// fresh connection needs an ack/credit reader process.
	ep             core.Endpoint
	redialPol      core.RetryPolicy
	opTimeout      sim.Time
	needsReverse   bool
	redialDisarmed bool
	redialRounds   int
	redials        uint64

	// Exactly-once support: seqSrc is the per-stream delivery sequence
	// counter shared by every producer copy; each data buffer is
	// stamped once, at first send, so re-dispatched duplicates carry
	// the same sequence and the consumer-side ledger can suppress them.
	exactlyOnce bool
	seqSrc      *uint64

	// rejoinReqs queues restarted consumer copies waiting to be
	// re-admitted; tryRejoin drains it from proc context.
	rejoinReqs []rejoinReq
	rejoins    uint64

	written  uint64
	shedSend uint64
	degraded uint64
	lost     uint64
}

// Redispatched reports how many buffers were re-sent to a surviving
// copy after a consumer failure.
func (w *StreamWriter) Redispatched() uint64 { return w.redispatched }

// Written reports how many data buffers the writer handed to a
// transport (re-dispatched buffers count again).
func (w *StreamWriter) Written() uint64 { return w.written }

// ShedAtSend reports how many buffers the writer shed because their
// deadline had expired before they could be sent.
func (w *StreamWriter) ShedAtSend() uint64 { return w.shedSend }

// DegradedAtSend reports how many buffers were sent at reduced
// resolution by the DegradeQuality policy.
func (w *StreamWriter) DegradedAtSend() uint64 { return w.degraded }

// LostToFailover reports how many reclaimed buffers were dropped
// because their unit of work had already ended (traced as uow-lost).
func (w *StreamWriter) LostToFailover() uint64 { return w.lost }

// Redials reports how many connections the writer re-established.
func (w *StreamWriter) Redials() uint64 { return w.redials }

// Rejoins reports how many restarted consumer copies the writer
// re-admitted (a subset of Redials).
func (w *StreamWriter) Rejoins() uint64 { return w.rejoins }

// hdrSize is the stream's fixed forward-path framing size: the base
// header plus the deadline and exactly-once extensions when armed.
func (w *StreamWriter) hdrSize() int {
	n := headerSize
	if w.deadlines {
		n += 8
	}
	if w.exactlyOnce {
		n += 8
	}
	return n
}

// WaitCreditsIdle blocks until every live target's credit window is
// fully returned: the stream is quiescent, with no buffer in flight or
// parked in a consumer inbox. Producers call it before closing a
// credit-armed stream so conservation can be checked at quiesce. A
// credit lost in transit either arrives eventually (kernel TCP
// retransmits) or breaks the connection, whose dead target is then
// excused — a wait that never returns is a flow-control leak, which is
// exactly what the chaos watchdog flags.
func (w *StreamWriter) WaitCreditsIdle(p *sim.Proc) {
	if w.creditWindow <= 0 {
		return
	}
	for {
		w.tryRejoin(p)
		settled := true
		for _, t := range w.targets {
			if !t.dead && t.credits < w.creditWindow {
				settled = false
			}
		}
		if settled {
			return
		}
		w.ackCond.Wait(p)
	}
}

// WaitQuiesce blocks until the stream has fully drained: every live
// target has no unacknowledged buffer (when acks are armed) and its
// credit window fully returned (when credits are armed), and the
// re-dispatch backlog is empty. Producers call it before Close so no
// buffer's fate is left undecided: an in-flight buffer either gets
// acknowledged, or its connection breaks — surfacing here, where the
// ack reader can still reclaim it (after Close it retires quietly) —
// and the reclaimed entry is flushed, which re-dispatches it or sheds
// it as lost. Without the wait, a consumer that tears down a stalled
// connection after the producer closed would take the sent-but-unacked
// buffers with it, unaccounted. Returns the flush error, if any.
func (w *StreamWriter) WaitQuiesce(p *sim.Proc) error {
	for {
		w.tryRejoin(p)
		if err := w.flushBacklog(p); err != nil {
			return err
		}
		settled := true
		for _, t := range w.targets {
			if t.dead {
				continue
			}
			if w.redispatch && t.unacked > 0 {
				settled = false
				break
			}
			if w.creditWindow > 0 && t.credits < w.creditWindow {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		w.ackCond.Wait(p)
	}
}

// CreditState reports the remaining credits and liveness of one target
// connection, for flow-control invariant checks (credit conservation:
// at quiesce every live connection is back at the full window).
func (w *StreamWriter) CreditState(target int) (credits int, dead bool) {
	t := w.targets[target]
	return t.credits, t.dead
}

// LiveTargets reports how many consumer copies are still reachable.
func (w *StreamWriter) LiveTargets() int {
	n := 0
	for _, t := range w.targets {
		if !t.dead {
			n++
		}
	}
	return n
}

// Targets reports the number of consumer copies.
func (w *StreamWriter) Targets() int { return len(w.targets) }

// Unacked reports the per-target unacknowledged buffer counts (only
// meaningful under the demand-driven policy).
func (w *StreamWriter) Unacked() []int {
	out := make([]int, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.unacked
	}
	return out
}

// Sent reports per-target buffer counts.
func (w *StreamWriter) Sent() []uint64 {
	out := make([]uint64, len(w.targets))
	for i, t := range w.targets {
		out[i] = t.sent
	}
	return out
}

// pick chooses the destination copy for the next buffer, blocking
// under demand-driven routing while every live copy is at its demand
// window (or out of credits). It skips failed copies; when none
// survive it attempts redial (if armed) and returns nil once that too
// is exhausted.
func (w *StreamWriter) pick(p *sim.Proc) *streamConn {
	switch w.policy {
	case RoundRobin:
		for {
			w.tryRejoin(p)
			for range w.targets {
				t := w.targets[w.rr]
				w.rr = (w.rr + 1) % len(w.targets)
				if !t.dead {
					return t
				}
			}
			if !w.tryRedial(p) {
				return nil
			}
		}
	case DemandDriven:
		for {
			w.tryRejoin(p)
			var best *streamConn
			alive := false
			for _, t := range w.targets {
				if t.dead {
					continue
				}
				alive = true
				if w.maxUnacked > 0 && t.unacked >= w.maxUnacked {
					continue
				}
				if w.creditWindow > 0 && t.credits == 0 {
					continue
				}
				if best == nil || t.unacked < best.unacked {
					best = t
				}
			}
			if best != nil {
				return best
			}
			if !alive {
				if w.tryRedial(p) {
					continue
				}
				return nil
			}
			// Every live copy is at its demand window; a broadcast on
			// ack/credit arrival or copy failure re-evaluates. With
			// credits and an op timeout armed, a copy that returns no
			// credit within the bound is declared stalled and failed
			// over — the reverse path may be silently gone (e.g. the
			// consumer timed out its ack sends during a partition).
			if w.creditWindow > 0 && w.opTimeout > 0 {
				if !w.ackCond.WaitTimeout(p, w.opTimeout) {
					w.failStalled(p)
				}
			} else {
				w.ackCond.Wait(p)
			}
		}
	}
	panic("datacutter: unknown policy")
}

// tryRedial re-establishes the connection to one dead consumer copy
// (lowest index first). It reports whether a copy was restored; a
// fully failed round disarms further redial so exhausted writers fail
// fast with ErrNoLiveCopies instead of paying the backoff per buffer.
// maxRedialRounds bounds how many times a writer re-enters redial:
// recovery is a bounded mechanism, not an infinite retry loop, so a
// consumer that keeps dying cannot livelock virtual time.
const maxRedialRounds = 16

func (w *StreamWriter) tryRedial(p *sim.Proc) bool {
	if w.redialPol.Attempts <= 0 || w.redialDisarmed {
		return false
	}
	w.redialRounds++
	if w.redialRounds > maxRedialRounds {
		w.redialDisarmed = true
		return false
	}
	for j, t := range w.targets {
		if !t.dead {
			continue
		}
		c, err := core.Redial(p, w.ep, t.raddr, t.svc, w.redialPol)
		if err != nil {
			continue
		}
		// Re-arm the per-operation deadline on the fresh connection:
		// the replacement must detect the next stall exactly like the
		// original did, or a second fault blocks the writer forever.
		if w.opTimeout > 0 {
			c.SetTimeout(w.opTimeout)
		}
		t.conn = c
		t.dead = false
		t.est = p.Now()
		t.unacked = 0
		t.credits = w.creditWindow
		t.pending = nil
		t.pendingSends = nil
		w.redials++
		p.Kernel().Trace("datacutter", "redial", int64(j), w.name)
		hpsmon.Instant(p, "datacutter", "redial", w.name)
		if w.needsReverse {
			name := "dc-ack-redial/" + w.name
			p.Kernel().Go(name, w.ackReaderLoop(t))
		}
		return true
	}
	w.redialDisarmed = true
	return false
}

// rejoinReq is one queued rejoin request: which consumer copy, and
// when its node restarted (so the writer can tell stale pre-restart
// connections from ones already re-established afterwards).
type rejoinReq struct {
	target int
	at     sim.Time
}

// requestRejoin queues a restarted consumer copy for re-admission and
// wakes any writer parked at the demand window. Called from the
// restart hook (kernel-callback context), so it must not block; the
// redial itself happens in tryRejoin, from writer proc context. It
// reports whether the writer will attempt the rejoin (false once the
// stream is closed — the restarted copy then has nothing to wait for).
func (w *StreamWriter) requestRejoin(target int, at sim.Time) bool {
	if w.closed {
		return false
	}
	for _, req := range w.rejoinReqs {
		if req.target == target {
			return true
		}
	}
	w.rejoinReqs = append(w.rejoinReqs, rejoinReq{target: target, at: at})
	if w.ackCond != nil {
		w.ackCond.Broadcast()
	}
	return true
}

// tryRejoin re-establishes the connection to each queued restarted
// consumer copy through the core.Redial backoff, re-arms its timeout
// and credit window, announces the writer's current unit of work with
// a resync message (so the restarted reader fast-forwards past units
// it can no longer complete) and restores the copy into the routing
// set. A failed redial drops the request: the consumer side's rejoin
// grace deadline completes the copy vacuously instead. Unlike
// tryRedial, rejoin is not subject to the redial-round budget — it
// runs once per restart event, driven by the fault plan, not by a
// retry loop.
func (w *StreamWriter) tryRejoin(p *sim.Proc) {
	for len(w.rejoinReqs) > 0 {
		req := w.rejoinReqs[0]
		w.rejoinReqs = w.rejoinReqs[1:]
		j := req.target
		t := w.targets[j]
		if !t.dead {
			if t.est > req.at {
				// The redial path already re-established this connection
				// after the restart — it just never announced the writer's
				// position. Send the resync on the live connection so the
				// restarted reader can fast-forward.
				hdr := make([]byte, w.hdrSize())
				putHeader(hdr, wireResync, 0, w.uow, 0, 0)
				if err := t.conn.Send(p, hdr); err != nil {
					w.failTarget(p, t, err)
				}
				continue
			}
			// The rejoin request outran the writer's own crash detection:
			// the consumer restarted, so a connection predating the
			// restart is stale even though no send has failed on it yet —
			// the incarnation holding its other end is gone. Retire it,
			// reclaiming its outstanding work, and rejoin below.
			w.failTarget(p, t, errors.New("datacutter: stale connection after consumer restart"))
		}
		pol := w.redialPol
		if pol.Attempts <= 0 {
			pol = core.DefaultRetryPolicy(int64(j + 1))
		}
		c, err := core.Redial(p, w.ep, t.raddr, t.svc, pol)
		if err != nil {
			continue
		}
		if w.opTimeout > 0 {
			c.SetTimeout(w.opTimeout)
		}
		t.conn = c
		t.dead = false
		t.est = p.Now()
		t.unacked = 0
		t.credits = w.creditWindow
		t.pending = nil
		t.pendingSends = nil
		hdr := make([]byte, w.hdrSize())
		putHeader(hdr, wireResync, 0, w.uow, 0, 0)
		if err := c.Send(p, hdr); err != nil {
			w.failTarget(p, t, err)
			continue
		}
		w.redials++
		w.rejoins++
		p.Kernel().Trace("datacutter", "rejoin", int64(j), w.name)
		hpsmon.Count(p.Kernel(), "datacutter", "rejoins", 1)
		hpsmon.Instant(p, "datacutter", "rejoin", w.name)
		if w.needsReverse {
			name := "dc-ack-rejoin/" + w.name
			p.Kernel().Go(name, w.ackReaderLoop(t))
		}
		if w.ackCond != nil {
			w.ackCond.Broadcast()
		}
	}
}

// shedAtSend applies the producer-side deadline check: an expired
// buffer is shed (Drop policies) or degraded to a partial update
// (DegradeQuality). It reports whether the buffer was shed and must
// not be sent.
func (w *StreamWriter) shedAtSend(p *sim.Proc, buf *Buffer) bool {
	if !w.deadlines || w.shed == Block || buf.Deadline == 0 || p.Now() < buf.Deadline {
		return false
	}
	if w.shed == DegradeQuality {
		if !buf.Degraded {
			buf.Degraded = true
			if buf.Size > 1 {
				buf.Size >>= degradeShift
				if buf.Size == 0 {
					buf.Size = 1
				}
				if buf.Data != nil {
					buf.Data = buf.Data[:buf.Size]
				}
			}
			w.degraded++
			p.Kernel().Trace("datacutter", "degrade", int64(buf.Size), w.name)
			hpsmon.Count(p.Kernel(), "datacutter", "shed.degraded", 1)
			hpsmon.Instant(p, "datacutter", "degrade", w.name)
		}
		return false
	}
	w.shedSend++
	p.Kernel().Trace("datacutter", "shed-expired", int64(buf.Size), w.name)
	hpsmon.Count(p.Kernel(), "datacutter", "shed.expired", 1)
	hpsmon.Instant(p, "datacutter", "shed-expired", w.name)
	if w.onShed != nil {
		w.onShed(buf, ShedExpired)
	}
	return true
}

// failStalled fails the first live target over after a credit-stall
// timeout (deterministic victim: lowest index).
func (w *StreamWriter) failStalled(p *sim.Proc) {
	for _, t := range w.targets {
		if !t.dead {
			w.failTarget(p, t, errors.New("datacutter: credit stall timeout"))
			return
		}
	}
}

// awaitCredit blocks until the target has send credit or dies. It
// reports whether the target is still live. With an op timeout armed,
// a copy that returns no credit within the bound is failed over
// instead of stalling the producer forever.
func (w *StreamWriter) awaitCredit(p *sim.Proc, t *streamConn) bool {
	if w.creditWindow <= 0 || t.credits > 0 {
		return !t.dead
	}
	sc := hpsmon.Begin(p, "datacutter", "credit-stall", w.name)
	hpsmon.Count(p.Kernel(), "datacutter", "credit.stalls", 1)
	for t.credits == 0 && !t.dead {
		if w.opTimeout > 0 {
			if !w.ackCond.WaitTimeout(p, w.opTimeout) {
				w.failTarget(p, t, errors.New("datacutter: credit stall timeout"))
				break
			}
		} else {
			w.ackCond.Wait(p)
		}
	}
	sc.End()
	return !t.dead
}

// Write sends a buffer to one consumer copy chosen by the stream's
// policy. It blocks until the transport has buffered the bytes (and,
// with credits armed, until the chosen copy grants a credit). When a
// copy's connection fails mid-send, the copy is marked dead and the
// buffer (plus, on acknowledged streams, the copy's unacknowledged
// backlog) is re-dispatched to a survivor; Write fails with
// ErrNoLiveCopies only once every copy is gone and redial (if armed)
// exhausted. Deadline-expired buffers are shed or degraded per the
// stream's ShedPolicy instead of being sent.
func (w *StreamWriter) Write(p *sim.Proc, buf *Buffer) error {
	if w.closed {
		panic("datacutter: write on closed stream " + w.name)
	}
	w.checkDeadline(buf)
	if err := w.flushBacklog(p); err != nil {
		return err
	}
	err := w.dispatch(p, buf)
	if err == errRedispatched {
		// The buffer joined the backlog via the failed copy's pending
		// list; flush re-dispatches it with the rest.
		return w.flushBacklog(p)
	}
	return err
}

// dispatch routes one buffer: shed check, copy choice, credit wait,
// transport send, failover on error.
func (w *StreamWriter) dispatch(p *sim.Proc, buf *Buffer) error {
	for {
		if w.shedAtSend(p, buf) {
			return nil
		}
		t := w.pick(p)
		if t == nil {
			return ErrNoLiveCopies
		}
		if !w.awaitCredit(p, t) {
			continue // the copy died while we stalled; re-pick
		}
		if w.shedAtSend(p, buf) {
			return nil // the deadline expired during the credit stall
		}
		err := w.writeTo(p, t, buf)
		if err == nil {
			return nil
		}
		w.failTarget(p, t, err)
		if w.redispatch {
			return errRedispatched
		}
	}
}

// checkDeadline rejects deadline-carrying buffers on streams that were
// not armed for them: the wire framing would silently drop the field.
func (w *StreamWriter) checkDeadline(buf *Buffer) {
	if buf.Deadline != 0 && !w.deadlines {
		panic("datacutter: buffer with deadline on stream " + w.name +
			" without StreamSpec.Deadlines")
	}
}

// WriteTo sends a buffer to an explicit consumer copy, for application
// level schedulers that bypass the built-in policies. Shed policies
// and credits apply exactly as in Write.
func (w *StreamWriter) WriteTo(p *sim.Proc, target int, buf *Buffer) error {
	w.checkDeadline(buf)
	if w.shedAtSend(p, buf) {
		return nil
	}
	t := w.targets[target]
	if w.awaitCredit(p, t) && w.shedAtSend(p, buf) {
		return nil
	}
	return w.writeTo(p, t, buf)
}

func (w *StreamWriter) writeTo(p *sim.Proc, t *streamConn, buf *Buffer) error {
	var flags uint8
	if buf.Data != nil {
		flags |= flagReal
		if len(buf.Data) != buf.Size {
			panic("datacutter: buffer data/size mismatch")
		}
	}
	if buf.Degraded {
		flags |= flagDegraded
	}
	hdr := make([]byte, w.hdrSize())
	putHeader(hdr, wireData, flags, w.uow, buf.Size, buf.Tag)
	if w.deadlines {
		putDeadline(hdr, buf.Deadline)
	}
	if w.exactlyOnce {
		if buf.seq == 0 {
			*w.seqSrc++
			buf.seq = *w.seqSrc
		}
		putSeq(hdr, buf.seq)
	}
	p.Kernel().Trace("datacutter", "buffer-out", int64(buf.Size), w.name)
	hpsmon.Count(p.Kernel(), "datacutter", "buffers.out", 1)
	hpsmon.Count(p.Kernel(), "datacutter", "bytes.out", int64(buf.Size))
	sc := hpsmon.Begin(p, "datacutter", "stream-send", w.name)
	hpsmon.FlowSend(p, w.name, w.uow, buf.Tag)
	t.unacked++
	t.sent++
	if w.creditWindow > 0 {
		t.credits--
	}
	if w.redispatch {
		t.pending = append(t.pending, pendingBuf{buf: buf, uow: w.uow})
	}
	if t.record {
		t.pendingSends = append(t.pendingSends, p.Now())
	}
	err := t.conn.Send(p, hdr)
	if err == nil {
		if buf.Data != nil {
			err = t.conn.Send(p, buf.Data)
		} else {
			err = t.conn.SendSize(p, buf.Size)
		}
	}
	sc.End()
	if err == nil {
		w.written++
	}
	return err
}

// failTarget marks a copy's connection dead, reclaims its
// unacknowledged buffers into the backlog and wakes any writer blocked
// at the demand window. Idempotent: loops that race to report the same
// broken connection converge on one failover.
func (w *StreamWriter) failTarget(p *sim.Proc, t *streamConn, err error) {
	if t.dead {
		return
	}
	t.dead = true
	p.Kernel().Trace("datacutter", "copy-fail", int64(len(t.pending)),
		w.name+": "+err.Error())
	hpsmon.Instant(p, "datacutter", "copy-fail", w.name)
	w.backlog = append(w.backlog, t.pending...)
	t.pending = nil
	t.pendingSends = nil
	t.unacked = 0
	if w.ackCond != nil {
		w.ackCond.Broadcast()
	}
	// Abortive close in spirit: the writer must never block draining
	// data to a copy it has declared dead. A crash-restarted consumer
	// revives the peer's transport stack but not the superseded reader
	// incarnation, so the peer keeps acking without consuming — the
	// receive window closes and a graceful close can wedge forever
	// behind undeliverable bytes. Park the drain in a reaper proc
	// instead; the writer moves straight on to failover or rejoin.
	conn := t.conn
	p.Kernel().Go("dc-conn-reap/"+w.name, func(p *sim.Proc) {
		conn.Close(p)
	})
}

// flushBacklog re-dispatches buffers reclaimed from failed copies.
// Entries from units of work the writer already finished are dropped —
// that work is lost, traced as uow-lost — because re-sending them
// after their end-of-work marker would corrupt UOW accounting.
func (w *StreamWriter) flushBacklog(p *sim.Proc) error {
	for len(w.backlog) > 0 {
		e := w.backlog[0]
		w.backlog = w.backlog[1:]
		if e.uow != w.uow {
			w.lost++
			p.Kernel().Trace("datacutter", "uow-lost", int64(e.buf.Size), w.name)
			hpsmon.Instant(p, "datacutter", "uow-lost", w.name)
			if w.onShed != nil {
				w.onShed(e.buf, ShedLost)
			}
			continue
		}
		err := w.dispatch(p, e.buf)
		switch err {
		case nil:
			w.redispatched++
			hpsmon.Count(p.Kernel(), "datacutter", "redispatched", 1)
		case errRedispatched:
			// The entry returned to the backlog through the failed
			// copy's pending list; keep draining.
			continue
		default:
			return err
		}
	}
	return nil
}

// EndOfWork broadcasts the end-of-work marker for the current unit of
// work to every surviving consumer copy and advances the writer to the
// next one. Outstanding re-dispatch backlog flushes first so reclaimed
// buffers stay inside their unit of work. Markers are control traffic:
// they consume no credit, so a credit-starved stream still makes
// progress through its unit-of-work boundaries.
func (w *StreamWriter) EndOfWork(p *sim.Proc) error {
	w.tryRejoin(p)
	if err := w.flushBacklog(p); err != nil {
		return err
	}
	hdr := make([]byte, w.hdrSize())
	putHeader(hdr, wireEOW, 0, w.uow, 0, 0)
	live := 0
	for _, t := range w.targets {
		if t.dead {
			continue
		}
		if err := t.conn.Send(p, append([]byte(nil), hdr...)); err != nil {
			w.failTarget(p, t, err)
			continue
		}
		live++
	}
	w.uow++
	hpsmon.Count(p.Kernel(), "datacutter", "eow.out", int64(live))
	if live == 0 {
		return ErrNoLiveCopies
	}
	return nil
}

// Close shuts down the stream's connections.
func (w *StreamWriter) Close(p *sim.Proc) {
	if w.closed {
		return
	}
	w.closed = true
	for _, t := range w.targets {
		t.conn.Close(p)
	}
}

// ackReaderLoop runs on the producer side of each connection of an
// acknowledged or credit-armed stream, absorbing acks and returned
// credits. A failed or garbled reverse stream fails the copy over
// instead of panicking: under fault injection a broken or corrupted
// connection is an operating condition, not a protocol bug.
func (w *StreamWriter) ackReaderLoop(t *streamConn) func(p *sim.Proc) {
	// Pin the loop to the connection it was spawned for: a restart
	// rejoin (or redial) replaces t.conn while this loop is parked in
	// RecvFull on the old one, and resurrects the target — so neither
	// w.closed nor t.dead identifies the loop as stale. Without the
	// pin, the old loop's eventual timeout would fail the fresh
	// connection over and wedge the writer in a redial livelock.
	c := t.conn
	return func(p *sim.Proc) {
		hdr := make([]byte, headerSize)
		for {
			_, err := c.RecvFull(p, hdr)
			if t.conn != c {
				return // the target moved on to a new connection
			}
			if err != nil {
				// The writer's own shutdown (or a target already failed
				// over) retires the loop quietly — checked first, or the
				// idle-timeout re-arm below would tick forever on a
				// closed stream.
				if w.closed || t.dead {
					return
				}
				if errors.Is(err, core.ErrTimeout) && t.unacked == 0 &&
					(w.creditWindow <= 0 || t.credits >= w.creditWindow) {
					// An armed op timeout on a connection that owes us
					// nothing: the reverse path is idle, not stalled
					// (demand-driven routing can starve a copy of sends
					// for longer than the timeout). Keep listening.
					continue
				}
				// Any other error — including a peer-side close, the
				// consumer tearing down a connection it declared lost —
				// must fail the copy over here, or its unacknowledged
				// buffers are never reclaimed: the demand-driven picker
				// would avoid the high-unacked connection forever and
				// never discover the breakage.
				w.failTarget(p, t, err)
				return
			}
			kind, _, _, _, _ := parseHeader(hdr)
			switch kind {
			case wireAck:
				if t.unacked > 0 {
					t.unacked--
				}
				if len(t.pending) > 0 {
					// Acks arrive in send order, so the head is acked.
					t.pending = t.pending[1:]
				}
				if t.record && len(t.pendingSends) > 0 {
					t.ackLatencies = append(t.ackLatencies, p.Now()-t.pendingSends[0])
					t.pendingSends = t.pendingSends[1:]
				}
			case wireCredit:
				if w.creditWindow <= 0 || t.credits >= w.creditWindow {
					w.failTarget(p, t, errors.New("datacutter: credit overflow on reverse stream"))
					return
				}
				t.credits++
			default:
				w.failTarget(p, t, errors.New("datacutter: garbled reverse-stream message"))
				return
			}
			if w.ackCond != nil {
				w.ackCond.Broadcast()
			}
		}
	}
}

// inboxItem is one delivered stream element on the consumer side.
type inboxItem struct {
	buf    *Buffer
	eow    bool
	uow    int  // for eow/resync markers: the unit of work they carry
	lost   bool // the producer connection behind this slot ended
	rejoin bool // a redialed producer connection came back
	resync bool // a rejoining producer announced its current uow
}

// StreamReader is a consumer copy's handle on a logical stream,
// merging the connections from all producer copies.
type StreamReader struct {
	name   string
	policy Policy
	acks   bool
	inbox  *sim.Queue[inboxItem]
	nconns int
	// eowSeen counts end-of-work markers per unit of work: a fast
	// producer may deliver its next-UOW marker while a straggler is
	// still finishing the current one.
	eowSeen map[int]int
	uow     int
	stash   []*Buffer // buffers that arrived for a future unit of work

	creditWindow int
	deadlines    bool
	shedPolicy   ShedPolicy
	onShed       func(*Buffer, ShedCause)
	onDeliver    func(*Buffer)
	redial       bool

	// Exactly-once support: ledger is the per-stream delivery ledger
	// shared by every consumer copy (failover re-dispatch crosses
	// copies); duplicates counts suppressed redeliveries.
	exactlyOnce bool
	ledger      *dedupLedger
	duplicates  uint64

	// Crash-restart recovery state (armed by FilterSpec.CheckpointEvery
	// on the consuming filter; see resetForRejoin). depth is kept so a
	// restart can rebuild the inbox at the spec'd capacity.
	k           *sim.Kernel
	depth       int
	awaitRejoin int       // rejoin markers the new incarnation still expects
	resyncTo    int       // fast-forward target uow announced by resync messages
	graceTimer  sim.Timer // rejoin grace deadline; stopped when rejoins complete
	graceArmed  bool
	recoverNote func() // first-delivery callback of the current incarnation

	received uint64
	shed     [numShedCauses]uint64
}

// Received reports the number of data buffers delivered to the filter.
func (r *StreamReader) Received() uint64 { return r.received }

// Duplicates reports how many redeliveries the exactly-once ledger
// suppressed.
func (r *StreamReader) Duplicates() uint64 { return r.duplicates }

// hdrSize mirrors StreamWriter.hdrSize for the consumer side.
func (r *StreamReader) hdrSize() int {
	n := headerSize
	if r.deadlines {
		n += 8
	}
	if r.exactlyOnce {
		n += 8
	}
	return n
}

// ShedCount reports how many buffers the consumer side shed for one
// cause (ShedOldest, ShedNewest, ShedStale).
func (r *StreamReader) ShedCount(cause ShedCause) uint64 { return r.shed[cause] }

// ShedTotal reports the total consumer-side shed count.
func (r *StreamReader) ShedTotal() uint64 {
	var n uint64
	for _, c := range r.shed {
		n += c
	}
	return n
}

// Read returns the next buffer of the current unit of work. ok is
// false when the unit of work is complete (all producer copies sent
// their end-of-work markers) or the stream closed; the reader then
// advances to the next unit of work. Under the demand-driven policy,
// Read acknowledges the buffer to its producer — the "consumer begins
// processing" signal of the paper.
func (r *StreamReader) Read(p *sim.Proc) (*Buffer, bool) {
	sc := hpsmon.Begin(p, "datacutter", "stream-read", r.name)
	b, ok := r.read(p)
	sc.End()
	return b, ok
}

func (r *StreamReader) read(p *sim.Proc) (*Buffer, bool) {
	for {
		b, ok := r.next(p)
		if !ok {
			return nil, false
		}
		if r.ledger != nil && b.seq != 0 && r.ledger.delivered(b.seq) {
			r.suppressDup(p, b)
			continue
		}
		if r.staleDrop(b, p.Now()) {
			r.shedBuf(p, b, ShedStale)
			continue
		}
		r.deliver(p, b)
		return b, true
	}
}

// suppressDup retires a redelivered buffer the exactly-once ledger has
// already seen: it acknowledges and returns the credit exactly as a
// delivery would — the re-dispatching producer's bookkeeping must
// drain — but the filter never sees the buffer and no delivery counter
// moves.
func (r *StreamReader) suppressDup(p *sim.Proc, b *Buffer) {
	r.duplicates++
	p.Kernel().Trace("datacutter", "dup-suppressed", int64(b.Size), r.name)
	hpsmon.Count(p.Kernel(), "datacutter", "dup.suppressed", 1)
	hpsmon.Instant(p, "datacutter", "dup-suppressed", r.name)
	r.returnCredit(p, b)
	r.ack(p, b)
}

// staleDrop reports whether a buffer should be shed because it reached
// the consumer after its deadline (Drop policies only: DegradeQuality
// still delivers — a late partial update beats nothing, and the
// producer already reduced it).
func (r *StreamReader) staleDrop(b *Buffer, now sim.Time) bool {
	if r.shedPolicy != DropOldest && r.shedPolicy != DropNewest {
		return false
	}
	return b.Deadline > 0 && now > b.Deadline
}

// next produces the next data buffer of the current unit of work,
// without delivering it.
func (r *StreamReader) next(p *sim.Proc) (*Buffer, bool) {
	if r.uow < r.resyncTo {
		// A rejoining producer announced it is already past this unit
		// of work: its data and end-of-work markers can no longer
		// arrive. Complete the unit vacuously and advance — this is
		// the restarted copy replaying from its checkpoint up to the
		// producers' live position.
		delete(r.eowSeen, r.uow)
		r.uow++
		return nil, false
	}
	// Serve buffers that arrived early for what is now the current UOW.
	for i, b := range r.stash {
		if b.UOW == r.uow {
			r.stash = append(r.stash[:i], r.stash[i+1:]...)
			return b, true
		}
	}
	for {
		if r.nconns <= 0 && r.awaitRejoin <= 0 {
			// Every producer connection is gone: data for this unit of
			// work cannot arrive, so don't park on an inbox nobody
			// feeds. Only a redial rejoin (already queued) revives the
			// stream.
			item, ok := r.inbox.TryGet()
			if !ok {
				return nil, false
			}
			if item.rejoin {
				r.noteRejoin(p)
			}
			continue
		}
		// With awaitRejoin > 0 a restarted incarnation parks here even
		// before any connection exists: the rejoin markers are on their
		// way, and the grace deadline closes the inbox if they never
		// arrive.
		item, ok := r.inbox.Get(p)
		if !ok {
			return nil, false // stream closed
		}
		if item.rejoin {
			r.noteRejoin(p)
			continue
		}
		if item.resync {
			if item.uow > r.resyncTo {
				r.resyncTo = item.uow
			}
			if r.uow < r.resyncTo {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.lost {
			// A producer connection ended; stop waiting for its
			// end-of-work markers. The current unit of work may now be
			// complete with one fewer expected marker.
			r.nconns--
			p.Kernel().Trace("datacutter", "producer-lost", int64(r.nconns), r.name)
			if r.nconns <= 0 {
				return nil, false
			}
			if r.eowSeen[r.uow] >= r.nconns {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.eow {
			r.eowSeen[item.uow]++
			if r.eowSeen[r.uow] >= r.nconns {
				delete(r.eowSeen, r.uow)
				r.uow++
				return nil, false
			}
			continue
		}
		if item.buf.UOW < r.uow {
			// Late redelivery for a unit of work this reader already
			// declared complete (its connections were lost at the
			// time): the work is gone; account it and move on.
			r.shedBuf(p, item.buf, ShedLost)
			continue
		}
		if item.buf.UOW != r.uow {
			r.stash = append(r.stash, item.buf)
			continue
		}
		return item.buf, true
	}
}

// noteRejoin admits one rejoining producer connection: expect its
// end-of-work markers again, and when a restarted incarnation has now
// heard from every producer it was waiting for, disarm the rejoin
// grace deadline.
func (r *StreamReader) noteRejoin(p *sim.Proc) {
	r.nconns++
	p.Kernel().Trace("datacutter", "producer-rejoin", int64(r.nconns), r.name)
	if r.awaitRejoin > 0 {
		r.awaitRejoin--
		if r.awaitRejoin == 0 && r.graceArmed {
			r.graceTimer.Stop()
			r.graceArmed = false
		}
	}
}

// deliver counts the buffer, returns its flow-control credit and
// acknowledges it when the stream's policy calls for acks.
func (r *StreamReader) deliver(p *sim.Proc, b *Buffer) {
	if r.ledger != nil && b.seq != 0 {
		r.ledger.record(b.seq)
	}
	if r.recoverNote != nil {
		r.recoverNote()
		r.recoverNote = nil
	}
	if r.onDeliver != nil {
		r.onDeliver(b)
	}
	r.received++
	p.Kernel().Trace("datacutter", "buffer-in", int64(b.Size), r.name)
	hpsmon.Count(p.Kernel(), "datacutter", "buffers.in", 1)
	hpsmon.Count(p.Kernel(), "datacutter", "bytes.in", int64(b.Size))
	hpsmon.FlowRecv(p, r.name, b.UOW, b.Tag)
	r.returnCredit(p, b)
	r.ack(p, b)
}

// ack acknowledges a buffer to its producer when the stream's policy
// calls for acks.
func (r *StreamReader) ack(p *sim.Proc, b *Buffer) {
	if (r.policy == DemandDriven || r.acks) && b.src != nil && !b.src.dead {
		hdr := make([]byte, headerSize)
		putHeader(hdr, wireAck, 0, b.UOW, 0, 0)
		if err := b.src.conn.Send(p, hdr); err != nil {
			// The producer is unreachable; it will fail this copy over
			// on its own side. Mark the conn so later acks are skipped.
			b.src.dead = true
		}
	}
}

// returnCredit hands the buffer's flow-control credit back to its
// producer. Credits return when the buffer leaves the inbox — whether
// into the filter or shed — so the window never leaks.
func (r *StreamReader) returnCredit(p *sim.Proc, b *Buffer) {
	if r.creditWindow <= 0 || b.src == nil || b.src.dead {
		return
	}
	hdr := make([]byte, headerSize)
	putHeader(hdr, wireCredit, 0, b.UOW, 0, 0)
	if err := b.src.conn.Send(p, hdr); err != nil {
		b.src.dead = true
	}
}

// shedBuf accounts one consumer-side shed buffer and returns its
// credit.
func (r *StreamReader) shedBuf(p *sim.Proc, b *Buffer, cause ShedCause) {
	r.shed[cause]++
	p.Kernel().Trace("datacutter", "shed", int64(b.Size), r.name)
	switch cause {
	case ShedOldest:
		hpsmon.Count(p.Kernel(), "datacutter", "shed.oldest", 1)
		hpsmon.Instant(p, "datacutter", "shed-oldest", r.name)
	case ShedNewest:
		hpsmon.Count(p.Kernel(), "datacutter", "shed.newest", 1)
		hpsmon.Instant(p, "datacutter", "shed-newest", r.name)
	case ShedLost:
		hpsmon.Count(p.Kernel(), "datacutter", "shed.lost", 1)
		hpsmon.Instant(p, "datacutter", "shed-lost", r.name)
	default:
		hpsmon.Count(p.Kernel(), "datacutter", "shed.stale", 1)
		hpsmon.Instant(p, "datacutter", "shed-stale", r.name)
	}
	if r.onShed != nil {
		r.onShed(b, cause)
	}
	r.returnCredit(p, b)
}

// admit places an arriving data buffer into the given inbox under the
// stream's shed policy. Control markers always use a blocking put:
// they are never shed. The inbox is passed explicitly because each
// incarnation of a restarted copy owns a fresh one — a stale
// connection keeps feeding the inbox it was spawned against, whose
// closure swallows the put.
func (r *StreamReader) admit(p *sim.Proc, inbox *sim.Queue[inboxItem], item inboxItem) {
	switch r.shedPolicy {
	case DropOldest:
		for !inbox.TryPut(item) {
			old, ok := inbox.Evict(func(it inboxItem) bool { return it.buf != nil })
			if !ok {
				// Only control markers are buffered; wait for space.
				inbox.Put(p, item)
				return
			}
			r.shedBuf(p, old.buf, ShedOldest)
		}
	case DropNewest, DegradeQuality:
		// Wait at most the buffer's remaining deadline budget for a
		// slot; without a deadline the put is non-blocking.
		var wait sim.Time
		if item.buf.Deadline > 0 {
			wait = item.buf.Deadline - p.Now()
		}
		if !inbox.PutTimeout(p, item, wait) {
			r.shedBuf(p, item.buf, ShedNewest)
		}
	default:
		inbox.Put(p, item)
	}
}

// AckLatencies returns the recorded send-to-ack latencies for one
// target copy (requires StreamSpec.RecordAckLatency).
func (w *StreamWriter) AckLatencies(target int) []sim.Time {
	return w.targets[target].ackLatencies
}

// connReaderLoop parses one inbound connection into the shared inbox.
// A clean EOF (the producer closed after its final end-of-work marker)
// just retires the connection; a broken transport or a garbled header
// (possible under injected corruption) additionally enqueues a lost
// marker so the reader stops expecting end-of-work markers from this
// producer. On redial-armed streams a replacement connection announces
// itself with a rejoin marker first, and conn termination never closes
// the shared inbox (lost markers carry the accounting instead).
func (r *StreamReader) connReaderLoop(sc *streamConn, closed func(), rejoin bool) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		// Pin this connection to the incarnation it was spawned
		// against: a restart replaces r.inbox, and a stale connection's
		// markers must not leak into the new incarnation's accounting.
		// Puts on the old inbox are swallowed by its closure.
		inbox := r.inbox
		if rejoin {
			inbox.Put(p, inboxItem{rejoin: true})
		}
		lost := func(p *sim.Proc) {
			sc.dead = true
			// Tear the connection down fully: a half-open connection
			// (consumer timed out, producer side still healthy) would
			// let the producer keep sending into a void — the close
			// surfaces as a send/ack error over there and triggers
			// failover, so the in-flight buffers are re-dispatched
			// instead of silently vanishing.
			sc.conn.Close(p)
			inbox.Put(p, inboxItem{lost: true})
			if !r.redial {
				closed()
			}
		}
		hdr := make([]byte, r.hdrSize())
		var scratch [32 * 1024]byte
		for {
			if _, err := sc.conn.RecvFull(p, hdr); err != nil {
				if errors.Is(err, io.EOF) {
					if r.redial {
						// The producer closed this connection — orderly
						// shutdown or failover teardown. Either way it is
						// gone: post the lost marker so the reader stops
						// expecting its end-of-work markers (a rejoin
						// restores the count), or a sink waiting on a
						// failed-over connection would park forever.
						sc.dead = true
						inbox.Put(p, inboxItem{lost: true})
					} else {
						closed()
					}
				} else {
					lost(p)
				}
				return
			}
			kind, flags, uow, size, tag := parseHeader(hdr)
			switch kind {
			case wireEOW:
				inbox.Put(p, inboxItem{eow: true, uow: uow})
			case wireResync:
				inbox.Put(p, inboxItem{resync: true, uow: uow})
			case wireData:
				buf := &Buffer{UOW: uow, Size: size, Tag: tag, src: sc}
				if r.deadlines {
					buf.Deadline = parseDeadline(hdr)
					buf.Degraded = flags&flagDegraded != 0
				}
				if r.exactlyOnce {
					buf.seq = parseSeq(hdr)
				}
				if flags&flagReal != 0 {
					buf.Data = make([]byte, size)
					if _, err := sc.conn.RecvFull(p, buf.Data); err != nil {
						lost(p)
						return
					}
				} else {
					remaining := size
					for remaining > 0 {
						n := remaining
						if n > len(scratch) {
							n = len(scratch)
						}
						m, err := sc.conn.RecvFull(p, scratch[:n])
						remaining -= m
						if err != nil {
							lost(p)
							return
						}
					}
				}
				r.admit(p, inbox, inboxItem{buf: buf})
			default:
				p.Kernel().Trace("datacutter", "garbled-header", 0, r.name)
				lost(p)
				return
			}
		}
	}
}
