package core

import (
	"io"

	"hpsockets/internal/cluster"
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
	"hpsockets/internal/via"
)

// rxChunk is one arrived eager chunk held until the reader drains it,
// still owning its receive descriptor.
type rxChunk struct {
	desc     *via.Desc
	data     []byte // nil for size-only payloads
	size     int
	consumed int
}

// svConn is a SocketVIA connection.
type svConn struct {
	ep *svEndpoint
	vi *via.VI
	cq *via.CQ

	// Send side: free registered send buffers and data credits.
	sendPool *sim.Queue[*via.Desc]
	credits  int
	credCond *sim.Cond
	closed   bool

	// Receive side.
	rcvChunks []rxChunk
	rcvAvail  int
	rcvCond   *sim.Cond
	finRcvd   bool
	consumed  int // descriptors reposted since the last credit update

	// Control.
	ctrlPool *sim.Queue[*via.Desc]
	readySig *sim.Signal
	// brokenErr, once non-nil, is the typed error every subsequent
	// operation fails with (ErrBroken, ErrDescriptorExhausted, or
	// ErrTimeout).
	brokenErr error

	// opTimeout bounds blocking waits in Send and Recv (0 = forever).
	opTimeout sim.Time

	// Rendezvous state (see rendezvous.go).
	rendCond        *sim.Cond
	ctsArrived      int
	ctsConsumed     int
	ctsOwed         int
	rendHandle      uint32
	rendLocalHandle uint32
	rendRegion      *via.MemRegion
	rendMeta        []int
}

func (c *svConn) Transport() string        { return "socketvia" }
func (c *svConn) LocalNode() *cluster.Node { return c.ep.pr.Node() }
func (c *svConn) SetTimeout(d sim.Time)    { c.opTimeout = d }

func (c *svConn) node() *cluster.Node { return c.ep.pr.Node() }

// sendCtrl posts a control message (credit update, FIN, ready).
// Control descriptor availability is structurally bounded, see
// SVConfig.ctrlSlack.
func (c *svConn) sendCtrl(p *sim.Proc, kind uint64, val int) {
	d, ok := c.ctrlPool.Get(p)
	if !ok {
		return
	}
	d.Len = 1
	d.Data = nil
	d.Imm = svImm(kind, val)
	if err := c.vi.PostSend(p, d); err != nil {
		c.markBroken(ErrBroken)
	}
}

// Send writes real bytes to the stream.
func (c *svConn) Send(p *sim.Proc, data []byte) error {
	return c.send(p, data, len(data))
}

// SendSize writes n size-only bytes.
func (c *svConn) SendSize(p *sim.Proc, n int) error {
	return c.send(p, nil, n)
}

// send chops the payload into eager chunks; each chunk takes a free
// registered send buffer (returned by its send completion), one data
// credit, a user-to-registered copy, and one VIA send descriptor.
func (c *svConn) send(p *sim.Proc, data []byte, n int) error {
	if c.closed {
		return ErrConnClosed
	}
	if c.brokenErr != nil {
		return c.brokenErr
	}
	cfg := c.ep.cfg
	if cfg.RendezvousThreshold > 0 && n >= cfg.RendezvousThreshold {
		return c.sendRendezvous(p, data, n)
	}
	node := c.node()
	offset := 0
	for offset < n {
		m := n - offset
		if m > cfg.ChunkSize {
			m = cfg.ChunkSize
		}
		d, ok := c.sendPool.Get(p)
		if !ok {
			return c.errBroken()
		}
		blocked := false
		for c.credits == 0 && c.brokenErr == nil {
			blocked = true
			k := node.Kernel()
			t0 := k.Now()
			sc := hpsmon.Begin(p, "socketvia", "credit-wait", "")
			timedOut := false
			if c.opTimeout > 0 {
				timedOut = !c.credCond.WaitTimeout(p, c.opTimeout)
			} else {
				c.credCond.Wait(p)
			}
			sc.End()
			hpsmon.Observe(k, "socketvia", "credit-wait", k.Now()-t0)
			if timedOut {
				_ = c.sendPool.TryPut(d) // return the unused buffer
				return ErrTimeout
			}
		}
		if c.brokenErr != nil {
			return c.brokenErr
		}
		if blocked {
			node.Overhead(p, cfg.ReaderWakeup)
		}
		c.credits--
		node.Kernel().Trace("socketvia", "eager-chunk", int64(m), "")
		hpsmon.Count(node.Kernel(), "socketvia", "chunks.out", 1)
		hpsmon.Count(node.Kernel(), "socketvia", "chunk.bytes.out", int64(m))
		node.Overhead(p, cfg.ProcCost+sim.Time(float64(m)*cfg.CopyPerByte+0.5))
		d.Len = m
		d.Imm = svImm(svData, m)
		if data != nil {
			backing := d.Ctx.([]byte)
			copy(backing, data[offset:offset+m])
			d.Data = backing[:m]
		} else {
			d.Data = nil
		}
		if err := c.vi.PostSend(p, d); err != nil {
			c.markBroken(ErrBroken)
			return ErrBroken
		}
		offset += m
	}
	return nil
}

// errBroken reports the recorded break reason, defaulting to ErrBroken
// for paths (like a closed pool) that imply one without recording it.
func (c *svConn) errBroken() error {
	if c.brokenErr != nil {
		return c.brokenErr
	}
	return ErrBroken
}

// Recv reads up to len(buf) bytes, copying out of the registered
// receive buffers; fully drained descriptors are reposted and batched
// into credit updates.
func (c *svConn) Recv(p *sim.Proc, buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	cfg := c.ep.cfg
	node := c.node()
	node.Overhead(p, cfg.ProcCost)
	blocked := false
	for c.rcvAvail == 0 {
		if c.finRcvd {
			return 0, io.EOF
		}
		if c.brokenErr != nil {
			return 0, c.brokenErr
		}
		blocked = true
		k := node.Kernel()
		t0 := k.Now()
		sc := hpsmon.Begin(p, "socketvia", "rcv-wait", "")
		timedOut := false
		if c.opTimeout > 0 {
			timedOut = !c.rcvCond.WaitTimeout(p, c.opTimeout)
		} else {
			c.rcvCond.Wait(p)
		}
		sc.End()
		hpsmon.Observe(k, "socketvia", "rcv-wait", k.Now()-t0)
		if timedOut {
			return 0, ErrTimeout
		}
	}
	if blocked {
		node.Overhead(p, cfg.ReaderWakeup)
	}
	n := len(buf)
	if n > c.rcvAvail {
		n = c.rcvAvail
	}
	node.Overhead(p, sim.Time(float64(n)*cfg.CopyPerByte+0.5))
	remaining := n
	off := 0
	for remaining > 0 {
		ch := &c.rcvChunks[0]
		take := ch.size - ch.consumed
		if take > remaining {
			take = remaining
		}
		if ch.data != nil {
			copy(buf[off:], ch.data[ch.consumed:ch.consumed+take])
		}
		ch.consumed += take
		off += take
		remaining -= take
		if ch.consumed == ch.size {
			if ch.desc != nil {
				c.repostChunk(p, ch.desc)
			}
			c.rcvChunks[0] = rxChunk{}
			c.rcvChunks = c.rcvChunks[1:]
		}
	}
	c.rcvAvail -= n
	c.maybeSendCredits(p)
	c.maybeGrantRendezvous(p)
	return n, nil
}

func (c *svConn) RecvFull(p *sim.Proc, buf []byte) (int, error) {
	return recvFull(c, p, buf)
}

// repostChunk returns a drained descriptor to the VI.
func (c *svConn) repostChunk(p *sim.Proc, d *via.Desc) {
	if c.brokenErr != nil {
		return
	}
	d.Data = nil
	d.Len = c.ep.cfg.ChunkSize
	if err := c.vi.PostRecv(p, d); err != nil {
		c.markBroken(ErrBroken)
		return
	}
	c.consumed++
}

// maybeSendCredits returns accumulated descriptors to the sender once
// a batch is full.
func (c *svConn) maybeSendCredits(p *sim.Proc) {
	if c.consumed >= c.ep.cfg.CreditBatch && c.brokenErr == nil {
		grant := c.consumed
		c.consumed = 0
		c.node().Kernel().Trace("socketvia", "credit-grant", int64(grant), "")
		hpsmon.Count(c.node().Kernel(), "socketvia", "credits.granted", int64(grant))
		c.sendCtrl(p, svCredit, grant)
	}
}

// Close sends FIN; the receive direction stays open. Closing twice
// (or after a break) is safe.
func (c *svConn) Close(p *sim.Proc) error {
	if c.closed || c.brokenErr != nil {
		return nil
	}
	c.closed = true
	c.sendCtrl(p, svFIN, 0)
	return nil
}

// markBroken records the typed break reason and wakes everyone: the
// condition waiters through broadcasts, and senders parked on the
// descriptor pools by closing them (a broken connection stops
// recycling descriptors, so a blocked Get would otherwise hang
// forever).
func (c *svConn) markBroken(err error) {
	if c.brokenErr == nil {
		c.brokenErr = err
	}
	c.sendPool.Close()
	c.ctrlPool.Close()
	c.credCond.Broadcast()
	c.rcvCond.Broadcast()
	c.rendCond.Broadcast()
}

// pump is the connection's progress process: it services the shared
// completion queue, delivering data chunks to the reader, absorbing
// credit updates, recycling send descriptors and answering control
// traffic. It reproduces the progress engine of user-level sockets
// layers (which real SocketVIA folds into its send/recv paths).
func (c *svConn) pump(p *sim.Proc) {
	for {
		comp := c.cq.Wait(p)
		if comp.Status != via.StatusOK {
			// RNR means the peer's receive descriptors ran out — the
			// one condition the credit protocol exists to prevent, so
			// it only fires under injected descriptor pressure.
			if comp.Status == via.StatusRNR {
				c.markBroken(ErrDescriptorExhausted)
			} else {
				c.markBroken(ErrBroken)
			}
			if c.readySig != nil && !c.readySig.Fired() {
				c.readySig.Fire(nil)
			}
			return
		}
		if !comp.IsRecv {
			// Send completion: recycle the descriptor into its pool.
			// One-shot rendezvous descriptors are dropped.
			switch comp.Desc.Ctx.(type) {
			case ctrlTag:
				_ = c.ctrlPool.TryPut(comp.Desc)
			case rendDescTag:
			default:
				_ = c.sendPool.TryPut(comp.Desc)
			}
			continue
		}
		d := comp.Desc
		switch svKind(d.Imm) {
		case svData:
			c.rcvChunks = append(c.rcvChunks, rxChunk{desc: d, data: d.Data, size: d.XferLen})
			c.rcvAvail += d.XferLen
			c.rcvCond.Broadcast()
		case svCredit:
			c.credits += svVal(d.Imm)
			c.repostCtrlRecv(p, d)
			c.credCond.Broadcast()
		case svReady:
			c.repostCtrlRecv(p, d)
			if !c.readySig.Fired() {
				c.readySig.Fire(nil)
			}
		case svRendReq:
			c.repostCtrlRecv(p, d)
			c.handleRendReq(p, svVal(d.Imm))
		case svRendCTS:
			c.repostCtrlRecv(p, d)
			c.handleRendCTS(svVal(d.Imm))
		case svRendDone:
			c.repostCtrlRecv(p, d)
			c.handleRendDone()
		case svFIN:
			c.finRcvd = true
			c.rcvCond.Broadcast()
			// Descriptor deliberately not reposted: the stream is
			// ending and the slack accounting allows for it.
		default:
			// Every immediate value is built by svImm in this package,
			// so an unknown kind means the message was damaged in a
			// way the lower layers failed to catch. Treat the
			// connection as broken rather than crash the simulation.
			c.node().Kernel().Trace("socketvia", "bad-msg-kind", int64(d.Imm), "")
			c.markBroken(ErrBroken)
			return
		}
	}
}

// repostCtrlRecv immediately returns a control-consumed descriptor so
// control traffic never depletes the pool.
func (c *svConn) repostCtrlRecv(p *sim.Proc, d *via.Desc) {
	if c.brokenErr != nil {
		return
	}
	d.Data = nil
	d.Len = c.ep.cfg.ChunkSize
	if err := c.vi.PostRecv(p, d); err != nil {
		c.markBroken(ErrBroken)
	}
}
