package core

import (
	"errors"
	"reflect"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// scriptedEndpoint fails every Dial and records the virtual time of
// each attempt, so tests can pin Redial's backoff schedule exactly.
type scriptedEndpoint struct {
	node     *cluster.Node
	attempts []sim.Time
}

func (e *scriptedEndpoint) Node() *cluster.Node { return e.node }
func (e *scriptedEndpoint) Transport() string   { return "scripted" }
func (e *scriptedEndpoint) Listen(svc int) Listener {
	panic("scripted endpoint does not listen")
}

func (e *scriptedEndpoint) Dial(p *sim.Proc, remote string, svc int) (Conn, error) {
	e.attempts = append(e.attempts, p.Now())
	return nil, errors.New("scripted dial failure")
}

// redialSchedule runs Redial against an always-failing endpoint on a
// fresh kernel and returns the attempt times.
func redialSchedule(pol RetryPolicy) []sim.Time {
	prof := CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	node := cl.AddNode("a", cluster.DefaultConfig())
	ep := &scriptedEndpoint{node: node}
	k.Go("redial", func(p *sim.Proc) {
		if _, err := Redial(p, ep, "b", 1, pol); err == nil {
			panic("redial against a failing endpoint succeeded")
		}
	})
	k.RunAll()
	return ep.attempts
}

// TestRedialBackoffCapBoundary pins the exact schedule around the
// MaxDelay boundary: the pause doubles from BaseDelay until it crosses
// the cap, then every further pause is exactly MaxDelay.
func TestRedialBackoffCapBoundary(t *testing.T) {
	pol := RetryPolicy{
		Attempts:  6,
		BaseDelay: 200 * sim.Microsecond,
		MaxDelay:  800 * sim.Microsecond,
	}
	got := redialSchedule(pol)
	// Pauses: 200, 400, 800 (doubling), then capped at 800, 800.
	want := []sim.Time{
		0,
		200 * sim.Microsecond,
		600 * sim.Microsecond,
		1400 * sim.Microsecond,
		2200 * sim.Microsecond,
		3000 * sim.Microsecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backoff schedule = %v, want %v", got, want)
	}
}

// TestRedialUncappedBackoff: MaxDelay zero means the doubling never
// stops.
func TestRedialUncappedBackoff(t *testing.T) {
	pol := RetryPolicy{Attempts: 5, BaseDelay: 100 * sim.Microsecond}
	got := redialSchedule(pol)
	// Pauses 100, 200, 400, 800.
	want := []sim.Time{
		0,
		100 * sim.Microsecond,
		300 * sim.Microsecond,
		700 * sim.Microsecond,
		1500 * sim.Microsecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backoff schedule = %v, want %v", got, want)
	}
}

// TestRedialJitterDeterminism: two identically-seeded default policies
// produce byte-identical schedules on fresh kernels, a differently
// seeded one diverges, and every jittered pause stays within the
// policy's +-Jitter/2 band around the deterministic schedule.
func TestRedialJitterDeterminism(t *testing.T) {
	a := redialSchedule(DefaultRetryPolicy(42))
	b := redialSchedule(DefaultRetryPolicy(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identically-seeded schedules diverged:\n%v\n%v", a, b)
	}
	c := redialSchedule(DefaultRetryPolicy(43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("differently-seeded schedules are identical; jitter is not applied")
	}

	pol := DefaultRetryPolicy(42)
	jittered := false
	delay := pol.BaseDelay
	for i := 1; i < len(a); i++ {
		pause := a[i] - a[i-1]
		lo := sim.Time(float64(delay) * (1 - pol.Jitter/2))
		hi := sim.Time(float64(delay) * (1 + pol.Jitter/2))
		if pause < lo || pause > hi {
			t.Fatalf("pause %d = %v, outside jitter band [%v, %v]", i, pause, lo, hi)
		}
		if pause != delay {
			jittered = true
		}
		delay *= 2
		if pol.MaxDelay > 0 && delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
	if !jittered {
		t.Fatal("no pause was jittered; Rand is unused")
	}
}

// TestRedialJitterRequiresRand documents that a jittered policy
// without a Rand source silently degrades to the deterministic
// schedule rather than panicking mid-recovery.
func TestRedialJitterRequiresRand(t *testing.T) {
	pol := RetryPolicy{
		Attempts:  3,
		BaseDelay: 100 * sim.Microsecond,
		Jitter:    0.2,
		Rand:      nil,
	}
	got := redialSchedule(pol)
	want := []sim.Time{0, 100 * sim.Microsecond, 300 * sim.Microsecond}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule = %v, want deterministic %v", got, want)
	}
}
