package core

import (
	"errors"
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/via"
)

// ErrBroken reports that the underlying connection broke: the peer
// crashed, the fault model damaged the stream beyond what the
// transport recovers, or reliable-delivery semantics were violated.
var ErrBroken = errors.New("core: connection broken")

// ErrConnClosed reports sending on a locally closed connection.
var ErrConnClosed = errors.New("core: connection closed")

// ErrTimeout reports an expired deadline: a SetTimeout bound on Send
// or Recv, a DialTimeout during connection setup, or an exhausted
// retransmission budget on the kernel path.
var ErrTimeout = errors.New("core: operation timed out")

// ErrDescriptorExhausted reports a connection broken because the
// receiver's VIA descriptor pool ran dry (the RNR condition the
// credit protocol normally makes impossible; injected descriptor
// pressure triggers it). It wraps ErrBroken, so errors.Is(err,
// ErrBroken) matches both.
var ErrDescriptorExhausted = fmt.Errorf("core: receive descriptor exhausted: %w", ErrBroken)

// SocketVIA message kinds, carried in the descriptor immediate data.
const (
	svData uint64 = iota + 1
	svCredit
	svFIN
	svReady
	svRendReq
	svRendCTS
	svRendDone
)

func svImm(kind uint64, val int) uint64 { return kind<<32 | uint64(uint32(val)) }
func svKind(imm uint64) uint64          { return imm >> 32 }
func svVal(imm uint64) int              { return int(uint32(imm)) }

// ctrlTag marks control descriptors in completions.
type ctrlTag struct{}

// svEndpoint is a node's SocketVIA attachment.
type svEndpoint struct {
	pr  *via.Provider
	cfg SVConfig
}

// NewSocketVIAEndpoint attaches the user-level sockets layer over a
// fresh VIA provider on the node.
func NewSocketVIAEndpoint(node *cluster.Node, net *netsim.Network, viaCfg via.Config, cfg SVConfig) Endpoint {
	cfg.validate()
	if cfg.ChunkSize > viaCfg.MaxTransfer {
		panic("core: chunk size exceeds VIA max transfer")
	}
	return &svEndpoint{pr: via.NewProvider(node, net, viaCfg), cfg: cfg}
}

func (e *svEndpoint) Node() *cluster.Node { return e.pr.Node() }
func (e *svEndpoint) Transport() string   { return "socketvia" }

func (e *svEndpoint) Listen(svc int) Listener {
	return &svListener{ep: e, acc: e.pr.Listen(svc)}
}

// Dial opens a SocketVIA connection: it registers and pre-posts the
// receive pools before the VIA connect so the peer's first message
// always finds a descriptor, then waits for the peer's ready message
// (bounded by SVConfig.DialTimeout when set).
func (e *svEndpoint) Dial(p *sim.Proc, remote string, svc int) (Conn, error) {
	c, err := e.newConn(p)
	if err != nil {
		return nil, err
	}
	if err := e.pr.Connect(p, c.vi, remote, svc); err != nil {
		if errors.Is(err, via.ErrTimeout) {
			return nil, ErrTimeout
		}
		return nil, ErrBroken
	}
	if e.cfg.DialTimeout > 0 {
		if _, ok := p.WaitTimeout(c.readySig, e.cfg.DialTimeout); !ok {
			// The ready message never came (lost on the wire, or the
			// acceptor's node died). Tear the VI down so late traffic
			// finds nothing.
			c.markBroken(ErrTimeout)
			e.pr.Disconnect(p, c.vi)
			return nil, ErrTimeout
		}
	} else {
		p.Wait(c.readySig)
	}
	if c.brokenErr != nil {
		return nil, c.brokenErr
	}
	return c, nil
}

type svListener struct {
	ep  *svEndpoint
	acc *via.Acceptor
}

// Accept completes a SocketVIA connection: the VIA accept, pool setup,
// and the ready message that releases the dialer.
func (l *svListener) Accept(p *sim.Proc) (Conn, error) {
	c := l.ep.newConnDeferred(p)
	vi, err := l.acc.Accept(p, c.cq, c.cq)
	if err != nil {
		return nil, err
	}
	if err := c.bind(p, vi); err != nil {
		return nil, err
	}
	c.sendCtrl(p, svReady, 0)
	c.readySig.Fire(nil)
	return c, nil
}

func (l *svListener) Close() { l.acc.Close() }

// newConn builds a connection with its own VI (dialer side).
func (e *svEndpoint) newConn(p *sim.Proc) (*svConn, error) {
	c := e.newConnDeferred(p)
	if err := c.bind(p, e.pr.NewVI(c.cq, c.cq)); err != nil {
		return nil, err
	}
	return c, nil
}

// SetDescPressure threads a deterministic descriptor-exhaustion hook
// down to the VIA provider (see via.Provider.SetDescPressure); the
// fault injector installs it through the Fabric.
func (e *svEndpoint) SetDescPressure(fn func() bool) { e.pr.SetDescPressure(fn) }

// newConnDeferred builds the connection state without a VI (the
// acceptor side receives its VI from Accept).
func (e *svEndpoint) newConnDeferred(p *sim.Proc) *svConn {
	k := e.pr.Node().Kernel()
	c := &svConn{
		ep:       e,
		cq:       e.pr.NewCQ(),
		credits:  e.cfg.Credits,
		credCond: sim.NewCond(k),
		rcvCond:  sim.NewCond(k),
		rendCond: sim.NewCond(k),
		readySig: sim.NewSignal(k),
		sendPool: sim.NewQueue[*via.Desc](k, 0),
		ctrlPool: sim.NewQueue[*via.Desc](k, 0),
	}
	c.credCond.SetLabel("socketvia/credit-wait")
	c.rcvCond.SetLabel("socketvia/rcv-wait")
	c.rendCond.SetLabel("socketvia/rendezvous")
	c.readySig.SetLabel("socketvia/ready")
	c.sendPool.SetLabel("socketvia/send-pool")
	c.ctrlPool.SetLabel("socketvia/ctrl-pool")
	return c
}

// bind attaches the VI, registers the buffer pools, pre-posts every
// receive descriptor and starts the progress process. It fails with
// ErrBroken when the VI broke before setup completed (possible under
// injected faults on the accept path).
func (c *svConn) bind(p *sim.Proc, vi *via.VI) error {
	e := c.ep
	cfg := e.cfg
	c.vi = vi
	node := e.pr.Node()

	recvN := cfg.Credits + cfg.ctrlSlack()
	recvRegion := e.pr.RegisterMem(p, recvN*cfg.ChunkSize)
	for i := 0; i < recvN; i++ {
		d := &via.Desc{Region: recvRegion, Len: cfg.ChunkSize}
		if err := vi.PostRecv(p, d); err != nil {
			c.markBroken(ErrBroken)
			return ErrBroken
		}
	}

	sendN := cfg.Credits
	sendRegion := e.pr.RegisterMem(p, sendN*cfg.ChunkSize)
	backing := make([]byte, sendN*cfg.ChunkSize)
	for i := 0; i < sendN; i++ {
		d := &via.Desc{Region: sendRegion}
		d.Ctx = backing[i*cfg.ChunkSize : (i+1)*cfg.ChunkSize]
		_ = c.sendPool.TryPut(d)
	}

	ctrlN := cfg.ctrlSlack()
	ctrlRegion := e.pr.RegisterMem(p, ctrlN*64)
	for i := 0; i < ctrlN; i++ {
		_ = c.ctrlPool.TryPut(&via.Desc{Region: ctrlRegion, Ctx: ctrlTag{}})
	}

	node.Kernel().Go("sv-pump/"+node.Name(), c.pump)
	return nil
}
