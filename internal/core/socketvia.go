package core

import (
	"errors"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/via"
)

// ErrBroken reports that the underlying VIA connection broke.
var ErrBroken = errors.New("core: connection broken")

// ErrConnClosed reports sending on a locally closed connection.
var ErrConnClosed = errors.New("core: connection closed")

// SocketVIA message kinds, carried in the descriptor immediate data.
const (
	svData uint64 = iota + 1
	svCredit
	svFIN
	svReady
	svRendReq
	svRendCTS
	svRendDone
)

func svImm(kind uint64, val int) uint64 { return kind<<32 | uint64(uint32(val)) }
func svKind(imm uint64) uint64          { return imm >> 32 }
func svVal(imm uint64) int              { return int(uint32(imm)) }

// ctrlTag marks control descriptors in completions.
type ctrlTag struct{}

// svEndpoint is a node's SocketVIA attachment.
type svEndpoint struct {
	pr  *via.Provider
	cfg SVConfig
}

// NewSocketVIAEndpoint attaches the user-level sockets layer over a
// fresh VIA provider on the node.
func NewSocketVIAEndpoint(node *cluster.Node, net *netsim.Network, viaCfg via.Config, cfg SVConfig) Endpoint {
	cfg.validate()
	if cfg.ChunkSize > viaCfg.MaxTransfer {
		panic("core: chunk size exceeds VIA max transfer")
	}
	return &svEndpoint{pr: via.NewProvider(node, net, viaCfg), cfg: cfg}
}

func (e *svEndpoint) Node() *cluster.Node { return e.pr.Node() }
func (e *svEndpoint) Transport() string   { return "socketvia" }

func (e *svEndpoint) Listen(svc int) Listener {
	return &svListener{ep: e, acc: e.pr.Listen(svc)}
}

// Dial opens a SocketVIA connection: it registers and pre-posts the
// receive pools before the VIA connect so the peer's first message
// always finds a descriptor, then waits for the peer's ready message.
func (e *svEndpoint) Dial(p *sim.Proc, remote string, svc int) (Conn, error) {
	c := e.newConn(p)
	if err := e.pr.Connect(p, c.vi, remote, svc); err != nil {
		return nil, err
	}
	p.Wait(c.readySig)
	if c.broken {
		return nil, ErrBroken
	}
	return c, nil
}

type svListener struct {
	ep  *svEndpoint
	acc *via.Acceptor
}

// Accept completes a SocketVIA connection: the VIA accept, pool setup,
// and the ready message that releases the dialer.
func (l *svListener) Accept(p *sim.Proc) (Conn, error) {
	c := l.ep.newConnDeferred(p)
	vi, err := l.acc.Accept(p, c.cq, c.cq)
	if err != nil {
		return nil, err
	}
	c.bind(p, vi)
	c.sendCtrl(p, svReady, 0)
	c.readySig.Fire(nil)
	return c, nil
}

func (l *svListener) Close() { l.acc.Close() }

// newConn builds a connection with its own VI (dialer side).
func (e *svEndpoint) newConn(p *sim.Proc) *svConn {
	c := e.newConnDeferred(p)
	c.bind(p, e.pr.NewVI(c.cq, c.cq))
	return c
}

// newConnDeferred builds the connection state without a VI (the
// acceptor side receives its VI from Accept).
func (e *svEndpoint) newConnDeferred(p *sim.Proc) *svConn {
	k := e.pr.Node().Kernel()
	c := &svConn{
		ep:       e,
		cq:       e.pr.NewCQ(),
		credits:  e.cfg.Credits,
		credCond: sim.NewCond(k),
		rcvCond:  sim.NewCond(k),
		rendCond: sim.NewCond(k),
		readySig: sim.NewSignal(k),
		sendPool: sim.NewQueue[*via.Desc](k, 0),
		ctrlPool: sim.NewQueue[*via.Desc](k, 0),
	}
	return c
}

// bind attaches the VI, registers the buffer pools, pre-posts every
// receive descriptor and starts the progress process.
func (c *svConn) bind(p *sim.Proc, vi *via.VI) {
	e := c.ep
	cfg := e.cfg
	c.vi = vi
	node := e.pr.Node()

	recvN := cfg.Credits + cfg.ctrlSlack()
	recvRegion := e.pr.RegisterMem(p, recvN*cfg.ChunkSize)
	for i := 0; i < recvN; i++ {
		d := &via.Desc{Region: recvRegion, Len: cfg.ChunkSize}
		if err := vi.PostRecv(p, d); err != nil {
			panic("core: pre-post failed: " + err.Error())
		}
	}

	sendN := cfg.Credits
	sendRegion := e.pr.RegisterMem(p, sendN*cfg.ChunkSize)
	backing := make([]byte, sendN*cfg.ChunkSize)
	for i := 0; i < sendN; i++ {
		d := &via.Desc{Region: sendRegion}
		d.Ctx = backing[i*cfg.ChunkSize : (i+1)*cfg.ChunkSize]
		c.sendPool.TryPut(d)
	}

	ctrlN := cfg.ctrlSlack()
	ctrlRegion := e.pr.RegisterMem(p, ctrlN*64)
	for i := 0; i < ctrlN; i++ {
		c.ctrlPool.TryPut(&via.Desc{Region: ctrlRegion, Ctx: ctrlTag{}})
	}

	node.Kernel().Go("sv-pump/"+node.Name(), c.pump)
}
